# Development entry points.  `make check` is what CI runs.

.PHONY: all build test check bench quick-bench serve-bench examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# The CI gate: everything compiles (including benches and examples)
# and every test — unit, property, conformance, service, cram — passes.
check:
	dune build @all
	dune runtest

bench:
	dune exec bench/main.exe

quick-bench:
	dune exec bench/main.exe -- --quick

serve-bench:
	dune exec bin/topk_cli.exe -- serve-bench -n 100000 --queries 10000 --workers 4

examples:
	dune exec examples/quickstart.exe
	dune exec examples/serving.exe

clean:
	dune clean
