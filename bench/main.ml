(* Experiment harness: regenerates every "table" of EXPERIMENTS.md.

   The paper (PODS'16) has no empirical section, so the artifacts to
   reproduce are its complexity claims: one experiment per lemma /
   theorem, each printing a table whose shape (growth rates, who wins,
   crossovers) validates the claim.  See DESIGN.md section 4 for the
   index.

   Usage:
     main.exe                 run all experiments + microbenchmarks
     main.exe e1 e5 e7        run selected experiments
     main.exe --quick [...]   shrink sweeps (CI-sized)
     main.exe --no-bechamel   skip the wall-clock suite *)

let experiments =
  [
    ("e1", "Lemma 1 + Lemma 3 rank sampling", E01_rank_sampling.run);
    ("e2", "Lemma 2 core-sets", E02_coreset.run);
    ("e3", "Lemma 3 (alias of e1's second table)", E01_rank_sampling.run_lemma3);
    ("e4", "Theorem 1 worst-case reduction", E04_theorem1.run);
    ("e5", "Theorem 2 expected reduction", E05_theorem2.run);
    ("e6", "Theorem 2 bootstrapping power", E06_bootstrap.run);
    ("e7", "Reductions vs baselines (crossover)", E07_baselines.run);
    ("e8", "Theorem 4 dynamic updates", E08_dynamic.run);
    ("e9", "Theorem 3 bullet 1 (2D halfplane)", E09_halfplane.run);
    ("e10", "Theorem 3 bullets 2-3 + Corollary 1 (kd)", E10_kd.run);
    ("e11", "Theorem 5 (point enclosure)", E11_enclosure.run);
    ("e12", "Theorem 6 (3D dominance)", E12_dominance.run);
    ("e13", "Top-k 1D range reporting + synthesized max", E13_range.run);
    ("e14", "Reductions in the RAM model", E14_ram.run);
    ("e15", "Ablations: coreset_scale and sigma", E15_ablation.run);
    ("e16", "Top-k 2D orthogonal range reporting", E16_ortho.run);
    ("e17", "Sharded planner with max-query pruning", E17_shard.run);
    ("e18", "Tracing overhead on the sharded workload", E18_trace.run);
    ("e19", "Live ingestion: update cost and read-side tax", E19_ingest.run);
    ("e20", "Replication: read capacity and lag vs shipping window",
     E20_repl.run);
    ("e21", "QoS lanes: interactive p99 vs background pressure", E21_sched.run);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let flags, selected =
    List.partition (fun a -> String.length a > 1 && a.[0] = '-') args
  in
  if List.mem "--quick" flags then Workloads.quick := true;
  let bechamel = not (List.mem "--no-bechamel" flags) in
  if List.mem "--help" flags then begin
    print_endline "usage: main.exe [--quick] [--no-bechamel] [e1 .. e12]";
    List.iter
      (fun (id, what, _) -> Printf.printf "  %-4s %s\n" id what)
      experiments;
    exit 0
  end;
  let to_run =
    match selected with
    | [] -> List.filter (fun (id, _, _) -> id <> "e3") experiments
    | ids ->
        List.map
          (fun id ->
            match List.find_opt (fun (i, _, _) -> i = id) experiments with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %s (try --help)\n" id;
                exit 1)
          ids
  in
  Printf.printf
    "Top-k indexing via general reductions (PODS'16) - experiment harness\n";
  Printf.printf "Cost model: %s; quick=%b\n"
    (Format.asprintf "%a" Topk_em.Config.pp Workloads.em_model)
    !Workloads.quick;
  List.iter (fun (_, _, run) -> run ()) to_run;
  if bechamel && selected = [] then Bechamel_suite.run ()
