(* E21 (extension): QoS lanes — interactive tail latency vs background
   pressure, isolated scheduler vs the single-queue baseline.

   lib/service/sched splits the executor's one FIFO into three lanes
   (interactive / batch / maintenance) under weighted-fair dispatch
   with aging.  Two claims:

   - as the merge rate grows (more updates per round force more
     background level merges onto the batch lane), the single queue
     makes interactive queries wait behind whatever batch work is
     queued ahead of them, while the lane scheduler lets them bypass
     it — a modest effect here, bounded by the few-ms duration of a
     real level merge, since neither policy preempts the job already
     on the worker;
   - under a synthetic batch storm (fixed-length busy tasks flooding
     the batch lane) the effect is starker — the unified p99 tracks
     the storm length, the isolated p99 does not — and maintenance
     heartbeats still run within the aging bound instead of starving
     behind the storm.

   Latencies are wall-clock (submit to completion, measured serially
   so a query's latency is queueing + execution, not the round's
   makespan); both runs of a configuration replay the identical
   seeded schedule. *)

module Rng = Topk_util.Rng
module I = Topk_interval.Interval
module Inst = Topk_interval.Instances
module Ing = Topk_ingest.Ingest.Make (Inst.Topk_t2)
module Svc = Topk_service
module Lane = Topk_service.Lane
module Sched = Topk_service.Sched
module Metrics = Topk_service.Metrics

(* Strictly increasing distinct weights keep the top-k unique. *)
let mk_elem rng id =
  let lo = Rng.uniform rng in
  let hi = Float.min 1.0 (lo +. 0.02 +. (0.3 *. Rng.uniform rng)) in
  I.make ~id ~lo ~hi
    ~weight:(float_of_int id +. (0.5 *. Rng.uniform rng))
    ()

let percentile p latencies =
  let a = Array.of_list latencies in
  Array.sort Float.compare a;
  let len = Array.length a in
  a.(max 0 (int_of_float (ceil (p *. float_of_int len)) - 1))

(* One pass over the seeded schedule: per round, apply the updates,
   flood the batch lane, keep the maintenance heartbeat alive, then
   issue the Zipf query stream serially.  Returns interactive
   (p99, p50) in ms plus merge count and the maintenance lane's max
   dispatch-round wait. *)
let run_pass ~unified ~n ~rounds ~qpr ~upr ~storm ~storm_ms ~seed =
  let distinct = 16 and theta = 1.2 in
  let lanes_cfg =
    if unified then Sched.unified_config () else Sched.default_config ()
  in
  (* One worker: the single "server core" model — background work that
     reaches the worker steals it outright, so what's measured is
     purely which queued job the scheduler hands over next. *)
  let pool = Svc.Executor.create ~workers:1 ~batch_max:1 ~lanes:lanes_cfg () in
  let m = Svc.Executor.metrics pool in
  let rng = Rng.create seed in
  let qpool =
    let qrng = Rng.create (seed lxor 0x51f3) in
    Array.init distinct (fun _ -> Rng.uniform qrng)
  in
  let zipf_cum =
    let c = Array.make distinct 0.0 in
    let acc = ref 0.0 in
    for r = 0 to distinct - 1 do
      acc := !acc +. (1.0 /. Float.pow (float_of_int (r + 1)) theta);
      c.(r) <- !acc
    done;
    c
  in
  let zipf () =
    let u = Rng.uniform rng *. zipf_cum.(distinct - 1) in
    let i = ref 0 in
    while !i < distinct - 1 && zipf_cum.(!i) < u do
      incr i
    done;
    !i
  in
  let base = Array.init n (fun i -> mk_elem rng (i + 1)) in
  let t = Ing.create ~params:(Inst.params ()) ~buffer_cap:128 ~pool base in
  let next_id = ref (n + 1) in
  let spin () =
    let stop = Unix.gettimeofday () +. (storm_ms /. 1e3) in
    while Unix.gettimeofday () < stop do
      ignore (Sys.opaque_identity ())
    done
  in
  (* Warm the pool (domain spawn is ms-scale) so startup doesn't land
     on the first measured queries. *)
  ignore
    (Svc.Future.await
       (Svc.Executor.submit_task pool ~lane:Lane.Interactive ~name:"warmup"
          (fun () -> ()))
      : unit Svc.Response.t);
  let latencies = ref [] in
  for _round = 1 to rounds do
    for _ = 1 to upr do
      let e = mk_elem rng !next_id in
      incr next_id;
      Ing.insert t e
    done;
    for _ = 1 to storm do
      ignore
        (Svc.Executor.submit_task pool ~name:"storm" spin
          : unit Svc.Response.t Svc.Future.t)
    done;
    ignore
      (Svc.Executor.submit_task pool ~lane:Lane.Maintenance ~name:"beat"
         (fun () -> ())
        : unit Svc.Response.t Svc.Future.t);
    for _ = 1 to qpr do
      let q = qpool.(zipf ()) in
      let fut =
        Svc.Executor.submit_task pool ~lane:Lane.Interactive ~name:"query"
          (fun () -> ignore (Ing.query t q ~k:10 : I.t list))
      in
      let r = Svc.Future.await fut in
      latencies := r.Svc.Response.latency :: !latencies
    done
  done;
  Ing.freeze t;
  Svc.Executor.drain pool;
  let merges = Metrics.Counter.get m.Metrics.merges in
  let maint_wait =
    Metrics.Histogram.max_value
      m.Metrics.lane_wait_rounds.(Lane.index Lane.Maintenance)
  in
  Svc.Executor.shutdown pool;
  ( percentile 0.99 !latencies *. 1e3,
    percentile 0.50 !latencies *. 1e3,
    merges,
    maint_wait )

let run () =
  Table.section
    "E21: QoS lanes (interactive p99 vs background pressure, isolated vs \
     single queue)";
  let rounds = if !Workloads.quick then 8 else 20 in
  let qpr = 10 in
  let n = if !Workloads.quick then 1500 else 3000 in

  (* Interactive p99 vs merge rate: the batch work is the real level
     merges forced by the update stream, nothing synthetic. *)
  let rows = ref [] in
  List.iter
    (fun upr ->
      let seed = 210_000 + upr in
      let p99u, p50u, merges, _ =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            run_pass ~unified:true ~n ~rounds ~qpr ~upr ~storm:0 ~storm_ms:0.
              ~seed)
      in
      let p99l, p50l, _, maint_wait =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            run_pass ~unified:false ~n ~rounds ~qpr ~upr ~storm:0 ~storm_ms:0.
              ~seed)
      in
      rows :=
        [ Table.fi upr;
          Table.fi merges;
          Table.ff ~d:2 p50u;
          Table.ff ~d:2 p99u;
          Table.ff ~d:2 p50l;
          Table.ff ~d:2 p99l;
          Table.fx ~d:2 (p99u /. Float.max 1e-9 p99l);
          Table.fi maint_wait ]
        :: !rows)
    [ 0; 80; 160; 320; 640 ];
  Table.print
    ~title:
      (Printf.sprintf
         "Interactive latency vs merge rate (n = %d, %d rounds x %d \
          queries, k = 10, batch work = real merges)"
         n rounds qpr)
    ~header:
      [ "upd/round"; "merges"; "uni p50"; "uni p99"; "iso p50"; "iso p99";
        "p99 gain"; "maint wait" ]
    (List.rev !rows);
  Table.note
    "Claim: as the merge rate grows the unified tail inflates (a query \
     can queue behind every merge ahead of it) while isolation holds it \
     near the single-merge floor — modestly here, because level merges \
     at this scale run a few ms each and neither policy preempts the \
     one already on the worker.  The growing p50 is query cost (more \
     runs to consult), not queueing.  E21b is the regime where batch \
     work dominates.";

  (* Interactive p99 vs storm intensity at a fixed merge rate: the
     batch lane is flooded with synthetic 3ms busy tasks. *)
  let upr = 160 in
  let rows = ref [] in
  List.iter
    (fun storm ->
      let seed = 211_000 + storm in
      let p99u, p50u, _, _ =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            run_pass ~unified:true ~n ~rounds ~qpr ~upr ~storm ~storm_ms:3.0
              ~seed)
      in
      let p99l, p50l, _, maint_wait =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            run_pass ~unified:false ~n ~rounds ~qpr ~upr ~storm ~storm_ms:3.0
              ~seed)
      in
      rows :=
        [ Table.fi storm;
          Table.ff ~d:2 p50u;
          Table.ff ~d:2 p99u;
          Table.ff ~d:2 p50l;
          Table.ff ~d:2 p99l;
          Table.fx ~d:2 (p99u /. Float.max 1e-9 p99l);
          Table.fi maint_wait ]
        :: !rows)
    [ 0; 2; 4; 8; 16 ];
  Table.print
    ~title:
      (Printf.sprintf
         "E21b: interactive latency vs batch storm (n = %d, %d updates \
          per round, storm = 3ms busy tasks per round)"
         n upr)
    ~header:
      [ "storm"; "uni p50"; "uni p99"; "iso p50"; "iso p99"; "p99 gain";
        "maint wait" ]
    (List.rev !rows);
  Table.note
    "Claim: the unified p99 tracks the storm intensity while the \
     isolated p99 barely moves, and the maintenance heartbeat still \
     runs within aging_rounds + lane count dispatch decisions."
