(* E18 (extension): the observability tax — per-query tracing on the
   E17 sharded workload.

   The tracing contract (lib/trace) promises two things when spans are
   recording: zero *charged* I/Os added to any query (instrumentation
   never calls Stats.charge), and a small wall-clock overhead (span
   open/close is a few allocations plus two Stats snapshots on the
   recording domain).  This experiment measures both on the sharded
   planner workload of E17 — the most span-dense path in the repo (one
   root + bounds phase + one span per visited shard + prune events +
   Theorem-2 ladder rounds underneath).

   Wall-clock is measured as the {e median of paired differences}:
   each rep times one pass per configuration in random order, so clock
   drift, frequency scaling and cache warming — which dwarf the effect
   being measured — cancel within a pair instead of biasing whichever
   configuration runs second.

   Two enabled configurations are reported separately because they tax
   different subsystems:
   - [on]          — recording, tiny store (capacity 8).  Isolates the
     span open/close path itself; this is the number the < 5% target
     applies to.
   - [on+retain]   — recording, production store (capacity 512).
     Retained traces survive many minor collections, get promoted, and
     become major-heap garbage when the ring overwrites them; that GC
     churn is a cost of {e keeping} traces, not of recording them, and
     scales with store capacity.  (Paired too, but incremental major
     slices can smear across neighbouring passes, so read it as an
     estimate.) *)

module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module Interval = Topk_interval.Interval
module Inst = Topk_interval.Instances
module SS = Topk_shard.Shard_set.Make (Inst.Topk_t2) (Topk_interval.Slab_max)
module Planner = Topk_shard.Planner.Make (SS)
module Partitioner = Topk_shard.Partitioner
module P = Topk_interval.Problem
module Tr = Topk_trace.Trace

let random_intervals ~seed ~n =
  let rng = Rng.create seed in
  Interval.of_spans rng (Gen.intervals rng ~shape:Gen.Mixed_intervals ~n)

let random_queries ~seed ~n =
  let rng = Rng.create seed in
  Gen.stab_queries rng ~n

let time_batch f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let median l =
  let s = List.sort Float.compare l in
  List.nth s (List.length s / 2)

(* Median baseline and median paired (on - off) difference, seconds
   per pass.  [set_on] flips tracing on however the configuration
   wants; the store capacity is set (and prefilled) by the caller so
   pairs only toggle the enabled flag. *)
let paired_overhead ~reps ~coin ~set_on batch =
  set_on ();
  ignore (time_batch batch);
  Tr.disable ();
  ignore (time_batch batch);
  let offs = ref [] and diffs = ref [] in
  for _ = 1 to reps do
    let on, off =
      if Random.State.bool coin then begin
        set_on ();
        let a = time_batch batch in
        Tr.disable ();
        (a, time_batch batch)
      end
      else begin
        Tr.disable ();
        let b = time_batch batch in
        set_on ();
        (time_batch batch, b)
      end
    in
    offs := off :: !offs;
    diffs := (on -. off) :: !diffs
  done;
  Tr.disable ();
  (median !offs, median !diffs)

let run () =
  Table.section "E18: tracing overhead on the sharded workload";
  let n = if !Workloads.quick then 16_384 else 100_000 in
  let shards = 8 in
  let k = 1000 in
  let nq = if !Workloads.quick then 50 else 100 in
  let reps = if !Workloads.quick then 21 else 25 in
  let elems = random_intervals ~seed:180_001 ~n in
  let queries = random_queries ~seed:180_002 ~n:nq in
  let params = Inst.params () in
  let set =
    Topk_em.Config.with_model Workloads.em_model (fun () ->
        SS.of_elems ~params
          ~strategy:(Partitioner.Range P.weight)
          ~shards elems)
  in
  (* Each query runs under a root span, as it would in the serving
     layer; with tracing disabled the root costs one Atomic.get. *)
  let traced_query q =
    let (_ : int), (_ : Tr.t option) =
      Tr.with_root "e18.query"
        ~attrs:[ ("instance", Tr.Str "e18"); ("k", Tr.Int k) ]
        (fun () -> List.length (Planner.query set q ~k))
    in
    ()
  in
  let batch () = Array.iter traced_query queries in
  let ios_of () = Workloads.per_query_ios traced_query queries in
  (* Charged I/Os must be identical with tracing on. *)
  Tr.disable ();
  let ios_off = ios_of () in
  Tr.enable ();
  Tr.Store.set_capacity 8;
  let ios_on = ios_of () in
  Tr.disable ();
  let coin = Random.State.make [| 180_003 |] in
  (* (a) recording overhead: tiny store. *)
  let t_off, d_record =
    paired_overhead ~reps ~coin ~set_on:Tr.enable batch
  in
  (* (b) retention overhead: production-sized store, prefilled to
     steady state so every pass overwrites as it records. *)
  Tr.enable ();
  Tr.Store.set_capacity 512;
  for _ = 1 to 512 / nq do
    ignore (time_batch batch)
  done;
  Tr.disable ();
  let t_off2, d_retain =
    paired_overhead ~reps ~coin ~set_on:Tr.enable batch
  in
  (* Span volume, from the freshly filled store. *)
  Tr.enable ();
  ignore (time_batch batch);
  let spans_per_query =
    let traces = Tr.Store.recent ~limit:nq () in
    let total = List.fold_left (fun a t -> a + Tr.span_count t) 0 traces in
    float_of_int total /. float_of_int (max 1 (List.length traces))
  in
  Tr.disable ();
  let upq t = t /. float_of_int nq *. 1e6 in
  let pct d base = d /. base *. 100. in
  let d_ios = ios_on -. ios_off in
  let record_pct = pct d_record t_off in
  let retain_pct = pct d_retain t_off2 in
  Table.print
    ~title:
      (Printf.sprintf
         "Per-query cost of tracing, n=%d, S=%d, k=%d, %d queries (median \
          of %d paired passes)"
         n shards k nq reps)
    ~header:[ "config"; "I/Os"; "us/query"; "d-I/Os"; "overhead"; "spans/q" ]
    [
      [ "off"; Table.ff ~d:1 ios_off; Table.ff ~d:1 (upq t_off); "-"; "-";
        "-" ];
      [ "on";
        Table.ff ~d:1 ios_on;
        Table.ff ~d:1 (upq (t_off +. d_record));
        Table.ff ~d:1 d_ios;
        Printf.sprintf "%.2f%%" record_pct;
        Table.ff ~d:1 spans_per_query ];
      [ "on+retain";
        Table.ff ~d:1 ios_on;
        Table.ff ~d:1 (upq (t_off2 +. d_retain));
        Table.ff ~d:1 d_ios;
        Printf.sprintf "%.2f%%" retain_pct;
        Table.ff ~d:1 spans_per_query ];
    ];
  Printf.printf
    "e18 verdict: extra charged I/Os = %.1f (must be 0), recording \
     overhead = %.2f%% (target < 5%%) -> %s [store retention adds %.2f%% \
     at capacity 512]\n"
    d_ios record_pct
    (if d_ios = 0. && record_pct < 5. then "PASS"
     else if d_ios = 0. then "PASS-ios/WARN-clock (noisy box?)"
     else "FAIL")
    retain_pct;
  Table.note
    "Tracing is charged in time, never in I/Os: spans snapshot the \
     Stats counters at open/close but never call charge_*, so the EM \
     cost of every query is bit-identical with tracing on.  Recording \
     stays under the 5% target because the traced operations (shard \
     legs, ladder rounds) are orders of magnitude coarser than a span \
     open/close (~200ns).  Keeping completed traces is the larger tax: \
     a deep ring buffer promotes every trace to the major heap and \
     frees it one full ring later, so GC churn — not span bookkeeping \
     — is what to budget when sizing Trace.Store in production."
