(* E20 (extension): replication — read capacity vs replica count, and
   the shipping window's effect on replica lag under a lossy fabric.

   lib/repl ships the ingestion WAL to read replicas over a
   fault-injectable transport (lib/repl/transport).  Two claims:

   - read capacity scales with the replica count: each replica answers
     from its own copy of the Theorem-2 structure at the same per-read
     cost, so aggregate throughput is replicas x a constant — the
     router spreads tokens round-robin and the per-read cost stays
     flat as the group grows;
   - the go-back-N shipping window trades retransmission overhead
     against replica lag: a one-frame window serializes shipping
     behind each ack round-trip (lag grows with the write rate), a
     wide window keeps replicas within a few frames of the head even
     under drop + reorder + delay, at the price of more duplicate
     frames when a loss rewinds the cursor. *)

module Rng = Topk_util.Rng
module I = Topk_interval.Interval
module Inst = Topk_interval.Instances
module G = Topk_repl.Group.Make (Inst.Topk_t2)
module Transport = Topk_repl.Transport
module Metrics = Topk_service.Metrics

let now () = Unix.gettimeofday ()

let random_interval rng id =
  let lo = Rng.uniform rng in
  let len = Rng.float rng (1. -. lo) in
  I.make ~id ~lo ~hi:(lo +. len)
    ~weight:(float_of_int id +. Rng.float rng 0.4)
    ()

(* Stream [updates] inserts through the group, pumping as we go. *)
let stream rng g ~first_id ~updates =
  let lagged = ref 0 and max_lag = ref 0 in
  for i = 1 to updates do
    let e = random_interval rng (first_id + i) in
    if not (G.synced (G.insert g e)) then incr lagged;
    if G.lag g > !max_lag then max_lag := G.lag g
  done;
  (!lagged, !max_lag)

let run () =
  Table.section
    "E20: replication (WAL shipping to read replicas over a lossy fabric)";

  (* Read capacity vs replica count.  Clean transport: the cost under
     faults is E20b's subject. *)
  let n = if !Workloads.quick then 4096 else 16_384 in
  let updates = n / 8 in
  let queries = Workloads.stab_queries ~seed:20 ~n:400 in
  let rows = ref [] in
  List.iter
    (fun replicas ->
      let rng = Rng.create (200_000 + replicas) in
      Topk_em.Config.with_model Workloads.em_model (fun () ->
          let base = Array.init n (fun i -> random_interval rng (i + 1)) in
          let metrics = Metrics.create () in
          let g =
            G.create ~params:(Inst.params ()) ~buffer_cap:256 ~metrics
              ~name:"e20" ~replicas base
          in
          let _lagged, _max_lag = stream rng g ~first_id:n ~updates in
          assert (G.settle g);
          let q_ios =
            Workloads.per_query_ios
              (fun q -> ignore (G.read g q ~k:10))
              queries
          in
          let t0 = now () in
          Array.iter (fun q -> ignore (G.read g q ~k:10)) queries;
          let us = (now () -. t0) *. 1e6 /. float_of_int (Array.length queries) in
          let shipped = Metrics.Counter.get metrics.Metrics.repl_frames_shipped in
          rows :=
            [ Table.fi replicas;
              Table.ff ~d:1 us;
              Table.ff ~d:1 q_ios;
              Table.ff ~d:0 (float_of_int replicas *. 1e6 /. us);
              Table.fi shipped ]
            :: !rows))
    [ 1; 2; 4; 8 ];
  Table.print
    ~title:
      (Printf.sprintf
         "Read capacity vs replica count (n = %d, %d updates shipped, \
          k = 10, clean transport)"
         n updates)
    ~header:
      [ "replicas"; "us/read"; "read ios"; "agg reads/s"; "frames shipped" ]
    (List.rev !rows);
  Table.note
    "Claim: per-read cost is flat in the replica count (each replica \
     answers from its own structure), so aggregate capacity scales \
     linearly; shipping cost scales with replicas x updates.";

  (* The shipping window: lag vs retransmission overhead on a lossy,
     reordering, delaying fabric.  Asynchronous writes (quorum 0) with
     one explicit fabric tick per write, so the fabric advances at
     exactly the write rate and lag is set by how much the window
     ships per tick.  Retention covers the whole stream — catch-up
     must happen by shipping, never by snapshot install. *)
  let n = if !Workloads.quick then 2048 else 8192 in
  let updates = 600 in
  let rows = ref [] in
  List.iter
    (fun window ->
      let rng = Rng.create (201_000 + window) in
      Topk_em.Config.with_model Workloads.em_model (fun () ->
          let base = Array.init n (fun i -> random_interval rng (i + 1)) in
          let metrics = Metrics.create () in
          (* Pure loss, deterministic one-tick delivery: delay-induced
             reordering would discard-and-rto on every gap regardless
             of the window, hiding the knob under test. *)
          let plan = Transport.plan ~drop:0.05 ~seed:(202_000 + window) () in
          let g =
            G.create ~params:(Inst.params ()) ~buffer_cap:256
              ~retain:(2 * updates) ~window ~plan ~metrics ~max_pump:1
              ~quorum:0 ~name:"e20b" ~replicas:3 base
          in
          let max_lag = ref 0 in
          for i = 1 to updates do
            ignore (G.insert g (random_interval rng (n + i)));
            G.step g;
            if G.lag g > !max_lag then max_lag := G.lag g
          done;
          let end_lag = G.lag g in
          let t0 = Transport.now (G.transport g) in
          assert (G.settle ~max_ticks:100_000 g);
          let settle_ticks = Transport.now (G.transport g) - t0 in
          let shipped = Metrics.Counter.get metrics.Metrics.repl_frames_shipped in
          let dropped = Metrics.Counter.get metrics.Metrics.repl_frames_dropped in
          rows :=
            [ Table.fi window;
              Table.fi !max_lag;
              Table.fi end_lag;
              Table.fi settle_ticks;
              Table.fi shipped;
              Table.ff ~d:2
                (float_of_int shipped /. float_of_int (3 * updates));
              Table.fi dropped ]
            :: !rows))
    [ 1; 2; 4; 8; 16 ];
  Table.print
    ~title:
      (Printf.sprintf
         "E20b: shipping window vs replica lag (n = %d, %d updates at one \
          fabric tick per write, 3 replicas, drop 0.05)"
         n updates)
    ~header:
      [ "window"; "max lag"; "end lag"; "settle ticks"; "shipped";
        "ship/op"; "dropped" ]
    (List.rev !rows);
  Table.note
    "Claim: lag falls as the window widens (more frames in flight per \
     ack round-trip) while go-back-N retransmission overhead (ship/op \
     over the 3x-updates floor) rises mildly under loss."
