(* E19 (extension): the live ingestion wrapper — amortized update cost
   and the read-side tax of log + runs.

   The ingest wrapper (lib/ingest) makes the static Theorem 2 structure
   updatable with the classic LSM / Bentley–Saxe recipe: a bounded
   update log, sealed into level-0 runs, merged geometrically.  Two
   claims to validate:

   - amortized update cost is O((log n)/B) I/Os — each element is
     rewritten once per level it descends through, and there are
     O(log n) levels;
   - query cost degrades by at most the run count (each run answers
     with the inner Theorem-2 bound, plus one log scan), and the
     [buffer_cap] knob trades write amplification against that
     read-side fanout.

   Merges run inline (no pool) so every I/O lands on this domain and
   the per-update figure includes compaction — the number the
   Dynamic cost model certifies. *)

module Rng = Topk_util.Rng
module I = Topk_interval.Interval
module Inst = Topk_interval.Instances
module Ing = Topk_ingest.Ingest.Make (Inst.Topk_t2)
module Stats = Topk_em.Stats

let now () = Unix.gettimeofday ()

let random_interval rng id =
  let lo = Rng.uniform rng in
  let len = Rng.float rng (1. -. lo) in
  I.make ~id ~lo ~hi:(lo +. len)
    ~weight:(float_of_int id +. Rng.float rng 0.4)
    ()

(* Stream [updates] mixed ops (2/3 insert, 1/3 delete-a-live-id) and
   return (us/op, ios/op) with compaction included. *)
let churn rng t ~first_id ~updates =
  let live = ref [] and n_live = ref 0 in
  let t0 = now () in
  let (), cost =
    Stats.measure (fun () ->
        for i = 1 to updates do
          if i mod 3 = 0 && !n_live > 0 then begin
            match !live with
            | v :: rest ->
                live := rest;
                decr n_live;
                Ing.delete t v
            | [] -> ()
          end
          else begin
            let e = random_interval rng (first_id + i) in
            live := e :: !live;
            incr n_live;
            Ing.insert t e
          end
        done)
  in
  let us = (now () -. t0) *. 1e6 /. float_of_int updates in
  (us, float_of_int cost.Stats.ios /. float_of_int updates)

let run () =
  Table.section
    "E19: live ingestion (update log + geometric runs over Theorem 2)";
  let rows = ref [] in
  List.iter
    (fun n ->
      let rng = Rng.create (190_000 + n) in
      Topk_em.Config.with_model Workloads.em_model (fun () ->
          let base = Array.init n (fun i -> random_interval rng (i + 1)) in
          let t = Ing.create ~params:(Inst.params ()) ~buffer_cap:256 base in
          let us, ios = churn rng t ~first_id:n ~updates:n in
          let queries = Workloads.stab_queries ~seed:n ~n:50 in
          let q_ios =
            Workloads.per_query_ios
              (fun q -> ignore (Ing.query t q ~k:10))
              queries
          in
          rows :=
            [ Table.fi n;
              Table.ff ~d:1 us;
              Table.ff ~d:2 ios;
              Table.ff ~d:1 q_ios;
              Table.fi (Ing.run_count t);
              Table.fi (Ing.epoch t);
              Table.fi (Ing.size t) ]
            :: !rows))
    (Workloads.sizes [ 2048; 8192; 32_768 ]);
  Table.print
    ~title:
      "Amortized update cost (wall-clock and I/Os, compaction included) \
       and mid-stream query I/Os (k = 10, buffer_cap = 256)"
    ~header:
      [ "n"; "update us/op"; "update ios/op"; "query ios"; "runs";
        "epoch"; "size" ]
    (List.rev !rows);
  Table.note
    "Claim: update ios/op grows like (log n)/B (each element is \
     rewritten once per level), query ios like runs x the static E5 \
     cost plus one log scan.";

  (* The LSM knob: a smaller buffer seals more often (more runs to
     read), a bigger one amortizes better but scans a longer log. *)
  let n = if !Workloads.quick then 4096 else 16_384 in
  let rows = ref [] in
  List.iter
    (fun cap ->
      let rng = Rng.create (191_000 + cap) in
      Topk_em.Config.with_model Workloads.em_model (fun () ->
          let base = Array.init n (fun i -> random_interval rng (i + 1)) in
          let t = Ing.create ~params:(Inst.params ()) ~buffer_cap:cap base in
          let _us, ios = churn rng t ~first_id:n ~updates:n in
          let queries = Workloads.stab_queries ~seed:cap ~n:50 in
          let q_ios =
            Workloads.per_query_ios
              (fun q -> ignore (Ing.query t q ~k:10))
              queries
          in
          rows :=
            [ Table.fi cap;
              Table.ff ~d:2 ios;
              Table.ff ~d:1 q_ios;
              Table.fi (Ing.run_count t);
              Table.fi (Ing.log_length t) ]
            :: !rows))
    [ 64; 256; 1024 ];
  Table.print
    ~title:
      (Printf.sprintf
         "E19b: buffer_cap trades write amplification for read fanout \
          (n = %d, n updates)"
         n)
    ~header:[ "buffer_cap"; "update ios/op"; "query ios"; "runs"; "log len" ]
    (List.rev !rows);
  Table.note
    "Claim: update cost falls and read-side run count rises as the \
     buffer shrinks; both meet the Dynamic certification bound."
