(* E6: Theorem 2's "bootstrapping power" (Section 1.4, second remark):
   the final top-k structure can occupy LESS space than the max
   structure would on the full input, because max structures are only
   ever built on the small samples R_i.  We demonstrate it with a
   deliberately fat max structure (space ~ n log^2 n words). *)

module Gen = Topk_util.Gen
module Seg = Topk_interval.Seg_stab
module Max = Topk_interval.Slab_max
module Params = Topk_core.Params

(* A max structure padded to Theta(n log^2 n) words, the kind of
   "don't try very hard to minimize space" structure the remark is
   about. *)
module Fat_max = struct
  module P = Topk_interval.Problem

  type t = {
    inner : Max.t;
    padding : int;
  }

  let name = "fat-slab-max"

  let build ?params:_ elems =
    let n = max 1 (Array.length elems) in
    let l = Params.log2 n in
    { inner = Max.build elems;
      padding = int_of_float (float_of_int n *. l *. l) }

  let size t = Max.size t.inner

  let space_words t = Max.space_words t.inner + t.padding

  let query t q = Max.query t.inner q
end

module Topk_fat = Topk_core.Theorem2.Make (Seg) (Fat_max)

let run () =
  Table.section
    "E6: Theorem 2 bootstrapping power (fat max structure, slim top-k)";
  let rows = ref [] in
  List.iter
    (fun n ->
      let elems =
        Workloads.intervals ~seed:(60_000 + n) ~shape:Gen.Mixed_intervals ~n
      in
      let t2 =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            Topk_fat.build ~params:(Topk_interval.Instances.params ()) elems)
      in
      let s_pri = float_of_int (Seg.space_words (Seg.build elems)) in
      let s_max_full =
        float_of_int (Fat_max.space_words (Fat_max.build elems))
      in
      let info = Topk_fat.info t2 in
      let s_top = float_of_int (Topk_fat.space_words t2) in
      (* Correctness spot check: the fat structure answers queries. *)
      let queries = Workloads.stab_queries ~seed:n ~n:20 in
      Array.iter
        (fun q -> ignore (Topk_fat.query t2 q ~k:5))
        queries;
      rows :=
        [ Table.fi n;
          Table.ff ~d:0 s_pri;
          Table.ff ~d:0 s_max_full;
          Table.fi info.Topk_fat.sample_words;
          Table.ff ~d:0 s_top;
          Table.fx (s_top /. s_pri);
          Table.fx (s_top /. s_max_full) ]
        :: !rows)
    (Workloads.sizes [ 4096; 16_384; 65_536; 262_144 ]);
  Table.print
    ~title:
      "Space in words: the top-k structure vs what the fat max structure \
       would cost on all of D"
    ~header:
      [ "n"; "S_pri"; "S_max(n) full"; "max-on-samples"; "S_top";
        "S_top/S_pri"; "S_top/S_max" ]
    (List.rev !rows);
  Table.note
    "Claim (eq. 5 + Section 1.4 remark 2): S_top = O(S_pri + \
     S_max(6n/(B*Q_max))), so S_top/S_max -> 0 as n grows even though \
     the top-k structure uses the fat max structure as its black box."
