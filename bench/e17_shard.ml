(* E17 (extension): sharded scatter-gather planner — max-query shard
   pruning on top of the paper's reductions.

   Each shard is an independent Theorem-2 structure over n/S elements
   plus an exact max structure (Slab_max).  The planner pays one cheap
   max query per shard, then visits shards in decreasing upper-bound
   order until the next bound cannot beat the running k-th candidate.
   Columns compare a flat (unsharded) index, the visit-every-shard
   merge, and the pruning planner, under a weight-range partitioning
   (the skew that makes bounds informative). *)

module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module Interval = Topk_interval.Interval
module Inst = Topk_interval.Instances
module SS =
  Topk_shard.Shard_set.Make (Inst.Topk_t2) (Topk_interval.Slab_max)
module Planner = Topk_shard.Planner.Make (SS)
module Partitioner = Topk_shard.Partitioner
module P = Topk_interval.Problem

let random_intervals ~seed ~n =
  let rng = Rng.create seed in
  Interval.of_spans rng (Gen.intervals rng ~shape:Gen.Mixed_intervals ~n)

let random_queries ~seed ~n =
  let rng = Rng.create seed in
  Gen.stab_queries rng ~n

let run () =
  Table.section "E17: sharded planner with max-query pruning";
  let n = if !Workloads.quick then 16_384 else 65_536 in
  let k = 100 in
  let elems = random_intervals ~seed:170_001 ~n in
  let queries = random_queries ~seed:170_002 ~n:40 in
  let params = Inst.params () in
  let flat =
    Topk_em.Config.with_model Workloads.em_model (fun () ->
        Inst.Topk_t2.build ~params elems)
  in
  let q_flat =
    Workloads.per_query_ios
      (fun q -> ignore (Inst.Topk_t2.query flat q ~k))
      queries
  in
  let rows = ref [] in
  List.iter
    (fun shards ->
      let t =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            SS.of_elems ~params
              ~strategy:(Partitioner.Range P.weight)
              ~shards elems)
      in
      let q_all =
        Workloads.per_query_ios
          (fun q -> ignore (Planner.query_all t q ~k))
          queries
      in
      let visited = ref 0 and pruned = ref 0 in
      let q_plan =
        Workloads.per_query_ios
          (fun q ->
            let _, r = Planner.query_report t q ~k in
            visited := !visited + r.Planner.visited;
            pruned := !pruned + r.Planner.pruned)
          queries
      in
      let nq = float_of_int (Array.length queries) in
      rows :=
        [ Table.fi shards;
          Table.ff ~d:1 q_flat;
          Table.ff ~d:1 q_all;
          Table.ff ~d:1 q_plan;
          Table.ff ~d:1 (float_of_int !visited /. nq);
          Table.ff ~d:1 (float_of_int !pruned /. nq) ]
        :: !rows)
    [ 1; 2; 4; 8; 16 ];
  Table.print
    ~title:
      (Printf.sprintf
         "Average I/Os per top-%d query, n=%d, weight-range shards" k n)
    ~header:[ "S"; "flat"; "visit-all"; "planner"; "visited/q"; "pruned/q" ]
    (List.rev !rows);
  Table.note
    "Sharding is not free in raw I/Os: S independent legs re-pay the \
     per-query base cost, so visit-all grows with S and the flat index \
     stays cheapest (sharding buys parallel workers and incremental \
     rebuilds instead).  Pruning claws most of the overhead back while \
     Q_top(n/S) >> Q_max(n/S); once shards shrink until a top-k leg \
     costs no more than a max query, the bounds stop paying for \
     themselves — the regime analysis of DESIGN.md section 9."
