(* Tests for the concurrent serving subsystem: a multi-domain pool must
   agree answer-for-answer with the sequential oracle, its per-domain
   EM accounting must aggregate to the single-threaded totals, and
   under-budgeted queries must degrade to flagged certified prefixes. *)

module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module Stats = Topk_em.Stats
module I = Topk_interval.Interval
module IInst = Topk_interval.Instances
module W = Topk_range.Wpoint
module RInst = Topk_range.Instances
module Registry = Topk_service.Registry
module Executor = Topk_service.Executor
module Breaker = Topk_service.Breaker
module Response = Topk_service.Response
module Limits = Topk_service.Limits
module Future = Topk_service.Future
module Metrics = Topk_service.Metrics
module Error = Topk_service.Error

let interval_ids = List.map (fun (e : I.t) -> e.I.id)

let wpoint_ids = List.map (fun (e : W.t) -> e.W.id)

(* One mixed workload shared by the tests: interval stabbing and 1D
   range reporting instances behind one registry, plus their Naive
   oracles. *)
type fixture = {
  registry : Registry.t;
  itv_h : (float, I.t) Registry.handle;
  rng_h : (float * float, W.t) Registry.handle;
  itv_naive : IInst.Topk_naive.t;
  rng_naive : RInst.Topk_naive.t;
  stabs : float array;
  ranges : (float * float) array;
}

let make_fixture ?(n = 3000) ?(queries = 120) ~seed () =
  let rng = Rng.create seed in
  let elems =
    I.of_spans rng (Gen.intervals rng ~shape:Gen.Mixed_intervals ~n)
  in
  let pts = W.of_positions rng (Array.init n (fun _ -> Rng.uniform rng)) in
  let registry = Registry.create () in
  let itv_h =
    Registry.register registry ~name:"intervals"
      (module IInst.Topk_t2)
      (IInst.Topk_t2.build ~params:(IInst.params ()) elems)
  in
  let rng_h =
    Registry.register registry ~name:"range1d"
      (module RInst.Topk_t2)
      (RInst.Topk_t2.build ~params:(RInst.params ()) pts)
  in
  let stabs = Gen.stab_queries rng ~n:queries in
  let ranges =
    Array.init queries (fun _ ->
        let a = Rng.uniform rng and b = Rng.uniform rng in
        (Float.min a b, Float.max a b))
  in
  {
    registry;
    itv_h;
    rng_h;
    itv_naive = IInst.Topk_naive.build elems;
    rng_naive = RInst.Topk_naive.build pts;
    stabs;
    ranges;
  }

(* (a) A 4-worker pool over the mixed workload returns exactly the
   sequential oracle's answers for every request. *)
let test_pool_matches_oracle () =
  let fx = make_fixture ~seed:11 () in
  let k = 10 in
  let pool = Executor.create ~workers:4 ~queue_capacity:64 () in
  let itv_futs =
    Array.map (fun q -> Executor.submit pool fx.itv_h q ~k) fx.stabs
  in
  let rng_futs =
    Array.map (fun q -> Executor.submit pool fx.rng_h q ~k) fx.ranges
  in
  Array.iteri
    (fun i fut ->
      let r = Future.await fut in
      Alcotest.(check string)
        "status" "complete"
        (Response.status_string r.Response.status);
      Alcotest.(check (list int))
        (Printf.sprintf "stab query %d" i)
        (interval_ids (IInst.Topk_naive.query fx.itv_naive fx.stabs.(i) ~k))
        (interval_ids r.Response.answers))
    itv_futs;
  Array.iteri
    (fun i fut ->
      let r = Future.await fut in
      Alcotest.(check (list int))
        (Printf.sprintf "range query %d" i)
        (wpoint_ids (RInst.Topk_naive.query fx.rng_naive fx.ranges.(i) ~k))
        (wpoint_ids r.Response.answers))
    rng_futs;
  let m = Executor.metrics pool in
  Alcotest.(check int)
    "completed counter" (2 * Array.length fx.stabs)
    (Metrics.Counter.get m.Metrics.completed);
  Executor.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Error.Error (Error.Failed "shutdown")) (fun () ->
      ignore (Executor.submit pool fx.itv_h 0.5 ~k))

(* (b) Per-domain I/O counters aggregated across the pool's workers
   equal the single-threaded totals for the same workload. *)
let test_aggregated_counters_match_sequential () =
  let fx = make_fixture ~seed:23 () in
  let k = 8 in
  (* Sequential reference on this domain, through the same execution
     path as the workers (including per-query carry rounding). *)
  let (), seq =
    Stats.measure (fun () ->
        Array.iter
          (fun q ->
            ignore (Registry.h_exec fx.itv_h q ~k ~budget:None ~deadline:None))
          fx.stabs;
        Array.iter
          (fun q ->
            ignore (Registry.h_exec fx.rng_h q ~k ~budget:None ~deadline:None))
          fx.ranges)
  in
  let pool = Executor.create ~workers:4 ~queue_capacity:32 () in
  let futs =
    Array.to_list
      (Array.map
         (fun q ->
           let f = Executor.submit pool fx.itv_h q ~k in
           fun () -> ignore (Future.await f))
         fx.stabs)
    @ Array.to_list
        (Array.map
           (fun q ->
             let f = Executor.submit pool fx.rng_h q ~k in
             fun () -> ignore (Future.await f))
           fx.ranges)
  in
  List.iter (fun wait -> wait ()) futs;
  Executor.drain pool;
  Executor.shutdown pool;
  let par = Executor.aggregate_stats pool in
  Alcotest.(check int) "ios" seq.Stats.ios par.Stats.ios;
  Alcotest.(check int) "scanned" seq.Stats.scanned par.Stats.scanned;
  Alcotest.(check int) "queries" seq.Stats.queries par.Stats.queries;
  (* The work is actually spread over several workers. *)
  Alcotest.(check bool)
    "more than one worker charged" true
    (List.length (Executor.worker_stats pool) > 1)

(* (c) An under-budgeted query is flagged and carries a certified
   prefix of the true top-k; the pool keeps serving afterwards. *)
let test_budget_cutoff_certified_prefix () =
  let rng = Rng.create 37 in
  let n = 20_000 in
  (* Nested intervals: the stabbing set at the centre has size Θ(n),
     so a generous k forces real reporting work. *)
  let elems =
    I.of_spans rng (Gen.intervals rng ~shape:Gen.Nested_intervals ~n)
  in
  let registry = Registry.create () in
  let h =
    Registry.register registry ~name:"nested"
      (module IInst.Topk_t2)
      (IInst.Topk_t2.build ~params:(IInst.params ()) elems)
  in
  let naive = IInst.Topk_naive.build elems in
  let k = 64 in
  let pool = Executor.create ~workers:2 ~queue_capacity:8 () in
  let starved =
    Future.await
      (Executor.submit pool h 0.5 ~k ~limits:(Limits.make ~budget:2 ()))
  in
  Alcotest.(check bool) "flagged partial" true (Response.is_partial starved);
  Alcotest.(check string)
    "status" "cutoff:budget"
    (Response.status_string starved.Response.status);
  let got = List.length starved.Response.answers in
  Alcotest.(check bool) "nonempty prefix" true (got >= 1);
  Alcotest.(check bool) "shorter than k" true (got < k);
  let oracle = IInst.Topk_naive.query naive 0.5 ~k in
  Alcotest.(check (list int))
    "certified prefix of the true top-k"
    (interval_ids (List.filteri (fun i _ -> i < got) oracle))
    (interval_ids starved.Response.answers);
  (* The pool is still healthy: the same query unbudgeted is complete
     and exact. *)
  let full = Future.await (Executor.submit pool h 0.5 ~k) in
  Alcotest.(check bool) "complete" false (Response.is_partial full);
  Alcotest.(check (list int))
    "full answer" (interval_ids oracle)
    (interval_ids full.Response.answers);
  let m = Executor.metrics pool in
  Alcotest.(check int)
    "cutoff counter" 1
    (Metrics.Counter.get m.Metrics.cutoff_budget);
  Executor.shutdown pool

(* --- supervision ---

   A controllable toy instance: its behaviour is selected through an
   atomic, so a test can make the handler succeed, raise, or stall at
   will — the failure modes the supervision layer must contain. *)

module Toy_problem = struct
  type elem = int

  type query = unit

  let weight e = float_of_int e

  let id e = e

  let matches () _ = true

  let pp_elem = Format.pp_print_int

  let pp_query ppf () = Format.pp_print_string ppf "()"
end

let toy_behaviour : [ `Ok | `Raise | `Sleep of float ] Atomic.t =
  Atomic.make `Ok

module Toy = struct
  module P = Toy_problem

  type t = int list  (* sorted by decreasing weight *)

  let name = "toy"

  let build ?params:_ elems =
    List.sort (fun a b -> compare b a) (Array.to_list elems)

  let size = List.length

  let space_words = List.length

  let query t () ~k =
    (match Atomic.get toy_behaviour with
    | `Ok -> ()
    | `Raise -> failwith "toy handler exploded"
    | `Sleep s -> Unix.sleepf s);
    List.filteri (fun i _ -> i < k) t
end

let toy_handle () =
  let registry = Registry.create () in
  Registry.register registry ~name:"toy"
    (module Toy)
    (Toy.build (Array.init 16 (fun i -> i)))

let string_contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  n = 0 || at 0

(* Regression: an exception escaping a handler must neither kill the
   worker domain nor leak the pending count — the query resolves as
   [Failed], [drain] returns, and the pool keeps serving. *)
let test_raising_handler_is_contained () =
  Atomic.set toy_behaviour `Raise;
  let h = toy_handle () in
  let pool = Executor.create ~workers:2 ~queue_capacity:16 () in
  let futs = List.init 8 (fun _ -> Executor.submit pool h () ~k:3) in
  List.iter
    (fun f ->
      match (Future.await f).Response.status with
      | Response.Failed e ->
          let msg = Error.to_string e in
          Alcotest.(check bool)
            (Printf.sprintf "failure names the exception (got %S)" msg)
            true
            (string_contains ~needle:"toy handler exploded" msg)
      | s ->
          Alcotest.failf "expected Failed, got %s" (Response.status_string s))
    futs;
  (* [drain] must return: a leaked pending count would hang here. *)
  Executor.drain pool;
  let m = Executor.metrics pool in
  Alcotest.(check int) "failed counter" 8 (Metrics.Counter.get m.Metrics.failed);
  (* Both workers survived the exceptions: the pool still serves. *)
  Atomic.set toy_behaviour `Ok;
  let r = Future.await (Executor.submit pool h () ~k:3) in
  Alcotest.(check string)
    "healthy again" "complete"
    (Response.status_string r.Response.status);
  Alcotest.(check (list int)) "exact answer" [ 15; 14; 13 ] r.Response.answers;
  Executor.shutdown pool

(* Regression: [shutdown] must resolve every still-queued future as
   [Failed "shutdown"] instead of dropping it — a caller blocked in
   [Future.await] is released, not hung forever. *)
let test_shutdown_resolves_queued_futures () =
  Atomic.set toy_behaviour `Ok;
  let h = toy_handle () in
  let pool = Executor.create ~workers:1 ~batch_max:1 ~queue_capacity:16 () in
  (* One slow request occupies the single worker... *)
  Atomic.set toy_behaviour (`Sleep 0.4);
  let inflight = Executor.submit pool h () ~k:2 in
  Unix.sleepf 0.1;
  (* ...so these four stay queued behind it. *)
  Atomic.set toy_behaviour `Ok;
  let queued = List.init 4 (fun _ -> Executor.submit pool h () ~k:2) in
  let blocked =
    Domain.spawn (fun () ->
        (Future.await (List.nth queued 3)).Response.status)
  in
  Executor.shutdown pool;
  List.iter
    (fun f ->
      Alcotest.(check string)
        "queued future resolved by shutdown" "failed:shutdown"
        (Response.status_string (Future.await f).Response.status))
    queued;
  Alcotest.(check string)
    "blocked awaiter released" "failed:shutdown"
    (Response.status_string (Domain.join blocked));
  Alcotest.(check string)
    "in-flight request finished normally" "complete"
    (Response.status_string (Future.await inflight).Response.status);
  let m = Executor.metrics pool in
  Alcotest.(check int)
    "aborted counter" 4
    (Metrics.Counter.get m.Metrics.aborted)

(* The circuit breaker: persistent failures trip it open (submissions
   shed load), the open window expires into half-open probing, and
   probe successes close it again. *)
let test_breaker_admission_control () =
  Atomic.set toy_behaviour `Ok;
  let h = toy_handle () in
  let policy =
    {
      Breaker.window = 16;
      min_samples = 8;
      failure_threshold = 0.5;
      open_duration = 0.3;
      half_open_probes = 2;
    }
  in
  let pool = Executor.create ~workers:1 ~queue_capacity:32 ~breaker:policy () in
  Alcotest.(check string)
    "starts closed" "closed"
    (Breaker.state_string (Executor.breaker_state pool));
  Atomic.set toy_behaviour `Raise;
  let futs = List.init 8 (fun _ -> Executor.submit pool h () ~k:1) in
  List.iter (fun f -> ignore (Future.await f)) futs;
  (* Outcomes are recorded before the pending count is released, so
     after [drain] the breaker has seen all eight failures. *)
  Executor.drain pool;
  Alcotest.(check string)
    "tripped open" "open"
    (Breaker.state_string (Executor.breaker_state pool));
  Alcotest.check_raises "submit sheds load" (Error.Error Error.Overloaded)
    (fun () ->
      ignore (Executor.submit pool h () ~k:1));
  Alcotest.(check bool)
    "try_submit sheds load" true
    (Executor.try_submit pool h () ~k:1 = None);
  let m = Executor.metrics pool in
  Alcotest.(check bool)
    "rejections counted" true
    (Metrics.Counter.get m.Metrics.breaker_rejected >= 2);
  Alcotest.(check int)
    "one trip recorded" 1
    (Metrics.Counter.get m.Metrics.breaker_opens);
  (* After the open window a probe is admitted (half-open); enough
     probe successes close the breaker. *)
  Atomic.set toy_behaviour `Ok;
  Unix.sleepf 0.35;
  let p1 = Executor.submit pool h () ~k:1 in
  Alcotest.(check string)
    "probe admitted: half-open" "half-open"
    (Breaker.state_string (Executor.breaker_state pool));
  Alcotest.(check string)
    "probe 1 succeeds" "complete"
    (Response.status_string (Future.await p1).Response.status);
  Executor.drain pool;
  let p2 = Executor.submit pool h () ~k:1 in
  Alcotest.(check string)
    "probe 2 succeeds" "complete"
    (Response.status_string (Future.await p2).Response.status);
  Executor.drain pool;
  Alcotest.(check string)
    "closed again" "closed"
    (Breaker.state_string (Executor.breaker_state pool));
  let r = Future.await (Executor.submit pool h () ~k:3) in
  Alcotest.(check string)
    "serving normally" "complete"
    (Response.status_string r.Response.status);
  Executor.shutdown pool

(* Registry bookkeeping. *)
let test_registry () =
  let fx = make_fixture ~n:500 ~queries:1 ~seed:5 () in
  let infos = Registry.list fx.registry in
  Alcotest.(check (list string))
    "names in registration order" [ "intervals"; "range1d" ]
    (List.map (fun (i : Registry.info) -> i.Registry.name) infos);
  Alcotest.(check bool) "mem" true (Registry.mem fx.registry "range1d");
  Alcotest.(check bool) "not mem" false (Registry.mem fx.registry "nope");
  (match Registry.resolve fx.registry "intervals" with
  | Error _ -> Alcotest.fail "resolve"
  | Ok i -> Alcotest.(check int) "size" 500 i.Registry.size);
  (* Lookup miss: every registered instance comes back as a
     suggestion, ranked by edit distance to the requested name. *)
  (match Registry.resolve fx.registry "interval" with
  | Ok _ -> Alcotest.fail "resolve miss"
  | Error (Error.Not_found suggestions) ->
      Alcotest.(check (list string))
        "suggestions ranked by distance" [ "intervals"; "range1d" ]
        suggestions
  | Error e -> Alcotest.failf "expected Not_found, got %s" (Error.to_string e));
  (* Duplicate registration: the error names the incumbent structure. *)
  Alcotest.check_raises "duplicate name"
    (Invalid_argument
       "Registry.register: duplicate instance \"intervals\" (already \
        registered as theorem2(seg-stab+slab-max), n=500)") (fun () ->
      ignore
        (Registry.register fx.registry ~name:"intervals"
           (module IInst.Topk_naive)
           (IInst.Topk_naive.build [||])))

(* Request validation. *)
let test_request_validation () =
  let fx = make_fixture ~n:100 ~queries:1 ~seed:3 () in
  Alcotest.check_raises "k = 0"
    (Invalid_argument "Request: k must be positive (got 0)") (fun () ->
      ignore (Topk_service.Request.prepare fx.itv_h 0.5 ~k:0));
  Alcotest.check_raises "negative budget"
    (Invalid_argument "Request: budget must be >= 0 (got -1)") (fun () ->
      ignore
        (Topk_service.Request.prepare fx.itv_h
           ~limits:{ Limits.budget = Some (-1); horizon = Limits.Unbounded }
           0.5 ~k:1));
  Alcotest.check_raises "Limits.make rejects negative budget"
    (Invalid_argument "Limits: budget must be >= 0 (got -2)") (fun () ->
      ignore (Limits.make ~budget:(-2) ()));
  Alcotest.check_raises "Limits.make rejects timeout+deadline"
    (Invalid_argument "Limits.make: pass either ~timeout or ~deadline, not both")
    (fun () -> ignore (Limits.make ~timeout:1.0 ~deadline:2.0 ()))

(* Metrics histogram math, single-threaded. *)
let test_metrics_histogram () =
  let h = Metrics.Histogram.create () in
  for v = 1 to 100 do
    Metrics.Histogram.observe h v
  done;
  Alcotest.(check int) "count" 100 (Metrics.Histogram.count h);
  Alcotest.(check int) "sum" 5050 (Metrics.Histogram.sum h);
  Alcotest.(check int) "max" 100 (Metrics.Histogram.max_value h);
  let p50 = Metrics.Histogram.percentile h 0.50 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 within bucket (got %d)" p50)
    true
    (p50 >= 50 && p50 <= 127);
  Alcotest.(check int) "p100 clamps to max" 100
    (Metrics.Histogram.percentile h 1.0);
  Alcotest.(check int) "empty" 0
    (Metrics.Histogram.percentile (Metrics.Histogram.create ()) 0.99)

(* Text exposition: the report must carry every durability counter
   (zero-valued on a fresh registry), render empty histograms without
   dividing by zero, and reflect counter/gauge/histogram updates. *)
let test_metrics_report () =
  let m = Metrics.create () in
  let has needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let r0 = Metrics.report m in
  List.iter
    (fun line ->
      Alcotest.(check bool) ("fresh report has " ^ line) true (has (line ^ " 0\n") r0))
    [
      "topk_wal_appends";
      "topk_wal_fsyncs";
      "topk_checkpoints";
      "topk_recoveries";
      "topk_torn_tails";
      "topk_checksum_failures";
      "topk_scrubs";
      "topk_queries_submitted";
      "topk_cache_hits";
      "topk_cache_misses";
      "topk_cache_evictions";
      "topk_cache_bypasses";
    ];
  Alcotest.(check bool) "fresh cache hit rate" true
    (has "topk_cache_hit_rate 0.0000\n" r0);
  Alcotest.(check bool) "hit-age histogram" true
    (has "topk_cache_hit_age_us_count 0\n" r0);
  (* An empty histogram renders zeros (and a 0.0 mean, not a NaN). *)
  Alcotest.(check bool) "empty histogram count" true
    (has "topk_recovery_time_us_count 0\n" r0);
  Alcotest.(check bool) "empty histogram p99" true
    (has "topk_recovery_time_us_p99 0\n" r0);
  Alcotest.(check bool) "empty histogram mean" true
    (has "topk_recovery_time_us_mean 0.0\n" r0);
  (* Updates show up. *)
  Metrics.Counter.incr m.Metrics.wal_appends;
  Metrics.Counter.incr m.Metrics.wal_appends;
  Metrics.Counter.incr m.Metrics.torn_tails;
  Metrics.Gauge.set m.Metrics.queue_depth 7;
  Metrics.Histogram.observe m.Metrics.recovery_time_us 0;
  let r1 = Metrics.report m in
  Alcotest.(check bool) "counter renders" true (has "topk_wal_appends 2\n" r1);
  Alcotest.(check bool) "torn tails render" true (has "topk_torn_tails 1\n" r1);
  Alcotest.(check bool) "gauge renders" true (has "topk_queue_depth 7\n" r1);
  (* A single zero observation: count 1, everything else still 0. *)
  Alcotest.(check bool) "zero observation count" true
    (has "topk_recovery_time_us_count 1\n" r1);
  Alcotest.(check bool) "zero observation sum" true
    (has "topk_recovery_time_us_sum 0\n" r1);
  Alcotest.(check bool) "zero observation max" true
    (has "topk_recovery_time_us_max 0\n" r1);
  (* p99 clamps to the exact max, not a bucket edge. *)
  Metrics.Histogram.observe m.Metrics.recovery_time_us 1000;
  Alcotest.(check int) "p99 clamps to max" 1000
    (Metrics.Histogram.percentile m.Metrics.recovery_time_us 0.99)

let () =
  Alcotest.run "service"
    [
      ( "executor",
        [
          Alcotest.test_case "pool matches sequential oracle" `Quick
            test_pool_matches_oracle;
          Alcotest.test_case "per-domain counters aggregate exactly" `Quick
            test_aggregated_counters_match_sequential;
          Alcotest.test_case "budget cutoff yields certified prefix" `Quick
            test_budget_cutoff_certified_prefix;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "raising handler is contained" `Quick
            test_raising_handler_is_contained;
          Alcotest.test_case "shutdown resolves queued futures" `Quick
            test_shutdown_resolves_queued_futures;
          Alcotest.test_case "breaker admission control" `Quick
            test_breaker_admission_control;
        ] );
      ( "registry",
        [
          Alcotest.test_case "registration and lookup" `Quick test_registry;
          Alcotest.test_case "request validation" `Quick
            test_request_validation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "text exposition" `Quick test_metrics_report;
        ] );
    ]
