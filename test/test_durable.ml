(* Tests for the durable ingestion subsystem: CRC framing, the
   fault-injecting disk layer, WAL segments, snapshots, the manifest,
   the durable store end to end, scrubbing — and the recovery law:
   for seeded random update streams and every swept crash point,
   recovery yields the from-scratch oracle over a prefix of the issued
   updates that contains every Sync-acknowledged one, across two
   different ingest instantiations. *)

module Rng = Topk_util.Rng
module I = Topk_interval.Interval
module IInst = Topk_interval.Instances
module RInst = Topk_range.Instances
module Wp = Topk_range.Wpoint
module Log = Topk_ingest.Update_log
module Frame = Topk_durable.Frame
module Disk = Topk_durable.Disk
module Wal = Topk_durable.Wal
module Snapshot = Topk_durable.Snapshot
module Manifest = Topk_durable.Manifest
module Store = Topk_durable.Store
module Scrub = Topk_durable.Scrub
module Metrics = Topk_service.Metrics
module Executor = Topk_service.Executor

(* ------------------------------------------------------------------ *)
(* Scratch directories                                                 *)

let dir_counter = ref 0

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir f =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "topk-durable-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  Disk.mkdir_p d;
  Fun.protect ~finally:(fun () -> Disk.clear (); rm_rf d) (fun () -> f d)

(* ------------------------------------------------------------------ *)
(* Frame                                                               *)

let test_frame_crc () =
  (* The canonical CRC-32 check value. *)
  Alcotest.(check int32) "crc32(123456789)" 0xCBF43926l
    (Frame.crc32 (Bytes.of_string "123456789"));
  Alcotest.(check int32) "crc32 empty" 0l (Frame.crc32 Bytes.empty);
  Alcotest.(check int32) "windowed = whole"
    (Frame.crc32 (Bytes.of_string "456"))
    (Frame.crc32 ~off:3 ~len:3 (Bytes.of_string "123456789"))

let test_frame_roundtrip () =
  let payloads = [ "hello"; ""; "a longer payload with \000 bytes \255" ] in
  let buf = Buffer.create 64 in
  List.iter (fun p -> Frame.append buf (Bytes.of_string p)) payloads;
  let got, status = Frame.parse_all (Buffer.to_bytes buf) in
  Alcotest.(check (list string)) "payloads survive" payloads
    (List.map Bytes.to_string got);
  Alcotest.(check bool) "clean" true (status = `Clean)

let test_frame_torn_and_corrupt () =
  let b = Frame.frame (Bytes.of_string "abcdef") in
  (* Cut inside the payload: torn. *)
  let torn = Bytes.sub b 0 (Bytes.length b - 2) in
  (match Frame.parse_all torn with
  | [], `Torn 0 -> ()
  | _ -> Alcotest.fail "expected torn at 0");
  (* Cut inside the header: also torn. *)
  (match Frame.parse torn 6 with
  | Frame.Torn -> ()
  | _ -> Alcotest.fail "short header should be torn");
  (* Flip one payload bit: corrupt, and the valid prefix stops there. *)
  let two = Buffer.create 32 in
  Frame.append two (Bytes.of_string "first");
  Frame.append two (Bytes.of_string "second");
  let bytes = Buffer.to_bytes two in
  Bytes.set bytes
    (Bytes.length bytes - 1)
    (Char.chr (Char.code (Bytes.get bytes (Bytes.length bytes - 1)) lxor 1));
  (match Frame.parse_all bytes with
  | [ p ], `Corrupt _ -> Alcotest.(check string) "prefix" "first" (Bytes.to_string p)
  | _ -> Alcotest.fail "expected one valid payload then corrupt");
  (* An absurd length field is corrupt, not a gigantic allocation. *)
  let big = Buffer.create 8 in
  Frame.add_u32 big (Frame.max_payload + 1);
  Frame.add_u32 big 0;
  Buffer.add_string big "xx";
  (match Frame.parse (Buffer.to_bytes big) 0 with
  | Frame.Corrupt -> ()
  | _ -> Alcotest.fail "oversized length accepted")

let test_frame_reader () =
  let b = Buffer.create 32 in
  Frame.add_u32 b 42;
  Frame.add_u64 b 123456789012345;
  Frame.add_string b "payload";
  let r = Frame.reader (Buffer.to_bytes b) in
  Alcotest.(check int) "u32" 42 (Frame.read_u32 r);
  Alcotest.(check int) "u64" 123456789012345 (Frame.read_u64 r);
  Alcotest.(check string) "string" "payload" (Frame.read_string r);
  Alcotest.check_raises "reading past the end raises"
    (Invalid_argument "Frame.reader: 4 bytes wanted at 23 of 23") (fun () ->
      ignore (Frame.read_u32 r))

(* ------------------------------------------------------------------ *)
(* Disk                                                                *)

let test_disk_plan_validation () =
  (try
     ignore (Disk.plan ~crash_at:0 ~seed:1 ());
     Alcotest.fail "crash_at 0 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Disk.plan ~corrupt_rate:1.5 ~seed:1 ());
    Alcotest.fail "corrupt_rate 1.5 accepted"
  with Invalid_argument _ -> ()

let test_disk_watermarks () =
  with_dir (fun d ->
      let p = Filename.concat d "f" in
      let f = Disk.create p in
      Disk.append f (Bytes.of_string "abc");
      Alcotest.(check int) "written" 3 (Disk.written f);
      Alcotest.(check int) "not yet durable" 0 (Disk.durable f);
      Disk.fsync f;
      Alcotest.(check int) "durable after fsync" 3 (Disk.durable f);
      Disk.append f (Bytes.of_string "de");
      Disk.close f;
      Alcotest.(check string) "content" "abcde"
        (Bytes.to_string (Disk.read_file p));
      (* Reopen keeps existing content and counts it durable. *)
      let g = Disk.open_append p in
      Alcotest.(check int) "reopened durable" 5 (Disk.durable g);
      Disk.append g (Bytes.of_string "f");
      Disk.fsync g;
      Disk.close g;
      Alcotest.(check string) "appended" "abcdef"
        (Bytes.to_string (Disk.read_file p)))

let test_disk_crash_truncates () =
  with_dir (fun d ->
      let p = Filename.concat d "f" in
      Disk.reset_ops ();
      (* Ops: append(1) fsync(2) append(3) fsync(4=crash). *)
      Disk.install (Disk.plan ~crash_at:4 ~seed:11 ());
      let f = Disk.create p in
      Disk.append f (Bytes.of_string "durable!");
      Disk.fsync f;
      Disk.append f (Bytes.of_string "pending");
      (try
         Disk.fsync f;
         Alcotest.fail "crash point did not fire"
       with Disk.Crash -> ());
      Alcotest.(check bool) "latch" true (Disk.crashed ());
      (* The machine stays dead. *)
      (try
         Disk.rename ~src:p ~dst:(p ^ "2");
         Alcotest.fail "op on a dead machine succeeded"
       with Disk.Crash -> ());
      Disk.clear ();
      let survived = Bytes.to_string (Disk.read_file p) in
      let n = String.length survived in
      Alcotest.(check bool)
        (Printf.sprintf "torn tail within bounds (%d bytes)" n)
        true
        (n >= 8 && n <= 15);
      Alcotest.(check string) "durable prefix intact" "durable!"
        (String.sub survived 0 8))

let test_disk_corruption () =
  with_dir (fun d ->
      let p = Filename.concat d "f" in
      Disk.install (Disk.plan ~corrupt_rate:1.0 ~seed:5 ());
      let f = Disk.create p in
      let payload = Bytes.make 32 '\x00' in
      Disk.append f payload;
      Disk.fsync f;
      Disk.close f;
      Disk.clear ();
      let got = Disk.read_file p in
      let flipped = ref 0 in
      Bytes.iter
        (fun c ->
          let rec bits n = if n = 0 then 0 else (n land 1) + bits (n lsr 1) in
          flipped := !flipped + bits (Char.code c))
        got;
      Alcotest.(check int) "exactly one bit flipped" 1 !flipped;
      Alcotest.(check bool) "caller's buffer untouched" true
        (Bytes.for_all (fun c -> c = '\x00') payload))

let test_disk_phases () =
  with_dir (fun d ->
      Disk.reset_ops ();
      Disk.set_recording true;
      Disk.set_phase "one";
      let f = Disk.create (Filename.concat d "f") in
      Disk.append f (Bytes.of_string "x");
      Disk.set_phase "two";
      Disk.fsync f;
      Disk.close f;
      Disk.set_recording false;
      Alcotest.(check (list (pair int string)))
        "phase log" [ (1, "one"); (2, "two") ] (Disk.phase_log ());
      Alcotest.(check int) "op count" 2 (Disk.op_count ()))

(* ------------------------------------------------------------------ *)
(* Wal                                                                 *)

let entries_of n = List.init n (fun i ->
    { Log.seq = i + 1;
      op = (if i mod 3 = 2 then Log.Delete (i * 10) else Log.Insert (i * 10)) })

let test_wal_roundtrip () =
  with_dir (fun d ->
      let w : int Wal.t = Wal.create ~dir:d ~gen:1 in
      let es = entries_of 7 in
      List.iter (Wal.append w) es;
      Alcotest.(check int) "unflushed" 7 (Wal.unflushed w);
      Wal.flush w;
      Alcotest.(check int) "flushed" 0 (Wal.unflushed w);
      Wal.close w;
      let got, status = Wal.load ~dir:d ~gen:1 in
      Alcotest.(check bool) "clean" true (status = `Clean);
      Alcotest.(check bool) "entries survive" true (got = es);
      Alcotest.(check bool) "missing segment is empty-clean" true
        (Wal.load ~dir:d ~gen:9 = ([], `Clean)))

let test_wal_torn_tail () =
  with_dir (fun d ->
      let w : int Wal.t = Wal.create ~dir:d ~gen:1 in
      let es = entries_of 4 in
      List.iter (Wal.append w) es;
      Wal.flush w;
      Wal.close w;
      (* A crash mid-append: half a frame header at the end. *)
      let p = Wal.path ~dir:d ~gen:1 in
      let f = Disk.open_append p in
      Disk.append f (Bytes.of_string "\042\000");
      Disk.close f;
      let got, status = Wal.load ~dir:d ~gen:1 in
      Alcotest.(check bool) "prefix" true (got = es);
      Alcotest.(check bool) "torn" true (status = `Torn);
      (* The tail was truncated in place: a second load is clean. *)
      Alcotest.(check bool) "repaired" true (Wal.load ~dir:d ~gen:1 = (es, `Clean)))

let test_wal_length_rot_not_truncated () =
  with_dir (fun d ->
      let w : int Wal.t = Wal.create ~dir:d ~gen:1 in
      let es = entries_of 5 in
      List.iter (Wal.append w) es;
      Wal.flush w;
      Wal.close w;
      let p = Wal.path ~dir:d ~gen:1 in
      let b = Disk.read_file p in
      (* Find the third frame's offset, then rot its length header so
         the claimed payload extends past EOF: parse sees "torn" there
         even though two intact frames sit right behind it. *)
      let off =
        let rec skip o n =
          if n = 0 then o
          else
            match Frame.parse b o with
            | Frame.Record (_, next) -> skip next (n - 1)
            | _ -> Alcotest.fail "setup: expected a record"
        in
        skip 0 2
      in
      let bogus = Bytes.length b in
      for i = 0 to 3 do
        Bytes.set b (off + i) (Char.chr ((bogus lsr (8 * i)) land 0xFF))
      done;
      let f = Disk.create p in
      Disk.append f b;
      Disk.close f;
      let got, status = Wal.load ~dir:d ~gen:1 in
      Alcotest.(check bool) "classified corrupt, not torn" true (status = `Corrupt);
      Alcotest.(check bool) "prefix of two" true
        (got = [ List.nth es 0; List.nth es 1 ]);
      Alcotest.(check int) "file left untouched as evidence"
        (Bytes.length b)
        (Bytes.length (Disk.read_file p));
      (* Not a self-repair: a reload sees the same corruption. *)
      let (_ : int Log.entry list), status' = Wal.load ~dir:d ~gen:1 in
      Alcotest.(check bool) "still corrupt on reload" true (status' = `Corrupt))

let test_wal_corrupt () =
  with_dir (fun d ->
      let w : int Wal.t = Wal.create ~dir:d ~gen:1 in
      List.iter (Wal.append w) (entries_of 5);
      Wal.flush w;
      Wal.close w;
      let p = Wal.path ~dir:d ~gen:1 in
      let b = Disk.read_file p in
      (* Flip a bit in the middle of the file (inside some frame). *)
      let mid = Bytes.length b / 2 in
      Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x10));
      let f = Disk.create p in
      Disk.append f b;
      Disk.close f;
      let got, status = Wal.load ~dir:d ~gen:1 in
      Alcotest.(check bool) "corrupt detected" true (status = `Corrupt);
      Alcotest.(check bool) "only a strict prefix survives" true
        (List.length got < 5))

(* ------------------------------------------------------------------ *)
(* Snapshot / Manifest                                                 *)

let mk_run level seq elems dead =
  { Topk_ingest.Ingest.rd_level = level; rd_seq = seq;
    rd_elems = Array.of_list elems; rd_dead = Array.of_list dead }

let test_snapshot_roundtrip () =
  with_dir (fun d ->
      let runs = [ mk_run 0 12 [ 1; 2; 3 ] [ 7 ]; mk_run 3 0 [ 4; 5 ] [] ] in
      Alcotest.(check bool) "write publishes" true
        (Snapshot.write ~dir:d ~gen:2 ~seq:12 ~runs);
      Alcotest.(check bool) "no tmp left" false
        (Disk.exists (Snapshot.path ~dir:d ~gen:2 ^ ".tmp"));
      (match Snapshot.read (Snapshot.path ~dir:d ~gen:2) with
      | Ok { Snapshot.seq; runs = got } ->
          Alcotest.(check int) "seq" 12 seq;
          Alcotest.(check bool) "runs" true (got = runs)
      | Error _ -> Alcotest.fail "read back failed");
      Alcotest.(check bool) "missing" true
        (Snapshot.read (Snapshot.path ~dir:d ~gen:9) = Error `Missing);
      (* Bit rot on a published snapshot is detected. *)
      let p = Snapshot.path ~dir:d ~gen:2 in
      let b = Disk.read_file p in
      Bytes.set b 20 (Char.chr (Char.code (Bytes.get b 20) lxor 4));
      let f = Disk.create p in
      Disk.append f b;
      Disk.close f;
      Alcotest.(check bool) "corrupt detected" true
        ((Snapshot.read p : (int Snapshot.contents, _) result) = Error `Corrupt))

let test_snapshot_write_gate () =
  with_dir (fun d ->
      (* Every byte written is bit-flipped: the read-back gate must
         refuse to publish. *)
      Disk.install (Disk.plan ~corrupt_rate:1.0 ~seed:3 ());
      let ok = Snapshot.write ~dir:d ~gen:1 ~seq:0 ~runs:[ mk_run 0 0 [ 1 ] [] ] in
      Disk.clear ();
      Alcotest.(check bool) "rejected" false ok;
      Alcotest.(check bool) "nothing published" false
        (Disk.exists (Snapshot.path ~dir:d ~gen:1)))

let test_manifest () =
  with_dir (fun d ->
      Alcotest.(check (list int)) "empty" [] (Manifest.gens ~dir:d);
      Alcotest.(check bool) "publish 1" true (Manifest.publish ~dir:d ~gen:1);
      Alcotest.(check bool) "publish 3" true (Manifest.publish ~dir:d ~gen:3);
      Alcotest.(check (list int)) "newest first" [ 3; 1 ] (Manifest.gens ~dir:d);
      Alcotest.(check (option int)) "read" (Some 3)
        (Manifest.read (Manifest.path ~dir:d ~gen:3));
      (* Corruption → None, and recovery would fall back to gen 1. *)
      let p = Manifest.path ~dir:d ~gen:3 in
      let b = Disk.read_file p in
      Bytes.set b 9 (Char.chr (Char.code (Bytes.get b 9) lxor 1));
      let f = Disk.create p in
      Disk.append f b;
      Disk.close f;
      Alcotest.(check (option int)) "corrupt manifest" None (Manifest.read p))

(* ------------------------------------------------------------------ *)
(* Store: end-to-end durability on the interval instance               *)

module IStore = Store.Make (IInst.Topk_t2)
module Ing = IStore.I

let iparams = IInst.params ()

let random_interval rng id =
  let lo = Rng.uniform rng in
  let hi = lo +. Rng.float rng (1.2 -. lo) in
  I.make ~id ~lo ~hi:(min 1.2 hi)
    ~weight:(float_of_int id +. Rng.float rng 0.3)
    ()

let live_ids st =
  let v = Ing.pin (IStore.index st) in
  let ids =
    List.sort compare (List.map (fun (e : I.t) -> e.I.id) (Ing.view_live v))
  in
  Ing.unpin v;
  ids

let test_store_roundtrip () =
  with_dir (fun d ->
      let rng = Rng.create 77 in
      let base = Array.init 10 (fun i -> random_interval rng i) in
      let m = Metrics.create () in
      let st =
        IStore.create ~params:iparams ~buffer_cap:8 ~fanout:2 ~metrics:m
          ~mode:Store.Sync ~checkpoint_every:2 ~dir:d base
      in
      let last = Hashtbl.create 32 in
      Array.iter (fun (e : I.t) -> Hashtbl.replace last e.I.id e) base;
      for i = 10 to 49 do
        let e = random_interval rng i in
        Hashtbl.replace last e.I.id e;
        IStore.insert st e
      done;
      List.iter
        (fun id ->
          IStore.delete st (Hashtbl.find last id);
          Hashtbl.remove last id)
        [ 3; 17; 42 ];
      let want = List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) last []) in
      Alcotest.(check (list int)) "live before close" want (live_ids st);
      IStore.close st;
      Alcotest.(check bool) "wal appends counted" true
        (Metrics.Counter.get m.Metrics.wal_appends >= 43);
      Alcotest.(check bool) "fsyncs counted" true
        (Metrics.Counter.get m.Metrics.wal_fsyncs >= 43);
      Alcotest.(check bool) "checkpoints counted" true
        (Metrics.Counter.get m.Metrics.checkpoints >= 1);
      match
        IStore.recover ~params:iparams ~buffer_cap:8 ~fanout:2 ~metrics:m
          ~mode:Store.Sync ~dir:d ()
      with
      | None -> Alcotest.fail "no recovery root"
      | Some st' ->
          Alcotest.(check (list int)) "recovered live set" want (live_ids st');
          Alcotest.(check int) "recovered prefix = all 43 updates" 43
            (IStore.recovered_seq st');
          Alcotest.(check int) "recovery counted" 1
            (Metrics.Counter.get m.Metrics.recoveries);
          (* The recovered store keeps working. *)
          let e = random_interval rng 99 in
          IStore.insert st' e;
          Alcotest.(check bool) "queryable after recovery" true
            (List.exists
               (fun (x : I.t) -> x.I.id = 99)
               (IStore.query st' ((e.I.lo +. e.I.hi) /. 2.) ~k:200));
          IStore.close st')

(* A crash between a manifest publish and its GC strands a whole
   superseded generation; the next checkpoint must sweep every stale
   generation (and tmp leftovers), not just the immediately previous
   one. *)
let test_store_gc_sweeps_stale_generations () =
  with_dir (fun d ->
      let rng = Rng.create 21 in
      let st =
        IStore.create ~params:iparams ~buffer_cap:4 ~fanout:2
          ~mode:Store.Sync ~checkpoint_every:1 ~dir:d
          (Array.init 4 (fun i -> random_interval rng i))
      in
      for i = 4 to 15 do
        IStore.insert st (random_interval rng i)
      done;
      let g = IStore.generation st in
      Alcotest.(check bool) "several generations elapsed" true (g >= 2);
      (* Fabricate a stranded generation-1 (as if an old GC died
         mid-sweep) plus a tmp leftover. *)
      let strand name =
        let f = Disk.create (Filename.concat d name) in
        Disk.append f (Bytes.of_string "stale");
        Disk.close f
      in
      List.iter strand
        [ "manifest-1"; "snap-1.dat"; "wal-1.log"; "snap-1.dat.tmp" ];
      IStore.checkpoint st;
      let g' = IStore.generation st in
      Alcotest.(check int) "checkpoint advanced" (g + 1) g';
      Alcotest.(check (list string)) "only the live generation remains"
        (List.sort String.compare
           [ Printf.sprintf "manifest-%d" g';
             Printf.sprintf "snap-%d.dat" g';
             Printf.sprintf "wal-%d.log" g' ])
        (Disk.readdir d);
      IStore.close st)

(* Manual checkpoints racing concurrent writers: the capture and the
   WAL rotation are one critical section of the ingest wrapper, so no
   writer can append to the segment being retired (which used to raise
   out of the writer) or lose a Sync-acked record with the deleted old
   generation. *)
let test_store_checkpoint_vs_writers () =
  with_dir (fun d ->
      let rng = Rng.create 31 in
      let base = Array.init 5 (fun i -> random_interval rng i) in
      let st =
        IStore.create ~params:iparams ~buffer_cap:8 ~fanout:2
          ~mode:Store.Sync ~checkpoint_every:2 ~dir:d base
      in
      let n = 150 in
      let elems = Array.init n (fun i -> random_interval rng (1000 + i)) in
      let writer =
        Domain.spawn (fun () -> Array.iter (fun e -> IStore.insert st e) elems)
      in
      for _ = 1 to 25 do
        IStore.checkpoint st
      done;
      Domain.join writer;
      IStore.checkpoint st;
      let want =
        List.sort compare
          (Array.to_list (Array.map (fun (e : I.t) -> e.I.id) base)
          @ List.init n (fun i -> 1000 + i))
      in
      Alcotest.(check (list int)) "no update lost" want (live_ids st);
      IStore.close st;
      match
        IStore.recover ~params:iparams ~buffer_cap:8 ~fanout:2
          ~mode:Store.Sync ~dir:d ()
      with
      | None -> Alcotest.fail "no recovery root"
      | Some st' ->
          Alcotest.(check int) "every acked update recovered" n
            (IStore.recovered_seq st');
          Alcotest.(check (list int)) "recovered set" want (live_ids st');
          IStore.close st')

let test_store_recover_empty () =
  with_dir (fun d ->
      Alcotest.(check bool) "empty dir" true
        (IStore.recover ~params:iparams ~dir:d () = None))

let test_store_volatile () =
  with_dir (fun d ->
      let rng = Rng.create 5 in
      let st =
        IStore.create ~params:iparams ~mode:Store.Volatile ~dir:d
          (Array.init 5 (fun i -> random_interval rng i))
      in
      IStore.insert st (random_interval rng 50);
      IStore.close st;
      Alcotest.(check int) "generation stays 0" 0 (IStore.generation st);
      Alcotest.(check (list string)) "no durable files" [] (Disk.readdir d))

let test_mode_of_string () =
  Alcotest.(check bool) "sync" true (Store.mode_of_string "sync" = Some Store.Sync);
  Alcotest.(check bool) "volatile" true
    (Store.mode_of_string "volatile" = Some Store.Volatile);
  Alcotest.(check bool) "async:8" true
    (Store.mode_of_string "async:8" = Some (Store.Async 8));
  Alcotest.(check bool) "async:0 rejected" true
    (Store.mode_of_string "async:0" = None);
  Alcotest.(check bool) "garbage rejected" true (Store.mode_of_string "wal" = None)

(* ------------------------------------------------------------------ *)
(* Scrub                                                               *)

let test_scrub () =
  with_dir (fun d ->
      let rng = Rng.create 13 in
      let st =
        IStore.create ~params:iparams ~buffer_cap:8 ~mode:Store.Sync ~dir:d
          (Array.init 8 (fun i -> random_interval rng i))
      in
      for i = 8 to 19 do
        IStore.insert st (random_interval rng i)
      done;
      IStore.close st;
      let m = Metrics.create () in
      let r = Scrub.run_once ~metrics:m ~dir:d () in
      Alcotest.(check (list string)) "healthy" [] r.Scrub.bad;
      Alcotest.(check bool) "examined snapshot+manifest" true (r.Scrub.files >= 2);
      Alcotest.(check int) "pass counted" 1 (Metrics.Counter.get m.Metrics.scrubs);
      (* Rot a snapshot byte: the scrubber finds it. *)
      let snap =
        List.find (fun n -> String.length n > 5 && String.sub n 0 5 = "snap-")
          (Disk.readdir d)
      in
      let p = Filename.concat d snap in
      let b = Disk.read_file p in
      Bytes.set b (Bytes.length b / 2)
        (Char.chr (Char.code (Bytes.get b (Bytes.length b / 2)) lxor 2));
      let f = Disk.create p in
      Disk.append f b;
      Disk.close f;
      let r2 = Scrub.run_once ~metrics:m ~dir:d () in
      Alcotest.(check (list string)) "rot found" [ p ] r2.Scrub.bad;
      Alcotest.(check int) "failure counted" 1
        (Metrics.Counter.get m.Metrics.checksum_failures))

let test_scrub_background () =
  with_dir (fun d ->
      let rng = Rng.create 14 in
      let st =
        IStore.create ~params:iparams ~mode:Store.Sync ~dir:d
          (Array.init 6 (fun i -> random_interval rng i))
      in
      IStore.close st;
      let pool = Executor.create ~workers:2 () in
      Fun.protect
        ~finally:(fun () -> Executor.shutdown pool)
        (fun () ->
          let join = Scrub.spawn ~pool ~dir:d () in
          match join () with
          | Some r -> Alcotest.(check (list string)) "clean" [] r.Scrub.bad
          | None -> Alcotest.fail "background scrub failed"))

(* ------------------------------------------------------------------ *)
(* The recovery law, swept over crash points and two instantiations    *)

module Crash_law (T : Topk_core.Sigs.TOPK) = struct
  module S = Store.Make (T)

  (* A deterministic op stream: (is_insert, elem) with ids drawn from a
     small space so deletes and re-inserts actually collide. *)
  let mk_ops ~mk_elem ~n ~seed =
    let rng = Rng.create seed in
    let last = Hashtbl.create 32 in
    Array.init n (fun _i ->
        let id = Rng.int rng 24 in
        if Hashtbl.mem last id && Rng.bernoulli rng 0.3 then (
          let e = Hashtbl.find last id in
          Hashtbl.remove last id;
          (false, e))
        else
          let e = mk_elem rng id in
          Hashtbl.replace last id e;
          (true, e))

  let oracle_ids ~base ~ops r =
    let live = Hashtbl.create 64 in
    Array.iter (fun e -> Hashtbl.replace live (T.P.id e) ()) base;
    Array.iteri
      (fun i (ins, e) ->
        if i < r then
          if ins then Hashtbl.replace live (T.P.id e) ()
          else Hashtbl.remove live (T.P.id e))
      ops;
    List.sort compare (Hashtbl.fold (fun k () a -> k :: a) live [])

  let live_ids st =
    let v = S.I.pin (S.index st) in
    let ids = List.sort compare (List.map T.P.id (S.I.view_live v)) in
    S.I.unpin v;
    ids

  (* Sweep every [stride]-th crash point of the profiled op stream.
     The law: recovery yields the oracle over a prefix [r] of the
     issued updates with sync_acked <= r <= issued. *)
  let sweep ~name ~params ~mode ~mk_elem ~seed ~stride () =
    let n = 48 in
    let base = Array.init 6 (fun i -> mk_elem (Rng.create (seed + i)) (100 + i)) in
    let ops = mk_ops ~mk_elem ~n ~seed in
    let build dir =
      S.create ~params ~buffer_cap:8 ~fanout:2 ~mode ~checkpoint_every:2 ~dir
        base
    in
    (* Profile pass: no crash, count the disk ops this workload makes. *)
    let total_ops =
      with_dir (fun d ->
          Disk.clear ();
          Disk.reset_ops ();
          let st = build d in
          Array.iter (fun (ins, e) -> if ins then S.insert st e else S.delete st e) ops;
          S.close st;
          (* Sanity: the surviving set after all n ops is the oracle's. *)
          (match
             S.recover ~params ~buffer_cap:8 ~fanout:2 ~mode ~dir:d ()
           with
          | None -> Alcotest.fail "profile run lost its root"
          | Some st' ->
              Alcotest.(check (list int))
                (name ^ ": full-stream recovery")
                (oracle_ids ~base ~ops n) (live_ids st');
              S.close st');
          Disk.op_count ())
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s: workload makes enough disk ops (%d)" name total_ops)
      true (total_ops > 60);
    let point = ref 1 in
    while !point <= total_ops do
      let c = !point in
      point := !point + stride;
      with_dir (fun d ->
          Disk.reset_ops ();
          Disk.install (Disk.plan ~crash_at:c ~seed:(seed lxor (c * 7919)) ());
          let acked = ref 0 and issued = ref 0 in
          (try
             let st = build d in
             Array.iter
               (fun (ins, e) ->
                 incr issued;
                 if ins then S.insert st e else S.delete st e;
                 incr acked)
               ops;
             S.close st
           with Disk.Crash -> ());
          Disk.clear ();
          match S.recover ~params ~buffer_cap:8 ~fanout:2 ~mode ~dir:d () with
          | None ->
              (* Legal only if the store never finished creating — no
                 update was ever accepted. *)
              Alcotest.(check int)
                (Printf.sprintf "%s@%d: no root but updates acked" name c)
                0 !acked
          | Some st' ->
              let r = S.recovered_seq st' in
              if r > !issued then
                Alcotest.failf "%s@%d: recovered %d > issued %d" name c r !issued;
              if mode = Store.Sync && r < !acked then
                Alcotest.failf "%s@%d: recovered %d < sync-acked %d" name c r !acked;
              Alcotest.(check (list int))
                (Printf.sprintf "%s@%d: oracle prefix %d" name c r)
                (oracle_ids ~base ~ops r) (live_ids st');
              S.close st')
    done
end

module Interval_law = Crash_law (IInst.Topk_t2)
module Range_law = Crash_law (RInst.Topk_t2)

let mk_point rng id =
  Wp.make ~id ~pos:(Rng.uniform rng)
    ~weight:(float_of_int id +. Rng.float rng 0.4)
    ()

let test_law_interval_sync () =
  Interval_law.sweep ~name:"interval/sync" ~params:iparams ~mode:Store.Sync
    ~mk_elem:random_interval ~seed:4242 ~stride:3 ()

let test_law_interval_async () =
  Interval_law.sweep ~name:"interval/async" ~params:iparams
    ~mode:(Store.Async 4) ~mk_elem:random_interval ~seed:929 ~stride:5 ()

let test_law_range_sync () =
  Range_law.sweep ~name:"range/sync" ~params:(RInst.params ()) ~mode:Store.Sync
    ~mk_elem:mk_point ~seed:17 ~stride:4 ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "durable"
    [
      ( "frame",
        [
          Alcotest.test_case "crc32 vectors" `Quick test_frame_crc;
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "torn and corrupt" `Quick test_frame_torn_and_corrupt;
          Alcotest.test_case "reader" `Quick test_frame_reader;
        ] );
      ( "disk",
        [
          Alcotest.test_case "plan validation" `Quick test_disk_plan_validation;
          Alcotest.test_case "watermarks" `Quick test_disk_watermarks;
          Alcotest.test_case "crash truncates to a torn tail" `Quick
            test_disk_crash_truncates;
          Alcotest.test_case "corruption flips one bit" `Quick test_disk_corruption;
          Alcotest.test_case "phase recording" `Quick test_disk_phases;
        ] );
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "torn tail truncated" `Quick test_wal_torn_tail;
          Alcotest.test_case "corrupt frame stops replay" `Quick test_wal_corrupt;
          Alcotest.test_case "length-header rot is corruption, not a tail" `Quick
            test_wal_length_rot_not_truncated;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip and rot detection" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "read-back gate refuses corruption" `Quick
            test_snapshot_write_gate;
        ] );
      ("manifest", [ Alcotest.test_case "publish/read/gens" `Quick test_manifest ]);
      ( "store",
        [
          Alcotest.test_case "write, close, recover, continue" `Quick
            test_store_roundtrip;
          Alcotest.test_case "GC sweeps stale generations" `Quick
            test_store_gc_sweeps_stale_generations;
          Alcotest.test_case "manual checkpoint vs concurrent writers" `Quick
            test_store_checkpoint_vs_writers;
          Alcotest.test_case "recover on empty dir" `Quick test_store_recover_empty;
          Alcotest.test_case "volatile writes nothing" `Quick test_store_volatile;
          Alcotest.test_case "mode_of_string" `Quick test_mode_of_string;
        ] );
      ( "scrub",
        [
          Alcotest.test_case "finds rot" `Quick test_scrub;
          Alcotest.test_case "background pass on the pool" `Quick
            test_scrub_background;
        ] );
      ( "recovery-law",
        [
          Alcotest.test_case "interval Theorem 2, sync" `Quick test_law_interval_sync;
          Alcotest.test_case "interval Theorem 2, async group-commit" `Quick
            test_law_interval_async;
          Alcotest.test_case "1D range Theorem 2, sync" `Quick test_law_range_sync;
        ] );
    ]
