(* Tests for the dynamic structures: Bentley-Saxe prioritized, dynamic
   stabbing-max, and the dynamic form of Theorem 2 (updates in
   O(U_pri + U_max) expected). *)

module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module I = Topk_interval.Interval
module Inst = Topk_interval.Instances
module Dyn_pri = Topk_interval.Instances.Dyn_pri
module Dyn_max = Topk_interval.Dyn_max
module Dyn_topk = Topk_interval.Instances.Dyn_topk
module Sigs = Topk_core.Sigs

let ids elems = List.map (fun (e : I.t) -> e.I.id) elems

let sorted_ids elems = List.sort Int.compare (ids elems)

(* A mutable reference model: a plain list of live intervals. *)
module Model = struct
  type t = { mutable live : I.t list }

  let create () = { live = [] }

  let insert t e = t.live <- e :: t.live

  let delete t (e : I.t) =
    t.live <- List.filter (fun (x : I.t) -> x.I.id <> e.I.id) t.live

  let prioritized t q ~tau =
    List.filter (fun (e : I.t) -> I.contains e q && e.I.weight >= tau) t.live

  let max t q =
    List.fold_left
      (fun best e ->
        if I.contains e q then
          match best with
          | None -> Some e
          | Some b -> if I.compare_weight e b > 0 then Some e else best
        else best)
      None t.live

  let top_k t q ~k =
    Topk_util.Select.top_k ~cmp:I.compare_weight k
      (List.filter (fun e -> I.contains e q) t.live)
end

let random_interval rng id =
  let lo = Rng.uniform rng in
  let hi = lo +. Rng.float rng (1.2 -. lo) in
  I.make ~id ~lo ~hi:(min 1.2 hi)
    ~weight:(float_of_int id +. Rng.float rng 0.3)
    ()

(* Drive structure and model through the same random trace, checking
   agreement after every batch. *)
let run_trace ~check ~insert ~delete rng ~ops ~check_every =
  let model = Model.create () in
  let next_id = ref 0 in
  for op = 1 to ops do
    let do_insert =
      List.length model.Model.live < 10 || Rng.bernoulli rng 0.6
    in
    if do_insert then begin
      incr next_id;
      let e = random_interval rng !next_id in
      Model.insert model e;
      insert e
    end
    else begin
      let live = Array.of_list model.Model.live in
      let e = live.(Rng.int rng (Array.length live)) in
      Model.delete model e;
      delete e
    end;
    if op mod check_every = 0 then check model
  done;
  check model

let test_dyn_pri_trace () =
  let rng = Rng.create 301 in
  let s = Dyn_pri.build [||] in
  run_trace rng ~ops:600 ~check_every:50
    ~insert:(Dyn_pri.insert s)
    ~delete:(Dyn_pri.delete s)
    ~check:(fun model ->
      Alcotest.(check int) "live count" (List.length model.Model.live)
        (Dyn_pri.live s);
      let qs = Gen.stab_queries rng ~n:10 in
      Array.iter
        (fun q ->
          List.iter
            (fun tau ->
              Alcotest.(check (list int))
                "dyn prioritized"
                (sorted_ids (Model.prioritized model q ~tau))
                (sorted_ids (Dyn_pri.query s q ~tau)))
            [ Float.neg_infinity; 100.; 400. ])
        qs)

let test_dyn_pri_monitored_trace () =
  let rng = Rng.create 303 in
  let s = Dyn_pri.build [||] in
  run_trace rng ~ops:300 ~check_every:60
    ~insert:(Dyn_pri.insert s)
    ~delete:(Dyn_pri.delete s)
    ~check:(fun model ->
      let qs = Gen.stab_queries rng ~n:5 in
      Array.iter
        (fun q ->
          let expected = Model.prioritized model q ~tau:Float.neg_infinity in
          let total = List.length expected in
          (* All-verdict must be exact even with tombstones. *)
          (match
             Dyn_pri.query_monitored s q ~tau:Float.neg_infinity ~limit:total
           with
           | Sigs.All got ->
               Alcotest.(check (list int))
                 "monitored all" (sorted_ids expected) (sorted_ids got)
           | Sigs.Truncated _ -> Alcotest.fail "unexpected truncation");
          if total > 3 then
            match
              Dyn_pri.query_monitored s q ~tau:Float.neg_infinity
                ~limit:(total - 2)
            with
            | Sigs.Truncated prefix ->
                Alcotest.(check bool)
                  "truncated bigger than limit" true
                  (List.length prefix > total - 2)
            | Sigs.All _ -> Alcotest.fail "expected truncation")
        qs)

let test_dyn_max_trace () =
  let rng = Rng.create 307 in
  let s = Dyn_max.build [||] in
  run_trace rng ~ops:600 ~check_every:40
    ~insert:(Dyn_max.insert s)
    ~delete:(Dyn_max.delete s)
    ~check:(fun model ->
      let qs = Gen.stab_queries rng ~n:15 in
      Array.iter
        (fun q ->
          Alcotest.(check (option int))
            "dyn max"
            (Option.map (fun (e : I.t) -> e.I.id) (Model.max model q))
            (Option.map (fun (e : I.t) -> e.I.id) (Dyn_max.query s q)))
        qs)

let test_dyn_max_delete_heavy () =
  (* Repeatedly delete the current maximum: the head-skipping must
     keep answers exact. *)
  let rng = Rng.create 311 in
  let n = 200 in
  let elems =
    Array.init n (fun i -> random_interval rng (i + 1))
  in
  let s = Dyn_max.build elems in
  let model = Model.create () in
  Array.iter (Model.insert model) elems;
  let q = 0.55 in
  let rec drain steps =
    if steps > 0 then begin
      match Model.max model q with
      | None ->
          Alcotest.(check (option int)) "both empty" None
            (Option.map (fun (e : I.t) -> e.I.id) (Dyn_max.query s q))
      | Some m ->
          Alcotest.(check (option int))
            "max agrees" (Some m.I.id)
            (Option.map (fun (e : I.t) -> e.I.id) (Dyn_max.query s q));
          Model.delete model m;
          Dyn_max.delete s m;
          drain (steps - 1)
    end
  in
  drain n

(* Delete-then-requery edge cases: drain to empty, delete the current
   maximum, and re-insert a tombstoned key (the stale copy is baked
   into a bucket, so the tombstone must not filter the fresh copy). *)

let test_delete_to_empty () =
  let rng = Rng.create 331 in
  let elems = Array.init 40 (fun i -> random_interval rng (i + 1)) in
  let pri = Dyn_pri.build elems in
  let mx = Dyn_max.build elems in
  let topk = Dyn_topk.build ~params:(Inst.params ()) elems in
  Array.iter
    (fun e ->
      Dyn_pri.delete pri e;
      Dyn_max.delete mx e;
      Dyn_topk.delete topk e)
    elems;
  Alcotest.(check int) "pri empty" 0 (Dyn_pri.live pri);
  Alcotest.(check int) "topk empty" 0 (Dyn_topk.size topk);
  Array.iter
    (fun q ->
      Alcotest.(check (list int))
        "pri answers nothing" []
        (ids (Dyn_pri.query pri q ~tau:Float.neg_infinity));
      Alcotest.(check (option int))
        "max answers nothing" None
        (Option.map (fun (e : I.t) -> e.I.id) (Dyn_max.query mx q));
      Alcotest.(check (list int))
        "topk answers nothing" []
        (ids (Dyn_topk.query topk q ~k:5)))
    (Gen.stab_queries rng ~n:10);
  (* The structures stay usable after draining: fresh inserts serve. *)
  let e = random_interval rng 1000 in
  Dyn_pri.insert pri e;
  Dyn_max.insert mx e;
  Dyn_topk.insert topk e;
  let q = (e.I.lo +. e.I.hi) /. 2. in
  Alcotest.(check (list int)) "pri serves again" [ 1000 ]
    (ids (Dyn_pri.query pri q ~tau:Float.neg_infinity));
  Alcotest.(check (option int)) "max serves again" (Some 1000)
    (Option.map (fun (e : I.t) -> e.I.id) (Dyn_max.query mx q));
  Alcotest.(check (list int)) "topk serves again" [ 1000 ]
    (ids (Dyn_topk.query topk q ~k:3))

let test_dyn_topk_delete_current_max () =
  (* Repeatedly delete the top answer: every rung's max structure must
     skip its tombstoned head and the next query stay exact. *)
  let rng = Rng.create 337 in
  let elems = Array.init 150 (fun i -> random_interval rng (i + 1)) in
  let s = Dyn_topk.build ~params:(Inst.params ()) elems in
  let model = Model.create () in
  Array.iter (Model.insert model) elems;
  let q = 0.5 in
  let steps = ref 0 in
  let continue = ref true in
  while !continue do
    match Model.top_k model q ~k:1 with
    | [] ->
        Alcotest.(check (list int)) "both drained" []
          (ids (Dyn_topk.query s q ~k:1));
        continue := false
    | m :: _ ->
        incr steps;
        Alcotest.(check (list int))
          "top-1 agrees before the delete" [ m.I.id ]
          (ids (Dyn_topk.query s q ~k:1));
        Model.delete model m;
        Dyn_topk.delete s m;
        Alcotest.(check (list int))
          "top-3 agrees after deleting the max"
          (ids (Model.top_k model q ~k:3))
          (ids (Dyn_topk.query s q ~k:3))
  done;
  Alcotest.(check bool) "drained something" true (!steps > 0)

let test_reinsert_tombstoned_key () =
  let rng = Rng.create 347 in
  let elems = Array.init 30 (fun i -> random_interval rng (i + 1)) in
  let pri = Dyn_pri.build elems in
  let mx = Dyn_max.build elems in
  let topk = Dyn_topk.build ~params:(Inst.params ()) elems in
  let victim = elems.(12) in
  List.iter
    (fun e ->
      Dyn_pri.delete pri e;
      Dyn_max.delete mx e;
      Dyn_topk.delete topk e)
    [ victim ];
  (* Re-insert the same id as a heavier, full-span interval: it must be
     visible (and win) everywhere — the old tombstone may not filter
     the fresh copy, nor may the stale copy resurrect. *)
  let revived = I.make ~id:victim.I.id ~lo:0.0 ~hi:1.2 ~weight:1e6 () in
  Dyn_pri.insert pri revived;
  Dyn_max.insert mx revived;
  Dyn_topk.insert topk revived;
  Alcotest.(check int) "pri live restored" 30 (Dyn_pri.live pri);
  Alcotest.(check int) "topk size restored" 30 (Dyn_topk.size topk);
  Array.iter
    (fun q ->
      let got = ids (Dyn_pri.query pri q ~tau:1e5) in
      Alcotest.(check (list int)) "pri sees only the revived copy"
        [ victim.I.id ] got;
      Alcotest.(check (option int)) "max crowns the revived copy"
        (Some victim.I.id)
        (Option.map (fun (e : I.t) -> e.I.id) (Dyn_max.query mx q));
      Alcotest.(check int) "topk crowns the revived copy" victim.I.id
        (List.hd (ids (Dyn_topk.query topk q ~k:1))))
    (Gen.stab_queries rng ~n:8);
  (* The revived element's new geometry is the one indexed: the old
     copy's span must not answer for it.  Pick a point the old interval
     covered only if the old copy leaked (the revived one spans
     everything, so only a duplicate would change counts). *)
  let all = ids (Dyn_pri.query pri 0.5 ~tau:Float.neg_infinity) in
  Alcotest.(check bool) "no duplicate ids" true
    (List.length all = List.length (List.sort_uniq Int.compare all))

let test_dyn_topk_trace () =
  let rng = Rng.create 313 in
  let params = Inst.params () in
  let s = Dyn_topk.build ~params [||] in
  run_trace rng ~ops:500 ~check_every:50
    ~insert:(Dyn_topk.insert s)
    ~delete:(Dyn_topk.delete s)
    ~check:(fun model ->
      let qs = Gen.stab_queries rng ~n:8 in
      Array.iter
        (fun q ->
          List.iter
            (fun k ->
              Alcotest.(check (list int))
                "dyn top-k"
                (ids (Model.top_k model q ~k))
                (ids (Dyn_topk.query s q ~k)))
            [ 1; 5; 40; 1000 ])
        qs)

let test_dyn_topk_build_then_update () =
  let rng = Rng.create 317 in
  let spans = Gen.intervals rng ~shape:Gen.Mixed_intervals ~n:300 in
  let elems = I.of_spans rng spans in
  let s = Dyn_topk.build ~params:(Inst.params ()) elems in
  let model = Model.create () in
  Array.iter (Model.insert model) elems;
  (* Delete a third, insert fresh ones, re-check. *)
  Array.iteri
    (fun i e ->
      if i mod 3 = 0 then begin
        Model.delete model e;
        Dyn_topk.delete s e
      end)
    elems;
  for i = 1 to 100 do
    let e = random_interval rng (1000 + i) in
    Model.insert model e;
    Dyn_topk.insert s e
  done;
  let qs = Gen.stab_queries rng ~n:10 in
  Array.iter
    (fun q ->
      List.iter
        (fun k ->
          Alcotest.(check (list int))
            "after updates"
            (ids (Model.top_k model q ~k))
            (ids (Dyn_topk.query s q ~k)))
        [ 1; 10; 100 ])
    qs

let test_resampling_fires () =
  let rng = Rng.create 319 in
  let s = Dyn_topk.build ~params:(Inst.params ()) [||] in
  for i = 1 to 2000 do
    Dyn_topk.insert s (random_interval rng i)
  done;
  Alcotest.(check bool) "ladder resampled as n grew" true
    (Dyn_topk.resamples s > 3);
  Alcotest.(check int) "size tracks inserts" 2000 (Dyn_topk.size s)

let prop_dynamic_agree =
  QCheck.Test.make ~count:15 ~name:"dynamic top-k agrees after random trace"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let s = Dyn_topk.build ~params:(Inst.params ()) [||] in
      let model = Model.create () in
      let next_id = ref 0 in
      for _ = 1 to 150 do
        if List.length model.Model.live < 5 || Rng.bernoulli rng 0.65 then begin
          incr next_id;
          let e = random_interval rng !next_id in
          Model.insert model e;
          Dyn_topk.insert s e
        end
        else begin
          let live = Array.of_list model.Model.live in
          let e = live.(Rng.int rng (Array.length live)) in
          Model.delete model e;
          Dyn_topk.delete s e
        end
      done;
      let qs = Gen.stab_queries rng ~n:4 in
      Array.for_all
        (fun q ->
          List.for_all
            (fun k ->
              ids (Model.top_k model q ~k) = ids (Dyn_topk.query s q ~k))
            [ 1; 7; 300 ])
        qs)

let () =
  Alcotest.run "topk_dynamic"
    [
      ( "dyn_pri",
        [
          Alcotest.test_case "random trace" `Slow test_dyn_pri_trace;
          Alcotest.test_case "monitored on trace" `Quick
            test_dyn_pri_monitored_trace;
        ] );
      ( "dyn_max",
        [
          Alcotest.test_case "random trace" `Slow test_dyn_max_trace;
          Alcotest.test_case "delete-heavy" `Quick test_dyn_max_delete_heavy;
        ] );
      ( "delete_edges",
        [
          Alcotest.test_case "delete to empty" `Quick test_delete_to_empty;
          Alcotest.test_case "delete current max" `Quick
            test_dyn_topk_delete_current_max;
          Alcotest.test_case "re-insert tombstoned key" `Quick
            test_reinsert_tombstoned_key;
        ] );
      ( "dyn_topk",
        [
          Alcotest.test_case "random trace" `Slow test_dyn_topk_trace;
          Alcotest.test_case "build then update" `Quick
            test_dyn_topk_build_then_update;
          Alcotest.test_case "resampling fires" `Quick test_resampling_fires;
          QCheck_alcotest.to_alcotest prop_dynamic_agree;
        ] );
    ]
