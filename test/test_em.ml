(* Tests for the external-memory cost model. *)

module Config = Topk_em.Config
module Stats = Topk_em.Stats
module Lru = Topk_em.Lru_cache
module Io_array = Topk_em.Io_array
module Fault = Topk_em.Fault

let test_config_validation () =
  Alcotest.check_raises "b too small"
    (Invalid_argument "Config.em: block size must be >= 2")
    (fun () -> ignore (Config.em ~b:1 ()));
  Alcotest.check_raises "m too small"
    (Invalid_argument "Config.em: memory must be >= 2 * b")
    (fun () -> ignore (Config.em ~m:100 ~b:64 ()))

let test_blocks_of_words () =
  let c = Config.em ~b:64 () in
  Alcotest.(check int) "zero" 0 (Config.blocks_of_words c 0);
  Alcotest.(check int) "negative" 0 (Config.blocks_of_words c (-5));
  Alcotest.(check int) "one" 1 (Config.blocks_of_words c 1);
  Alcotest.(check int) "full block" 1 (Config.blocks_of_words c 64);
  Alcotest.(check int) "block + 1" 2 (Config.blocks_of_words c 65);
  let r = Config.ram in
  Alcotest.(check int) "ram: word = block" 7 (Config.blocks_of_words r 7)

let test_with_model_restores () =
  let before = Config.current () in
  let inside = ref Config.ram in
  Config.with_model Config.ram (fun () -> inside := Config.current ());
  Alcotest.(check bool) "inside is ram" true (!inside = Config.ram);
  Alcotest.(check bool) "restored" true (Config.current () = before);
  (try
     Config.with_model Config.ram (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored after exception" true
    (Config.current () = before)

let test_charge_ios () =
  Stats.reset ();
  Stats.charge_ios 3;
  Stats.charge_ios 0;
  Stats.charge_ios 2;
  Alcotest.(check int) "sum" 5 (Stats.ios ());
  Alcotest.check_raises "negative" (Invalid_argument "Stats.charge_ios: negative")
    (fun () -> Stats.charge_ios (-1))

let test_charge_scan_carry () =
  Config.with_model (Config.em ~b:64 ()) (fun () ->
      Stats.reset ();
      (* 64 one-element scans amount to exactly one block I/O. *)
      for _ = 1 to 64 do
        Stats.charge_scan 1
      done;
      Alcotest.(check int) "64 x 1 elem = 1 io" 1 (Stats.ios ());
      Stats.reset ();
      Stats.charge_scan 63;
      Alcotest.(check int) "63 elems: no io yet" 0 (Stats.ios ());
      Stats.charge_scan 1;
      Alcotest.(check int) "carry completes the block" 1 (Stats.ios ());
      Stats.reset ();
      Stats.charge_scan 640;
      Alcotest.(check int) "bulk scan" 10 (Stats.ios ());
      Alcotest.(check int) "raw elements recorded" 640
        (Stats.snapshot ()).Stats.scanned)

let test_measure_isolates () =
  Stats.reset ();
  Stats.charge_ios 7;
  let (), inner = Stats.measure (fun () -> Stats.charge_ios 5) in
  Alcotest.(check int) "inner sees its own" 5 inner.Stats.ios;
  Alcotest.(check int) "outer untouched" 7 (Stats.ios ());
  (try
     ignore
       (Stats.measure (fun () ->
            Stats.charge_ios 100;
            failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check int) "outer survives exception" 7 (Stats.ios ())

let test_lru_hits_and_misses () =
  Topk_em.Config.with_model (Config.em ~b:64 ()) (fun () ->
      Stats.reset ();
      let c = Lru.create ~capacity:2 () in
      Alcotest.(check bool) "first access misses" false (Lru.access c 1);
      Alcotest.(check bool) "second access hits" true (Lru.access c 1);
      ignore (Lru.access c 2);
      (* Capacity 2: 1 and 2 resident; 3 evicts the LRU (1). *)
      ignore (Lru.access c 3);
      Alcotest.(check bool) "1 was evicted" false (Lru.access c 1);
      Alcotest.(check bool) "3 still resident" true (Lru.access c 3);
      Alcotest.(check int) "io per miss" 4 (Stats.ios ()))

let test_lru_recency_updates () =
  let c = Lru.create ~capacity:2 () in
  ignore (Lru.access c 1);
  ignore (Lru.access c 2);
  ignore (Lru.access c 1);  (* 1 becomes MRU; 2 is now LRU *)
  ignore (Lru.access c 3);  (* evicts 2 *)
  Alcotest.(check bool) "1 survived" true (Lru.access c 1);
  Alcotest.(check bool) "2 evicted" false (Lru.access c 2)

let test_lru_capacity_one () =
  Config.with_model (Config.em ~b:64 ()) (fun () ->
      Stats.reset ();
      let c = Lru.create ~capacity:1 () in
      Alcotest.(check bool) "cold access misses" false (Lru.access c 1);
      Alcotest.(check bool) "immediate re-access hits" true (Lru.access c 1);
      Alcotest.(check bool) "2 misses (evicts 1)" false (Lru.access c 2);
      Alcotest.(check bool) "1 was evicted" false (Lru.access c 1);
      Alcotest.(check bool) "2 was evicted in turn" false (Lru.access c 2);
      Alcotest.(check int) "one io per miss" 4 (Stats.ios ());
      Alcotest.(check int) "hits" 1 (Lru.hits c);
      Alcotest.(check int) "misses" 4 (Lru.misses c))

let test_lru_repeated_hits () =
  let c = Lru.create ~capacity:2 () in
  ignore (Lru.access c 7);
  for _ = 1 to 100 do
    Alcotest.(check bool) "resident block keeps hitting" true (Lru.access c 7)
  done;
  Alcotest.(check int) "a single miss" 1 (Lru.misses c);
  Alcotest.(check int) "a hundred hits" 100 (Lru.hits c)

(* Two arrays sharing one cache must not alias each other's blocks:
   the same element index maps to distinct block ids per array. *)
let test_io_array_block_id_isolation () =
  Config.with_model (Config.em ~b:8 ()) (fun () ->
      Stats.reset ();
      let data = Array.init 8 (fun i -> i) in
      let shared = Lru.create ~capacity:8 () in
      let a = Io_array.of_array ~cache:shared data in
      let b = Io_array.of_array ~cache:shared data in
      ignore (Io_array.get a 0);
      ignore (Io_array.get b 0);
      Alcotest.(check int)
        "same index, distinct arrays: two misses" 2 (Stats.ios ());
      (* Both blocks are now resident; re-probing either is free. *)
      ignore (Io_array.get a 7);
      ignore (Io_array.get b 7);
      Alcotest.(check int) "both stay resident" 2 (Stats.ios ()))

(* [round_carry] closes each domain's partial scan block on that
   domain: two domains each scanning below a block boundary are charged
   one I/O each, not a shared rounding. *)
let test_round_carry_multi_domain () =
  Config.with_model (Config.em ~b:64 ()) (fun () ->
      Stats.reset ();
      let before = Stats.aggregate () in
      let work () =
        Stats.charge_scan 32;  (* below a block: carry only, no io *)
        Stats.round_carry ()   (* close the partial block: one io *)
      in
      let d1 = Domain.spawn work and d2 = Domain.spawn work in
      Domain.join d1;
      Domain.join d2;
      let d = Stats.diff (Stats.aggregate ()) before in
      Alcotest.(check int) "one io per domain" 2 d.Stats.ios;
      Alcotest.(check int) "raw elements recorded" 64 d.Stats.scanned;
      (* A round_carry with no pending carry charges nothing. *)
      Stats.round_carry ();
      let d' = Stats.diff (Stats.aggregate ()) before in
      Alcotest.(check int) "no-op on a closed block" 2 d'.Stats.ios)

(* --- fault injection --- *)

let count_faults n =
  let faults = ref 0 in
  for _ = 1 to n do
    match Stats.charge_ios 1 with
    | () -> ()
    | exception Fault.Em_fault _ -> incr faults
  done;
  !faults

let test_fault_determinism () =
  Fault.clear ();
  Stats.reset ();
  let p = Fault.plan ~seed:9 ~io_fault_rate:0.2 () in
  Fault.install p;
  let a = count_faults 500 in
  Fault.clear ();
  Alcotest.(check int)
    "ios charged even when the fetch faults" 500 (Stats.ios ());
  Alcotest.(check bool) "faults actually injected" true (a > 0);
  Alcotest.(check bool) "but not on every io" true (a < 500);
  Alcotest.(check int) "charged to the domain's counter" a (Stats.faults ());
  (* Reinstalling the same plan reseeds the stream: the exact same
     fault sequence replays. *)
  Fault.install p;
  let b = count_faults 500 in
  Fault.clear ();
  Alcotest.(check int) "same plan, same fault sequence" a b

let test_fault_rate_one_and_cap () =
  Fault.clear ();
  Stats.reset ();
  Fault.with_plan
    (Fault.plan ~seed:1 ~io_fault_rate:1.0 ())
    (fun () ->
      Alcotest.(check int) "rate 1: every io faults" 100 (count_faults 100));
  Alcotest.(check bool)
    "with_plan restored the previous (absent) plan" true
    (Fault.active () = None);
  Fault.install (Fault.plan ~seed:1 ~io_fault_rate:1.0 ~max_faults:5 ());
  Alcotest.(check int) "max_faults caps injection" 5 (count_faults 100);
  Fault.clear ();
  Alcotest.(check int) "cleared: no injection" 0 (count_faults 50)

let test_fault_latency_spikes_charged () =
  Fault.clear ();
  Stats.reset ();
  Fault.with_plan
    (Fault.plan ~seed:3 ~io_fault_rate:0. ~latency_rate:1.0 ~latency_s:0. ())
    (fun () -> Stats.charge_ios 10);
  Alcotest.(check int) "every io spiked" 10 (Stats.spikes ());
  Alcotest.(check int) "no fault injected" 0 (Stats.faults ())

let test_fault_plan_validation () =
  Alcotest.check_raises "rate out of range"
    (Invalid_argument "Fault.plan: io_fault_rate must be in [0,1] (got 1.5)")
    (fun () -> ignore (Fault.plan ~io_fault_rate:1.5 ~seed:0 ()));
  Alcotest.check_raises "negative cap"
    (Invalid_argument "Fault.plan: max_faults must be >= 0 (got -1)")
    (fun () -> ignore (Fault.plan ~max_faults:(-1) ~seed:0 ()))

let test_io_array_sequential_vs_random () =
  Config.with_model (Config.em ~b:8 ~m:16 ()) (fun () ->
      let data = Array.init 64 (fun i -> i) in
      (* Sequential scan: one miss per block. *)
      Stats.reset ();
      let a = Io_array.of_array data in
      let sum = ref 0 in
      Io_array.iter_range a ~lo:0 ~hi:64 (fun x -> sum := !sum + x);
      Alcotest.(check int) "sum" (64 * 63 / 2) !sum;
      Alcotest.(check int) "sequential: 8 blocks" 8 (Stats.ios ());
      (* Strided probes with a 2-block cache: most probes miss. *)
      Stats.reset ();
      let b = Io_array.of_array data in
      for i = 0 to 7 do
        ignore (Io_array.get b (i * 8));
        ignore (Io_array.get b (((i + 4) mod 8) * 8))
      done;
      Alcotest.(check bool) "random probes cost more" true (Stats.ios () > 8))

let () =
  Alcotest.run "topk_em"
    [
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "blocks_of_words" `Quick test_blocks_of_words;
          Alcotest.test_case "with_model restores" `Quick
            test_with_model_restores;
        ] );
      ( "stats",
        [
          Alcotest.test_case "charge_ios" `Quick test_charge_ios;
          Alcotest.test_case "scan carry" `Quick test_charge_scan_carry;
          Alcotest.test_case "measure isolates" `Quick test_measure_isolates;
          Alcotest.test_case "round_carry across domains" `Quick
            test_round_carry_multi_domain;
        ] );
      ( "lru",
        [
          Alcotest.test_case "hits and misses" `Quick test_lru_hits_and_misses;
          Alcotest.test_case "recency" `Quick test_lru_recency_updates;
          Alcotest.test_case "capacity one" `Quick test_lru_capacity_one;
          Alcotest.test_case "repeated hits" `Quick test_lru_repeated_hits;
        ] );
      ( "io_array",
        [
          Alcotest.test_case "sequential vs random" `Quick
            test_io_array_sequential_vs_random;
          Alcotest.test_case "block-id isolation" `Quick
            test_io_array_block_id_isolation;
        ] );
      ( "fault",
        [
          Alcotest.test_case "deterministic injection" `Quick
            test_fault_determinism;
          Alcotest.test_case "rate one and cap" `Quick
            test_fault_rate_one_and_cap;
          Alcotest.test_case "latency spikes charged" `Quick
            test_fault_latency_spikes_charged;
          Alcotest.test_case "plan validation" `Quick
            test_fault_plan_validation;
        ] );
    ]
