(* Sharded-index subsystem tests.

   The load-bearing invariant: for every partitioning strategy and
   every instance family, the scatter-gather planner answers {e exactly}
   like the single-structure oracle — pruning shards by their max-query
   upper bound must never change an answer, only its cost.  On weight-
   skewed partitions pruning must actually fire (nonzero shards
   pruned, strictly fewer I/Os than visiting all shards).  The
   pool-backed Scatter layer must preserve the same answers, account
   per-shard I/O exactly into [Stats.aggregate], and degrade to
   certified prefixes (never silently wrong answers) under budget or
   deadline cutoff. *)

module Sigs = Topk_core.Sigs
module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module Stats = Topk_em.Stats
module Partitioner = Topk_shard.Partitioner
module Gather = Topk_shard.Gather
module Executor = Topk_service.Executor
module Registry = Topk_service.Registry
module Response = Topk_service.Response
module Metrics = Topk_service.Metrics
module Limits = Topk_service.Limits

(* ------------------------------------------------------------------ *)
(* Partitioner                                                         *)

module IP = Topk_interval.Problem

let interval_elems seed n =
  let rng = Rng.create seed in
  Topk_interval.Interval.of_spans rng
    (Gen.intervals rng ~shape:Gen.Mixed_intervals ~n)

let interval_queries seed n =
  let rng = Rng.create seed in
  Gen.stab_queries rng ~n

let sorted_ids l = List.sort Int.compare (List.map IP.id l)

let strategies =
  [
    ("hash", Partitioner.Hash IP.id);
    ("range-weight", Partitioner.Range IP.weight);
    ("balanced", Partitioner.Balanced);
  ]

let test_partitioner_cover () =
  let elems = interval_elems 901 333 in
  let all = sorted_ids (Array.to_list elems) in
  List.iter
    (fun (name, strategy) ->
      List.iter
        (fun shards ->
          let p = Partitioner.split ~strategy ~shards elems in
          Alcotest.(check int)
            (Printf.sprintf "%s: exactly %d shards" name shards)
            shards (Array.length p);
          Alcotest.(check int)
            (Printf.sprintf "%s: sizes sum to n" name)
            (Array.length elems)
            (Array.fold_left ( + ) 0 (Partitioner.sizes p));
          (* Disjoint cover: the concatenation is a permutation. *)
          Alcotest.(check (list int))
            (Printf.sprintf "%s: disjoint cover" name)
            all
            (sorted_ids (List.concat_map Array.to_list (Array.to_list p))))
        [ 1; 2; 7; 8; 333 ])
    strategies;
  (* Balanced and Range guarantee near-equal sizes. *)
  let p = Partitioner.split ~strategy:Partitioner.Balanced ~shards:8 elems in
  Alcotest.(check bool)
    "balanced skew is tight" true
    (Partitioner.size_skew p <= 42. /. 41.)

let test_partitioner_validation () =
  let elems = interval_elems 902 10 in
  Alcotest.check_raises "shards = 0"
    (Invalid_argument "Partitioner.split: shards must be >= 1 (got 0)")
    (fun () ->
      ignore (Partitioner.split ~strategy:Partitioner.Balanced ~shards:0 elems));
  Alcotest.check_raises "more shards than elements"
    (Invalid_argument
       "Partitioner.split: more shards than elements (shards=11, n=10)")
    (fun () ->
      ignore
        (Partitioner.split ~strategy:Partitioner.Balanced ~shards:11 elems))

(* ------------------------------------------------------------------ *)
(* Gather                                                              *)

let test_gather_merge () =
  let rng = Rng.create 911 in
  for _trial = 1 to 50 do
    let lists =
      List.init
        (1 + Rng.int rng 6)
        (fun _ ->
          List.init (Rng.int rng 20) (fun _ -> Rng.int rng 1000)
          |> List.sort_uniq (fun a b -> Int.compare b a))
    in
    let k = Rng.int rng 25 in
    let expect =
      List.concat lists |> List.sort (fun a b -> Int.compare b a)
      |> List.filteri (fun i _ -> i < k)
    in
    Alcotest.(check (list int))
      "merge = sorted concat prefix" expect
      (Gather.merge ~cmp:Int.compare ~k lists)
  done;
  Alcotest.(check (list int))
    "k = 0" []
    (Gather.merge ~cmp:Int.compare ~k:0 [ [ 3; 2 ]; [ 1 ] ]);
  Alcotest.(check (list int)) "no inputs" [] (Gather.merge ~cmp:Int.compare ~k:5 [])

let certified = Alcotest.(pair (list (float 1e-9)) bool)

let mc ~k legs =
  Gather.merge_certified ~cmp:Float.compare ~weight:Fun.id ~k legs

let test_gather_certified () =
  (* All complete: plain merge, certified complete. *)
  Alcotest.check certified "all complete"
    ([ 9.; 8.; 6. ], true)
    (mc ~k:3 [ ([ 8.; 6. ], true); ([ 9.; 3. ], true) ]);
  (* One truncated leg: nothing below its last weight is certified. *)
  Alcotest.check certified "truncation threshold"
    ([ 10.; 9.; 8.; 6. ], false)
    (mc ~k:5 [ ([ 10.; 8.; 6. ], false); ([ 9.; 3. ], true) ]);
  (* Two truncated legs: the threshold is the MAX of their last
     weights — 5.0 sits above leg C's own cutoff but below leg A's, so
     it is not provably global and must be dropped. *)
  Alcotest.check certified "max over cutoffs"
    ([ 10.; 9.; 8.; 7.; 6. ], false)
    (mc ~k:6 [ ([ 10.; 8.; 6. ], false); ([ 9. ], true); ([ 7.; 5. ], false) ]);
  (* A cutoff that doesn't bite: the certified prefix already holds k
     elements, so the answer is complete after all. *)
  Alcotest.check certified "harmless cutoff"
    ([ 10.; 8. ], true)
    (mc ~k:2 [ ([ 10.; 8.; 6. ], false); ([ 3. ], true) ]);
  (* An empty truncated leg certifies nothing at all. *)
  Alcotest.check certified "empty truncated leg"
    ([], false)
    (mc ~k:3 [ ([ 10.; 8. ], true); ([], false) ])

(* ------------------------------------------------------------------ *)
(* Planner vs oracle, across instance families                         *)

module Family
    (T : Sigs.TOPK)
    (M : Sigs.MAX with module P = T.P)
    (Spec : sig
      val name : string

      val params : Topk_core.Params.t

      val elements : Rng.t -> n:int -> T.P.elem array

      val queries : Rng.t -> n:int -> T.P.query array
    end) =
struct
  module P = T.P
  module SS = Topk_shard.Shard_set.Make (T) (M)
  module Planner = Topk_shard.Planner.Make (SS)
  module Oracle = Topk_core.Oracle.Make (P)

  let ids l = List.map P.id l

  let strategies =
    [
      ("hash", Partitioner.Hash P.id);
      ("range-weight", Partitioner.Range P.weight);
      ("balanced", Partitioner.Balanced);
    ]

  let ks = [ 0; 1; 2; 3; 5; 8; 13; 21; 40; 100 ]

  (* 100 queries x 10 k values x 3 strategies: the sharded planner must
     agree with the sequential oracle on every single pair. *)
  let test_matches_oracle () =
    let rng = Rng.create 921 in
    let elems = Spec.elements rng ~n:1000 in
    let oracle = Oracle.build elems in
    let queries = Spec.queries rng ~n:100 in
    List.iter
      (fun (sname, strategy) ->
        let t = SS.of_elems ~params:Spec.params ~strategy ~shards:8 elems in
        Array.iter
          (fun q ->
            List.iter
              (fun k ->
                Alcotest.(check (list int))
                  (Printf.sprintf "%s/%s: top-%d = oracle" Spec.name sname k)
                  (ids (Oracle.top_k oracle q ~k))
                  (ids (Planner.query t q ~k)))
              ks)
          queries)
      strategies

  (* Weight-range partitioning concentrates heavy elements in few
     shards, so their exact maxima dominate the rest: the planner must
     actually skip most shard visits.  (Whether skipping also wins
     {e I/Os} depends on the regime — see [test_pruning_saves_io]
     below — but the bound must fire on skew for every family.) *)
  let test_pruning_on_skew () =
    let rng = Rng.create 923 in
    let elems = Spec.elements rng ~n:1000 in
    let queries = Spec.queries rng ~n:60 in
    let t =
      SS.of_elems ~params:Spec.params
        ~strategy:(Partitioner.Range P.weight)
        ~shards:8 elems
    in
    let pruned = ref 0 and visited = ref 0 in
    Array.iter
      (fun q ->
        let _, report = Planner.query_report t q ~k:25 in
        pruned := !pruned + report.Planner.pruned;
        visited := !visited + report.Planner.visited)
      queries;
    Alcotest.(check bool)
      (Printf.sprintf "%s: shards pruned > 0 (got %d)" Spec.name !pruned)
      true (!pruned > 0);
    (* Pruning is systematic on this layout, not a fluke: at least one
       shard skipped per query on average. *)
    Alcotest.(check bool)
      (Printf.sprintf "%s: pruned %d >= queries %d (visited %d)" Spec.name
         !pruned (Array.length queries) !visited)
      true
      (!pruned >= Array.length queries)

  let suite =
    [
      Alcotest.test_case
        (Printf.sprintf "%s: planner = oracle (3000 pairs)" Spec.name)
        `Quick test_matches_oracle;
      Alcotest.test_case
        (Printf.sprintf "%s: pruning fires and pays off on skew" Spec.name)
        `Quick test_pruning_on_skew;
    ]
end

module F_interval =
  Family (Topk_interval.Instances.Topk_t2) (Topk_interval.Slab_max)
    (struct
      let name = "interval"

      let params = Topk_interval.Instances.params ()

      let elements rng ~n =
        Topk_interval.Interval.of_spans rng
          (Gen.intervals rng ~shape:Gen.Mixed_intervals ~n)

      let queries rng ~n = Gen.stab_queries rng ~n
    end)

module F_range =
  Family (Topk_range.Instances.Topk_t2) (Topk_range.Range_max)
    (struct
      let name = "range"

      let params = Topk_range.Instances.params ()

      let elements rng ~n =
        Topk_range.Wpoint.of_positions rng
          (Array.init n (fun _ -> Rng.uniform rng))

      let queries rng ~n =
        Array.init n (fun _ ->
            let a = Rng.uniform rng and b = Rng.uniform rng in
            (Float.min a b, Float.max a b))
    end)

module F_ortho =
  Family (Topk_ortho.Instances.Topk_t2) (Topk_ortho.Ortho_max)
    (struct
      let name = "ortho"

      let params = Topk_ortho.Instances.params ()

      let elements rng ~n =
        Topk_geom.Point2.of_coords rng
          (Array.map (fun c -> (c.(0), c.(1))) (Gen.points rng ~n ~d:2))

      let queries rng ~n =
        Array.init n (fun _ ->
            let x1 = Rng.uniform rng and x2 = Rng.uniform rng in
            let y1 = Rng.uniform rng and y2 = Rng.uniform rng in
            (Float.min x1 x2, Float.max x1 x2, Float.min y1 y2, Float.max y1 y2))
    end)

(* ------------------------------------------------------------------ *)
(* Pruning I/O economics                                               *)

(* Pruning pays for its bound phase when a shard visit is expensive
   relative to a max query — Q_top(n/S) + O(k/B) >> Q_max(n/S).  Scan-
   backed shards are the cleanest such regime: each avoided visit saves
   an (n/S)/B-block scan while each bound costs O(log) I/Os, so on a
   weight-range partition the planner must beat visiting every shard by
   a wide margin.  (With Theorem 2 shards at small k both sides are
   O(log)-shaped and the bound phase is roughly a wash — which is why
   the per-family test above asserts only that pruning fires.) *)
module NSS =
  Topk_shard.Shard_set.Make
    (Topk_interval.Instances.Topk_naive)
    (Topk_interval.Slab_max)
module NPlanner = Topk_shard.Planner.Make (NSS)

let test_pruning_saves_io () =
  let elems = interval_elems 925 16000 in
  let queries = interval_queries 926 40 in
  let t =
    NSS.of_elems ~strategy:(Partitioner.Range IP.weight) ~shards:8 elems
  in
  let pruned = ref 0 in
  let (), cost_planner =
    Stats.measure (fun () ->
        Array.iter
          (fun q ->
            let _, report = NPlanner.query_report t q ~k:25 in
            pruned := !pruned + report.NPlanner.pruned)
          queries)
  in
  let (), cost_all =
    Stats.measure (fun () ->
        Array.iter (fun q -> ignore (NPlanner.query_all t q ~k:25)) queries)
  in
  Alcotest.(check bool)
    (Printf.sprintf "shards pruned > 0 (got %d)" !pruned)
    true (!pruned > 0);
  Alcotest.(check bool)
    (Printf.sprintf "pruned I/O %d < visit-all I/O %d" cost_planner.Stats.ios
       cost_all.Stats.ios)
    true
    (cost_planner.Stats.ios < cost_all.Stats.ios)

(* ------------------------------------------------------------------ *)
(* Rebalance                                                           *)

module ISS =
  Topk_shard.Shard_set.Make (Topk_interval.Instances.Topk_t2)
    (Topk_interval.Slab_max)
module IPlanner = Topk_shard.Planner.Make (ISS)
module IRebalance = Topk_shard.Rebalance.Make (ISS)
module IOracle = Topk_core.Oracle.Make (IP)

let iparams = Topk_interval.Instances.params ()

(* A shard set with prescribed shard sizes over [elems]. *)
let shard_set_with_sizes elems sizes =
  let pos = ref 0 in
  let partition =
    List.map
      (fun s ->
        let a = Array.sub elems !pos s in
        pos := !pos + s;
        a)
      sizes
  in
  assert (!pos = Array.length elems);
  ISS.build ~params:iparams (Array.of_list partition)

let test_rebalance_noop () =
  let elems = interval_elems 931 128 in
  let t = ISS.of_elems ~params:iparams ~strategy:Partitioner.Balanced ~shards:4 elems in
  let t', report = IRebalance.rebalance ~params:iparams t in
  Alcotest.(check bool) "same snapshot" true (t == t');
  Alcotest.(check int) "no rounds" 0 report.IRebalance.rounds;
  Alcotest.(check int) "all reused" 4 report.IRebalance.reused

let test_rebalance_partial_rebuild () =
  let elems = interval_elems 933 100 in
  let t = shard_set_with_sizes elems [ 50; 25; 24; 1 ] in
  let before = IRebalance.skew t in
  let t', report = IRebalance.rebalance ~params:iparams t in
  Alcotest.(check bool) "skew repaired" true (IRebalance.skew t' <= 2.0);
  Alcotest.(check bool)
    "skew decreased" true
    (report.IRebalance.after_skew < before);
  Alcotest.(check int) "one round" 1 report.IRebalance.rounds;
  (* Bentley–Saxe flavour: only the shards whose membership changed
     were rebuilt; the untouched one was structurally reused. *)
  Alcotest.(check int) "rebuilt" 3 report.IRebalance.rebuilt;
  Alcotest.(check int) "reused" 1 report.IRebalance.reused;
  Alcotest.(check int) "shard count preserved" 4 (ISS.shard_count t');
  Alcotest.(check int) "no element lost" 100 (ISS.size t')

let test_rebalance_preserves_answers () =
  let elems = interval_elems 935 400 in
  let oracle = IOracle.build elems in
  let t = shard_set_with_sizes elems [ 256; 64; 32; 16; 16; 8; 4; 4 ] in
  let t', report = IRebalance.rebalance ~params:iparams t in
  Alcotest.(check bool)
    (Printf.sprintf "skew %.1f -> %.1f within bound"
       report.IRebalance.before_skew report.IRebalance.after_skew)
    true
    (report.IRebalance.after_skew <= 2.0);
  Array.iter
    (fun q ->
      List.iter
        (fun k ->
          Alcotest.(check (list int))
            (Printf.sprintf "rebalanced top-%d = oracle" k)
            (List.map IP.id (IOracle.top_k oracle q ~k))
            (List.map IP.id (IPlanner.query t' q ~k)))
        [ 1; 5; 20 ])
    (interval_queries 936 40)

(* ------------------------------------------------------------------ *)
(* Scatter: fan-out through the worker pool                            *)

module IScatter = Topk_shard.Scatter.Make (ISS) (Topk_interval.Instances.Topk_t2)

let with_pool ~workers f =
  let pool = Executor.create ~workers () in
  Fun.protect ~finally:(fun () -> Executor.shutdown pool) (fun () -> f pool)

let test_scatter_exact_and_accounted () =
  let elems = interval_elems 941 2000 in
  let oracle = IOracle.build elems in
  let set =
    ISS.of_elems ~params:iparams ~strategy:(Partitioner.Range IP.weight)
      ~shards:8 elems
  in
  with_pool ~workers:4 (fun pool ->
      let registry = Registry.create () in
      let sc = IScatter.create pool registry ~name:"itv" set in
      Alcotest.(check int) "8 shard instances registered" 8
        (List.length (Registry.list registry));
      let queries = interval_queries 942 60 in
      (* From here on, every I/O in the process belongs to these
         logical queries: per-leg costs on the worker domains, scatter
         overhead on this one. *)
      Stats.reset_all ();
      let total = ref Stats.zero_snapshot in
      let pruned = ref 0 in
      Array.iter
        (fun q ->
          List.iter
            (fun k ->
              let r = IScatter.query sc q ~k in
              Alcotest.(check (list int))
                (Printf.sprintf "scatter top-%d = oracle" k)
                (List.map IP.id (IOracle.top_k oracle q ~k))
                (List.map IP.id r.IScatter.answers);
              Alcotest.(check string)
                "complete" "complete"
                (Response.status_string r.IScatter.status);
              Alcotest.(check bool)
                "fanout + pruned + empty = shards" true
                (r.IScatter.fanout + r.IScatter.pruned + r.IScatter.empty = 8);
              total := Stats.add !total r.IScatter.cost;
              pruned := !pruned + r.IScatter.pruned)
            [ 1; 4; 16 ])
        queries;
      Executor.drain pool;
      (* The acceptance contract: summed per-query costs reproduce the
         process-wide EM accounting exactly — nothing double-charged,
         nothing lost across domains. *)
      let agg = Stats.aggregate () in
      Alcotest.(check int) "ios accounted" agg.Stats.ios !total.Stats.ios;
      Alcotest.(check int)
        "scans accounted" agg.Stats.scanned !total.Stats.scanned;
      (* Weight-range sharding must let the bound fire. *)
      Alcotest.(check bool)
        (Printf.sprintf "shards pruned > 0 (got %d)" !pruned)
        true (!pruned > 0);
      let m = Executor.metrics pool in
      Alcotest.(check int)
        "sharded_queries metric" 180
        (Metrics.Counter.get m.Metrics.sharded_queries);
      Alcotest.(check int)
        "fanout histogram count" 180
        (Metrics.Histogram.count m.Metrics.fanout);
      Alcotest.(check int)
        "shards_pruned metric" !pruned
        (Metrics.Counter.get m.Metrics.shards_pruned);
      Alcotest.(check int)
        "per-leg latency observations"
        (Metrics.Histogram.count m.Metrics.shard_latency_us)
        (Metrics.Histogram.count m.Metrics.shard_ios))

let test_scatter_cutoffs () =
  let elems = interval_elems 951 1500 in
  let oracle = IOracle.build elems in
  let set =
    ISS.of_elems ~params:iparams ~strategy:(Partitioner.Hash IP.id) ~shards:6
      elems
  in
  with_pool ~workers:3 (fun pool ->
      let registry = Registry.create () in
      let sc = IScatter.create pool registry ~name:"itv" set in
      let queries = interval_queries 952 25 in
      (* Per-leg budget 0: every leg is cut off before doing anything,
         nothing is certified, and the join says so. *)
      let r0 =
        IScatter.query sc ~limits:(Limits.make ~budget:0 ()) queries.(0) ~k:10
      in
      Alcotest.(check string)
        "budget 0 status" "cutoff:budget"
        (Response.status_string r0.IScatter.status);
      Alcotest.(check int) "budget 0 answers" 0 (List.length r0.IScatter.answers);
      (* An already-expired deadline behaves the same, flagged as such. *)
      let rd =
        IScatter.query sc
          ~limits:(Limits.make ~deadline:(Unix.gettimeofday () -. 1.) ())
          queries.(0) ~k:10
      in
      Alcotest.(check string)
        "expired deadline status" "cutoff:deadline"
        (Response.status_string rd.IScatter.status);
      (* A small budget yields a certified prefix of the true answer —
         possibly shorter, never wrong. *)
      Array.iter
        (fun q ->
          let r =
            IScatter.query sc ~limits:(Limits.make ~budget:3 ()) q ~k:20
          in
          let got = List.map IP.id r.IScatter.answers in
          let truth = List.map IP.id (IOracle.top_k oracle q ~k:20) in
          let plen = List.length got in
          Alcotest.(check (list int))
            (Printf.sprintf "certified prefix (|prefix| = %d)" plen)
            (List.filteri (fun i _ -> i < plen) truth)
            got)
        queries;
      (* Validation. *)
      Alcotest.check_raises "k = 0 rejected"
        (Invalid_argument "Scatter.query: k must be positive (got 0)")
        (fun () -> ignore (IScatter.query sc queries.(0) ~k:0));
      Alcotest.check_raises "both timeout and deadline"
        (Invalid_argument
           "Limits.make: pass either ~timeout or ~deadline, not both")
        (fun () ->
          ignore
            (IScatter.query sc
               ~limits:(Limits.make ~timeout:1. ~deadline:1. ())
               queries.(0) ~k:1)))

let test_scatter_wave_one_matches () =
  (* wave = 1 degenerates to the sequential planner's fully-adaptive
     visit order; answers must still be exact. *)
  let elems = interval_elems 961 800 in
  let oracle = IOracle.build elems in
  let set =
    ISS.of_elems ~params:iparams ~strategy:(Partitioner.Range IP.weight)
      ~shards:8 elems
  in
  with_pool ~workers:2 (fun pool ->
      let registry = Registry.create () in
      let sc = IScatter.create ~wave:1 pool registry ~name:"itv" set in
      Alcotest.(check int) "wave" 1 (IScatter.wave sc);
      Array.iter
        (fun q ->
          let r = IScatter.query sc q ~k:12 in
          Alcotest.(check (list int))
            "wave-1 scatter = oracle"
            (List.map IP.id (IOracle.top_k oracle q ~k:12))
            (List.map IP.id r.IScatter.answers))
        (interval_queries 962 30))

let () =
  Alcotest.run "topk_shard"
    [
      ( "partitioner",
        [
          Alcotest.test_case "disjoint cover, exact sizes" `Quick
            test_partitioner_cover;
          Alcotest.test_case "validation" `Quick test_partitioner_validation;
        ] );
      ( "gather",
        [
          Alcotest.test_case "k-way merge = sorted concat" `Quick
            test_gather_merge;
          Alcotest.test_case "certified merge semantics" `Quick
            test_gather_certified;
        ] );
      ("planner-interval", F_interval.suite);
      ("planner-range", F_range.suite);
      ("planner-ortho", F_ortho.suite);
      ( "pruning-economics",
        [
          Alcotest.test_case "pruning beats visit-all on scan shards" `Quick
            test_pruning_saves_io;
        ] );
      ( "rebalance",
        [
          Alcotest.test_case "already balanced is a no-op" `Quick
            test_rebalance_noop;
          Alcotest.test_case "partial rebuild reuses untouched shards" `Quick
            test_rebalance_partial_rebuild;
          Alcotest.test_case "answers preserved after repair" `Quick
            test_rebalance_preserves_answers;
        ] );
      ( "scatter",
        [
          Alcotest.test_case "exact answers, exact EM accounting" `Quick
            test_scatter_exact_and_accounted;
          Alcotest.test_case "budget/deadline cutoffs certify prefixes" `Quick
            test_scatter_cutoffs;
          Alcotest.test_case "wave=1 degenerates to the planner" `Quick
            test_scatter_wave_one_matches;
        ] );
    ]
