(* Tests for the live ingestion subsystem: the bounded update log, the
   refcounted epoch manager, and the Bentley–Saxe ingest wrapper
   (sealing, background merges on the pool, tombstone purge, snapshot
   isolation, registry integration, and the shard delta path). *)

module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module I = Topk_interval.Interval
module Inst = Topk_interval.Instances
module Log = Topk_ingest.Update_log
module Epoch = Topk_ingest.Epoch
module Ing = Topk_ingest.Ingest.Make (Inst.Topk_t2)
module Executor = Topk_service.Executor
module Registry = Topk_service.Registry
module Metrics = Topk_service.Metrics
module Stats = Topk_em.Stats

let iparams = Inst.params ()

let ids elems = List.map (fun (e : I.t) -> e.I.id) elems

(* The reference model: a plain list of live intervals, newest wins. *)
module Model = struct
  type t = { mutable live : I.t list }

  let create () = { live = [] }

  let insert t (e : I.t) =
    t.live <- e :: List.filter (fun (x : I.t) -> x.I.id <> e.I.id) t.live

  let delete t (e : I.t) =
    t.live <- List.filter (fun (x : I.t) -> x.I.id <> e.I.id) t.live

  let top_k t q ~k =
    Topk_util.Select.top_k ~cmp:I.compare_weight k
      (List.filter (fun e -> I.contains e q) t.live)
end

let random_interval rng id =
  let lo = Rng.uniform rng in
  let hi = lo +. Rng.float rng (1.2 -. lo) in
  I.make ~id ~lo ~hi:(min 1.2 hi)
    ~weight:(float_of_int id +. Rng.float rng 0.3)
    ()

(* ------------------------------------------------------------------ *)
(* Update_log                                                          *)

let test_log_basics () =
  (try
     ignore (Log.create ~cap:0 : int Log.t);
     Alcotest.fail "cap 0 accepted"
   with Invalid_argument _ -> ());
  let l : int Log.t = Log.create ~cap:3 in
  Alcotest.(check int) "cap" 3 (Log.cap l);
  Alcotest.(check bool) "empty" true (Log.is_empty l);
  Log.append l { Log.seq = 1; op = Log.Insert 10 };
  Log.append l { Log.seq = 2; op = Log.Delete 10 };
  Alcotest.(check int) "length" 2 (Log.length l);
  Log.append l { Log.seq = 3; op = Log.Insert 11 };
  Alcotest.(check bool) "full" true (Log.is_full l);
  (try
     Log.append l { Log.seq = 4; op = Log.Insert 12 };
     Alcotest.fail "append past cap accepted"
   with Invalid_argument _ -> ());
  (* A captured view survives a reset: the backing array is detached,
     never reused. *)
  let arr, len = Log.view l in
  Log.reset l;
  Alcotest.(check int) "reset empties" 0 (Log.length l);
  Alcotest.(check int) "view keeps its prefix" 3 len;
  (match arr.(0).Log.op with
  | Log.Insert 10 -> ()
  | _ -> Alcotest.fail "detached view mutated");
  Log.append l { Log.seq = 5; op = Log.Insert 13 };
  (match arr.(0).Log.op with
  | Log.Insert 10 -> ()
  | _ -> Alcotest.fail "append after reset reached the detached view")

let test_log_replay () =
  let entries =
    [|
      { Log.seq = 1; op = Log.Insert 7 };
      { Log.seq = 2; op = Log.Insert 8 };
      { Log.seq = 3; op = Log.Delete 7 };
      { Log.seq = 4; op = Log.Insert 7 };
      { Log.seq = 5; op = Log.Delete 8 };
    |]
  in
  (* Latest op per id wins over the whole prefix... *)
  let latest = Log.replay ~id:(fun e -> e) entries 5 in
  Alcotest.(check bool) "7 re-inserted" true
    (Hashtbl.find_opt latest 7 = Some (Some 7));
  Alcotest.(check bool) "8 deleted" true
    (Hashtbl.find_opt latest 8 = Some None);
  (* ...and a shorter prefix replays only what it saw. *)
  let prefix = Log.replay ~id:(fun e -> e) entries 3 in
  Alcotest.(check bool) "7 dead at len 3" true
    (Hashtbl.find_opt prefix 7 = Some None);
  Alcotest.(check bool) "8 live at len 3" true
    (Hashtbl.find_opt prefix 8 = Some (Some 8))

(* ------------------------------------------------------------------ *)
(* Epoch                                                               *)

let test_epoch_refcounts () =
  let ep = Epoch.create "a" in
  Alcotest.(check int) "epoch 0" 0 (Epoch.current_id ep);
  let p = Epoch.pin ep in
  Alcotest.(check int) "published id" 1
    (Epoch.publish ep (fun v -> v ^ "b"));
  Alcotest.(check string) "current advanced" "ab" (Epoch.current ep);
  Alcotest.(check string) "pin is stable" "a" (Epoch.value p);
  Alcotest.(check int) "pin id" 0 (Epoch.pin_id p);
  Alcotest.(check int) "lag counts the pinned reader" 1 (Epoch.lag ep);
  Alcotest.(check int) "retired but held" 1 (Epoch.retired_count ep);
  Epoch.unpin p;
  Epoch.unpin p (* idempotent *);
  Alcotest.(check int) "reclaimed" 0 (Epoch.retired_count ep);
  Alcotest.(check int) "no readers, no lag" 0 (Epoch.lag ep);
  Alcotest.(check (option int)) "nothing pinned" None (Epoch.oldest_pinned ep);
  Alcotest.(check string) "with_pin" "ab" (Epoch.with_pin ep (fun v -> v))

(* Four domains race the epoch manager: one writer publishing versions
   (the version payload always equals its epoch id), two readers
   hammering pin/unpin, one monitor sampling the gauges.  A pinned
   epoch must never be reclaimed out from under its reader — observed
   as [value p = pin_id p] holding for the whole pin — and
   [oldest_pinned]/[current_id] must be monotone under the races. *)
let test_epoch_domain_races () =
  let ep = Epoch.create 0 in
  let rounds = 3000 in
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        for _ = 1 to rounds do
          ignore (Epoch.publish ep (fun v -> v + 1) : int)
        done;
        Atomic.set stop true)
  in
  let reader () =
    Domain.spawn (fun () ->
        let bad = ref 0 in
        while not (Atomic.get stop) do
          let p = Epoch.pin ep in
          if Epoch.value p <> Epoch.pin_id p then incr bad;
          (* Hold the pin across a few publishes, then re-check: a
             reclaim-while-pinned would have dropped this version. *)
          for _ = 1 to 5 do
            Domain.cpu_relax ()
          done;
          if Epoch.value p <> Epoch.pin_id p then incr bad;
          Epoch.unpin p
        done;
        !bad)
  in
  let monitor =
    Domain.spawn (fun () ->
        let bad = ref 0 in
        let last_oldest = ref 0 and last_current = ref 0 in
        while not (Atomic.get stop) do
          let c = Epoch.current_id ep in
          if c < !last_current then incr bad;
          last_current := max !last_current c;
          (match Epoch.oldest_pinned ep with
          | Some o ->
              if o < !last_oldest then incr bad;
              if o > Epoch.current_id ep then incr bad;
              last_oldest := max !last_oldest o
          | None -> ());
          if Epoch.lag ep < 0 then incr bad
        done;
        !bad)
  in
  let r1 = reader () and r2 = reader () in
  Domain.join writer;
  Alcotest.(check int) "reader 1 saw no torn pins" 0 (Domain.join r1);
  Alcotest.(check int) "reader 2 saw no torn pins" 0 (Domain.join r2);
  Alcotest.(check int) "monitor saw monotone gauges" 0 (Domain.join monitor);
  Alcotest.(check int) "all epochs published" rounds (Epoch.current_id ep);
  (* Every reader unpinned: everything superseded was reclaimed. *)
  Alcotest.(check int) "nothing retired" 0 (Epoch.retired_count ep);
  Alcotest.(check int) "no lag" 0 (Epoch.lag ep);
  Alcotest.(check (option int)) "nothing pinned" None (Epoch.oldest_pinned ep)

(* ------------------------------------------------------------------ *)
(* Ingest, inline mode (no pool): exactness through seals and merges   *)

let check_against_model ing model rng =
  let qs = Gen.stab_queries rng ~n:8 in
  Array.iter
    (fun q ->
      List.iter
        (fun k ->
          Alcotest.(check (list int))
            "ingest top-k = model"
            (ids (Model.top_k model q ~k))
            (ids (Ing.query ing q ~k)))
        [ 1; 5; 40 ])
    qs

let test_ingest_trace_inline () =
  let rng = Rng.create 401 in
  let base = Array.init 60 (fun i -> random_interval rng (i + 1)) in
  (* A tiny buffer and fanout 2 force many seals and cascaded merges. *)
  let ing = Ing.create ~params:iparams ~buffer_cap:8 ~fanout:2 base in
  let model = Model.create () in
  Array.iter (Model.insert model) base;
  Alcotest.(check int) "base live" 60 (Ing.size ing);
  let next_id = ref 60 in
  for op = 1 to 400 do
    if List.length model.Model.live < 10 || Rng.bernoulli rng 0.6 then begin
      incr next_id;
      let e = random_interval rng !next_id in
      Model.insert model e;
      Ing.insert ing e
    end
    else begin
      let live = Array.of_list model.Model.live in
      let e = live.(Rng.int rng (Array.length live)) in
      Model.delete model e;
      Ing.delete ing e
    end;
    if op mod 50 = 0 then begin
      check_against_model ing model rng;
      Alcotest.(check int) "live tracks model"
        (List.length model.Model.live) (Ing.size ing)
    end
  done;
  Alcotest.(check bool) "epochs advanced" true (Ing.epoch ing > 0);
  Alcotest.(check bool) "several runs" true (Ing.run_count ing > 1);
  Alcotest.(check bool) "k <= 0 answers []" true (Ing.query ing 0.5 ~k:0 = []);
  (* Freeze: remaining buffer sealed, compaction settles, answers keep
     agreeing; further writes are refused but reads still work. *)
  Ing.freeze ing;
  Ing.freeze ing (* idempotent *);
  Alcotest.(check bool) "frozen" true (Ing.frozen ing);
  Alcotest.(check int) "log drained by freeze" 0 (Ing.log_length ing);
  check_against_model ing model rng;
  (try
     Ing.insert ing (random_interval rng 99999);
     Alcotest.fail "insert after freeze accepted"
   with Invalid_argument _ -> ());
  Alcotest.(check bool) "not wedged" false (Ing.wedged ing)

let test_ingest_delete_to_empty_and_purge () =
  let rng = Rng.create 409 in
  let base = Array.init 32 (fun i -> random_interval rng (i + 1)) in
  let ing = Ing.create ~params:iparams ~buffer_cap:4 ~fanout:2 base in
  Array.iter (fun e -> Ing.delete ing e) base;
  Alcotest.(check int) "all deleted" 0 (Ing.size ing);
  Ing.freeze ing;
  Array.iter
    (fun q ->
      Alcotest.(check (list int)) "empty answers" [] (ids (Ing.query ing q ~k:10)))
    (Gen.stab_queries rng ~n:10);
  (* Compaction reached the base run, so the tombstones purged and the
     level set collapsed instead of accreting empty runs. *)
  Alcotest.(check bool)
    (Printf.sprintf "runs collapsed (got %d)" (Ing.run_count ing))
    true
    (Ing.run_count ing <= 4)

let test_ingest_reinsert_tombstoned_id () =
  let rng = Rng.create 411 in
  let base = Array.init 10 (fun i -> random_interval rng (i + 1)) in
  (* cap 2: the delete and the re-insert land in different runs. *)
  let ing = Ing.create ~params:iparams ~buffer_cap:2 ~fanout:2 base in
  let victim = base.(4) in
  Ing.delete ing victim;
  Ing.insert ing (random_interval rng 100);
  Ing.insert ing (random_interval rng 101);
  (* Re-insert the tombstoned id as a full-span heavy interval: it must
     come back (newest wins over its own tombstone). *)
  let revived =
    I.make ~id:victim.I.id ~lo:0.0 ~hi:1.2 ~weight:1e6 ()
  in
  Ing.insert ing revived;
  Alcotest.(check int) "live count back" 12 (Ing.size ing);
  Array.iter
    (fun q ->
      match ids (Ing.query ing q ~k:1) with
      | [ top ] ->
          Alcotest.(check int) "revived id on top" victim.I.id top
      | other ->
          Alcotest.failf "expected one answer, got %d" (List.length other))
    (Gen.stab_queries rng ~n:5);
  Ing.freeze ing;
  Alcotest.(check int) "still on top after compaction" victim.I.id
    (List.hd (ids (Ing.query ing 0.5 ~k:1)))

let test_ingest_snapshot_isolation () =
  let rng = Rng.create 419 in
  let base = Array.init 50 (fun i -> random_interval rng (i + 1)) in
  let ing = Ing.create ~params:iparams ~buffer_cap:8 ~fanout:2 base in
  (* Leave a few ops unsealed so the pinned view spans runs + log. *)
  for i = 51 to 53 do
    Ing.insert ing (random_interval rng i)
  done;
  Ing.delete ing base.(0);
  let w = Ing.pin ing in
  let frozen_model = Model.create () in
  List.iter (Model.insert frozen_model) (Ing.view_live w);
  (* Mutate heavily after the pin: seals and merges publish new epochs
     underneath the pinned reader. *)
  for i = 54 to 120 do
    Ing.insert ing (random_interval rng i)
  done;
  Array.iter (fun e -> Ing.delete ing e) (Array.sub base 1 20);
  Alcotest.(check bool) "epoch advanced past the pin" true
    (Ing.epoch ing > Ing.view_epoch w);
  Alcotest.(check bool) "reader lags" true (Ing.epoch_lag ing > 0);
  (* The pinned view still answers exactly as of pin time... *)
  let qs = Gen.stab_queries rng ~n:8 in
  Array.iter
    (fun q ->
      List.iter
        (fun k ->
          Alcotest.(check (list int))
            "pinned view is stable"
            (ids (Model.top_k frozen_model q ~k))
            (ids (Ing.query_view w q ~k)))
        [ 1; 5; 30 ])
    qs;
  (* ...while fresh queries see the new state: the deleted base
     elements are gone from a full sweep, the new ids present. *)
  let w2 = Ing.pin ing in
  let fresh = Ing.view_live w2 in
  Ing.unpin w2;
  let fresh_ids = List.sort_uniq Int.compare (List.map (fun (e : I.t) -> e.I.id) fresh) in
  Alcotest.(check bool) "fresh state dropped a deleted base elem" false
    (List.mem base.(1).I.id fresh_ids);
  Alcotest.(check bool) "fresh state holds a post-pin insert" true
    (List.mem 120 fresh_ids);
  Ing.unpin w;
  Ing.unpin w (* idempotent *);
  Alcotest.(check int) "lag clears on unpin" 0 (Ing.epoch_lag ing)

(* ------------------------------------------------------------------ *)
(* Ingest on the worker pool: background merges, crash, accounting     *)

let test_ingest_pool_with_crash () =
  let rng = Rng.create 421 in
  Stats.reset_all ();
  let pool = Executor.create ~workers:4 () in
  Fun.protect
    ~finally:(fun () -> Executor.shutdown pool)
    (fun () ->
      let base = Array.init 100 (fun i -> random_interval rng (i + 1)) in
      let ing =
        Ing.create ~params:iparams ~buffer_cap:16 ~fanout:2 ~pool base
      in
      let model = Model.create () in
      Array.iter (Model.insert model) base;
      let next_id = ref 100 in
      for op = 1 to 2000 do
        if List.length model.Model.live < 20 || Rng.bernoulli rng 0.65 then begin
          incr next_id;
          let e = random_interval rng !next_id in
          Model.insert model e;
          Ing.insert ing e
        end
        else begin
          let live = Array.of_list model.Model.live in
          let e = live.(Rng.int rng (Array.length live)) in
          Model.delete model e;
          Ing.delete ing e
        end;
        (* Kill merge workers mid-stream: the supervisor respawns them
           and compaction keeps going. *)
        if op = 700 then Executor.inject_worker_crash pool 0;
        if op = 1400 then Executor.inject_worker_crash pool 1;
        (* Updates are synchronous and merges only reorganise, so any
           interleaved query must agree with the model exactly. *)
        if op mod 250 = 0 then check_against_model ing model rng
      done;
      Ing.freeze ing;
      Alcotest.(check bool) "survived the crashes" false (Ing.wedged ing);
      check_against_model ing model rng;
      Alcotest.(check int) "live = model" (List.length model.Model.live)
        (Ing.size ing);
      let m = Executor.metrics pool in
      Alcotest.(check int) "every update counted" 2000
        (Metrics.Counter.get m.Metrics.updates);
      Alcotest.(check bool) "seals recorded" true
        (Metrics.Counter.get m.Metrics.seals > 0);
      Alcotest.(check bool) "merges recorded" true
        (Metrics.Counter.get m.Metrics.merges > 0);
      Alcotest.(check bool) "tombstones recorded" true
        (Metrics.Counter.get m.Metrics.tombstones > 0);
      Alcotest.(check bool) "merge latency observed" true
        (Metrics.Histogram.count m.Metrics.merge_latency_us > 0);
      Executor.drain pool;
      (* Background merge I/O was charged to the worker domains. *)
      let agg = Executor.aggregate_stats pool in
      Alcotest.(check bool) "merge I/O on the workers" true
        (agg.Stats.ios > 0))

(* ------------------------------------------------------------------ *)
(* Registry integration                                                *)

let test_registry_updates () =
  let rng = Rng.create 431 in
  let registry = Registry.create () in
  let base = Array.init 20 (fun i -> random_interval rng (i + 1)) in
  let ing = Ing.create ~params:iparams ~buffer_cap:4 base in
  let h = Ing.register registry ~name:"live" ing in
  Alcotest.(check bool) "updatable" true (Registry.updatable h);
  let e = random_interval rng 1000 in
  Registry.insert h e;
  Alcotest.(check int) "insert through the handle" 21 (Ing.size ing);
  Registry.delete h e;
  Alcotest.(check int) "delete through the handle" 20 (Ing.size ing);
  Registry.freeze h;
  Alcotest.(check bool) "freeze through the handle" true (Ing.frozen ing);
  (* A static registration stays static. *)
  let s = Inst.Topk_t2.build ~params:iparams base in
  let hs =
    Registry.register registry ~name:"static" (module Inst.Topk_t2) s
  in
  Alcotest.(check bool) "static" false (Registry.updatable hs);
  List.iter
    (fun f ->
      try
        f ();
        Alcotest.fail "write on a static instance accepted"
      with Invalid_argument _ -> ())
    [ (fun () -> Registry.insert hs e);
      (fun () -> Registry.delete hs e);
      (fun () -> Registry.freeze hs) ]

(* ------------------------------------------------------------------ *)
(* The shard delta path: static snapshot + per-shard pending updates   *)

module ISS =
  Topk_shard.Shard_set.Make (Inst.Topk_t2) (Topk_interval.Slab_max)
module IPlanner = Topk_shard.Planner.Make (ISS)
module IScatter = Topk_shard.Scatter.Make (ISS) (Inst.Topk_t2)

let test_delta_paths () =
  let rng = Rng.create 433 in
  let shards = 4 in
  let per = 50 in
  let partition =
    Array.init shards (fun s ->
        Array.init per (fun i -> random_interval rng ((s * per) + i + 1)))
  in
  let set = ISS.build ~params:iparams partition in
  (* One ingest wrapper per shard, seeded with the same slice the
     static snapshot indexes (few enough updates that compaction never
     folds into the base run, which the delta treats as the static
     part). *)
  let ings =
    Array.map (Ing.create ~params:iparams ~buffer_cap:8 ~fanout:4) partition
  in
  let model = Model.create () in
  Array.iter (Array.iter (Model.insert model)) partition;
  let next_id = ref (shards * per) in
  for _ = 1 to 80 do
    let s = Rng.int rng shards in
    if Rng.bernoulli rng 0.6 then begin
      incr next_id;
      let e = random_interval rng !next_id in
      Model.insert model e;
      Ing.insert ings.(s) e
    end
    else begin
      let slice = partition.(s) in
      let e = slice.(Rng.int rng per) in
      Model.delete model e;
      Ing.delete ings.(s) e
    end
  done;
  let views = Array.map Ing.pin ings in
  Fun.protect
    ~finally:(fun () -> Array.iter Ing.unpin views)
    (fun () ->
      let deltas = Array.map Ing.delta_of_view views in
      let qs = Gen.stab_queries rng ~n:10 in
      (* Sequential planner... *)
      Array.iter
        (fun q ->
          List.iter
            (fun k ->
              let got, _report = IPlanner.query_with_delta set deltas q ~k in
              Alcotest.(check (list int))
                "planner+delta = model"
                (ids (Model.top_k model q ~k))
                (ids got))
            [ 1; 5; 25 ])
        qs;
      (* ...and the pool-backed scatter agree with the model. *)
      let pool = Executor.create ~workers:3 () in
      Fun.protect
        ~finally:(fun () -> Executor.shutdown pool)
        (fun () ->
          let registry = Registry.create () in
          let sc = IScatter.create pool registry ~name:"dlt" set in
          Array.iter
            (fun q ->
              List.iter
                (fun k ->
                  let r = IScatter.query sc ~deltas q ~k in
                  Alcotest.(check (list int))
                    "scatter+delta = model"
                    (ids (Model.top_k model q ~k))
                    (ids r.IScatter.answers))
                [ 1; 5; 25 ])
            qs);
      (* Wrong arity is rejected. *)
      try
        ignore
          (IPlanner.query_with_delta set (Array.sub deltas 0 1) 0.5 ~k:3);
        Alcotest.fail "short delta array accepted"
      with Invalid_argument _ -> ())

let () =
  Alcotest.run "topk_ingest"
    [
      ( "update_log",
        [
          Alcotest.test_case "basics" `Quick test_log_basics;
          Alcotest.test_case "replay" `Quick test_log_replay;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "refcounts" `Quick test_epoch_refcounts;
          Alcotest.test_case "4-domain pin/unpin races" `Slow
            test_epoch_domain_races;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "inline trace" `Slow test_ingest_trace_inline;
          Alcotest.test_case "delete to empty, purge" `Quick
            test_ingest_delete_to_empty_and_purge;
          Alcotest.test_case "re-insert tombstoned id" `Quick
            test_ingest_reinsert_tombstoned_id;
          Alcotest.test_case "snapshot isolation" `Quick
            test_ingest_snapshot_isolation;
          Alcotest.test_case "pool + crash" `Slow test_ingest_pool_with_crash;
        ] );
      ( "integration",
        [
          Alcotest.test_case "registry updates" `Quick test_registry_updates;
          Alcotest.test_case "delta paths" `Quick test_delta_paths;
        ] );
    ]
