(* The epoch-consistent answer cache: unit laws over the striped store
   (admission, prefix serving, LRU/TTL eviction, version supersession,
   term fencing), the Client facade's cache-transparency laws, the
   replicated group's cached-vs-uncached equivalence across a
   failover, stale refusal under a read-your-writes token, and a
   4-domain race over the striped table. *)

module C = Topk_cache.Cache
module V = Topk_cache.Version
module Cons = Topk_cache.Consistency
module Svc = Topk_service
module I = Topk_interval.Interval
module IInst = Topk_interval.Instances
module Rng = Topk_util.Rng

let v ~term ~seq = V.make ~term ~seq

(* --- Version --- *)

let test_version () =
  let a = v ~term:0 ~seq:3 and b = v ~term:0 ~seq:7 in
  Alcotest.(check bool) "seq orders" true (V.compare a b < 0);
  Alcotest.(check bool) "term dominates" true
    (V.compare (v ~term:1 ~seq:0) b > 0);
  Alcotest.(check bool) "equal" true (V.equal a (v ~term:0 ~seq:3));
  Alcotest.(check bool) "newer_than" true (V.newer_than b a);
  let bumped = V.bump_term b in
  Alcotest.(check int) "bump keeps seq" 7 (V.seq bumped);
  Alcotest.(check int) "bump advances term" 1 (V.term bumped);
  Alcotest.(check int) "static" 0 (V.seq V.static);
  Alcotest.check_raises "negative seq"
    (Invalid_argument "Version.make: seq must be >= 0 (got -1)") (fun () ->
      ignore (V.make ~term:0 ~seq:(-1)))

(* --- Consistency.admits --- *)

let test_consistency_admits () =
  let current = v ~term:1 ~seq:10 in
  let ck name want entry level =
    Alcotest.(check bool) name want (Cons.admits ~current ~entry level)
  in
  (* Any serves only the exact live version: cache-on == cache-off. *)
  ck "any exact" true (v ~term:1 ~seq:10) Cons.Any;
  ck "any behind" false (v ~term:1 ~seq:9) Cons.Any;
  (* At_least is the read-your-writes floor. *)
  ck "at_least ok" true (v ~term:1 ~seq:9) (Cons.At_least 5);
  ck "at_least under" false (v ~term:1 ~seq:4) (Cons.At_least 5);
  (* Pinned demands the snapshot exactly. *)
  ck "pinned exact" true (v ~term:1 ~seq:9) (Cons.Pinned 9);
  ck "pinned over" false (v ~term:1 ~seq:10) (Cons.Pinned 9);
  (* Max_lag bounds distance behind the head. *)
  ck "max_lag ok" true (v ~term:1 ~seq:8) (Cons.Max_lag 2);
  ck "max_lag over" false (v ~term:1 ~seq:7) (Cons.Max_lag 2);
  (* Never across terms: a pre-failover answer may cover truncated
     writes. *)
  ck "cross-term any" false (v ~term:0 ~seq:10) Cons.Any;
  ck "cross-term at_least" false (v ~term:0 ~seq:10) (Cons.At_least 0);
  ck "cross-term max_lag" false (v ~term:0 ~seq:10) (Cons.Max_lag 100);
  (* Never from the future (a fenced answer leaking across a
     truncation would look like this). *)
  ck "future" false (v ~term:1 ~seq:11) (Cons.At_least 0);
  Alcotest.check_raises "negative token"
    (Invalid_argument "Consistency: At_least seq must be >= 0 (got -1)") (fun () ->
      Cons.validate (Cons.At_least (-1)))

(* --- admission threshold --- *)

let test_admission_threshold () =
  let c = C.create ~min_cost:5 () in
  let admit ~qkey ~cost =
    C.admit c ~instance:"i" ~qkey ~version:V.static ~k:3 ~len:3 ~cost ~now:0.0
      [ 1; 2; 3 ]
  in
  Alcotest.(check bool) "cheap answer bypassed" true
    (admit ~qkey:"a" ~cost:4 = `Bypassed);
  Alcotest.(check bool) "costly answer admitted" true
    (admit ~qkey:"b" ~cost:5 = `Admitted);
  Alcotest.(check int) "only the admitted entry stored" 1 (C.length c);
  let st = C.stats c in
  Alcotest.(check int) "bypass counted" 1 st.C.st_bypasses;
  Alcotest.(check int) "admit counted" 1 st.C.st_admits

(* --- prefix serving --- *)

let test_prefix_serving () =
  let c = C.create () in
  let find ~qkey ~k =
    C.find c ~instance:"i" ~qkey ~current:V.static ~k ~now:1.0 ()
  in
  ignore
    (C.admit c ~instance:"i" ~qkey:"full" ~version:V.static ~k:10 ~len:10
       ~cost:50 ~now:0.0
       [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]);
  (match find ~qkey:"full" ~k:10 with
  | C.Hit e -> Alcotest.(check int) "full k" 10 e.C.e_len
  | _ -> Alcotest.fail "expected hit at the cached k");
  (match find ~qkey:"full" ~k:3 with
  | C.Hit e ->
      (* The entry serves any smaller k; the caller slices. *)
      Alcotest.(check (list int)) "payload intact"
        [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
        e.C.e_payload
  | _ -> Alcotest.fail "an entry at k=10 must serve k=3");
  (match find ~qkey:"full" ~k:11 with
  | C.Miss -> ()
  | _ -> Alcotest.fail "k=11 exceeds the cached rank coverage");
  (* A short answer (len < k) proved the matching set exhausted, so it
     covers every rank. *)
  ignore
    (C.admit c ~instance:"i" ~qkey:"short" ~version:V.static ~k:10 ~len:4
       ~cost:50 ~now:0.0 [ 1; 2; 3; 4 ]);
  match find ~qkey:"short" ~k:25 with
  | C.Hit e -> Alcotest.(check int) "exhausted set serves any k" 4 e.C.e_len
  | _ -> Alcotest.fail "an exhausted answer must serve any k"

(* --- version supersession --- *)

let test_supersede () =
  let c = C.create () in
  let admit ~version ~k ~len payload =
    C.admit c ~instance:"i" ~qkey:"q" ~version ~k ~len ~cost:50 ~now:0.0
      payload
  in
  Alcotest.(check bool) "first admit" true
    (admit ~version:(v ~term:0 ~seq:5) ~k:10 ~len:10 [ 1 ] = `Admitted);
  (* A slow query racing a fast update must not roll the cache back. *)
  Alcotest.(check bool) "older version refused" true
    (admit ~version:(v ~term:0 ~seq:4) ~k:10 ~len:10 [ 2 ] = `Superseded);
  Alcotest.(check bool) "same version, smaller k refused" true
    (admit ~version:(v ~term:0 ~seq:5) ~k:8 ~len:8 [ 3 ] = `Superseded);
  Alcotest.(check bool) "same version, wider k replaces" true
    (admit ~version:(v ~term:0 ~seq:5) ~k:12 ~len:12 [ 4 ] = `Admitted);
  Alcotest.(check bool) "newer version replaces" true
    (admit ~version:(v ~term:0 ~seq:6) ~k:10 ~len:10 [ 5 ] = `Admitted);
  match
    C.find c ~instance:"i" ~qkey:"q" ~current:(v ~term:0 ~seq:6) ~k:5 ~now:0.0
      ()
  with
  | C.Hit e -> Alcotest.(check (list int)) "newest payload" [ 5 ] e.C.e_payload
  | _ -> Alcotest.fail "expected the newest entry"

(* --- TTL expiry --- *)

let test_ttl () =
  let evicted = ref 0 in
  let c = C.create ~ttl:10.0 ~on_evict:(fun () -> incr evicted) () in
  ignore
    (C.admit c ~instance:"i" ~qkey:"q" ~version:V.static ~k:3 ~len:3 ~cost:9
       ~now:0.0 [ 1 ]);
  (match C.find c ~instance:"i" ~qkey:"q" ~current:V.static ~k:3 ~now:5.0 () with
  | C.Hit _ -> ()
  | _ -> Alcotest.fail "fresh entry must hit");
  (match C.find c ~instance:"i" ~qkey:"q" ~current:V.static ~k:3 ~now:10.5 () with
  | C.Miss -> ()
  | _ -> Alcotest.fail "expired entry must miss");
  Alcotest.(check int) "expiry reaped" 0 (C.length c);
  Alcotest.(check int) "on_evict fired" 1 !evicted;
  Alcotest.(check int) "expiry counts as eviction" 1 (C.stats c).C.st_evictions

(* --- LRU eviction --- *)

let test_lru () =
  let evicted = ref 0 in
  let c = C.create ~stripes:1 ~capacity:3 ~on_evict:(fun () -> incr evicted) () in
  let admit ~qkey ~now =
    ignore
      (C.admit c ~instance:"i" ~qkey ~version:V.static ~k:3 ~len:3 ~cost:9 ~now
         [ 1 ])
  in
  let find ~qkey ~now =
    C.find c ~instance:"i" ~qkey ~current:V.static ~k:3 ~now ()
  in
  admit ~qkey:"a" ~now:1.0;
  admit ~qkey:"b" ~now:2.0;
  admit ~qkey:"c" ~now:3.0;
  (* Touch [a]: it is now more recently used than [b]. *)
  (match find ~qkey:"a" ~now:4.0 with
  | C.Hit _ -> ()
  | _ -> Alcotest.fail "a must hit");
  admit ~qkey:"d" ~now:5.0;
  Alcotest.(check int) "capacity held" 3 (C.length c);
  Alcotest.(check int) "one eviction" 1 !evicted;
  (match find ~qkey:"b" ~now:6.0 with
  | C.Miss -> ()
  | _ -> Alcotest.fail "least-recently-used entry must be the victim");
  match (find ~qkey:"a" ~now:6.0, find ~qkey:"d" ~now:6.0) with
  | C.Hit _, C.Hit _ -> ()
  | _ -> Alcotest.fail "recently-used entries must survive"

(* --- term fencing --- *)

let test_term_fencing () =
  let c = C.create () in
  ignore
    (C.admit c ~instance:"i" ~qkey:"q" ~version:(v ~term:0 ~seq:5) ~k:3 ~len:3
       ~cost:9 ~now:0.0 [ 1 ]);
  (* The failover bumps the term without moving seq: the pre-failover
     entry is present but must refuse to serve under every level. *)
  let fenced = v ~term:1 ~seq:5 in
  List.iter
    (fun level ->
      match
        C.find c ~instance:"i" ~qkey:"q" ~current:fenced ~k:3 ~now:0.0
          ~consistency:level ()
      with
      | C.Stale -> ()
      | C.Hit _ -> Alcotest.failf "pre-failover entry served under %s"
            (Cons.to_string level)
      | C.Miss -> Alcotest.fail "entry should still be present")
    [ Cons.Any; Cons.At_least 0; Cons.Max_lag 100 ];
  (* Re-admission at the new term takes over. *)
  ignore
    (C.admit c ~instance:"i" ~qkey:"q" ~version:fenced ~k:3 ~len:3 ~cost:9
       ~now:0.0 [ 2 ]);
  match C.find c ~instance:"i" ~qkey:"q" ~current:fenced ~k:3 ~now:0.0 () with
  | C.Hit e -> Alcotest.(check (list int)) "new-term payload" [ 2 ] e.C.e_payload
  | _ -> Alcotest.fail "re-admitted entry must serve"

(* --- invalidate / clear / stats --- *)

let test_invalidate_clear () =
  let c = C.create () in
  ignore
    (C.admit c ~instance:"i" ~qkey:"q" ~version:V.static ~k:3 ~len:3 ~cost:9
       ~now:0.0 [ 1 ]);
  Alcotest.(check bool) "invalidate present" true
    (C.invalidate c ~instance:"i" ~qkey:"q");
  Alcotest.(check bool) "invalidate absent" false
    (C.invalidate c ~instance:"i" ~qkey:"q");
  ignore
    (C.admit c ~instance:"i" ~qkey:"q" ~version:V.static ~k:3 ~len:3 ~cost:9
       ~now:0.0 [ 1 ]);
  C.clear c;
  Alcotest.(check int) "clear empties" 0 (C.length c);
  Alcotest.(check bool) "hit rate well-defined when empty" true
    (C.hit_rate (C.create ()) = 0.0)

(* --- Client facade: transparency and prefix laws --- *)

let mk_intervals n seed =
  let rng = Rng.create seed in
  Array.init n (fun i ->
      let lo = Rng.uniform rng in
      let hi = Float.min 1.0 (lo +. 0.05 +. (0.4 *. Rng.uniform rng)) in
      I.make ~id:(i + 1) ~lo ~hi
        ~weight:(float_of_int (i + 1) +. (0.5 *. Rng.uniform rng))
        ())

let ids resp = List.map (fun (e : I.t) -> e.I.id) resp.Svc.Response.answers

let test_client_prefix_law () =
  let elems = mk_intervals 500 11 in
  let inst = IInst.Topk_t2.build ~params:(IInst.params ()) elems in
  let registry = Svc.Registry.create () in
  let h =
    Svc.Registry.register registry ~name:"itv" (module IInst.Topk_t2) inst
  in
  let metrics = Svc.Metrics.create () in
  let client = Svc.Client.create ~metrics () in
  let ch = Svc.Client.attach client (Svc.Client.direct h) in
  let off = Svc.Client.create ~cache:false () in
  let ch_off = Svc.Client.attach off (Svc.Client.direct h) in
  let q = 0.41 in
  let r8 = Svc.Client.query_sync ch q ~k:8 in
  Alcotest.(check int) "first query computes" 0
    (Svc.Metrics.Counter.get metrics.Svc.Metrics.cache_hits);
  let r8' = Svc.Client.query_sync ch q ~k:8 in
  Alcotest.(check int) "repeat hits" 1
    (Svc.Metrics.Counter.get metrics.Svc.Metrics.cache_hits);
  Alcotest.(check (list int)) "hit equals computed" (ids r8) (ids r8');
  Alcotest.(check int) "hit charges zero I/O" 0
    (Svc.Response.cost r8').Topk_em.Stats.ios;
  (* Prefix law: the k=8 entry serves k=3 with the same leading
     answers a fresh computation produces. *)
  let r3 = Svc.Client.query_sync ch q ~k:3 in
  Alcotest.(check int) "prefix hit" 2
    (Svc.Metrics.Counter.get metrics.Svc.Metrics.cache_hits);
  let r3_off = Svc.Client.query_sync ch_off q ~k:3 in
  Alcotest.(check (list int)) "prefix equals cache-off answer" (ids r3_off)
    (ids r3);
  (* Cache-off equals cache-on at every k exercised. *)
  let r8_off = Svc.Client.query_sync ch_off q ~k:8 in
  Alcotest.(check (list int)) "cache-on == cache-off" (ids r8_off) (ids r8);
  (* Budgeted queries bypass the cache in both directions: the cached
     complete answer must not shadow the certified prefix. *)
  let starved =
    Svc.Client.query_sync ch q ~k:8 ~limits:(Svc.Limits.make ~budget:1 ())
  in
  Alcotest.(check bool) "budget produces a cutoff" true
    (Svc.Response.is_partial starved);
  Alcotest.(check int) "budgeted query did not hit" 2
    (Svc.Metrics.Counter.get metrics.Svc.Metrics.cache_hits)

(* --- replicated group: cached == uncached across a failover --- *)

module G = Topk_repl.Group.Make (IInst.Topk_t2)

let mk_group ~cache ~metrics base =
  let plan = Topk_repl.Transport.clean ~seed:31 in
  G.create ~params:(IInst.params ()) ~plan ?cache ?metrics ~quorum:2
    ~name:"law" ~replicas:2 base

let test_group_cache_equivalence () =
  let n = 60 in
  let base = mk_intervals n 21 in
  let metrics = Svc.Metrics.create () in
  let cache = Topk_cache.Cache.create ~min_cost:1 () in
  let gc = mk_group ~cache:(Some cache) ~metrics:(Some metrics) base in
  let gu = mk_group ~cache:None ~metrics:None base in
  let live = ref (Array.to_list base) in
  let wrng = Rng.create 77 and qrng = Rng.create 78 in
  let next_id = ref (n + 1) in
  let queries_checked = ref 0 in
  for step = 1 to 12 do
    (* One write applied to both groups, then settle so every node is
       at the head. *)
    let rng = wrng in
    let lo = Rng.uniform rng in
    let hi = Float.min 1.0 (lo +. 0.3) in
    let e =
      I.make ~id:!next_id ~lo ~hi
        ~weight:(float_of_int !next_id +. 0.25)
        ()
    in
    incr next_id;
    live := e :: !live;
    ignore (G.insert gc e);
    ignore (G.insert gu e);
    Alcotest.(check bool) "cached group settles" true (G.settle gc);
    Alcotest.(check bool) "uncached group settles" true (G.settle gu);
    (* Fail both primaries mid-run: the cached group's term bump must
       fence its pre-failover entries, not corrupt its answers. *)
    if step = 6 then begin
      ignore (G.fail_primary gc);
      ignore (G.fail_primary gu);
      Alcotest.(check bool) "cached group recovers" true (G.settle gc);
      Alcotest.(check bool) "uncached group recovers" true (G.settle gu)
    end;
    (* A burst of repeated queries: the cached group serves hits, the
       uncached group recomputes, and the answers must agree with the
       from-scratch oracle and with each other. *)
    for _ = 1 to 6 do
      (* Draw from a small pool so queries repeat within a head — the
         repeats are what the cached group serves as hits. *)
      let q = float_of_int (1 + Rng.int qrng 4) /. 5.0 in
      let want =
        List.sort compare
          (List.map
             (fun (e : I.t) -> e.I.id)
             (Topk_util.Select.top_k ~cmp:I.compare_weight 5
                (List.filter (fun e -> I.contains e q) !live)))
      in
      match (G.read gc q ~k:5, G.read gu q ~k:5) with
      | Some rc, Some ru ->
          incr queries_checked;
          Alcotest.(check (list int)) "cached == oracle" want
            (List.sort compare (ids rc));
          Alcotest.(check (list int)) "uncached == oracle" want
            (List.sort compare (ids ru))
      | _ -> Alcotest.fail "a settled group refused a read"
    done
  done;
  Alcotest.(check bool) "burst produced hits"
    true
    (Svc.Metrics.Counter.get metrics.Svc.Metrics.cache_hits > 0);
  Alcotest.(check int) "all reads checked" 72 !queries_checked

(* --- stale refusal under a read-your-writes token --- *)

let test_group_stale_refusal () =
  let n = 40 in
  let base = mk_intervals n 51 in
  let metrics = Svc.Metrics.create () in
  let cache = Topk_cache.Cache.create ~min_cost:1 () in
  let g = mk_group ~cache:(Some cache) ~metrics:(Some metrics) base in
  let q = 0.5 in
  let e1 = I.make ~id:(n + 1) ~lo:0.0 ~hi:1.0 ~weight:1000.0 () in
  let s1 = G.write_seq (G.insert g e1) in
  Alcotest.(check bool) "settled" true (G.settle g);
  (* Warm the cache at s1. *)
  ignore (G.read g q ~k:5);
  (match G.read g q ~k:5 with
  | Some r ->
      Alcotest.(check int) "warm hit at s1" 0
        (Svc.Response.cost r).Topk_em.Stats.ios;
      Alcotest.(check (option int)) "hit carries the entry's seq" (Some s1)
        (Svc.Response.seq_token r)
  | None -> Alcotest.fail "warm read refused");
  let hits_before = Svc.Metrics.Counter.get metrics.Svc.Metrics.cache_hits in
  (* A heavier element lands at s2.  A read demanding At_least s2 must
     refuse the s1 entry and recompute — serving it would hide e2. *)
  let e2 = I.make ~id:(n + 2) ~lo:0.0 ~hi:1.0 ~weight:2000.0 () in
  let s2 = G.write_seq (G.insert g e2) in
  Alcotest.(check bool) "settled again" true (G.settle g);
  (match G.read g ~consistency:(Svc.Consistency.At_least s2) q ~k:5 with
  | Some r -> (
      match Svc.Response.seq_token r with
      | Some tok ->
          Alcotest.(check bool) "token honors the floor" true (tok >= s2);
          Alcotest.(check bool) "answer sees the new element" true
            (List.mem (n + 2) (ids r))
      | None -> Alcotest.fail "replicated read lost its token")
  | None -> Alcotest.fail "satisfiable token refused");
  Alcotest.(check int) "the stale entry did not serve" hits_before
    (Svc.Metrics.Counter.get metrics.Svc.Metrics.cache_hits);
  (* The recomputed answer re-warmed the cache at s2. *)
  match G.read g q ~k:5 with
  | Some r ->
      Alcotest.(check int) "re-warmed hit" 0
        (Svc.Response.cost r).Topk_em.Stats.ios;
      Alcotest.(check (option int)) "at the new seq" (Some s2)
        (Svc.Response.seq_token r)
  | None -> Alcotest.fail "re-warmed read refused"

(* --- striped race across 4 domains --- *)

let test_striped_race () =
  let c = C.create ~stripes:4 ~capacity:64 ~min_cost:1 () in
  let keys = Array.init 16 (fun i -> Printf.sprintf "k%d" i) in
  (* Per-key payload is a function of the key alone, so any torn
     publication shows up as a wrong payload on a hit. *)
  let payload_of i = [ i; i * 10; i * 100 ] in
  let ops_per_domain = 5_000 in
  let bad = Atomic.make 0 in
  let worker seed () =
    let rng = Rng.create seed in
    for op = 1 to ops_per_domain do
      let i = Rng.int rng (Array.length keys) in
      let qkey = keys.(i) in
      match
        C.find c ~instance:"race" ~qkey ~current:V.static ~k:3
          ~now:(float_of_int op) ()
      with
      | C.Hit e ->
          if e.C.e_payload <> payload_of i then Atomic.incr bad
      | C.Stale -> Atomic.incr bad
      | C.Miss ->
          ignore
            (C.admit c ~instance:"race" ~qkey ~version:V.static ~k:3 ~len:3
               ~cost:9 ~now:(float_of_int op) (payload_of i));
          if Rng.uniform rng < 0.02 then
            ignore (C.invalidate c ~instance:"race" ~qkey)
    done
  in
  let domains =
    List.init 4 (fun d -> Domain.spawn (worker (1000 + (d * 7))))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no torn or stale payloads" 0 (Atomic.get bad);
  Alcotest.(check bool) "capacity respected" true (C.length c <= 64);
  let st = C.stats c in
  Alcotest.(check int) "every lookup accounted" (4 * ops_per_domain)
    (st.C.st_hits + st.C.st_misses + st.C.st_stale);
  Alcotest.(check bool) "the race produced hits" true (st.C.st_hits > 0);
  (* The table is still coherent after the race. *)
  Array.iteri
    (fun i qkey ->
      match
        C.find c ~instance:"race" ~qkey ~current:V.static ~k:3 ~now:1e9 ()
      with
      | C.Hit e ->
          Alcotest.(check (list int))
            (Printf.sprintf "final payload %d" i)
            (payload_of i) e.C.e_payload
      | C.Miss -> ()
      | C.Stale -> Alcotest.fail "static entries cannot be stale")
    keys

let () =
  Alcotest.run "cache"
    [
      ( "unit",
        [
          Alcotest.test_case "version" `Quick test_version;
          Alcotest.test_case "consistency admits" `Quick
            test_consistency_admits;
          Alcotest.test_case "admission threshold" `Quick
            test_admission_threshold;
          Alcotest.test_case "prefix serving" `Quick test_prefix_serving;
          Alcotest.test_case "version supersession" `Quick test_supersede;
          Alcotest.test_case "ttl expiry" `Quick test_ttl;
          Alcotest.test_case "lru eviction" `Quick test_lru;
          Alcotest.test_case "term fencing" `Quick test_term_fencing;
          Alcotest.test_case "invalidate and clear" `Quick
            test_invalidate_clear;
        ] );
      ( "laws",
        [
          Alcotest.test_case "client prefix + transparency" `Quick
            test_client_prefix_law;
          Alcotest.test_case "group cached == uncached across failover"
            `Quick test_group_cache_equivalence;
          Alcotest.test_case "stale refusal under At_least" `Quick
            test_group_stale_refusal;
          Alcotest.test_case "striped race across 4 domains" `Quick
            test_striped_race;
        ] );
    ]
