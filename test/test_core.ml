(* Tests for the reduction framework itself: the sampling lemmas, the
   core-set construction, the dyadic prefix decomposition, and the
   reduction functors applied to a minimal self-contained problem
   (1D dominance: elements on a line, predicate "position <= x"). *)

module Rng = Topk_util.Rng
module Rank_sampling = Topk_core.Rank_sampling
module Core_set = Topk_core.Core_set
module Prefix_blocks = Topk_core.Prefix_blocks
module Params = Topk_core.Params
module Sigs = Topk_core.Sigs
module Pst = Topk_pst.Pst

(* --- The inline problem: 1D dominance --- *)

module Dot = struct
  type t = { pos : float; w : float; uid : int }

  let make uid pos w = { pos; w; uid }
end

module Dot_problem = struct
  type elem = Dot.t

  type query = float

  let weight (e : elem) = e.Dot.w

  let id (e : elem) = e.Dot.uid

  let matches q (e : elem) = e.Dot.pos <= q

  let pp_elem ppf (e : elem) =
    Format.fprintf ppf "%g@%g#%d" e.Dot.pos e.Dot.w e.Dot.uid

  let pp_query ppf q = Format.fprintf ppf "pos<=%g" q
end

(* Prioritized 1D dominance: one PST keyed on position. *)
module Dot_pri = struct
  module P = Dot_problem

  type t = Dot.t Pst.t

  let name = "dot-pst"

  let build ?params:_ elems =
    Pst.build ~key:(fun (e : Dot.t) -> e.Dot.pos)
      ~weight:(fun (e : Dot.t) -> e.Dot.w)
      elems

  let size = Pst.size

  let space_words = Pst.space_words

  let query t q ~tau = Pst.query_list t ~side:Pst.Below ~bound:q ~tau

  let query_monitored t q ~tau ~limit =
    match Pst.query_monitored t ~side:Pst.Below ~bound:q ~tau ~limit with
    | `All l -> Sigs.All l
    | `Truncated l -> Sigs.Truncated l
end

(* Max 1D dominance: prefix maxima over the position order. *)
module Dot_max = struct
  module P = Dot_problem

  type t = {
    pos : float array;          (* ascending *)
    prefix_best : Dot.t array;  (* heaviest among pos.(0..i) *)
  }

  let name = "dot-prefix-max"

  let build ?params:_ elems =
    let sorted = Array.copy elems in
    Array.sort
      (fun (a : Dot.t) (b : Dot.t) -> Float.compare a.Dot.pos b.Dot.pos)
      sorted;
    let n = Array.length sorted in
    let prefix_best = Array.make n (Dot.make 0 0. 0.) in
    let best = ref None in
    Array.iteri
      (fun i (e : Dot.t) ->
        (match !best with
         | None -> best := Some e
         | Some b -> if e.Dot.w > b.Dot.w then best := Some e);
        prefix_best.(i) <- Option.get !best)
      sorted;
    { pos = Array.map (fun (e : Dot.t) -> e.Dot.pos) sorted; prefix_best }

  let size t = Array.length t.pos

  let space_words t = 2 * Array.length t.pos

  let query t q =
    Topk_em.Stats.charge_ios 1;
    let m = Topk_util.Search.upper_bound ~cmp:Float.compare t.pos q in
    if m = 0 then None else Some t.prefix_best.(m - 1)
  end

(* Exact counting for 1D dominance: predecessor rank in the position
   order. *)
module Dot_count = struct
  module P = Dot_problem

  type t = float array  (* positions, ascending *)

  let name = "dot-count"

  let build elems =
    let pos = Array.map (fun (e : Dot.t) -> e.Dot.pos) elems in
    Array.sort Float.compare pos;
    pos

  let size t = Array.length t

  let space_words t = Array.length t

  let count t q =
    Topk_em.Stats.charge_ios 1;
    Topk_util.Search.upper_bound ~cmp:Float.compare t q
end

module Dot_oracle = Topk_core.Oracle.Make (Dot_problem)
module Dot_t1 = Topk_core.Theorem1.Make (Dot_pri)
module Dot_t2 = Topk_core.Theorem2.Make (Dot_pri) (Dot_max)
module Dot_rj = Topk_core.Baseline_rj.Make (Dot_pri)
module Dot_rjc = Topk_core.Rj_counting.Make (Dot_pri) (Dot_count)
module Dot_synth_max = Topk_core.Max_from_pri.Make (Dot_pri)
module Dot_t2_synth = Topk_core.Theorem2.Make (Dot_pri) (Dot_synth_max)
module Dot_dyn_pri = Topk_core.Bentley_saxe.Make (Dot_pri)

let random_dots rng n =
  let weights = Topk_util.Gen.distinct_weights rng n in
  Array.init n (fun i -> Dot.make (i + 1) (Rng.uniform rng) weights.(i))

(* --- Lemma 1 --- *)

let test_lemma1_failure_rate () =
  let rng = Rng.create 401 in
  let n = 20_000 in
  let arr = Array.init n (fun i -> i) in
  Rng.shuffle rng arr;
  let delta = 0.2 in
  List.iter
    (fun k ->
      let p = Rank_sampling.min_p ~k ~delta in
      let failures = ref 0 in
      let trials = 300 in
      for _ = 1 to trials do
        match Rank_sampling.lemma1_trial rng ~cmp:Int.compare ~k ~p arr with
        | Rank_sampling.Ok_rank -> ()
        | _ -> incr failures
      done;
      let rate = float_of_int !failures /. float_of_int trials in
      (* The lemma promises <= delta; leave slack for the finite trial
         count. *)
      if rate > delta +. 0.05 then
        Alcotest.failf "lemma1 failure rate %.3f > delta %.3f (k=%d)" rate
          delta k)
    [ 100; 500; 2000 ]

let test_lemma1_parameters () =
  Alcotest.check_raises "k = 0"
    (Invalid_argument "Rank_sampling.min_p: k must be >= 1") (fun () ->
      ignore (Rank_sampling.min_p ~k:0 ~delta:0.5));
  Alcotest.check_raises "delta = 0"
    (Invalid_argument "Rank_sampling.min_p: delta must be in (0,1)")
    (fun () -> ignore (Rank_sampling.min_p ~k:5 ~delta:0.));
  (* kp >= 3 ln (3/delta) by construction (unless clamped at 1). *)
  let k = 1000 and delta = 0.1 in
  let p = Rank_sampling.min_p ~k ~delta in
  Alcotest.(check bool) "working condition" true
    (float_of_int k *. p >= 3. *. log (3. /. delta) -. 1e-9)

(* --- Lemma 3 --- *)

let test_lemma3_success_rate () =
  let rng = Rng.create 403 in
  let n = 50_000 in
  let arr = Array.init n (fun i -> i) in
  Rng.shuffle rng arr;
  List.iter
    (fun kk ->
      let successes = ref 0 in
      let trials = 2000 in
      for _ = 1 to trials do
        match Rank_sampling.lemma3_trial rng ~cmp:Int.compare ~kk arr with
        | Rank_sampling.Ok_rank -> incr successes
        | _ -> ()
      done;
      let rate = float_of_int !successes /. float_of_int trials in
      if rate < 0.09 then
        Alcotest.failf "lemma3 success rate %.3f < 0.09 (K=%g)" rate kk)
    [ 10.; 100.; 1000. ]

let test_rank_of () =
  let arr = [| 5; 9; 1; 7 |] in
  Alcotest.(check int) "rank of max" 1
    (Rank_sampling.rank_of ~cmp:Int.compare arr 9);
  Alcotest.(check int) "rank of min" 4
    (Rank_sampling.rank_of ~cmp:Int.compare arr 1)

(* --- Lemma 2 (core-sets) --- *)

let test_core_set_size_bound () =
  let rng = Rng.create 407 in
  let n = 30_000 in
  let ground = Array.init n (fun i -> i) in
  List.iter
    (fun k ->
      let cs = Core_set.build rng ~lambda:1. ~k ground in
      let bound = Core_set.size_bound ~lambda:1. ~k ~n in
      Alcotest.(check bool)
        (Printf.sprintf "size %d <= bound %d (K=%d)"
           (Array.length cs.Core_set.elems) bound k)
        true
        (Array.length cs.Core_set.elems <= bound))
    [ 100; 1000; 5000 ]

let test_core_set_degenerate () =
  let rng = Rng.create 409 in
  let ground = Array.init 50 (fun i -> i) in
  (* K below 4 lambda ln n: p saturates, core-set = copy. *)
  let cs = Core_set.build rng ~lambda:2. ~k:2 ground in
  Alcotest.(check int) "degenerate copy" 50 (Array.length cs.Core_set.elems);
  Alcotest.(check (float 0.)) "p = 1" 1. cs.Core_set.p

(* Lemma 2's rank-capture property, validated over every distinct
   outcome of the 1D dominance problem (there are n + 1 of them, so
   the union bound in the proof is exactly exercised). *)
let test_core_set_rank_capture () =
  let rng = Rng.create 411 in
  let n = 8_000 in
  let dots = random_dots rng n in
  let kk = 200 in
  let cs = Core_set.build rng ~lambda:1. ~k:kk dots in
  let cmp (a : Dot.t) (b : Dot.t) =
    match Float.compare a.Dot.w b.Dot.w with
    | 0 -> Int.compare a.Dot.uid b.Dot.uid
    | c -> c
  in
  let sorted_pos = Array.map (fun (d : Dot.t) -> d.Dot.pos) dots in
  Array.sort Float.compare sorted_pos;
  let violations = ref 0 and checked = ref 0 in
  (* Every prefix of the position order is one distinct outcome. *)
  for m = 4 * kk to n - 1 do
    if m mod 100 = 0 then begin
      incr checked;
      let q = sorted_pos.(m - 1) in
      let q_d = Array.of_list (List.filter (fun (d : Dot.t) -> d.Dot.pos <= q)
                                 (Array.to_list dots)) in
      let q_r = Array.of_list (List.filter (fun (d : Dot.t) -> d.Dot.pos <= q)
                                 (Array.to_list cs.Core_set.elems)) in
      if Array.length q_r < cs.Core_set.rank_target then incr violations
      else begin
        let e =
          Topk_util.Select.nth_largest ~cmp (Array.copy q_r)
            cs.Core_set.rank_target
        in
        let rank = Rank_sampling.rank_of ~cmp q_d e in
        if rank < kk || rank > 4 * kk then incr violations
      end
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d violations over %d outcomes" !violations !checked)
    true
    (float_of_int !violations <= 0.05 *. float_of_int !checked)

(* --- Prefix blocks --- *)

let test_prefix_blocks_cover_exactly () =
  let rng = Rng.create 413 in
  for _ = 1 to 100 do
    let n = 1 + Rng.int rng 3000 in
    let t = Prefix_blocks.build ~n ~build:(fun o len -> (o, len)) in
    let m = Rng.int rng (n + 1) in
    let blocks = Prefix_blocks.query_prefix t m in
    (* Blocks must tile [0, m) in order, disjointly. *)
    let covered =
      List.fold_left
        (fun expected_o (o, len) ->
          if o <> expected_o then Alcotest.failf "gap at %d (got %d)" expected_o o;
          o + len)
        0 blocks
    in
    Alcotest.(check int) "covers exactly m" m covered;
    let max_blocks = 1 + int_of_float (Float.log2 (float_of_int (max 2 n))) in
    Alcotest.(check bool)
      (Printf.sprintf "block count %d <= log bound %d" (List.length blocks)
         max_blocks)
      true
      (List.length blocks <= max_blocks + 1)
  done

let test_prefix_blocks_edges () =
  let t = Prefix_blocks.build ~n:0 ~build:(fun o len -> (o, len)) in
  Alcotest.(check int) "empty" 0 (List.length (Prefix_blocks.query_prefix t 5));
  let t = Prefix_blocks.build ~n:7 ~build:(fun o len -> (o, len)) in
  Alcotest.(check int) "m = 0" 0 (List.length (Prefix_blocks.query_prefix t 0));
  let all = Prefix_blocks.query_prefix t 100 in
  Alcotest.(check int) "m clamped to n" 7
    (List.fold_left (fun acc (_, len) -> acc + len) 0 all)

(* --- Weight order --- *)

module W = Sigs.Weight_order (Dot_problem)

let test_weight_order () =
  let a = Dot.make 1 0. 5. and b = Dot.make 2 0. 5. and c = Dot.make 3 0. 9. in
  Alcotest.(check bool) "ties by id" true (W.compare a b < 0);
  Alcotest.(check int) "top_k order" 3
    (match W.top_k 2 [ a; b; c ] with
     | x :: _ -> x.Dot.uid
     | [] -> -1);
  Alcotest.(check int) "sort_desc length" 3 (List.length (W.sort_desc [ a; b; c ]))

(* --- The reductions on the inline problem --- *)

let dot_params =
  {
    Params.default with
    Params.lambda = 1.;
    q_pri = Params.log2;
    q_max = Params.log2;
  }

let test_dot_reductions_match_oracle () =
  let rng = Rng.create 419 in
  List.iter
    (fun n ->
      let dots = random_dots rng n in
      let oracle = Dot_oracle.build dots in
      let t1 = Dot_t1.build ~params:dot_params dots in
      let t2 = Dot_t2.build ~params:dot_params dots in
      let rj = Dot_rj.build dots in
      for _ = 1 to 20 do
        let q = Rng.uniform rng in
        List.iter
          (fun k ->
            let expected =
              List.map (fun (d : Dot.t) -> d.Dot.uid)
                (Dot_oracle.top_k oracle q ~k)
            in
            let got f = List.map (fun (d : Dot.t) -> d.Dot.uid) (f ()) in
            Alcotest.(check (list int)) "t1" expected
              (got (fun () -> Dot_t1.query t1 q ~k));
            Alcotest.(check (list int)) "t2" expected
              (got (fun () -> Dot_t2.query t2 q ~k));
            Alcotest.(check (list int)) "rj" expected
              (got (fun () -> Dot_rj.query rj q ~k)))
          [ 1; 2; 17; n / 4; n ]
      done)
    [ 10; 100; 1500 ]

let test_counting_reduction_matches_oracle () =
  let rng = Rng.create 431 in
  List.iter
    (fun n ->
      let dots = random_dots rng n in
      let oracle = Dot_oracle.build dots in
      let rjc = Dot_rjc.build dots in
      for _ = 1 to 20 do
        let q = Rng.uniform rng in
        List.iter
          (fun k ->
            Alcotest.(check (list int))
              "rj-counting"
              (List.map (fun (d : Dot.t) -> d.Dot.uid)
                 (Dot_oracle.top_k oracle q ~k))
              (List.map (fun (d : Dot.t) -> d.Dot.uid)
                 (Dot_rjc.query rjc q ~k)))
          [ 1; 2; 13; n / 3; n; n + 5 ]
      done)
    [ 1; 2; 30; 700 ]

let test_synth_max_and_t2 () =
  let rng = Rng.create 433 in
  let dots = random_dots rng 600 in
  let oracle = Dot_oracle.build dots in
  let m = Dot_synth_max.build dots in
  let t2s = Dot_t2_synth.build ~params:dot_params dots in
  for _ = 1 to 50 do
    let q = Rng.uniform rng in
    Alcotest.(check (option int))
      "synthesized max"
      (Option.map (fun (d : Dot.t) -> d.Dot.uid) (Dot_oracle.max oracle q))
      (Option.map (fun (d : Dot.t) -> d.Dot.uid) (Dot_synth_max.query m q));
    List.iter
      (fun k ->
        Alcotest.(check (list int))
          "theorem2 over synthesized max"
          (List.map (fun (d : Dot.t) -> d.Dot.uid)
             (Dot_oracle.top_k oracle q ~k))
          (List.map (fun (d : Dot.t) -> d.Dot.uid) (Dot_t2_synth.query t2s q ~k)))
      [ 1; 9; 300 ]
  done

let test_bentley_saxe_generic () =
  let rng = Rng.create 437 in
  let s = Dot_dyn_pri.build [||] in
  let live = ref [] in
  let next = ref 0 in
  for _ = 1 to 500 do
    if !next < 20 || Rng.bernoulli rng 0.6 then begin
      incr next;
      let d = Dot.make !next (Rng.uniform rng) (float_of_int !next) in
      live := d :: !live;
      Dot_dyn_pri.insert s d
    end
    else begin
      let arr = Array.of_list !live in
      let victim = arr.(Rng.int rng (Array.length arr)) in
      live := List.filter (fun (d : Dot.t) -> d.Dot.uid <> victim.Dot.uid) !live;
      Dot_dyn_pri.delete s victim
    end
  done;
  Alcotest.(check int) "live count" (List.length !live) (Dot_dyn_pri.live s);
  for _ = 1 to 30 do
    let q = Rng.uniform rng in
    let tau = Rng.float rng 500. in
    let expected =
      List.filter (fun (d : Dot.t) -> d.Dot.pos <= q && d.Dot.w >= tau) !live
      |> List.map (fun (d : Dot.t) -> d.Dot.uid)
      |> List.sort Int.compare
    in
    Alcotest.(check (list int))
      "dynamic prioritized query" expected
      (List.sort Int.compare
         (List.map (fun (d : Dot.t) -> d.Dot.uid) (Dot_dyn_pri.query s q ~tau)))
  done;
  Alcotest.(check bool) "rebuilds happened" true (Dot_dyn_pri.rebuilds s >= 0)

(* Failure injection: starve the randomized machinery of its constants
   and check exactness is preserved (only cost may degrade). *)
let test_adversarial_params_still_exact () =
  let rng = Rng.create 439 in
  let dots = random_dots rng 800 in
  let oracle = Dot_oracle.build dots in
  List.iter
    (fun (scale, sigma, seed) ->
      let params =
        {
          dot_params with
          Params.coreset_scale = scale;
          sigma;
          seed;
          max_sample_retries = 0;
        }
      in
      let t1 = Dot_t1.build ~params dots in
      let t2 = Dot_t2.build ~params dots in
      for _ = 1 to 15 do
        let q = Rng.uniform rng in
        List.iter
          (fun k ->
            let expected =
              List.map (fun (d : Dot.t) -> d.Dot.uid)
                (Dot_oracle.top_k oracle q ~k)
            in
            Alcotest.(check (list int))
              "t1 exact under adversarial params" expected
              (List.map (fun (d : Dot.t) -> d.Dot.uid) (Dot_t1.query t1 q ~k));
            Alcotest.(check (list int))
              "t2 exact under adversarial params" expected
              (List.map (fun (d : Dot.t) -> d.Dot.uid) (Dot_t2.query t2 q ~k)))
          [ 1; 31; 400 ]
      done)
    [ (0.001, 0.5, 1); (0.0001, 2.0, 2); (3.0, 0.001, 3) ]

let test_theorem2_round_failure_rate () =
  (* Across many queries, round failures must stay well under the 0.91
     bound of Lemma 3 (empirically they are much rarer). *)
  let rng = Rng.create 421 in
  let dots = random_dots rng 5_000 in
  let t2 = Dot_t2.build ~params:dot_params dots in
  for _ = 1 to 300 do
    let q = Rng.uniform rng in
    ignore (Dot_t2.query t2 q ~k:(1 + Rng.int rng 50))
  done;
  let run = Dot_t2.rounds_run t2 and failed = Dot_t2.rounds_failed t2 in
  Alcotest.(check bool) "ran rounds" true (run > 0);
  Alcotest.(check bool)
    (Printf.sprintf "failure rate %d/%d below bound" failed run)
    true
    (float_of_int failed /. float_of_int run < 0.91)

let test_theorem1_no_fallbacks_on_uniform () =
  let rng = Rng.create 423 in
  let dots = random_dots rng 4_000 in
  let t1 = Dot_t1.build ~params:dot_params dots in
  for _ = 1 to 100 do
    ignore (Dot_t1.query t1 (Rng.uniform rng) ~k:(1 + Rng.int rng 2000))
  done;
  (* Fallbacks are the whp-failure escape hatch; they should be rare. *)
  Alcotest.(check bool) "fallbacks rare" true (Dot_t1.fallbacks t1 <= 2)

let test_space_accounting_positive () =
  let rng = Rng.create 427 in
  let dots = random_dots rng 2_000 in
  let t1 = Dot_t1.build ~params:dot_params dots in
  let t2 = Dot_t2.build ~params:dot_params dots in
  Alcotest.(check bool) "t1 space" true (Dot_t1.space_words t1 >= 2_000);
  Alcotest.(check bool) "t2 space" true (Dot_t2.space_words t2 >= 2_000);
  let info = Dot_t2.info t2 in
  Alcotest.(check bool) "ladder sampled" true (info.Dot_t2.rungs >= 0)

let prop_dot_t2_agrees =
  QCheck.Test.make ~count:40 ~name:"theorem2 agrees on random dots"
    QCheck.(pair (int_bound 50_000) (int_bound 400))
    (fun (seed, raw_n) ->
      let n = max 3 raw_n in
      let rng = Rng.create seed in
      let dots = random_dots rng n in
      let oracle = Dot_oracle.build dots in
      let t2 = Dot_t2.build ~params:dot_params dots in
      List.for_all
        (fun _ ->
          let q = Rng.uniform rng in
          let k = 1 + Rng.int rng n in
          List.map (fun (d : Dot.t) -> d.Dot.uid) (Dot_oracle.top_k oracle q ~k)
          = List.map (fun (d : Dot.t) -> d.Dot.uid) (Dot_t2.query t2 q ~k))
        [ (); (); () ])

let () =
  Alcotest.run "topk_core"
    [
      ( "lemma1",
        [
          Alcotest.test_case "failure rate" `Slow test_lemma1_failure_rate;
          Alcotest.test_case "parameters" `Quick test_lemma1_parameters;
          Alcotest.test_case "rank_of" `Quick test_rank_of;
        ] );
      ( "lemma3",
        [ Alcotest.test_case "success rate" `Slow test_lemma3_success_rate ] );
      ( "core_set",
        [
          Alcotest.test_case "size bound" `Quick test_core_set_size_bound;
          Alcotest.test_case "degenerate" `Quick test_core_set_degenerate;
          Alcotest.test_case "rank capture" `Slow test_core_set_rank_capture;
        ] );
      ( "prefix_blocks",
        [
          Alcotest.test_case "covers exactly" `Quick
            test_prefix_blocks_cover_exactly;
          Alcotest.test_case "edges" `Quick test_prefix_blocks_edges;
        ] );
      ( "weight_order",
        [ Alcotest.test_case "order and top_k" `Quick test_weight_order ] );
      ( "reductions",
        [
          Alcotest.test_case "match oracle" `Slow
            test_dot_reductions_match_oracle;
          Alcotest.test_case "rj-counting matches oracle" `Quick
            test_counting_reduction_matches_oracle;
          Alcotest.test_case "synthesized max and theorem2" `Quick
            test_synth_max_and_t2;
          Alcotest.test_case "bentley-saxe generic" `Quick
            test_bentley_saxe_generic;
          Alcotest.test_case "adversarial params stay exact" `Quick
            test_adversarial_params_still_exact;
          Alcotest.test_case "theorem2 round failures" `Quick
            test_theorem2_round_failure_rate;
          Alcotest.test_case "theorem1 fallbacks rare" `Quick
            test_theorem1_no_fallbacks_on_uniform;
          Alcotest.test_case "space accounting" `Quick
            test_space_accounting_positive;
          QCheck_alcotest.to_alcotest prop_dot_t2_agrees;
        ] );
    ]
