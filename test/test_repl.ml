(* Tests for the replication subsystem: the seeded fault-injectable
   transport, the wire codec (shared with the durable WAL format), the
   retained outlog and go-back-N shipper, replica replay and snapshot
   install, staleness-bounded routing, group end-to-end convergence
   under loss, deterministic failover with term fencing — and the
   replication metrics' text exposition. *)

module Rng = Topk_util.Rng
module I = Topk_interval.Interval
module Inst = Topk_interval.Instances
module Log = Topk_ingest.Update_log
module Transport = Topk_repl.Transport
module Wire = Topk_repl.Wire
module Ship = Topk_repl.Log_ship
module Outlog = Topk_repl.Log_ship.Outlog
module Router = Topk_repl.Router
module Metrics = Topk_service.Metrics
module Consistency = Topk_service.Consistency
module Response = Topk_service.Response
module G = Topk_repl.Group.Make (Inst.Topk_t2)
module R = Topk_repl.Replica.Make (Inst.Topk_t2)

let iparams = Inst.params ()

let ids elems = List.sort compare (List.map (fun (e : I.t) -> e.I.id) elems)

(* The reference model: live intervals, newest wins. *)
module Model = struct
  type t = { mutable live : I.t list }

  let create () = { live = [] }

  let insert t (e : I.t) =
    t.live <- e :: List.filter (fun (x : I.t) -> x.I.id <> e.I.id) t.live

  let delete t (e : I.t) =
    t.live <- List.filter (fun (x : I.t) -> x.I.id <> e.I.id) t.live

  let top_k t q ~k =
    Topk_util.Select.top_k ~cmp:I.compare_weight k
      (List.filter (fun e -> I.contains e q) t.live)
end

let random_interval rng id =
  let lo = Rng.uniform rng in
  let hi = lo +. Rng.float rng (1.2 -. lo) in
  I.make ~id ~lo ~hi:(min 1.2 hi)
    ~weight:(float_of_int id +. Rng.float rng 0.3)
    ()

let base_elems rng n = Array.init n (fun i -> random_interval rng (i + 1))

(* ------------------------------------------------------------------ *)
(* Transport                                                           *)

let payload i = Bytes.of_string (Printf.sprintf "msg-%d" i)

let test_transport_clean () =
  let tr = Transport.create ~nodes:3 () in
  Transport.send tr ~src:0 ~dst:1 (payload 1);
  Transport.send tr ~src:0 ~dst:1 (payload 2);
  Transport.send tr ~src:2 ~dst:1 (payload 3);
  Alcotest.(check (list (pair int string)))
    "nothing before tick" []
    (List.map (fun (s, b) -> (s, Bytes.to_string b)) (Transport.recv tr ~dst:1));
  Transport.tick tr;
  Alcotest.(check (list (pair int string)))
    "in order, with sources"
    [ (0, "msg-1"); (0, "msg-2"); (2, "msg-3") ]
    (List.map (fun (s, b) -> (s, Bytes.to_string b)) (Transport.recv tr ~dst:1));
  Alcotest.(check bool) "idle after drain" true (Transport.idle tr);
  let st = Transport.stats tr ~src:0 ~dst:1 in
  Alcotest.(check int) "sent" 2 st.Transport.sent;
  Alcotest.(check int) "delivered" 2 st.Transport.delivered

let test_transport_faults_deterministic () =
  let run () =
    let plan =
      Transport.plan ~drop:0.3 ~dup:0.2 ~reorder:0.3 ~delay_max:3 ~seed:42 ()
    in
    let tr = Transport.create ~plan ~nodes:2 () in
    for i = 1 to 100 do
      Transport.send tr ~src:0 ~dst:1 (payload i)
    done;
    let got = ref [] in
    for _ = 1 to 20 do
      Transport.tick tr;
      List.iter
        (fun (_, b) -> got := Bytes.to_string b :: !got)
        (Transport.recv tr ~dst:1)
    done;
    let st = Transport.stats tr ~src:0 ~dst:1 in
    (List.rev !got, st.Transport.dropped, st.Transport.duplicated)
  in
  let g1, d1, u1 = run () in
  let g2, d2, u2 = run () in
  Alcotest.(check (list string)) "same schedule" g1 g2;
  Alcotest.(check int) "same drops" d1 d2;
  Alcotest.(check int) "same dups" u1 u2;
  Alcotest.(check bool) "some loss at p=0.3" true (d1 > 0);
  Alcotest.(check bool) "some delivery" true (List.length g1 > 0)

let test_transport_cut_latch () =
  let tr = Transport.create ~nodes:2 () in
  Transport.send tr ~src:0 ~dst:1 (payload 1);
  (* The cut discards the in-flight message and latches the link. *)
  Transport.cut tr ~src:0 ~dst:1;
  Transport.send tr ~src:0 ~dst:1 (payload 2);
  Transport.tick tr;
  Alcotest.(check int) "nothing delivered" 0
    (List.length (Transport.recv tr ~dst:1));
  Alcotest.(check int) "both dropped" 2
    (Transport.stats tr ~src:0 ~dst:1).Transport.dropped;
  Transport.heal tr ~src:0 ~dst:1;
  Transport.send tr ~src:0 ~dst:1 (payload 3);
  Transport.tick tr;
  Alcotest.(check int) "healed link delivers" 1
    (List.length (Transport.recv tr ~dst:1))

(* ------------------------------------------------------------------ *)
(* Wire                                                                *)

let entry seq id =
  { Log.seq; op = (if id >= 0 then Log.Insert id else Log.Delete (-id)) }

let check_roundtrip msg =
  match Wire.decode (Wire.encode msg) with
  | Error `Corrupt -> Alcotest.fail "decode failed"
  | Ok m -> Alcotest.(check string) "roundtrip"
      (Format.asprintf "%a" Wire.pp msg)
      (Format.asprintf "%a" Wire.pp m)

let test_wire_roundtrip () =
  check_roundtrip (Wire.Ship { term = 3; entry = entry 17 42 });
  check_roundtrip (Wire.Ack { term = 0; upto = 123456789 });
  let snap = Bytes.of_string "not-really-a-snapshot" in
  check_roundtrip
    (Wire.Install { term = 2; snap; tail = [ entry 5 1; entry 6 (-1) ] });
  (* Ship payloads are the WAL record codec verbatim. *)
  (match Wire.decode (Wire.encode (Wire.Ship { term = 1; entry = entry 9 7 }))
   with
  | Ok (Wire.Ship { entry = e; _ }) ->
      Alcotest.(check int) "seq survives" 9 e.Log.seq;
      (match e.Log.op with
      | Log.Insert 7 -> ()
      | _ -> Alcotest.fail "op mangled")
  | _ -> Alcotest.fail "ship roundtrip");
  (* Corruption is detected by the frame checksum. *)
  let b = Wire.encode (Wire.Ack { term = 1; upto = 7 }) in
  Bytes.set b (Bytes.length b - 1) '\xff';
  (match Wire.decode b with
  | Error `Corrupt -> ()
  | Ok _ -> Alcotest.fail "corrupt frame accepted");
  match Wire.decode (Bytes.of_string "short") with
  | Error `Corrupt -> ()
  | Ok _ -> Alcotest.fail "truncated buffer accepted"

(* ------------------------------------------------------------------ *)
(* Outlog + shipper                                                    *)

let test_outlog () =
  let o : int Outlog.t = Outlog.create ~retain:4 () in
  Alcotest.(check int) "empty last" 0 (Outlog.last o);
  Alcotest.(check int) "empty floor" 1 (Outlog.floor o);
  for s = 1 to 10 do
    Outlog.append o (entry s s)
  done;
  Alcotest.(check int) "last" 10 (Outlog.last o);
  Alcotest.(check int) "floor after GC" 7 (Outlog.floor o);
  Alcotest.(check bool) "GC'd entry gone" true (Outlog.get o 6 = None);
  (match Outlog.get o 7 with
  | Some e -> Alcotest.(check int) "retained entry" 7 e.Log.seq
  | None -> Alcotest.fail "retained entry missing");
  (try
     Outlog.append o (entry 13 13);
     Alcotest.fail "gap accepted"
   with Invalid_argument _ -> ());
  Outlog.reset_to o ~seq:20;
  Alcotest.(check int) "reset last" 20 (Outlog.last o);
  Alcotest.(check int) "reset floor" 21 (Outlog.floor o);
  Outlog.append o (entry 21 21);
  Alcotest.(check int) "resumes above reset" 21 (Outlog.last o)

let test_shipper_window_and_ack () =
  let o : int Outlog.t = Outlog.create () in
  for s = 1 to 20 do
    Outlog.append o (entry s s)
  done;
  let sh = Ship.attach ~window:4 ~rto:3 o in
  Ship.add_peer sh ~now:0 1;
  let sent = ref [] in
  let installs = ref 0 in
  let tick now =
    Ship.tick sh ~now
      ~ship:(fun ~peer:_ e -> sent := e.Log.seq :: !sent)
      ~install:(fun ~peer:_ -> incr installs)
  in
  tick 1;
  Alcotest.(check (list int)) "window of 4" [ 1; 2; 3; 4 ] (List.rev !sent);
  tick 2;
  Alcotest.(check (list int)) "window full, nothing more" [ 1; 2; 3; 4 ]
    (List.rev !sent);
  (* A cumulative ack opens the window. *)
  Alcotest.(check bool) "ack advances" true
    (Ship.handle_ack sh ~peer:1 ~upto:3 ~now:2);
  Alcotest.(check bool) "stale ack ignored" false
    (Ship.handle_ack sh ~peer:1 ~upto:2 ~now:2);
  sent := [];
  tick 3;
  Alcotest.(check (list int)) "slides to 5..7" [ 5; 6; 7 ] (List.rev !sent);
  (* No progress for rto ticks: go-back-N rewinds to acked+1. *)
  sent := [];
  tick 10;
  Alcotest.(check (list int)) "retransmit from 4" [ 4; 5; 6; 7 ]
    (List.rev !sent);
  Alcotest.(check int) "no install needed" 0 !installs;
  (* An ack past the cursor (a rejoined peer that already had
     everything) snaps the cursor forward. *)
  ignore (Ship.handle_ack sh ~peer:1 ~upto:20 ~now:10 : bool);
  sent := [];
  tick 11;
  Alcotest.(check (list int)) "nothing left to ship" [] (List.rev !sent);
  Alcotest.(check int) "covering acks" 1 (Ship.acks_covering sh 20)

let test_shipper_install_below_floor () =
  let o : int Outlog.t = Outlog.create ~retain:4 () in
  for s = 1 to 20 do
    Outlog.append o (entry s s)
  done;
  (* floor is 17: a fresh peer (cursor 1) cannot be served from
     history. *)
  let sh = Ship.attach ~window:4 ~rto:3 o in
  Ship.add_peer sh ~now:0 1;
  let installs = ref 0 and sent = ref [] in
  let tick now =
    Ship.tick sh ~now
      ~ship:(fun ~peer:_ e -> sent := e.Log.seq :: !sent)
      ~install:(fun ~peer -> incr installs;
                 Ship.mark_installing sh ~peer ~upto:20 ~now)
  in
  tick 1;
  Alcotest.(check int) "install requested" 1 !installs;
  Alcotest.(check (list int)) "no frames below floor" [] !sent;
  (* After the install the cursor is past the image; new appends
     ship normally. *)
  Outlog.append o (entry 21 21);
  tick 2;
  Alcotest.(check (list int)) "tail ships" [ 21 ] (List.rev !sent)

(* ------------------------------------------------------------------ *)
(* Router                                                              *)

let cand ?(alive = true) ?(primary = false) id applied =
  { Router.c_id = id; c_applied = applied; c_alive = alive;
    c_primary = primary }

let test_router () =
  let r = Router.create () in
  let cands =
    [ cand ~primary:true 0 100; cand 1 100; cand 2 90; cand 3 40 ]
  in
  (* Unconstrained: round-robin over all replicas. *)
  let picks = List.init 6 (fun _ -> Router.select r ~head:100 cands) in
  Alcotest.(check (list (option int)))
    "round-robin"
    [ Some 1; Some 2; Some 3; Some 1; Some 2; Some 3 ]
    picks;
  (* A staleness bound filters the laggard. *)
  let r = Router.create () in
  Alcotest.(check (option int)) "max_lag filters" (Some 1)
    (Router.select r ~head:100 ~consistency:(Consistency.Max_lag 15) cands);
  Alcotest.(check (option int)) "max_lag second" (Some 2)
    (Router.select r ~head:100 ~consistency:(Consistency.Max_lag 15) cands);
  (* A token no replica holds falls back to the primary. *)
  let r = Router.create () in
  Alcotest.(check (option int)) "primary fallback" (Some 0)
    (Router.select r ~head:100 ~consistency:(Consistency.At_least 95)
       [ cand ~primary:true 0 100; cand 2 90 ]);
  (* A token from the future answers nowhere. *)
  Alcotest.(check (option int)) "unsatisfiable token" None
    (Router.select r ~head:100 ~consistency:(Consistency.At_least 101)
       [ cand ~primary:true 0 100 ]);
  (* Dead nodes are skipped. *)
  Alcotest.(check (option int)) "dead skipped" (Some 2)
    (Router.select r ~head:100 [ cand ~alive:false 1 100; cand 2 90 ])

(* ------------------------------------------------------------------ *)
(* Group end to end                                                    *)

let group_workload ?(updates = 120) ?(seed = 7) g model =
  (* Drive a seeded insert/delete stream through the group, mirroring
     it in the caller's model; returns the synced-write count. *)
  let rng = Rng.create seed in
  let next_id = ref 1000 and synced = ref 0 in
  let live = ref [] in
  for _ = 1 to updates do
    let op =
      if Rng.uniform rng < 0.75 || !live = [] then begin
        let e = random_interval rng !next_id in
        incr next_id;
        live := e :: !live;
        `Ins e
      end
      else begin
        let e = List.nth !live (Rng.int rng (List.length !live)) in
        live := List.filter (fun (x : I.t) -> x.I.id <> e.I.id) !live;
        `Del e
      end
    in
    let outcome =
      match op with
      | `Ins e ->
          Model.insert model e;
          G.insert g e
      | `Del e ->
          Model.delete model e;
          G.delete g e
    in
    if G.synced outcome then incr synced
  done;
  !synced

let check_consistent g model =
  let want = ids model.Model.live in
  for i = 0 to G.nodes g - 1 do
    if G.alive g i then
      Alcotest.(check (list int))
        (Printf.sprintf "node %d equals oracle" i)
        want
        (ids (R.live (G.node g i)))
  done

let test_group_clean () =
  let rng = Rng.create 11 in
  let base = base_elems rng 24 in
  let g =
    G.create ~params:iparams ~buffer_cap:8 ~fanout:2 ~name:"g" ~replicas:2
      base
  in
  let model = Model.create () in
  Array.iter (Model.insert model) base;
  let synced = group_workload g model in
  Alcotest.(check int) "every write synced on a clean fabric" 120 synced;
  Alcotest.(check bool) "settles" true (G.settle g);
  check_consistent g model;
  (* A replica read carries the read-your-writes token. *)
  match G.read g 0.5 ~k:5 with
  | None -> Alcotest.fail "read refused"
  | Some r ->
      Alcotest.(check bool) "read on a replica" true (r.Response.worker <> 0);
      (match Response.seq_token r with
      | Some tok -> Alcotest.(check int) "token at head" (G.head g) tok
      | None -> Alcotest.fail "no seq token");
      Alcotest.(check (list int))
        "answers equal model top-k"
        (ids (Model.top_k model 0.5 ~k:5))
        (ids r.Response.answers)

let test_group_lossy_converges () =
  let rng = Rng.create 23 in
  let base = base_elems rng 24 in
  let plan =
    Transport.plan ~drop:0.15 ~dup:0.1 ~reorder:0.15 ~delay_max:2 ~seed:99 ()
  in
  let g =
    G.create ~params:iparams ~buffer_cap:8 ~fanout:2 ~plan ~quorum:1
      ~name:"lossy" ~replicas:3 base
  in
  let model = Model.create () in
  Array.iter (Model.insert model) base;
  ignore (group_workload ~updates:150 ~seed:31 g model : int);
  Alcotest.(check bool) "settles despite loss" true (G.settle g);
  check_consistent g model

let test_group_snapshot_install () =
  let rng = Rng.create 5 in
  let base = base_elems rng 16 in
  (* Tiny retention: a partitioned replica falls behind the floor and
     must be caught up by snapshot install after it rejoins. *)
  let g =
    G.create ~params:iparams ~buffer_cap:8 ~fanout:2 ~retain:16 ~quorum:1
      ~name:"inst" ~replicas:2 base
  in
  let model = Model.create () in
  Array.iter (Model.insert model) base;
  G.partition g 2;
  ignore (group_workload ~updates:80 ~seed:13 g model : int);
  G.rejoin g 2;
  Alcotest.(check bool) "settles" true (G.settle g);
  Alcotest.(check bool) "replica 2 was caught up by install" true
    (R.installs (G.node g 2) > 0);
  check_consistent g model

let test_group_failover () =
  let rng = Rng.create 17 in
  let base = base_elems rng 16 in
  let metrics = Metrics.create () in
  let g =
    G.create ~params:iparams ~buffer_cap:8 ~fanout:2 ~metrics ~quorum:1
      ~name:"fo" ~replicas:2 base
  in
  let model = Model.create () in
  Array.iter (Model.insert model) base;
  ignore (group_workload ~updates:60 ~seed:3 g model : int);
  let synced_head = G.head g in
  Alcotest.(check bool) "pre-failover settle" true (G.settle g);
  let old_primary = G.primary g in
  let p = G.fail_primary g in
  Alcotest.(check bool) "new primary differs" true (p <> old_primary);
  Alcotest.(check int) "term bumped" 1 (G.term g);
  (* Every synced write survives: the promoted head covers it. *)
  Alcotest.(check bool) "promoted head covers synced prefix" true
    (G.head g >= synced_head);
  (* Term fencing: a straggler Ship from the deposed primary is
     rejected by the replicas. *)
  let straggler =
    Wire.Ship { term = 0; entry = { Log.seq = G.head g + 1;
                                    op = Log.Insert (random_interval rng 9999) } }
  in
  Alcotest.(check (option int)) "stale term fenced" None
    (R.handle (G.node g p) straggler);
  (* The new timeline keeps going. *)
  let e = random_interval rng 5000 in
  Model.insert model e;
  let o = G.insert g e in
  Alcotest.(check bool) "post-failover write syncs" true (G.synced o);
  Alcotest.(check bool) "post-failover settle" true (G.settle g);
  check_consistent g model;
  (* Reads never route to the dead node. *)
  for _ = 1 to 8 do
    match G.read g 0.4 ~k:3 with
    | Some r ->
        Alcotest.(check bool) "dead node never answers" true
          (r.Response.worker <> old_primary)
    | None -> Alcotest.fail "read refused after failover"
  done;
  Alcotest.(check int) "failover counted" 1
    (Metrics.Counter.get metrics.Metrics.failovers)

(* ------------------------------------------------------------------ *)
(* Metrics exposition                                                  *)

let line_value report name =
  let prefix = name ^ " " in
  List.find_map
    (fun l ->
      if String.starts_with ~prefix l then
        Some
          (int_of_string
             (String.sub l (String.length prefix)
                (String.length l - String.length prefix)))
      else None)
    (String.split_on_char '\n' report)

let repl_lines =
  [ "topk_repl_frames_shipped"; "topk_repl_frames_acked";
    "topk_repl_frames_dropped"; "topk_repl_snapshot_installs";
    "topk_repl_failovers"; "topk_repl_replica_lag" ]

let test_metrics_exposition () =
  (* Fresh registry: every replication line present and zero. *)
  let fresh = Metrics.report (Metrics.create ()) in
  List.iter
    (fun name ->
      match line_value fresh name with
      | Some v -> Alcotest.(check int) (name ^ " at zero") 0 v
      | None -> Alcotest.fail (name ^ " missing from report"))
    repl_lines;
  (* After a lossy run with a partition-forced install and a failover,
     the counters have moved. *)
  let rng = Rng.create 29 in
  let base = base_elems rng 16 in
  let metrics = Metrics.create () in
  let plan = Transport.plan ~drop:0.1 ~seed:77 () in
  let g =
    G.create ~params:iparams ~buffer_cap:8 ~fanout:2 ~retain:16 ~plan
      ~metrics ~quorum:1 ~name:"m" ~replicas:2 base
  in
  G.partition g 2;
  ignore (group_workload ~updates:60 ~seed:41 g (Model.create ()) : int);
  G.rejoin g 2;
  Alcotest.(check bool) "settle" true (G.settle g);
  ignore (G.fail_primary g : int);
  Alcotest.(check bool) "post-failover settle" true (G.settle g);
  let report = Metrics.report metrics in
  let get name = Option.value ~default:(-1) (line_value report name) in
  Alcotest.(check bool) "frames shipped" true
    (get "topk_repl_frames_shipped" > 0);
  Alcotest.(check bool) "acks counted" true
    (get "topk_repl_frames_acked" > 0);
  Alcotest.(check bool) "drops counted" true
    (get "topk_repl_frames_dropped" > 0);
  Alcotest.(check bool) "install counted" true
    (get "topk_repl_snapshot_installs" > 0);
  Alcotest.(check int) "failover counted" 1 (get "topk_repl_failovers");
  Alcotest.(check int) "lag back to zero after settle" 0
    (get "topk_repl_replica_lag")

let () =
  Alcotest.run "topk_repl"
    [
      ( "transport",
        [
          Alcotest.test_case "clean delivery" `Quick test_transport_clean;
          Alcotest.test_case "seeded faults replay" `Quick
            test_transport_faults_deterministic;
          Alcotest.test_case "cut latch" `Quick test_transport_cut_latch;
        ] );
      ("wire", [ Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip ]);
      ( "shipping",
        [
          Alcotest.test_case "outlog" `Quick test_outlog;
          Alcotest.test_case "window + cumulative ack" `Quick
            test_shipper_window_and_ack;
          Alcotest.test_case "install below floor" `Quick
            test_shipper_install_below_floor;
        ] );
      ("router", [ Alcotest.test_case "selection" `Quick test_router ]);
      ( "group",
        [
          Alcotest.test_case "clean replication" `Quick test_group_clean;
          Alcotest.test_case "lossy convergence" `Quick
            test_group_lossy_converges;
          Alcotest.test_case "snapshot install" `Quick
            test_group_snapshot_install;
          Alcotest.test_case "failover" `Quick test_group_failover;
        ] );
      ( "metrics",
        [ Alcotest.test_case "exposition" `Quick test_metrics_exposition ] );
    ]
