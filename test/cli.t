Invalid argument combinations exit with status 2 and a one-line error
instead of an uncaught exception.

  $ topk interval -n 0
  topk: n must be positive (got 0)
  [2]

  $ topk interval -k 0
  topk: k must be positive (got 0)
  [2]

  $ topk dominance -n-5
  topk: n must be positive (got -5)
  [2]

  $ topk enclosure -k-3
  topk: k must be positive (got -3)
  [2]

  $ topk circular -r 0
  topk: r must be positive (got 0)
  [2]

  $ topk sample-check -n 10 -k 100
  topk: k must be <= n (got k=100, n=10)
  [2]

  $ topk sample-check --trials 0
  topk: trials must be positive (got 0)
  [2]

  $ topk serve-bench --workers 0
  topk: workers must be positive (got 0)
  [2]

  $ topk serve-bench --queries 0
  topk: queries must be positive (got 0)
  [2]

  $ topk chaos-bench --fault-rate 1.5
  topk: fault-rate must be in [0,1] (got 1.5)
  [2]

  $ topk chaos-bench --latency-rate=-0.1
  topk: latency-rate must be in [0,1] (got -0.1)
  [2]

  $ topk chaos-bench --latency-us=-1
  topk: latency-us must be >= 0 (got -1)
  [2]

  $ topk chaos-bench --max-retries=-2
  topk: max-retries must be >= 0 (got -2)
  [2]

  $ topk chaos-bench --queries 0
  topk: queries must be positive (got 0)
  [2]

  $ topk chaos-bench --workers 0
  topk: workers must be positive (got 0)
  [2]

  $ topk shard-bench --shards 0
  topk: shards must be positive (got 0)
  [2]

  $ topk shard-bench -n 100 --shards 200
  topk: shards must be <= n (got shards=200, n=100)
  [2]

A valid run exits 0.

  $ topk sample-check -n 64 -k 4 --delta 0.5 --trials 8 > /dev/null

The sharded scatter-gather path is deterministic for a fixed seed:
exactness, EM accounting and pruning are all asserted inside the
bench, which prints one stable summary line.

  $ topk shard-bench -n 8000 --queries 20 --shards 4 --workers 2 -k 100 --seed 7 | tail -n 1
  shard-bench: OK (20 queries exact; ios accounted; pruned=24; planner 2521 < visit-all 2530 I/Os)

Trace/certify validation.

  $ topk trace --queries 0
  topk: queries must be positive (got 0)
  [2]

  $ topk trace --dump=-1
  topk: dump must be >= 0 (got -1)
  [2]

  $ topk trace -n 100 --shards 200
  topk: shards must be <= n (got shards=200, n=100)
  [2]

The certifier passes on a small deterministic workload: every traced
query's measured I/O cost stays within the fitted bound for its
reduction (Theorem 1, Theorem 2, sharded scatter-gather).

  $ topk trace -n 2000 --queries 20 -k 50 --shards 3 --seed 7
  trace: n=2000 queries=20 k=50 shards=3 workers=2
  models: interval-t1(theorem1) interval-t2(theorem2) intervals(sharded)
  certified: 60 checked, 0 violations
  store: 109 traces recorded, 109 held, 100 spans on 40 direct traces
  trace: OK (0 violations)

Ingest-bench validation.

  $ topk ingest-bench --write-ratio 0
  topk: write-ratio must be in (0,1] (got 0)
  [2]

  $ topk ingest-bench --write-ratio 1.5
  topk: write-ratio must be in (0,1] (got 1.5)
  [2]

  $ topk ingest-bench --buffer-cap 0
  topk: buffer-cap must be positive (got 0)
  [2]

  $ topk ingest-bench --fanout 1
  topk: fanout must be >= 2 (got 1)
  [2]

  $ topk ingest-bench --updates 0
  topk: updates must be positive (got 0)
  [2]

The live path is deterministic for a fixed seed: every interleaved
answer is checked against a from-scratch oracle at its pinned epoch,
and the fitted Dynamic(Theorem 2) bound certifies every measured cost.

  $ topk ingest-bench -n 500 --updates 600 --queries 50 --buffer-cap 32 -k 5 --seed 7 | tail -n 1
  ingest-bench: OK (66 exact answers across 25 epochs under live compaction)

Crash-bench validation.

  $ topk crash-bench --updates 0
  topk: updates must be positive (got 0)
  [2]

  $ topk crash-bench --crashes 0
  topk: crashes must be positive (got 0)
  [2]

  $ topk crash-bench --checkpoint-every 0
  topk: checkpoint-every must be positive (got 0)
  [2]

  $ topk crash-bench --fanout 1
  topk: fanout must be >= 2 (got 1)
  [2]

  $ topk crash-bench --group 0
  topk: group must be positive (got 0)
  [2]

Crash recovery is deterministic for a fixed seed: every seeded crash
point is swept in both sync and group-commit modes, recovery must
restore an acknowledged-prefix oracle, and all four durability phases
(WAL append, seal, merge, manifest publish) must be covered.

  $ topk crash-bench -n 200 --updates 120 --crashes 12 --seed 7 | tail -n 1
  crash-bench: OK (27 crash points, 25 recoveries, 0 violations)

Repl-bench validation.

  $ topk repl-bench --updates 0
  topk: updates must be positive (got 0)
  [2]

  $ topk repl-bench --points 0
  topk: points must be positive (got 0)
  [2]

  $ topk repl-bench --replicas 1
  topk: replicas must be >= 2 (got 1)
  [2]

  $ topk repl-bench --quorum 5
  topk: quorum must be in [1, replicas] (got 5)
  [2]

  $ topk repl-bench --retain 0
  topk: retain must be positive (got 0)
  [2]

Replication is deterministic for a fixed seed: every seeded fault
point (lossy shipping, lost acks, partition-forced snapshot installs,
injected primary failures) must reconverge, every replica answer must
match a from-scratch oracle at its applied sequence, and no
quorum-acked write may be lost across failover.

  $ topk repl-bench -n 200 --updates 90 --points 24 --retain 24 --seed 7 | tail -n 1
  repl-bench: OK (24 fault points, 24 recoveries, 24 installs, 6 failovers, 0 violations)

Cache-bench validation.

  $ topk cache-bench --distinct 0
  topk: distinct must be positive (got 0)
  [2]

  $ topk cache-bench --write-every 0
  topk: write-every must be positive (got 0)
  [2]

  $ topk cache-bench --theta 0
  topk: theta must be positive (got 0)
  [2]

  $ topk cache-bench --replicas 1
  topk: replicas must be >= 2 (got 1)
  [2]

  $ topk cache-bench --min-hit-rate 1.5
  topk: min-hit-rate must be in [0, 1] (got 1.5)
  [2]

The cached and uncached replays of one seeded schedule must agree with
the from-scratch oracle at every answer's seq token, hits must charge
zero I/O, and the Zipf-skewed run must clear the hit-rate and
I/O-reduction gates.

  $ topk cache-bench -n 150 --queries 600 --seed 7 | tail -n 1
  cache-bench: OK (hit rate 0.653, read I/O 1565 -> 542, -65.4%, 0 violations)

Sched-bench validation.

  $ topk sched-bench --rounds 0
  topk: rounds must be positive (got 0)
  [2]

  $ topk sched-bench --queries-per-round 0
  topk: queries-per-round must be positive (got 0)
  [2]

  $ topk sched-bench --storm-ms 0
  topk: storm-ms must be positive (got 0)
  [2]

  $ topk sched-bench --theta 0
  topk: theta must be positive (got 0)
  [2]

  $ topk sched-bench --fanout 1
  topk: fanout must be >= 2 (got 1)
  [2]

A seeded run on the isolated scheduler must keep every racing query
oracle-exact, run every maintenance heartbeat within the aging bound,
and charge per-lane I/O that sums exactly to the pool's EM aggregate.

  $ topk sched-bench -n 600 --rounds 12 --queries-per-round 8 --updates-per-round 96 --seed 7 --only lanes | tail -n 1
  sched-bench: OK (96/96 exact, 12/12 maintenance on time, lane I/O exact)

The single-queue baseline replays the identical seeded schedule and
must pass the same exactness and accounting gates.

  $ topk sched-bench -n 600 --rounds 12 --queries-per-round 8 --updates-per-round 96 --seed 7 --only unified | tail -n 1
  sched-bench: OK (96/96 exact, 12/12 maintenance on time, lane I/O exact)
