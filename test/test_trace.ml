(* Tests for the tracing + cost-certification layer (lib/trace).

   Covers the span recorder (tree shape, attrs, cost deltas, exception
   unwinding, the ring-buffer store, JSON export) and the certifier
   (normalizer shapes, fitting, the model registry, and the end-to-end
   contract: >= 1000 certified queries across Theorem 1, Theorem 2 and
   the sharded planner with zero violations, while a deliberately
   mis-charged test double IS flagged). *)

module Tr = Topk_trace.Trace
module Certify = Topk_trace.Certify
module Stats = Topk_em.Stats
module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module Interval = Topk_interval.Interval
module IInst = Topk_interval.Instances
module IP = Topk_interval.Problem
module Svc = Topk_service

(* Every test leaves tracing disabled and the store empty so tests do
   not leak state into each other (the store is process-global). *)
let with_tracing f =
  Tr.Store.set_capacity 512;
  Tr.enable ();
  Fun.protect
    ~finally:(fun () ->
      Tr.disable ();
      Tr.Store.clear ())
    f

let get_trace = function
  | Some (tr : Tr.t) -> tr
  | None -> Alcotest.fail "expected a recorded trace, got None"

(* --- recording --- *)

let test_disabled () =
  Tr.disable ();
  let before = Tr.Store.total () in
  let x, tr = Tr.with_root "off" (fun () -> 41 + 1) in
  Alcotest.(check int) "result passes through" 42 x;
  Alcotest.(check bool) "no trace when disabled" true (tr = None);
  Alcotest.(check int) "nothing stored" before (Tr.Store.total ());
  Alcotest.(check int) "with_span passthrough" 7
    (Tr.with_span "child" (fun () -> 7));
  (* no-ops, must not raise *)
  Tr.add_attr "x" (Tr.Int 1);
  Tr.event "e";
  Alcotest.(check bool) "no current trace" true (Tr.current_trace_id () = None)

let test_span_tree () =
  with_tracing (fun () ->
      let x, tr =
        Tr.with_root "root"
          ~attrs:[ ("instance", Tr.Str "t"); ("k", Tr.Int 5) ]
          (fun () ->
            let a =
              Tr.with_span "phase-a" (fun () ->
                  Tr.add_attr "rounds" (Tr.Int 3);
                  Tr.with_span "inner" (fun () -> 10))
            in
            Tr.event "pruned" ~attrs:[ ("shard", Tr.Int 2) ];
            a + Tr.with_span "phase-b" (fun () -> 1))
      in
      let tr = get_trace tr in
      Alcotest.(check int) "result" 11 x;
      Alcotest.(check string) "root name" "root" tr.Tr.root.Tr.name;
      Alcotest.(check int) "span count" 5 (Tr.span_count tr);
      Alcotest.(check (list string))
        "children in recording order"
        [ "phase-a"; "pruned"; "phase-b" ]
        (List.map (fun (s : Tr.span) -> s.Tr.name) tr.Tr.root.Tr.children);
      (match Tr.find_spans tr "inner" with
      | [ s ] ->
          Alcotest.(check bool) "inner closed" true (Float.is_finite s.Tr.t_end);
          Alcotest.(check bool) "duration >= 0" true (Tr.duration_us s >= 0.)
      | l -> Alcotest.failf "expected 1 'inner' span, got %d" (List.length l));
      (match Tr.find_spans tr "phase-a" with
      | [ s ] ->
          Alcotest.(check (option int)) "attr" (Some 3) (Tr.attr_int s "rounds")
      | _ -> Alcotest.fail "phase-a missing");
      (match Tr.find_spans tr "pruned" with
      | [ s ] ->
          Alcotest.(check (float 1e-9)) "event has zero duration" 0.
            (Tr.duration_us s);
          Alcotest.(check (option int)) "event attr" (Some 2)
            (Tr.attr_int s "shard")
      | _ -> Alcotest.fail "event missing");
      Alcotest.(check (option string))
        "root attr" (Some "t")
        (Tr.attr_str tr.Tr.root "instance");
      Alcotest.(check int) "stored once" 1 (Tr.Store.total ());
      Alcotest.(check bool) "find by id" true (Tr.Store.find tr.Tr.id <> None))

let test_add_attr_replaces () =
  with_tracing (fun () ->
      let (), tr =
        Tr.with_root "r" (fun () ->
            Tr.add_attr "x" (Tr.Int 1);
            Tr.add_attr "x" (Tr.Int 2))
      in
      let tr = get_trace tr in
      Alcotest.(check (option int)) "last write wins" (Some 2)
        (Tr.attr_int tr.Tr.root "x");
      Alcotest.(check int) "one attr entry" 1
        (List.length tr.Tr.root.Tr.attrs))

let test_cost_delta () =
  with_tracing (fun () ->
      let (), tr =
        Tr.with_root "r" (fun () ->
            Stats.charge_ios 3;
            Tr.with_span "child" (fun () -> Stats.charge_ios 7))
      in
      let tr = get_trace tr in
      (match Tr.find_spans tr "child" with
      | [ s ] ->
          Alcotest.(check int) "child sees only its own I/Os" 7
            s.Tr.cost.Stats.ios
      | _ -> Alcotest.fail "child missing");
      Alcotest.(check int) "root sees both" 10 tr.Tr.root.Tr.cost.Stats.ios)

let test_unwinding () =
  with_tracing (fun () ->
      let raised =
        try
          ignore
            (Tr.with_root "boom" (fun () ->
                 Tr.with_span "inner" (fun () -> failwith "kaboom")));
          false
        with Failure msg -> msg = "kaboom"
      in
      Alcotest.(check bool) "exception propagates" true raised;
      (* The trace must still be completed and published. *)
      match Tr.Store.recent ~limit:1 () with
      | [ tr ] ->
          Alcotest.(check string) "root name" "boom" tr.Tr.root.Tr.name;
          Alcotest.(check bool) "root closed" true
            (Float.is_finite tr.Tr.root.Tr.t_end);
          (match Tr.find_spans tr "inner" with
          | [ s ] ->
              Alcotest.(check bool) "inner closed despite raise" true
                (Float.is_finite s.Tr.t_end)
          | _ -> Alcotest.fail "inner missing")
      | _ -> Alcotest.fail "trace not stored after raise")

let test_parent_link () =
  with_tracing (fun () ->
      let seen = ref None in
      let (), tr =
        Tr.with_root ~parent:42 "leg" (fun () ->
            seen := Tr.current_trace_id ())
      in
      let tr = get_trace tr in
      Alcotest.(check (option int)) "parent recorded" (Some 42) tr.Tr.parent;
      Alcotest.(check (option int))
        "current_trace_id inside root" (Some tr.Tr.id) !seen;
      Alcotest.(check bool) "closed after" true
        (Tr.current_trace_id () = None))

let test_nested_root_degrades () =
  with_tracing (fun () ->
      let inner_tr = ref None in
      let (), tr =
        Tr.with_root "outer" (fun () ->
            let (), t = Tr.with_root "would-be-root" (fun () -> ()) in
            inner_tr := Some t)
      in
      let tr = get_trace tr in
      Alcotest.(check bool) "inner root returns None" true
        (!inner_tr = Some None);
      Alcotest.(check int) "degraded to child span" 2 (Tr.span_count tr);
      Alcotest.(check int) "only one trace stored" 1 (Tr.Store.total ()))

(* --- store --- *)

let test_store_ring () =
  with_tracing (fun () ->
      Tr.Store.set_capacity 3;
      for i = 1 to 5 do
        ignore (Tr.with_root "t" ~attrs:[ ("i", Tr.Int i) ] (fun () -> ()))
      done;
      Alcotest.(check int) "ring holds capacity" 3 (Tr.Store.length ());
      Alcotest.(check int) "total counts evictions" 5 (Tr.Store.total ());
      let order =
        Tr.Store.recent ()
        |> List.map (fun (t : Tr.t) ->
               Option.get (Tr.attr_int t.Tr.root "i"))
      in
      Alcotest.(check (list int)) "most recent first" [ 5; 4; 3 ] order;
      let newest = List.hd (Tr.Store.recent ~limit:1 ()) in
      Alcotest.(check bool) "find held" true
        (Tr.Store.find newest.Tr.id <> None);
      Tr.Store.clear ();
      Alcotest.(check int) "clear empties" 0 (Tr.Store.length ());
      Alcotest.check_raises "capacity must be positive"
        (Invalid_argument "Trace.Store.set_capacity: capacity must be positive")
        (fun () -> Tr.Store.set_capacity 0))

(* A tiny structural JSON validator: enough to catch unbalanced
   brackets, bare non-finite floats and unescaped quotes without
   pulling in a JSON dependency. *)
let json_well_formed s =
  let depth = ref 0 and in_str = ref false and esc = ref false and ok = ref true in
  String.iter
    (fun ch ->
      if !esc then esc := false
      else if !in_str then (
        if ch = '\\' then esc := true else if ch = '"' then in_str := false)
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | 'n' | 'i' ->
            (* bare nan/inf outside a string is invalid JSON; "null" is
               the only bare token starting with n we emit *)
            ()
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

let test_json () =
  with_tracing (fun () ->
      let (), tr =
        Tr.with_root "q\"uote"
          ~attrs:
            [
              ("f", Tr.Float 1.5);
              ("nan", Tr.Float Float.nan);
              ("inf", Tr.Float Float.infinity);
              ("s", Tr.Str "a\"b\\c");
              ("b", Tr.Bool true);
            ]
          (fun () -> Tr.with_span "child" (fun () -> Stats.charge_ios 2))
      in
      let tr = get_trace tr in
      let js = Tr.to_json tr in
      Alcotest.(check bool) "single line" false (String.contains js '\n');
      Alcotest.(check bool) "structurally valid" true (json_well_formed js);
      let has sub =
        let n = String.length sub and m = String.length js in
        let rec go i = i + n <= m && (String.sub js i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "nan quoted" true (has "\"nan\"");
      Alcotest.(check bool) "inf quoted" true (has "\"inf\"");
      Alcotest.(check bool) "bool literal" true (has "true");
      Alcotest.(check bool) "child present" true (has "\"child\"");
      (* export: one JSON object per line, each well-formed *)
      ignore (Tr.with_root "second" (fun () -> ()));
      let lines =
        Tr.Store.export ()
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "one line per trace" 2 (List.length lines);
      List.iter
        (fun l ->
          Alcotest.(check bool) "line valid" true (json_well_formed l))
        lines)

(* --- certifier: shapes and fitting --- *)

let mk_model ?(theorem = Certify.T1) ?(shards = 1) ?(c = 1.0) ?(margin = 2.0)
    () =
  {
    Certify.instance = "m";
    theorem;
    n = 1000;
    b = 64;
    shards;
    q_pri = 3.;
    q_max = 2.;
    c;
    margin;
  }

let test_normalizer_shapes () =
  let fcheck = Alcotest.(check (float 1e-9)) in
  let out k = (float_of_int k /. 64.) +. 1. in
  let m1 = mk_model ~theorem:Certify.T1 () in
  fcheck "T1 = q_pri + k/B + 1" (3. +. out 128)
    (Certify.normalizer m1 ~k:128 ~visited:99);
  let m2 = mk_model ~theorem:Certify.T2 () in
  fcheck "T2 adds q_max" (3. +. 2. +. out 128)
    (Certify.normalizer m2 ~k:128 ~visited:0);
  let ms = mk_model ~theorem:Certify.Sharded ~shards:4 () in
  fcheck "sharded, 2 visited"
    ((4. *. 2.) +. (2. *. (3. +. 2. +. out 64)) +. out 64)
    (Certify.normalizer ms ~k:64 ~visited:2);
  fcheck "sharded clamps visited to >= 1"
    ((4. *. 2.) +. (1. *. (3. +. 2. +. out 64)) +. out 64)
    (Certify.normalizer ms ~k:64 ~visited:0);
  let mo = mk_model ~theorem:(Certify.Other "scan") () in
  fcheck "other = output term only" (out 640)
    (Certify.normalizer mo ~k:640 ~visited:1);
  Alcotest.(check string) "theorem names" "theorem1/theorem2/sharded/scan"
    (String.concat "/"
       (List.map Certify.theorem_name
          [ Certify.T1; Certify.T2; Certify.Sharded; Certify.Other "scan" ]))

let test_fit_and_check () =
  let m =
    Certify.fit ~instance:"fitme" ~theorem:Certify.T1 ~n:1000 ~q_pri:3.
      ~q_max:0.
      [ (64, None, 8); (64, None, 16); (640, None, 22) ]
  in
  (* norms: k=64 -> 3 + 2 = 5; k=640 -> 3 + 11 = 14.
     ratios: 1.6, 3.2, 22/14 ~ 1.571 -> c = 3.2. *)
  Alcotest.(check (float 1e-9)) "c is max ratio" 3.2 m.Certify.c;
  Alcotest.(check (float 1e-9)) "bound = c*margin*norm" (3.2 *. 2.0 *. 5.)
    (Certify.bound m ~k:64 ~visited:1);
  let v_ok = Certify.check m ~k:64 ~measured:32 () in
  Alcotest.(check bool) "at the bound is ok" true v_ok.Certify.v_ok;
  let v_bad = Certify.check m ~k:64 ~measured:33 () in
  Alcotest.(check bool) "one past the bound is flagged" false
    v_bad.Certify.v_ok;
  Alcotest.check_raises "empty samples"
    (Invalid_argument "Certify.fit: empty sample list") (fun () ->
      ignore
        (Certify.fit ~instance:"x" ~theorem:Certify.T1 ~n:10 ~q_pri:1.
           ~q_max:1. []));
  Alcotest.check_raises "margin < 1"
    (Invalid_argument "Certify.fit: margin must be >= 1") (fun () ->
      ignore
        (Certify.fit ~instance:"x" ~theorem:Certify.T1 ~n:10 ~margin:0.5
           ~q_pri:1. ~q_max:1.
           [ (1, None, 1) ]))

let test_registry_and_counters () =
  Certify.clear_models ();
  Certify.reset_counters ();
  Alcotest.(check bool) "evaluate without model" true
    (Certify.evaluate ~instance:"ghost" ~k:1 ~measured:1 () = None);
  Alcotest.(check int) "no model, nothing checked" 0 (Certify.checked ());
  let m = { (mk_model ~c:2.0 ()) with Certify.instance = "reg" } in
  Certify.register m;
  Alcotest.(check bool) "lookup" true (Certify.lookup "reg" = Some m);
  Alcotest.(check int) "models lists it" 1 (List.length (Certify.models ()));
  (match Certify.evaluate ~instance:"reg" ~k:64 ~measured:10 () with
  | Some v -> Alcotest.(check bool) "within bound" true v.Certify.v_ok
  | None -> Alcotest.fail "model registered but evaluate returned None");
  (match Certify.evaluate ~instance:"reg" ~k:64 ~measured:1_000_000 () with
  | Some v -> Alcotest.(check bool) "violation verdict" false v.Certify.v_ok
  | None -> Alcotest.fail "evaluate returned None");
  Alcotest.(check int) "checked counts both" 2 (Certify.checked ());
  Alcotest.(check int) "one violation" 1 (Certify.violations ());
  Certify.reset_counters ();
  Alcotest.(check int) "reset" 0 (Certify.checked ());
  Certify.clear_models ();
  Alcotest.(check int) "clear_models" 0 (List.length (Certify.models ()))

let test_certify_trace_requires_attrs () =
  Certify.clear_models ();
  Certify.register { (mk_model ()) with Certify.instance = "attrs" };
  with_tracing (fun () ->
      let (), t1 = Tr.with_root "no-attrs" (fun () -> ()) in
      Alcotest.(check bool) "no instance/k attrs -> None" true
        (Certify.certify_trace (get_trace t1) = None);
      let (), t2 =
        Tr.with_root "half" ~attrs:[ ("instance", Tr.Str "attrs") ]
          (fun () -> ())
      in
      Alcotest.(check bool) "missing k -> None" true
        (Certify.certify_trace (get_trace t2) = None);
      let (), t3 =
        Tr.with_root "full"
          ~attrs:[ ("instance", Tr.Str "nomodel"); ("k", Tr.Int 3) ]
          (fun () -> ())
      in
      Alcotest.(check bool) "no registered model -> None" true
        (Certify.certify_trace (get_trace t3) = None));
  Certify.clear_models ()

(* --- certifier: end-to-end contract --- *)

(* Fit the cost models exactly the way `topk trace` does: a small
   calibration workload with tracing off, c = max measured/normalizer. *)
let logb x =
  let b = float_of_int (Topk_em.Config.current ()).Topk_em.Config.b in
  Float.max 1. (log (Float.max 2. x) /. log (Float.max 2. b))

let fit_direct ~instance ~theorem ~n ~ks cal query =
  let samples =
    List.concat_map
      (fun kc ->
        Array.to_list cal
        |> List.map (fun q ->
               let (_ : int), c =
                 Stats.measure (fun () -> List.length (query q kc))
               in
               (kc, None, c.Stats.ios)))
      ks
  in
  Certify.register
    (Certify.fit ~instance ~theorem ~n ~q_pri:(logb (float_of_int n))
       ~q_max:(logb (float_of_int n))
       samples)

module ISS = Topk_shard.Shard_set.Make (IInst.Topk_t2) (Topk_interval.Slab_max)
module IScatter = Topk_shard.Scatter.Make (ISS) (IInst.Topk_t2)

(* >= 1000 certified queries across all three theorem shapes, zero
   violations — the acceptance bar for the certification layer. *)
let test_certified_workload () =
  Certify.clear_models ();
  Certify.reset_counters ();
  let n = 4000 and k = 32 and shards = 3 and nq = 340 in
  let rng = Rng.create 91_001 in
  let elems =
    Interval.of_spans rng (Gen.intervals rng ~shape:Gen.Mixed_intervals ~n)
  in
  let params = IInst.params () in
  let t1 = IInst.Topk_t1.build ~params elems in
  let t2 = IInst.Topk_t2.build ~params elems in
  let set =
    ISS.of_elems ~params
      ~strategy:(Topk_shard.Partitioner.Range IP.weight)
      ~shards elems
  in
  let pool = Svc.Executor.create ~workers:2 () in
  let registry = Svc.Registry.create () in
  let sc = IScatter.create pool registry ~name:"itv-cert" set in
  Fun.protect ~finally:(fun () -> Svc.Executor.shutdown pool) @@ fun () ->
  let cal = Gen.stab_queries rng ~n:24 in
  let ks = List.sort_uniq Int.compare [ 1; k / 2; k ] in
  fit_direct ~instance:"t1-cert" ~theorem:Certify.T1 ~n ~ks cal (fun q kc ->
      IInst.Topk_t1.query t1 q ~k:kc);
  fit_direct ~instance:"t2-cert" ~theorem:Certify.T2 ~n ~ks cal (fun q kc ->
      IInst.Topk_t2.query t2 q ~k:kc);
  let n_shard = (n + shards - 1) / shards in
  let shard_samples =
    List.concat_map
      (fun kc ->
        Array.to_list cal
        |> List.map (fun q ->
               let r = IScatter.query sc q ~k:kc in
               (kc, Some r.IScatter.fanout, r.IScatter.cost.Stats.ios)))
      ks
  in
  Certify.register
    (Certify.fit ~instance:"itv-cert" ~theorem:Certify.Sharded ~n:n_shard
       ~shards ~margin:3.0
       ~q_pri:(logb (float_of_int n_shard))
       ~q_max:(logb (float_of_int n_shard))
       shard_samples);
  (* Production phase: tracing on, every query certified.  Mix k values
     so the check exercises the k/B output term, not just one point. *)
  with_tracing (fun () ->
      let queries = Gen.stab_queries rng ~n:nq in
      let kprod = [| 1; k / 4; k / 2; k |] in
      Array.iteri
        (fun i q ->
          let kq = kprod.(i mod Array.length kprod) in
          let certify_direct instance query =
            let (_ : int), tr =
              Tr.with_root "test.query"
                ~attrs:[ ("instance", Tr.Str instance); ("k", Tr.Int kq) ]
                (fun () -> List.length (query q ~k:kq))
            in
            match Certify.certify_trace (get_trace tr) with
            | Some _ -> ()
            | None -> Alcotest.failf "%s: certify_trace returned None" instance
          in
          certify_direct "t1-cert" (IInst.Topk_t1.query t1);
          certify_direct "t2-cert" (IInst.Topk_t2.query t2);
          let r = IScatter.query sc q ~k:kq in
          match
            Certify.evaluate ~instance:"itv-cert" ~k:kq
              ~visited:r.IScatter.fanout ~measured:r.IScatter.cost.Stats.ios
              ()
          with
          | Some _ -> ()
          | None -> Alcotest.fail "sharded model missing")
        queries;
      Alcotest.(check bool)
        (Printf.sprintf ">= 1000 certified queries (got %d)"
           (Certify.checked ()))
        true
        (Certify.checked () >= 1000);
      Alcotest.(check int)
        (Printf.sprintf "zero violations over %d checks" (Certify.checked ()))
        0 (Certify.violations ()));
  Certify.clear_models ()

(* A structure that lies about its cost: it answers correctly but
   charges far more I/Os than the theorem allows (e.g. a buggy
   implementation scanning a whole slab per ladder round).  The
   certifier must flag it — this is the detection path that makes the
   certificates worth anything. *)
let test_mischarged_double_flagged () =
  Certify.clear_models ();
  Certify.reset_counters ();
  let n = 2000 and k = 16 in
  let rng = Rng.create 91_002 in
  let elems =
    Interval.of_spans rng (Gen.intervals rng ~shape:Gen.Mixed_intervals ~n)
  in
  let t1 = IInst.Topk_t1.build ~params:(IInst.params ()) elems in
  let cal = Gen.stab_queries rng ~n:16 in
  (* Fit the model on the honest structure... *)
  fit_direct ~instance:"double" ~theorem:Certify.T1 ~n ~ks:[ 1; k ] cal
    (fun q kc -> IInst.Topk_t1.query t1 q ~k:kc);
  let m = Option.get (Certify.lookup "double") in
  (* ...then serve queries through a double that over-charges by well
     more than the fitted margin. *)
  let overhead =
    2 + int_of_float (Certify.bound m ~k ~visited:1)
  in
  let dishonest q ~k =
    let r = IInst.Topk_t1.query t1 q ~k in
    Stats.charge_ios overhead;
    r
  in
  with_tracing (fun () ->
      let q = cal.(0) in
      let (_ : int), tr =
        Tr.with_root "double.query"
          ~attrs:[ ("instance", Tr.Str "double"); ("k", Tr.Int k) ]
          (fun () -> List.length (dishonest q ~k))
      in
      match Certify.certify_trace (get_trace tr) with
      | None -> Alcotest.fail "no verdict for the double"
      | Some v ->
          Alcotest.(check bool) "mis-charged double is flagged" false
            v.Certify.v_ok;
          Alcotest.(check bool) "measured exceeds bound" true
            (float_of_int v.Certify.v_measured > v.Certify.v_bound);
          Alcotest.(check int) "violation counted" 1 (Certify.violations ());
          (* the honest structure under the same model still passes *)
          let (_ : int), tr2 =
            Tr.with_root "honest.query"
              ~attrs:[ ("instance", Tr.Str "double"); ("k", Tr.Int k) ]
              (fun () -> List.length (IInst.Topk_t1.query t1 q ~k))
          in
          (match Certify.certify_trace (get_trace tr2) with
          | Some v2 ->
              Alcotest.(check bool) "honest query passes" true v2.Certify.v_ok
          | None -> Alcotest.fail "no verdict for honest query");
          Alcotest.(check int) "still exactly one violation" 1
            (Certify.violations ()));
  Certify.clear_models ();
  Certify.reset_counters ()

let () =
  Alcotest.run "trace"
    [
      ( "recording",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled;
          Alcotest.test_case "span tree shape + attrs" `Quick test_span_tree;
          Alcotest.test_case "add_attr replaces" `Quick test_add_attr_replaces;
          Alcotest.test_case "cost deltas nest" `Quick test_cost_delta;
          Alcotest.test_case "unwinds on exceptions" `Quick test_unwinding;
          Alcotest.test_case "parent link + current id" `Quick
            test_parent_link;
          Alcotest.test_case "nested root degrades to span" `Quick
            test_nested_root_degrades;
        ] );
      ( "store",
        [
          Alcotest.test_case "ring buffer semantics" `Quick test_store_ring;
          Alcotest.test_case "JSON export" `Quick test_json;
        ] );
      ( "certify",
        [
          Alcotest.test_case "normalizer shapes" `Quick test_normalizer_shapes;
          Alcotest.test_case "fit + check" `Quick test_fit_and_check;
          Alcotest.test_case "registry + counters" `Quick
            test_registry_and_counters;
          Alcotest.test_case "certify_trace needs attrs + model" `Quick
            test_certify_trace_requires_attrs;
          Alcotest.test_case "1000+ queries certified, 0 violations" `Slow
            test_certified_workload;
          Alcotest.test_case "mis-charged double flagged" `Quick
            test_mischarged_double_flagged;
        ] );
    ]
