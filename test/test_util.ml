(* Tests for the utility layer: RNG, heaps, selection, search, and the
   workload generators every experiment relies on. *)

module Rng = Topk_util.Rng
module Heap = Topk_util.Heap
module Select = Topk_util.Select
module Search = Topk_util.Search
module Gen = Topk_util.Gen

(* --- Rng --- *)

(* Seed-compat law for the deduplicated splitmix64: {!Rng.Raw} and
   {!Rng.mix64} must reproduce, bit for bit, the private copies they
   replaced in lib/em/fault.ml, lib/durable/disk.ml and
   lib/shard/partitioner.ml — otherwise every historical seeded fault,
   crash and shard schedule silently changes.  The reference below is a
   verbatim transcription of the retired copies. *)

let reference_next st =
  let open Int64 in
  st := add !st 0x9E3779B97F4A7C15L;
  let z = !st in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let test_raw_seed_compat () =
  List.iter
    (fun seed ->
      (* The Fault-layer per-domain stream seed shape… *)
      let fault_seed = Int64.of_int (seed lxor (1 * 0x9E3779B9)) in
      (* …and the Disk-layer global stream seed shape. *)
      let disk_seed = Int64.of_int (seed lxor 0x6b7a) in
      List.iter
        (fun s ->
          let st = ref s in
          let raw = Rng.Raw.create s in
          for i = 1 to 200 do
            let want = reference_next st in
            Alcotest.(check int64)
              (Printf.sprintf "raw stream (seed %Ld, draw %d)" s i)
              want (Rng.Raw.next raw)
          done;
          (* The two derived draws, from identical stream positions. *)
          let st = ref s and raw = Rng.Raw.create s in
          for _ = 1 to 50 do
            let w = reference_next st in
            Alcotest.(check (float 0.))
              "uniform"
              (Int64.to_float (Int64.shift_right_logical w 11)
              /. 9007199254740992.)
              (Rng.Raw.uniform raw);
            let w = reference_next st in
            Alcotest.(check int) "below_incl"
              (Int64.to_int
                 (Int64.rem (Int64.shift_right_logical w 1) 17L))
              (Rng.Raw.below_incl raw 16)
          done)
        [ fault_seed; disk_seed ])
    [ 0; 42; 7; 123456789; -3 ];
  (* The Partitioner finalizer: mix64 x = mix (x + golden) = the first
     draw of a raw stream started at x. *)
  List.iter
    (fun x ->
      Alcotest.(check int64)
        (Printf.sprintf "mix64 %Ld" x)
        (reference_next (ref x))
        (Rng.mix64 x))
    [ 0L; 1L; -1L; 42L; 0x123456789ABCDEFL ]

let test_raw_reseed () =
  let a = Rng.Raw.create 99L in
  ignore (Rng.Raw.next a : int64);
  ignore (Rng.Raw.next a : int64);
  Rng.Raw.reseed a 99L;
  let b = Rng.Raw.create 99L in
  for _ = 1 to 20 do
    Alcotest.(check int64) "reseed restarts" (Rng.Raw.next b) (Rng.Raw.next a)
  done

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done;
  let c = Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 (Rng.copy c) <> Rng.bits64 (Rng.copy a) then differs := true;
    ignore (Rng.bits64 a);
    ignore (Rng.bits64 c)
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  (* The split stream must not replay the parent's. *)
  let xa = Array.init 20 (fun _ -> Rng.bits64 a) in
  let xb = Array.init 20 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "streams differ" true (xa <> xb)

let test_rng_int_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let bound = 1 + Rng.int rng 100 in
    let v = Rng.int rng bound in
    if v < 0 || v >= bound then Alcotest.fail "out of bounds"
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be > 0")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_roughly_uniform () =
  let rng = Rng.create 13 in
  let counts = Array.make 10 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let v = Rng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = trials / 10 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket %d skewed: %d" i c)
    counts

let test_rng_bernoulli () =
  let rng = Rng.create 17 in
  Alcotest.(check bool) "p=0" false (Rng.bernoulli rng 0.);
  Alcotest.(check bool) "p=1" true (Rng.bernoulli rng 1.);
  let hits = ref 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.02)

let test_rng_sample_rate () =
  let rng = Rng.create 19 in
  let arr = Array.init 10_000 (fun i -> i) in
  let s = Rng.sample rng ~p:0.1 arr in
  let m = Array.length s in
  Alcotest.(check bool) "size near np" true (abs (m - 1000) < 200);
  (* A sample preserves relative order and draws without replacement. *)
  Alcotest.(check bool) "sorted subsequence" true
    (Search.is_sorted ~cmp:Int.compare s);
  Alcotest.(check int) "p=1 keeps all" 10_000
    (Array.length (Rng.sample rng ~p:1. arr));
  Alcotest.(check int) "p=0 keeps none" 0
    (Array.length (Rng.sample rng ~p:0. arr))

(* --- Heap --- *)

let test_heap_sorts () =
  let rng = Rng.create 23 in
  let arr = Array.init 1000 (fun _ -> Rng.int rng 10_000) in
  let h = Heap.of_array ~cmp:Int.compare arr in
  let drained = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some x ->
        drained := x :: !drained;
        drain ()
    | None -> ()
  in
  drain ();
  let got = Array.of_list (List.rev !drained) in
  let expected = Array.copy arr in
  Array.sort Int.compare expected;
  Alcotest.(check bool) "heap drains sorted" true (got = expected)

let test_heap_push_pop_interleaved () =
  let h = Heap.create ~cmp:Int.compare () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h 5;
  Heap.push h 1;
  Heap.push h 3;
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check (option int)) "pop min" (Some 1) (Heap.pop h);
  Heap.push h 0;
  Alcotest.(check (option int)) "new min" (Some 0) (Heap.pop h);
  Alcotest.(check int) "length" 2 (Heap.length h);
  Alcotest.check_raises "pop_exn on empty"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h);
      ignore (Heap.pop_exn h);
      ignore (Heap.pop_exn h))

(* --- Select --- *)

let test_quickselect_matches_sort () =
  let rng = Rng.create 29 in
  for _ = 1 to 50 do
    let n = 1 + Rng.int rng 500 in
    let arr = Array.init n (fun _ -> Rng.int rng 1000) in
    let sorted = Array.copy arr in
    Array.sort Int.compare sorted;
    let i = Rng.int rng n in
    Alcotest.(check int) "rank i"
      sorted.(i)
      (Select.quickselect ~cmp:Int.compare (Array.copy arr) i)
  done

let test_median_of_medians_matches_sort () =
  let rng = Rng.create 31 in
  for _ = 1 to 30 do
    let n = 1 + Rng.int rng 300 in
    let arr = Array.init n (fun _ -> Rng.int rng 100) in
    let sorted = Array.copy arr in
    Array.sort Int.compare sorted;
    let i = Rng.int rng n in
    Alcotest.(check int) "rank i (deterministic)"
      sorted.(i)
      (Select.median_of_medians ~cmp:Int.compare (Array.copy arr) i)
  done

let test_top_k () =
  let xs = [ 5; 1; 9; 3; 7; 2; 8 ] in
  Alcotest.(check (list int)) "top 3" [ 9; 8; 7 ]
    (Select.top_k ~cmp:Int.compare 3 xs);
  Alcotest.(check (list int)) "top 0" [] (Select.top_k ~cmp:Int.compare 0 xs);
  Alcotest.(check (list int)) "top > n" [ 9; 8; 7; 5; 3; 2; 1 ]
    (Select.top_k ~cmp:Int.compare 100 xs);
  Alcotest.(check (list int)) "empty" [] (Select.top_k ~cmp:Int.compare 3 [])

let test_nth_largest () =
  let arr = [| 5; 1; 9; 3; 7 |] in
  Alcotest.(check int) "1st largest" 9
    (Select.nth_largest ~cmp:Int.compare (Array.copy arr) 1);
  Alcotest.(check int) "3rd largest" 5
    (Select.nth_largest ~cmp:Int.compare (Array.copy arr) 3);
  Alcotest.(check int) "5th largest" 1
    (Select.nth_largest ~cmp:Int.compare (Array.copy arr) 5);
  Alcotest.check_raises "rank 0"
    (Invalid_argument "Select.nth_largest: rank out of bounds") (fun () ->
      ignore (Select.nth_largest ~cmp:Int.compare (Array.copy arr) 0))

let prop_top_k_matches_sort =
  QCheck.Test.make ~count:200 ~name:"top_k equals sort-take"
    QCheck.(pair (list int) small_nat)
    (fun (xs, k) ->
      let expected =
        List.sort (fun a b -> Int.compare b a) xs
        |> List.filteri (fun i _ -> i < k)
      in
      Select.top_k ~cmp:Int.compare k xs = expected)

(* --- Search --- *)

let test_bounds () =
  let arr = [| 1; 3; 3; 5; 7 |] in
  let lb = Search.lower_bound ~cmp:Int.compare arr in
  let ub = Search.upper_bound ~cmp:Int.compare arr in
  Alcotest.(check int) "lb 0" 0 (lb 0);
  Alcotest.(check int) "lb 3" 1 (lb 3);
  Alcotest.(check int) "lb 4" 3 (lb 4);
  Alcotest.(check int) "lb 8" 5 (lb 8);
  Alcotest.(check int) "ub 3" 3 (ub 3);
  Alcotest.(check int) "ub 7" 5 (ub 7);
  Alcotest.(check (option int)) "pred 4"
    (Some 2)
    (Search.predecessor ~cmp:Int.compare arr 4);
  Alcotest.(check (option int)) "pred 0" None
    (Search.predecessor ~cmp:Int.compare arr 0)

let test_binary_search_first () =
  let ok i = i >= 42 in
  Alcotest.(check (option int)) "first" (Some 42)
    (Search.binary_search_first ok 0 100);
  Alcotest.(check (option int)) "none" None
    (Search.binary_search_first ok 0 42);
  Alcotest.(check (option int)) "empty range" None
    (Search.binary_search_first ok 5 5)

(* --- Gen --- *)

let test_distinct_weights () =
  let rng = Rng.create 37 in
  let w = Gen.distinct_weights rng 5000 in
  let sorted = Array.copy w in
  Array.sort Float.compare sorted;
  for i = 1 to Array.length sorted - 1 do
    if sorted.(i) = sorted.(i - 1) then Alcotest.fail "duplicate weight"
  done

let test_intervals_valid () =
  let rng = Rng.create 41 in
  List.iter
    (fun shape ->
      Array.iter
        (fun (lo, hi) ->
          if lo > hi then Alcotest.fail "inverted interval";
          if Float.is_nan lo || Float.is_nan hi then Alcotest.fail "nan")
        (Gen.intervals rng ~shape ~n:2000))
    [ Gen.Short_intervals; Gen.Mixed_intervals; Gen.Nested_intervals ]

let test_nested_intervals_nest () =
  let rng = Rng.create 43 in
  let iv = Gen.intervals rng ~shape:Gen.Nested_intervals ~n:100 in
  (* All nested intervals contain the center. *)
  Array.iter
    (fun (lo, hi) ->
      Alcotest.(check bool) "covers center" true (lo <= 0.5 && hi >= 0.5))
    iv

let test_halfplanes_unit_normal () =
  let rng = Rng.create 47 in
  Array.iter
    (fun (a, b, _) ->
      Alcotest.(check (float 1e-9)) "unit normal" 1. ((a *. a) +. (b *. b)))
    (Gen.halfplanes rng ~n:500)

let test_mix_weights_correlation () =
  let rng = Rng.create 53 in
  let coords = Array.init 2000 (fun i -> float_of_int i /. 2000.) in
  let w = Gen.mix_weights rng (Gen.Correlated 1.) ~coords in
  (* With full correlation, weights must be increasing in coords. *)
  Alcotest.(check bool) "monotone" true
    (Search.is_sorted ~cmp:Float.compare w);
  let w0 = Gen.mix_weights rng Gen.Uniform_weights ~coords in
  Alcotest.(check bool) "uncorrelated is shuffled" false
    (Search.is_sorted ~cmp:Float.compare w0)

let () =
  Alcotest.run "topk_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick
            test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniform" `Slow test_rng_int_roughly_uniform;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
          Alcotest.test_case "sample rate" `Quick test_rng_sample_rate;
          Alcotest.test_case "raw seed-compat" `Quick test_raw_seed_compat;
          Alcotest.test_case "raw reseed" `Quick test_raw_reseed;
        ] );
      ( "heap",
        [
          Alcotest.test_case "drains sorted" `Quick test_heap_sorts;
          Alcotest.test_case "push/pop" `Quick test_heap_push_pop_interleaved;
        ] );
      ( "select",
        [
          Alcotest.test_case "quickselect" `Quick test_quickselect_matches_sort;
          Alcotest.test_case "median of medians" `Quick
            test_median_of_medians_matches_sort;
          Alcotest.test_case "top_k" `Quick test_top_k;
          Alcotest.test_case "nth_largest" `Quick test_nth_largest;
          QCheck_alcotest.to_alcotest prop_top_k_matches_sort;
        ] );
      ( "search",
        [
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "binary_search_first" `Quick
            test_binary_search_first;
        ] );
      ( "gen",
        [
          Alcotest.test_case "distinct weights" `Quick test_distinct_weights;
          Alcotest.test_case "intervals valid" `Quick test_intervals_valid;
          Alcotest.test_case "nested intervals nest" `Quick
            test_nested_intervals_nest;
          Alcotest.test_case "halfplane normals" `Quick
            test_halfplanes_unit_normal;
          Alcotest.test_case "weight correlation" `Quick
            test_mix_weights_correlation;
        ] );
    ]
