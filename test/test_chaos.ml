(* Chaos tests: the serving pool under the EM fault model.

   A seeded fault plan (>= 5% transient fault probability per charged
   block I/O) is armed over a mixed interval-stabbing + 1D-range
   workload on a 4-worker pool, and one worker domain is killed
   mid-run.  The pool must degrade gracefully, not silently:

   - every submitted future resolves (no hang, no leak);
   - every answer that is not flagged [Failed] equals the sequential
     oracle's answer, element for element;
   - transient faults were actually injected and retried;
   - the killed worker was respawned by the supervisor.

   Shutdown under chaos must likewise resolve every future. *)

module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module Stats = Topk_em.Stats
module Fault = Topk_em.Fault
module I = Topk_interval.Interval
module IInst = Topk_interval.Instances
module W = Topk_range.Wpoint
module RInst = Topk_range.Instances
module Registry = Topk_service.Registry
module Executor = Topk_service.Executor
module Breaker = Topk_service.Breaker
module Response = Topk_service.Response
module Future = Topk_service.Future
module Metrics = Topk_service.Metrics
module Error = Topk_service.Error

let interval_ids = List.map (fun (e : I.t) -> e.I.id)

let wpoint_ids = List.map (fun (e : W.t) -> e.W.id)

type fixture = {
  itv_h : (float, I.t) Registry.handle;
  rng_h : (float * float, W.t) Registry.handle;
  stabs : float array;
  ranges : (float * float) array;
  (* Oracle answers, computed sequentially before any fault is armed:
     [oracle.(i)] is the exact top-k id list of query [i]. *)
  itv_oracle : int list array;
  rng_oracle : int list array;
}

let make_fixture ?(n = 3000) ?(queries = 240) ~seed ~k () =
  let rng = Rng.create seed in
  let elems =
    I.of_spans rng (Gen.intervals rng ~shape:Gen.Mixed_intervals ~n)
  in
  let pts = W.of_positions rng (Array.init n (fun _ -> Rng.uniform rng)) in
  let registry = Registry.create () in
  let itv_h =
    Registry.register registry ~name:"intervals"
      (module IInst.Topk_t2)
      (IInst.Topk_t2.build ~params:(IInst.params ()) elems)
  in
  let rng_h =
    Registry.register registry ~name:"range1d"
      (module RInst.Topk_t2)
      (RInst.Topk_t2.build ~params:(RInst.params ()) pts)
  in
  let stabs = Gen.stab_queries rng ~n:queries in
  let ranges =
    Array.init queries (fun _ ->
        let a = Rng.uniform rng and b = Rng.uniform rng in
        (Float.min a b, Float.max a b))
  in
  let itv_naive = IInst.Topk_naive.build elems in
  let rng_naive = RInst.Topk_naive.build pts in
  let itv_oracle =
    Array.map
      (fun q -> interval_ids (IInst.Topk_naive.query itv_naive q ~k))
      stabs
  in
  let rng_oracle =
    Array.map (fun q -> wpoint_ids (RInst.Topk_naive.query rng_naive q ~k)) ranges
  in
  { itv_h; rng_h; stabs; ranges; itv_oracle; rng_oracle }

(* A breaker policy that cannot trip within one test run: the trip
   condition needs a full window of samples, and the workload is
   smaller than the window.  The chaos tests exercise retry/respawn,
   not admission control (that has its own tests in [test_service]). *)
let never_trips =
  {
    Breaker.default_policy with
    Breaker.window = 4096;
    min_samples = 4096;
    failure_threshold = 1.0;
  }

let test_pool_survives_fault_plan () =
  Fault.clear ();
  let k = 10 in
  let fx = make_fixture ~seed:101 ~k () in
  let queries = Array.length fx.stabs in
  let plan =
    Fault.plan ~seed:42 ~io_fault_rate:0.05 ~latency_rate:0.01 ~latency_s:2e-5
      ()
  in
  let pool =
    Executor.create ~workers:4 ~queue_capacity:1024
      ~retry:
        {
          Executor.default_retry_policy with
          Executor.max_retries = 6;
          base_backoff = 2e-4;
          max_backoff = 2e-3;
        }
      ~breaker:never_trips ~seed:7 ()
  in
  Fun.protect
    ~finally:(fun () ->
      Executor.shutdown pool;
      Fault.clear ())
    (fun () ->
      let faults_before = Fault.injected_total () in
      Fault.install plan;
      let itv_futs =
        Array.map (fun q -> Executor.submit pool fx.itv_h q ~k) fx.stabs
      in
      let rng_futs =
        Array.map (fun q -> Executor.submit pool fx.rng_h q ~k) fx.ranges
      in
      (* Kill worker 0 mid-run; the supervisor must respawn it. *)
      Executor.inject_worker_crash pool 0;
      (* Every future resolves; non-faulted answers are exact. *)
      let exact = ref 0 and failed = ref 0 and resolved = ref 0 in
      let check oracle ids fut =
        let r = Future.await fut in
        incr resolved;
        match r.Response.status with
        | Response.Failed _ -> incr failed
        | _ ->
            incr exact;
            Alcotest.(check (list int))
              "non-faulted answer equals the sequential oracle" oracle
              (ids r.Response.answers)
      in
      Array.iteri
        (fun i fut -> check fx.itv_oracle.(i) interval_ids fut)
        itv_futs;
      Array.iteri (fun i fut -> check fx.rng_oracle.(i) wpoint_ids fut) rng_futs;
      Alcotest.(check int) "all futures resolved" (2 * queries) !resolved;
      Alcotest.(check bool)
        (Printf.sprintf "some queries completed exactly (%d exact, %d failed)"
           !exact !failed)
        true (!exact > 0);
      Executor.drain pool;
      (* Chaos actually happened: faults were injected in the EM layer,
         escaped to the serving layer, and were retried. *)
      let m = Executor.metrics pool in
      Alcotest.(check bool)
        "faults were injected" true
        (Fault.injected_total () > faults_before);
      Alcotest.(check bool)
        "transients escaped to the serving layer" true
        (Metrics.Counter.get m.Metrics.faults_injected > 0);
      Alcotest.(check bool)
        "transients were retried" true
        (Metrics.Counter.get m.Metrics.retries > 0);
      (* The killed worker was respawned (bounded wait: the supervisor
         ticks every 0.5ms, but give CI plenty of slack). *)
      let deadline = Unix.gettimeofday () +. 5. in
      while
        Metrics.Counter.get m.Metrics.respawns = 0
        && Unix.gettimeofday () < deadline
      do
        Unix.sleepf 0.005
      done;
      Alcotest.(check bool)
        "killed worker was respawned" true
        (Metrics.Counter.get m.Metrics.respawns >= 1);
      (* The pool is still healthy after the chaos: with the plan
         cleared, a fresh query is complete and exact. *)
      Fault.clear ();
      let r = Future.await (Executor.submit pool fx.itv_h fx.stabs.(0) ~k) in
      Alcotest.(check string)
        "post-chaos query completes" "complete"
        (Response.status_string r.Response.status);
      Alcotest.(check (list int))
        "post-chaos answer exact" fx.itv_oracle.(0)
        (interval_ids r.Response.answers))

(* Shutdown in the middle of a chaotic backlog: every future still
   resolves — finished ones with their real status, swept ones as
   [Failed "shutdown"] — and nothing hangs. *)
let test_shutdown_under_chaos_resolves_everything () =
  Fault.clear ();
  let k = 8 in
  let fx = make_fixture ~n:2000 ~queries:160 ~seed:313 ~k () in
  let pool =
    Executor.create ~workers:2 ~queue_capacity:512 ~batch_max:4
      ~breaker:never_trips ~seed:5 ()
  in
  Fault.install (Fault.plan ~seed:99 ~io_fault_rate:0.3 ());
  Fun.protect
    ~finally:(fun () -> Fault.clear ())
    (fun () ->
      let await_status fut () = (Future.await fut).Response.status in
      let futs =
        Array.to_list
          (Array.map
             (fun q -> await_status (Executor.submit pool fx.itv_h q ~k))
             fx.stabs)
        @ Array.to_list
            (Array.map
               (fun q -> await_status (Executor.submit pool fx.rng_h q ~k))
               fx.ranges)
      in
      (* Shut down immediately: most of the backlog is still queued. *)
      Executor.shutdown pool;
      let swept, finished =
        List.partition
          (fun wait ->
            match wait () with
            | Response.Failed (Error.Failed "shutdown") -> true
            | _ -> false)
          futs
      in
      Alcotest.(check int)
        "every future resolved" 320
        (List.length swept + List.length finished);
      Alcotest.(check bool)
        (Printf.sprintf "backlog was swept (%d swept)" (List.length swept))
        true
        (List.length swept > 0);
      let m = Executor.metrics pool in
      Alcotest.(check int)
        "aborted counter matches the sweep" (List.length swept)
        (Metrics.Counter.get m.Metrics.aborted))

let () =
  Alcotest.run "chaos"
    [
      ( "chaos",
        [
          Alcotest.test_case "pool survives a seeded fault plan" `Quick
            test_pool_survives_fault_plan;
          Alcotest.test_case "shutdown under chaos resolves everything" `Quick
            test_shutdown_under_chaos_resolves_everything;
        ] );
    ]
