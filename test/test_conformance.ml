(* Cross-problem conformance laws.

   Every problem instance must satisfy the same contracts the
   reductions rely on; this suite states them once as functors and
   applies them to all eight problems.  Notably:

   - tau-inclusion: a prioritized query with tau = w(e) for a matching
     element e MUST report e (the reductions always query at the exact
     weight of a sampled element — an exclusive comparison here is the
     classic off-by-one);
   - monitored exactness: [All] answers are complete, [Truncated]
     answers have exactly limit+1 elements;
   - top-k prefix monotonicity: top-k is a prefix of top-(k+1). *)

module Sigs = Topk_core.Sigs
module Rng = Topk_util.Rng
module Gen = Topk_util.Gen

module type INSTANCE = sig
  module P : Sigs.PROBLEM

  module Pri : Sigs.PRIORITIZED with module P = P

  module Max : Sigs.MAX with module P = P

  module Topk : Sigs.TOPK with module P = P

  val name : string

  val params : Topk_core.Params.t

  val elements : Rng.t -> n:int -> P.elem array

  val queries : Rng.t -> n:int -> P.query array
end

module Conformance (I : INSTANCE) = struct
  module Oracle = Topk_core.Oracle.Make (I.P)
  module W = Sigs.Weight_order (I.P)

  let ids l = List.sort Int.compare (List.map I.P.id l)

  let setup seed n =
    let rng = Rng.create seed in
    let elems = I.elements rng ~n in
    (elems, Oracle.build elems, I.queries rng ~n:25)

  let test_tau_inclusion () =
    let elems, oracle, queries = setup 701 300 in
    let s = I.Pri.build elems in
    Array.iter
      (fun q ->
        (* tau equal to the weight of each of a few matching elements:
           that element must be reported. *)
        let matching = Oracle.prioritized oracle q ~tau:Float.neg_infinity in
        List.iteri
          (fun i e ->
            if i mod 7 = 0 then begin
              let tau = I.P.weight e in
              let got = I.Pri.query s q ~tau in
              Alcotest.(check bool)
                (Printf.sprintf "%s: tau-inclusion" I.name)
                true
                (List.exists (fun x -> I.P.id x = I.P.id e) got);
              (* And the result is exactly the oracle's. *)
              Alcotest.(check (list int))
                (Printf.sprintf "%s: tau-exact" I.name)
                (ids (Oracle.prioritized oracle q ~tau))
                (ids got)
            end)
          matching)
      queries

  let test_monitored_exactness () =
    let elems, oracle, queries = setup 703 300 in
    let s = I.Pri.build elems in
    Array.iter
      (fun q ->
        let total = Oracle.count oracle q in
        (match I.Pri.query_monitored s q ~tau:Float.neg_infinity ~limit:total with
         | Sigs.All got ->
             Alcotest.(check (list int))
               (Printf.sprintf "%s: monitored All complete" I.name)
               (ids (Oracle.prioritized oracle q ~tau:Float.neg_infinity))
               (ids got)
         | Sigs.Truncated _ ->
             Alcotest.failf "%s: truncation below the result size" I.name);
        if total > 2 then
          match
            I.Pri.query_monitored s q ~tau:Float.neg_infinity
              ~limit:(total - 2)
          with
          | Sigs.Truncated got ->
              Alcotest.(check int)
                (Printf.sprintf "%s: truncated = limit+1" I.name)
                (total - 1) (List.length got)
          | Sigs.All _ ->
              Alcotest.failf "%s: missed truncation" I.name)
      queries

  (* Monitored boundary laws (the Section 3.2 certification hinges on
     these exact counts):
     - [limit >= t] terminates by itself: [All], complete — including
       [limit = t] exactly, where the implementation must notice
       completion rather than report a spurious cutoff;
     - [limit < t] is a certified cutoff: [Truncated] with {e exactly}
       [limit + 1] elements, every one a genuine match at [tau] —
       including [limit = 0] (payload of exactly one element) and
       [limit = t - 1] (payload of all [t], still flagged, because
       [All] would falsely certify [t <= limit]);
     - an empty answer can never truncate: [All []] for any limit. *)
  let test_monitored_edge_cases () =
    let elems, oracle, queries = setup 717 300 in
    let s = I.Pri.build elems in
    Array.iter
      (fun q ->
        let truth = ids (Oracle.prioritized oracle q ~tau:Float.neg_infinity) in
        let t = List.length truth in
        (* Cutoffs: exactly limit+1 genuine matches. *)
        List.sort_uniq Int.compare [ 0; 1; t / 2; t - 1 ]
        |> List.iter (fun limit ->
               if limit >= 0 && limit < t then
                 match
                   I.Pri.query_monitored s q ~tau:Float.neg_infinity ~limit
                 with
                 | Sigs.All _ ->
                     Alcotest.failf "%s: limit=%d < t=%d must truncate" I.name
                       limit t
                 | Sigs.Truncated got ->
                     Alcotest.(check int)
                       (Printf.sprintf "%s: limit=%d payload is limit+1" I.name
                          limit)
                       (limit + 1) (List.length got);
                     List.iter
                       (fun e ->
                         Alcotest.(check bool)
                           (Printf.sprintf "%s: truncated element matches"
                              I.name)
                           true
                           (List.mem (I.P.id e) truth))
                       got);
        (* Termination: limit = t and beyond return the complete answer. *)
        List.iter
          (fun limit ->
            match I.Pri.query_monitored s q ~tau:Float.neg_infinity ~limit with
            | Sigs.All got ->
                Alcotest.(check (list int))
                  (Printf.sprintf "%s: limit=%d >= t=%d complete" I.name limit
                     t)
                  truth (ids got)
            | Sigs.Truncated _ ->
                Alcotest.failf "%s: limit=%d >= t=%d must not truncate" I.name
                  limit t)
          [ t; t + 9 ])
      queries;
    (* Empty matching set: All [] regardless of limit. *)
    let rng = Rng.create 719 in
    let q0 = (I.queries rng ~n:1).(0) in
    match I.Pri.query_monitored (I.Pri.build [||]) q0 ~tau:0. ~limit:0 with
    | Sigs.All [] -> ()
    | Sigs.All _ -> Alcotest.failf "%s: empty build reported elements" I.name
    | Sigs.Truncated _ ->
        Alcotest.failf "%s: empty build truncated at limit=0" I.name

  let test_max_agrees () =
    let elems, oracle, queries = setup 707 300 in
    let m = I.Max.build elems in
    Array.iter
      (fun q ->
        Alcotest.(check (option int))
          (Printf.sprintf "%s: max" I.name)
          (Option.map I.P.id (Oracle.max oracle q))
          (Option.map I.P.id (I.Max.query m q)))
      queries

  let test_topk_prefix_monotone () =
    let elems, oracle, queries = setup 709 250 in
    ignore oracle;
    let t = I.Topk.build ~params:I.params elems in
    Array.iter
      (fun q ->
        let prev = ref [] in
        List.iter
          (fun k ->
            let cur = List.map I.P.id (I.Topk.query t q ~k) in
            let plen = List.length !prev in
            Alcotest.(check (list int))
              (Printf.sprintf "%s: top-%d extends top-k prefix" I.name k)
              !prev
              (List.filteri (fun i _ -> i < plen) cur);
            prev := cur)
          [ 1; 2; 4; 8; 32; 128 ])
      queries

  let test_topk_sorted_and_distinct () =
    let elems, _, queries = setup 711 250 in
    let t = I.Topk.build ~params:I.params elems in
    Array.iter
      (fun q ->
        let got = I.Topk.query t q ~k:40 in
        let rec check_sorted = function
          | a :: (b :: _ as rest) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: descending" I.name)
                true
                (W.compare a b > 0);
              check_sorted rest
          | _ -> ()
        in
        check_sorted got;
        let uniq = List.sort_uniq Int.compare (List.map I.P.id got) in
        Alcotest.(check int)
          (Printf.sprintf "%s: no duplicates" I.name)
          (List.length got) (List.length uniq))
      queries

  (* Uniform k edge cases (the satellite contract stated on
     [Sigs.TOPK.query]): k <= 0 answers [] and charges nothing; k at
     or beyond the number of matches answers every matching element,
     sorted — for every registered TOPK implementation alike. *)
  let test_k_edge_cases () =
    let elems, oracle, queries = setup 715 200 in
    let t = I.Topk.build ~params:I.params elems in
    Array.iter
      (fun q ->
        List.iter
          (fun k ->
            let got, cost =
              Topk_em.Stats.measure (fun () -> I.Topk.query t q ~k)
            in
            Alcotest.(check int)
              (Printf.sprintf "%s: k=%d answers []" I.name k)
              0 (List.length got);
            Alcotest.(check int)
              (Printf.sprintf "%s: k=%d charges no I/O" I.name k)
              0 cost.Topk_em.Stats.ios;
            Alcotest.(check int)
              (Printf.sprintf "%s: k=%d scans nothing" I.name k)
              0 cost.Topk_em.Stats.scanned)
          [ 0; -1; -17 ];
        let m = Oracle.count oracle q in
        let all = List.map I.P.id (Oracle.top_k oracle q ~k:(m + 1)) in
        List.iter
          (fun k ->
            Alcotest.(check (list int))
              (Printf.sprintf "%s: k=%d >= matches reports all, sorted" I.name
                 k)
              all
              (List.map I.P.id (I.Topk.query t q ~k)))
          [ m; m + 1; m + 100 ])
      queries

  let test_empty_input () =
    let t = I.Topk.build ~params:I.params [||] in
    let s = I.Pri.build [||] in
    let m = I.Max.build [||] in
    let rng = Rng.create 713 in
    Array.iter
      (fun q ->
        Alcotest.(check int)
          (Printf.sprintf "%s: empty topk" I.name)
          0
          (List.length (I.Topk.query t q ~k:5));
        Alcotest.(check int)
          (Printf.sprintf "%s: empty pri" I.name)
          0
          (List.length (I.Pri.query s q ~tau:Float.neg_infinity));
        Alcotest.(check bool)
          (Printf.sprintf "%s: empty max" I.name)
          true
          (I.Max.query m q = None))
      (I.queries rng ~n:5)

  let suite =
    [
      Alcotest.test_case "tau inclusion at exact weights" `Quick
        test_tau_inclusion;
      Alcotest.test_case "monitored exactness" `Quick
        test_monitored_exactness;
      Alcotest.test_case "monitored edge cases (limit 0, t-1, >= t)" `Quick
        test_monitored_edge_cases;
      Alcotest.test_case "max agrees with oracle" `Quick test_max_agrees;
      Alcotest.test_case "top-k prefix monotone" `Quick
        test_topk_prefix_monotone;
      Alcotest.test_case "top-k sorted, distinct" `Quick
        test_topk_sorted_and_distinct;
      Alcotest.test_case "k edge cases (k <= 0, k >= matches)" `Quick
        test_k_edge_cases;
      Alcotest.test_case "empty input" `Quick test_empty_input;
    ]
end

(* --- the dynamic law ---

   Every instance exposing updates must satisfy one more contract:
   after an arbitrary interleaving of inserts and deletes, top-k
   queries answer exactly as a from-scratch oracle over the surviving
   set (insert*; delete*; query == oracle on survivors).  This is the
   law the ingest bench checks under concurrency; here it is stated
   sequentially over every updatable implementation. *)

module type DYN_INSTANCE = sig
  module P : Sigs.PROBLEM

  type t

  val name : string

  val build : P.elem array -> t

  val insert : t -> P.elem -> unit

  val delete : t -> P.elem -> unit

  val query : t -> P.query -> k:int -> P.elem list

  val fresh_elements : Rng.t -> first_id:int -> n:int -> P.elem array
  (** [n] elements with ids [first_id .. first_id + n - 1] — the law
      interleaves several generations, so ids must not collide across
      calls (the static generators restart ids at 1 every call). *)

  val queries : Rng.t -> n:int -> P.query array
end

module Dynamic_law (D : DYN_INSTANCE) = struct
  module Oracle = Topk_core.Oracle.Make (D.P)

  let check_survivors s survivors queries =
    let live = Array.of_list (Hashtbl.fold (fun _ e acc -> e :: acc) survivors []) in
    let oracle = Oracle.build live in
    Array.iter
      (fun q ->
        List.iter
          (fun k ->
            Alcotest.(check (list int))
              (Printf.sprintf "%s: dynamic law (k=%d)" D.name k)
              (List.map D.P.id (Oracle.top_k oracle q ~k))
              (List.map D.P.id (D.query s q ~k)))
          [ 1; 5; 60 ])
      queries

  let test_dynamic_law () =
    let rng = Rng.create 721 in
    let next_id = ref 1 in
    let elements n =
      let batch = D.fresh_elements rng ~first_id:!next_id ~n in
      next_id := !next_id + n;
      batch
    in
    let base = elements 120 in
    let s = D.build base in
    let survivors = Hashtbl.create 256 in
    Array.iter (fun e -> Hashtbl.replace survivors (D.P.id e) e) base;
    let queries = D.queries rng ~n:12 in
    check_survivors s survivors queries;
    for _round = 1 to 3 do
      (* A burst of fresh inserts... *)
      let batch = elements 40 in
      Array.iter
        (fun e ->
          D.insert s e;
          Hashtbl.replace survivors (D.P.id e) e)
        batch;
      (* ...then delete a random half of the current survivors. *)
      let live = Array.of_list (Hashtbl.fold (fun _ e acc -> e :: acc) survivors []) in
      Array.iter
        (fun e ->
          if Rng.bernoulli rng 0.5 then begin
            D.delete s e;
            Hashtbl.remove survivors (D.P.id e)
          end)
        live;
      check_survivors s survivors queries
    done;
    (* Drain to empty: the law holds at the boundary too. *)
    Hashtbl.iter (fun _ e -> D.delete s e) survivors;
    Hashtbl.reset survivors;
    check_survivors s survivors queries

  let suite =
    [ Alcotest.test_case "insert*; delete*; query == oracle" `Quick
        test_dynamic_law ]
end

(* --- the eight instances --- *)

module Interval_instance = struct
  module P = Topk_interval.Problem
  module Pri = Topk_interval.Seg_stab
  module Max = Topk_interval.Slab_max
  module Topk = Topk_interval.Instances.Topk_t2

  let name = "interval"

  let params = Topk_interval.Instances.params ()

  let elements rng ~n =
    Topk_interval.Interval.of_spans rng
      (Gen.intervals rng ~shape:Gen.Mixed_intervals ~n)

  let queries rng ~n = Gen.stab_queries rng ~n
end

module Range_instance = struct
  module P = Topk_range.Problem
  module Pri = Topk_range.Range_pri
  module Max = Topk_range.Range_max
  module Topk = Topk_range.Instances.Topk_t2

  let name = "range"

  let params = Topk_range.Instances.params ()

  let elements rng ~n =
    Topk_range.Wpoint.of_positions rng
      (Array.init n (fun _ -> Rng.uniform rng))

  let queries rng ~n =
    Array.init n (fun _ ->
        let a = Rng.uniform rng and b = Rng.uniform rng in
        (Float.min a b, Float.max a b))
end

module Enclosure_instance = struct
  module P = Topk_enclosure.Problem
  module Pri = Topk_enclosure.Enc_pri
  module Max = Topk_enclosure.Enc_max
  module Topk = Topk_enclosure.Instances.Topk_t2

  let name = "enclosure"

  let params = Topk_enclosure.Instances.params ()

  let elements rng ~n = Topk_enclosure.Rect.of_boxes rng (Gen.rectangles rng ~n)

  let queries rng ~n =
    Array.init n (fun _ -> (Rng.uniform rng, Rng.uniform rng))
end

module Dominance_instance = struct
  module P = Topk_dominance.Problem
  module Pri = Topk_dominance.Dom_pri
  module Max = Topk_dominance.Dom_max
  module Topk = Topk_dominance.Instances.Topk_t2

  let name = "dominance"

  let params = Topk_dominance.Instances.params ()

  let elements rng ~n =
    Topk_dominance.Point3.of_coords rng
      (Array.init n (fun _ ->
           (Rng.uniform rng, Rng.uniform rng, Rng.uniform rng)))

  let queries rng ~n =
    Array.init n (fun _ ->
        (Rng.uniform rng, Rng.uniform rng, Rng.uniform rng))
end

module Halfplane_instance = struct
  module P = Topk_halfspace.Hp_problem
  module Pri = Topk_halfspace.Hp_pri
  module Max = Topk_halfspace.Hp_max
  module Topk = Topk_halfspace.Instances.Topk2_t2

  let name = "halfplane"

  let params = Topk_halfspace.Instances.params2 ()

  let elements rng ~n =
    Topk_geom.Point2.of_coords rng
      (Array.map (fun c -> (c.(0), c.(1))) (Gen.points rng ~n ~d:2))

  let queries rng ~n =
    Array.map Topk_geom.Halfplane.of_triple (Gen.halfplanes rng ~n)
end

module Kd_halfspace_instance = struct
  module P = Topk_halfspace.Instances.Hs_problem
  module Pri = Topk_halfspace.Instances.Kd_hs_pri
  module Max = Topk_halfspace.Instances.Kd_hs_max
  module Topk = Topk_halfspace.Instances.Topkd_t2

  let name = "kd-halfspace-d3"

  let params = Topk_halfspace.Instances.paramsd ~d:3

  let elements rng ~n = Topk_halfspace.Pointd.of_coords rng (Gen.points rng ~n ~d:3)

  let queries rng ~n =
    Array.init n (fun _ ->
        let normal = Array.init 3 (fun _ -> Rng.uniform rng -. 0.5) in
        if Array.for_all (fun a -> Float.abs a < 1e-9) normal then
          normal.(0) <- 1.;
        let anchor = Array.init 3 (fun _ -> Rng.uniform rng) in
        let c = ref 0. in
        Array.iteri (fun i a -> c := !c +. (a *. anchor.(i))) normal;
        Topk_halfspace.Predicates.Halfspace.make ~normal ~c:!c)
end

module Ball_instance = struct
  module P = Topk_halfspace.Instances.Ball_problem
  module Pri = Topk_halfspace.Instances.Kd_ball_pri
  module Max = Topk_halfspace.Instances.Kd_ball_max
  module Topk = Topk_halfspace.Instances.Topk_ball_t2

  let name = "ball-d3"

  let params = Topk_halfspace.Instances.paramsd ~d:3

  let elements rng ~n = Topk_halfspace.Pointd.of_coords rng (Gen.points rng ~n ~d:3)

  let queries rng ~n =
    Array.map
      (fun (c, r) -> Topk_halfspace.Predicates.Ball.make ~center:c ~radius:r)
      (Gen.balls rng ~n ~d:3)
end

module Ortho_instance = struct
  module P = Topk_ortho.Problem
  module Pri = Topk_ortho.Ortho_pri
  module Max = Topk_ortho.Ortho_max
  module Topk = Topk_ortho.Instances.Topk_t2

  let name = "ortho"

  let params = Topk_ortho.Instances.params ()

  let elements rng ~n =
    Topk_geom.Point2.of_coords rng
      (Array.map (fun c -> (c.(0), c.(1))) (Gen.points rng ~n ~d:2))

  let queries rng ~n =
    Array.init n (fun _ ->
        let x1 = Rng.uniform rng and x2 = Rng.uniform rng in
        let y1 = Rng.uniform rng and y2 = Rng.uniform rng in
        (Float.min x1 x2, Float.max x1 x2, Float.min y1 y2, Float.max y1 y2))
end

(* The same interval problem under the other TOPK reductions, so the
   k-edge and ordering laws are checked against every implementation
   family (Theorem 1, Theorem 2, restricted-jump baseline, counting
   variant, naive scan), not just the default Theorem 2 build. *)
module Interval_t1_instance = struct
  include Interval_instance
  module Topk = Topk_interval.Instances.Topk_t1

  let name = "interval-t1"
end

module Interval_rj_instance = struct
  include Interval_instance
  module Topk = Topk_interval.Instances.Topk_rj

  let name = "interval-rj"
end

module Interval_rjc_instance = struct
  include Interval_instance
  module Topk = Topk_interval.Instances.Topk_rj_counting

  let name = "interval-rj-counting"
end

module Interval_naive_instance = struct
  include Interval_instance
  module Topk = Topk_interval.Instances.Topk_naive

  let name = "interval-naive"
end

(* --- the updatable instances --- *)

(* Id-disjoint generators: the dynamic law interleaves several
   generations of elements, and the static [of_spans]/[of_positions]
   helpers restart ids at 1 on every call — colliding ids would make
   an insert a silent no-op in structures that key liveness by id. *)
let fresh_intervals rng ~first_id ~n =
  Array.init n (fun i ->
      let id = first_id + i in
      let lo = Rng.uniform rng in
      let hi = Float.min 1.0 (lo +. 0.02 +. (0.4 *. Rng.uniform rng)) in
      Topk_interval.Interval.make ~id ~lo ~hi
        ~weight:(float_of_int id +. (0.5 *. Rng.uniform rng))
        ())

let fresh_wpoints rng ~first_id ~n =
  Array.init n (fun i ->
      let id = first_id + i in
      Topk_range.Wpoint.make ~id ~pos:(Rng.uniform rng)
        ~weight:(float_of_int id +. (0.5 *. Rng.uniform rng))
        ())

module Dyn_topk_instance = struct
  module P = Topk_interval.Problem
  module DT = Topk_interval.Instances.Dyn_topk

  type t = DT.t

  let name = "dyn-theorem2(interval)"

  let build elems = DT.build ~params:(Topk_interval.Instances.params ()) elems

  let insert = DT.insert

  let delete = DT.delete

  let query = DT.query

  let fresh_elements = fresh_intervals

  let queries = Interval_instance.queries
end

(* The ingest wrapper makes any static TOPK updatable; sweep it over
   several structure families and problems.  Tiny buffers force the
   law through seals and background-free inline merges, not just the
   in-memory log. *)

module Ingest_t2_instance = struct
  module P = Topk_interval.Problem
  module Ing = Topk_ingest.Ingest.Make (Topk_interval.Instances.Topk_t2)

  type t = Ing.t

  let name = "ingest(interval-t2)"

  let build elems =
    Ing.create ~params:(Topk_interval.Instances.params ()) ~buffer_cap:16
      ~fanout:2 elems

  let insert = Ing.insert

  let delete = Ing.delete

  let query = Ing.query

  let fresh_elements = fresh_intervals

  let queries = Interval_instance.queries
end

module Ingest_naive_instance = struct
  module P = Topk_interval.Problem
  module Ing = Topk_ingest.Ingest.Make (Topk_interval.Instances.Topk_naive)

  type t = Ing.t

  let name = "ingest(interval-naive)"

  let build elems =
    Ing.create ~params:(Topk_interval.Instances.params ()) ~buffer_cap:8
      ~fanout:3 elems

  let insert = Ing.insert

  let delete = Ing.delete

  let query = Ing.query

  let fresh_elements = fresh_intervals

  let queries = Interval_instance.queries
end

module Ingest_range_instance = struct
  module P = Topk_range.Problem
  module Ing = Topk_ingest.Ingest.Make (Topk_range.Instances.Topk_t2)

  type t = Ing.t

  let name = "ingest(range-t2)"

  let build elems =
    Ing.create ~params:(Topk_range.Instances.params ()) ~buffer_cap:16
      ~fanout:2 elems

  let insert = Ing.insert

  let delete = Ing.delete

  let query = Ing.query

  let fresh_elements = fresh_wpoints

  let queries = Range_instance.queries
end

(* Ingest over a structure that is itself dynamic: composition must
   still satisfy the law (runs are rebuilt wholesale, the inner update
   support is simply unused). *)
module Ingest_dyn_instance = struct
  module P = Topk_interval.Problem
  module Ing = Topk_ingest.Ingest.Make (Topk_interval.Instances.Dyn_topk)

  type t = Ing.t

  let name = "ingest(dyn-theorem2)"

  let build elems =
    Ing.create ~params:(Topk_interval.Instances.params ()) ~buffer_cap:32
      ~fanout:2 elems

  let insert = Ing.insert

  let delete = Ing.delete

  let query = Ing.query

  let fresh_elements = fresh_intervals

  let queries = Interval_instance.queries
end

module C_interval = Conformance (Interval_instance)
module C_interval_t1 = Conformance (Interval_t1_instance)
module C_interval_rj = Conformance (Interval_rj_instance)
module C_interval_rjc = Conformance (Interval_rjc_instance)
module C_interval_naive = Conformance (Interval_naive_instance)
module C_range = Conformance (Range_instance)
module C_enclosure = Conformance (Enclosure_instance)
module C_dominance = Conformance (Dominance_instance)
module C_halfplane = Conformance (Halfplane_instance)
module C_kd = Conformance (Kd_halfspace_instance)
module C_ball = Conformance (Ball_instance)
module C_ortho = Conformance (Ortho_instance)
module DL_dyn_topk = Dynamic_law (Dyn_topk_instance)
module DL_ingest_t2 = Dynamic_law (Ingest_t2_instance)
module DL_ingest_naive = Dynamic_law (Ingest_naive_instance)
module DL_ingest_range = Dynamic_law (Ingest_range_instance)
module DL_ingest_dyn = Dynamic_law (Ingest_dyn_instance)

let () =
  Alcotest.run "topk_conformance"
    [
      ("interval", C_interval.suite);
      ("interval-t1", C_interval_t1.suite);
      ("interval-rj", C_interval_rj.suite);
      ("interval-rj-counting", C_interval_rjc.suite);
      ("interval-naive", C_interval_naive.suite);
      ("range", C_range.suite);
      ("enclosure", C_enclosure.suite);
      ("dominance", C_dominance.suite);
      ("halfplane", C_halfplane.suite);
      ("kd-halfspace", C_kd.suite);
      ("ball", C_ball.suite);
      ("ortho", C_ortho.suite);
      ("dynamic:dyn-theorem2", DL_dyn_topk.suite);
      ("dynamic:ingest-interval-t2", DL_ingest_t2.suite);
      ("dynamic:ingest-interval-naive", DL_ingest_naive.suite);
      ("dynamic:ingest-range-t2", DL_ingest_range.suite);
      ("dynamic:ingest-dyn-theorem2", DL_ingest_dyn.suite);
    ]
