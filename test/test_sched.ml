(* Tests for the multi-lane QoS scheduler: the pure Sched laws
   (weighted-fair shares, aging bound, deadline ordering, unified-mode
   FIFO) and the executor-level guarantees built on it (per-lane
   shutdown resolves every future, drain terminates under
   self-resubmitting batch work, lane queues survive a multi-domain
   submission race, and a failing background lane cannot trip the
   interactive breaker). *)

module Lane = Topk_service.Lane
module Sched = Topk_service.Sched
module Executor = Topk_service.Executor
module Registry = Topk_service.Registry
module Response = Topk_service.Response
module Future = Topk_service.Future
module Metrics = Topk_service.Metrics
module Breaker = Topk_service.Breaker
module Error = Topk_service.Error

(* --- pure Sched laws --- *)

(* Payloads carry their own optional deadline for the heap ordering. *)
let mk_sched cfg = Sched.create cfg ~deadline:snd

let push_n t lane tag n =
  for i = 0 to n - 1 do
    Sched.push t lane (Printf.sprintf "%s%d" tag i, None)
  done

let pop1 t =
  match Sched.pop_batch t ~max:1 with
  | Some (lane, [ _ ]) -> lane
  | Some (_, jobs) ->
      Alcotest.failf "pop_batch ~max:1 returned %d jobs" (List.length jobs)
  | None -> Alcotest.fail "pop_batch on a non-empty sched returned None"

(* Smooth weighted round-robin with the default 8/2/1 shares is exact:
   over any window of 22 decisions with every lane saturated, the
   grants split 16/4/2. *)
let test_weighted_fair_shares () =
  let t = mk_sched (Sched.default_config ~capacity:128 ()) in
  List.iter (fun lane -> push_n t lane (Lane.name lane) 100) Lane.all;
  let grants = Array.make Lane.count 0 in
  for _ = 1 to 22 do
    let lane = pop1 t in
    grants.(Lane.index lane) <- grants.(Lane.index lane) + 1
  done;
  Alcotest.(check (list int))
    "two full SWRR cycles split 16/4/2" [ 16; 4; 2 ]
    (Array.to_list grants)

(* The aging bound: however skewed the weights, every continuously
   non-empty lane is granted at least once per
   [aging_rounds + Lane.count] consecutive decisions. *)
let test_aging_bound () =
  let aging_rounds = 4 in
  let cfg =
    {
      (Sched.default_config ~capacity:512 ()) with
      Sched.weights = [| 64; 1; 1 |];
      aging_rounds;
    }
  in
  let t = mk_sched cfg in
  push_n t Lane.Interactive "i" 400;
  push_n t Lane.Batch "b" 40;
  push_n t Lane.Maintenance "m" 40;
  let bound = aging_rounds + Lane.count in
  let last_grant = Array.make Lane.count 0 in
  (* 150 decisions never exhaust any lane, so all three stay
     continuously non-empty throughout. *)
  for round = 1 to 150 do
    let lane = pop1 t in
    let li = Lane.index lane in
    let gap = round - last_grant.(li) in
    if gap > bound then
      Alcotest.failf "%s lane waited %d decisions (bound %d)" (Lane.name lane)
        gap bound;
    last_grant.(li) <- round
  done;
  Array.iteri
    (fun li last ->
      Alcotest.(check bool)
        (Printf.sprintf "%s granted in the final window"
           (Lane.name (Lane.of_index li)))
        true
        (150 - last <= bound))
    last_grant;
  List.iter
    (fun lane ->
      Alcotest.(check bool)
        (Printf.sprintf "recorded max wait on %s within bound"
           (Lane.name lane))
        true
        (Sched.max_wait_rounds t lane <= 150))
    Lane.all

(* Interactive dequeue is deadline-ordered: earliest absolute deadline
   first, deadline-free requests after every concrete deadline in FIFO
   order. *)
let test_deadline_ordering () =
  let t = mk_sched (Sched.default_config ()) in
  List.iter
    (fun (name, d) -> Sched.push t Lane.Interactive (name, d))
    [
      ("late", Some 5.0);
      ("nodeadline-1", None);
      ("soon", Some 1.0);
      ("mid", Some 3.0);
      ("nodeadline-2", None);
    ];
  let order = ref [] in
  for _ = 1 to 5 do
    match Sched.pop_batch t ~max:1 with
    | Some (Lane.Interactive, [ ((name, _), _) ]) -> order := name :: !order
    | _ -> Alcotest.fail "expected one interactive job per decision"
  done;
  Alcotest.(check (list string))
    "earliest deadline first, None last (FIFO among themselves)"
    [ "soon"; "mid"; "late"; "nodeadline-1"; "nodeadline-2" ]
    (List.rev !order)

(* Unified mode is the single-queue baseline: every lane routes to one
   FIFO queue and deadlines are ignored. *)
let test_unified_fifo () =
  let t = mk_sched (Sched.unified_config ~capacity:8 ()) in
  Sched.push t Lane.Batch ("first", None);
  Sched.push t Lane.Interactive ("second", Some 0.1);
  Sched.push t Lane.Maintenance ("third", None);
  Sched.push t Lane.Interactive ("fourth", Some 0.0);
  List.iter
    (fun lane ->
      Alcotest.(check int)
        (Printf.sprintf "%s reports the shared depth" (Lane.name lane))
        4
        (Sched.lane_depth t lane))
    Lane.all;
  let order = ref [] in
  for _ = 1 to 4 do
    match Sched.pop_batch t ~max:1 with
    | Some (_, [ ((name, _), _) ]) -> order := name :: !order
    | _ -> Alcotest.fail "expected one job per decision"
  done;
  Alcotest.(check (list string))
    "submission order, deadlines ignored"
    [ "first"; "second"; "third"; "fourth" ]
    (List.rev !order)

(* Config validation. *)
let test_config_validation () =
  Alcotest.check_raises "weight < 1"
    (Invalid_argument "Sched: weight of batch must be >= 1 (got 0)")
    (fun () ->
      Sched.validate
        { (Sched.default_config ()) with Sched.weights = [| 8; 0; 1 |] });
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Sched: capacities must have 3 entries (got 2)")
    (fun () ->
      Sched.validate
        { (Sched.default_config ()) with Sched.capacities = [| 4; 4 |] });
  Alcotest.check_raises "aging_rounds < 1"
    (Invalid_argument "Sched: aging_rounds must be >= 1 (got 0)")
    (fun () ->
      Sched.validate { (Sched.default_config ()) with Sched.aging_rounds = 0 })

(* --- executor-level guarantees --- *)

module Toy_problem = struct
  type elem = int
  type query = unit

  let weight e = float_of_int e
  let id e = e
  let matches () _ = true
  let pp_elem = Format.pp_print_int
  let pp_query ppf () = Format.pp_print_string ppf "()"
end

module Toy = struct
  module P = Toy_problem

  type t = int list (* sorted by decreasing weight *)

  let name = "toy"
  let build ?params:_ elems =
    List.sort (fun a b -> compare b a) (Array.to_list elems)

  let size = List.length
  let space_words = List.length
  let query t () ~k = List.filteri (fun i _ -> i < k) t
end

let toy_handle () =
  let registry = Registry.create () in
  Registry.register registry ~name:"toy"
    (module Toy)
    (Toy.build (Array.init 16 (fun i -> i)))

let await_status f = Response.status_string (Future.await f).Response.status

(* Shutdown resolves every still-queued future on *every* lane as
   [Failed "shutdown"], while the in-flight job finishes normally. *)
let test_shutdown_resolves_all_lanes () =
  let h = toy_handle () in
  let pool = Executor.create ~workers:1 ~batch_max:1 ~queue_capacity:16 () in
  let hold = Atomic.make true in
  (* Wedge the single worker so everything after this stays queued. *)
  let wedge =
    Executor.submit_task pool ~name:"wedge" (fun () ->
        while Atomic.get hold do
          Unix.sleepf 1e-3
        done)
  in
  let m = Executor.metrics pool in
  while Metrics.Gauge.get m.Metrics.inflight < 1 do
    Unix.sleepf 1e-3
  done;
  let interactive = List.init 2 (fun _ -> Executor.submit pool h () ~k:3) in
  let batch =
    List.init 2 (fun _ ->
        Executor.submit_task pool ~name:"b" (fun () -> ()))
  in
  let maint =
    List.init 2 (fun _ ->
        Executor.submit_task pool ~lane:Lane.Maintenance ~name:"m" (fun () ->
            ()))
  in
  Alcotest.(check int)
    "interactive lane queued" 2
    (Executor.lane_depth pool Lane.Interactive);
  Alcotest.(check int)
    "batch lane queued" 2
    (Executor.lane_depth pool Lane.Batch);
  Alcotest.(check int)
    "maintenance lane queued" 2
    (Executor.lane_depth pool Lane.Maintenance);
  let releaser =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Atomic.set hold false)
  in
  Executor.shutdown pool;
  Domain.join releaser;
  let check_shutdown tag i f =
    Alcotest.(check string)
      (Printf.sprintf "queued %s future %d resolved by shutdown" tag i)
      "failed:shutdown" (await_status f)
  in
  List.iteri (check_shutdown "interactive") interactive;
  List.iteri (check_shutdown "batch") batch;
  List.iteri (check_shutdown "maintenance") maint;
  Alcotest.(check string)
    "in-flight wedge finished normally" "complete" (await_status wedge);
  Alcotest.(check int)
    "aborted counter" 6
    (Metrics.Counter.get m.Metrics.aborted)

(* Drain must terminate when a batch job re-submits its own successor
   (the shape of cascading ingest merges): each link of the bounded
   chain is admitted while its parent is still in flight, so [pending]
   only reaches zero when the chain is done. *)
let test_drain_with_resubmitting_task () =
  let pool = Executor.create ~workers:2 ~queue_capacity:64 () in
  let ran = Atomic.make 0 in
  let rec chain n =
    ignore
      (Executor.submit_task pool ~name:"chain" (fun () ->
           Atomic.incr ran;
           if n > 1 then chain (n - 1))
        : unit Response.t Future.t)
  in
  chain 25;
  Executor.drain pool;
  Alcotest.(check int) "every link of the chain ran" 25 (Atomic.get ran);
  Alcotest.(check int) "queue fully drained" 0 (Executor.queue_depth pool);
  Executor.shutdown pool

(* Four submitting domains race the three lane queues; nothing is
   lost, per-lane accounting is exact, and the gauges return to
   zero. *)
let test_multidomain_lane_race () =
  let pool = Executor.create ~workers:4 ~queue_capacity:256 () in
  let ran = Array.init Lane.count (fun _ -> Atomic.make 0) in
  let per_domain = 150 in
  let submitters =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              let lane = Lane.of_index ((d + i) mod Lane.count) in
              ignore
                (Executor.submit_task pool ~lane ~name:"race" (fun () ->
                     Atomic.incr ran.(Lane.index lane))
                  : unit Response.t Future.t)
            done))
  in
  List.iter Domain.join submitters;
  Executor.drain pool;
  let m = Executor.metrics pool in
  List.iter
    (fun lane ->
      let li = Lane.index lane in
      Alcotest.(check int)
        (Printf.sprintf "%s jobs all ran" (Lane.name lane))
        200
        (Atomic.get ran.(li));
      Alcotest.(check int)
        (Printf.sprintf "%s admissions counted" (Lane.name lane))
        200
        (Metrics.Counter.get m.Metrics.lane_admitted.(li));
      Alcotest.(check int)
        (Printf.sprintf "%s depth gauge back to zero" (Lane.name lane))
        0
        (Metrics.Gauge.get m.Metrics.lane_depth.(li)))
    Lane.all;
  Alcotest.(check int)
    "total submissions" (4 * per_domain)
    (Metrics.Counter.get m.Metrics.submitted);
  Executor.shutdown pool

(* Regression (breaker cross-talk): a wedged/failing background lane
   must not count toward the interactive lane's failure window.  Eight
   permanently-failing merges trip the *batch* breaker open; queries
   still admit and complete, and only new batch work is shed. *)
let test_breaker_isolation () =
  let h = toy_handle () in
  let policy =
    {
      Breaker.window = 16;
      min_samples = 8;
      failure_threshold = 0.5;
      open_duration = 60.0;
      half_open_probes = 2;
    }
  in
  let pool = Executor.create ~workers:2 ~queue_capacity:64 ~breaker:policy () in
  let merges =
    List.init 8 (fun _ ->
        Executor.submit_task pool ~name:"merge" (fun () ->
            failwith "merge wedged"))
  in
  List.iter (fun f -> ignore (Future.await f)) merges;
  Executor.drain pool;
  Alcotest.(check string)
    "batch breaker tripped open" "open"
    (Breaker.state_string (Executor.lane_breaker_state pool Lane.Batch));
  Alcotest.(check string)
    "interactive breaker unaffected" "closed"
    (Breaker.state_string (Executor.breaker_state pool));
  Alcotest.(check string)
    "maintenance breaker unaffected" "closed"
    (Breaker.state_string (Executor.lane_breaker_state pool Lane.Maintenance));
  (* Queries still flow... *)
  Alcotest.(check string)
    "interactive query admitted and served" "complete"
    (await_status (Executor.submit pool h () ~k:3));
  (* ...while the failing lane sheds. *)
  Alcotest.check_raises "batch lane sheds load"
    (Error.Error Error.Overloaded) (fun () ->
      ignore
        (Executor.submit_task pool ~name:"merge" (fun () -> ())
          : unit Response.t Future.t));
  let m = Executor.metrics pool in
  Alcotest.(check int)
    "one trip recorded" 1
    (Metrics.Counter.get m.Metrics.breaker_opens);
  Alcotest.(check int)
    "batch breaker gauge open" 2
    (Metrics.Gauge.get m.Metrics.lane_breaker_state.(Lane.index Lane.Batch));
  Alcotest.(check int)
    "interactive breaker gauge closed" 0
    (Metrics.Gauge.get m.Metrics.breaker_state);
  Executor.shutdown pool

let () =
  Alcotest.run "topk_sched"
    [
      ( "sched-laws",
        [
          Alcotest.test_case "weighted-fair shares" `Quick
            test_weighted_fair_shares;
          Alcotest.test_case "aging bound" `Quick test_aging_bound;
          Alcotest.test_case "deadline ordering" `Quick test_deadline_ordering;
          Alcotest.test_case "unified mode is FIFO" `Quick test_unified_fifo;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
      ( "executor-lanes",
        [
          Alcotest.test_case "shutdown resolves all lanes" `Quick
            test_shutdown_resolves_all_lanes;
          Alcotest.test_case "drain with self-resubmitting batch job" `Quick
            test_drain_with_resubmitting_task;
          Alcotest.test_case "4-domain lane race" `Quick
            test_multidomain_lane_race;
          Alcotest.test_case "breaker cross-talk isolation" `Quick
            test_breaker_isolation;
        ] );
    ]
