(* E1 (Lemma 1) and E3 (Lemma 3): empirical validation of the rank
   sampling bounds that drive both reductions. *)

module Rng = Topk_util.Rng
module RS = Topk_core.Rank_sampling

let run_lemma1 () =
  Table.section "E1: Lemma 1 (rank sampling, p-sample rank capture)";
  let rng = Rng.create 10_001 in
  let n = 100_000 in
  let ground = Array.init n (fun i -> i) in
  Rng.shuffle rng ground;
  let rows = ref [] in
  List.iter
    (fun (k, delta) ->
      let p = RS.min_p ~k ~delta in
      let trials = Workloads.trials 400 in
      let fail = ref 0 and low = ref 0 and high = ref 0 and few = ref 0 in
      for _ = 1 to trials do
        match RS.lemma1_trial rng ~cmp:Int.compare ~k ~p ground with
        | RS.Ok_rank -> ()
        | RS.Too_few_samples -> incr few; incr fail
        | RS.Rank_too_low -> incr low; incr fail
        | RS.Rank_too_high -> incr high; incr fail
      done;
      let rate = float_of_int !fail /. float_of_int trials in
      rows :=
        [ Table.fi k; Table.ff ~d:2 delta; Table.ff ~d:4 p;
          Table.fi trials; Table.ff ~d:4 rate;
          Table.fi !few; Table.fi !low; Table.fi !high;
          (if rate <= delta then "yes" else "NO") ]
        :: !rows)
    [ (100, 0.3); (100, 0.1); (1000, 0.3); (1000, 0.1); (1000, 0.01);
      (10_000, 0.1); (10_000, 0.01) ];
  Table.print
    ~title:
      (Printf.sprintf
         "Failure rate of the rank-[2kp] sample vs the lemma's delta (n = %d)"
         n)
    ~header:
      [ "k"; "delta"; "p"; "trials"; "fail-rate"; "empty"; "low"; "high";
        "<= delta?" ]
    (List.rev !rows);
  Table.note
    "Claim: the rank-ceil(2kp) sample element has ground rank in [k, 4k] \
     w.p. >= 1 - delta."

let run_lemma3 () =
  Table.section "E3: Lemma 3 (max of a (1/K)-sample has rank in (K, 4K])";
  let rng = Rng.create 10_003 in
  let n = 100_000 in
  let ground = Array.init n (fun i -> i) in
  Rng.shuffle rng ground;
  let rows = ref [] in
  List.iter
    (fun kk ->
      let trials = Workloads.trials 4000 in
      let ok = ref 0 and low = ref 0 and high = ref 0 and empty = ref 0 in
      for _ = 1 to trials do
        match RS.lemma3_trial rng ~cmp:Int.compare ~kk ground with
        | RS.Ok_rank -> incr ok
        | RS.Rank_too_low -> incr low
        | RS.Rank_too_high -> incr high
        | RS.Too_few_samples -> incr empty
      done;
      let rate = float_of_int !ok /. float_of_int trials in
      rows :=
        [ Table.ff ~d:0 kk; Table.fi trials; Table.ff ~d:4 rate;
          Table.fi !low; Table.fi !high; Table.fi !empty;
          (if rate >= 0.09 then "yes" else "NO") ]
        :: !rows)
    [ 8.; 64.; 512.; 4096.; 20_000. ];
  Table.print
    ~title:
      (Printf.sprintf "Success rate vs the lemma's 0.09 bound (n = %d)" n)
    ~header:[ "K"; "trials"; "ok-rate"; "low"; "high"; "empty"; ">= 0.09?" ]
    (List.rev !rows);
  Table.note
    "Theorem 2's rounds succeed iff this event holds; 0.91^j failure decay \
     bounds the expected round count."

let run () =
  run_lemma1 ();
  run_lemma3 ()
