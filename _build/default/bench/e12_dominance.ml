(* E12 (Theorem 6): top-k 3D dominance — the "hotel search" workload
   of Section 1.4.  The honest ladder base B*Q_max(n) exceeds our n at
   laptop scale (the theorem then answers by scanning, which is
   genuinely optimal); the calibrated variant (measured black-box
   costs, coreset_scale = 1/8) exercises the round machinery. *)

module Rng = Topk_util.Rng
module Inst = Topk_dominance.Instances
module Dom_pri = Topk_dominance.Dom_pri
module Dom_max = Topk_dominance.Dom_max

let corners rng n =
  Array.init n (fun _ ->
      ( 40. +. Rng.float rng 460.,
        Rng.float rng 25.,
        -.(1. +. Rng.float rng 4.) ))

let run () =
  Table.section "E12: top-k 3D dominance (Theorem 6, hotel search)";
  let rows = ref [] in
  List.iter
    (fun n ->
      let rng = Rng.create (120_000 + n) in
      let hotels = Inst.hotels rng ~n in
      let queries = corners rng 30 in
      let pri, mx =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            (Dom_pri.build hotels, Dom_max.build hotels))
      in
      let q_pri =
        Workloads.per_query_ios
          (fun q -> ignore (Dom_pri.query pri q ~tau:Float.infinity))
          queries
      in
      let q_max =
        Workloads.per_query_ios (fun q -> ignore (Dom_max.query mx q)) queries
      in
      let params_cal =
        Workloads.calibrate (Inst.params ()) ~q_pri ~q_max ~scale:0.125 ()
      in
      let t2_paper, t2_cal, rj, naive =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            ( Inst.Topk_t2.build ~params:(Inst.params ()) hotels,
              Inst.Topk_t2.build ~params:params_cal hotels,
              Inst.Topk_rj.build hotels,
              Inst.Topk_naive.build hotels ))
      in
      let cost f k = Workloads.per_query_ios (fun q -> ignore (f q ~k)) queries in
      let info = Inst.Topk_t2.info t2_paper
      and info_c = Inst.Topk_t2.info t2_cal in
      rows :=
        [ Table.fi n;
          Table.ff ~d:1 q_pri;
          Table.ff ~d:1 q_max;
          Table.fi info.Inst.Topk_t2.rungs;
          Table.fi info_c.Inst.Topk_t2.rungs;
          Table.ff ~d:1 (cost (Inst.Topk_t2.query t2_paper) 10);
          Table.ff ~d:1 (cost (Inst.Topk_t2.query t2_cal) 10);
          Table.ff ~d:1 (cost (Inst.Topk_rj.query rj) 10);
          Table.ff ~d:1 (cost (Inst.Topk_naive.query naive) 10) ]
        :: !rows)
    (Workloads.sizes [ 2048; 8192; 32_768 ]);
  Table.print
    ~title:
      "Average I/Os per top-10 dominance query (paper constants vs \
       calibrated)"
    ~header:
      [ "n"; "Q_pri"; "Q_max"; "rungs"; "rungs(cal)"; "thm2"; "thm2(cal)";
        "rj14"; "naive" ]
    (List.rev !rows);
  Table.note
    "With paper constants, B*Q_max(n) > n/4 at these sizes, so the ladder \
     is empty and Theorem 2 degenerates to the (then optimal) scan; the \
     calibrated variant exercises rounds and beats both baselines.";
  Table.note
    "Correctness of every structure is cross-checked against the oracle \
     in the test suite (test_dominance.ml)."
