(* E13 (extension): top-k 1D range reporting — the problem whose
   literature ([3, 11, 12, 33, 35]) motivated the general reductions —
   plus the ablation for the bonus max-from-prioritized reduction:
   Theorem 2 with a native O(log n) max structure vs with the
   synthesized O(Q_pri log n) one. *)

module Rng = Topk_util.Rng
module W = Topk_range.Wpoint
module Pri = Topk_range.Range_pri
module Max = Topk_range.Range_max
module Inst = Topk_range.Instances

let random_points ~seed ~n =
  let rng = Rng.create seed in
  W.of_positions rng (Array.init n (fun _ -> Rng.uniform rng))

let random_ranges ~seed ~n =
  let rng = Rng.create seed in
  Array.init n (fun _ ->
      let a = Rng.uniform rng and b = Rng.uniform rng in
      (Float.min a b, Float.max a b))

let run () =
  Table.section
    "E13: top-k 1D range reporting + max-from-prioritized ablation";
  let rows = ref [] in
  List.iter
    (fun n ->
      let pts = random_points ~seed:(130_000 + n) ~n in
      let queries = random_ranges ~seed:(131_000 + n) ~n:60 in
      let params = Inst.params () in
      let pri, mx, smx, t2, t2s, rj, naive =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            ( Pri.build pts,
              Max.build pts,
              Inst.Synth_max.build pts,
              Inst.Topk_t2.build ~params pts,
              Inst.Topk_t2_synth.build ~params pts,
              Inst.Topk_rj.build pts,
              Inst.Topk_naive.build pts ))
      in
      let q_max =
        Workloads.per_query_ios (fun q -> ignore (Max.query mx q)) queries
      in
      let q_smax =
        Workloads.per_query_ios
          (fun q -> ignore (Inst.Synth_max.query smx q))
          queries
      in
      ignore pri;
      let cost f k = Workloads.per_query_ios (fun q -> ignore (f q ~k)) queries in
      rows :=
        [ Table.fi n;
          Table.ff ~d:1 q_max;
          Table.ff ~d:1 q_smax;
          Table.ff ~d:1 (cost (Inst.Topk_t2.query t2) 10);
          Table.ff ~d:1 (cost (Inst.Topk_t2_synth.query t2s) 10);
          Table.ff ~d:1 (cost (Inst.Topk_rj.query rj) 10);
          Table.ff ~d:1 (cost (Inst.Topk_naive.query naive) 10) ]
        :: !rows)
    (Workloads.sizes [ 4096; 16_384; 65_536; 262_144 ]);
  Table.print
    ~title:
      "Native vs synthesized max structure, and the resulting Theorem 2 \
       top-10 cost"
    ~header:
      [ "n"; "Q_max native"; "Q_max synth"; "thm2"; "thm2(synth)"; "rj14";
        "naive" ]
    (List.rev !rows);
  Table.note
    "The synthesized max pays ~Q_pri log n per query; Theorem 2 built on \
     it stays correct and polylog — the cost of skipping problem-specific \
     max design is one log factor inside K_1 and the rounds."
