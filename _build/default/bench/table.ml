let fi = string_of_int

let ff ?(d = 2) x =
  if Float.is_integer x && Float.abs x < 1e15 && d = 0 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.*f" d x

let fx ?(d = 2) x = Printf.sprintf "%.*fx" d x

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let note text = Printf.printf "  %s\n" text

let print ~title ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width j =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row j with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render row =
    String.concat "  "
      (List.mapi
         (fun j cell ->
           let w = List.nth widths j in
           if j = 0 then Printf.sprintf "%-*s" w cell
           else Printf.sprintf "%*s" w cell)
         row)
  in
  Printf.printf "\n%s\n" title;
  let head = render header in
  print_endline head;
  print_endline (String.make (String.length head) '-');
  List.iter (fun row -> print_endline (render row)) rows;
  flush stdout
