(* E16 (extension): top-k 2D orthogonal range reporting — the "2D
   (orthogonal) version" whose study in [28, 29] the paper builds
   on — range tree black boxes through both reductions. *)

module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module P2 = Topk_geom.Point2
module Pri = Topk_ortho.Ortho_pri
module Max = Topk_ortho.Ortho_max
module Inst = Topk_ortho.Instances

let random_points ~seed ~n =
  let rng = Rng.create seed in
  P2.of_coords rng
    (Array.map (fun c -> (c.(0), c.(1))) (Gen.points rng ~n ~d:2))

let random_rects ~seed ~n =
  let rng = Rng.create seed in
  Array.init n (fun _ ->
      let x1 = Rng.uniform rng and x2 = Rng.uniform rng in
      let y1 = Rng.uniform rng and y2 = Rng.uniform rng in
      (Float.min x1 x2, Float.max x1 x2, Float.min y1 y2, Float.max y1 y2))

let run () =
  Table.section "E16: top-k 2D orthogonal range reporting";
  let rows = ref [] in
  List.iter
    (fun n ->
      let pts = random_points ~seed:(160_000 + n) ~n in
      let queries = random_rects ~seed:(161_000 + n) ~n:40 in
      let pri, mx =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            (Pri.build pts, Max.build pts))
      in
      let q_pri =
        Workloads.per_query_ios
          (fun q -> ignore (Pri.query pri q ~tau:Float.infinity))
          queries
      in
      let q_max =
        Workloads.per_query_ios (fun q -> ignore (Max.query mx q)) queries
      in
      let params_cal =
        Workloads.calibrate (Inst.params ()) ~q_pri ~q_max ~scale:0.125 ()
      in
      let t2, rj, naive =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            ( Inst.Topk_t2.build ~params:params_cal pts,
              Inst.Topk_rj.build pts,
              Inst.Topk_naive.build pts ))
      in
      let cost f k = Workloads.per_query_ios (fun q -> ignore (f q ~k)) queries in
      rows :=
        [ Table.fi n;
          Table.ff ~d:1 q_pri;
          Table.ff ~d:1 q_max;
          Table.ff ~d:1 (cost (Inst.Topk_t2.query t2) 10);
          Table.ff ~d:1 (cost (Inst.Topk_t2.query t2) 100);
          Table.ff ~d:1 (cost (Inst.Topk_rj.query rj) 10);
          Table.ff ~d:1 (cost (Inst.Topk_naive.query naive) 10) ]
        :: !rows)
    (Workloads.sizes [ 2048; 8192; 32_768; 131_072 ]);
  Table.print
    ~title:
      "Average I/Os per top-k orthogonal range query (thm2 with calibrated \
       constants)"
    ~header:
      [ "n"; "Q_pri"; "Q_max"; "thm2 k=10"; "thm2 k=100"; "rj14 k=10";
        "naive k=10" ]
    (List.rev !rows);
  Table.note
    "Same story as E11 on a different problem: polylog reductions vs a \
     linear scan and a log-multiplied binary-search baseline."
