(** Shared workload builders and measurement helpers for the
    experiment harness. *)

val em_model : Topk_em.Config.t
(** The cost model all experiments run under: EM with [B = 64] (the
    paper's minimum block size). *)

val quick : bool ref
(** Set by [--quick]: experiments shrink their sweeps. *)

val sizes : int list -> int list
(** Identity, or the two extremes under [--quick]. *)

val trials : int -> int
(** Identity, or a tenth under [--quick]. *)

val intervals :
  seed:int -> shape:Topk_util.Gen.interval_shape -> n:int ->
  Topk_interval.Interval.t array

val stab_queries : seed:int -> n:int -> float array

val avg_ios : (unit -> unit) -> runs:int -> float
(** Average I/Os per invocation under {!em_model}. *)

val per_query_ios : ('a -> unit) -> 'a array -> float
(** Average I/Os per element of the query batch under {!em_model}. *)

val measured_q_pri_interval : Topk_interval.Seg_stab.t -> queries:float array -> float
(** Empirical [Q_pri(n)]: average I/Os of a prioritized query whose
    threshold is above every weight (pure navigation, [t = 0]). *)

val measured_q_max_interval : Topk_interval.Slab_max.t -> queries:float array -> float

val calibrate :
  Topk_core.Params.t -> q_pri:float -> q_max:float -> ?scale:float -> unit ->
  Topk_core.Params.t
(** Replace the asymptotic cost estimates with measured constants (what
    a practitioner tuning the structure would do) and optionally apply
    the [coreset_scale] ablation knob from DESIGN.md section 6. *)
