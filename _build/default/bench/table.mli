(** Fixed-width table printing for the experiment harness.  Every
    experiment prints one or more of these; EXPERIMENTS.md records the
    same rows. *)

val print : title:string -> header:string list -> string list list -> unit
(** Columns are sized to the widest cell; the first column is left
    aligned, the rest right aligned. *)

val fi : int -> string
(** Format an int. *)

val ff : ?d:int -> float -> string
(** Format a float with [d] decimals (default 2). *)

val fx : ?d:int -> float -> string
(** As {!ff} but appends "x" (ratios). *)

val section : string -> unit
(** Print an experiment banner. *)

val note : string -> unit
(** Print an indented free-form remark under a table. *)
