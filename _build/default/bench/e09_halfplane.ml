(* E9 (Theorem 3, first bullet + onion-layer profile): 2D halfplane
   top-k via Theorem 2 over the onion-layer prioritized structure and
   the hull-tournament max structure.

   Two parameterizations are shown: the paper's asymptotic constants
   (at laptop n the ladder base B*Q_max exceeds n/4, so queries
   legitimately degenerate to scans) and a calibrated one (Q_pri/Q_max
   set to their measured values, coreset_scale = 1/8) that exercises
   the round machinery. *)

module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module P2 = Topk_geom.Point2
module Hp = Topk_geom.Halfplane
module Layers = Topk_geom.Layers
module H = Topk_halfspace
module Inst = Topk_halfspace.Instances

let random_points ~seed ~n =
  let rng = Rng.create seed in
  P2.of_coords rng
    (Array.map (fun c -> (c.(0), c.(1))) (Gen.points rng ~n ~d:2))

let run () =
  Table.section "E9: top-k 2D halfplane reporting (Theorem 3, bullet 1)";
  let rows = ref [] in
  List.iter
    (fun n ->
      let pts = random_points ~seed:(90_000 + n) ~n in
      let rng = Rng.create (91_000 + n) in
      let queries = Array.map Hp.of_triple (Gen.halfplanes rng ~n:40) in
      let layers = Layers.build pts in
      let pri, mx =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            (H.Hp_pri.build pts, H.Hp_max.build pts))
      in
      let q_pri =
        Workloads.per_query_ios
          (fun q -> ignore (H.Hp_pri.query pri q ~tau:Float.infinity))
          queries
      in
      let q_max =
        Workloads.per_query_ios (fun q -> ignore (H.Hp_max.query mx q)) queries
      in
      let params_cal =
        Workloads.calibrate (Inst.params2 ()) ~q_pri ~q_max ~scale:0.125 ()
      in
      let t2_paper, t2_cal =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            ( Inst.Topk2_t2.build ~params:(Inst.params2 ()) pts,
              Inst.Topk2_t2.build ~params:params_cal pts ))
      in
      let cost t k =
        Workloads.per_query_ios
          (fun q -> ignore (Inst.Topk2_t2.query t q ~k))
          queries
      in
      rows :=
        [ Table.fi n;
          Table.fi (Layers.layer_count layers);
          Table.ff ~d:1 q_pri;
          Table.ff ~d:1 q_max;
          Table.ff ~d:1 (cost t2_paper 10);
          Table.ff ~d:1 (cost t2_cal 1);
          Table.ff ~d:1 (cost t2_cal 10);
          Table.ff ~d:1 (cost t2_cal 100);
          Table.fx (cost t2_cal 10 /. (q_pri +. q_max)) ]
        :: !rows)
    (Workloads.sizes [ 1024; 4096; 16_384; 65_536 ]);
  Table.print
    ~title:
      "Onion depth, black-box costs, and Theorem 2 query I/Os (paper \
       constants vs calibrated)"
    ~header:
      [ "n"; "layers"; "Q_pri"; "Q_max"; "paper k=10"; "cal k=1";
        "cal k=10"; "cal k=100"; "cal-overhead" ]
    (List.rev !rows);
  Table.note
    "Claim: Q_top = O(Q_pri + Q_max) in expectation — the calibrated \
     overhead column stays O(1) as n grows; with paper constants the \
     ladder is empty below n ~ B*Q_max*4 and the (then optimal) scan \
     answers.";
  Table.note
    "The onion depth (~n^(2/3) on uniform points) drives the build cost, \
     not the query cost."
