(* E7: the paper's reductions vs the prior art on one chart — the
   Rahul-Janardan binary-search reduction (eqs. 1-2, with its
   multiplicative (k/B) log n output term) and the naive scan.  The
   crossovers are the paper's Section 1.2 motivation. *)

module Gen = Topk_util.Gen
module Inst = Topk_interval.Instances

let run () =
  Table.section
    "E7: reductions vs baselines on interval stabbing (k sweep, crossovers)";
  let n = if !Workloads.quick then 16_384 else 131_072 in
  let elems =
    Workloads.intervals ~seed:70_000 ~shape:Gen.Mixed_intervals ~n
  in
  let queries = Workloads.stab_queries ~seed:71 ~n:60 in
  let t1, t2, rj, rjc, naive =
    Topk_em.Config.with_model Workloads.em_model (fun () ->
        let params = Inst.params () in
        ( Inst.Topk_t1.build ~params elems,
          Inst.Topk_t2.build ~params elems,
          Inst.Topk_rj.build elems,
          Inst.Topk_rj_counting.build elems,
          Inst.Topk_naive.build elems ))
  in
  let rows = ref [] in
  let k = ref 1 in
  while !k <= n do
    let kk = !k in
    let cost f = Workloads.per_query_ios (fun q -> ignore (f q ~k:kk)) queries in
    let c1 = cost (Inst.Topk_t1.query t1) in
    let c2 = cost (Inst.Topk_t2.query t2) in
    let crj = cost (Inst.Topk_rj.query rj) in
    let crjc = cost (Inst.Topk_rj_counting.query rjc) in
    let cn = cost (Inst.Topk_naive.query naive) in
    let winner =
      let cands =
        [ ("thm1", c1); ("thm2", c2); ("rj14", crj); ("rj-cnt", crjc);
          ("naive", cn) ]
      in
      fst (List.fold_left (fun (bn, bc) (nm, c) ->
               if c < bc then (nm, c) else (bn, bc))
             (List.hd cands) (List.tl cands))
    in
    rows :=
      [ Table.fi kk; Table.ff ~d:1 c1; Table.ff ~d:1 c2; Table.ff ~d:1 crj;
        Table.ff ~d:1 crjc; Table.ff ~d:1 cn; winner ]
      :: !rows;
    k := !k * 8
  done;
  Table.print
    ~title:(Printf.sprintf "Average I/Os per top-k query (n = %d, B = 64)" n)
    ~header:
      [ "k"; "thm1"; "thm2"; "rj14 (eq.1-2)"; "rj-counting (sec.2)"; "naive";
        "winner" ]
    (List.rev !rows);
  Table.note
    "Expected shape: thm2 tracks Q_pri + Q_max + k/B throughout; rj14 pays \
     ~log n probes plus a (k/B) log n output term, so the gap to thm2 \
     widens with k; rj-counting pays (Q_cnt + Q_rep) log n but reports \
     output-sensitively; naive is flat at n/B and wins only once \
     k = Omega(n)."
