(* E5 (Theorem 2): expected query cost O(Q_pri + Q_max + k/B) — the
   overhead over the black boxes stays flat in both n and k, and the
   round-failure rate stays under Lemma 3's 0.91. *)

module Gen = Topk_util.Gen
module Seg = Topk_interval.Seg_stab
module Max = Topk_interval.Slab_max
module Inst = Topk_interval.Instances

let run () =
  Table.section
    "E5: Theorem 2 on interval stabbing (no expected degradation)";
  let b = float_of_int Workloads.em_model.Topk_em.Config.b in
  let rows = ref [] in
  List.iter
    (fun n ->
      let elems =
        Workloads.intervals ~seed:(50_000 + n) ~shape:Gen.Mixed_intervals ~n
      in
      let queries = Workloads.stab_queries ~seed:(n + 1) ~n:100 in
      let pri, mx, t2 =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            ( Seg.build elems,
              Max.build elems,
              Inst.Topk_t2.build ~params:(Inst.params ()) elems ))
      in
      let q_pri = Workloads.measured_q_pri_interval pri ~queries in
      let q_max = Workloads.measured_q_max_interval mx ~queries in
      let black_box = q_pri +. q_max in
      let row_for k =
        let q =
          Workloads.per_query_ios
            (fun qq -> ignore (Inst.Topk_t2.query t2 qq ~k))
            queries
        in
        (q -. (float_of_int k /. b)) /. black_box
      in
      let o1 = row_for 1 and o16 = row_for 16 and o256 = row_for 256
      and o4096 = row_for 4096 in
      let run = Inst.Topk_t2.rounds_run t2
      and failed = Inst.Topk_t2.rounds_failed t2 in
      let fail_rate =
        if run = 0 then 0. else float_of_int failed /. float_of_int run
      in
      rows :=
        [ Table.fi n; Table.ff ~d:1 q_pri; Table.ff ~d:1 q_max;
          Table.fx o1; Table.fx o16; Table.fx o256; Table.fx o4096;
          Table.ff ~d:3 fail_rate ]
        :: !rows)
    (Workloads.sizes [ 4096; 16_384; 65_536; 262_144; 524_288 ]);
  Table.print
    ~title:
      "Overhead (Q_top - k/B) / (Q_pri + Q_max), which eq. (6) promises \
       stays O(1) in both n and k"
    ~header:
      [ "n"; "Q_pri"; "Q_max"; "k=1"; "k=16"; "k=256"; "k=4096";
        "round-fail" ]
    (List.rev !rows);
  Table.note
    "Claim (eq. 6): every overhead column is bounded by a constant; \
     round-fail stays below Lemma 3's 0.91 bound (typically far below)."
