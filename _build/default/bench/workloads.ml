module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module Stats = Topk_em.Stats
module Config = Topk_em.Config

let em_model = Config.em ~b:64 ()

let quick = ref false

let sizes l =
  if not !quick then l
  else
    match l with
    | [] -> []
    | [ x ] -> [ x ]
    | x :: rest -> [ x; List.nth rest (List.length rest - 1) ]

let trials n = if !quick then max 10 (n / 10) else n

let intervals ~seed ~shape ~n =
  let rng = Rng.create seed in
  Topk_interval.Interval.of_spans rng (Gen.intervals rng ~shape ~n)

let stab_queries ~seed ~n =
  let rng = Rng.create (seed + 7919) in
  Gen.stab_queries rng ~n

let avg_ios f ~runs =
  Config.with_model em_model (fun () ->
      let (), s =
        Stats.measure (fun () ->
            for _ = 1 to runs do
              f ()
            done)
      in
      float_of_int s.Stats.ios /. float_of_int (max 1 runs))

let per_query_ios f queries =
  Config.with_model em_model (fun () ->
      let (), s = Stats.measure (fun () -> Array.iter f queries) in
      float_of_int s.Stats.ios /. float_of_int (max 1 (Array.length queries)))

let measured_q_pri_interval s ~queries =
  per_query_ios
    (fun q -> ignore (Topk_interval.Seg_stab.query s q ~tau:Float.infinity))
    queries

let measured_q_max_interval m ~queries =
  per_query_ios (fun q -> ignore (Topk_interval.Slab_max.query m q)) queries

let calibrate params ~q_pri ~q_max ?(scale = 1.) () =
  {
    params with
    Topk_core.Params.q_pri = (fun _ -> Float.max 1. q_pri);
    q_max = (fun _ -> Float.max 1. q_max);
    coreset_scale = scale;
  }
