(* E10 (Theorem 3, bullets 2-3): in the polynomial-Q_pri regime
   (kd-tree halfspace reporting, Q_pri ~ n^(1-1/d)), Theorem 1 loses
   nothing: Q_top/Q_pri stays flat as n grows — the "hard queries"
   remark after Theorem 1.  Also Corollary 1: circular queries via the
   lifting map cost the same as native ball queries. *)

module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module H = Topk_halfspace
module Inst = Topk_halfspace.Instances

let d = 4

let random_points ~seed ~n =
  let rng = Rng.create seed in
  H.Pointd.of_coords rng (Gen.points rng ~n ~d)

let random_halfspaces ~seed ~n =
  let rng = Rng.create seed in
  Array.init n (fun _ ->
      let normal = Array.init d (fun _ -> Rng.uniform rng -. 0.5) in
      if Array.for_all (fun a -> Float.abs a < 1e-9) normal then
        normal.(0) <- 1.;
      let anchor = Array.init d (fun _ -> Rng.uniform rng) in
      let c = ref 0. in
      Array.iteri (fun i a -> c := !c +. (a *. anchor.(i))) normal;
      H.Predicates.Halfspace.make ~normal ~c:!c)

(* Empirical Q_pri: reporting cost of a full (tau = -inf) query minus
   the t/B output term. *)
let measured_q_pri pri queries =
  let b = float_of_int Workloads.em_model.Topk_em.Config.b in
  let total = ref 0. and count = ref 0. in
  Array.iter
    (fun q ->
      let result = ref 0 in
      let ios =
        Workloads.per_query_ios
          (fun q ->
            result :=
              List.length (Inst.Kd_hs_pri.query pri q ~tau:Float.neg_infinity))
          [| q |]
      in
      total := !total +. ios -. (float_of_int !result /. b);
      count := !count +. 1.)
    queries;
  !total /. Float.max 1. !count

let run () =
  Table.section
    "E10: Theorem 1 in the polynomial regime (kd-tree halfspace, d = 4)";
  let rows = ref [] in
  List.iter
    (fun n ->
      let pts = random_points ~seed:(100_000 + n) ~n in
      let queries = random_halfspaces ~seed:(101_000 + n) ~n:30 in
      let pri, t1 =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            ( Inst.Kd_hs_pri.build pts,
              Inst.Topkd_t1.build ~params:(Inst.paramsd ~d) pts ))
      in
      let q_pri = measured_q_pri pri queries in
      let q_top k =
        Workloads.per_query_ios
          (fun q -> ignore (Inst.Topkd_t1.query t1 q ~k))
          queries
      in
      let poly = float_of_int n ** (1. -. (1. /. float_of_int d)) in
      rows :=
        [ Table.fi n;
          Table.ff ~d:0 q_pri;
          Table.ff ~d:0 poly;
          Table.ff ~d:3 (q_pri /. poly);
          Table.ff ~d:0 (q_top 8);
          Table.ff ~d:0 (q_top 64);
          Table.fx (q_top 8 /. q_pri) ]
        :: !rows)
    (Workloads.sizes [ 4096; 16_384; 65_536; 262_144 ]);
  Table.print
    ~title:
      "Measured Q_pri (reporting cost minus t/B) vs n^(3/4), and Theorem \
       1's top-k cost"
    ~header:
      [ "n"; "Q_pri"; "n^(1-1/d)"; "Q_pri/n^(3/4)"; "top-8"; "top-64";
        "Q_top/Q_pri" ]
    (List.rev !rows);
  Table.note
    "Claim: once Q_pri >= (n/B)^eps, eq. (4) collapses to Q_top = \
     O(Q_pri): the last column must stay bounded by a constant as n \
     grows.  Here it is even < 1: at laptop n the reduction's monitored \
     scan (n/B I/Os) is cheaper than the kd boundary (~2 n^(3/4)); the \
     two meet around n ~ 2.8e8, beyond which the ratio levels off.";

  (* Corollary 1: circular reporting by lifting. *)
  Table.section "E10b: Corollary 1 (circular reporting via the lifting map)";
  let rows = ref [] in
  List.iter
    (fun n ->
      let rng = Rng.create (103_000 + n) in
      let pts3 = H.Pointd.of_coords rng (Gen.points rng ~n ~d:3) in
      let balls =
        Array.map
          (fun (c, r) -> H.Predicates.Ball.make ~center:c ~radius:r)
          (Gen.balls rng ~n:30 ~d:3)
      in
      let native, lifted =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            ( Inst.Topk_ball_t1.build ~params:(Inst.paramsd ~d:3) pts3,
              Inst.Topkd_t1.build ~params:(Inst.paramsd ~d:4)
                (H.Lifting.lift_points pts3) ))
      in
      let native_ios =
        Workloads.per_query_ios
          (fun b -> ignore (Inst.Topk_ball_t1.query native b ~k:10))
          balls
      in
      let lifted_ios =
        Workloads.per_query_ios
          (fun b ->
            ignore (Inst.Topkd_t1.query lifted (H.Lifting.lift_ball b) ~k:10))
          balls
      in
      rows :=
        [ Table.fi n; Table.ff ~d:0 native_ios; Table.ff ~d:0 lifted_ios;
          Table.fx (lifted_ios /. native_ios) ]
        :: !rows)
    (Workloads.sizes [ 4096; 16_384; 65_536 ]);
  Table.print
    ~title:"Top-10 ball queries: native 3D kd vs lifted 4D halfspace"
    ~header:[ "n"; "native ios"; "lifted ios"; "lifted/native" ]
    (List.rev !rows);
  Table.note
    "Claim: the lifting map turns a d-ball query into a (d+1)-halfspace \
     query with the same output and comparable polynomial cost."
