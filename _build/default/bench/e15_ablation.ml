(* E15: the design-choice ablations called out in DESIGN.md section 6.

   (a) coreset_scale: Theorem 1's f = 12*lambda*B*Q_pri(n) is a proof
       constant; shrinking it shrinks every core-set (less space,
       earlier chain engagement) but erodes Lemma 2's failure budget,
       visible as correctness fallbacks.
   (b) sigma: Theorem 2's ladder ratio (1/20 in the paper) trades the
       number of rungs (space, resample cost) against escalation
       speed; the proof needs (1 + sigma) * 0.91 < 1, i.e.
       sigma < 0.0989 — we sweep across that boundary and watch the
       expected cost (the algorithm stays correct either way; only
       the geometric-sum argument for the cost breaks). *)

module Gen = Topk_util.Gen
module Inst = Topk_interval.Instances
module Params = Topk_core.Params

let n = 65_536

let workload () =
  ( Workloads.intervals ~seed:150_000 ~shape:Gen.Mixed_intervals ~n,
    Workloads.stab_queries ~seed:150_001 ~n:60 )

let run_scale () =
  let elems, queries = workload () in
  let rows = ref [] in
  List.iter
    (fun scale ->
      let params = { (Inst.params ()) with Params.coreset_scale = scale } in
      let t1 =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            Inst.Topk_t1.build ~params elems)
      in
      let cost k =
        Workloads.per_query_ios
          (fun q -> ignore (Inst.Topk_t1.query t1 q ~k))
          queries
      in
      let info = Inst.Topk_t1.info t1 in
      rows :=
        [ Table.ff ~d:3 scale;
          Table.fi info.Inst.Topk_t1.f;
          Table.fi info.Inst.Topk_t1.chain_levels;
          Table.fi info.Inst.Topk_t1.coreset_words;
          Table.ff ~d:1 (cost 10);
          Table.ff ~d:1 (cost 1000);
          Table.fi (Inst.Topk_t1.fallbacks t1) ]
        :: !rows)
    [ 1.0; 0.25; 0.05; 0.01 ];
  Table.print
    ~title:
      (Printf.sprintf
         "(a) Theorem 1 coreset_scale sweep (interval stabbing, n = %d)" n)
    ~header:
      [ "scale"; "f"; "chain"; "coreset words"; "top-10 ios";
        "top-1000 ios"; "fallbacks" ]
    (List.rev !rows);
  Table.note
    "Smaller f engages the core-set chain earlier (deeper chains, more \
     core-set words) and keeps queries cheap; the whp guarantees hold \
     down to f >= ceil(8*lambda*ln n), so fallbacks stay ~0 throughout."

let run_sigma () =
  let elems, queries = workload () in
  let rows = ref [] in
  List.iter
    (fun sigma ->
      let params =
        {
          (Inst.params ()) with
          Params.sigma;
          (* Engage the rounds at this n. *)
          coreset_scale = 0.125;
        }
      in
      let t2 =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            Inst.Topk_t2.build ~params elems)
      in
      let cost =
        Workloads.per_query_ios
          (fun q -> ignore (Inst.Topk_t2.query t2 q ~k:10))
          queries
      in
      let info = Inst.Topk_t2.info t2 in
      let run = Inst.Topk_t2.rounds_run t2 in
      let failed = Inst.Topk_t2.rounds_failed t2 in
      rows :=
        [ Table.ff ~d:3 sigma;
          (if (1. +. sigma) *. 0.91 < 1. then "yes" else "NO");
          Table.fi info.Inst.Topk_t2.rungs;
          Table.fi info.Inst.Topk_t2.sample_words;
          Table.ff ~d:1 cost;
          Table.ff ~d:3
            (if run = 0 then 0. else float_of_int failed /. float_of_int run) ]
        :: !rows)
    [ 0.01; 0.05; 0.09; 0.25; 1.0 ];
  Table.print
    ~title:
      (Printf.sprintf "(b) Theorem 2 ladder-ratio sigma sweep (n = %d)" n)
    ~header:
      [ "sigma"; "(1+s)*0.91<1"; "rungs"; "sample words"; "top-10 ios";
        "round-fail" ]
    (List.rev !rows);
  Table.note
    "Small sigma: many rungs (more samples, more space), slow escalation; \
     large sigma: few rungs, but past 0.0989 the proof's geometric sum \
     diverges — in practice large sigma still answers correctly and the \
     failure rate is what limits it."

(* (c) black-box swap: the reductions are agnostic to the prioritized
   structure; exchange the O(n log n)-space segment tree for the O(n)
   interval tree and compare. *)
let run_blackbox () =
  let rows = ref [] in
  List.iter
    (fun nn ->
      let elems =
        Workloads.intervals ~seed:(152_000 + nn) ~shape:Gen.Mixed_intervals
          ~n:nn
      in
      let queries = Workloads.stab_queries ~seed:(152_001 + nn) ~n:60 in
      let seg, itree, t2_seg, t2_itree =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            let params = Inst.params () in
            ( Topk_interval.Seg_stab.build elems,
              Topk_interval.Itree_pri.build elems,
              Inst.Topk_t2.build ~params elems,
              Inst.Topk_t2_itree.build ~params elems ))
      in
      let q_seg = Workloads.measured_q_pri_interval seg ~queries in
      let q_itree =
        Workloads.per_query_ios
          (fun q ->
            ignore (Topk_interval.Itree_pri.query itree q ~tau:Float.infinity))
          queries
      in
      let cost f = Workloads.per_query_ios (fun q -> ignore (f q ~k:10)) queries in
      rows :=
        [ Table.fi nn;
          Table.fi (Topk_interval.Seg_stab.space_words seg);
          Table.fi (Topk_interval.Itree_pri.space_words itree);
          Table.ff ~d:1 q_seg;
          Table.ff ~d:1 q_itree;
          Table.ff ~d:1 (cost (Inst.Topk_t2.query t2_seg));
          Table.ff ~d:1 (cost (Inst.Topk_t2_itree.query t2_itree)) ]
        :: !rows)
    (Workloads.sizes [ 16_384; 131_072 ]);
  Table.print
    ~title:
      "(c) black-box swap inside Theorem 2: segment tree (n log n space) \
       vs interval tree (linear space)"
    ~header:
      [ "n"; "seg words"; "itree words"; "Q_pri seg"; "Q_pri itree";
        "thm2(seg) k=10"; "thm2(itree) k=10" ]
    (List.rev !rows);
  Table.note
    "Same answers from both (the reduction never looks inside); the \
     interval tree trades ~log n space for one extra log in Q_pri — \
     the trade Section 5.1's choice of black box is about."

let run () =
  Table.section "E15: design-choice ablations (DESIGN.md section 6)";
  run_scale ();
  run_sigma ();
  run_blackbox ()
