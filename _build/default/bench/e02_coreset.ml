(* E2 (Lemma 2): core-set size and rank capture on interval stabbing,
   the problem whose distinct outcomes we can enumerate (one per
   elementary slab, so at most 2n + 1). *)

module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module I = Topk_interval.Interval
module Core_set = Topk_core.Core_set
module RS = Topk_core.Rank_sampling

let lambda = 1.

let run () =
  Table.section "E2: Lemma 2 (top-k core-sets on interval stabbing)";
  let rows = ref [] in
  List.iter
    (fun (shape, shape_name, n) ->
      List.iter
        (fun kk ->
          let rng = Rng.create (20_000 + n + kk) in
          let elems = Workloads.intervals ~seed:(n + kk) ~shape ~n in
          let cs = Core_set.build rng ~lambda ~k:kk elems in
          let bound = Core_set.size_bound ~lambda ~k:kk ~n in
          (* Check rank capture over sampled distinct outcomes. *)
          let queries = Workloads.stab_queries ~seed:(n * 3 + kk) ~n:300 in
          let checked = ref 0 and violated = ref 0 in
          Array.iter
            (fun q ->
              let q_d =
                Array.of_list
                  (List.filter
                     (fun itv -> I.contains itv q)
                     (Array.to_list elems))
              in
              if Array.length q_d >= 4 * kk then begin
                incr checked;
                let q_r =
                  Array.of_list
                    (List.filter
                       (fun itv -> I.contains itv q)
                       (Array.to_list cs.Core_set.elems))
                in
                if Array.length q_r < cs.Core_set.rank_target then
                  incr violated
                else begin
                  let e =
                    Topk_util.Select.nth_largest ~cmp:I.compare_weight
                      (Array.copy q_r) cs.Core_set.rank_target
                  in
                  let rank = RS.rank_of ~cmp:I.compare_weight q_d e in
                  if rank < kk || rank > 4 * kk then incr violated
                end
              end)
            queries;
          rows :=
            [ shape_name; Table.fi n; Table.fi kk;
              Table.fi (Array.length cs.Core_set.elems); Table.fi bound;
              Table.ff ~d:4 cs.Core_set.p; Table.fi cs.Core_set.retries;
              Table.fi !checked; Table.fi !violated ]
            :: !rows)
        [ 200; 1000 ])
    (let base =
       [ (Gen.Mixed_intervals, "mixed", 60_000);
         (Gen.Nested_intervals, "nested", 20_000);
         (Gen.Nested_intervals, "nested", 60_000) ]
     in
     if !Workloads.quick then [ List.hd (List.rev base) ] else base);
  Table.print
    ~title:
      "Core-set size vs the 12*lambda*(n/K)*ln n bound, and rank capture \
       over large-output stab queries"
    ~header:
      [ "shape"; "n"; "K"; "|R|"; "bound"; "p"; "retries"; "big-queries";
        "violations" ]
    (List.rev !rows);
  Table.note
    "Claim: |R| <= bound, and for every q with |q(D)| >= 4K the \
     rank-ceil(8*lambda*ln n) element of q(R) has rank in [K, 4K] in q(D)."
