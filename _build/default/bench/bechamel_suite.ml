(* Wall-clock microbenchmarks (one Bechamel test per experiment
   family) complementing the I/O-count tables: the same structures,
   measured in nanoseconds per query on the host machine. *)

open Bechamel
module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module I_inst = Topk_interval.Instances
module H = Topk_halfspace
module H_inst = Topk_halfspace.Instances
module E_inst = Topk_enclosure.Instances
module D_inst = Topk_dominance.Instances

let n = 16_384

let interval_tests () =
  let elems =
    Workloads.intervals ~seed:900 ~shape:Gen.Mixed_intervals ~n
  in
  let queries = Workloads.stab_queries ~seed:901 ~n:64 in
  let params = I_inst.params () in
  let pri = Topk_interval.Seg_stab.build elems in
  let mx = Topk_interval.Slab_max.build elems in
  let t1 = I_inst.Topk_t1.build ~params elems in
  let t2 = I_inst.Topk_t2.build ~params elems in
  let rj = I_inst.Topk_rj.build elems in
  let naive = I_inst.Topk_naive.build elems in
  let cursor = ref 0 in
  let next () =
    cursor := (!cursor + 1) mod Array.length queries;
    queries.(!cursor)
  in
  [
    Test.make ~name:"interval/pri-query (E4)"
      (Staged.stage (fun () ->
           ignore (Topk_interval.Seg_stab.query pri (next ()) ~tau:Float.infinity)));
    Test.make ~name:"interval/max-query (E5)"
      (Staged.stage (fun () -> ignore (Topk_interval.Slab_max.query mx (next ()))));
    Test.make ~name:"interval/thm1 top-10 (E4)"
      (Staged.stage (fun () -> ignore (I_inst.Topk_t1.query t1 (next ()) ~k:10)));
    Test.make ~name:"interval/thm2 top-10 (E5)"
      (Staged.stage (fun () -> ignore (I_inst.Topk_t2.query t2 (next ()) ~k:10)));
    Test.make ~name:"interval/rj14 top-10 (E7)"
      (Staged.stage (fun () -> ignore (I_inst.Topk_rj.query rj (next ()) ~k:10)));
    Test.make ~name:"interval/naive top-10 (E7)"
      (Staged.stage (fun () ->
           ignore (I_inst.Topk_naive.query naive (next ()) ~k:10)));
  ]

let dynamic_tests () =
  let rng = Rng.create 902 in
  let s = I_inst.Dyn_topk.build ~params:(I_inst.params ()) [||] in
  let id = ref 0 in
  [
    Test.make ~name:"interval/dynamic insert (E8)"
      (Staged.stage (fun () ->
           incr id;
           let lo = Rng.uniform rng in
           I_inst.Dyn_topk.insert s
             (Topk_interval.Interval.make ~id:!id ~lo
                ~hi:(min 1. (lo +. 0.1))
                ~weight:(float_of_int !id) ())));
  ]

let halfplane_tests () =
  let nn = 4096 in
  let rng = Rng.create 903 in
  let pts =
    Topk_geom.Point2.of_coords rng
      (Array.map (fun c -> (c.(0), c.(1))) (Gen.points rng ~n:nn ~d:2))
  in
  let queries = Array.map Topk_geom.Halfplane.of_triple (Gen.halfplanes rng ~n:64) in
  let t2 = H_inst.Topk2_t2.build ~params:(H_inst.params2 ()) pts in
  let cursor = ref 0 in
  let next () =
    cursor := (!cursor + 1) mod Array.length queries;
    queries.(!cursor)
  in
  [
    Test.make ~name:"halfplane/thm2 top-10 (E9)"
      (Staged.stage (fun () -> ignore (H_inst.Topk2_t2.query t2 (next ()) ~k:10)));
  ]

let kd_tests () =
  let d = 4 in
  let rng = Rng.create 904 in
  let pts = H.Pointd.of_coords rng (Gen.points rng ~n ~d) in
  let t1 = H_inst.Topkd_t1.build ~params:(H_inst.paramsd ~d) pts in
  let queries =
    Array.init 64 (fun _ ->
        let normal = Array.init d (fun _ -> Rng.uniform rng -. 0.5) in
        if Array.for_all (fun a -> Float.abs a < 1e-9) normal then
          normal.(0) <- 1.;
        let anchor = Array.init d (fun _ -> Rng.uniform rng) in
        let c = ref 0. in
        Array.iteri (fun i a -> c := !c +. (a *. anchor.(i))) normal;
        H.Predicates.Halfspace.make ~normal ~c:!c)
  in
  let cursor = ref 0 in
  let next () =
    cursor := (!cursor + 1) mod Array.length queries;
    queries.(!cursor)
  in
  [
    Test.make ~name:"kd4/thm1 top-8 (E10)"
      (Staged.stage (fun () -> ignore (H_inst.Topkd_t1.query t1 (next ()) ~k:8)));
  ]

let enclosure_tests () =
  let nn = 8192 in
  let rng = Rng.create 905 in
  let rects = Topk_enclosure.Rect.of_boxes rng (Gen.rectangles rng ~n:nn) in
  let t2 = E_inst.Topk_t2.build ~params:(E_inst.params ()) rects in
  let queries = Array.init 64 (fun _ -> (Rng.uniform rng, Rng.uniform rng)) in
  let cursor = ref 0 in
  let next () =
    cursor := (!cursor + 1) mod Array.length queries;
    queries.(!cursor)
  in
  [
    Test.make ~name:"enclosure/thm2 top-10 (E11)"
      (Staged.stage (fun () -> ignore (E_inst.Topk_t2.query t2 (next ()) ~k:10)));
  ]

let dominance_tests () =
  let nn = 8192 in
  let rng = Rng.create 906 in
  let hotels = D_inst.hotels rng ~n:nn in
  let params =
    { (D_inst.params ()) with Topk_core.Params.coreset_scale = 1. /. 64. }
  in
  let t2 = D_inst.Topk_t2.build ~params hotels in
  let queries =
    Array.init 64 (fun _ ->
        ( 40. +. Rng.float rng 460.,
          Rng.float rng 25.,
          -.(1. +. Rng.float rng 4.) ))
  in
  let cursor = ref 0 in
  let next () =
    cursor := (!cursor + 1) mod Array.length queries;
    queries.(!cursor)
  in
  [
    Test.make ~name:"dominance/thm2 top-10 (E12)"
      (Staged.stage (fun () -> ignore (D_inst.Topk_t2.query t2 (next ()) ~k:10)));
  ]

let run () =
  Table.section "Bechamel wall-clock microbenchmarks (ns per query)";
  let tests =
    Test.make_grouped ~name:"topk"
      (interval_tests () @ dynamic_tests () @ halfplane_tests ()
      @ kd_tests () @ enclosure_tests () @ dominance_tests ())
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns =
          match Analyze.OLS.estimates est with
          | Some (x :: _) -> x
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, ns) -> [ name; Table.ff ~d:0 ns ])
  in
  Table.print ~title:"OLS estimate of run time" ~header:[ "benchmark"; "ns/query" ]
    rows
