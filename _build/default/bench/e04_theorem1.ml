(* E4 (Theorem 1): space blowup S_top/S_pri stays O(1) and the query
   slowdown Q_top/Q_pri grows no faster than log_B n on a polylog
   black box (interval stabbing) — and stays flat on a polynomial
   black box (kd-tree halfspace, E10 presents that half). *)

module Gen = Topk_util.Gen
module Seg = Topk_interval.Seg_stab
module Inst = Topk_interval.Instances

let run () =
  Table.section
    "E4: Theorem 1 on interval stabbing (polylog Q_pri: slowdown <= log_B n)";
  let b = float_of_int Workloads.em_model.Topk_em.Config.b in
  let rows = ref [] in
  List.iter
    (fun n ->
      let elems =
        Workloads.intervals ~seed:(40_000 + n) ~shape:Gen.Mixed_intervals ~n
      in
      let queries = Workloads.stab_queries ~seed:n ~n:100 in
      let pri = Topk_em.Config.with_model Workloads.em_model (fun () -> Seg.build elems) in
      let q_pri = Workloads.measured_q_pri_interval pri ~queries in
      let t1 =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            Inst.Topk_t1.build ~params:(Inst.params ()) elems)
      in
      let q_top k =
        Workloads.per_query_ios
          (fun q -> ignore (Inst.Topk_t1.query t1 q ~k))
          queries
      in
      let q10 = q_top 10 and q1000 = q_top 1000 in
      let log_b_n = log (float_of_int n) /. log b in
      let space_ratio =
        float_of_int (Inst.Topk_t1.space_words t1)
        /. float_of_int (Seg.space_words pri)
      in
      let info = Inst.Topk_t1.info t1 in
      rows :=
        [ Table.fi n; Table.ff ~d:1 q_pri;
          Table.ff ~d:1 (q10 -. 10. /. b); Table.ff ~d:1 (q1000 -. 1000. /. b);
          Table.fx ((q10 -. 10. /. b) /. q_pri);
          Table.ff ~d:2 log_b_n;
          Table.fx space_ratio;
          Table.fi info.Inst.Topk_t1.f;
          Table.fi info.Inst.Topk_t1.ladder_rungs;
          Table.fi (Inst.Topk_t1.fallbacks t1) ]
        :: !rows)
    (Workloads.sizes [ 4096; 16_384; 65_536; 262_144; 524_288 ]);
  Table.print
    ~title:
      "Per-query I/Os (output term k/B subtracted) vs the measured \
       prioritized cost"
    ~header:
      [ "n"; "Q_pri"; "Q_top(k=10)"; "Q_top(k=1000)"; "slowdown";
        "log_B n"; "S_top/S_pri"; "f"; "rungs"; "fallbacks" ]
    (List.rev !rows);
  Table.note
    "Claim (eqs. 3-4): S_top = O(S_pri); Q_top/Q_pri <= O(log_B n).  The \
     slowdown column must grow no faster than the log_B n column.";
  Table.note
    "f = 12*lambda*B*Q_pri(n) (eq. 9): queries with k <= f use the \
     core-set chain; larger k the rung ladder."
