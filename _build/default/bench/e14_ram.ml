(* E14: "All the techniques proposed work directly in the RAM model as
   well" (abstract / Section 1.1): re-run the Theorem 1 and Theorem 2
   reductions on interval stabbing with B fixed to a constant 1 — every
   element access is one unit — and check the same shapes. *)

module Gen = Topk_util.Gen
module Seg = Topk_interval.Seg_stab
module Max = Topk_interval.Slab_max
module Inst = Topk_interval.Instances

let ram = Topk_em.Config.ram

let per_query_ram f queries =
  Topk_em.Config.with_model ram (fun () ->
      let (), s =
        Topk_em.Stats.measure (fun () -> Array.iter f queries)
      in
      float_of_int s.Topk_em.Stats.ios
      /. float_of_int (max 1 (Array.length queries)))

let run () =
  Table.section "E14: the reductions in the RAM model (B = 1)";
  let rows = ref [] in
  List.iter
    (fun n ->
      let elems =
        Workloads.intervals ~seed:(140_000 + n) ~shape:Gen.Mixed_intervals ~n
      in
      let queries = Workloads.stab_queries ~seed:(n + 3) ~n:60 in
      let pri, mx, t1, t2 =
        Topk_em.Config.with_model ram (fun () ->
            let params = Inst.params () in
            ( Seg.build elems,
              Max.build elems,
              Inst.Topk_t1.build ~params elems,
              Inst.Topk_t2.build ~params elems ))
      in
      let q_pri =
        per_query_ram
          (fun q -> ignore (Seg.query pri q ~tau:Float.infinity))
          queries
      in
      let q_max = per_query_ram (fun q -> ignore (Max.query mx q)) queries in
      let k = 10 in
      let t1c =
        per_query_ram (fun q -> ignore (Inst.Topk_t1.query t1 q ~k)) queries
      in
      let t2c =
        per_query_ram (fun q -> ignore (Inst.Topk_t2.query t2 q ~k)) queries
      in
      rows :=
        [ Table.fi n; Table.ff ~d:1 q_pri; Table.ff ~d:1 q_max;
          Table.ff ~d:1 (t1c -. 10.); Table.ff ~d:1 (t2c -. 10.);
          Table.fx ((t2c -. 10.) /. (q_pri +. q_max)) ]
        :: !rows)
    (Workloads.sizes [ 4096; 16_384; 65_536 ]);
  Table.print
    ~title:
      "RAM-model unit-cost accesses per query (k = 10; output term k \
       subtracted)"
    ~header:[ "n"; "Q_pri"; "Q_max"; "thm1"; "thm2"; "thm2 overhead" ]
    (List.rev !rows);
  Table.note
    "Claim: with B a constant, the same reductions give RAM structures \
     (Theorems 3-6 are stated in RAM); the overhead column must stay \
     O(1) exactly as in the EM run (E5).  Note f = 12*lambda*B*Q_pri \
     shrinks with B = 1, so the chain regime starts much earlier."
