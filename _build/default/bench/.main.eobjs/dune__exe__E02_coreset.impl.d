bench/e02_coreset.ml: Array List Table Topk_core Topk_interval Topk_util Workloads
