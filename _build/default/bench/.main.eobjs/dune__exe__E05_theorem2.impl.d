bench/e05_theorem2.ml: List Table Topk_em Topk_interval Topk_util Workloads
