bench/e09_halfplane.ml: Array Float List Table Topk_em Topk_geom Topk_halfspace Topk_util Workloads
