bench/e16_ortho.ml: Array Float List Table Topk_em Topk_geom Topk_ortho Topk_util Workloads
