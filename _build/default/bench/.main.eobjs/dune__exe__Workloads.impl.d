bench/workloads.ml: Array Float List Topk_core Topk_em Topk_interval Topk_util
