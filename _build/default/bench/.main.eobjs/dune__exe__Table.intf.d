bench/table.mli:
