bench/e12_dominance.ml: Array Float List Table Topk_dominance Topk_em Topk_util Workloads
