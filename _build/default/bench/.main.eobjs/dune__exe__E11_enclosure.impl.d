bench/e11_enclosure.ml: Array Float List Table Topk_em Topk_enclosure Topk_util Workloads
