bench/e14_ram.ml: Array Float List Table Topk_em Topk_interval Topk_util Workloads
