bench/main.mli:
