bench/e10_kd.ml: Array Float List Table Topk_em Topk_halfspace Topk_util Workloads
