bench/e01_rank_sampling.ml: Array Int List Printf Table Topk_core Topk_util Workloads
