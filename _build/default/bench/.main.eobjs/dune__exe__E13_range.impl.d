bench/e13_range.ml: Array Float List Table Topk_em Topk_range Topk_util Workloads
