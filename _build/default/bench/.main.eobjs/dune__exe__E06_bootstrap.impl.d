bench/e06_bootstrap.ml: Array List Table Topk_core Topk_em Topk_interval Topk_util Workloads
