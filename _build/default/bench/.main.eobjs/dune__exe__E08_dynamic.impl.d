bench/e08_dynamic.ml: Array Float List Table Topk_em Topk_interval Topk_range Topk_util Unix Workloads
