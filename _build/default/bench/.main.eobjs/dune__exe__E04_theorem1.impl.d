bench/e04_theorem1.ml: List Table Topk_em Topk_interval Topk_util Workloads
