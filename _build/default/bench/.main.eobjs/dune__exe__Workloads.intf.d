bench/workloads.mli: Topk_core Topk_em Topk_interval Topk_util
