bench/e07_baselines.ml: List Printf Table Topk_em Topk_interval Topk_util Workloads
