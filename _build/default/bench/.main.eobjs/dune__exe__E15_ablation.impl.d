bench/e15_ablation.ml: Float List Printf Table Topk_core Topk_em Topk_interval Topk_util Workloads
