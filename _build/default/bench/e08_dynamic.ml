(* E8 (Theorem 4, dynamic): updates on the dynamic top-k interval
   structure cost O(U_pri + U_max) amortized expected — wall-clock per
   update should grow polylogarithmically, and queries answered mid-
   stream stay correct and cheap. *)

module Rng = Topk_util.Rng
module I = Topk_interval.Interval
module Inst = Topk_interval.Instances
module Dyn = Topk_interval.Instances.Dyn_topk

let now () = Unix.gettimeofday ()

let random_interval rng id =
  let lo = Rng.uniform rng in
  let len = Rng.float rng (1. -. lo) in
  I.make ~id ~lo ~hi:(lo +. len)
    ~weight:(float_of_int id +. Rng.float rng 0.4)
    ()

let run () =
  Table.section
    "E8: dynamic Theorem 2 on interval stabbing (update and query cost)";
  let rows = ref [] in
  List.iter
    (fun n ->
      let rng = Rng.create (80_000 + n) in
      let s =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            Dyn.build ~params:(Inst.params ()) [||])
      in
      (* Insert n elements, then a mixed churn phase. *)
      let t0 = now () in
      let live = ref [] in
      for i = 1 to n do
        let e = random_interval rng i in
        live := e :: !live;
        Dyn.insert s e
      done;
      let insert_us = (now () -. t0) *. 1e6 /. float_of_int n in
      let live_arr = Array.of_list !live in
      let churn = max 100 (n / 4) in
      let t1 = now () in
      for i = 1 to churn do
        if i mod 2 = 0 then
          Dyn.insert s (random_interval rng (n + i))
        else Dyn.delete s live_arr.(Rng.int rng n)
      done;
      let churn_us = (now () -. t1) *. 1e6 /. float_of_int churn in
      let queries = Workloads.stab_queries ~seed:n ~n:50 in
      let q_ios =
        Workloads.per_query_ios (fun q -> ignore (Dyn.query s q ~k:10)) queries
      in
      rows :=
        [ Table.fi n;
          Table.ff ~d:1 insert_us;
          Table.ff ~d:1 churn_us;
          Table.ff ~d:1 q_ios;
          Table.fi (Dyn.resamples s);
          Table.fi (Dyn.size s) ]
        :: !rows)
    (Workloads.sizes [ 2048; 8192; 32_768; 131_072 ]);
  Table.print
    ~title:
      "Amortized wall-clock per update (microseconds) and per-query I/Os \
       (k = 10) under churn"
    ~header:
      [ "n"; "insert us/op"; "churn us/op"; "query ios"; "resamples";
        "final size" ]
    (List.rev !rows);
  Table.note
    "Claim: update cost grows polylogarithmically in n (amortized \
     expected, eq. after (6)); query cost matches the static E5 numbers.";

  (* The same dynamic reduction on a second problem (1D range
     reporting), black boxes swapped wholesale. *)
  let rows = ref [] in
  List.iter
    (fun n ->
      let rng = Rng.create (81_000 + n) in
      let s =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            Topk_range.Instances.Dyn_topk.build
              ~params:(Topk_range.Instances.params ()) [||])
      in
      let t0 = now () in
      for i = 1 to n do
        Topk_range.Instances.Dyn_topk.insert s
          (Topk_range.Wpoint.make ~id:i ~pos:(Rng.uniform rng)
             ~weight:(float_of_int i +. Rng.float rng 0.4)
             ())
      done;
      let insert_us = (now () -. t0) *. 1e6 /. float_of_int n in
      let queries =
        Array.init 50 (fun _ ->
            let a = Rng.uniform rng and b = Rng.uniform rng in
            (Float.min a b, Float.max a b))
      in
      let q_ios =
        Workloads.per_query_ios
          (fun q -> ignore (Topk_range.Instances.Dyn_topk.query s q ~k:10))
          queries
      in
      rows :=
        [ Table.fi n; Table.ff ~d:1 insert_us; Table.ff ~d:1 q_ios;
          Table.fi (Topk_range.Instances.Dyn_topk.resamples s) ]
        :: !rows)
    (Workloads.sizes [ 2048; 16_384; 131_072 ]);
  Table.print
    ~title:"E8b: the same dynamic reduction on 1D range reporting"
    ~header:[ "n"; "insert us/op"; "query ios"; "resamples" ]
    (List.rev !rows);
  Table.note
    "Identical wrapper (Theorem2_dynamic), different black boxes \
     (Bentley-Saxe range tree + head-skipping range max): the update \
     claim is as problem-agnostic as the static one."
