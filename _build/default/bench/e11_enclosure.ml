(* E11 (Theorem 5): top-k 2D point enclosure — the "dating website"
   workload of Section 1.4 — under both reductions (calibrated
   constants), against the prior reduction and the scan. *)

module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module R = Topk_enclosure.Rect
module Enc_pri = Topk_enclosure.Enc_pri
module Enc_max = Topk_enclosure.Enc_max
module Inst = Topk_enclosure.Instances

let run () =
  Table.section "E11: top-k 2D point enclosure (Theorem 5, dating website)";
  let rows = ref [] in
  List.iter
    (fun n ->
      let rng = Rng.create (110_000 + n) in
      let rects = R.of_boxes rng (Gen.rectangles rng ~n) in
      let queries =
        Array.init 40 (fun _ -> (Rng.uniform rng, Rng.uniform rng))
      in
      let pri, mx =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            (Enc_pri.build rects, Enc_max.build rects))
      in
      let q_pri =
        Workloads.per_query_ios
          (fun q -> ignore (Enc_pri.query pri q ~tau:Float.infinity))
          queries
      in
      let q_max =
        Workloads.per_query_ios (fun q -> ignore (Enc_max.query mx q)) queries
      in
      let params_cal =
        Workloads.calibrate (Inst.params ()) ~q_pri ~q_max ~scale:0.125 ()
      in
      (* Theorem 1's f = 12*lambda*B*Q_pri only drops below n at much
         larger inputs; scale it harder so the core-set chain engages. *)
      let params_t1 =
        Workloads.calibrate (Inst.params ()) ~q_pri ~q_max ~scale:0.01 ()
      in
      let t1, t2, rj, naive =
        Topk_em.Config.with_model Workloads.em_model (fun () ->
            ( Inst.Topk_t1.build ~params:params_t1 rects,
              Inst.Topk_t2.build ~params:params_cal rects,
              Inst.Topk_rj.build rects,
              Inst.Topk_naive.build rects ))
      in
      let cost f k = Workloads.per_query_ios (fun q -> ignore (f q ~k)) queries in
      rows :=
        [ Table.fi n;
          Table.ff ~d:1 q_pri;
          Table.ff ~d:1 q_max;
          Table.ff ~d:1 (cost (Inst.Topk_t2.query t2) 10);
          Table.ff ~d:1 (cost (Inst.Topk_t1.query t1) 10);
          Table.ff ~d:1 (cost (Inst.Topk_rj.query rj) 10);
          Table.ff ~d:1 (cost (Inst.Topk_naive.query naive) 10);
          Table.ff ~d:1 (cost (Inst.Topk_t2.query t2) 100);
          Table.ff ~d:1 (cost (Inst.Topk_rj.query rj) 100) ]
        :: !rows)
    (Workloads.sizes [ 2048; 8192; 32_768; 131_072 ]);
  Table.print
    ~title:
      "Average I/Os per top-k point-enclosure query (thm1/thm2 with \
       calibrated constants)"
    ~header:
      [ "n"; "Q_pri"; "Q_max"; "thm2 k=10"; "thm1 k=10"; "rj14 k=10";
        "naive k=10"; "thm2 k=100"; "rj14 k=100" ]
    (List.rev !rows);
  Table.note
    "Claim: both reductions stay near Q_pri + Q_max while the scan grows \
     linearly; rj14 multiplies the black box by ~log n probes."
