(* The paper's Section 1.4 3D-dominance scenario, end to end:

     "Find the 10 best-rated hotels whose (i) prices are at most x
      dollars per night, (ii) distances from the town center are at
      most y km, and (iii) security rating is at least z."

   A hotel is a 3D point (price, distance, -security) weighted by its
   guest rating; the >= constraint on security flips into dominance by
   negation.

   Run with:  dune exec examples/hotels.exe *)

module P3 = Topk_dominance.Point3
module Inst = Topk_dominance.Instances
module Rng = Topk_util.Rng

let () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let hotels = Inst.hotels rng ~n in

  let topk = Inst.Topk_t2.build ~params:(Inst.params ()) hotels in

  let budget = 180. and max_km = 8. and min_security = 3.5 in
  let q = (budget, max_km, -.min_security) in
  Topk_em.Stats.reset ();
  let best = Inst.Topk_t2.query topk q ~k:10 in
  let cost = Topk_em.Stats.ios () in

  Printf.printf
    "Top-10 rated hotels (of %d) with price <= $%.0f, distance <= %.0f km, \
     security >= %.1f:\n"
    n budget max_km min_security;
  List.iteri
    (fun rank (h : P3.t) ->
      Printf.printf
        "  #%d  hotel %5d  rating %7.1f  $%5.0f/night  %4.1f km  security \
         %.1f\n"
        (rank + 1) h.P3.id h.P3.weight h.P3.x h.P3.y (-.h.P3.z))
    best;
  Printf.printf "Query cost: %d I/Os\n" cost;

  List.iter
    (fun (h : P3.t) ->
      assert (h.P3.x <= budget);
      assert (h.P3.y <= max_km);
      assert (-.h.P3.z >= min_security))
    best;

  (* Compare against the prior general reduction on the same query. *)
  let rj = Inst.Topk_rj.build hotels in
  Topk_em.Stats.reset ();
  let best_rj = Inst.Topk_rj.query rj q ~k:10 in
  let cost_rj = Topk_em.Stats.ios () in
  assert (
    List.map (fun (h : P3.t) -> h.P3.id) best
    = List.map (fun (h : P3.t) -> h.P3.id) best_rj);
  Printf.printf
    "Same answer from the Rahul-Janardan reduction at %d I/Os (%.1fx).\n"
    cost_rj
    (float_of_int cost_rj /. float_of_int (max 1 cost));
  print_endline "All constraints verified."
