examples/dating.mli:
