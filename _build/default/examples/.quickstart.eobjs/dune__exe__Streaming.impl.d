examples/streaming.ml: Array List Printf Queue String Topk_em Topk_interval Topk_util
