examples/geo.mli:
