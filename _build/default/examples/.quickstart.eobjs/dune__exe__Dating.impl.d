examples/dating.ml: Array Float List Printf Topk_em Topk_enclosure Topk_util
