examples/quickstart.ml: Array List Printf Topk_em Topk_interval Topk_util
