examples/streaming.mli:
