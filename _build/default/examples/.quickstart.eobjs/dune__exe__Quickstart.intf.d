examples/quickstart.mli:
