examples/hotels.mli:
