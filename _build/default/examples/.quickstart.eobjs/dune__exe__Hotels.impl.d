examples/hotels.ml: List Printf Topk_dominance Topk_em Topk_util
