examples/geo.ml: Array List Printf Topk_em Topk_geom Topk_halfspace Topk_util
