(* Geometric top-k: halfplane and circular queries over a city map.

   Scenario: restaurants with ratings on a 2D map.
   - Halfplane query: "best-rated restaurants north-east of the river"
     (Theorem 3, bullet 1, via onion layers + hull tournament).
   - Circular query: "best-rated restaurants within 1.5 km of me",
     answered twice: natively on a kd-tree, and through the lifting
     map of Corollary 1 (ball -> halfspace one dimension up).

   Run with:  dune exec examples/geo.exe *)

module Rng = Topk_util.Rng
module P2 = Topk_geom.Point2
module Hp = Topk_geom.Halfplane
module H = Topk_halfspace
module Inst = Topk_halfspace.Instances

let () =
  let rng = Rng.create 99 in
  let n = 20_000 in
  (* Restaurants on a 10km x 10km map, rated 0-10 with jitter to keep
     weights distinct. *)
  let restaurants =
    Array.init n (fun i ->
        P2.make ~id:(i + 1) ~x:(Rng.float rng 10.) ~y:(Rng.float rng 10.)
          ~weight:(Rng.float rng 10. +. (float_of_int i *. 1e-7))
          ())
  in

  (* --- Halfplane: north-east of the river y = x - 2. --- *)
  let topk2 = Inst.Topk2_t2.build ~params:(Inst.params2 ()) restaurants in
  let river = Hp.make ~a:(-1.) ~b:1. ~c:(-2.) in
  Topk_em.Stats.reset ();
  let best_ne = Inst.Topk2_t2.query topk2 river ~k:5 in
  Printf.printf "Top-5 rated restaurants north-east of the river (%d I/Os):\n"
    (Topk_em.Stats.ios ());
  List.iteri
    (fun rank (r : P2.t) ->
      Printf.printf "  #%d  restaurant %5d  rating %.3f  at (%.2f, %.2f)\n"
        (rank + 1) r.P2.id r.P2.weight r.P2.x r.P2.y)
    best_ne;
  let oracle2 = Inst.Oracle2.build restaurants in
  assert (
    List.map (fun (r : P2.t) -> r.P2.id) best_ne
    = List.map
        (fun (r : P2.t) -> r.P2.id)
        (Inst.Oracle2.top_k oracle2 river ~k:5));

  (* --- Circular: within 1.5 km of my position. --- *)
  let me = [| 4.2; 5.7 |] in
  let nearby = H.Predicates.Ball.make ~center:me ~radius:1.5 in
  let points_d =
    Array.map (fun (p : P2.t) -> H.Pointd.of_point2 p) restaurants
  in

  (* Native ball queries on a kd-tree (Theorem 2). *)
  let ball_topk =
    Inst.Topk_ball_t2.build ~params:(Inst.paramsd ~d:2) points_d
  in
  Topk_em.Stats.reset ();
  let best_near = Inst.Topk_ball_t2.query ball_topk nearby ~k:5 in
  let native_cost = Topk_em.Stats.ios () in

  (* The same query through the lifting map (Corollary 1). *)
  let lifted_topk =
    Inst.Topkd_t1.build ~params:(Inst.paramsd ~d:3)
      (H.Lifting.lift_points points_d)
  in
  Topk_em.Stats.reset ();
  let best_lifted =
    Inst.Topkd_t1.query lifted_topk (H.Lifting.lift_ball nearby) ~k:5
  in
  let lifted_cost = Topk_em.Stats.ios () in

  Printf.printf
    "\nTop-5 rated restaurants within 1.5 km of (%.1f, %.1f):\n" me.(0) me.(1);
  List.iteri
    (fun rank (r : H.Pointd.t) ->
      Printf.printf "  #%d  restaurant %5d  rating %.3f\n" (rank + 1)
        r.H.Pointd.id r.H.Pointd.weight)
    best_near;
  Printf.printf "Native kd ball query: %d I/Os; lifted halfspace query: %d I/Os\n"
    native_cost lifted_cost;
  assert (
    List.map (fun (r : H.Pointd.t) -> r.H.Pointd.id) best_near
    = List.map (fun (r : H.Pointd.t) -> r.H.Pointd.id) best_lifted);
  print_endline "Halfplane and circular answers verified (native = lifted)."
