(* Streaming top-k: the dynamic form of Theorem 2 under churn.

   Scenario: a monitoring system tracks currently-open incidents, each
   covering a time window with a severity score.  Incidents open and
   close continuously; dashboards repeatedly ask "the 5 most severe
   incidents covering time t".

   This exercises Theorem 2's update claim: O(U_pri + U_max) expected
   per insertion/deletion (here: Bentley-Saxe over the segment tree +
   the head-skipping dynamic stabbing-max), with the sample ladder
   resampled only O(log n) times as the set grows.

   Run with:  dune exec examples/streaming.exe *)

module I = Topk_interval.Interval
module Dyn = Topk_interval.Instances.Dyn_topk
module Rng = Topk_util.Rng

let () =
  let rng = Rng.create 404 in
  let s = Dyn.build ~params:(Topk_interval.Instances.params ()) [||] in
  let open_incidents = Queue.create () in
  let next_id = ref 0 in

  let open_incident now =
    incr next_id;
    let duration = 10. +. Rng.float rng 500. in
    let severity = Rng.float rng 100. +. (float_of_int !next_id *. 1e-6) in
    let inc =
      I.make ~id:!next_id ~lo:now ~hi:(now +. duration) ~weight:severity ()
    in
    Queue.push inc open_incidents;
    Dyn.insert s inc
  in
  let close_oldest () =
    if not (Queue.is_empty open_incidents) then
      Dyn.delete s (Queue.pop open_incidents)
  in

  (* Simulate a day: incidents open at ~2/minute, close after a lag,
     dashboards poll as we go. *)
  let polls = ref 0 in
  for minute = 0 to 1439 do
    let now = float_of_int (minute * 60) in
    open_incident now;
    open_incident (now +. 30.);
    if minute > 200 then begin
      close_oldest ();
      if minute mod 3 = 0 then close_oldest ()
    end;
    if minute mod 240 = 120 then begin
      incr polls;
      Topk_em.Stats.reset ();
      let top = Dyn.query s now ~k:5 in
      Printf.printf
        "t=%5.0fmin  %4d live incidents  top-5 severities: [%s]  (%d I/Os)\n"
        (now /. 60.) (Dyn.size s)
        (String.concat "; "
           (List.map (fun (i : I.t) -> Printf.sprintf "%.1f" i.I.weight) top))
        (Topk_em.Stats.ios ())
    end
  done;

  Printf.printf
    "day done: %d opened, %d still live, ladder resampled %d times, %d polls\n"
    !next_id (Dyn.size s) (Dyn.resamples s) !polls;

  (* Verify the final state against a scratch oracle. *)
  let live = Array.of_seq (Queue.to_seq open_incidents) in
  let oracle = Topk_interval.Instances.Oracle.build live in
  let t = 1200. *. 60. in
  let expected = Topk_interval.Instances.Oracle.top_k oracle t ~k:5 in
  let got = Dyn.query s t ~k:5 in
  assert (
    List.map (fun (i : I.t) -> i.I.id) expected
    = List.map (fun (i : I.t) -> i.I.id) got);
  print_endline "Final state verified against the oracle."
