(* Quickstart: top-k interval stabbing in a few lines.

   Scenario: a log of sessions, each active over a time interval and
   carrying a "bytes transferred" weight.  Query: at time t, which k
   active sessions moved the most data?

   Run with:  dune exec examples/quickstart.exe *)

module I = Topk_interval.Interval
module Inst = Topk_interval.Instances
module Rng = Topk_util.Rng

let () =
  let rng = Rng.create 2026 in

  (* 1. Make some weighted intervals: 100k sessions over a day. *)
  let n = 100_000 in
  let sessions =
    Array.init n (fun i ->
        let start = Rng.float rng 86_400. in
        let duration = 30. +. Rng.float rng 7_200. in
        let bytes = Rng.float rng 1e9 in
        I.make ~id:(i + 1) ~lo:start ~hi:(start +. duration) ~weight:bytes ())
  in

  (* 2. Build the top-k structure: Theorem 2 over the prioritized
        segment-tree structure and the folklore stabbing-max slabs.
        The [params] carry the problem's lambda and cost estimates. *)
  let topk = Inst.Topk_t2.build ~params:(Inst.params ()) sessions in

  (* 3. Query: the 5 heaviest sessions active at 14:00, with the I/O
        cost the EM model charges for it. *)
  let t = 14. *. 3600. in
  Topk_em.Stats.reset ();
  let heaviest = Inst.Topk_t2.query topk t ~k:5 in
  let cost = Topk_em.Stats.ios () in

  Printf.printf "Top-5 sessions active at t=%.0fs (of %d total):\n" t n;
  List.iteri
    (fun rank (s : I.t) ->
      Printf.printf "  #%d  session %6d  [%7.0fs, %7.0fs]  %10.0f bytes\n"
        (rank + 1) s.I.id s.I.lo s.I.hi s.I.weight)
    heaviest;
  Printf.printf "Query cost: %d I/Os (B = %d words/block)\n" cost
    (Topk_em.Config.current ()).Topk_em.Config.b;

  (* 4. Same answer as brute force, at a fraction of the cost. *)
  let oracle = Inst.Oracle.build sessions in
  let expected = Inst.Oracle.top_k oracle t ~k:5 in
  assert (
    List.map (fun (s : I.t) -> s.I.id) heaviest
    = List.map (fun (s : I.t) -> s.I.id) expected);
  print_endline "Verified against the brute-force oracle."
