(* The paper's Section 1.4 point-enclosure scenario, end to end:

     "Find the 10 gentlemen with the highest salaries such that my age
      and height fall into their preferred ranges."

   Each registered profile is a rectangle [age range] x [height range]
   weighted by salary; the query is the point (my age, my height).

   Run with:  dune exec examples/dating.exe *)

module R = Topk_enclosure.Rect
module Inst = Topk_enclosure.Instances
module Rng = Topk_util.Rng

let make_profiles rng n =
  Array.init n (fun i ->
      let age_lo = 18. +. Rng.float rng 40. in
      let age_hi = age_lo +. 3. +. Rng.float rng 25. in
      let height_lo = 145. +. Rng.float rng 35. in
      let height_hi = height_lo +. 5. +. Rng.float rng 40. in
      (* Distinct salaries via a jittered rank. *)
      let salary = 28_000. +. (float_of_int i *. 7.) +. Rng.float rng 5. in
      R.make ~id:(i + 1) ~x1:age_lo ~x2:age_hi ~y1:height_lo ~y2:height_hi
        ~weight:salary ())

let () =
  let rng = Rng.create 7 in
  let n = 50_000 in
  let profiles = make_profiles rng n in

  (* The Theorem 2 structure: prioritized two-level segment tree plus
     the Section 5.2 stabbing-max, combined with no expected
     degradation. *)
  let topk = Inst.Topk_t2.build ~params:(Inst.params ()) profiles in

  let me_age = 33.0 and me_height = 172.0 in
  Topk_em.Stats.reset ();
  let matches = Inst.Topk_t2.query topk (me_age, me_height) ~k:10 in
  let cost = Topk_em.Stats.ios () in

  Printf.printf
    "Top-10 salaries among %d profiles whose preferences cover \
     (age %.0f, height %.0fcm):\n"
    n me_age me_height;
  List.iteri
    (fun rank (p : R.t) ->
      Printf.printf
        "  #%d  profile %5d  salary %8.0f  ages [%4.1f, %4.1f]  heights \
         [%5.1f, %5.1f]\n"
        (rank + 1) p.R.id p.R.weight p.R.x1 p.R.x2 p.R.y1 p.R.y2)
    matches;
  Printf.printf "Query cost: %d I/Os\n" cost;

  (* Each reported profile indeed covers the query point, and the list
     is salary-sorted. *)
  List.iter
    (fun (p : R.t) -> assert (R.contains p (me_age, me_height)))
    matches;
  let salaries = List.map (fun (p : R.t) -> p.R.weight) matches in
  assert (List.sort (fun a b -> Float.compare b a) salaries = salaries);
  print_endline "All matches verified."
