module Stats = Topk_em.Stats

type 'a node =
  | Leaf
  | Node of {
      item : 'a;          (* maximum weight in this subtree *)
      w : float;          (* cached weight of [item] *)
      k : float;          (* cached key of [item] *)
      min_key : float;    (* over the whole subtree *)
      max_key : float;
      left : 'a node;
      right : 'a node;
    }

type 'a t = {
  root : 'a node;
  size : int;
}

type side = Below | Above

(* Build over a key-sorted segment [lo, hi) of [arr]: pull out the
   max-weight element, shift the tail down to keep the segment sorted,
   and split the remainder at the median.  O(n log n) total. *)
let rec build_node ~key ~weight arr lo hi =
  if hi <= lo then Leaf
  else begin
    let min_key = key arr.(lo) and max_key = key arr.(hi - 1) in
    let m = ref lo in
    for i = lo + 1 to hi - 1 do
      if weight arr.(i) > weight arr.(!m) then m := i
    done;
    let item = arr.(!m) in
    Array.blit arr (!m + 1) arr !m (hi - 1 - !m);
    let hi = hi - 1 in
    let mid = (lo + hi) / 2 in
    let left = build_node ~key ~weight arr lo mid in
    let right = build_node ~key ~weight arr mid hi in
    Node { item; w = weight item; k = key item; min_key; max_key; left; right }
  end

let build ~key ~weight elems =
  let arr = Array.copy elems in
  Array.sort (fun a b -> Float.compare (key a) (key b)) arr;
  { root = build_node ~key ~weight arr 0 (Array.length arr); size = Array.length elems }

let size t = t.size

let space_words t = 4 * t.size  (* item + cached key/weight + key range *)

(* Does the subtree's key interval intersect the query side? *)
let intersects side bound = function
  | Leaf -> false
  | Node n ->
      (match side with
       | Below -> n.min_key <= bound
       | Above -> n.max_key >= bound)

let key_ok side bound k =
  match side with Below -> k <= bound | Above -> k >= bound

let query t ~side ~bound ~tau f =
  (* Cost model: a reporting node is one scanned element, and so is a
     weight-pruned probe (both lie inside the clustered run of a
     reporting parent in an EM layout; there are at most 2t + O(log n)
     of them).  Only key-boundary nodes that report nothing — O(log n)
     of them — are random I/Os. *)
  let rec go node =
    match node with
    | Leaf -> ()
    | Node n ->
        if n.w >= tau then begin
          if key_ok side bound n.k then begin
            Stats.charge_scan 1;
            f n.item
          end
          else Stats.charge_ios 1;
          if intersects side bound n.left then go n.left;
          if intersects side bound n.right then go n.right
        end
        else Stats.charge_scan 1
  in
  if intersects side bound t.root then go t.root

let query_list t ~side ~bound ~tau =
  let acc = ref [] in
  query t ~side ~bound ~tau (fun e -> acc := e :: !acc);
  !acc

exception Enough

let query_monitored t ~side ~bound ~tau ~limit =
  let acc = ref [] and count = ref 0 in
  match
    query t ~side ~bound ~tau (fun e ->
        acc := e :: !acc;
        incr count;
        if !count > limit then raise Enough)
  with
  | () -> `All !acc
  | exception Enough -> `Truncated !acc

let max_element t ~side ~bound =
  let best = ref None in
  let beats w = match !best with None -> true | Some (bw, _) -> w > bw in
  let fully_inside side bound = function
    | Leaf -> false
    | Node n ->
        (match side with
         | Below -> n.max_key <= bound
         | Above -> n.min_key >= bound)
  in
  let rec go node =
    match node with
    | Leaf -> ()
    | Node n ->
        Stats.charge_ios 1;
        if beats n.w && intersects side bound node then begin
          if key_ok side bound n.k then best := Some (n.w, n.item)
          else begin
            (* Visit the fully-inside child first: its root qualifies
               immediately, pruning the rest — O(log n) overall. *)
            let a, b =
              if fully_inside side bound n.left then (n.left, n.right)
              else (n.right, n.left)
            in
            go a;
            go b
          end
        end
  in
  go t.root;
  Option.map snd !best
