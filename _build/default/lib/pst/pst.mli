(** Static priority search tree (McCreight 1985).

    Stores elements carrying a {e key} and a {e weight} and answers the
    3-sided query "all elements with key [<=] (or [>=]) a bound and
    weight [>= tau]" in [O(log n + t)], where [t] is the output size.
    This is the canonical building block for prioritized reporting:
    interval stabbing and dominance structures in this repository hang
    one PST per canonical node.

    Layout: the root holds the maximum-weight element of the set; the
    rest is split by the median key between two children.  A query
    prunes on weight (a subtree whose root weight is [< tau] holds
    nothing reportable) and on key (subtrees beyond the bound are
    skipped), so it visits [O(log n)] boundary nodes plus one node per
    reported element.

    Costs: one I/O per node visit on the boundary, reported elements
    charged as scans (see {!Topk_em.Stats.charge_scan}). *)

type 'a t

type side =
  | Below  (** query selects keys [<= bound] *)
  | Above  (** query selects keys [>= bound] *)

val build : key:('a -> float) -> weight:('a -> float) -> 'a array -> 'a t
(** O(n log n) construction; the input array is not modified. *)

val size : 'a t -> int

val space_words : 'a t -> int

val query :
  'a t -> side:side -> bound:float -> tau:float -> ('a -> unit) -> unit
(** [query t ~side ~bound ~tau f] applies [f] to every element on the
    [side] of [bound] whose weight is [>= tau], in no particular
    order. *)

val query_list : 'a t -> side:side -> bound:float -> tau:float -> 'a list

val query_monitored :
  'a t -> side:side -> bound:float -> tau:float -> limit:int ->
  [ `All of 'a list | `Truncated of 'a list ]
(** Stops as soon as [limit + 1] elements have been reported. *)

val max_element : 'a t -> side:side -> bound:float -> 'a option
(** The maximum-weight element on the [side] of [bound]: a max query,
    O(log n). *)
