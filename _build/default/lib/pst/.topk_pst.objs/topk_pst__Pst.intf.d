lib/pst/pst.mli:
