lib/pst/pst.ml: Array Float Option Topk_em
