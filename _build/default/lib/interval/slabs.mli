(** Elementary slabs of a coordinate set (shared by the stabbing
    structures).

    The [m] distinct endpoint coordinates split the line into [2m + 1]
    elementary slabs, alternating open gaps and single-coordinate
    points: slab [2i] is the open gap before coordinate [i], slab
    [2i + 1] is coordinate [i] itself.  A closed interval whose
    endpoints are coordinates [i <= j] covers exactly slabs
    [2i+1 .. 2j+1]; locating a stabbing point is a predecessor
    search. *)

type t

val of_endpoints : float array -> t
(** Build from any coordinate multiset (deduplicated internally). *)

val slab_count : t -> int

val coord_count : t -> int

val slab_of_point : t -> float -> int
(** Slab containing an arbitrary real; O(log m), charged as a
    predecessor search. *)

val slab_of_coord : t -> float -> int
(** Slab of a value known to be one of the coordinates.
    @raise Invalid_argument otherwise. *)

val space_words : t -> int
