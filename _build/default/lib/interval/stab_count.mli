(** Exact stabbing counting: [|q(D)|] for a stabbing point [q] in
    [O(log n)] — a segment tree whose canonical nodes store only the
    number of intervals assigned to them; the count is the sum along
    one root-to-leaf path.  [O(n)] space.  The [Q_cnt] black box for
    the Section 2 reporting+counting reduction. *)

include Topk_core.Sigs.COUNTING with module P = Problem
