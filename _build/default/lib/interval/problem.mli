(** The interval-stabbing problem packaged for the reduction framework:
    elements are weighted intervals, a predicate is a stabbing point. *)

include
  Topk_core.Sigs.PROBLEM
    with type elem = Interval.t
     and type query = float
