(** Ready-made top-k interval-stabbing structures: the reductions of
    Theorems 1 and 2 instantiated with this library's black boxes,
    plus the baselines they are compared against in experiments
    E4–E8. *)

module Oracle : module type of Topk_core.Oracle.Make (Problem)

(** Theorem 1 applied to {!Seg_stab}: static, worst-case
    [O(Q_pri log_B n)] queries. *)
module Topk_t1 : module type of Topk_core.Theorem1.Make (Seg_stab)

(** Theorem 2 applied to {!Seg_stab} + {!Slab_max}: expected
    [O(Q_pri + Q_max)] queries — Theorem 4, first bullet. *)
module Topk_t2 : module type of Topk_core.Theorem2.Make (Seg_stab) (Slab_max)

(** The prior reduction of Rahul–Janardan (eqs. (1)–(2)). *)
module Topk_rj : Topk_core.Sigs.TOPK with type P.elem = Interval.t
                                      and type P.query = float

(** Scan-everything baseline. *)
module Topk_naive : Topk_core.Sigs.TOPK with type P.elem = Interval.t
                                         and type P.query = float

val params : unit -> Topk_core.Params.t
(** Reduction parameters fitted to this problem: [lambda = 1] (at most
    [2n + 1] distinct stabbing outcomes), [Q_pri = Q_max = log2 n]. *)

(** Dynamic prioritized stabbing: the logarithmic method over
    {!Seg_stab} ([U_pri = O(log^2 n)] amortized). *)
module Dyn_pri : sig
  include Topk_core.Sigs.DYNAMIC_PRIORITIZED
    with type P.elem = Interval.t
     and type P.query = float
  val live : t -> int
  val rebuilds : t -> int
  val bucket_count : t -> int
end

(** The dynamic form of Theorem 2 over {!Dyn_pri} + {!Dyn_max}:
    Theorem 4 first bullet including its update claim. *)
module Dyn_topk : sig
  include Topk_core.Sigs.DYNAMIC_TOPK
    with type P.elem = Interval.t
     and type P.query = float
  val rungs : t -> int
  val resamples : t -> int
  val rounds_run : t -> int
  val rounds_failed : t -> int
end

(** Section 2's reporting+counting reduction, for comparison in E7b. *)
module Topk_rj_counting :
  module type of Topk_core.Rj_counting.Make (Seg_stab) (Stab_count)

(** The reductions over the linear-space interval-tree black box
    ({!Itree_pri}) instead of the segment tree — E15's black-box swap
    ablation. *)
module Topk_t2_itree :
  module type of Topk_core.Theorem2.Make (Itree_pri) (Slab_max)

module Topk_t1_itree : module type of Topk_core.Theorem1.Make (Itree_pri)
