type elem = Interval.t

type query = float

let weight (e : elem) = e.Interval.weight

let id (e : elem) = e.Interval.id

let matches q e = Interval.contains e q

let pp_elem = Interval.pp

let pp_query ppf q = Format.fprintf ppf "stab(%g)" q
