(** Static stabbing-max — the folklore structure of Section 5.2,
    implemented verbatim.

    The [2n] endpoints split the line into at most [2n + 1] elementary
    slabs; each slab stores the maximum-weight interval spanning it.  A
    query is a predecessor search for the slab plus one lookup:
    [O(log n)] time, [O(n)] space — the [Q_max] black box that
    Theorem 2 combines with {!Seg_stab} to prove Theorem 4's first
    bullet. *)

include Topk_core.Sigs.MAX with module P = Problem
