(** Prioritized interval stabbing — the [Q_pri] black box of
    Theorem 4.

    A segment tree over the elementary slabs assigns each interval to
    [O(log n)] canonical nodes; each node keeps its intervals sorted by
    decreasing weight.  A query [(q, tau)] walks the root-to-leaf path
    of [q]'s slab and, at each node, scans the canonical list until the
    weight drops below [tau] — every scanned element except the last
    per node is reported, so the cost is [O(log n + t)].

    This substitutes for Tao's ray-stabbing structure [34] (an
    I/O-optimal [O(log_B n + t/B)] structure): same interface, same
    output-sensitivity, a [log n] vs [log_B n] navigation term (the
    reductions only require [Q_pri(n) >= log_B n]).  Space is
    [O(n log n)] words. *)

include Topk_core.Sigs.PRIORITIZED with module P = Problem

val visit : t -> float -> tau:float -> (Interval.t -> unit) -> unit
(** Streaming form of {!query}: apply the callback to every interval
    containing the point with weight [>= tau]; the callback may raise
    to stop early.  Used by two-level structures (point enclosure)
    that monitor cost across several nested queries. *)
