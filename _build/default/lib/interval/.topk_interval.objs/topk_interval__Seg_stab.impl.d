lib/interval/seg_stab.ml: Array Interval Problem Slabs Topk_core Topk_em
