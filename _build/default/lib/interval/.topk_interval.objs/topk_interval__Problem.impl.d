lib/interval/problem.ml: Format Interval
