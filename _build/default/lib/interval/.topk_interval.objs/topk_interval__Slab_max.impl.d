lib/interval/slab_max.ml: Array Int Interval Problem Slabs Topk_em Topk_util
