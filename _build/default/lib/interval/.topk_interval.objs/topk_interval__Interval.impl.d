lib/interval/interval.ml: Array Float Format Int Topk_util
