lib/interval/slabs.mli:
