lib/interval/instances.ml: Dyn_max Itree_pri Problem Seg_stab Slab_max Stab_count Topk_core
