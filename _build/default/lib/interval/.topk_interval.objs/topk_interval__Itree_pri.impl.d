lib/interval/itree_pri.ml: Array Float Interval Problem Topk_core Topk_em Topk_pst Topk_util
