lib/interval/slab_max.mli: Problem Topk_core
