lib/interval/dyn_max.mli: Problem Topk_core
