lib/interval/seg_stab.mli: Interval Problem Topk_core
