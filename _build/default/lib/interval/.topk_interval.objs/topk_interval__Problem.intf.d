lib/interval/problem.mli: Interval Topk_core
