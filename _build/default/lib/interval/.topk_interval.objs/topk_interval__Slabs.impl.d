lib/interval/slabs.ml: Array Float Topk_em Topk_util
