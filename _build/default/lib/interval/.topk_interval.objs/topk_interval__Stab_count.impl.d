lib/interval/stab_count.ml: Array Interval Problem Slabs Topk_em
