lib/interval/interval.mli: Format Topk_util
