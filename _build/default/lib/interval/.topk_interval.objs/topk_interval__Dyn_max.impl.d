lib/interval/dyn_max.ml: Array Hashtbl Interval Problem Slabs Topk_em
