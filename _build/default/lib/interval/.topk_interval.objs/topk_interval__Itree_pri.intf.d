lib/interval/itree_pri.mli: Problem Topk_core
