lib/interval/stab_count.mli: Problem Topk_core
