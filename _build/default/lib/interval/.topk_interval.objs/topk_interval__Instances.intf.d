lib/interval/instances.mli: Interval Itree_pri Problem Seg_stab Slab_max Stab_count Topk_core
