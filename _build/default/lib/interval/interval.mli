(** Weighted closed intervals of the real line — the elements of the
    interval-stabbing problem (Section 5.1): a query point [q] selects
    every interval [[lo, hi]] with [lo <= q <= hi]. *)

type t = private {
  lo : float;
  hi : float;
  weight : float;
  id : int;
}

val make : ?id:int -> lo:float -> hi:float -> weight:float -> unit -> t
(** @raise Invalid_argument if [lo > hi] or a bound is NaN.
    When [id] is omitted a fresh one is drawn from a global counter. *)

val contains : t -> float -> bool

val compare_weight : t -> t -> int
(** Weight order with [id] tie-break — a strict total order. *)

val pp : Format.formatter -> t -> unit

val of_spans :
  ?weights:float array -> Topk_util.Rng.t -> (float * float) array -> t array
(** Attach ids and weights (fresh distinct ones unless [?weights]) to
    raw spans from {!Topk_util.Gen.intervals}. *)
