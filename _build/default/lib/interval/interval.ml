type t = {
  lo : float;
  hi : float;
  weight : float;
  id : int;
}

let counter = ref 0

let fresh_id () =
  incr counter;
  !counter

let make ?id ~lo ~hi ~weight () =
  if Float.is_nan lo || Float.is_nan hi then
    invalid_arg "Interval.make: NaN bound";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  let id = match id with Some i -> i | None -> fresh_id () in
  { lo; hi; weight; id }

let contains t q = t.lo <= q && q <= t.hi

let compare_weight a b =
  match Float.compare a.weight b.weight with
  | 0 -> Int.compare a.id b.id
  | c -> c

let pp ppf t =
  Format.fprintf ppf "[%g, %g]@%g#%d" t.lo t.hi t.weight t.id

let of_spans ?weights rng spans =
  let n = Array.length spans in
  let weights =
    match weights with
    | Some w ->
        if Array.length w <> n then
          invalid_arg "Interval.of_spans: weights length mismatch";
        w
    | None -> Topk_util.Gen.distinct_weights rng n
  in
  Array.mapi
    (fun i (lo, hi) -> make ~id:(i + 1) ~lo ~hi ~weight:weights.(i) ())
    spans
