module Stats = Topk_em.Stats
module P = Problem

type t = {
  slabs : Slabs.t;
  counts : int array;  (* per tree node, 1-based heap order *)
  leaves : int;
  n : int;
}

let name = "stab-count"

let rec next_pow2 x k = if k >= x then k else next_pow2 x (2 * k)

let build elems =
  let n = Array.length elems in
  let endpoints = Array.make (2 * n) 0. in
  Array.iteri
    (fun i (itv : Interval.t) ->
      endpoints.(2 * i) <- itv.Interval.lo;
      endpoints.((2 * i) + 1) <- itv.Interval.hi)
    elems;
  let slabs = Slabs.of_endpoints endpoints in
  let leaves = next_pow2 (max 1 (Slabs.slab_count slabs)) 1 in
  let counts = Array.make (2 * leaves) 0 in
  let assign (itv : Interval.t) =
    let l = Slabs.slab_of_coord slabs itv.Interval.lo in
    let r = Slabs.slab_of_coord slabs itv.Interval.hi in
    let rec go node node_lo node_hi =
      if l <= node_lo && r >= node_hi - 1 then
        counts.(node) <- counts.(node) + 1
      else begin
        let mid = (node_lo + node_hi) / 2 in
        if l < mid then go (2 * node) node_lo mid;
        if r >= mid then go ((2 * node) + 1) mid node_hi
      end
    in
    go 1 0 leaves
  in
  Array.iter assign elems;
  { slabs; counts; leaves; n }

let size t = t.n

let space_words t = Slabs.space_words t.slabs + Array.length t.counts

let count t q =
  let s = Slabs.slab_of_point t.slabs q in
  let total = ref 0 in
  let node = ref (t.leaves + s) in
  while !node >= 1 do
    Stats.charge_ios 1;
    total := !total + t.counts.(!node);
    node := !node / 2
  done;
  !total
