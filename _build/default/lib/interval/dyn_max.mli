(** Dynamic stabbing-max — the [U_max] black box of Theorem 4's first
    bullet (substituting for Agarwal et al. [7]).

    Logarithmic-method buckets; each bucket is a segment tree over its
    own endpoint slabs whose canonical lists are weight-descending
    arrays with a {e head} pointer.  Deletion tombstones the interval;
    a query advances heads past tombstoned prefixes (each element is
    skipped at most once per node, so the cost amortizes against the
    deletion).  A global rebuild fires when the dead outnumber the
    live.  Queries are [O(log^2 n)] over the buckets; insertions
    amortize to [O(log^2 n)]; deletions to [O(log n)]. *)

include Topk_core.Sigs.DYNAMIC_MAX with module P = Problem

val live : t -> int

val rebuilds : t -> int
