(** Prioritized interval stabbing in {e linear} space: a classic
    interval tree (centerpoint tree) whose every node stores its
    intervals in two priority search trees, keyed on the left and
    right endpoints.

    An interval lives in exactly one node (the highest whose center it
    contains), so space is [O(n)] — matching the space of Tao's
    structure [34] that Section 5.1 plugs into the reductions, where
    the segment-tree alternative ({!Seg_stab}) pays [O(n log n)].  A
    stabbing query descends the center path ([O(log n)] nodes); at
    each node the matching intervals with weight [>= tau] form one
    3-sided PST query ([q] left of the center: [lo <= q]; right:
    [hi >= q]), so the query costs [O(log^2 n + t)].

    Swapping this black box for {!Seg_stab} inside the reductions is
    experiment E15's black-box ablation: same answers, linear space,
    one extra log in [Q_pri]. *)

include Topk_core.Sigs.PRIORITIZED with module P = Problem

val depth : t -> int
(** Height of the center tree (O(log n) by median splitting). *)
