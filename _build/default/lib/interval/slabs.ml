module Stats = Topk_em.Stats
module Search = Topk_util.Search

type t = { coords : float array }

let of_endpoints raw =
  let sorted = Array.copy raw in
  Array.sort Float.compare sorted;
  let m = Array.length sorted in
  if m = 0 then { coords = [||] }
  else begin
    let distinct = ref 1 in
    for i = 1 to m - 1 do
      if sorted.(i) <> sorted.(!distinct - 1) then begin
        sorted.(!distinct) <- sorted.(i);
        incr distinct
      end
    done;
    { coords = Array.sub sorted 0 !distinct }
  end

let slab_count t = (2 * Array.length t.coords) + 1

let coord_count t = Array.length t.coords

let slab_of_point t q =
  let m = Array.length t.coords in
  (* One I/O per probed node of the (implicit) search tree. *)
  Stats.charge_ios (max 1 (int_of_float (Float.log2 (float_of_int (m + 2)))));
  let i = Search.lower_bound ~cmp:Float.compare t.coords q in
  if i < m && t.coords.(i) = q then (2 * i) + 1 else 2 * i

let slab_of_coord t x =
  let m = Array.length t.coords in
  let i = Search.lower_bound ~cmp:Float.compare t.coords x in
  if i < m && t.coords.(i) = x then (2 * i) + 1
  else invalid_arg "Slabs.slab_of_coord: not a coordinate"

let space_words t = Array.length t.coords
