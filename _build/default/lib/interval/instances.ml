module Oracle = Topk_core.Oracle.Make (Problem)
module Topk_t1 = Topk_core.Theorem1.Make (Seg_stab)
module Topk_t2 = Topk_core.Theorem2.Make (Seg_stab) (Slab_max)
module Topk_rj = Topk_core.Baseline_rj.Make (Seg_stab)
module Topk_naive = Topk_core.Naive.Make (Problem)

let params () =
  {
    Topk_core.Params.default with
    Topk_core.Params.lambda = 1.;
    q_pri = Topk_core.Params.log2;
    q_max = Topk_core.Params.log2;
  }

module Dyn_pri = Topk_core.Bentley_saxe.Make (Seg_stab)
module Dyn_topk = Topk_core.Theorem2_dynamic.Make (Dyn_pri) (Dyn_max)

module Topk_rj_counting = Topk_core.Rj_counting.Make (Seg_stab) (Stab_count)

module Topk_t2_itree = Topk_core.Theorem2.Make (Itree_pri) (Slab_max)
module Topk_t1_itree = Topk_core.Theorem1.Make (Itree_pri)
