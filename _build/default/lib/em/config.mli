(** Parameters of the external-memory (EM) model of Aggarwal and Vitter,
    as fixed in Section 1.1 of the paper: a machine with [m] words of
    memory and a disk formatted into blocks of [b] words each, with
    [m >= 2 * b].  Setting [b] to a small constant recovers the RAM
    model, in which every structure of this library also works. *)

type mode =
  | Ram  (** RAM model: [b] is a small constant, I/Os are word probes. *)
  | Em   (** External memory: costs are counted in blocks of [b] words. *)

type t = private {
  mode : mode;
  b : int;  (** block size in words; the paper assumes [b >= 64] in EM *)
  m : int;  (** memory size in words; [m >= 2 * b] *)
}

val ram : t
(** The RAM model: [b = 1], [m = 2]. *)

val em : ?m:int -> b:int -> unit -> t
(** [em ~b ()] is the EM model with block size [b] (must be [>= 2]) and
    memory [m] (defaults to [32 * b]).  Raises [Invalid_argument] if
    [b < 2] or [m < 2 * b]. *)

val default : t
(** EM with [b = 64], the paper's minimum block size. *)

val current : unit -> t
(** The model used by cost accounting right now (initially [default]). *)

val set : t -> unit
(** Install a model globally.  Affects subsequent {!Stats} charging. *)

val with_model : t -> (unit -> 'a) -> 'a
(** [with_model c f] runs [f] under model [c], restoring the previous
    model afterwards, also on exceptions. *)

val blocks_of_words : t -> int -> int
(** [blocks_of_words c w] is the number of blocks occupied by [w] words,
    i.e. [ceil (w / b)], and [0] for [w <= 0]. *)

val pp : Format.formatter -> t -> unit
