type mode = Ram | Em

type t = {
  mode : mode;
  b : int;
  m : int;
}

let ram = { mode = Ram; b = 1; m = 2 }

let em ?m ~b () =
  if b < 2 then invalid_arg "Config.em: block size must be >= 2";
  let m = match m with Some m -> m | None -> 32 * b in
  if m < 2 * b then invalid_arg "Config.em: memory must be >= 2 * b";
  { mode = Em; b; m }

let default = em ~b:64 ()

let state = ref default

let current () = !state

let set c = state := c

let with_model c f =
  let saved = !state in
  state := c;
  Fun.protect ~finally:(fun () -> state := saved) f

let blocks_of_words c w = if w <= 0 then 0 else (w + c.b - 1) / c.b

let pp ppf c =
  match c.mode with
  | Ram -> Format.fprintf ppf "RAM"
  | Em -> Format.fprintf ppf "EM(B=%d, M=%d)" c.b c.m
