type snapshot = {
  ios : int;
  scanned : int;
  queries : int;
}

type state = {
  mutable s_ios : int;
  mutable s_scanned : int;
  mutable s_queries : int;
  mutable s_carry : int;  (* scanned elements not yet filling a block *)
}

let zero () = { s_ios = 0; s_scanned = 0; s_queries = 0; s_carry = 0 }

let state = zero ()

let reset () =
  state.s_ios <- 0;
  state.s_scanned <- 0;
  state.s_queries <- 0;
  state.s_carry <- 0

let snapshot () =
  { ios = state.s_ios; scanned = state.s_scanned; queries = state.s_queries }

let ios () = state.s_ios

let charge_ios n =
  if n < 0 then invalid_arg "Stats.charge_ios: negative";
  state.s_ios <- state.s_ios + n

let charge_scan t =
  if t < 0 then invalid_arg "Stats.charge_scan: negative";
  if t > 0 then begin
    let b = (Config.current ()).Config.b in
    let total = state.s_carry + t in
    state.s_ios <- state.s_ios + (total / b);
    state.s_carry <- total mod b;
    state.s_scanned <- state.s_scanned + t
  end

let mark_query () = state.s_queries <- state.s_queries + 1

let measure f =
  let saved = snapshot () in
  let saved_carry = state.s_carry in
  reset ();
  let restore () =
    state.s_ios <- saved.ios;
    state.s_scanned <- saved.scanned;
    state.s_queries <- saved.queries;
    state.s_carry <- saved_carry
  in
  match f () with
  | x ->
      let s = snapshot () in
      restore ();
      (x, s)
  | exception e ->
      restore ();
      raise e

let pp ppf s =
  Format.fprintf ppf "ios=%d scanned=%d queries=%d" s.ios s.scanned s.queries
