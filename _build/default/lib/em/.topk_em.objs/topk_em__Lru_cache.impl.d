lib/em/lru_cache.ml: Config Hashtbl Stats
