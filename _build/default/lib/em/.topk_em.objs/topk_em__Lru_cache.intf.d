lib/em/lru_cache.mli:
