lib/em/io_array.ml: Array Config Lru_cache
