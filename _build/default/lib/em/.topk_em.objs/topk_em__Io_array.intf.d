lib/em/io_array.mli: Lru_cache
