lib/em/config.mli: Format
