lib/em/config.ml: Format Fun
