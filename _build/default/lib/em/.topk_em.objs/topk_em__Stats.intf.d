lib/em/stats.mli: Format
