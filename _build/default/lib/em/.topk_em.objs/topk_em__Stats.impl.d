lib/em/stats.ml: Config Format
