(** I/O accounting.

    Every data structure in this library charges its work here, at the
    granularity of the EM model (Section 1.1 of the paper): the {e time}
    of an algorithm is the number of I/Os it performs.  Structures
    charge either whole I/Os (one per tree node visited, one per block
    fetched) or element scans, which are converted to [ceil (t / B)]
    I/Os under the current {!Config}.

    The counter is global and single-threaded, like the model. *)

type snapshot = {
  ios : int;       (** block I/Os charged (node visits + scan blocks) *)
  scanned : int;   (** raw elements touched by sequential scans *)
  queries : int;   (** number of [query] marks *)
}

val reset : unit -> unit
(** Zero all counters. *)

val snapshot : unit -> snapshot

val ios : unit -> int
(** Total I/Os since the last {!reset}. *)

val charge_ios : int -> unit
(** Charge [n] whole I/Os ([n >= 0]). *)

val charge_scan : int -> unit
(** Charge a sequential scan / reporting of [t] elements.  Scanned
    elements accumulate across calls and convert to one I/O per [B] of
    them (a carry keeps the remainder), so a query reporting [t]
    elements one at a time is charged [~ t/B] I/Os in total — the
    [O(t/B)] output term of the EM model.  A scan of [0] elements
    costs nothing. *)

val mark_query : unit -> unit
(** Record that one query was answered (for averaging). *)

val measure : (unit -> 'a) -> 'a * snapshot
(** [measure f] runs [f] with fresh counters and returns its result
    together with the I/Os it consumed; previous counters are restored
    (and {e not} incremented) afterwards. *)

val pp : Format.formatter -> snapshot -> unit
