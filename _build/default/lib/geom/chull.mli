(** Static convex hull (Andrew's monotone chain) with logarithmic
    extreme-vertex search — the per-layer primitive behind halfplane
    reporting [15] and the hull-tournament max structure.

    The hull is {e strict}: collinear boundary points are not vertices
    (they stay behind for deeper onion layers).  The vertex ring is
    counterclockwise. *)

type t

val of_points : Point2.t array -> t
(** O(n log n).  Duplicated coordinates are tolerated: one copy ends up
    a vertex, the rest are interior. *)

val of_sorted_points : Point2.t array -> t
(** O(n) when the input is already sorted lexicographically by
    [(x, y)]; the array is not modified.  Used by the onion-peeling
    loop, which sorts once and peels many times. *)

val is_empty : t -> bool

val ring : t -> Point2.t array
(** The hull vertices in counterclockwise order (empty for an empty
    input; a single vertex for degenerate inputs). *)

val vertex_count : t -> int

val extreme : t -> dir:float * float -> (int * Point2.t) option
(** [extreme t ~dir] is the ring index and vertex maximizing the dot
    product with [dir], found by binary search on the hull chains in
    [O(log h)] charged I/Os.  [None] on an empty hull.
    @raise Invalid_argument on a zero direction. *)

val report_halfplane : t -> Halfplane.t -> (Point2.t -> unit) -> int
(** Apply the callback to every hull vertex inside the halfplane by
    walking the ring outward from the extreme vertex (the inside
    vertices form one contiguous arc); returns the count.  Costs
    [O(log h)] plus one scanned element per report.  The callback may
    raise to stop early. *)

val space_words : t -> int
