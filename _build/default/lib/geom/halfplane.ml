type t = {
  a : float;
  b : float;
  c : float;
}

let make ~a ~b ~c =
  if Float.is_nan a || Float.is_nan b || Float.is_nan c then
    invalid_arg "Halfplane.make: NaN coefficient";
  if a = 0. && b = 0. then invalid_arg "Halfplane.make: zero normal";
  { a; b; c }

let of_triple (a, b, c) = make ~a ~b ~c

let value t (p : Point2.t) =
  (t.a *. p.Point2.x) +. (t.b *. p.Point2.y) -. t.c

let contains t p = value t p >= 0.

let direction t = (t.a, t.b)

let pp ppf t = Format.fprintf ppf "%gx + %gy >= %g" t.a t.b t.c
