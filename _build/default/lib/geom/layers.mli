(** Onion layers: repeatedly peel the convex hull vertices.

    The halfplane-reporting structure of Chazelle–Guibas–Lee [15] on
    which Section 5.4 builds: a halfplane that misses layer [i] misses
    every deeper layer (deeper points lie inside layer [i]'s hull), so
    a query walks outer layers until the first empty one and touches
    [O(1 + t)] layers, each at [O(log n)] — an [O((1 + t) log n)]
    query.  (The original achieves [O(log n + t)] by threading the
    layers together; the extra [log] per layer is a documented
    substitution.)  Space is [O(n)]: every input point lives in exactly
    one layer. *)

type t

val build : Point2.t array -> t
(** O(n . layers . log n) peeling; fine for the sizes benched here. *)

val layer_count : t -> int

val layer : t -> int -> Chull.t

val size : t -> int

val space_words : t -> int

val report_halfplane : t -> Halfplane.t -> (Point2.t -> unit) -> int
(** Report every point inside the halfplane; returns the count.  The
    callback may raise to stop early. *)

val max_halfplane : t -> Halfplane.t -> Point2.t option
(** The maximum-{e dot-product} point is on the outer layer; this
    returns the maximum-{e weight} point inside the halfplane by
    scanning reported points — an O(t) helper for tests, not the max
    structure (see [Topk_halfspace.Hp_max]). *)
