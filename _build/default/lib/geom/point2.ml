type t = {
  x : float;
  y : float;
  weight : float;
  id : int;
}

let counter = ref 0

let make ?id ~x ~y ~weight () =
  if Float.is_nan x || Float.is_nan y then
    invalid_arg "Point2.make: NaN coordinate";
  let id =
    match id with
    | Some i -> i
    | None ->
        incr counter;
        !counter
  in
  { x; y; weight; id }

let compare_weight a b =
  match Float.compare a.weight b.weight with
  | 0 -> Int.compare a.id b.id
  | c -> c

let dot p (a, b) = (a *. p.x) +. (b *. p.y)

let orient p q r =
  ((q.x -. p.x) *. (r.y -. p.y)) -. ((q.y -. p.y) *. (r.x -. p.x))

let dist2 p (cx, cy) =
  let dx = p.x -. cx and dy = p.y -. cy in
  (dx *. dx) +. (dy *. dy)

let pp ppf p = Format.fprintf ppf "(%g, %g)@%g#%d" p.x p.y p.weight p.id

let of_coords ?weights rng coords =
  let n = Array.length coords in
  let weights =
    match weights with
    | Some w ->
        if Array.length w <> n then
          invalid_arg "Point2.of_coords: weights length mismatch";
        w
    | None -> Topk_util.Gen.distinct_weights rng n
  in
  Array.mapi
    (fun i (x, y) -> make ~id:(i + 1) ~x ~y ~weight:weights.(i) ())
    coords
