type t = {
  hulls : Chull.t array;  (* outermost first *)
  size : int;
}

let compare_xy (p : Point2.t) (q : Point2.t) =
  match Float.compare p.Point2.x q.Point2.x with
  | 0 -> Float.compare p.Point2.y q.Point2.y
  | c -> c

let build pts =
  (* Sort once; every peel is then linear in the surviving points. *)
  let sorted = Array.copy pts in
  Array.sort compare_xy sorted;
  let rec peel acc remaining =
    if Array.length remaining = 0 then List.rev acc
    else begin
      let hull = Chull.of_sorted_points remaining in
      let on_hull = Hashtbl.create 16 in
      Array.iter
        (fun (p : Point2.t) -> Hashtbl.replace on_hull p.Point2.id ())
        (Chull.ring hull);
      let rest =
        Array.of_list
          (List.filter
             (fun (p : Point2.t) -> not (Hashtbl.mem on_hull p.Point2.id))
             (Array.to_list remaining))
      in
      peel (hull :: acc) rest
    end
  in
  { hulls = Array.of_list (peel [] sorted); size = Array.length pts }

let layer_count t = Array.length t.hulls

let layer t i = t.hulls.(i)

let size t = t.size

let space_words t =
  Array.fold_left (fun acc h -> acc + Chull.space_words h) 0 t.hulls

let report_halfplane t h f =
  let total = ref 0 in
  let continue = ref true in
  let i = ref 0 in
  while !continue && !i < Array.length t.hulls do
    let c = Chull.report_halfplane t.hulls.(!i) h f in
    total := !total + c;
    (* An empty layer certifies that all deeper layers are empty. *)
    if c = 0 then continue := false;
    incr i
  done;
  !total

let max_halfplane t h =
  let best = ref None in
  let consider (p : Point2.t) =
    match !best with
    | None -> best := Some p
    | Some b -> if Point2.compare_weight p b > 0 then best := Some p
  in
  ignore (report_halfplane t h consider);
  !best
