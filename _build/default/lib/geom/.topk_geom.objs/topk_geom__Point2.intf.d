lib/geom/point2.mli: Format Topk_util
