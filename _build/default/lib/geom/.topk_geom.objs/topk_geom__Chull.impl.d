lib/geom/chull.ml: Array Float Halfplane List Point2 Topk_em Topk_util
