lib/geom/layers.mli: Chull Halfplane Point2
