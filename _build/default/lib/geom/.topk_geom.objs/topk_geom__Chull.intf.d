lib/geom/chull.mli: Halfplane Point2
