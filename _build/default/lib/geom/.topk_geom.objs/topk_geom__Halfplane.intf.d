lib/geom/halfplane.mli: Format Point2
