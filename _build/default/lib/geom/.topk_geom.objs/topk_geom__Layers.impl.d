lib/geom/layers.ml: Array Chull Float Hashtbl List Point2
