lib/geom/point2.ml: Array Float Format Int Topk_util
