lib/geom/halfplane.ml: Float Format Point2
