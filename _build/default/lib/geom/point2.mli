(** Weighted points of the plane — the elements of 2D halfspace
    (Section 5.4) and circular range reporting. *)

type t = private {
  x : float;
  y : float;
  weight : float;
  id : int;
}

val make : ?id:int -> x:float -> y:float -> weight:float -> unit -> t
(** @raise Invalid_argument on NaN coordinates. *)

val compare_weight : t -> t -> int
(** Weight with [id] tie-break — a strict total order. *)

val dot : t -> float * float -> float
(** [dot p (a, b)] is [a * p.x + b * p.y]. *)

val orient : t -> t -> t -> float
(** Twice the signed area of the triangle [p q r]: positive for a left
    (counterclockwise) turn. *)

val dist2 : t -> float * float -> float
(** Squared Euclidean distance to a raw coordinate pair. *)

val pp : Format.formatter -> t -> unit

val of_coords :
  ?weights:float array -> Topk_util.Rng.t -> (float * float) array -> t array
(** Attach distinct weights and fresh ids to raw coordinates. *)
