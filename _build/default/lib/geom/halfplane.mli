(** Closed halfplanes [a x + b y >= c] — the predicates of 2D halfspace
    reporting. *)

type t = private {
  a : float;
  b : float;
  c : float;
}

val make : a:float -> b:float -> c:float -> t
(** @raise Invalid_argument if [(a, b)] is the zero vector or any
    coefficient is NaN. *)

val of_triple : float * float * float -> t
(** For {!Topk_util.Gen.halfplanes} output. *)

val contains : t -> Point2.t -> bool

val value : t -> Point2.t -> float
(** [a x + b y - c]: nonnegative inside. *)

val direction : t -> float * float
(** The inward normal [(a, b)] — the direction in which the halfplane
    is unbounded. *)

val pp : Format.formatter -> t -> unit
