module Stats = Topk_em.Stats
module Search = Topk_util.Search

type t = {
  ring : Point2.t array;   (* CCW, starting at the lexicographic min *)
  lower : Point2.t array;  (* lower chain, x (then y) ascending *)
  upper : Point2.t array;  (* upper chain, x (then y) ascending *)
}

let compare_xy (p : Point2.t) (q : Point2.t) =
  match Float.compare p.Point2.x q.Point2.x with
  | 0 -> Float.compare p.Point2.y q.Point2.y
  | c -> c

(* Build one chain: keep only strict turns (orient > 0 survives). *)
let chain pts =
  let n = Array.length pts in
  let stack = Array.make (max 1 n) pts.(0) in
  let top = ref 0 in
  for i = 0 to n - 1 do
    let p = pts.(i) in
    while
      !top >= 2 && Point2.orient stack.(!top - 2) stack.(!top - 1) p <= 0.
    do
      decr top
    done;
    stack.(!top) <- p;
    incr top
  done;
  Array.sub stack 0 !top

let of_sorted_points sorted =
  let n = Array.length sorted in
  if n = 0 then { ring = [||]; lower = [||]; upper = [||] }
  else begin
    let lower = chain sorted in
    let reversed = Array.of_list (List.rev (Array.to_list sorted)) in
    let upper_desc = chain reversed in
    let upper = Array.of_list (List.rev (Array.to_list upper_desc)) in
    let l = Array.length lower and u = Array.length upper in
    let ring =
      if l + u - 2 <= 0 then [| lower.(0) |]
      else
        Array.init
          (l + u - 2)
          (fun i -> if i < l then lower.(i) else upper.(l + u - 2 - i))
    in
    { ring; lower; upper }
  end

let of_points pts =
  let sorted = Array.copy pts in
  Array.sort compare_xy sorted;
  of_sorted_points sorted

let is_empty t = Array.length t.ring = 0

let ring t = t.ring

let vertex_count t = Array.length t.ring

let space_words t =
  Array.length t.ring + Array.length t.lower + Array.length t.upper

(* Index into the ring of the j-th upper-chain vertex (x ascending). *)
let ring_index_of_upper t j =
  let l = Array.length t.lower and u = Array.length t.upper in
  let len = Array.length t.ring in
  if j = 0 then 0 else (l - 1 + (u - 1 - j)) mod len

(* Binary search for the maximum of an (x-monotone, sign-unimodal)
   dot-product sequence along a chain. *)
let chain_argmax chainv dir =
  let len = Array.length chainv in
  let f i = Point2.dot chainv.(i) dir in
  Stats.charge_ios (max 1 (int_of_float (Float.log2 (float_of_int (len + 1)))));
  if len = 1 then 0
  else
    match Search.binary_search_first (fun i -> f (i + 1) < f i) 0 (len - 1) with
    | Some i -> i
    | None -> len - 1

let extreme t ~dir =
  let a, b = dir in
  if a = 0. && b = 0. then invalid_arg "Chull.extreme: zero direction";
  let len = Array.length t.ring in
  if len = 0 then None
  else if len = 1 then Some (0, t.ring.(0))
  else if b < 0. || (b = 0. && a > 0.) then begin
    (* Lower chain holds every downward extreme; for b = 0, a > 0 the
       rightmost vertex (last of the lower chain) is extreme.  Ring
       indices 0 .. L-1 are exactly the lower chain. *)
    let j =
      if b = 0. then Array.length t.lower - 1 else chain_argmax t.lower dir
    in
    Some (j, t.lower.(j))
  end
  else if b > 0. then begin
    let j = chain_argmax t.upper dir in
    let idx = ring_index_of_upper t j in
    Some (idx, t.upper.(j))
  end
  else (* b = 0., a < 0. : leftmost vertex *)
    Some (0, t.ring.(0))

let report_halfplane t h f =
  match extreme t ~dir:(Halfplane.direction h) with
  | None -> 0
  | Some (idx, p) ->
      if not (Halfplane.contains h p) then 0
      else begin
        let len = Array.length t.ring in
        let count = ref 0 in
        let report q =
          Stats.charge_scan 1;
          incr count;
          f q
        in
        report p;
        (* The inside vertices form a contiguous arc around [idx]. *)
        let fwd = ref 1 in
        while
          !fwd < len && Halfplane.contains h t.ring.((idx + !fwd) mod len)
        do
          report t.ring.((idx + !fwd) mod len);
          incr fwd
        done;
        let back = ref 1 in
        while
          !back <= len - !fwd
          && Halfplane.contains h t.ring.((idx - !back + len) mod len)
        do
          report t.ring.((idx - !back + len) mod len);
          incr back
        done;
        !count
      end
