module P2 = Topk_geom.Point2

type elem = P2.t

type query = float * float * float * float

let weight (e : elem) = e.P2.weight

let id (e : elem) = e.P2.id

let matches (x1, x2, y1, y2) (e : elem) =
  x1 <= e.P2.x && e.P2.x <= x2 && y1 <= e.P2.y && e.P2.y <= y2

let pp_elem = P2.pp

let pp_query ppf (x1, x2, y1, y2) =
  Format.fprintf ppf "rect[%g, %g]x[%g, %g]" x1 x2 y1 y2
