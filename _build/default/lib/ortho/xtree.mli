(** The outer level of the 2D range tree: a segment tree over the
    x-rank order of the points.  An x-range decomposes into [O(log n)]
    canonical nodes; each node carries a caller-supplied secondary
    structure over its points (sorted by y inside the builders). *)

type 'node t

val build :
  make_node:(Topk_geom.Point2.t array -> 'node) ->
  Topk_geom.Point2.t array ->
  'node t
(** [make_node] receives each canonical node's points (a contiguous
    x-rank range). *)

val visit_range :
  'node t -> x1:float -> x2:float -> ('node -> unit) -> unit
(** Apply the callback to the canonical nodes covering the x-range,
    one I/O per node plus the rank binary search.  The callback may
    raise. *)

val fold : 'node t -> init:'acc -> f:('acc -> 'node -> 'acc) -> 'acc

val space_words : 'node t -> words:('node -> int) -> int

val size : 'node t -> int
