lib/ortho/ortho_pri.ml: Array Hashtbl Problem Topk_core Topk_geom Topk_range Xtree
