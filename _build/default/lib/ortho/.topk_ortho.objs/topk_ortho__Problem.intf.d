lib/ortho/problem.mli: Topk_core Topk_geom
