lib/ortho/problem.ml: Format Topk_geom
