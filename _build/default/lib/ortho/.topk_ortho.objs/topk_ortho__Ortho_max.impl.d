lib/ortho/ortho_max.ml: Array Hashtbl Problem Topk_geom Topk_range Xtree
