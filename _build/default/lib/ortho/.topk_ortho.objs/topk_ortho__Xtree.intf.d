lib/ortho/xtree.mli: Topk_geom
