lib/ortho/instances.ml: Ortho_max Ortho_pri Problem Topk_core
