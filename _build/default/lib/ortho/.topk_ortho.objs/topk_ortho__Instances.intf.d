lib/ortho/instances.mli: Ortho_max Ortho_pri Problem Topk_core Topk_geom
