lib/ortho/ortho_max.mli: Problem Topk_core
