lib/ortho/xtree.ml: Array Float Int Topk_em Topk_geom Topk_util
