lib/ortho/ortho_pri.mli: Problem Topk_core
