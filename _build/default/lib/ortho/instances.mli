(** Ready-made top-k 2D orthogonal range reporting structures. *)

module Oracle : module type of Topk_core.Oracle.Make (Problem)

module Topk_t1 : module type of Topk_core.Theorem1.Make (Ortho_pri)

module Topk_t2 : module type of Topk_core.Theorem2.Make (Ortho_pri) (Ortho_max)

module Topk_rj : Topk_core.Sigs.TOPK
  with type P.elem = Topk_geom.Point2.t
   and type P.query = float * float * float * float

module Topk_naive : Topk_core.Sigs.TOPK
  with type P.elem = Topk_geom.Point2.t
   and type P.query = float * float * float * float

val params : unit -> Topk_core.Params.t
(** [lambda = 4] ([O(n^4)] distinct rank rectangles),
    [Q_pri = Q_max = log2^2 n]. *)
