(** Max 2D orthogonal range reporting: the same range tree with a
    range-max segment tree ({!Topk_range.Range_max}) per canonical
    node — [O(log^2 n)] query, [O(n log n)] space. *)

include Topk_core.Sigs.MAX with module P = Problem
