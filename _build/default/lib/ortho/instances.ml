module Oracle = Topk_core.Oracle.Make (Problem)
module Topk_t1 = Topk_core.Theorem1.Make (Ortho_pri)
module Topk_t2 = Topk_core.Theorem2.Make (Ortho_pri) (Ortho_max)
module Topk_rj = Topk_core.Baseline_rj.Make (Ortho_pri)
module Topk_naive = Topk_core.Naive.Make (Problem)

let params () =
  let polylog2 n = Topk_core.Params.log2 n *. Topk_core.Params.log2 n in
  {
    Topk_core.Params.default with
    Topk_core.Params.lambda = 4.;
    q_pri = polylog2;
    q_max = polylog2;
  }
