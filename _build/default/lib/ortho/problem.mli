(** Top-k 2D orthogonal range reporting — the "2D (orthogonal)
    version" of top-k range reporting studied in [28, 29] of the
    paper's related work: elements are weighted planar points, a
    predicate is an axis-parallel rectangle [(x1, x2, y1, y2)]. *)

include
  Topk_core.Sigs.PROBLEM
    with type elem = Topk_geom.Point2.t
     and type query = float * float * float * float
