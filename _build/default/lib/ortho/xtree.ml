module Stats = Topk_em.Stats
module Search = Topk_util.Search
module P2 = Topk_geom.Point2

type 'node t = {
  xs : float array;  (* ascending x of the sorted points *)
  nodes : 'node option array;  (* 1-based heap order *)
  leaves : int;
  n : int;
}

let rec next_pow2 x k = if k >= x then k else next_pow2 x (2 * k)

let compare_x (a : P2.t) (b : P2.t) =
  match Float.compare a.P2.x b.P2.x with
  | 0 -> Int.compare a.P2.id b.P2.id
  | c -> c

let build ~make_node pts =
  let sorted = Array.copy pts in
  Array.sort compare_x sorted;
  let n = Array.length sorted in
  let leaves = next_pow2 (max 1 n) 1 in
  let nodes = Array.make (2 * leaves) None in
  (* Fill every heap node whose rank range is non-empty. *)
  let rec fill node lo hi =
    if lo < n && hi - lo >= 1 then begin
      nodes.(node) <- Some (make_node (Array.sub sorted lo (min hi n - lo)));
      if hi - lo > 1 then begin
        let mid = (lo + hi) / 2 in
        fill (2 * node) lo mid;
        fill ((2 * node) + 1) mid hi
      end
    end
  in
  fill 1 0 leaves;
  { xs = Array.map (fun (p : P2.t) -> p.P2.x) sorted; nodes; leaves; n }

let visit_range t ~x1 ~x2 f =
  Stats.charge_ios
    (max 1 (int_of_float (Float.log2 (float_of_int (t.n + 2)))));
  let a = Search.lower_bound ~cmp:Float.compare t.xs x1 in
  let b = Search.upper_bound ~cmp:Float.compare t.xs x2 in
  if a < b then begin
    let l = ref (t.leaves + a) and r = ref (t.leaves + b) in
    let apply node =
      Stats.charge_ios 1;
      match t.nodes.(node) with Some payload -> f payload | None -> ()
    in
    while !l < !r do
      if !l land 1 = 1 then begin
        apply !l;
        incr l
      end;
      if !r land 1 = 1 then begin
        decr r;
        apply !r
      end;
      l := !l / 2;
      r := !r / 2
    done
  end

let fold t ~init ~f =
  Array.fold_left
    (fun acc -> function Some payload -> f acc payload | None -> acc)
    init t.nodes

let space_words t ~words =
  Array.length t.xs + Array.length t.nodes
  + fold t ~init:0 ~f:(fun acc node -> acc + words node)

let size t = t.n
