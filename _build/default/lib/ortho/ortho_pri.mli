(** Prioritized 2D orthogonal range reporting: a range tree — segment
    tree on x-ranks, a prioritized 1D range structure
    ({!Topk_range.Range_pri}, keyed on y) per canonical node.  Query
    [(rect, tau)] in [O(log^2 n + t)]; space [O(n log^2 n)]. *)

include Topk_core.Sigs.PRIORITIZED with module P = Problem
