let lift_point (p : Pointd.t) =
  let d = Pointd.dim p in
  let coords = Array.make (d + 1) 0. in
  Array.blit p.Pointd.coords 0 coords 0 d;
  let norm2 = ref 0. in
  Array.iter (fun x -> norm2 := !norm2 +. (x *. x)) p.Pointd.coords;
  coords.(d) <- !norm2;
  Pointd.make ~id:p.Pointd.id ~coords ~weight:p.Pointd.weight ()

let lift_points = Array.map lift_point

let lift_ball (b : Predicates.Ball.t) =
  let center = b.Predicates.Ball.center in
  let r = b.Predicates.Ball.radius in
  let d = Array.length center in
  let normal = Array.make (d + 1) 0. in
  let norm2 = ref 0. in
  for i = 0 to d - 1 do
    normal.(i) <- 2. *. center.(i);
    norm2 := !norm2 +. (center.(i) *. center.(i))
  done;
  normal.(d) <- -1.;
  Predicates.Halfspace.make ~normal ~c:(!norm2 -. (r *. r))
