(** Max 2D halfplane reporting.

    Section 5.4 solves this by point location in the planar subdivision
    induced by weight-dominant regions (Sarnak–Tarjan persistence).
    We substitute an interface-equivalent structure: a tournament tree
    over the weight-descending order whose every node stores the convex
    hull of its range.  The heaviest point inside a halfplane is found
    by descending — go left whenever the left subtree's hull meets the
    halfplane (an [O(log n)] extreme-vertex test).  Query
    [O(log^2 n)], space [O(n log n)]. *)

include Topk_core.Sigs.MAX with module P = Hp_problem
