(** Weighted points of [R^d] — elements of d-dimensional halfspace
    (Section 5.5) and circular range reporting. *)

type t = private {
  coords : float array;
  weight : float;
  id : int;
}

val make : ?id:int -> coords:float array -> weight:float -> unit -> t
(** The coordinate array is copied.
    @raise Invalid_argument on an empty or NaN-containing vector. *)

val dim : t -> int

val compare_weight : t -> t -> int

val dot : t -> float array -> float
(** @raise Invalid_argument on dimension mismatch. *)

val dist2 : t -> float array -> float
(** Squared Euclidean distance to a center. *)

val pp : Format.formatter -> t -> unit

val of_coords :
  ?weights:float array -> Topk_util.Rng.t -> float array array -> t array
(** Attach distinct weights and fresh ids to raw coordinate vectors
    (e.g. {!Topk_util.Gen.points}). *)

val of_point2 : Topk_geom.Point2.t -> t
(** Embed a planar point (same weight and id). *)
