(** The two d-dimensional predicate families of Section 5.5 and
    Corollary 1: halfspaces [x . q >= c] and Euclidean balls
    [dist(x, q) <= r], each with the box-intersection test the kd-tree
    needs for pruning. *)

module type QUERY_SPEC = sig
  type query

  val name : string

  val matches : query -> Pointd.t -> bool

  val cell_possible : query -> mins:float array -> maxs:float array -> bool
  (** May the axis-parallel box [[mins, maxs]] contain a matching
      point?  Must never answer [false] when a matching point is
      inside (one-sided: [true] on a disjoint box merely costs time). *)

  val cell_certain : query -> mins:float array -> maxs:float array -> bool
  (** Is every point of the box certainly matching?  Must never answer
      [true] unless the whole box matches.  A subtree whose box is
      certain is reported by a sequential scan ([t/B] I/Os) instead of
      per-node probes — the EM layout assumption behind the
      [O(n^(1-1/d) + t/B)] bound. *)

  val pp_query : Format.formatter -> query -> unit
end

module Halfspace : sig
  type t = private {
    normal : float array;
    c : float;
  }

  val make : normal:float array -> c:float -> t
  (** @raise Invalid_argument on a zero or NaN normal. *)

  include QUERY_SPEC with type query = t
end

module Ball : sig
  type t = private {
    center : float array;
    radius : float;
  }

  val make : center:float array -> radius:float -> t
  (** @raise Invalid_argument on a negative radius or NaN input. *)

  include QUERY_SPEC with type query = t
end
