(** A kd-tree over weighted d-dimensional points, with subtree
    bounding boxes and maximum weights for pruning.

    This is the simulation substrate for the partition-tree black
    boxes of Section 5.5 (Afshani–Chan [4] in RAM, Agarwal et al. [6]
    in EM): for any query range with a constant-complexity boundary, a
    kd-tree visits [O(n^(1 - 1/d))] nodes that straddle the boundary
    plus the output — a polynomial [Q_pri], which is exactly the
    "hard query" regime in which Theorem 1 loses nothing.

    The traversal is generic in the predicate via
    {!Predicates.QUERY_SPEC}'s point and box tests. *)

type t

val build : Pointd.t array -> t
(** Median splits on cycling coordinates; O(n log n) expected.
    All points must share one dimension.
    @raise Invalid_argument on mixed dimensions. *)

val size : t -> int

val dim : t -> int

val space_words : t -> int

val visit :
  t ->
  tau:float ->
  cell_possible:(mins:float array -> maxs:float array -> bool) ->
  ?cell_certain:(mins:float array -> maxs:float array -> bool) ->
  matches:(Pointd.t -> bool) ->
  (Pointd.t -> unit) ->
  unit
(** Apply the callback to every point with weight [>= tau] satisfying
    [matches], pruning subtrees by bounding box and maximum weight.
    Subtrees whose box is [cell_certain] are reported as sequential
    scans (the EM contiguous-layout assumption) instead of per-node
    probes.  The callback may raise to stop early. *)

val max_query :
  t ->
  cell_possible:(mins:float array -> maxs:float array -> bool) ->
  matches:(Pointd.t -> bool) ->
  Pointd.t option
(** Branch-and-bound maximum weight: descend children in decreasing
    subtree-max order, pruning against the best found so far. *)
