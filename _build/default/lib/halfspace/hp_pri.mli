(** Prioritized 2D halfplane reporting — Section 5.4's construction:
    a balanced tree on weights whose canonical subsets each carry a
    halfplane-reporting structure.

    Here the weight tree is flattened into dyadic prefix blocks
    ({!Topk_core.Prefix_blocks}) over the weight-descending order, and
    each block carries an onion-layer structure
    ({!Topk_geom.Layers}).  A query [(q, tau)] turns the threshold
    into a prefix via binary search and reports from the [O(log n)]
    covering blocks: [O(log^2 n + t log n)] time, [O(n log n)] space
    (the paper reaches [O(log n + t)] with fractional cascading — a
    documented substitution). *)

include Topk_core.Sigs.PRIORITIZED with module P = Hp_problem
