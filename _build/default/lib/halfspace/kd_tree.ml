module Stats = Topk_em.Stats
module Select = Topk_util.Select

type node =
  | Leaf
  | Node of {
      point : Pointd.t;
      max_w : float;        (* over the whole subtree *)
      mins : float array;   (* subtree bounding box *)
      maxs : float array;
      left : node;
      right : node;
    }

type t = {
  root : node;
  n : int;
  d : int;
}

let bbox d arr lo hi =
  let mins = Array.make d Float.infinity in
  let maxs = Array.make d Float.neg_infinity in
  for i = lo to hi - 1 do
    let c = (arr.(i) : Pointd.t).Pointd.coords in
    for j = 0 to d - 1 do
      if c.(j) < mins.(j) then mins.(j) <- c.(j);
      if c.(j) > maxs.(j) then maxs.(j) <- c.(j)
    done
  done;
  (mins, maxs)

let rec build_node d arr lo hi depth =
  if hi <= lo then (Leaf, Float.neg_infinity)
  else begin
    let axis = depth mod d in
    let cmp (a : Pointd.t) (b : Pointd.t) =
      match Float.compare a.Pointd.coords.(axis) b.Pointd.coords.(axis) with
      | 0 -> Int.compare a.Pointd.id b.Pointd.id
      | c -> c
    in
    let mid = (lo + hi) / 2 in
    (* Median split within the slice. *)
    let slice = Array.sub arr lo (hi - lo) in
    let _ = Select.quickselect ~cmp slice (mid - lo) in
    Array.blit slice 0 arr lo (hi - lo);
    let point = arr.(mid) in
    let left, wl = build_node d arr lo mid (depth + 1) in
    let right, wr = build_node d arr (mid + 1) hi (depth + 1) in
    let mins, maxs = bbox d arr lo hi in
    let max_w = Float.max point.Pointd.weight (Float.max wl wr) in
    (Node { point; max_w; mins; maxs; left; right }, max_w)
  end

let build points =
  let n = Array.length points in
  if n = 0 then { root = Leaf; n = 0; d = 1 }
  else begin
    let d = Pointd.dim points.(0) in
    Array.iter
      (fun p ->
        if Pointd.dim p <> d then
          invalid_arg "Kd_tree.build: mixed dimensions")
      points;
    let arr = Array.copy points in
    let root, _ = build_node d arr 0 n 0 in
    { root; n; d }
  end

let size t = t.n

let dim t = t.d

let space_words t = t.n * ((2 * t.d) + 3)

let visit t ~tau ~cell_possible ?cell_certain ~matches f =
  let certain =
    match cell_certain with
    | Some g -> g
    | None -> fun ~mins:_ ~maxs:_ -> false
  in
  (* A subtree whose box is entirely inside the range corresponds to a
     contiguous run in the EM layout: report it as a scan. *)
  let rec scan = function
    | Leaf -> ()
    | Node n ->
        if n.max_w >= tau then begin
          Stats.charge_scan 1;
          if n.point.Pointd.weight >= tau then f n.point;
          scan n.left;
          scan n.right
        end
  in
  let rec go = function
    | Leaf -> ()
    | Node n ->
        Stats.charge_ios 1;
        if n.max_w >= tau && cell_possible ~mins:n.mins ~maxs:n.maxs then begin
          if certain ~mins:n.mins ~maxs:n.maxs then scan (Node n)
          else begin
            if n.point.Pointd.weight >= tau && matches n.point then begin
              Stats.charge_scan 1;
              f n.point
            end;
            go n.left;
            go n.right
          end
        end
  in
  go t.root

let max_query t ~cell_possible ~matches =
  let best = ref None in
  let best_w () =
    match !best with
    | None -> Float.neg_infinity
    | Some p -> (p : Pointd.t).Pointd.weight
  in
  let rec go = function
    | Leaf -> ()
    | Node n ->
        Stats.charge_ios 1;
        if n.max_w > best_w () && cell_possible ~mins:n.mins ~maxs:n.maxs
        then begin
          if n.point.Pointd.weight > best_w () && matches n.point then
            best := Some n.point;
          (* Heavier subtree first tightens the bound sooner. *)
          let wl = match n.left with Leaf -> Float.neg_infinity | Node m -> m.max_w in
          let wr = match n.right with Leaf -> Float.neg_infinity | Node m -> m.max_w in
          if wl >= wr then begin
            go n.left;
            go n.right
          end
          else begin
            go n.right;
            go n.left
          end
        end
  in
  go t.root;
  !best
