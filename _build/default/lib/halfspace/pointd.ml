type t = {
  coords : float array;
  weight : float;
  id : int;
}

let counter = ref 0

let make ?id ~coords ~weight () =
  if Array.length coords = 0 then invalid_arg "Pointd.make: empty vector";
  if Array.exists Float.is_nan coords then
    invalid_arg "Pointd.make: NaN coordinate";
  let id =
    match id with
    | Some i -> i
    | None ->
        incr counter;
        !counter
  in
  { coords = Array.copy coords; weight; id }

let dim t = Array.length t.coords

let compare_weight a b =
  match Float.compare a.weight b.weight with
  | 0 -> Int.compare a.id b.id
  | c -> c

let dot t v =
  let d = Array.length t.coords in
  if Array.length v <> d then invalid_arg "Pointd.dot: dimension mismatch";
  let acc = ref 0. in
  for i = 0 to d - 1 do
    acc := !acc +. (t.coords.(i) *. v.(i))
  done;
  !acc

let dist2 t center =
  let d = Array.length t.coords in
  if Array.length center <> d then
    invalid_arg "Pointd.dist2: dimension mismatch";
  let acc = ref 0. in
  for i = 0 to d - 1 do
    let delta = t.coords.(i) -. center.(i) in
    acc := !acc +. (delta *. delta)
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "(%s)@%g#%d"
    (String.concat ", "
       (Array.to_list (Array.map (Printf.sprintf "%g") t.coords)))
    t.weight t.id

let of_coords ?weights rng coords =
  let n = Array.length coords in
  let weights =
    match weights with
    | Some w ->
        if Array.length w <> n then
          invalid_arg "Pointd.of_coords: weights length mismatch";
        w
    | None -> Topk_util.Gen.distinct_weights rng n
  in
  Array.mapi
    (fun i c -> make ~id:(i + 1) ~coords:c ~weight:weights.(i) ())
    coords

let of_point2 (p : Topk_geom.Point2.t) =
  make ~id:p.Topk_geom.Point2.id
    ~coords:[| p.Topk_geom.Point2.x; p.Topk_geom.Point2.y |]
    ~weight:p.Topk_geom.Point2.weight ()
