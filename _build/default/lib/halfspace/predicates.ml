module type QUERY_SPEC = sig
  type query

  val name : string

  val matches : query -> Pointd.t -> bool

  val cell_possible : query -> mins:float array -> maxs:float array -> bool

  val cell_certain : query -> mins:float array -> maxs:float array -> bool

  val pp_query : Format.formatter -> query -> unit
end

module Halfspace = struct
  type t = {
    normal : float array;
    c : float;
  }

  type query = t

  let name = "halfspace"

  let make ~normal ~c =
    if Array.length normal = 0 then invalid_arg "Halfspace.make: empty normal";
    if Array.exists Float.is_nan normal || Float.is_nan c then
      invalid_arg "Halfspace.make: NaN coefficient";
    if Array.for_all (fun a -> a = 0.) normal then
      invalid_arg "Halfspace.make: zero normal";
    { normal = Array.copy normal; c }

  let matches q p = Pointd.dot p q.normal >= q.c

  let cell_possible q ~mins ~maxs =
    (* Maximum of the linear form over the box. *)
    let acc = ref 0. in
    for i = 0 to Array.length q.normal - 1 do
      let a = q.normal.(i) in
      acc := !acc +. (a *. (if a >= 0. then maxs.(i) else mins.(i)))
    done;
    !acc >= q.c

  let cell_certain q ~mins ~maxs =
    (* Minimum of the linear form over the box. *)
    let acc = ref 0. in
    for i = 0 to Array.length q.normal - 1 do
      let a = q.normal.(i) in
      acc := !acc +. (a *. (if a >= 0. then mins.(i) else maxs.(i)))
    done;
    !acc >= q.c

  let pp_query ppf q =
    Format.fprintf ppf "halfspace(%s >= %g)"
      (String.concat " + "
         (List.mapi
            (fun i a -> Printf.sprintf "%gx%d" a i)
            (Array.to_list q.normal)))
      q.c
end

module Ball = struct
  type t = {
    center : float array;
    radius : float;
  }

  type query = t

  let name = "ball"

  let make ~center ~radius =
    if radius < 0. then invalid_arg "Ball.make: negative radius";
    if Array.exists Float.is_nan center || Float.is_nan radius then
      invalid_arg "Ball.make: NaN input";
    { center = Array.copy center; radius }

  let matches q p = Pointd.dist2 p q.center <= q.radius *. q.radius

  let cell_possible q ~mins ~maxs =
    (* Squared distance from the center to the box. *)
    let acc = ref 0. in
    for i = 0 to Array.length q.center - 1 do
      let c = q.center.(i) in
      let delta =
        if c < mins.(i) then mins.(i) -. c
        else if c > maxs.(i) then c -. maxs.(i)
        else 0.
      in
      acc := !acc +. (delta *. delta)
    done;
    !acc <= q.radius *. q.radius

  let cell_certain q ~mins ~maxs =
    (* Squared distance from the center to the farthest box corner. *)
    let acc = ref 0. in
    for i = 0 to Array.length q.center - 1 do
      let c = q.center.(i) in
      let delta = Float.max (Float.abs (c -. mins.(i))) (Float.abs (maxs.(i) -. c)) in
      acc := !acc +. (delta *. delta)
    done;
    !acc <= q.radius *. q.radius

  let pp_query ppf q =
    Format.fprintf ppf "ball(center=(%s), r=%g)"
      (String.concat ", "
         (Array.to_list (Array.map (Printf.sprintf "%g") q.center)))
      q.radius
end
