(** 2D halfspace reporting as a framework problem: elements are
    weighted planar points, a predicate is a closed halfplane
    (Section 5.4). *)

include
  Topk_core.Sigs.PROBLEM
    with type elem = Topk_geom.Point2.t
     and type query = Topk_geom.Halfplane.t
