(** Ready-made top-k structures for halfspace and circular reporting
    (Theorem 3 and Corollary 1). *)

(** {1 The plane (Theorem 3, first bullet)} *)

module Oracle2 : module type of Topk_core.Oracle.Make (Hp_problem)

(** Theorem 1 over the onion-layer prioritized structure. *)
module Topk2_t1 : module type of Topk_core.Theorem1.Make (Hp_pri)

(** Theorem 2 over onion layers + hull tournament: the expected
    no-degradation structure of Theorem 3's first bullet. *)
module Topk2_t2 : module type of Topk_core.Theorem2.Make (Hp_pri) (Hp_max)

module Topk2_rj : Topk_core.Sigs.TOPK
  with type P.elem = Topk_geom.Point2.t
   and type P.query = Topk_geom.Halfplane.t

module Topk2_naive : Topk_core.Sigs.TOPK
  with type P.elem = Topk_geom.Point2.t
   and type P.query = Topk_geom.Halfplane.t

val params2 : unit -> Topk_core.Params.t
(** [lambda = 2] ([O(n^2)] halfplane outcomes),
    [Q_pri = Q_max = log2^2 n]. *)

(** {1 Dimension d >= 3 via kd-trees (Theorem 3, bullets 2-3)} *)

(** The d-dimensional halfspace problem. *)
module Hs_problem : Topk_core.Sigs.PROBLEM
  with type elem = Pointd.t
   and type query = Predicates.Halfspace.t

module Kd_hs_pri : Topk_core.Sigs.PRIORITIZED with module P = Hs_problem

module Kd_hs_max : Topk_core.Sigs.MAX with module P = Hs_problem

module Topkd_t1 : module type of Topk_core.Theorem1.Make (Kd_hs_pri)

module Topkd_t2 : module type of Topk_core.Theorem2.Make (Kd_hs_pri) (Kd_hs_max)

module Topkd_naive : Topk_core.Sigs.TOPK
  with type P.elem = Pointd.t
   and type P.query = Predicates.Halfspace.t

module Oracled : module type of Topk_core.Oracle.Make (Hs_problem)

val paramsd : d:int -> Topk_core.Params.t
(** Polynomial costs: [Q_pri(n) = n^(1 - 1/d)] — the "hard query"
    regime where Theorem 1 promises [Q_top = O(Q_pri)]. *)

(** {1 Circular reporting (Corollary 1)} *)

(** The d-dimensional ball problem (queried directly on a kd-tree; the
    lifting route is exercised via {!Lifting} + the halfspace
    instances). *)
module Ball_problem : Topk_core.Sigs.PROBLEM
  with type elem = Pointd.t
   and type query = Predicates.Ball.t

module Kd_ball_pri : Topk_core.Sigs.PRIORITIZED with module P = Ball_problem

module Kd_ball_max : Topk_core.Sigs.MAX with module P = Ball_problem

module Topk_ball_t1 : Topk_core.Sigs.TOPK
  with type P.elem = Pointd.t
   and type P.query = Predicates.Ball.t

module Topk_ball_t2 : Topk_core.Sigs.TOPK
  with type P.elem = Pointd.t
   and type P.query = Predicates.Ball.t

module Oracle_ball : module type of Topk_core.Oracle.Make (Ball_problem)
