module P2 = Topk_geom.Point2
module Hp = Topk_geom.Halfplane

type elem = P2.t

type query = Hp.t

let weight (e : elem) = e.P2.weight

let id (e : elem) = e.P2.id

let matches q e = Hp.contains q e

let pp_elem = P2.pp

let pp_query = Hp.pp
