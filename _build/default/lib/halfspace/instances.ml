module Oracle2 = Topk_core.Oracle.Make (Hp_problem)
module Topk2_t1 = Topk_core.Theorem1.Make (Hp_pri)
module Topk2_t2 = Topk_core.Theorem2.Make (Hp_pri) (Hp_max)
module Topk2_rj = Topk_core.Baseline_rj.Make (Hp_pri)
module Topk2_naive = Topk_core.Naive.Make (Hp_problem)

let params2 () =
  let polylog2 n = Topk_core.Params.log2 n *. Topk_core.Params.log2 n in
  {
    Topk_core.Params.default with
    Topk_core.Params.lambda = 2.;
    q_pri = polylog2;
    q_max = polylog2;
  }

module Hs_problem = struct
  type elem = Pointd.t

  type query = Predicates.Halfspace.t

  let weight (e : elem) = e.Pointd.weight

  let id (e : elem) = e.Pointd.id

  let matches = Predicates.Halfspace.matches

  let pp_elem = Pointd.pp

  let pp_query = Predicates.Halfspace.pp_query
end

module Kd_hs_pri = Kd_structures.Pri (Predicates.Halfspace) (Hs_problem)
module Kd_hs_max = Kd_structures.Max (Predicates.Halfspace) (Hs_problem)
module Topkd_t1 = Topk_core.Theorem1.Make (Kd_hs_pri)
module Topkd_t2 = Topk_core.Theorem2.Make (Kd_hs_pri) (Kd_hs_max)
module Topkd_naive = Topk_core.Naive.Make (Hs_problem)
module Oracled = Topk_core.Oracle.Make (Hs_problem)

let paramsd ~d =
  let poly n =
    Float.max 1.
      (Float.of_int n ** (1. -. (1. /. float_of_int (max 2 d))))
  in
  {
    Topk_core.Params.default with
    Topk_core.Params.lambda = float_of_int (max 2 d);
    q_pri = poly;
    q_max = poly;
  }

module Ball_problem = struct
  type elem = Pointd.t

  type query = Predicates.Ball.t

  let weight (e : elem) = e.Pointd.weight

  let id (e : elem) = e.Pointd.id

  let matches = Predicates.Ball.matches

  let pp_elem = Pointd.pp

  let pp_query = Predicates.Ball.pp_query
end

module Kd_ball_pri = Kd_structures.Pri (Predicates.Ball) (Ball_problem)
module Kd_ball_max = Kd_structures.Max (Predicates.Ball) (Ball_problem)
module Topk_ball_t1 = Topk_core.Theorem1.Make (Kd_ball_pri)
module Topk_ball_t2 = Topk_core.Theorem2.Make (Kd_ball_pri) (Kd_ball_max)
module Oracle_ball = Topk_core.Oracle.Make (Ball_problem)
