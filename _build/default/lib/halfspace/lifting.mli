(** The standard lifting trick [17] behind Corollary 1: map each point
    [x in R^d] onto the paraboloid point [(x, |x|^2) in R^(d+1)]; a
    ball query in [R^d] becomes a halfspace query in [R^(d+1)]:

    [dist(x, q) <= r  <=>  2 q . x - |x|^2 >= |q|^2 - r^2]. *)

val lift_point : Pointd.t -> Pointd.t
(** Same weight and id, one extra coordinate [|x|^2]. *)

val lift_points : Pointd.t array -> Pointd.t array

val lift_ball : Predicates.Ball.t -> Predicates.Halfspace.t
(** The halfspace in [R^(d+1)] equivalent to the ball under
    {!lift_point}. *)
