lib/halfspace/instances.ml: Float Hp_max Hp_pri Hp_problem Kd_structures Pointd Predicates Topk_core
