lib/halfspace/hp_problem.mli: Topk_core Topk_geom
