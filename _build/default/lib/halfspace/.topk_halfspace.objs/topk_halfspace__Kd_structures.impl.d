lib/halfspace/kd_structures.ml: Kd_tree Pointd Predicates Topk_core
