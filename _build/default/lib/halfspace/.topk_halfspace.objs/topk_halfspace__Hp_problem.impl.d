lib/halfspace/hp_problem.ml: Topk_geom
