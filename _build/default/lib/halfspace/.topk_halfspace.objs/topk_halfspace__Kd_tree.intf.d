lib/halfspace/kd_tree.mli: Pointd
