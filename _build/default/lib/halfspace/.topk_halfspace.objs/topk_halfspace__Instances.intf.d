lib/halfspace/instances.mli: Hp_max Hp_pri Hp_problem Pointd Predicates Topk_core Topk_geom
