lib/halfspace/hp_max.ml: Array Hp_problem Topk_em Topk_geom
