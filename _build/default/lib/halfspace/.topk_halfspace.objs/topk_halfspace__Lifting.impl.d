lib/halfspace/lifting.ml: Array Pointd Predicates
