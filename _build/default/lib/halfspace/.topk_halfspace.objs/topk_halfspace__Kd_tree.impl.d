lib/halfspace/kd_tree.ml: Array Float Int Pointd Topk_em Topk_util
