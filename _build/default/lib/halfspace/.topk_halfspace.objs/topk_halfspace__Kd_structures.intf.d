lib/halfspace/kd_structures.mli: Pointd Predicates Topk_core
