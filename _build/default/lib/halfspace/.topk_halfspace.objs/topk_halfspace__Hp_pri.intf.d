lib/halfspace/hp_pri.mli: Hp_problem Topk_core
