lib/halfspace/pointd.ml: Array Float Format Int Printf String Topk_geom Topk_util
