lib/halfspace/lifting.mli: Pointd Predicates
