lib/halfspace/hp_pri.ml: Array Float Hp_problem List Topk_core Topk_em Topk_geom Topk_util
