lib/halfspace/hp_max.mli: Hp_problem Topk_core
