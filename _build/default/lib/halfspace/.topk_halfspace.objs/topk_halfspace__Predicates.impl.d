lib/halfspace/predicates.ml: Array Float Format List Pointd Printf String
