lib/halfspace/pointd.mli: Format Topk_geom Topk_util
