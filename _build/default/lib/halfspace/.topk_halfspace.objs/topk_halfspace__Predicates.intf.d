lib/halfspace/predicates.mli: Format Pointd
