(** Kd-tree-backed prioritized and max structures for any
    {!Predicates.QUERY_SPEC} predicate family (halfspaces, balls), as
    consumed by the reduction theorems in the polynomial-query regime
    of Section 5.5. *)

module Pri
    (Q : Predicates.QUERY_SPEC)
    (P : Topk_core.Sigs.PROBLEM
           with type elem = Pointd.t
            and type query = Q.query) :
  Topk_core.Sigs.PRIORITIZED with module P = P

module Max
    (Q : Predicates.QUERY_SPEC)
    (P : Topk_core.Sigs.PROBLEM
           with type elem = Pointd.t
            and type query = Q.query) :
  Topk_core.Sigs.MAX with module P = P
