(** 1D range reporting as a framework problem: a predicate is a closed
    interval [(lo, hi)] of the line. *)

include
  Topk_core.Sigs.PROBLEM
    with type elem = Wpoint.t
     and type query = float * float
