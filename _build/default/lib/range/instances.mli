(** Ready-made top-k 1D range reporting structures, plus the
    demonstration of the bonus {!Topk_core.Max_from_pri} reduction:
    Theorem 2 driven entirely by the prioritized black box. *)

module Oracle : module type of Topk_core.Oracle.Make (Problem)

module Topk_t1 : module type of Topk_core.Theorem1.Make (Range_pri)

module Topk_t2 : module type of Topk_core.Theorem2.Make (Range_pri) (Range_max)

(** The synthesized max structure: [O(Q_pri log n)] queries, no
    problem-specific max code. *)
module Synth_max : module type of Topk_core.Max_from_pri.Make (Range_pri)

(** Theorem 2 with the synthesized max structure plugged in. *)
module Topk_t2_synth :
  module type of Topk_core.Theorem2.Make (Range_pri) (Synth_max)

module Topk_rj : Topk_core.Sigs.TOPK
  with type P.elem = Wpoint.t
   and type P.query = float * float

module Topk_naive : Topk_core.Sigs.TOPK
  with type P.elem = Wpoint.t
   and type P.query = float * float

val params : unit -> Topk_core.Params.t
(** [lambda = 2] ([O(n^2)] distinct rank ranges),
    [Q_pri = Q_max = log2 n]. *)

(** Dynamic top-k 1D range reporting: Bentley–Saxe over {!Range_pri}
    plus {!Dyn_range_max} through the dynamic Theorem 2 — the second
    problem instantiating the update claim (after interval stabbing),
    showing the dynamic reduction is problem-agnostic as well. *)
module Dyn_pri : sig
  include Topk_core.Sigs.DYNAMIC_PRIORITIZED
    with type P.elem = Wpoint.t
     and type P.query = float * float
  val live : t -> int
  val rebuilds : t -> int
  val bucket_count : t -> int
end

module Dyn_topk : sig
  include Topk_core.Sigs.DYNAMIC_TOPK
    with type P.elem = Wpoint.t
     and type P.query = float * float
  val rungs : t -> int
  val resamples : t -> int
  val rounds_run : t -> int
  val rounds_failed : t -> int
end
