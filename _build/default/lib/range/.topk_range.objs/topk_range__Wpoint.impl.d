lib/range/wpoint.ml: Array Float Format Int Topk_util
