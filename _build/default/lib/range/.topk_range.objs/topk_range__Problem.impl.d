lib/range/problem.ml: Format Wpoint
