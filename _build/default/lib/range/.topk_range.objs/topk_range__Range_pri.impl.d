lib/range/range_pri.ml: Array Float Problem Topk_core Topk_em Topk_util Wpoint
