lib/range/range_max.ml: Array Float Problem Topk_em Topk_util Wpoint
