lib/range/dyn_range_max.mli: Problem Topk_core
