lib/range/instances.mli: Problem Range_max Range_pri Topk_core Wpoint
