lib/range/instances.ml: Dyn_range_max Problem Range_max Range_pri Topk_core
