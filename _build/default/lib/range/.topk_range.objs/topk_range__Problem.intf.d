lib/range/problem.mli: Topk_core Wpoint
