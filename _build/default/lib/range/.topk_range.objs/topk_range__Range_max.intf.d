lib/range/range_max.mli: Problem Topk_core
