lib/range/dyn_range_max.ml: Array Float Hashtbl Problem Topk_em Topk_util Wpoint
