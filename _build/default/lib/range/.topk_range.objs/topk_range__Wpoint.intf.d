lib/range/wpoint.mli: Format Topk_util
