lib/range/range_pri.mli: Problem Topk_core Wpoint
