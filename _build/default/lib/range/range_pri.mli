(** Prioritized 1D range reporting: a segment tree over the
    position-sorted points whose canonical nodes keep their points in
    decreasing weight order.  A query decomposes the rank range of
    [[lo, hi]] into [O(log n)] canonical nodes and scans each list
    until the weight drops below [tau]: [O(log n + t)] time,
    [O(n log n)] space — the structure of Sheng–Tao / Tao
    ([33, 35]) with binary instead of B-ary fanout. *)

include Topk_core.Sigs.PRIORITIZED with module P = Problem

val visit : t -> float * float -> tau:float -> (Wpoint.t -> unit) -> unit
(** Streaming form; the callback may raise to stop early. *)
