(** Dynamic 1D range-max: logarithmic-method buckets, each a segment
    tree over the bucket's points whose canonical nodes keep
    weight-descending arrays with a head pointer skipping tombstoned
    entries (each skip amortizes against one deletion).  The same
    construction as the dynamic stabbing-max of Theorem 4
    ({!Topk_interval.Dyn_max}) on a different problem — the [U_max]
    black box for a dynamic top-k range structure. *)

include Topk_core.Sigs.DYNAMIC_MAX with module P = Problem

val live : t -> int

val rebuilds : t -> int
