(** Weighted points of the real line — the elements of 1D top-k range
    reporting, the problem whose study ([3, 11, 12, 33, 35] in the
    paper's related work) motivated the general reductions: a query
    interval [[lo, hi]] selects every point inside it. *)

type t = private {
  pos : float;
  weight : float;
  id : int;
}

val make : ?id:int -> pos:float -> weight:float -> unit -> t
(** @raise Invalid_argument on a NaN position. *)

val compare_weight : t -> t -> int

val compare_pos : t -> t -> int

val pp : Format.formatter -> t -> unit

val of_positions :
  ?weights:float array -> Topk_util.Rng.t -> float array -> t array
