type elem = Wpoint.t

type query = float * float

let weight (e : elem) = e.Wpoint.weight

let id (e : elem) = e.Wpoint.id

let matches (lo, hi) (e : elem) =
  lo <= e.Wpoint.pos && e.Wpoint.pos <= hi

let pp_elem = Wpoint.pp

let pp_query ppf (lo, hi) = Format.fprintf ppf "range[%g, %g]" lo hi
