module Oracle = Topk_core.Oracle.Make (Problem)
module Topk_t1 = Topk_core.Theorem1.Make (Range_pri)
module Topk_t2 = Topk_core.Theorem2.Make (Range_pri) (Range_max)
module Synth_max = Topk_core.Max_from_pri.Make (Range_pri)
module Topk_t2_synth = Topk_core.Theorem2.Make (Range_pri) (Synth_max)
module Topk_rj = Topk_core.Baseline_rj.Make (Range_pri)
module Topk_naive = Topk_core.Naive.Make (Problem)

let params () =
  {
    Topk_core.Params.default with
    Topk_core.Params.lambda = 2.;
    q_pri = Topk_core.Params.log2;
    q_max = Topk_core.Params.log2;
  }

module Dyn_pri = Topk_core.Bentley_saxe.Make (Range_pri)
module Dyn_topk = Topk_core.Theorem2_dynamic.Make (Dyn_pri) (Dyn_range_max)
