(** Max 1D range reporting: the same segment tree storing only the
    maximum-weight point per node — [O(n)] space, [O(log n)] query
    (a classic range-maximum structure). *)

include Topk_core.Sigs.MAX with module P = Problem
