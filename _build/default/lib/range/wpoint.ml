type t = {
  pos : float;
  weight : float;
  id : int;
}

let counter = ref 0

let make ?id ~pos ~weight () =
  if Float.is_nan pos then invalid_arg "Wpoint.make: NaN position";
  let id =
    match id with
    | Some i -> i
    | None ->
        incr counter;
        !counter
  in
  { pos; weight; id }

let compare_weight a b =
  match Float.compare a.weight b.weight with
  | 0 -> Int.compare a.id b.id
  | c -> c

let compare_pos a b =
  match Float.compare a.pos b.pos with
  | 0 -> Int.compare a.id b.id
  | c -> c

let pp ppf t = Format.fprintf ppf "%g@%g#%d" t.pos t.weight t.id

let of_positions ?weights rng positions =
  let n = Array.length positions in
  let weights =
    match weights with
    | Some w ->
        if Array.length w <> n then
          invalid_arg "Wpoint.of_positions: weights length mismatch";
        w
    | None -> Topk_util.Gen.distinct_weights rng n
  in
  Array.mapi
    (fun i pos -> make ~id:(i + 1) ~pos ~weight:weights.(i) ())
    positions
