module Make (P : Sigs.PROBLEM) = struct
  module W = Sigs.Weight_order (P)

  type t = { elems : P.elem array }

  let build elems = { elems = Array.copy elems }

  let elements t = t.elems

  let matching t q =
    Array.to_list t.elems |> List.filter (fun e -> P.matches q e)

  let top_k t q ~k = W.top_k k (matching t q)

  let prioritized t q ~tau =
    matching t q
    |> List.filter (fun e -> P.weight e >= tau)
    |> W.sort_desc

  let max t q =
    List.fold_left
      (fun best e ->
        match best with
        | None -> Some e
        | Some b -> Some (W.max b e))
      None (matching t q)

  let count t q = List.length (matching t q)
end
