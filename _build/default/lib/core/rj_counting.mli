(** The other Rahul–Janardan reduction (reviewed in Section 2 of the
    paper): top-k from {e reporting} + {e exact counting} black boxes.

    A balanced binary tree over the weight-descending order carries,
    at every node, one reporting structure and one counting structure
    on that node's weight range (each element lives in [O(log n)]
    nodes, so space is [O((S_rep + S_cnt) log n)]).

    A top-k query first locates the rank [r*] of the k-th heaviest
    matching element by descending the tree with counting queries
    (left-child count [>= remaining] goes left, else subtract and go
    right), then reports the matching elements of the canonical
    weight-rank prefix up to [r*] — the left subtrees skipped during
    the descent — which contain exactly the [k] answers.  Query
    [O((Q_cnt + Q_rep) log n + k/B)].

    This is the machinery the paper's Section 1.4 competitors are
    built from; experiment E7b compares it against Theorems 1-2, whose
    entire point is removing the [log n] factors it carries. *)

module Make (S : Sigs.PRIORITIZED) (C : Sigs.COUNTING with module P = S.P) : sig
  include Sigs.TOPK with module P = S.P

  val counting_queries : t -> int
  (** Counting probes across all queries so far. *)
end
