lib/core/sigs.ml: Array Float Format Int P Params Topk_util
