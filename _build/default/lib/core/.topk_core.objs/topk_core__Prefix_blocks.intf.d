lib/core/prefix_blocks.mli:
