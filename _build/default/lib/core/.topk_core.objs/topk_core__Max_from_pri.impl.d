lib/core/max_from_pri.ml: Array Float List Sigs Topk_util
