lib/core/core_set.mli: Topk_util
