lib/core/theorem1.mli: Sigs
