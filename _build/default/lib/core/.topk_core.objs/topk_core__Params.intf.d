lib/core/params.mli:
