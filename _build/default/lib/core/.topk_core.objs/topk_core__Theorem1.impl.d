lib/core/theorem1.ml: Array Core_set Float List Params Sigs Topk_em Topk_util
