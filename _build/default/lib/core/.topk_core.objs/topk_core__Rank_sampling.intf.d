lib/core/rank_sampling.mli: Format Topk_util
