lib/core/params.ml: Float Topk_em
