lib/core/oracle.ml: Array List Sigs
