lib/core/theorem2.ml: Array Float List Params Sigs Topk_em Topk_util
