lib/core/naive.ml: Array Sigs Topk_em
