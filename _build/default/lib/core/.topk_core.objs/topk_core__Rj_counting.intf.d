lib/core/rj_counting.mli: Sigs
