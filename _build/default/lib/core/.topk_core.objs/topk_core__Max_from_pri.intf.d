lib/core/max_from_pri.mli: Sigs
