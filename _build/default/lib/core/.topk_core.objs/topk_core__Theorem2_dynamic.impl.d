lib/core/theorem2_dynamic.ml: Array Float Hashtbl List Params Sigs Topk_em Topk_util
