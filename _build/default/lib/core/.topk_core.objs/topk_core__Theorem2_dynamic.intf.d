lib/core/theorem2_dynamic.mli: Sigs
