lib/core/theorem2.mli: Sigs
