lib/core/baseline_rj.ml: Array Float List Sigs Topk_em Topk_util
