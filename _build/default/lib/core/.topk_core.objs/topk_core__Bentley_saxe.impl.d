lib/core/bentley_saxe.ml: Array Hashtbl List Sigs Topk_em
