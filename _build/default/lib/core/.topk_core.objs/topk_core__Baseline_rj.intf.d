lib/core/baseline_rj.mli: Sigs
