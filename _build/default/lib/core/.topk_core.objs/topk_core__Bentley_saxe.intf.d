lib/core/bentley_saxe.mli: P Sigs
