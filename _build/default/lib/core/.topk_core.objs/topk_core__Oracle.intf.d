lib/core/oracle.mli: Sigs
