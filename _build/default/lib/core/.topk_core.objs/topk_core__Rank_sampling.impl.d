lib/core/rank_sampling.ml: Array Format Topk_util
