lib/core/rj_counting.ml: Array Float List Sigs Topk_em
