lib/core/naive.mli: Sigs
