lib/core/core_set.ml: Array Params Topk_util
