lib/core/prefix_blocks.ml: Array Float List Topk_em
