(** Dyadic prefix decomposition — the "canonical set" machinery of
    Sections 5.4 and 5.5.

    Several prioritized structures in the paper sort the input by
    weight (descending) and hang a reporting structure over each
    canonical subset of a balanced search tree on weights; a query
    threshold [tau] then selects a {e prefix} of the weight order,
    which those trees cover with [O(log n)] canonical nodes.

    This module implements the equivalent flat form: one sub-structure
    per {e aligned dyadic block} [[o, o + 2^l)] (offset divisible by
    the size), so any prefix [[0, m)] is the disjoint union of at most
    [log2 n + 1] stored blocks, read off the binary digits of [m].
    Every element lives in at most [log2 n + 1] blocks, so if the
    sub-structure uses linear space the whole decomposition uses
    [O(n log n)]. *)

type 's t

val build : build:(int -> int -> 's) -> n:int -> 's t
(** [build ~build ~n] stores a sub-structure [build o len] for every
    aligned dyadic block [[o, o + len)] inside [[0, n)] (partial
    trailing blocks included, so every prefix is coverable). *)

val length : 's t -> int
(** The [n] it was built for. *)

val query_prefix : 's t -> int -> 's list
(** [query_prefix t m] is the [O(log n)] sub-structures whose blocks
    partition [[0, min m n)], charged one I/O each for the lookup. *)

val iter_all : 's t -> ('s -> unit) -> unit

val fold_all : 's t -> init:'acc -> f:('acc -> 's -> 'acc) -> 'acc
