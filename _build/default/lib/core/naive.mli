(** The trivial top-k structure: store [D] as a flat array; a query
    scans everything ([n/B] I/Os) and k-selects.  This is both the
    baseline every reduction must beat for small [k] and the method the
    reductions themselves fall back to when [k = Omega(n)]. *)

module Make (P : Sigs.PROBLEM) : Sigs.TOPK with module P = P
