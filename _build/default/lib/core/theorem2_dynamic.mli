(** The dynamic form of Theorem 2 (the "Update" paragraph of
    Section 4): given dynamic prioritized and max black boxes, the
    sample-ladder top-k structure supports insertions and deletions in
    [O(U_pri + U_max)] expected (amortized if the black boxes
    amortize).

    An inserted element joins sample [R_i] independently with
    probability [1/K_i]; since the rates decrease geometrically it
    lands in O(1) max structures in expectation, and a hash table
    remembers which ones so deletion undoes exactly those.  The ladder
    rungs are a function of [n], so a global resample fires when the
    live size drifts by a factor of 2 — O(1) amortized extra updates.

    Queries run the same round algorithm as the static
    {!Theorem2}. *)

module Make
    (S : Sigs.DYNAMIC_PRIORITIZED)
    (M : Sigs.DYNAMIC_MAX with module P = S.P) : sig
  include Sigs.DYNAMIC_TOPK with module P = S.P

  val rungs : t -> int

  val resamples : t -> int
  (** Ladder rebuilds triggered by size drift so far. *)

  val rounds_run : t -> int

  val rounds_failed : t -> int
end
