module Rng = Topk_util.Rng
module Select = Topk_util.Select

let min_p ~k ~delta =
  if k <= 0 then invalid_arg "Rank_sampling.min_p: k must be >= 1";
  if delta <= 0. || delta >= 1. then
    invalid_arg "Rank_sampling.min_p: delta must be in (0,1)";
  min 1. (3. *. log (3. /. delta) /. float_of_int k)

let sample_rank ~k ~p =
  int_of_float (ceil (2. *. float_of_int k *. p))

type outcome =
  | Ok_rank
  | Too_few_samples
  | Rank_too_low
  | Rank_too_high

let pp_outcome ppf = function
  | Ok_rank -> Format.pp_print_string ppf "ok"
  | Too_few_samples -> Format.pp_print_string ppf "too-few-samples"
  | Rank_too_low -> Format.pp_print_string ppf "rank-too-low"
  | Rank_too_high -> Format.pp_print_string ppf "rank-too-high"

let rank_of ~cmp arr x =
  let greater = ref 0 in
  Array.iter (fun y -> if cmp y x > 0 then incr greater) arr;
  !greater + 1

let lemma1_trial rng ~cmp ~k ~p arr =
  let r = Rng.sample rng ~p arr in
  let threshold = 2. *. float_of_int k *. p in
  if float_of_int (Array.length r) <= threshold then Too_few_samples
  else begin
    let rank_in_sample = sample_rank ~k ~p in
    (* Element of rank [rank_in_sample] from the greatest in R. *)
    let e = Select.nth_largest ~cmp r rank_in_sample in
    let rank_in_ground = rank_of ~cmp arr e in
    if rank_in_ground < k then Rank_too_low
    else if rank_in_ground > 4 * k then Rank_too_high
    else Ok_rank
  end

let lemma3_trial rng ~cmp ~kk arr =
  if kk < 2. then invalid_arg "Rank_sampling.lemma3_trial: K must be >= 2";
  let r = Rng.sample rng ~p:(1. /. kk) arr in
  if Array.length r = 0 then Too_few_samples
  else begin
    let e = Select.nth_largest ~cmp r 1 in
    let rank = float_of_int (rank_of ~cmp arr e) in
    if rank <= kk then Rank_too_low
    else if rank > 4. *. kk then Rank_too_high
    else Ok_rank
  end
