type t = {
  lambda : float;
  q_pri : int -> float;
  q_max : int -> float;
  sigma : float;
  coreset_scale : float;
  max_sample_retries : int;
  seed : int;
}

let log2 n = max 1. (Float.log2 (float_of_int (max 2 n)))

let ln n = max 1. (Float.log (float_of_int (max 2 n)))

let block_size () = (Topk_em.Config.current ()).Topk_em.Config.b

let default =
  {
    lambda = 2.;
    q_pri = log2;
    q_max = log2;
    sigma = 1. /. 20.;
    coreset_scale = 1.;
    max_sample_retries = 20;
    seed = 42;
  }

let with_costs ?q_pri ?q_max t =
  let t = match q_pri with Some f -> { t with q_pri = f } | None -> t in
  match q_max with Some f -> { t with q_max = f } | None -> t
