(** Theorem 2: the expected-cost reduction from top-k to prioritized
    plus max reporting (Section 4 of the paper).

    Given a prioritized structure ([S_pri], [Q_pri + O(t/B)]) and a max
    structure ([S_max], [Q_max]) with [S_max(n) = O(n^2/B)] and
    geometrically converging, the functor builds a top-k structure with
    {e no performance degradation in expectation}:

    - expected space [S_top = O(S_pri + S_max(6n / (B Q_max)))] (eq. 5);
    - expected query [Q_top + O(k/B)] with
      [Q_top = O(Q_pri + Q_max)] (eq. 6).

    Mechanics, mirroring Section 4: fix [sigma = 1/20] and
    [K_i = B . Q_max(n) . (1 + sigma)^(i-1)]; for each [i] up to the
    largest with [K_i <= n/4], store a (1/K_i)-sample [R_i] of [D] with
    a max structure on it.  A query with [k <= K_i] runs {e rounds}
    from the smallest adequate rung [j]:

    + a cost-monitored prioritized query with [tau = -inf] and limit
      [4 K_j] answers outright when [|q(D)| <= 4 K_j];
    + otherwise the max element [e] of [q(R_j)] is, by Lemma 3, a
      weight threshold of rank in [(K_j, 4 K_j]] within [q(D)] with
      probability >= 0.09;
    + a cost-monitored prioritized query with [tau = w(e)] fetches the
      candidates; the round {e succeeds} when it self-terminates with
      more than [K_j >= k] elements, and the answer is k-selected.

    A failed round escalates to [j + 1]; past the last rung the query
    scans [D], costing [O(n/B) = O(K_h/B) = O(k/B)].  Expected round
    count is O(1) because each fails with probability <= 0.91 and
    [(1 + sigma) . 0.91 < 1] keeps the geometric cost sum bounded. *)

module Make (S : Sigs.PRIORITIZED) (M : Sigs.MAX with module P = S.P) : sig
  include Sigs.TOPK with module P = S.P

  type info = {
    rungs : int;           (** ladder length [h] *)
    k1 : int;              (** [K_1 = B . Q_max(n)] *)
    sample_words : int;    (** words across all [R_i] max structures *)
    pri_words : int;       (** words of the prioritized structure on D *)
  }

  val info : t -> info

  val rounds_run : t -> int
  (** Total rounds executed across all queries so far. *)

  val rounds_failed : t -> int
  (** Rounds that failed (Step 4); the ratio to {!rounds_run} validates
      the [<= 0.91] failure bound empirically. *)
end
