(** The pre-existing general reduction the paper improves on
    (eqs. (1)–(2), due to Rahul and Janardan [28]): binary search on
    the weight threshold [tau] using cost-monitored prioritized
    queries.

    Space [S_top = O(S_pri)]; query
    [Q_top = O(Q_pri log n) + O((k/B) log n)] — note the multiplicative
    [log n] on the output term, which is exactly what Theorems 1 and 2
    remove.  Experiment E7 plots this gap.

    Mechanics: the weights of [D] are kept sorted; binary search finds
    the smallest weight [w*] with [|{e in q(D) : w(e) >= w*}| >= k]
    (monotone in [w*]); each probe is a monitored prioritized query
    with limit [k], costing [Q_pri + O(k/B)]; the final prioritized
    query at [w*] returns the top-k set exactly (weights are pairwise
    distinct, so the count increases by one per weight step). *)

module Make (S : Sigs.PRIORITIZED) : sig
  include Sigs.TOPK with module P = S.P

  val probes : t -> int
  (** Total binary-search probes issued across all queries so far. *)
end
