module Stats = Topk_em.Stats

type 's t = {
  n : int;
  (* levels.(l) holds the structures of size [2^l] blocks, indexed by
     [offset / 2^l]. *)
  levels : 's array array;
}

let build ~build ~n =
  if n < 0 then invalid_arg "Prefix_blocks.build: negative length";
  let rec levels acc l =
    let len = 1 lsl l in
    if len > n && l > 0 then List.rev acc
    else begin
      let count = (n + len - 1) / len in
      let structures =
        Array.init count (fun i ->
            let o = i * len in
            build o (min len (n - o)))
      in
      levels (structures :: acc) (l + 1)
    end
  in
  if n = 0 then { n; levels = [||] }
  else { n; levels = Array.of_list (levels [] 0) }

let length t = t.n

let query_prefix t m =
  let m = min m t.n in
  (* Peel the largest aligned block starting at the current offset that
     still fits in the prefix. *)
  let rec go acc o =
    if o >= m then List.rev acc
    else begin
      let remaining = m - o in
      let max_level = Array.length t.levels - 1 in
      (* Largest l with 2^l <= remaining and o aligned to 2^l. *)
      let l = ref (min max_level (int_of_float (Float.log2 (float_of_int remaining)))) in
      while (1 lsl !l) > remaining || o land ((1 lsl !l) - 1) <> 0 do
        decr l
      done;
      Stats.charge_ios 1;
      let s = t.levels.(!l).(o lsr !l) in
      go (s :: acc) (o + (1 lsl !l))
    end
  in
  go [] 0

let iter_all t f = Array.iter (fun lvl -> Array.iter f lvl) t.levels

let fold_all t ~init ~f =
  Array.fold_left (fun acc lvl -> Array.fold_left f acc lvl) init t.levels
