(** Tuning knobs of the reductions.

    Theorem 1's structure is parameterized by the polynomial-bounded
    constant [lambda] and by an estimate of the black box's query bound
    [Q_pri(n)] (used to set [f = 12 * lambda * B * Q_pri(n)], eq. (9));
    Theorem 2 additionally needs [Q_max(n)] (ladder base
    [K_1 = B * Q_max(n)]) and the ladder ratio [sigma] (1/20 in the
    paper; any value with [(1 + sigma) * 0.91 < 1] preserves the
    expected-cost proof). *)

type t = {
  lambda : float;
      (** the problem is [n^lambda]-polynomially bounded; [>= 1] *)
  q_pri : int -> float;
      (** estimate of [Q_pri(n)] in I/Os under the current model *)
  q_max : int -> float;
      (** estimate of [Q_max(n)] in I/Os *)
  sigma : float;
      (** Theorem 2 ladder growth factor; default 1/20 *)
  coreset_scale : float;
      (** ablation: multiplies [f] and the ladder base; default 1.
          Smaller values shrink core-sets (less space, more fallbacks) *)
  max_sample_retries : int;
      (** rebuild attempts before accepting an oversized sample *)
  seed : int;  (** root of all randomness inside the structure *)
}

val default : t
(** [lambda = 2.], [q_pri = q_max = log2], [sigma = 1/20],
    [coreset_scale = 1.], [max_sample_retries = 20], [seed = 42]. *)

val with_costs : ?q_pri:(int -> float) -> ?q_max:(int -> float) -> t -> t

val log2 : int -> float
(** [log2 n] as a float, at least 1. *)

val ln : int -> float
(** Natural log, at least 1. *)

val block_size : unit -> int
(** [B] of the current {!Topk_em.Config}. *)
