(** Rank sampling — Lemmas 1 and 3 of the paper.

    Lemma 1: for a p-sample [R] of an n-set [S], if [k * p >= 3 ln(3 /
    delta)] and [n >= 4k], then with probability [>= 1 - delta] both
    [|R| > 2kp] and the element of rank [ceil (2kp)] in [R] has rank
    between [k] and [4k] in [S].

    Lemma 3: for a (1/K)-sample [R] of [S] with [n >= 4K >= 8], with
    probability [>= 0.09] both [R] is non-empty and the largest element
    of [R] has rank in [S] in [(K, 4K]].

    These drive the core-set construction (Theorem 1) and the round
    algorithm (Theorem 2); the checkers below are used by tests and by
    experiments E1/E3 to validate the bounds empirically. *)

val min_p : k:int -> delta:float -> float
(** The smallest sampling probability satisfying Lemma 1's working
    condition [k * p >= 3 ln(3 / delta)], clamped to [<= 1]. *)

val sample_rank : k:int -> p:float -> int
(** The rank [ceil (2 k p)] that Lemma 1 inspects in the sample. *)

type outcome =
  | Ok_rank          (** both bullets of the lemma hold *)
  | Too_few_samples  (** first bullet failed ([|R|] too small / empty) *)
  | Rank_too_low     (** witnessed rank [< k] (Lemma 1) / [<= K] (3) *)
  | Rank_too_high    (** witnessed rank [> 4k] resp. [> 4K] *)

val pp_outcome : Format.formatter -> outcome -> unit

val lemma1_trial :
  Topk_util.Rng.t -> cmp:('a -> 'a -> int) -> k:int -> p:float ->
  'a array -> outcome
(** Draw one p-sample of the array and test Lemma 1's two bullets for
    the given [k].  [cmp] orders elements ascending; ranks count from
    the greatest.  The array must hold distinct elements. *)

val lemma3_trial :
  Topk_util.Rng.t -> cmp:('a -> 'a -> int) -> kk:float -> 'a array ->
  outcome
(** Draw one (1/K)-sample and test Lemma 3's two bullets. *)

val rank_of : cmp:('a -> 'a -> int) -> 'a array -> 'a -> int
(** 1-based rank from the greatest under [cmp]; O(n) scan. *)
