module Rng = Topk_util.Rng

type 'a t = {
  elems : 'a array;
  rank_target : int;
  k : int;
  p : float;
  retries : int;
}

let size_bound ~lambda ~k ~n =
  let bound =
    12. *. lambda *. (float_of_int n /. float_of_int k) *. Params.ln n
  in
  int_of_float (ceil bound)

let build rng ~lambda ?(max_retries = 20) ~k ground =
  if k < 1 then invalid_arg "Core_set.build: K must be >= 1";
  if lambda < 1. then invalid_arg "Core_set.build: lambda must be >= 1";
  let n = Array.length ground in
  let ln_n = Params.ln n in
  let p = min 1. (4. *. lambda /. float_of_int k *. ln_n) in
  let rank_target = int_of_float (ceil (8. *. lambda *. ln_n)) in
  let bound = max 1 (size_bound ~lambda ~k ~n) in
  if p >= 1. then
    (* Degenerate: the sample is the ground set itself. *)
    { elems = Array.copy ground; rank_target; k; p = 1.; retries = 0 }
  else begin
    let rec draw attempt =
      let elems = Rng.sample rng ~p ground in
      if Array.length elems <= bound || attempt >= max_retries then
        (elems, attempt)
      else draw (attempt + 1)
    in
    let elems, retries = draw 0 in
    { elems; rank_target; k; p; retries }
  end
