(** Reference implementations, straight from the definitions.

    [Oracle.Make] answers every query type by filtering the input with
    [P.matches] and sorting — no cost accounting, no cleverness.  All
    tests and experiments validate the real structures against it. *)

module Make (P : Sigs.PROBLEM) : sig
  type t

  val build : P.elem array -> t

  val elements : t -> P.elem array

  val top_k : t -> P.query -> k:int -> P.elem list
  (** The [k] heaviest matching elements, sorted descending. *)

  val prioritized : t -> P.query -> tau:float -> P.elem list
  (** All matching elements with weight [>= tau], sorted descending. *)

  val max : t -> P.query -> P.elem option

  val count : t -> P.query -> int
  (** [|q(D)|]. *)
end
