(** Top-k core-sets — Lemma 2 of the paper.

    For an input [D] of [n] elements, a constant [lambda] (polynomial
    boundedness) and an integer [K >= 4 lambda ln n], a core-set is a
    p-sample [R] of [D] with [p = 4 (lambda / K) ln n] such that

    - [|R| <= 12 lambda (n / K) ln n], and
    - for every predicate [q] with [|q(D)| >= 4K], the element of
      weight rank [ceil (8 lambda ln n)] in [q(R)] has weight rank
      between [K] and [4K] in [q(D)].

    Lemma 2 is existential (the properties hold with probability
    [> 1/6] per draw); {!build} retries the draw until the {e size}
    bound holds — expected O(1) retries — while the rank-capture
    property holds with high probability and the reduction recovers
    from the rare failure by an explicit fallback query. *)

type 'a t = private {
  elems : 'a array;   (** the core-set [R] *)
  rank_target : int;  (** [ceil (8 lambda ln n)] with [n = |ground|] *)
  k : int;            (** the [K] this core-set was built for *)
  p : float;          (** the sampling probability used *)
  retries : int;      (** draws discarded for violating the size bound *)
}

val build :
  Topk_util.Rng.t -> lambda:float -> ?max_retries:int -> k:int ->
  'a array -> 'a t
(** [build rng ~lambda ~k ground] draws a core-set of [ground] for
    rank [K = k].  If [K < 4 lambda ln n] the sampling probability
    saturates at 1 and the core-set degenerates to a copy of the
    ground set (still correct, no compression). *)

val size_bound : lambda:float -> k:int -> n:int -> int
(** The Lemma 2 size bound [12 lambda (n / K) ln n], rounded up. *)
