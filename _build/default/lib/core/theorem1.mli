(** Theorem 1: the worst-case reduction from top-k to prioritized
    reporting (Section 3 of the paper).

    Given a black-box prioritized structure with geometrically
    converging space [S_pri(n)] and query cost [Q_pri(n) + O(t/B)] with
    [Q_pri(n) >= log_B n], on a polynomially bounded problem, the
    functor builds a static top-k structure with

    - space [S_top(n) = O(S_pri(n))]  (eq. 3), and
    - query [Q_top(n) + O(k/B)] with
      [Q_top = O(Q_pri . log n / (log B + log (Q_pri / log_B n)))]
      (eq. 4) — at most an [O(log_B n)] factor over [Q_pri], and [O(Q_pri)]
      once [Q_pri >= (n/B)^eps].

    Mechanics, mirroring Section 3.2:
    - [f = 12 lambda B Q_pri(n)] (eq. 9), raised to
      [ceil (8 lambda ln n)] if necessary (eq. 11);
    - a {e chain} of nested core-sets [R_0 = D, R_1, R_2, ...] (each a
      Lemma-2 core-set of the previous with [K = f]) answers top-f
      queries: a cost-monitored query either returns all of [q(R_j)]
      ([<= 4f] elements) or recursion on [R_(j+1)] supplies a weight
      threshold whose rank in [q(R_j)] is in [f, 4f];
    - a {e ladder} of core-sets [R[1], R[2], ...] of [D] with
      [K = 2^(i-1) f] (each carrying its own top-f chain) serves
      queries with [k > f];
    - queries with [k >= n/2] scan [D].

    Because Lemma 2 holds only with high probability per predicate, the
    query algorithm verifies every threshold it derives and falls back
    to a direct scan / unmonitored query when the sample missed; the
    [fallbacks] counter exposes how often that happened (it should be
    0 for virtually all workloads). *)

module Make (S : Sigs.PRIORITIZED) : sig
  include Sigs.TOPK with module P = S.P

  type info = {
    f : int;             (** the top-f threshold actually used *)
    chain_levels : int;  (** [h + 1]: length of the core-set chain on D *)
    ladder_rungs : int;  (** number of large-k core-sets *)
    coreset_words : int; (** words held by all core-sets and ladders *)
  }

  val info : t -> info

  val fallbacks : t -> int
  (** Queries (so far) that needed the correctness fallback because a
      core-set missed its rank guarantee. *)
end
