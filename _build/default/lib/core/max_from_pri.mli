(** A bonus general reduction in the spirit of the paper: max
    reporting from prioritized reporting alone, by binary search on
    the weight ladder.

    Theorem 2 needs {e both} a prioritized and a max structure.  When
    no dedicated max structure exists for a problem, this functor
    manufactures one from the prioritized black box: binary-search the
    sorted weight array for the largest [tau] whose prioritized query
    is non-empty, probing with cost-monitored queries of limit 1.

    Costs: space [O(S_pri)], query [O(Q_pri log n)] — a logarithmic
    degradation, which is exactly what it costs to {e not} design a
    max structure.  Feeding the result into Theorem 2 yields a valid
    (if log-slower) top-k structure with zero problem-specific max
    code; the "bootstrapping" remark of Section 1.4 says the space
    overhead still vanishes. *)

module Make (S : Sigs.PRIORITIZED) : sig
  include Sigs.MAX with module P = S.P

  val probes : t -> int
  (** Binary-search probes across all queries so far. *)
end
