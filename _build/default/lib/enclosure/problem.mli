(** 2D point enclosure as a framework problem: elements are weighted
    rectangles, a predicate is the query point they must contain. *)

include
  Topk_core.Sigs.PROBLEM
    with type elem = Rect.t
     and type query = float * float
