(** Weighted axis-parallel rectangles — the elements of 2D point
    enclosure (Section 5.2): a query point [(x, y)] selects every
    rectangle containing it. *)

type t = private {
  x1 : float;
  x2 : float;
  y1 : float;
  y2 : float;
  weight : float;
  id : int;
}

val make :
  ?id:int ->
  x1:float -> x2:float -> y1:float -> y2:float -> weight:float -> unit -> t
(** @raise Invalid_argument if a side is inverted or NaN. *)

val contains : t -> float * float -> bool

val compare_weight : t -> t -> int

val pp : Format.formatter -> t -> unit

val x_interval : t -> Topk_interval.Interval.t
(** The x-projection as a weighted interval carrying the same id and
    weight. *)

val y_interval : t -> Topk_interval.Interval.t

val of_boxes :
  ?weights:float array ->
  Topk_util.Rng.t ->
  (float * float * float * float) array ->
  t array
(** Attach ids and distinct weights to raw [(x1, x2, y1, y2)] boxes
    from {!Topk_util.Gen.rectangles}. *)
