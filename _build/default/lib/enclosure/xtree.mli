(** The outer level of Section 5.2's two-level structure: a segment
    tree on the x-projections.  Each rectangle is assigned to
    [O(log n)] canonical nodes; the per-node payload (a 1D stabbing
    structure on the y-projections) is supplied by the caller. *)

type 'node t

val build : make_node:(Rect.t array -> 'node) -> Rect.t array -> 'node t
(** [make_node] receives the rectangles assigned to one canonical
    node (possibly empty nodes are skipped). *)

val visit_path : 'node t -> float -> ('node -> unit) -> unit
(** Apply the callback to the payloads on the root-to-leaf path of the
    x-coordinate's slab, one I/O per node.  The callback may raise. *)

val fold : 'node t -> init:'acc -> f:('acc -> 'node -> 'acc) -> 'acc

val space_words : 'node t -> words:('node -> int) -> int

val size : 'node t -> int
