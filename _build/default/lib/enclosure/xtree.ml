module Stats = Topk_em.Stats
module Slabs = Topk_interval.Slabs

type 'node t = {
  slabs : Slabs.t;
  nodes : 'node option array;  (* 1-based heap order; None when empty *)
  leaves : int;
  n : int;
}

let rec next_pow2 x k = if k >= x then k else next_pow2 x (2 * k)

let build ~make_node rects =
  let n = Array.length rects in
  let endpoints = Array.make (2 * n) 0. in
  Array.iteri
    (fun i (r : Rect.t) ->
      endpoints.(2 * i) <- r.Rect.x1;
      endpoints.((2 * i) + 1) <- r.Rect.x2)
    rects;
  let slabs = Slabs.of_endpoints endpoints in
  let leaves = next_pow2 (max 1 (Slabs.slab_count slabs)) 1 in
  let lists = Array.make (2 * leaves) [] in
  let assign (r : Rect.t) =
    let l = Slabs.slab_of_coord slabs r.Rect.x1 in
    let hi = Slabs.slab_of_coord slabs r.Rect.x2 in
    let rec go node node_lo node_hi =
      if l <= node_lo && hi >= node_hi - 1 then
        lists.(node) <- r :: lists.(node)
      else begin
        let mid = (node_lo + node_hi) / 2 in
        if l < mid then go (2 * node) node_lo mid;
        if hi >= mid then go ((2 * node) + 1) mid node_hi
      end
    in
    go 1 0 leaves
  in
  Array.iter assign rects;
  let nodes =
    Array.map
      (function
        | [] -> None
        | l -> Some (make_node (Array.of_list l)))
      lists
  in
  { slabs; nodes; leaves; n }

let visit_path t x f =
  let s = Slabs.slab_of_point t.slabs x in
  let node = ref (t.leaves + s) in
  while !node >= 1 do
    Stats.charge_ios 1;
    (match t.nodes.(!node) with Some payload -> f payload | None -> ());
    node := !node / 2
  done

let fold t ~init ~f =
  Array.fold_left
    (fun acc -> function Some payload -> f acc payload | None -> acc)
    init t.nodes

let space_words t ~words =
  Slabs.space_words t.slabs + Array.length t.nodes
  + fold t ~init:0 ~f:(fun acc node -> acc + words node)

let size t = t.n
