lib/enclosure/rect.mli: Format Topk_interval Topk_util
