lib/enclosure/enc_max.ml: Array Hashtbl Problem Rect Topk_interval Xtree
