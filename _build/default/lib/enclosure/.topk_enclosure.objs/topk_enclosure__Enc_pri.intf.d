lib/enclosure/enc_pri.mli: Problem Topk_core
