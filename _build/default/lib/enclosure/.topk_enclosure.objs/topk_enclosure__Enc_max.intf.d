lib/enclosure/enc_max.mli: Problem Topk_core
