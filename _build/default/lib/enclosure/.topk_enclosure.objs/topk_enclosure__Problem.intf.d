lib/enclosure/problem.mli: Rect Topk_core
