lib/enclosure/rect.ml: Array Float Format Int Topk_interval Topk_util
