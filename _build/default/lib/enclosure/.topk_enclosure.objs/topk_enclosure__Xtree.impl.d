lib/enclosure/xtree.ml: Array Rect Topk_em Topk_interval
