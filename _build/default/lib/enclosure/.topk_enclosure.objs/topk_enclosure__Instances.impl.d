lib/enclosure/instances.ml: Enc_max Enc_pri Problem Topk_core
