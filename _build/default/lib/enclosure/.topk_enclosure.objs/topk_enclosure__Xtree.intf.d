lib/enclosure/xtree.mli: Rect
