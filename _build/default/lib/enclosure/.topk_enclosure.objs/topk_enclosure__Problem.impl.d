lib/enclosure/problem.ml: Format Rect
