lib/enclosure/instances.mli: Enc_max Enc_pri Problem Rect Topk_core
