lib/enclosure/enc_pri.ml: Array Hashtbl Problem Rect Topk_core Topk_interval Xtree
