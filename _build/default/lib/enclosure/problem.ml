type elem = Rect.t

type query = float * float

let weight (e : elem) = e.Rect.weight

let id (e : elem) = e.Rect.id

let matches q e = Rect.contains e q

let pp_elem = Rect.pp

let pp_query ppf (x, y) = Format.fprintf ppf "enclose(%g, %g)" x y
