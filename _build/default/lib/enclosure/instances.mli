(** Ready-made top-k point-enclosure structures (Theorem 5). *)

module Oracle : module type of Topk_core.Oracle.Make (Problem)

(** Theorem 1 over {!Enc_pri}: the worst-case bullet of Theorem 5. *)
module Topk_t1 : module type of Topk_core.Theorem1.Make (Enc_pri)

(** Theorem 2 over {!Enc_pri} + {!Enc_max}: the expected bullet of
    Theorem 5 (and the "bootstrapping power" demonstration — the max
    structure is fatter than the final top-k structure's sample
    copies). *)
module Topk_t2 : module type of Topk_core.Theorem2.Make (Enc_pri) (Enc_max)

module Topk_rj : Topk_core.Sigs.TOPK with type P.elem = Rect.t
                                      and type P.query = float * float

module Topk_naive : Topk_core.Sigs.TOPK with type P.elem = Rect.t
                                         and type P.query = float * float

val params : unit -> Topk_core.Params.t
(** [lambda = 2] ([O(n^2)] distinct outcomes over the endpoint grid),
    [Q_pri = Q_max = log2^2 n]. *)
