(** Prioritized 2D point enclosure: segment tree on x-projections with
    a prioritized 1D stabbing structure ({!Topk_interval.Seg_stab}) on
    the y-projections of each canonical node.  Query [(x, y, tau)]
    walks the x-path and stabs each node's y-structure:
    [O(log^2 n + t)] time, [O(n log^2 n)] space.

    Substitutes for Rahul's [O(n log* n)]-space structure [27]
    (interface-identical, different polylog). *)

include Topk_core.Sigs.PRIORITIZED with module P = Problem
