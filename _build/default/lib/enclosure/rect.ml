type t = {
  x1 : float;
  x2 : float;
  y1 : float;
  y2 : float;
  weight : float;
  id : int;
}

let counter = ref 0

let make ?id ~x1 ~x2 ~y1 ~y2 ~weight () =
  if
    Float.is_nan x1 || Float.is_nan x2 || Float.is_nan y1 || Float.is_nan y2
  then invalid_arg "Rect.make: NaN bound";
  if x1 > x2 || y1 > y2 then invalid_arg "Rect.make: inverted side";
  let id =
    match id with
    | Some i -> i
    | None ->
        incr counter;
        !counter
  in
  { x1; x2; y1; y2; weight; id }

let contains t (x, y) = t.x1 <= x && x <= t.x2 && t.y1 <= y && y <= t.y2

let compare_weight a b =
  match Float.compare a.weight b.weight with
  | 0 -> Int.compare a.id b.id
  | c -> c

let pp ppf t =
  Format.fprintf ppf "[%g,%g]x[%g,%g]@%g#%d" t.x1 t.x2 t.y1 t.y2 t.weight t.id

let x_interval t =
  Topk_interval.Interval.make ~id:t.id ~lo:t.x1 ~hi:t.x2 ~weight:t.weight ()

let y_interval t =
  Topk_interval.Interval.make ~id:t.id ~lo:t.y1 ~hi:t.y2 ~weight:t.weight ()

let of_boxes ?weights rng boxes =
  let n = Array.length boxes in
  let weights =
    match weights with
    | Some w ->
        if Array.length w <> n then
          invalid_arg "Rect.of_boxes: weights length mismatch";
        w
    | None -> Topk_util.Gen.distinct_weights rng n
  in
  Array.mapi
    (fun i (x1, x2, y1, y2) ->
      make ~id:(i + 1) ~x1 ~x2 ~y1 ~y2 ~weight:weights.(i) ())
    boxes
