(** 2D stabbing-max (point-enclosure max) — the structure of
    Section 5.2, verbatim minus fractional cascading: a segment tree
    on the x-projections with the folklore 1D stabbing-max slab
    structure ({!Topk_interval.Slab_max}) on each canonical node.  The
    answer is the heaviest of the [O(log n)] per-node maxima:
    [O(log^2 n)] query, [O(n log n)] space. *)

include Topk_core.Sigs.MAX with module P = Problem
