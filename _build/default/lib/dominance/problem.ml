type elem = Point3.t

type query = float * float * float

let weight (e : elem) = e.Point3.weight

let id (e : elem) = e.Point3.id

let matches q e = Point3.dominated_by e q

let pp_elem = Point3.pp

let pp_query ppf (x, y, z) =
  Format.fprintf ppf "dominance(%g, %g, %g)" x y z
