lib/dominance/dom3.ml: Array Float Int List Point3 Topk_core Topk_em Topk_pst Topk_util
