lib/dominance/problem.ml: Format Point3
