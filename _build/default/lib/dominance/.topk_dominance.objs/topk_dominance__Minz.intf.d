lib/dominance/minz.mli: Point3
