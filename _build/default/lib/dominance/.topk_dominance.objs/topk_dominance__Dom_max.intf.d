lib/dominance/dom_max.mli: Problem Topk_core
