lib/dominance/dom3.mli: Point3
