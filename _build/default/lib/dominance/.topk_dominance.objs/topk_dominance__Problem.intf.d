lib/dominance/problem.mli: Point3 Topk_core
