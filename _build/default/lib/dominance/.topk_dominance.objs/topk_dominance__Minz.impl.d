lib/dominance/minz.ml: Array Float Int List Point3 Topk_core Topk_em Topk_util
