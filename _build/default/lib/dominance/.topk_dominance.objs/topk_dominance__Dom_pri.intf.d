lib/dominance/dom_pri.mli: Problem Topk_core
