lib/dominance/instances.mli: Dom_max Dom_pri Point3 Problem Topk_core Topk_util
