lib/dominance/point3.ml: Array Float Format Int Topk_util
