lib/dominance/dom_pri.ml: Array Dom3 Float List Point3 Problem Topk_core Topk_em Topk_util
