lib/dominance/dom_max.ml: Array Minz Point3 Problem Topk_em
