lib/dominance/point3.mli: Format Topk_util
