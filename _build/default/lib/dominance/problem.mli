(** 3D dominance as a framework problem. *)

include
  Topk_core.Sigs.PROBLEM
    with type elem = Point3.t
     and type query = float * float * float
