type t = {
  x : float;
  y : float;
  z : float;
  weight : float;
  id : int;
}

let counter = ref 0

let make ?id ~x ~y ~z ~weight () =
  if Float.is_nan x || Float.is_nan y || Float.is_nan z then
    invalid_arg "Point3.make: NaN coordinate";
  let id =
    match id with
    | Some i -> i
    | None ->
        incr counter;
        !counter
  in
  { x; y; z; weight; id }

let dominated_by t (x, y, z) = t.x <= x && t.y <= y && t.z <= z

let compare_weight a b =
  match Float.compare a.weight b.weight with
  | 0 -> Int.compare a.id b.id
  | c -> c

let pp ppf t =
  Format.fprintf ppf "(%g, %g, %g)@%g#%d" t.x t.y t.z t.weight t.id

let of_coords ?weights rng coords =
  let n = Array.length coords in
  let weights =
    match weights with
    | Some w ->
        if Array.length w <> n then
          invalid_arg "Point3.of_coords: weights length mismatch";
        w
    | None -> Topk_util.Gen.distinct_weights rng n
  in
  Array.mapi
    (fun i (x, y, z) -> make ~id:(i + 1) ~x ~y ~z ~weight:weights.(i) ())
    coords
