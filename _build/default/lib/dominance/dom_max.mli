(** Max 3D dominance.

    Section 5.3 answers this by point location among the cuboids of a
    vertical decomposition of weight-dominant regions (Rahul [27],
    [O(n)] space, [O(log^1.5 n)] query).  We substitute an
    interface-equivalent structure: a tournament tree over the
    weight-descending order whose every node carries a {!Minz}
    emptiness structure; descending left whenever the left range
    contains a dominated point finds the heaviest dominated point in
    [O(log^3 n)].  Space [O(n log^2 n)] — fat, but Theorem 2 only ever
    builds max structures on its small samples [R_i], which is exactly
    the "bootstrapping power" remark of Section 1.4. *)

include Topk_core.Sigs.MAX with module P = Problem
