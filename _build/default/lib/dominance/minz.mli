(** 2D dominance minimum: [min { e_z : e_x <= x, e_y <= y }].

    Dyadic prefix blocks over the x order; each block keeps its points
    sorted by [y] with prefix minima of [z], so one query is a binary
    search per block: [O(log^2 n)] time, [O(n log n)] space.  This is
    the emptiness test inside {!Dom_max}: the dominance region of
    [(x, y, z)] is non-empty iff the minimum is [<= z]. *)

type t

val build : Point3.t array -> t

val size : t -> int

val space_words : t -> int

val query : t -> x:float -> y:float -> float
(** [+infinity] when no point satisfies the two constraints. *)
