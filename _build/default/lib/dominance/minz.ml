module Stats = Topk_em.Stats
module Prefix_blocks = Topk_core.Prefix_blocks
module Search = Topk_util.Search

type block = {
  ys : float array;       (* ascending *)
  prefix_min_z : float array;  (* prefix_min_z.(i) = min z over ys.(0..i) *)
}

type t = {
  xs : float array;  (* ascending *)
  blocks : block Prefix_blocks.t;
  n : int;
}

let compare_x (a : Point3.t) (b : Point3.t) =
  match Float.compare a.Point3.x b.Point3.x with
  | 0 -> Int.compare a.Point3.id b.Point3.id
  | c -> c

let compare_y (a : Point3.t) (b : Point3.t) =
  match Float.compare a.Point3.y b.Point3.y with
  | 0 -> Int.compare a.Point3.id b.Point3.id
  | c -> c

let build pts =
  let sorted = Array.copy pts in
  Array.sort compare_x sorted;
  let n = Array.length sorted in
  let make_block o len =
    let part = Array.sub sorted o len in
    Array.sort compare_y part;
    let ys = Array.map (fun (p : Point3.t) -> p.Point3.y) part in
    let prefix_min_z = Array.make len Float.infinity in
    let running = ref Float.infinity in
    Array.iteri
      (fun i (p : Point3.t) ->
        running := Float.min !running p.Point3.z;
        prefix_min_z.(i) <- !running)
      part;
    { ys; prefix_min_z }
  in
  {
    xs = Array.map (fun (p : Point3.t) -> p.Point3.x) sorted;
    blocks = Prefix_blocks.build ~n ~build:make_block;
    n;
  }

let size t = t.n

let space_words t =
  Array.length t.xs
  + Prefix_blocks.fold_all t.blocks ~init:0 ~f:(fun acc b ->
        acc + Array.length b.ys + Array.length b.prefix_min_z)

let query t ~x ~y =
  Stats.charge_ios
    (max 1 (int_of_float (Float.log2 (float_of_int (t.n + 2)))));
  let m = Search.upper_bound ~cmp:Float.compare t.xs x in
  List.fold_left
    (fun acc b ->
      Stats.charge_ios 1;
      let j = Search.upper_bound ~cmp:Float.compare b.ys y in
      if j = 0 then acc else Float.min acc b.prefix_min_z.(j - 1))
    Float.infinity
    (Prefix_blocks.query_prefix t.blocks m)
