(** Prioritized 3D dominance — the "4D dominance reporting" black box
    of Section 5.3: the weight threshold adds a fourth one-sided
    constraint, handled by dyadic prefix blocks over the
    weight-descending order, each holding a {!Dom3} structure.
    Query [O(log^3 n + t)], space [O(n log^2 n)].

    Substitutes for Afshani–Arge–Larsen [2]
    ([O(n log n / log log n)] space, [O(log^1.5 n + t)] query). *)

include Topk_core.Sigs.PRIORITIZED with module P = Problem
