(** Ready-made top-k 3D dominance structures (Theorem 6). *)

module Oracle : module type of Topk_core.Oracle.Make (Problem)

module Topk_t1 : module type of Topk_core.Theorem1.Make (Dom_pri)

module Topk_t2 : module type of Topk_core.Theorem2.Make (Dom_pri) (Dom_max)

module Topk_rj : Topk_core.Sigs.TOPK
  with type P.elem = Point3.t
   and type P.query = float * float * float

module Topk_naive : Topk_core.Sigs.TOPK
  with type P.elem = Point3.t
   and type P.query = float * float * float

val params : unit -> Topk_core.Params.t
(** [lambda = 3] ([O(n^3)] distinct dominance outcomes over the rank
    grid), [Q_pri = log2^3 n], [Q_max = log2^3 n]. *)

val hotels :
  Topk_util.Rng.t -> n:int -> Point3.t array
(** The paper's motivating workload: hotels with (price, distance from
    center, inverted security rating) as coordinates and guest rating
    as weight — "the 10 best-rated hotels cheaper than x, closer than
    y, rated at least z". *)
