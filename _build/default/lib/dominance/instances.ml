module Rng = Topk_util.Rng
module Oracle = Topk_core.Oracle.Make (Problem)
module Topk_t1 = Topk_core.Theorem1.Make (Dom_pri)
module Topk_t2 = Topk_core.Theorem2.Make (Dom_pri) (Dom_max)
module Topk_rj = Topk_core.Baseline_rj.Make (Dom_pri)
module Topk_naive = Topk_core.Naive.Make (Problem)

let params () =
  let polylog3 n =
    let l = Topk_core.Params.log2 n in
    l *. l *. l
  in
  {
    Topk_core.Params.default with
    Topk_core.Params.lambda = 3.;
    q_pri = polylog3;
    q_max = polylog3;
  }

let hotels rng ~n =
  let ratings = Topk_util.Gen.distinct_weights rng n in
  Array.init n (fun i ->
      let price = 40. +. Rng.float rng 460. in
      let distance = Rng.float rng 25. in
      (* Security rating in [1, 5]; the dominance constraint is
         "security >= z", flipped into "(-security) <= -z". *)
      let security = 1. +. Rng.float rng 4. in
      Point3.make ~id:(i + 1) ~x:price ~y:distance ~z:(-.security)
        ~weight:ratings.(i) ())
