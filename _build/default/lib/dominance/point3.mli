(** Weighted points of [R^3] — the elements of 3D dominance
    (Section 5.3): a query corner [(x, y, z)] selects every point
    [e] with [e_x <= x], [e_y <= y] and [e_z <= z]. *)

type t = private {
  x : float;
  y : float;
  z : float;
  weight : float;
  id : int;
}

val make :
  ?id:int -> x:float -> y:float -> z:float -> weight:float -> unit -> t
(** @raise Invalid_argument on NaN coordinates. *)

val dominated_by : t -> float * float * float -> bool

val compare_weight : t -> t -> int

val pp : Format.formatter -> t -> unit

val of_coords :
  ?weights:float array ->
  Topk_util.Rng.t ->
  (float * float * float) array ->
  t array
