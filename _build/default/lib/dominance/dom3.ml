module Stats = Topk_em.Stats
module Pst = Topk_pst.Pst
module Prefix_blocks = Topk_core.Prefix_blocks

type t = {
  xs : float array;  (* x-coordinates, ascending *)
  blocks : Point3.t Pst.t Prefix_blocks.t;
  n : int;
}

let compare_x (a : Point3.t) (b : Point3.t) =
  match Float.compare a.Point3.x b.Point3.x with
  | 0 -> Int.compare a.Point3.id b.Point3.id
  | c -> c

let build pts =
  let sorted = Array.copy pts in
  Array.sort compare_x sorted;
  let n = Array.length sorted in
  let blocks =
    Prefix_blocks.build ~n ~build:(fun o len ->
        Pst.build
          ~key:(fun (p : Point3.t) -> p.Point3.y)
          ~weight:(fun (p : Point3.t) -> -.p.Point3.z)
          (Array.sub sorted o len))
  in
  { xs = Array.map (fun (p : Point3.t) -> p.Point3.x) sorted; blocks; n }

let size t = t.n

let space_words t =
  Array.length t.xs
  + Prefix_blocks.fold_all t.blocks ~init:0 ~f:(fun acc pst ->
        acc + Pst.space_words pst)

let visit t (x, y, z) f =
  (* Points with e_x <= x form a prefix of the x order. *)
  Stats.charge_ios
    (max 1 (int_of_float (Float.log2 (float_of_int (t.n + 2)))));
  let m = Topk_util.Search.upper_bound ~cmp:Float.compare t.xs x in
  let blocks = Prefix_blocks.query_prefix t.blocks m in
  List.iter
    (fun pst ->
      Pst.query pst ~side:Pst.Below ~bound:y ~tau:(-.z) f)
    blocks
