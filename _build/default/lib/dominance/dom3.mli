(** 3D dominance reporting (no weight threshold): report every point
    with [e_x <= x, e_y <= y, e_z <= z].

    Layout: dyadic prefix blocks over the x-ascending order (the
    x-constraint selects a prefix found by binary search); each block
    holds a priority search tree keyed on [y] with priority [-z], so
    the remaining two constraints are one 3-sided PST query.  Query
    [O(log^2 n + t)], space [O(n log n)].

    Substitutes for the pointer-machine structure of Afshani et
    al. [2] used in Section 5.3. *)

type t

val build : Point3.t array -> t

val size : t -> int

val space_words : t -> int

val visit : t -> float * float * float -> (Point3.t -> unit) -> unit
(** The callback may raise to stop early. *)
