(** k-selection, the workhorse the paper invokes as "k-selection [8]":
    from an unordered batch of candidates, extract the [k] largest in
    linear time.  Also order statistics (quickselect and the
    deterministic median-of-medians). *)

val top_k : cmp:('a -> 'a -> int) -> int -> 'a list -> 'a list
(** [top_k ~cmp k xs] is the [k] largest elements of [xs] under [cmp],
    sorted descending.  Returns all of [xs] sorted descending when
    [length xs <= k].  Expected O(|xs| + k log k) via quickselect on an
    internal RNG seeded deterministically. *)

val top_k_array : cmp:('a -> 'a -> int) -> int -> 'a array -> 'a list
(** As {!top_k}; the input array is not modified. *)

val quickselect : ?rng:Rng.t -> cmp:('a -> 'a -> int) -> 'a array -> int -> 'a
(** [quickselect ~cmp arr i] is the element of rank [i] (0-based, from
    the smallest under [cmp]); expected linear time.  The array is
    permuted in place.  @raise Invalid_argument if [i] is out of
    bounds. *)

val median_of_medians : cmp:('a -> 'a -> int) -> 'a array -> int -> 'a
(** Deterministic worst-case linear selection of rank [i] (0-based,
    from the smallest).  The array is permuted in place. *)

val nth_largest : cmp:('a -> 'a -> int) -> 'a array -> int -> 'a
(** [nth_largest ~cmp arr r] is the element of weight rank [r]
    (1-based, from the largest), expected linear time; the array is
    permuted in place. *)
