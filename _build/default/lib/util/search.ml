let lower_bound ~cmp arr x =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp arr.(mid) x < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let upper_bound ~cmp arr x =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp arr.(mid) x <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let predecessor ~cmp arr x =
  let i = upper_bound ~cmp arr x in
  if i = 0 then None else Some (i - 1)

let binary_search_first ok lo hi =
  let lo = ref lo and hi = ref hi in
  if !lo >= !hi then None
  else begin
    let found = ref None in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ok mid then begin
        found := Some mid;
        hi := mid
      end
      else lo := mid + 1
    done;
    !found
  end

let is_sorted ~cmp arr =
  let n = Array.length arr in
  let rec go i = i >= n || (cmp arr.(i - 1) arr.(i) <= 0 && go (i + 1)) in
  go 1
