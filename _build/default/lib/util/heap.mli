(** Binary heap over an explicit comparison (min-heap with respect to
    [cmp]; pass a flipped [cmp] for a max-heap). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t

val of_array : cmp:('a -> 'a -> int) -> 'a array -> 'a t
(** Heapify in O(n). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum under [cmp], if any. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum under [cmp]. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val to_list_unordered : 'a t -> 'a list
