(** Synthetic workload generators.

    The paper evaluates nothing empirically, so every experiment in this
    repository runs on synthetic inputs drawn here.  Weights are always
    pairwise distinct (Section 1.1's standard assumption), implemented
    by assigning a random permutation of [1..n] with sub-unit jitter. *)

type weight_dist =
  | Uniform_weights            (** weight independent of geometry *)
  | Correlated of float
      (** weight = mix of a spatial coordinate and noise; the argument
          in [0,1] is the correlation strength.  Adversarial for
          sampling-based reductions: heavy elements cluster. *)

val distinct_weights : Rng.t -> int -> float array
(** [distinct_weights rng n] is [n] pairwise-distinct positive weights
    in random order. *)

val mix_weights : Rng.t -> weight_dist -> coords:float array -> float array
(** Weights for elements whose "position" is [coords.(i)], honoring the
    requested correlation; always pairwise distinct. *)

type interval_shape =
  | Short_intervals   (** lengths ~ 1/n: stabbing sets are small *)
  | Mixed_intervals   (** lengths power-law: realistic mix *)
  | Nested_intervals  (** intervals nest around the center: worst-case
                          stabbing sets of size Θ(n) at the center *)

val intervals :
  Rng.t -> shape:interval_shape -> n:int -> (float * float) array
(** [n] sub-intervals of [0,1], as [(lo, hi)] with [lo <= hi]. *)

val rectangles : Rng.t -> n:int -> (float * float * float * float) array
(** [n] axis-parallel rectangles [(x1, x2, y1, y2)] in the unit square,
    with power-law side lengths. *)

val points : Rng.t -> n:int -> d:int -> float array array
(** [n] points uniform in the unit cube of dimension [d]. *)

val stab_queries : Rng.t -> n:int -> float array
(** Stabbing coordinates, uniform in (0,1). *)

val halfplanes : Rng.t -> n:int -> (float * float * float) array
(** [(a, b, c)] constraints [a*x + b*y >= c] whose boundary lines cross
    the unit square, with unit normal [(a, b)]. *)

val balls : Rng.t -> n:int -> d:int -> (float array * float) array
(** [(center, radius)] pairs with centers in the unit cube and radii
    power-law in (0, 1/2]. *)
