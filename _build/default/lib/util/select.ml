let swap arr i j =
  let tmp = arr.(i) in
  arr.(i) <- arr.(j);
  arr.(j) <- tmp

(* Three-way partition of arr.[lo,hi] around the pivot value at [p]:
   returns (lt, gt) with elements < pivot in [lo,lt), = pivot in
   [lt,gt], > pivot in (gt,hi]. *)
let partition3 ~cmp arr lo hi p =
  let pivot = arr.(p) in
  swap arr p hi;
  let lt = ref lo and i = ref lo and gt = ref hi in
  while !i <= !gt do
    let c = cmp arr.(!i) pivot in
    if c < 0 then begin
      swap arr !i !lt;
      incr lt;
      incr i
    end
    else if c > 0 then begin
      swap arr !i !gt;
      decr gt
    end
    else incr i
  done;
  (!lt, !gt)

let rec select_rec ~pick ~cmp arr lo hi i =
  if lo = hi then arr.(lo)
  else begin
    let p = pick arr lo hi in
    let lt, gt = partition3 ~cmp arr lo hi p in
    if i < lt then select_rec ~pick ~cmp arr lo (lt - 1) i
    else if i > gt then select_rec ~pick ~cmp arr (gt + 1) hi i
    else arr.(i)
  end

let default_rng = Rng.create 0x5e1ec7

let quickselect ?rng ~cmp arr i =
  let n = Array.length arr in
  if i < 0 || i >= n then invalid_arg "Select.quickselect: rank out of bounds";
  let rng = match rng with Some r -> r | None -> default_rng in
  let pick _ lo hi = lo + Rng.int rng (hi - lo + 1) in
  select_rec ~pick ~cmp arr 0 (n - 1) i

(* Median-of-medians pivot: groups of 5, median of each, then recursive
   median of those medians.  Guarantees a 30/70 split. *)
let rec mom_pick ~cmp arr lo hi =
  let n = hi - lo + 1 in
  if n <= 5 then begin
    let sub = Array.sub arr lo n in
    Array.sort cmp sub;
    let med = sub.(n / 2) in
    let idx = ref lo in
    for j = lo to hi do
      if cmp arr.(j) med = 0 then idx := j
    done;
    !idx
  end
  else begin
    let groups = (n + 4) / 5 in
    let medians = Array.make groups arr.(lo) in
    for g = 0 to groups - 1 do
      let glo = lo + (5 * g) in
      let ghi = min hi (glo + 4) in
      let sub = Array.sub arr glo (ghi - glo + 1) in
      Array.sort cmp sub;
      medians.(g) <- sub.(Array.length sub / 2)
    done;
    let med = mom_select ~cmp medians ((groups - 1) / 2) in
    let idx = ref lo in
    (try
       for j = lo to hi do
         if cmp arr.(j) med = 0 then begin
           idx := j;
           raise Exit
         end
       done
     with Exit -> ());
    !idx
  end

and mom_select ~cmp arr i =
  select_rec ~pick:(fun a lo hi -> mom_pick ~cmp a lo hi) ~cmp arr
    0 (Array.length arr - 1) i

let median_of_medians ~cmp arr i =
  let n = Array.length arr in
  if i < 0 || i >= n then
    invalid_arg "Select.median_of_medians: rank out of bounds";
  mom_select ~cmp arr i

let nth_largest ~cmp arr r =
  let n = Array.length arr in
  if r < 1 || r > n then invalid_arg "Select.nth_largest: rank out of bounds";
  quickselect ~cmp arr (n - r)

let top_k_array ~cmp k arr =
  let n = Array.length arr in
  if k <= 0 then []
  else if n <= k then begin
    let sorted = Array.copy arr in
    Array.sort (fun a b -> cmp b a) sorted;
    Array.to_list sorted
  end
  else begin
    let work = Array.copy arr in
    (* Pivot the k-th largest into place, then sort only the top part. *)
    ignore (quickselect ~cmp work (n - k));
    let top = Array.sub work (n - k) k in
    Array.sort (fun a b -> cmp b a) top;
    Array.to_list top
  end

let top_k ~cmp k xs = top_k_array ~cmp k (Array.of_list xs)
