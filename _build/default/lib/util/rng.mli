(** Deterministic, splittable pseudo-random generator (splitmix64).

    Every randomized component of the library (rank sampling, core-set
    construction, quickselect pivots, workload generators) draws from an
    explicit [Rng.t], so experiments are reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] is a generator determined entirely by [seed]. *)

val split : t -> t
(** A statistically independent generator derived from [t]'s stream;
    both remain usable. *)

val copy : t -> t

val bits64 : t -> int64
(** Next 64 uniform bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); requires [bound > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val uniform : t -> float
(** Uniform in [0, 1). *)

val exponential : t -> float
(** Standard exponential variate. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> p:float -> 'a array -> 'a array
(** [sample t ~p arr] keeps each element independently with probability
    [p] — the p-sample of Section 3.1. *)
