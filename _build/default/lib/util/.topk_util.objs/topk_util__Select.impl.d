lib/util/select.ml: Array Rng
