lib/util/heap.mli:
