lib/util/gen.ml: Array Float Rng
