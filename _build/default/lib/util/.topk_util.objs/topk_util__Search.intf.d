lib/util/search.mli:
