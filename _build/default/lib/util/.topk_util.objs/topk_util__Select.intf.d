lib/util/select.mli: Rng
