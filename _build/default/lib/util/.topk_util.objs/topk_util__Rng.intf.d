lib/util/rng.mli:
