lib/util/gen.mli: Rng
