type weight_dist =
  | Uniform_weights
  | Correlated of float

let distinct_weights rng n =
  (* A random permutation of 1..n plus jitter < 1/2 keeps weights
     pairwise distinct without any retry loop. *)
  let ranks = Array.init n (fun i -> i + 1) in
  Rng.shuffle rng ranks;
  Array.map (fun r -> float_of_int r +. Rng.float rng 0.25) ranks

let mix_weights rng dist ~coords =
  let n = Array.length coords in
  match dist with
  | Uniform_weights -> distinct_weights rng n
  | Correlated strength ->
      let s = max 0. (min 1. strength) in
      (* Score each element, then convert scores to distinct ranks. *)
      let scored =
        Array.mapi
          (fun i c -> (((s *. c) +. ((1. -. s) *. Rng.uniform rng)), i))
          coords
      in
      Array.sort compare scored;
      let weights = Array.make n 0. in
      Array.iteri
        (fun rank (_, i) ->
          weights.(i) <- float_of_int (rank + 1) +. Rng.float rng 0.25)
        scored;
      weights

type interval_shape =
  | Short_intervals
  | Mixed_intervals
  | Nested_intervals

let clamp01 x = max 0. (min 1. x)

let power_law_length rng ~lo ~hi =
  (* Pareto-ish: many short, a few long. *)
  let u = Rng.uniform rng in
  lo *. ((hi /. lo) ** (u *. u))

let intervals rng ~shape ~n =
  match shape with
  | Short_intervals ->
      Array.init n (fun _ ->
          let len = Rng.float rng (2. /. float_of_int (max 2 n)) in
          let lo = Rng.float rng (1. -. len) in
          (lo, lo +. len))
  | Mixed_intervals ->
      Array.init n (fun _ ->
          let len = power_law_length rng ~lo:(0.5 /. float_of_int (max 2 n)) ~hi:0.5 in
          let lo = Rng.float rng (max 1e-9 (1. -. len)) in
          (lo, clamp01 (lo +. len)))
  | Nested_intervals ->
      Array.init n (fun i ->
          let r = (float_of_int (i + 1) /. float_of_int (n + 1)) /. 2. in
          let jitter = Rng.float rng (0.1 /. float_of_int (n + 1)) in
          (0.5 -. r -. jitter, 0.5 +. r +. jitter))

let rectangles rng ~n =
  Array.init n (fun _ ->
      let w = power_law_length rng ~lo:0.002 ~hi:0.6 in
      let h = power_law_length rng ~lo:0.002 ~hi:0.6 in
      let x1 = Rng.float rng (max 1e-9 (1. -. w)) in
      let y1 = Rng.float rng (max 1e-9 (1. -. h)) in
      (x1, clamp01 (x1 +. w), y1, clamp01 (y1 +. h)))

let points rng ~n ~d =
  Array.init n (fun _ -> Array.init d (fun _ -> Rng.uniform rng))

let stab_queries rng ~n = Array.init n (fun _ -> Rng.uniform rng)

let halfplanes rng ~n =
  Array.init n (fun _ ->
      let theta = Rng.float rng (2. *. Float.pi) in
      let a = cos theta and b = sin theta in
      (* Offset chosen so that the boundary passes near the square. *)
      let px = Rng.uniform rng and py = Rng.uniform rng in
      let c = (a *. px) +. (b *. py) in
      (a, b, c))

let balls rng ~n ~d =
  Array.init n (fun _ ->
      let center = Array.init d (fun _ -> Rng.uniform rng) in
      let r = power_law_length rng ~lo:0.01 ~hi:0.5 in
      (center, r))
