(** Binary searches on sorted arrays (predecessor/successor style),
    used by every "predecessor search" step in the paper's structures
    (slab location, canonical-set collection, hull extreme points). *)

val lower_bound : cmp:('a -> 'a -> int) -> 'a array -> 'a -> int
(** Index of the first element [>= x] (length if none).  The array must
    be sorted ascending under [cmp]. *)

val upper_bound : cmp:('a -> 'a -> int) -> 'a array -> 'a -> int
(** Index of the first element [> x] (length if none). *)

val predecessor : cmp:('a -> 'a -> int) -> 'a array -> 'a -> int option
(** Index of the last element [<= x], if any. *)

val binary_search_first : (int -> bool) -> int -> int -> int option
(** [binary_search_first ok lo hi] is the smallest [i] in [lo, hi) with
    [ok i], assuming [ok] is monotone (all-false then all-true). *)

val is_sorted : cmp:('a -> 'a -> int) -> 'a array -> bool
