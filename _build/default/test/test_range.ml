(* Tests for top-k 1D range reporting and the synthesized
   max-from-prioritized reduction. *)

module Rng = Topk_util.Rng
module W = Topk_range.Wpoint
module Pri = Topk_range.Range_pri
module Max = Topk_range.Range_max
module Inst = Topk_range.Instances
module Sigs = Topk_core.Sigs

let random_points rng n =
  W.of_positions rng (Array.init n (fun _ -> Rng.uniform rng))

let random_ranges rng n =
  Array.init n (fun _ ->
      let a = Rng.uniform rng and b = Rng.uniform rng in
      (Float.min a b, Float.max a b))

let ids elems = List.map (fun (e : W.t) -> e.W.id) elems

let sorted_ids elems = List.sort Int.compare (ids elems)

let test_pri_matches_oracle () =
  let rng = Rng.create 601 in
  List.iter
    (fun n ->
      let pts = random_points rng n in
      let oracle = Inst.Oracle.build pts in
      let s = Pri.build pts in
      Array.iter
        (fun q ->
          List.iter
            (fun tau ->
              Alcotest.(check (list int))
                "range prioritized"
                (sorted_ids (Inst.Oracle.prioritized oracle q ~tau))
                (sorted_ids (Pri.query s q ~tau)))
            [ Float.neg_infinity; float_of_int (n / 2); float_of_int n +. 1. ])
        (random_ranges rng 40))
    [ 0; 1; 2; 13; 400 ]

let test_pri_point_and_full_ranges () =
  let rng = Rng.create 603 in
  let pts = random_points rng 200 in
  let oracle = Inst.Oracle.build pts in
  let s = Pri.build pts in
  (* Degenerate range exactly on a point. *)
  Array.iteri
    (fun i (p : W.t) ->
      if i mod 11 = 0 then begin
        let q = (p.W.pos, p.W.pos) in
        Alcotest.(check (list int))
          "point range"
          (sorted_ids (Inst.Oracle.prioritized oracle q ~tau:Float.neg_infinity))
          (sorted_ids (Pri.query s q ~tau:Float.neg_infinity))
      end)
    pts;
  (* The full line. *)
  Alcotest.(check int) "full range" 200
    (List.length (Pri.query s (-1., 2.) ~tau:Float.neg_infinity));
  (* An empty range. *)
  Alcotest.(check int) "empty range" 0
    (List.length (Pri.query s (2., 3.) ~tau:Float.neg_infinity))

let test_pri_monitored () =
  let rng = Rng.create 607 in
  let pts = random_points rng 300 in
  let s = Pri.build pts in
  (match Pri.query_monitored s (0., 1.) ~tau:Float.neg_infinity ~limit:10 with
   | Sigs.Truncated prefix ->
       Alcotest.(check int) "limit+1" 11 (List.length prefix)
   | Sigs.All _ -> Alcotest.fail "expected truncation");
  match Pri.query_monitored s (0., 1.) ~tau:Float.neg_infinity ~limit:300 with
  | Sigs.All all -> Alcotest.(check int) "all" 300 (List.length all)
  | Sigs.Truncated _ -> Alcotest.fail "unexpected truncation"

let test_max_matches_oracle () =
  let rng = Rng.create 609 in
  List.iter
    (fun n ->
      let pts = random_points rng n in
      let oracle = Inst.Oracle.build pts in
      let m = Max.build pts in
      Array.iter
        (fun q ->
          Alcotest.(check (option int))
            "range max"
            (Option.map (fun (e : W.t) -> e.W.id) (Inst.Oracle.max oracle q))
            (Option.map (fun (e : W.t) -> e.W.id) (Max.query m q)))
        (random_ranges rng 60))
    [ 1; 2; 64; 500 ]

let test_synth_max_matches_oracle () =
  let rng = Rng.create 611 in
  let pts = random_points rng 400 in
  let oracle = Inst.Oracle.build pts in
  let m = Inst.Synth_max.build pts in
  Array.iter
    (fun q ->
      Alcotest.(check (option int))
        "synthesized max"
        (Option.map (fun (e : W.t) -> e.W.id) (Inst.Oracle.max oracle q))
        (Option.map (fun (e : W.t) -> e.W.id) (Inst.Synth_max.query m q)))
    (random_ranges rng 80);
  Alcotest.(check bool) "used binary-search probes" true
    (Inst.Synth_max.probes m > 80)

let test_reductions_match_oracle () =
  let rng = Rng.create 613 in
  let n = 400 in
  let pts = random_points rng n in
  let oracle = Inst.Oracle.build pts in
  let params = Inst.params () in
  let t1 = Inst.Topk_t1.build ~params pts in
  let t2 = Inst.Topk_t2.build ~params pts in
  let t2s = Inst.Topk_t2_synth.build ~params pts in
  let rj = Inst.Topk_rj.build pts in
  Array.iter
    (fun q ->
      List.iter
        (fun k ->
          let expected = ids (Inst.Oracle.top_k oracle q ~k) in
          Alcotest.(check (list int))
            "t1" expected (ids (Inst.Topk_t1.query t1 q ~k));
          Alcotest.(check (list int))
            "t2" expected (ids (Inst.Topk_t2.query t2 q ~k));
          Alcotest.(check (list int))
            "t2 with synthesized max" expected
            (ids (Inst.Topk_t2_synth.query t2s q ~k));
          Alcotest.(check (list int))
            "rj" expected (ids (Inst.Topk_rj.query rj q ~k)))
        [ 1; 5; 50; 500 ])
    (random_ranges rng 25)

(* --- dynamic range structures --- *)

module Model = struct
  type t = { mutable live : W.t list }

  let create () = { live = [] }

  let insert t p = t.live <- p :: t.live

  let delete t (p : W.t) =
    t.live <- List.filter (fun (x : W.t) -> x.W.id <> p.W.id) t.live

  let max t (lo, hi) =
    List.fold_left
      (fun best (p : W.t) ->
        if lo <= p.W.pos && p.W.pos <= hi then
          match best with
          | None -> Some p
          | Some b -> if W.compare_weight p b > 0 then Some p else best
        else best)
      None t.live

  let top_k t (lo, hi) ~k =
    Topk_util.Select.top_k ~cmp:W.compare_weight k
      (List.filter (fun (p : W.t) -> lo <= p.W.pos && p.W.pos <= hi) t.live)
end

let random_point rng id =
  W.make ~id ~pos:(Rng.uniform rng)
    ~weight:(float_of_int id +. Rng.float rng 0.3)
    ()

let test_dyn_range_max_trace () =
  let rng = Rng.create 617 in
  let s = Topk_range.Dyn_range_max.build [||] in
  let model = Model.create () in
  let next = ref 0 in
  for op = 1 to 600 do
    if List.length model.Model.live < 10 || Rng.bernoulli rng 0.6 then begin
      incr next;
      let p = random_point rng !next in
      Model.insert model p;
      Topk_range.Dyn_range_max.insert s p
    end
    else begin
      let arr = Array.of_list model.Model.live in
      let victim = arr.(Rng.int rng (Array.length arr)) in
      Model.delete model victim;
      Topk_range.Dyn_range_max.delete s victim
    end;
    if op mod 50 = 0 then
      Array.iter
        (fun q ->
          Alcotest.(check (option int))
            "dyn range max"
            (Option.map (fun (p : W.t) -> p.W.id) (Model.max model q))
            (Option.map
               (fun (p : W.t) -> p.W.id)
               (Topk_range.Dyn_range_max.query s q)))
        (random_ranges rng 10)
  done

let test_dyn_range_max_delete_heavy () =
  let rng = Rng.create 619 in
  let pts = random_points rng 150 in
  let s = Topk_range.Dyn_range_max.build pts in
  let model = Model.create () in
  Array.iter (Model.insert model) pts;
  let q = (0.2, 0.8) in
  let rec drain steps =
    if steps > 0 then
      match Model.max model q with
      | None ->
          Alcotest.(check (option int)) "both empty" None
            (Option.map
               (fun (p : W.t) -> p.W.id)
               (Topk_range.Dyn_range_max.query s q))
      | Some m ->
          Alcotest.(check (option int))
            "max agrees" (Some m.W.id)
            (Option.map
               (fun (p : W.t) -> p.W.id)
               (Topk_range.Dyn_range_max.query s q));
          Model.delete model m;
          Topk_range.Dyn_range_max.delete s m;
          drain (steps - 1)
  in
  drain 150

let test_dyn_topk_range_trace () =
  let rng = Rng.create 621 in
  let s = Inst.Dyn_topk.build ~params:(Inst.params ()) [||] in
  let model = Model.create () in
  let next = ref 0 in
  for op = 1 to 500 do
    if List.length model.Model.live < 5 || Rng.bernoulli rng 0.65 then begin
      incr next;
      let p = random_point rng !next in
      Model.insert model p;
      Inst.Dyn_topk.insert s p
    end
    else begin
      let arr = Array.of_list model.Model.live in
      let victim = arr.(Rng.int rng (Array.length arr)) in
      Model.delete model victim;
      Inst.Dyn_topk.delete s victim
    end;
    if op mod 60 = 0 then
      Array.iter
        (fun q ->
          List.iter
            (fun k ->
              Alcotest.(check (list int))
                "dyn range top-k"
                (ids (Model.top_k model q ~k))
                (ids (Inst.Dyn_topk.query s q ~k)))
            [ 1; 6; 500 ])
        (random_ranges rng 6)
  done

let prop_range_agree =
  QCheck.Test.make ~count:25 ~name:"range reductions agree"
    QCheck.(pair (int_bound 10_000) (int_bound 300))
    (fun (seed, raw_n) ->
      let n = max 4 raw_n in
      let rng = Rng.create seed in
      let pts = random_points rng n in
      let oracle = Inst.Oracle.build pts in
      let t2 = Inst.Topk_t2.build ~params:(Inst.params ()) pts in
      Array.for_all
        (fun q ->
          List.for_all
            (fun k ->
              ids (Inst.Oracle.top_k oracle q ~k)
              = ids (Inst.Topk_t2.query t2 q ~k))
            [ 1; 9; n ])
        (random_ranges rng 5))

let () =
  Alcotest.run "topk_range"
    [
      ( "range_pri",
        [
          Alcotest.test_case "matches oracle" `Quick test_pri_matches_oracle;
          Alcotest.test_case "point and full ranges" `Quick
            test_pri_point_and_full_ranges;
          Alcotest.test_case "monitored" `Quick test_pri_monitored;
        ] );
      ( "range_max",
        [ Alcotest.test_case "matches oracle" `Quick test_max_matches_oracle ] );
      ( "max_from_pri",
        [
          Alcotest.test_case "synthesized max matches oracle" `Quick
            test_synth_max_matches_oracle;
        ] );
      ( "reductions",
        [
          Alcotest.test_case "match oracle" `Slow test_reductions_match_oracle;
          QCheck_alcotest.to_alcotest prop_range_agree;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "dyn range max trace" `Quick
            test_dyn_range_max_trace;
          Alcotest.test_case "dyn range max delete-heavy" `Quick
            test_dyn_range_max_delete_heavy;
          Alcotest.test_case "dyn top-k trace" `Slow test_dyn_topk_range_trace;
        ] );
    ]
