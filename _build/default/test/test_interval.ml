(* Tests for the interval-stabbing structures and the reductions
   instantiated on them (Theorem 4). *)

module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module I = Topk_interval.Interval
module Problem = Topk_interval.Problem
module Seg = Topk_interval.Seg_stab
module Max = Topk_interval.Slab_max
module Inst = Topk_interval.Instances
module Sigs = Topk_core.Sigs

let mk ?id ~lo ~hi ~w () = I.make ?id ~lo ~hi ~weight:w ()

let ids elems = List.map (fun (e : I.t) -> e.I.id) elems

let check_ids = Alcotest.(check (list int))

let workload rng ~shape ~n =
  Inst.Oracle.build (I.of_spans rng (Gen.intervals rng ~shape ~n))

(* --- Interval basics --- *)

let test_make_validates () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Interval.make: lo > hi")
    (fun () -> ignore (mk ~lo:2. ~hi:1. ~w:0. ()));
  Alcotest.check_raises "nan" (Invalid_argument "Interval.make: NaN bound")
    (fun () -> ignore (mk ~lo:Float.nan ~hi:1. ~w:0. ()))

let test_contains () =
  let itv = mk ~lo:1. ~hi:3. ~w:5. () in
  Alcotest.(check bool) "inside" true (I.contains itv 2.);
  Alcotest.(check bool) "left endpoint" true (I.contains itv 1.);
  Alcotest.(check bool) "right endpoint" true (I.contains itv 3.);
  Alcotest.(check bool) "outside left" false (I.contains itv 0.999);
  Alcotest.(check bool) "outside right" false (I.contains itv 3.001)

let test_weight_order_tiebreak () =
  let a = mk ~id:1 ~lo:0. ~hi:1. ~w:5. () in
  let b = mk ~id:2 ~lo:0. ~hi:1. ~w:5. () in
  Alcotest.(check bool) "tie broken by id" true (I.compare_weight a b < 0);
  Alcotest.(check int) "antisymmetric" (-(I.compare_weight b a))
    (I.compare_weight a b)

(* --- Slabs --- *)

let test_slabs_structure () =
  let s = Topk_interval.Slabs.of_endpoints [| 3.; 1.; 2.; 1. |] in
  (* Distinct coords: 1, 2, 3 -> 7 slabs. *)
  Alcotest.(check int) "slab count" 7 (Topk_interval.Slabs.slab_count s);
  Alcotest.(check int) "coord count" 3 (Topk_interval.Slabs.coord_count s);
  (* Coordinates land on odd (point) slabs, gaps on even slabs. *)
  Alcotest.(check int) "coord 1" 1 (Topk_interval.Slabs.slab_of_point s 1.);
  Alcotest.(check int) "coord 2" 3 (Topk_interval.Slabs.slab_of_point s 2.);
  Alcotest.(check int) "coord 3" 5 (Topk_interval.Slabs.slab_of_point s 3.);
  Alcotest.(check int) "before all" 0 (Topk_interval.Slabs.slab_of_point s 0.);
  Alcotest.(check int) "gap 1-2" 2 (Topk_interval.Slabs.slab_of_point s 1.5);
  Alcotest.(check int) "gap 2-3" 4 (Topk_interval.Slabs.slab_of_point s 2.5);
  Alcotest.(check int) "after all" 6 (Topk_interval.Slabs.slab_of_point s 9.);
  Alcotest.(check int) "slab_of_coord" 3 (Topk_interval.Slabs.slab_of_coord s 2.);
  Alcotest.check_raises "not a coordinate"
    (Invalid_argument "Slabs.slab_of_coord: not a coordinate") (fun () ->
      ignore (Topk_interval.Slabs.slab_of_coord s 1.5))

let prop_slabs_monotone =
  QCheck.Test.make ~count:100 ~name:"slab index is monotone in the point"
    QCheck.(pair (int_bound 10_000) (int_bound 50))
    (fun (seed, raw_m) ->
      let m = max 1 raw_m in
      let rng = Rng.create seed in
      let coords = Array.init m (fun _ -> Rng.uniform rng) in
      let s = Topk_interval.Slabs.of_endpoints coords in
      let qs = Array.init 50 (fun _ -> Rng.float rng 1.2 -. 0.1) in
      Array.sort Float.compare qs;
      let slabs = Array.map (Topk_interval.Slabs.slab_of_point s) qs in
      Topk_util.Search.is_sorted ~cmp:Int.compare slabs)

(* --- Prioritized structure (Seg_stab) --- *)

let sorted_ids elems =
  List.sort Int.compare (ids elems)

let test_seg_stab_matches_oracle () =
  let rng = Rng.create 7 in
  List.iter
    (fun shape ->
      let oracle = workload rng ~shape ~n:300 in
      let s = Seg.build (Inst.Oracle.elements oracle) in
      let queries = Gen.stab_queries rng ~n:50 in
      Array.iter
        (fun q ->
          List.iter
            (fun tau ->
              let expected = Inst.Oracle.prioritized oracle q ~tau in
              let got = Seg.query s q ~tau in
              check_ids "prioritized query" (sorted_ids expected)
                (sorted_ids got))
            [ Float.neg_infinity; 50.; 150.; 290.; 301. ])
        queries)
    [ Gen.Short_intervals; Gen.Mixed_intervals; Gen.Nested_intervals ]

let test_seg_stab_endpoint_queries () =
  let rng = Rng.create 11 in
  let oracle = workload rng ~shape:Gen.Mixed_intervals ~n:200 in
  let elems = Inst.Oracle.elements oracle in
  let s = Seg.build elems in
  (* Query exactly at interval endpoints: closed-interval semantics. *)
  Array.iteri
    (fun i (itv : I.t) ->
      if i mod 10 = 0 then begin
        List.iter
          (fun q ->
            let expected = Inst.Oracle.prioritized oracle q ~tau:Float.neg_infinity in
            let got = Seg.query s q ~tau:Float.neg_infinity in
            check_ids "endpoint stab" (sorted_ids expected) (sorted_ids got))
          [ itv.I.lo; itv.I.hi ]
      end)
    elems

let test_seg_stab_monitored () =
  let rng = Rng.create 13 in
  let oracle = workload rng ~shape:Gen.Nested_intervals ~n:500 in
  let s = Seg.build (Inst.Oracle.elements oracle) in
  let q = 0.5 (* center of nested intervals: everything matches *) in
  let total = Inst.Oracle.count oracle q in
  Alcotest.(check bool) "big result" true (total > 400);
  (match Seg.query_monitored s q ~tau:Float.neg_infinity ~limit:10 with
   | Sigs.Truncated prefix ->
       Alcotest.(check int) "stops at limit+1" 11 (List.length prefix)
   | Sigs.All _ -> Alcotest.fail "expected truncation");
  (match Seg.query_monitored s q ~tau:Float.neg_infinity ~limit:total with
   | Sigs.All all -> Alcotest.(check int) "full result" total (List.length all)
   | Sigs.Truncated _ -> Alcotest.fail "unexpected truncation")

let test_seg_stab_empty_and_single () =
  let s = Seg.build [||] in
  Alcotest.(check int) "empty query" 0
    (List.length (Seg.query s 0.5 ~tau:Float.neg_infinity));
  let one = mk ~id:1 ~lo:0.2 ~hi:0.8 ~w:1. () in
  let s = Seg.build [| one |] in
  check_ids "hit" [ 1 ] (ids (Seg.query s 0.5 ~tau:Float.neg_infinity));
  check_ids "miss" [] (ids (Seg.query s 0.9 ~tau:Float.neg_infinity));
  check_ids "tau filters" [] (ids (Seg.query s 0.5 ~tau:2.))

(* --- Interval-tree prioritized (linear space) --- *)

let test_itree_matches_oracle () =
  let rng = Rng.create 14 in
  List.iter
    (fun shape ->
      let oracle = workload rng ~shape ~n:300 in
      let s = Topk_interval.Itree_pri.build (Inst.Oracle.elements oracle) in
      let queries = Gen.stab_queries rng ~n:50 in
      Array.iter
        (fun q ->
          List.iter
            (fun tau ->
              check_ids "itree prioritized"
                (sorted_ids (Inst.Oracle.prioritized oracle q ~tau))
                (sorted_ids (Topk_interval.Itree_pri.query s q ~tau)))
            [ Float.neg_infinity; 150.; 500. ])
        queries)
    [ Gen.Short_intervals; Gen.Mixed_intervals; Gen.Nested_intervals ]

let test_itree_linear_space_and_depth () =
  let rng = Rng.create 15 in
  let oracle = workload rng ~shape:Gen.Mixed_intervals ~n:4096 in
  let elems = Inst.Oracle.elements oracle in
  let itree = Topk_interval.Itree_pri.build elems in
  let seg = Seg.build elems in
  (* Linear vs n log n: the interval tree must be much smaller. *)
  Alcotest.(check bool) "itree smaller than segment tree" true
    (Topk_interval.Itree_pri.space_words itree < Seg.space_words seg / 2);
  Alcotest.(check bool) "logarithmic depth" true
    (Topk_interval.Itree_pri.depth itree <= 3 * 12)

let test_itree_reduction_matches_oracle () =
  let rng = Rng.create 16 in
  let oracle = workload rng ~shape:Gen.Mixed_intervals ~n:400 in
  let elems = Inst.Oracle.elements oracle in
  let t2 = Inst.Topk_t2_itree.build ~params:(Inst.params ()) elems in
  let queries = Gen.stab_queries rng ~n:25 in
  Array.iter
    (fun q ->
      List.iter
        (fun k ->
          check_ids "theorem2 over itree"
            (ids (Inst.Oracle.top_k oracle q ~k))
            (ids (Inst.Topk_t2_itree.query t2 q ~k)))
        [ 1; 7; 80; 900 ])
    queries

(* --- Max structure (Slab_max) --- *)

let test_slab_max_matches_oracle () =
  let rng = Rng.create 17 in
  List.iter
    (fun shape ->
      let oracle = workload rng ~shape ~n:400 in
      let m = Max.build (Inst.Oracle.elements oracle) in
      let queries = Gen.stab_queries rng ~n:100 in
      Array.iter
        (fun q ->
          let expected = Inst.Oracle.max oracle q in
          let got = Max.query m q in
          Alcotest.(check (option int))
            "max id"
            (Option.map (fun (e : I.t) -> e.I.id) expected)
            (Option.map (fun (e : I.t) -> e.I.id) got))
        queries)
    [ Gen.Short_intervals; Gen.Mixed_intervals; Gen.Nested_intervals ]

let test_slab_max_endpoints () =
  let rng = Rng.create 19 in
  let oracle = workload rng ~shape:Gen.Mixed_intervals ~n:300 in
  let elems = Inst.Oracle.elements oracle in
  let m = Max.build elems in
  Array.iteri
    (fun i (itv : I.t) ->
      if i mod 7 = 0 then
        List.iter
          (fun q ->
            let expected = Inst.Oracle.max oracle q in
            let got = Max.query m q in
            Alcotest.(check (option int))
              "max at endpoint"
              (Option.map (fun (e : I.t) -> e.I.id) expected)
              (Option.map (fun (e : I.t) -> e.I.id) got))
          [ itv.I.lo; itv.I.hi ])
    elems

(* --- Counting structure --- *)

let test_stab_count_matches_oracle () =
  let rng = Rng.create 21 in
  List.iter
    (fun shape ->
      let oracle = workload rng ~shape ~n:400 in
      let c = Topk_interval.Stab_count.build (Inst.Oracle.elements oracle) in
      Array.iter
        (fun q ->
          Alcotest.(check int)
            "stab count" (Inst.Oracle.count oracle q)
            (Topk_interval.Stab_count.count c q))
        (Gen.stab_queries rng ~n:80))
    [ Gen.Short_intervals; Gen.Mixed_intervals; Gen.Nested_intervals ]

let test_stab_count_endpoints () =
  let rng = Rng.create 22 in
  let oracle = workload rng ~shape:Gen.Mixed_intervals ~n:200 in
  let elems = Inst.Oracle.elements oracle in
  let c = Topk_interval.Stab_count.build elems in
  Array.iteri
    (fun i (itv : I.t) ->
      if i mod 13 = 0 then
        List.iter
          (fun q ->
            Alcotest.(check int)
              "count at endpoint" (Inst.Oracle.count oracle q)
              (Topk_interval.Stab_count.count c q))
          [ itv.I.lo; itv.I.hi ])
    elems

(* --- Reductions end to end (Theorem 4) --- *)

let check_topk name structure_query oracle queries ks =
  Array.iter
    (fun q ->
      List.iter
        (fun k ->
          let expected = Inst.Oracle.top_k oracle q ~k in
          let got = structure_query q ~k in
          check_ids
            (Printf.sprintf "%s top-%d" name k)
            (ids expected) (ids got))
        ks)
    queries

let reduction_case name build query_fn =
  let rng = Rng.create 23 in
  List.iter
    (fun (shape, n) ->
      let oracle = workload rng ~shape ~n in
      let t = build (Inst.Oracle.elements oracle) in
      let queries = Gen.stab_queries rng ~n:25 in
      check_topk name (query_fn t) oracle queries
        [ 1; 2; 3; 10; 50; n / 2; n; 2 * n ])
    [ (Gen.Short_intervals, 300);
      (Gen.Mixed_intervals, 500);
      (Gen.Nested_intervals, 400) ]

let test_theorem1_correct () =
  reduction_case "theorem1"
    (fun elems -> Inst.Topk_t1.build ~params:(Inst.params ()) elems)
    (fun t q ~k -> Inst.Topk_t1.query t q ~k)

let test_theorem2_correct () =
  reduction_case "theorem2"
    (fun elems -> Inst.Topk_t2.build ~params:(Inst.params ()) elems)
    (fun t q ~k -> Inst.Topk_t2.query t q ~k)

let test_baseline_rj_correct () =
  reduction_case "baseline-rj"
    (fun elems -> Inst.Topk_rj.build elems)
    (fun t q ~k -> Inst.Topk_rj.query t q ~k)

let test_rj_counting_correct () =
  reduction_case "rj-counting"
    (fun elems -> Inst.Topk_rj_counting.build elems)
    (fun t q ~k -> Inst.Topk_rj_counting.query t q ~k)

let test_naive_correct () =
  reduction_case "naive"
    (fun elems -> Inst.Topk_naive.build elems)
    (fun t q ~k -> Inst.Topk_naive.query t q ~k)

(* k = 0 and negative k return nothing; k = 1 agrees with max. *)
let test_topk_degenerate_k () =
  let rng = Rng.create 29 in
  let oracle = workload rng ~shape:Gen.Mixed_intervals ~n:200 in
  let elems = Inst.Oracle.elements oracle in
  let t1 = Inst.Topk_t1.build ~params:(Inst.params ()) elems in
  let t2 = Inst.Topk_t2.build ~params:(Inst.params ()) elems in
  Alcotest.(check int) "t1 k=0" 0 (List.length (Inst.Topk_t1.query t1 0.5 ~k:0));
  Alcotest.(check int) "t2 k=-1" 0
    (List.length (Inst.Topk_t2.query t2 0.5 ~k:(-1)));
  let m = Max.build elems in
  let queries = Gen.stab_queries rng ~n:40 in
  Array.iter
    (fun q ->
      let top1 = Inst.Topk_t2.query t2 q ~k:1 in
      let mx = Max.query m q in
      Alcotest.(check (option int))
        "k=1 equals max"
        (Option.map (fun (e : I.t) -> e.I.id) mx)
        (match top1 with [] -> None | e :: _ -> Some e.I.id))
    queries

(* Property-based: random workloads, random queries, all reductions
   agree with the oracle. *)
let prop_reductions_agree =
  QCheck.Test.make ~count:30 ~name:"reductions agree with oracle"
    QCheck.(pair (int_bound 1000) (int_bound 300))
    (fun (seed, raw_n) ->
      let n = max 4 raw_n in
      let rng = Rng.create seed in
      let shape =
        match seed mod 3 with
        | 0 -> Gen.Short_intervals
        | 1 -> Gen.Mixed_intervals
        | _ -> Gen.Nested_intervals
      in
      let oracle = workload rng ~shape ~n in
      let elems = Inst.Oracle.elements oracle in
      let t1 = Inst.Topk_t1.build ~params:(Inst.params ()) elems in
      let t2 = Inst.Topk_t2.build ~params:(Inst.params ()) elems in
      let rj = Inst.Topk_rj.build elems in
      let qs = Gen.stab_queries rng ~n:5 in
      let ks = [ 1; 7; n / 3; n ] in
      Array.for_all
        (fun q ->
          List.for_all
            (fun k ->
              let expected = ids (Inst.Oracle.top_k oracle q ~k) in
              expected = ids (Inst.Topk_t1.query t1 q ~k)
              && expected = ids (Inst.Topk_t2.query t2 q ~k)
              && expected = ids (Inst.Topk_rj.query rj q ~k))
            ks)
        qs)

let () =
  Alcotest.run "topk_interval"
    [
      ( "interval",
        [
          Alcotest.test_case "make validates" `Quick test_make_validates;
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "weight order tiebreak" `Quick
            test_weight_order_tiebreak;
        ] );
      ( "slabs",
        [
          Alcotest.test_case "structure" `Quick test_slabs_structure;
          QCheck_alcotest.to_alcotest prop_slabs_monotone;
        ] );
      ( "seg_stab",
        [
          Alcotest.test_case "matches oracle" `Quick
            test_seg_stab_matches_oracle;
          Alcotest.test_case "endpoint queries" `Quick
            test_seg_stab_endpoint_queries;
          Alcotest.test_case "monitored" `Quick test_seg_stab_monitored;
          Alcotest.test_case "empty and single" `Quick
            test_seg_stab_empty_and_single;
        ] );
      ( "itree_pri",
        [
          Alcotest.test_case "matches oracle" `Quick test_itree_matches_oracle;
          Alcotest.test_case "linear space, log depth" `Quick
            test_itree_linear_space_and_depth;
          Alcotest.test_case "theorem2 over itree" `Quick
            test_itree_reduction_matches_oracle;
        ] );
      ( "slab_max",
        [
          Alcotest.test_case "matches oracle" `Quick
            test_slab_max_matches_oracle;
          Alcotest.test_case "endpoints" `Quick test_slab_max_endpoints;
        ] );
      ( "stab_count",
        [
          Alcotest.test_case "matches oracle" `Quick
            test_stab_count_matches_oracle;
          Alcotest.test_case "endpoints" `Quick test_stab_count_endpoints;
        ] );
      ( "reductions",
        [
          Alcotest.test_case "theorem1 correct" `Slow test_theorem1_correct;
          Alcotest.test_case "theorem2 correct" `Slow test_theorem2_correct;
          Alcotest.test_case "baseline-rj correct" `Slow
            test_baseline_rj_correct;
          Alcotest.test_case "rj-counting correct" `Slow
            test_rj_counting_correct;
          Alcotest.test_case "naive correct" `Quick test_naive_correct;
          Alcotest.test_case "degenerate k" `Quick test_topk_degenerate_k;
          QCheck_alcotest.to_alcotest prop_reductions_agree;
        ] );
    ]
