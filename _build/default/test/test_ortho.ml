(* Tests for top-k 2D orthogonal range reporting. *)

module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module P2 = Topk_geom.Point2
module Pri = Topk_ortho.Ortho_pri
module Max = Topk_ortho.Ortho_max
module Inst = Topk_ortho.Instances
module Sigs = Topk_core.Sigs

let random_points rng n =
  P2.of_coords rng
    (Array.map (fun c -> (c.(0), c.(1))) (Gen.points rng ~n ~d:2))

let random_rects rng n =
  Array.init n (fun _ ->
      let x1 = Rng.uniform rng and x2 = Rng.uniform rng in
      let y1 = Rng.uniform rng and y2 = Rng.uniform rng in
      (Float.min x1 x2, Float.max x1 x2, Float.min y1 y2, Float.max y1 y2))

let ids elems = List.map (fun (e : P2.t) -> e.P2.id) elems

let sorted_ids elems = List.sort Int.compare (ids elems)

let test_pri_matches_oracle () =
  let rng = Rng.create 801 in
  List.iter
    (fun n ->
      let pts = random_points rng n in
      let oracle = Inst.Oracle.build pts in
      let s = Pri.build pts in
      Array.iter
        (fun q ->
          List.iter
            (fun tau ->
              Alcotest.(check (list int))
                "ortho prioritized"
                (sorted_ids (Inst.Oracle.prioritized oracle q ~tau))
                (sorted_ids (Pri.query s q ~tau)))
            [ Float.neg_infinity; float_of_int (n / 2); 1e9 ])
        (random_rects rng 30))
    [ 0; 1; 2; 17; 400 ]

let test_pri_boundary_rects () =
  let rng = Rng.create 803 in
  let pts = random_points rng 200 in
  let oracle = Inst.Oracle.build pts in
  let s = Pri.build pts in
  (* Rectangles degenerate to a point / a segment through data points. *)
  Array.iteri
    (fun i (p : P2.t) ->
      if i mod 13 = 0 then
        List.iter
          (fun q ->
            Alcotest.(check (list int))
              "boundary rect"
              (sorted_ids
                 (Inst.Oracle.prioritized oracle q ~tau:Float.neg_infinity))
              (sorted_ids (Pri.query s q ~tau:Float.neg_infinity)))
          [ (p.P2.x, p.P2.x, p.P2.y, p.P2.y);
            (p.P2.x, p.P2.x, 0., 1.);
            (0., 1., p.P2.y, p.P2.y) ])
    pts

let test_pri_monitored () =
  let rng = Rng.create 807 in
  let pts = random_points rng 300 in
  let s = Pri.build pts in
  let all = (0., 1., 0., 1.) in
  (match Pri.query_monitored s all ~tau:Float.neg_infinity ~limit:9 with
   | Sigs.Truncated prefix ->
       Alcotest.(check int) "limit+1" 10 (List.length prefix)
   | Sigs.All _ -> Alcotest.fail "expected truncation");
  match Pri.query_monitored s all ~tau:Float.neg_infinity ~limit:300 with
  | Sigs.All got -> Alcotest.(check int) "all" 300 (List.length got)
  | Sigs.Truncated _ -> Alcotest.fail "unexpected truncation"

let test_max_matches_oracle () =
  let rng = Rng.create 809 in
  List.iter
    (fun n ->
      let pts = random_points rng n in
      let oracle = Inst.Oracle.build pts in
      let m = Max.build pts in
      Array.iter
        (fun q ->
          Alcotest.(check (option int))
            "ortho max"
            (Option.map (fun (e : P2.t) -> e.P2.id) (Inst.Oracle.max oracle q))
            (Option.map (fun (e : P2.t) -> e.P2.id) (Max.query m q)))
        (random_rects rng 50))
    [ 1; 2; 40; 400 ]

let test_reductions_match_oracle () =
  let rng = Rng.create 811 in
  let n = 350 in
  let pts = random_points rng n in
  let oracle = Inst.Oracle.build pts in
  let params = Inst.params () in
  let t1 = Inst.Topk_t1.build ~params pts in
  let t2 = Inst.Topk_t2.build ~params pts in
  let rj = Inst.Topk_rj.build pts in
  Array.iter
    (fun q ->
      List.iter
        (fun k ->
          let expected = ids (Inst.Oracle.top_k oracle q ~k) in
          Alcotest.(check (list int))
            "t1" expected (ids (Inst.Topk_t1.query t1 q ~k));
          Alcotest.(check (list int))
            "t2" expected (ids (Inst.Topk_t2.query t2 q ~k));
          Alcotest.(check (list int))
            "rj" expected (ids (Inst.Topk_rj.query rj q ~k)))
        [ 1; 4; 30; 200; 700 ])
    (random_rects rng 20)

let prop_ortho_agree =
  QCheck.Test.make ~count:20 ~name:"ortho reductions agree"
    QCheck.(pair (int_bound 10_000) (int_bound 250))
    (fun (seed, raw_n) ->
      let n = max 4 raw_n in
      let rng = Rng.create seed in
      let pts = random_points rng n in
      let oracle = Inst.Oracle.build pts in
      let t2 = Inst.Topk_t2.build ~params:(Inst.params ()) pts in
      Array.for_all
        (fun q ->
          List.for_all
            (fun k ->
              ids (Inst.Oracle.top_k oracle q ~k)
              = ids (Inst.Topk_t2.query t2 q ~k))
            [ 1; 8; n ])
        (random_rects rng 5))

let () =
  Alcotest.run "topk_ortho"
    [
      ( "ortho_pri",
        [
          Alcotest.test_case "matches oracle" `Quick test_pri_matches_oracle;
          Alcotest.test_case "boundary rects" `Quick test_pri_boundary_rects;
          Alcotest.test_case "monitored" `Quick test_pri_monitored;
        ] );
      ( "ortho_max",
        [ Alcotest.test_case "matches oracle" `Quick test_max_matches_oracle ] );
      ( "reductions",
        [
          Alcotest.test_case "match oracle" `Slow test_reductions_match_oracle;
          QCheck_alcotest.to_alcotest prop_ortho_agree;
        ] );
    ]
