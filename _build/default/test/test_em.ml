(* Tests for the external-memory cost model. *)

module Config = Topk_em.Config
module Stats = Topk_em.Stats
module Lru = Topk_em.Lru_cache
module Io_array = Topk_em.Io_array

let test_config_validation () =
  Alcotest.check_raises "b too small"
    (Invalid_argument "Config.em: block size must be >= 2")
    (fun () -> ignore (Config.em ~b:1 ()));
  Alcotest.check_raises "m too small"
    (Invalid_argument "Config.em: memory must be >= 2 * b")
    (fun () -> ignore (Config.em ~m:100 ~b:64 ()))

let test_blocks_of_words () =
  let c = Config.em ~b:64 () in
  Alcotest.(check int) "zero" 0 (Config.blocks_of_words c 0);
  Alcotest.(check int) "negative" 0 (Config.blocks_of_words c (-5));
  Alcotest.(check int) "one" 1 (Config.blocks_of_words c 1);
  Alcotest.(check int) "full block" 1 (Config.blocks_of_words c 64);
  Alcotest.(check int) "block + 1" 2 (Config.blocks_of_words c 65);
  let r = Config.ram in
  Alcotest.(check int) "ram: word = block" 7 (Config.blocks_of_words r 7)

let test_with_model_restores () =
  let before = Config.current () in
  let inside = ref Config.ram in
  Config.with_model Config.ram (fun () -> inside := Config.current ());
  Alcotest.(check bool) "inside is ram" true (!inside = Config.ram);
  Alcotest.(check bool) "restored" true (Config.current () = before);
  (try
     Config.with_model Config.ram (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored after exception" true
    (Config.current () = before)

let test_charge_ios () =
  Stats.reset ();
  Stats.charge_ios 3;
  Stats.charge_ios 0;
  Stats.charge_ios 2;
  Alcotest.(check int) "sum" 5 (Stats.ios ());
  Alcotest.check_raises "negative" (Invalid_argument "Stats.charge_ios: negative")
    (fun () -> Stats.charge_ios (-1))

let test_charge_scan_carry () =
  Config.with_model (Config.em ~b:64 ()) (fun () ->
      Stats.reset ();
      (* 64 one-element scans amount to exactly one block I/O. *)
      for _ = 1 to 64 do
        Stats.charge_scan 1
      done;
      Alcotest.(check int) "64 x 1 elem = 1 io" 1 (Stats.ios ());
      Stats.reset ();
      Stats.charge_scan 63;
      Alcotest.(check int) "63 elems: no io yet" 0 (Stats.ios ());
      Stats.charge_scan 1;
      Alcotest.(check int) "carry completes the block" 1 (Stats.ios ());
      Stats.reset ();
      Stats.charge_scan 640;
      Alcotest.(check int) "bulk scan" 10 (Stats.ios ());
      Alcotest.(check int) "raw elements recorded" 640
        (Stats.snapshot ()).Stats.scanned)

let test_measure_isolates () =
  Stats.reset ();
  Stats.charge_ios 7;
  let (), inner = Stats.measure (fun () -> Stats.charge_ios 5) in
  Alcotest.(check int) "inner sees its own" 5 inner.Stats.ios;
  Alcotest.(check int) "outer untouched" 7 (Stats.ios ());
  (try
     ignore
       (Stats.measure (fun () ->
            Stats.charge_ios 100;
            failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check int) "outer survives exception" 7 (Stats.ios ())

let test_lru_hits_and_misses () =
  Topk_em.Config.with_model (Config.em ~b:64 ()) (fun () ->
      Stats.reset ();
      let c = Lru.create ~capacity:2 () in
      Alcotest.(check bool) "first access misses" false (Lru.access c 1);
      Alcotest.(check bool) "second access hits" true (Lru.access c 1);
      ignore (Lru.access c 2);
      (* Capacity 2: 1 and 2 resident; 3 evicts the LRU (1). *)
      ignore (Lru.access c 3);
      Alcotest.(check bool) "1 was evicted" false (Lru.access c 1);
      Alcotest.(check bool) "3 still resident" true (Lru.access c 3);
      Alcotest.(check int) "io per miss" 4 (Stats.ios ()))

let test_lru_recency_updates () =
  let c = Lru.create ~capacity:2 () in
  ignore (Lru.access c 1);
  ignore (Lru.access c 2);
  ignore (Lru.access c 1);  (* 1 becomes MRU; 2 is now LRU *)
  ignore (Lru.access c 3);  (* evicts 2 *)
  Alcotest.(check bool) "1 survived" true (Lru.access c 1);
  Alcotest.(check bool) "2 evicted" false (Lru.access c 2)

let test_io_array_sequential_vs_random () =
  Config.with_model (Config.em ~b:8 ~m:16 ()) (fun () ->
      let data = Array.init 64 (fun i -> i) in
      (* Sequential scan: one miss per block. *)
      Stats.reset ();
      let a = Io_array.of_array data in
      let sum = ref 0 in
      Io_array.iter_range a ~lo:0 ~hi:64 (fun x -> sum := !sum + x);
      Alcotest.(check int) "sum" (64 * 63 / 2) !sum;
      Alcotest.(check int) "sequential: 8 blocks" 8 (Stats.ios ());
      (* Strided probes with a 2-block cache: most probes miss. *)
      Stats.reset ();
      let b = Io_array.of_array data in
      for i = 0 to 7 do
        ignore (Io_array.get b (i * 8));
        ignore (Io_array.get b (((i + 4) mod 8) * 8))
      done;
      Alcotest.(check bool) "random probes cost more" true (Stats.ios () > 8))

let () =
  Alcotest.run "topk_em"
    [
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "blocks_of_words" `Quick test_blocks_of_words;
          Alcotest.test_case "with_model restores" `Quick
            test_with_model_restores;
        ] );
      ( "stats",
        [
          Alcotest.test_case "charge_ios" `Quick test_charge_ios;
          Alcotest.test_case "scan carry" `Quick test_charge_scan_carry;
          Alcotest.test_case "measure isolates" `Quick test_measure_isolates;
        ] );
      ( "lru",
        [
          Alcotest.test_case "hits and misses" `Quick test_lru_hits_and_misses;
          Alcotest.test_case "recency" `Quick test_lru_recency_updates;
        ] );
      ( "io_array",
        [
          Alcotest.test_case "sequential vs random" `Quick
            test_io_array_sequential_vs_random;
        ] );
    ]
