(* Tests for halfspace and circular top-k (Theorem 3, Corollary 1). *)

module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module P2 = Topk_geom.Point2
module Hp = Topk_geom.Halfplane
module H = Topk_halfspace
module Inst = Topk_halfspace.Instances
module Sigs = Topk_core.Sigs

let random_points2 rng n =
  P2.of_coords rng
    (Array.map (fun c -> (c.(0), c.(1))) (Gen.points rng ~n ~d:2))

let ids2 elems = List.map (fun (e : P2.t) -> e.P2.id) elems

let idsd elems = List.map (fun (e : H.Pointd.t) -> e.H.Pointd.id) elems

(* --- 2D prioritized (onion) --- *)

let test_hp_pri_matches_oracle () =
  let rng = Rng.create 31 in
  let pts = random_points2 rng 400 in
  let oracle = Inst.Oracle2.build pts in
  let s = H.Hp_pri.build pts in
  Array.iter
    (fun hp3 ->
      let q = Hp.of_triple hp3 in
      List.iter
        (fun tau ->
          let expected = Inst.Oracle2.prioritized oracle q ~tau in
          let got = H.Hp_pri.query s q ~tau in
          Alcotest.(check (list int))
            "hp prioritized"
            (List.sort Int.compare (ids2 expected))
            (List.sort Int.compare (ids2 got)))
        [ Float.neg_infinity; 100.; 250.; 390.; 500. ])
    (Gen.halfplanes rng ~n:40)

let test_hp_pri_monitored () =
  let rng = Rng.create 37 in
  let pts = random_points2 rng 300 in
  let s = H.Hp_pri.build pts in
  (* A halfplane containing everything. *)
  let q = Hp.make ~a:0. ~b:1. ~c:(-10.) in
  (match H.Hp_pri.query_monitored s q ~tau:Float.neg_infinity ~limit:5 with
   | Sigs.Truncated prefix ->
       Alcotest.(check int) "limit+1" 6 (List.length prefix)
   | Sigs.All _ -> Alcotest.fail "expected truncation");
  match H.Hp_pri.query_monitored s q ~tau:Float.neg_infinity ~limit:300 with
  | Sigs.All all -> Alcotest.(check int) "full" 300 (List.length all)
  | Sigs.Truncated _ -> Alcotest.fail "unexpected truncation"

(* --- 2D max (hull tournament) --- *)

let test_hp_max_matches_oracle () =
  let rng = Rng.create 41 in
  List.iter
    (fun n ->
      let pts = random_points2 rng n in
      let oracle = Inst.Oracle2.build pts in
      let m = H.Hp_max.build pts in
      Array.iter
        (fun hp3 ->
          let q = Hp.of_triple hp3 in
          Alcotest.(check (option int))
            "hp max"
            (Option.map (fun (e : P2.t) -> e.P2.id) (Inst.Oracle2.max oracle q))
            (Option.map (fun (e : P2.t) -> e.P2.id) (H.Hp_max.query m q)))
        (Gen.halfplanes rng ~n:60))
    [ 1; 2; 3; 50; 400 ]

(* --- 2D reductions end to end --- *)

let test_topk2_reductions () =
  let rng = Rng.create 43 in
  let n = 400 in
  let pts = random_points2 rng n in
  let oracle = Inst.Oracle2.build pts in
  let t1 = Inst.Topk2_t1.build ~params:(Inst.params2 ()) pts in
  let t2 = Inst.Topk2_t2.build ~params:(Inst.params2 ()) pts in
  let rj = Inst.Topk2_rj.build pts in
  Array.iter
    (fun hp3 ->
      let q = Hp.of_triple hp3 in
      List.iter
        (fun k ->
          let expected = ids2 (Inst.Oracle2.top_k oracle q ~k) in
          Alcotest.(check (list int))
            "t1" expected (ids2 (Inst.Topk2_t1.query t1 q ~k));
          Alcotest.(check (list int))
            "t2" expected (ids2 (Inst.Topk2_t2.query t2 q ~k));
          Alcotest.(check (list int))
            "rj" expected (ids2 (Inst.Topk2_rj.query rj q ~k)))
        [ 1; 5; 37; 200; 500 ])
    (Gen.halfplanes rng ~n:25)

(* --- kd-tree (d >= 3) --- *)

let random_pointsd rng ~n ~d = H.Pointd.of_coords rng (Gen.points rng ~n ~d)

let random_halfspace rng ~d =
  let normal = Array.init d (fun _ -> Rng.uniform rng -. 0.5) in
  if Array.for_all (fun a -> Float.abs a < 1e-9) normal then normal.(0) <- 1.;
  let anchor = Array.init d (fun _ -> Rng.uniform rng) in
  let c = ref 0. in
  Array.iteri (fun i a -> c := !c +. (a *. anchor.(i))) normal;
  H.Predicates.Halfspace.make ~normal ~c:!c

let test_kd_pri_matches_oracle () =
  let rng = Rng.create 47 in
  List.iter
    (fun d ->
      let pts = random_pointsd rng ~n:500 ~d in
      let oracle = Inst.Oracled.build pts in
      let s = Inst.Kd_hs_pri.build pts in
      for _ = 1 to 30 do
        let q = random_halfspace rng ~d in
        List.iter
          (fun tau ->
            let expected = Inst.Oracled.prioritized oracle q ~tau in
            let got = Inst.Kd_hs_pri.query s q ~tau in
            Alcotest.(check (list int))
              "kd prioritized"
              (List.sort Int.compare (idsd expected))
              (List.sort Int.compare (idsd got)))
          [ Float.neg_infinity; 250.; 495. ]
      done)
    [ 2; 3; 4; 5 ]

let test_kd_max_matches_oracle () =
  let rng = Rng.create 53 in
  let d = 4 in
  let pts = random_pointsd rng ~n:600 ~d in
  let oracle = Inst.Oracled.build pts in
  let m = Inst.Kd_hs_max.build pts in
  for _ = 1 to 50 do
    let q = random_halfspace rng ~d in
    Alcotest.(check (option int))
      "kd max"
      (Option.map (fun (e : H.Pointd.t) -> e.H.Pointd.id)
         (Inst.Oracled.max oracle q))
      (Option.map (fun (e : H.Pointd.t) -> e.H.Pointd.id)
         (Inst.Kd_hs_max.query m q))
  done

let test_topkd_reductions () =
  let rng = Rng.create 59 in
  let d = 4 in
  let n = 400 in
  let pts = random_pointsd rng ~n ~d in
  let oracle = Inst.Oracled.build pts in
  let params = Inst.paramsd ~d in
  let t1 = Inst.Topkd_t1.build ~params pts in
  let t2 = Inst.Topkd_t2.build ~params pts in
  for _ = 1 to 15 do
    let q = random_halfspace rng ~d in
    List.iter
      (fun k ->
        let expected = idsd (Inst.Oracled.top_k oracle q ~k) in
        Alcotest.(check (list int))
          "kd t1" expected (idsd (Inst.Topkd_t1.query t1 q ~k));
        Alcotest.(check (list int))
          "kd t2" expected (idsd (Inst.Topkd_t2.query t2 q ~k)))
      [ 1; 10; 100; 399 ]
  done

(* --- circular: direct ball queries and the lifting route --- *)

let test_ball_direct_matches_oracle () =
  let rng = Rng.create 61 in
  let d = 3 in
  let pts = random_pointsd rng ~n:500 ~d in
  let oracle = Inst.Oracle_ball.build pts in
  let t2 = Inst.Topk_ball_t2.build ~params:(Inst.paramsd ~d) pts in
  Array.iter
    (fun (center, radius) ->
      let q = H.Predicates.Ball.make ~center ~radius in
      List.iter
        (fun k ->
          Alcotest.(check (list int))
            "ball top-k"
            (idsd (Inst.Oracle_ball.top_k oracle q ~k))
            (idsd (Inst.Topk_ball_t2.query t2 q ~k)))
        [ 1; 5; 50 ])
    (Gen.balls rng ~n:30 ~d)

let test_lifting_equivalence () =
  let rng = Rng.create 67 in
  let d = 3 in
  let pts = random_pointsd rng ~n:400 ~d in
  let lifted = H.Lifting.lift_points pts in
  Array.iter
    (fun (center, radius) ->
      let ball = H.Predicates.Ball.make ~center ~radius in
      let hs = H.Lifting.lift_ball ball in
      (* Point-in-ball iff lifted-point-in-halfspace. *)
      Array.iteri
        (fun i p ->
          Alcotest.(check bool)
            "lifting preserves membership"
            (H.Predicates.Ball.matches ball p)
            (H.Predicates.Halfspace.matches hs lifted.(i)))
        pts)
    (Gen.balls rng ~n:50 ~d)

let test_lifted_topk_matches_ball_topk () =
  let rng = Rng.create 71 in
  let d = 3 in
  let pts = random_pointsd rng ~n:300 ~d in
  let lifted = H.Lifting.lift_points pts in
  let oracle = Inst.Oracle_ball.build pts in
  let t1 = Inst.Topkd_t1.build ~params:(Inst.paramsd ~d:(d + 1)) lifted in
  Array.iter
    (fun (center, radius) ->
      let ball = H.Predicates.Ball.make ~center ~radius in
      let hs = H.Lifting.lift_ball ball in
      List.iter
        (fun k ->
          Alcotest.(check (list int))
            "lifted top-k equals ball top-k"
            (idsd (Inst.Oracle_ball.top_k oracle ball ~k))
            (idsd (Inst.Topkd_t1.query t1 hs ~k)))
        [ 1; 7; 64 ])
    (Gen.balls rng ~n:20 ~d)

(* Property: 2D reductions agree with oracle across random workloads. *)
let prop_topk2_agree =
  QCheck.Test.make ~count:20 ~name:"2d halfplane reductions agree"
    QCheck.(pair (int_bound 10_000) (int_bound 200))
    (fun (seed, raw_n) ->
      let n = max 4 raw_n in
      let rng = Rng.create seed in
      let pts = random_points2 rng n in
      let oracle = Inst.Oracle2.build pts in
      let t2 = Inst.Topk2_t2.build ~params:(Inst.params2 ()) pts in
      let qs = Gen.halfplanes rng ~n:5 in
      Array.for_all
        (fun hp3 ->
          let q = Hp.of_triple hp3 in
          List.for_all
            (fun k ->
              ids2 (Inst.Oracle2.top_k oracle q ~k)
              = ids2 (Inst.Topk2_t2.query t2 q ~k))
            [ 1; 3; n / 2 ])
        qs)

let () =
  Alcotest.run "topk_halfspace"
    [
      ( "hp_pri",
        [
          Alcotest.test_case "matches oracle" `Quick
            test_hp_pri_matches_oracle;
          Alcotest.test_case "monitored" `Quick test_hp_pri_monitored;
        ] );
      ( "hp_max",
        [ Alcotest.test_case "matches oracle" `Quick test_hp_max_matches_oracle ] );
      ( "topk2",
        [
          Alcotest.test_case "reductions" `Slow test_topk2_reductions;
          QCheck_alcotest.to_alcotest prop_topk2_agree;
        ] );
      ( "kd",
        [
          Alcotest.test_case "prioritized matches oracle" `Quick
            test_kd_pri_matches_oracle;
          Alcotest.test_case "max matches oracle" `Quick
            test_kd_max_matches_oracle;
          Alcotest.test_case "reductions (d=4)" `Slow test_topkd_reductions;
        ] );
      ( "circular",
        [
          Alcotest.test_case "ball top-k" `Quick
            test_ball_direct_matches_oracle;
          Alcotest.test_case "lifting equivalence" `Quick
            test_lifting_equivalence;
          Alcotest.test_case "lifted top-k" `Quick
            test_lifted_topk_matches_ball_topk;
        ] );
    ]
