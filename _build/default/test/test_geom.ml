(* Tests for the planar geometry substrate: convex hulls, extreme
   search, onion layers. *)

module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module P2 = Topk_geom.Point2
module Hp = Topk_geom.Halfplane
module Chull = Topk_geom.Chull
module Layers = Topk_geom.Layers

let random_points rng n =
  P2.of_coords rng
    (Array.map (fun c -> (c.(0), c.(1))) (Gen.points rng ~n ~d:2))

let dot (p : P2.t) (a, b) = (a *. p.P2.x) +. (b *. p.P2.y)

(* Every input point is inside (or on) the hull: all ring edges keep it
   on the left. *)
let inside_hull ring (p : P2.t) =
  let len = Array.length ring in
  if len = 0 then false
  else if len = 1 then true  (* degenerate: containment not meaningful *)
  else begin
    let ok = ref true in
    for i = 0 to len - 1 do
      let a = ring.(i) and b = ring.((i + 1) mod len) in
      if P2.orient a b p < -.1e-12 then ok := false
    done;
    !ok
  end

let test_hull_contains_all () =
  let rng = Rng.create 3 in
  List.iter
    (fun n ->
      let pts = random_points rng n in
      let hull = Chull.of_points pts in
      let ring = Chull.ring hull in
      Array.iter
        (fun p ->
          Alcotest.(check bool)
            (Printf.sprintf "point %d inside hull (n=%d)" p.P2.id n)
            true (inside_hull ring p))
        pts)
    [ 1; 2; 3; 10; 100; 1000 ]

let test_hull_ring_is_convex () =
  let rng = Rng.create 5 in
  let pts = random_points rng 500 in
  let ring = Chull.ring (Chull.of_points pts) in
  let len = Array.length ring in
  for i = 0 to len - 1 do
    let a = ring.(i)
    and b = ring.((i + 1) mod len)
    and c = ring.((i + 2) mod len) in
    Alcotest.(check bool) "strict left turn" true (P2.orient a b c > 0.)
  done

let test_hull_collinear_input () =
  (* All points on a line: the strict hull keeps only the extremes. *)
  let pts =
    Array.init 20 (fun i ->
        P2.make ~id:(i + 1) ~x:(float_of_int i) ~y:(2. *. float_of_int i)
          ~weight:(float_of_int i) ())
  in
  let ring = Chull.ring (Chull.of_points pts) in
  Alcotest.(check int) "two vertices" 2 (Array.length ring)

let test_hull_duplicate_points () =
  let p i x y = P2.make ~id:i ~x ~y ~weight:(float_of_int i) () in
  let pts = [| p 1 0. 0.; p 2 0. 0.; p 3 1. 0.; p 4 0. 1.; p 5 1. 0. |] in
  let ring = Chull.ring (Chull.of_points pts) in
  Alcotest.(check int) "triangle" 3 (Array.length ring)

let extreme_linear ring dir =
  Array.fold_left
    (fun best p ->
      match best with
      | None -> Some p
      | Some b -> if dot p dir > dot b dir then Some p else best)
    None ring

let test_extreme_matches_linear () =
  let rng = Rng.create 7 in
  List.iter
    (fun n ->
      let pts = random_points rng n in
      let hull = Chull.of_points pts in
      let ring = Chull.ring hull in
      for _ = 1 to 100 do
        let theta = Rng.float rng (2. *. Float.pi) in
        let dir = (cos theta, sin theta) in
        match (Chull.extreme hull ~dir, extreme_linear ring dir) with
        | Some (_, p), Some q ->
            (* Ties possible under floating point: compare dot values. *)
            Alcotest.(check (float 1e-9))
              "extreme dot value" (dot q dir) (dot p dir)
        | None, None -> ()
        | _ -> Alcotest.fail "extreme disagreement on emptiness"
      done)
    [ 1; 2; 3; 4; 17; 300 ]

let test_extreme_axis_directions () =
  let rng = Rng.create 11 in
  let pts = random_points rng 200 in
  let hull = Chull.of_points pts in
  let ring = Chull.ring hull in
  List.iter
    (fun dir ->
      match (Chull.extreme hull ~dir, extreme_linear ring dir) with
      | Some (idx, p), Some q ->
          Alcotest.(check (float 1e-12)) "axis extreme" (dot q dir) (dot p dir);
          Alcotest.(check int) "index consistent" p.P2.id ring.(idx).P2.id
      | _ -> Alcotest.fail "axis extreme failed")
    [ (1., 0.); (-1., 0.); (0., 1.); (0., -1.) ]

let test_report_halfplane_matches_filter () =
  let rng = Rng.create 13 in
  let pts = random_points rng 400 in
  let hull = Chull.of_points pts in
  let ring = Chull.ring hull in
  Array.iter
    (fun hp3 ->
      let h = Hp.of_triple hp3 in
      let expected =
        Array.to_list ring
        |> List.filter (Hp.contains h)
        |> List.map (fun (p : P2.t) -> p.P2.id)
        |> List.sort Int.compare
      in
      let got = ref [] in
      ignore (Chull.report_halfplane hull h (fun p -> got := p.P2.id :: !got));
      Alcotest.(check (list int))
        "halfplane vertices" expected
        (List.sort Int.compare !got))
    (Gen.halfplanes rng ~n:100)

let test_layers_partition () =
  let rng = Rng.create 17 in
  let pts = random_points rng 600 in
  let layers = Layers.build pts in
  let seen = Hashtbl.create 16 in
  for i = 0 to Layers.layer_count layers - 1 do
    Array.iter
      (fun (p : P2.t) ->
        Alcotest.(check bool)
          "no point in two layers" false
          (Hashtbl.mem seen p.P2.id);
        Hashtbl.replace seen p.P2.id ())
      (Chull.ring (Layers.layer layers i))
  done;
  Alcotest.(check int) "all points in some layer" 600 (Hashtbl.length seen)

let test_layers_report_matches_filter () =
  let rng = Rng.create 19 in
  let pts = random_points rng 500 in
  let layers = Layers.build pts in
  Array.iter
    (fun hp3 ->
      let h = Hp.of_triple hp3 in
      let expected =
        Array.to_list pts
        |> List.filter (Hp.contains h)
        |> List.map (fun (p : P2.t) -> p.P2.id)
        |> List.sort Int.compare
      in
      let got = ref [] in
      ignore (Layers.report_halfplane layers h (fun p -> got := p.P2.id :: !got));
      Alcotest.(check (list int))
        "layered halfplane report" expected
        (List.sort Int.compare !got))
    (Gen.halfplanes rng ~n:60)

let test_layers_max_matches_filter () =
  let rng = Rng.create 23 in
  let pts = random_points rng 300 in
  let layers = Layers.build pts in
  Array.iter
    (fun hp3 ->
      let h = Hp.of_triple hp3 in
      let expected =
        Array.fold_left
          (fun best p ->
            if Hp.contains h p then
              match best with
              | None -> Some p
              | Some b -> if P2.compare_weight p b > 0 then Some p else best
            else best)
          None pts
      in
      Alcotest.(check (option int))
        "max weight in halfplane"
        (Option.map (fun (p : P2.t) -> p.P2.id) expected)
        (Option.map
           (fun (p : P2.t) -> p.P2.id)
           (Layers.max_halfplane layers h)))
    (Gen.halfplanes rng ~n:60)

let prop_hull_extreme =
  QCheck.Test.make ~count:100 ~name:"hull extreme equals linear scan"
    QCheck.(pair (int_bound 10_000) (int_bound 200))
    (fun (seed, raw_n) ->
      let n = max 1 raw_n in
      let rng = Rng.create seed in
      let pts = random_points rng n in
      let hull = Chull.of_points pts in
      let ring = Chull.ring hull in
      let theta = Rng.float rng (2. *. Float.pi) in
      let dir = (cos theta, sin theta) in
      match (Chull.extreme hull ~dir, extreme_linear ring dir) with
      | Some (_, p), Some q -> Float.abs (dot p dir -. dot q dir) < 1e-9
      | None, None -> true
      | _ -> false)

let prop_layers_report =
  QCheck.Test.make ~count:50 ~name:"layer report equals filter"
    QCheck.(pair (int_bound 10_000) (int_bound 150))
    (fun (seed, raw_n) ->
      let n = max 1 raw_n in
      let rng = Rng.create seed in
      let pts = random_points rng n in
      let layers = Layers.build pts in
      let h = Hp.of_triple (Gen.halfplanes rng ~n:1).(0) in
      let expected =
        Array.to_list pts
        |> List.filter (Hp.contains h)
        |> List.map (fun (p : P2.t) -> p.P2.id)
        |> List.sort Int.compare
      in
      let got = ref [] in
      ignore
        (Layers.report_halfplane layers h (fun p -> got := p.P2.id :: !got));
      expected = List.sort Int.compare !got)

let () =
  Alcotest.run "topk_geom"
    [
      ( "chull",
        [
          Alcotest.test_case "contains all points" `Quick
            test_hull_contains_all;
          Alcotest.test_case "ring is convex" `Quick test_hull_ring_is_convex;
          Alcotest.test_case "collinear input" `Quick
            test_hull_collinear_input;
          Alcotest.test_case "duplicate points" `Quick
            test_hull_duplicate_points;
          Alcotest.test_case "extreme matches linear" `Quick
            test_extreme_matches_linear;
          Alcotest.test_case "extreme on axes" `Quick
            test_extreme_axis_directions;
          Alcotest.test_case "report halfplane" `Quick
            test_report_halfplane_matches_filter;
          QCheck_alcotest.to_alcotest prop_hull_extreme;
        ] );
      ( "layers",
        [
          Alcotest.test_case "partition" `Quick test_layers_partition;
          Alcotest.test_case "report matches filter" `Quick
            test_layers_report_matches_filter;
          Alcotest.test_case "max matches filter" `Quick
            test_layers_max_matches_filter;
          QCheck_alcotest.to_alcotest prop_layers_report;
        ] );
    ]
