(* Tests for the priority search tree. *)

module Rng = Topk_util.Rng
module Pst = Topk_pst.Pst

type item = { k : float; w : float; uid : int }

let random_items rng n =
  let weights = Topk_util.Gen.distinct_weights rng n in
  Array.init n (fun i -> { k = Rng.uniform rng; w = weights.(i); uid = i + 1 })

let build items =
  Pst.build ~key:(fun i -> i.k) ~weight:(fun i -> i.w) items

let filter_ref items ~side ~bound ~tau =
  Array.to_list items
  |> List.filter (fun i ->
         (match side with
          | Pst.Below -> i.k <= bound
          | Pst.Above -> i.k >= bound)
         && i.w >= tau)
  |> List.map (fun i -> i.uid)
  |> List.sort Int.compare

let got_ids l = List.sort Int.compare (List.map (fun i -> i.uid) l)

let test_query_matches_filter () =
  let rng = Rng.create 501 in
  List.iter
    (fun n ->
      let items = random_items rng n in
      let t = build items in
      for _ = 1 to 50 do
        let bound = Rng.uniform rng in
        let tau = Rng.float rng (float_of_int n) in
        List.iter
          (fun side ->
            Alcotest.(check (list int))
              "3-sided query"
              (filter_ref items ~side ~bound ~tau)
              (got_ids (Pst.query_list t ~side ~bound ~tau)))
          [ Pst.Below; Pst.Above ]
      done)
    [ 0; 1; 2; 7; 500 ]

let test_query_all_and_none () =
  let rng = Rng.create 503 in
  let items = random_items rng 200 in
  let t = build items in
  Alcotest.(check int) "everything" 200
    (List.length
       (Pst.query_list t ~side:Pst.Below ~bound:2. ~tau:Float.neg_infinity));
  Alcotest.(check int) "nothing by key" 0
    (List.length
       (Pst.query_list t ~side:Pst.Below ~bound:(-1.) ~tau:Float.neg_infinity));
  Alcotest.(check int) "nothing by weight" 0
    (List.length (Pst.query_list t ~side:Pst.Below ~bound:2. ~tau:1e9))

let test_duplicate_keys () =
  (* All keys equal: pure weight filtering. *)
  let items =
    Array.init 100 (fun i -> { k = 0.5; w = float_of_int i; uid = i + 1 })
  in
  let t = build items in
  Alcotest.(check int) "above threshold" 30
    (List.length (Pst.query_list t ~side:Pst.Below ~bound:0.5 ~tau:70.));
  Alcotest.(check int) "excluded by key" 0
    (List.length (Pst.query_list t ~side:Pst.Above ~bound:0.6 ~tau:0.))

let test_monitored () =
  let rng = Rng.create 507 in
  let items = random_items rng 300 in
  let t = build items in
  (match
     Pst.query_monitored t ~side:Pst.Below ~bound:2. ~tau:Float.neg_infinity
       ~limit:10
   with
   | `Truncated l -> Alcotest.(check int) "limit+1" 11 (List.length l)
   | `All _ -> Alcotest.fail "expected truncation");
  match
    Pst.query_monitored t ~side:Pst.Below ~bound:2. ~tau:Float.neg_infinity
      ~limit:300
  with
  | `All l -> Alcotest.(check int) "full" 300 (List.length l)
  | `Truncated _ -> Alcotest.fail "unexpected truncation"

let test_max_element () =
  let rng = Rng.create 509 in
  let items = random_items rng 400 in
  let t = build items in
  for _ = 1 to 100 do
    let bound = Rng.uniform rng in
    List.iter
      (fun side ->
        let expected =
          Array.fold_left
            (fun best i ->
              let inside =
                match side with
                | Pst.Below -> i.k <= bound
                | Pst.Above -> i.k >= bound
              in
              if inside then
                match best with
                | None -> Some i
                | Some b -> if i.w > b.w then Some i else best
              else best)
            None items
        in
        Alcotest.(check (option int))
          "max element"
          (Option.map (fun i -> i.uid) expected)
          (Option.map (fun i -> i.uid) (Pst.max_element t ~side ~bound)))
      [ Pst.Below; Pst.Above ]
  done

(* The boundary-path property: with tau above every weight, a query
   touches O(log n) nodes, not O(n). *)
let test_pruning_cost () =
  let rng = Rng.create 511 in
  let items = random_items rng 4096 in
  let t = build items in
  Topk_em.Config.with_model Topk_em.Config.ram (fun () ->
      let (), s =
        Topk_em.Stats.measure (fun () ->
            ignore (Pst.query_list t ~side:Pst.Below ~bound:0.5 ~tau:1e12))
      in
      Alcotest.(check bool)
        (Printf.sprintf "pruned to %d ios" s.Topk_em.Stats.ios)
        true (s.Topk_em.Stats.ios <= 2))

let prop_pst_matches_filter =
  QCheck.Test.make ~count:100 ~name:"pst equals filter"
    QCheck.(triple (int_bound 100_000) (int_bound 300) (float_range 0. 1.))
    (fun (seed, raw_n, bound) ->
      let n = max 1 raw_n in
      let rng = Rng.create seed in
      let items = random_items rng n in
      let t = build items in
      let tau = Rng.float rng (float_of_int n) in
      filter_ref items ~side:Pst.Below ~bound ~tau
      = got_ids (Pst.query_list t ~side:Pst.Below ~bound ~tau))

let () =
  Alcotest.run "topk_pst"
    [
      ( "pst",
        [
          Alcotest.test_case "matches filter" `Quick test_query_matches_filter;
          Alcotest.test_case "all and none" `Quick test_query_all_and_none;
          Alcotest.test_case "duplicate keys" `Quick test_duplicate_keys;
          Alcotest.test_case "monitored" `Quick test_monitored;
          Alcotest.test_case "max element" `Quick test_max_element;
          Alcotest.test_case "pruning cost" `Quick test_pruning_cost;
          QCheck_alcotest.to_alcotest prop_pst_matches_filter;
        ] );
    ]
