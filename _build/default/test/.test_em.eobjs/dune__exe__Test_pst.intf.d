test/test_pst.mli:
