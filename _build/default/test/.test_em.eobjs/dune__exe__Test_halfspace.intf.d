test/test_halfspace.mli:
