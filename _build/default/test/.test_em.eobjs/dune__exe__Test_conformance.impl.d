test/test_conformance.ml: Alcotest Array Float Int List Option Printf Topk_core Topk_dominance Topk_enclosure Topk_geom Topk_halfspace Topk_interval Topk_ortho Topk_range Topk_util
