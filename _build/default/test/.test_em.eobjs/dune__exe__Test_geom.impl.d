test/test_geom.ml: Alcotest Array Float Hashtbl Int List Option Printf QCheck QCheck_alcotest Topk_geom Topk_util
