test/test_dominance.ml: Alcotest Array Float Int List Option QCheck QCheck_alcotest Topk_core Topk_dominance Topk_util
