test/test_halfspace.ml: Alcotest Array Float Int List Option QCheck QCheck_alcotest Topk_core Topk_geom Topk_halfspace Topk_util
