test/test_range.ml: Alcotest Array Float Int List Option QCheck QCheck_alcotest Topk_core Topk_range Topk_util
