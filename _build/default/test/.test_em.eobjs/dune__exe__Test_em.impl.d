test/test_em.ml: Alcotest Array Topk_em
