test/test_ortho.ml: Alcotest Array Float Int List Option QCheck QCheck_alcotest Topk_core Topk_geom Topk_ortho Topk_util
