test/test_enclosure.mli:
