test/test_pst.ml: Alcotest Array Float Int List Option Printf QCheck QCheck_alcotest Topk_em Topk_pst Topk_util
