test/test_interval.ml: Alcotest Array Float Int List Option Printf QCheck QCheck_alcotest Topk_core Topk_interval Topk_util
