test/test_enclosure.ml: Alcotest Array Float Int List Option QCheck QCheck_alcotest Topk_core Topk_enclosure Topk_interval Topk_util
