test/test_util.ml: Alcotest Array Float Int List QCheck QCheck_alcotest Topk_util
