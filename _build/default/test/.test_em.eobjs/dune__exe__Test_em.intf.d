test/test_em.mli:
