test/test_dynamic.ml: Alcotest Array Float Int List Option QCheck QCheck_alcotest Topk_core Topk_interval Topk_util
