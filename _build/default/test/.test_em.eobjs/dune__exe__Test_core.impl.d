test/test_core.ml: Alcotest Array Float Format Int List Option Printf QCheck QCheck_alcotest Topk_core Topk_em Topk_pst Topk_util
