test/test_ortho.mli:
