(* Tests for 2D point enclosure (Theorem 5). *)

module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module R = Topk_enclosure.Rect
module Enc_pri = Topk_enclosure.Enc_pri
module Enc_max = Topk_enclosure.Enc_max
module Inst = Topk_enclosure.Instances
module Sigs = Topk_core.Sigs

let random_rects rng n = R.of_boxes rng (Gen.rectangles rng ~n)

let random_queries rng n =
  Array.init n (fun _ -> (Rng.uniform rng, Rng.uniform rng))

let ids elems = List.map (fun (e : R.t) -> e.R.id) elems

let sorted_ids elems = List.sort Int.compare (ids elems)

let test_rect_basics () =
  let r = R.make ~x1:0. ~x2:2. ~y1:1. ~y2:3. ~weight:5. () in
  Alcotest.(check bool) "inside" true (R.contains r (1., 2.));
  Alcotest.(check bool) "corner" true (R.contains r (0., 1.));
  Alcotest.(check bool) "outside x" false (R.contains r (2.1, 2.));
  Alcotest.(check bool) "outside y" false (R.contains r (1., 0.9));
  Alcotest.check_raises "inverted" (Invalid_argument "Rect.make: inverted side")
    (fun () -> ignore (R.make ~x1:1. ~x2:0. ~y1:0. ~y2:1. ~weight:0. ()))

let test_projections () =
  let r = R.make ~id:9 ~x1:0. ~x2:2. ~y1:1. ~y2:3. ~weight:5. () in
  let xi = R.x_interval r and yi = R.y_interval r in
  Alcotest.(check int) "x id" 9 xi.Topk_interval.Interval.id;
  Alcotest.(check (float 0.)) "x lo" 0. xi.Topk_interval.Interval.lo;
  Alcotest.(check (float 0.)) "y hi" 3. yi.Topk_interval.Interval.hi

let test_enc_pri_matches_oracle () =
  let rng = Rng.create 101 in
  let rects = random_rects rng 400 in
  let oracle = Inst.Oracle.build rects in
  let s = Enc_pri.build rects in
  Array.iter
    (fun q ->
      List.iter
        (fun tau ->
          let expected = Inst.Oracle.prioritized oracle q ~tau in
          let got = Enc_pri.query s q ~tau in
          Alcotest.(check (list int))
            "enc prioritized" (sorted_ids expected) (sorted_ids got))
        [ Float.neg_infinity; 150.; 380.; 500. ])
    (random_queries rng 60)

let test_enc_pri_corner_queries () =
  let rng = Rng.create 103 in
  let rects = random_rects rng 200 in
  let oracle = Inst.Oracle.build rects in
  let s = Enc_pri.build rects in
  (* Stab exactly at rectangle corners: closed semantics on both axes. *)
  Array.iteri
    (fun i (r : R.t) ->
      if i mod 9 = 0 then
        List.iter
          (fun q ->
            let expected = Inst.Oracle.prioritized oracle q ~tau:Float.neg_infinity in
            let got = Enc_pri.query s q ~tau:Float.neg_infinity in
            Alcotest.(check (list int))
              "corner stab" (sorted_ids expected) (sorted_ids got))
          [ (r.R.x1, r.R.y1); (r.R.x2, r.R.y2); (r.R.x1, r.R.y2) ])
    rects

let test_enc_pri_monitored () =
  let rng = Rng.create 107 in
  (* Rectangles all containing the center. *)
  let rects =
    Array.init 100 (fun i ->
        let margin = 0.4 /. float_of_int (i + 2) in
        R.make ~id:(i + 1) ~x1:margin ~x2:(1. -. margin) ~y1:margin
          ~y2:(1. -. margin)
          ~weight:(float_of_int (i + 1) +. Rng.float rng 0.1)
          ())
  in
  let s = Enc_pri.build rects in
  (match Enc_pri.query_monitored s (0.5, 0.5) ~tau:Float.neg_infinity ~limit:7 with
   | Sigs.Truncated prefix ->
       Alcotest.(check int) "limit+1" 8 (List.length prefix)
   | Sigs.All _ -> Alcotest.fail "expected truncation");
  match Enc_pri.query_monitored s (0.5, 0.5) ~tau:Float.neg_infinity ~limit:100 with
  | Sigs.All all -> Alcotest.(check int) "all" 100 (List.length all)
  | Sigs.Truncated _ -> Alcotest.fail "unexpected truncation"

let test_enc_max_matches_oracle () =
  let rng = Rng.create 109 in
  List.iter
    (fun n ->
      let rects = random_rects rng n in
      let oracle = Inst.Oracle.build rects in
      let m = Enc_max.build rects in
      Array.iter
        (fun q ->
          Alcotest.(check (option int))
            "enc max"
            (Option.map (fun (e : R.t) -> e.R.id) (Inst.Oracle.max oracle q))
            (Option.map (fun (e : R.t) -> e.R.id) (Enc_max.query m q)))
        (random_queries rng 80))
    [ 1; 10; 300 ]

let test_reductions_match_oracle () =
  let rng = Rng.create 113 in
  let n = 400 in
  let rects = random_rects rng n in
  let oracle = Inst.Oracle.build rects in
  let params = Inst.params () in
  let t1 = Inst.Topk_t1.build ~params rects in
  let t2 = Inst.Topk_t2.build ~params rects in
  let rj = Inst.Topk_rj.build rects in
  Array.iter
    (fun q ->
      List.iter
        (fun k ->
          let expected = ids (Inst.Oracle.top_k oracle q ~k) in
          Alcotest.(check (list int))
            "t1" expected (ids (Inst.Topk_t1.query t1 q ~k));
          Alcotest.(check (list int))
            "t2" expected (ids (Inst.Topk_t2.query t2 q ~k));
          Alcotest.(check (list int))
            "rj" expected (ids (Inst.Topk_rj.query rj q ~k)))
        [ 1; 4; 33; 128; 1000 ])
    (random_queries rng 25)

(* The paper's motivating query: "the 10 gentlemen with the highest
   salaries whose age/height preferences cover mine". *)
let test_dating_site_shape () =
  let rng = Rng.create 127 in
  let n = 500 in
  let profiles =
    Array.init n (fun i ->
        let age_lo = 18. +. Rng.float rng 30. in
        let height_lo = 150. +. Rng.float rng 30. in
        R.make ~id:(i + 1) ~x1:age_lo ~x2:(age_lo +. 5. +. Rng.float rng 20.)
          ~y1:height_lo
          ~y2:(height_lo +. 5. +. Rng.float rng 30.)
          ~weight:(30_000. +. float_of_int i +. Rng.float rng 0.5)
          ())
  in
  let oracle = Inst.Oracle.build profiles in
  let t2 = Inst.Topk_t2.build ~params:(Inst.params ()) profiles in
  let me = (33., 172.) in
  let got = Inst.Topk_t2.query t2 me ~k:10 in
  Alcotest.(check (list int))
    "top-10 salaries" (ids (Inst.Oracle.top_k oracle me ~k:10)) (ids got);
  (* Results are sorted by decreasing salary. *)
  let weights = List.map (fun (e : R.t) -> e.R.weight) got in
  Alcotest.(check bool) "descending" true
    (List.for_all2 (fun a b -> a >= b)
       (List.filteri (fun i _ -> i < List.length weights - 1) weights)
       (List.tl weights))

let prop_enclosure_agree =
  QCheck.Test.make ~count:25 ~name:"enclosure reductions agree"
    QCheck.(pair (int_bound 10_000) (int_bound 250))
    (fun (seed, raw_n) ->
      let n = max 4 raw_n in
      let rng = Rng.create seed in
      let rects = random_rects rng n in
      let oracle = Inst.Oracle.build rects in
      let t2 = Inst.Topk_t2.build ~params:(Inst.params ()) rects in
      let qs = random_queries rng 5 in
      Array.for_all
        (fun q ->
          List.for_all
            (fun k ->
              ids (Inst.Oracle.top_k oracle q ~k)
              = ids (Inst.Topk_t2.query t2 q ~k))
            [ 1; 5; n / 2 ])
        qs)

let () =
  Alcotest.run "topk_enclosure"
    [
      ( "rect",
        [
          Alcotest.test_case "basics" `Quick test_rect_basics;
          Alcotest.test_case "projections" `Quick test_projections;
        ] );
      ( "enc_pri",
        [
          Alcotest.test_case "matches oracle" `Quick
            test_enc_pri_matches_oracle;
          Alcotest.test_case "corner queries" `Quick
            test_enc_pri_corner_queries;
          Alcotest.test_case "monitored" `Quick test_enc_pri_monitored;
        ] );
      ( "enc_max",
        [ Alcotest.test_case "matches oracle" `Quick test_enc_max_matches_oracle ] );
      ( "reductions",
        [
          Alcotest.test_case "match oracle" `Slow test_reductions_match_oracle;
          Alcotest.test_case "dating-site query" `Quick test_dating_site_shape;
          QCheck_alcotest.to_alcotest prop_enclosure_agree;
        ] );
    ]
