(* Tests for 3D dominance (Theorem 6). *)

module Rng = Topk_util.Rng
module Gen = Topk_util.Gen
module P3 = Topk_dominance.Point3
module Dom3 = Topk_dominance.Dom3
module Dom_pri = Topk_dominance.Dom_pri
module Dom_max = Topk_dominance.Dom_max
module Minz = Topk_dominance.Minz
module Inst = Topk_dominance.Instances
module Sigs = Topk_core.Sigs

let random_points rng n =
  P3.of_coords rng
    (Array.map
       (fun c -> (c.(0), c.(1), c.(2)))
       (Gen.points rng ~n ~d:3))

let random_corners rng n =
  Array.init n (fun _ -> (Rng.uniform rng, Rng.uniform rng, Rng.uniform rng))

let ids elems = List.map (fun (e : P3.t) -> e.P3.id) elems

let sorted_ids elems = List.sort Int.compare (ids elems)

let test_dominated_by () =
  let p = P3.make ~x:1. ~y:2. ~z:3. ~weight:0. () in
  Alcotest.(check bool) "dominated" true (P3.dominated_by p (1., 2., 3.));
  Alcotest.(check bool) "strictly" true (P3.dominated_by p (2., 3., 4.));
  Alcotest.(check bool) "x fails" false (P3.dominated_by p (0.9, 3., 4.));
  Alcotest.(check bool) "y fails" false (P3.dominated_by p (2., 1.9, 4.));
  Alcotest.(check bool) "z fails" false (P3.dominated_by p (2., 3., 2.9))

let test_dom3_matches_filter () =
  let rng = Rng.create 201 in
  let pts = random_points rng 500 in
  let d = Dom3.build pts in
  Array.iter
    (fun q ->
      let expected =
        Array.to_list pts
        |> List.filter (fun p -> P3.dominated_by p q)
      in
      let got = ref [] in
      Dom3.visit d q (fun p -> got := p :: !got);
      Alcotest.(check (list int))
        "dom3 report" (sorted_ids expected) (sorted_ids !got))
    (random_corners rng 60)

let test_minz_matches_filter () =
  let rng = Rng.create 203 in
  let pts = random_points rng 400 in
  let m = Minz.build pts in
  Array.iter
    (fun (x, y, _) ->
      let expected =
        Array.fold_left
          (fun acc (p : P3.t) ->
            if p.P3.x <= x && p.P3.y <= y then Float.min acc p.P3.z else acc)
          Float.infinity pts
      in
      Alcotest.(check (float 0.)) "min z" expected (Minz.query m ~x ~y))
    (random_corners rng 80)

let test_dom_pri_matches_oracle () =
  let rng = Rng.create 207 in
  let pts = random_points rng 400 in
  let oracle = Inst.Oracle.build pts in
  let s = Dom_pri.build pts in
  Array.iter
    (fun q ->
      List.iter
        (fun tau ->
          let expected = Inst.Oracle.prioritized oracle q ~tau in
          let got = Dom_pri.query s q ~tau in
          Alcotest.(check (list int))
            "dom prioritized" (sorted_ids expected) (sorted_ids got))
        [ Float.neg_infinity; 100.; 300.; 500. ])
    (random_corners rng 40)

let test_dom_pri_monitored () =
  let rng = Rng.create 209 in
  let pts = random_points rng 300 in
  let s = Dom_pri.build pts in
  let q = (2., 2., 2.) (* dominates everything *) in
  (match Dom_pri.query_monitored s q ~tau:Float.neg_infinity ~limit:9 with
   | Sigs.Truncated prefix ->
       Alcotest.(check int) "limit+1" 10 (List.length prefix)
   | Sigs.All _ -> Alcotest.fail "expected truncation");
  match Dom_pri.query_monitored s q ~tau:Float.neg_infinity ~limit:300 with
  | Sigs.All all -> Alcotest.(check int) "all" 300 (List.length all)
  | Sigs.Truncated _ -> Alcotest.fail "unexpected truncation"

let test_dom_max_matches_oracle () =
  let rng = Rng.create 211 in
  List.iter
    (fun n ->
      let pts = random_points rng n in
      let oracle = Inst.Oracle.build pts in
      let m = Dom_max.build pts in
      Array.iter
        (fun q ->
          Alcotest.(check (option int))
            "dom max"
            (Option.map (fun (e : P3.t) -> e.P3.id) (Inst.Oracle.max oracle q))
            (Option.map (fun (e : P3.t) -> e.P3.id) (Dom_max.query m q)))
        (random_corners rng 60))
    [ 1; 2; 50; 300 ]

let test_reductions_match_oracle () =
  let rng = Rng.create 213 in
  let n = 300 in
  let pts = random_points rng n in
  let oracle = Inst.Oracle.build pts in
  let params = Inst.params () in
  let t1 = Inst.Topk_t1.build ~params pts in
  let t2 = Inst.Topk_t2.build ~params pts in
  let rj = Inst.Topk_rj.build pts in
  Array.iter
    (fun q ->
      List.iter
        (fun k ->
          let expected = ids (Inst.Oracle.top_k oracle q ~k) in
          Alcotest.(check (list int))
            "t1" expected (ids (Inst.Topk_t1.query t1 q ~k));
          Alcotest.(check (list int))
            "t2" expected (ids (Inst.Topk_t2.query t2 q ~k));
          Alcotest.(check (list int))
            "rj" expected (ids (Inst.Topk_rj.query rj q ~k)))
        [ 1; 3; 20; 150; 400 ])
    (random_corners rng 20)

(* The paper's motivating query: best-rated hotels under price,
   distance, and security constraints. *)
let test_hotel_query () =
  let rng = Rng.create 217 in
  let hotels = Inst.hotels rng ~n:500 in
  let oracle = Inst.Oracle.build hotels in
  let t2 = Inst.Topk_t2.build ~params:(Inst.params ()) hotels in
  (* Price <= 200, distance <= 10 km, security >= 3. *)
  let q = (200., 10., -3.) in
  let got = Inst.Topk_t2.query t2 q ~k:10 in
  Alcotest.(check (list int))
    "top-10 hotels" (ids (Inst.Oracle.top_k oracle q ~k:10)) (ids got);
  List.iter
    (fun (h : P3.t) ->
      Alcotest.(check bool) "price" true (h.P3.x <= 200.);
      Alcotest.(check bool) "distance" true (h.P3.y <= 10.);
      Alcotest.(check bool) "security" true (-.h.P3.z >= 3.))
    got

let prop_dominance_agree =
  QCheck.Test.make ~count:20 ~name:"dominance reductions agree"
    QCheck.(pair (int_bound 10_000) (int_bound 200))
    (fun (seed, raw_n) ->
      let n = max 4 raw_n in
      let rng = Rng.create seed in
      let pts = random_points rng n in
      let oracle = Inst.Oracle.build pts in
      let t2 = Inst.Topk_t2.build ~params:(Inst.params ()) pts in
      let qs = random_corners rng 5 in
      Array.for_all
        (fun q ->
          List.for_all
            (fun k ->
              ids (Inst.Oracle.top_k oracle q ~k)
              = ids (Inst.Topk_t2.query t2 q ~k))
            [ 1; 6; n / 2 ])
        qs)

let () =
  Alcotest.run "topk_dominance"
    [
      ( "point3",
        [ Alcotest.test_case "dominated_by" `Quick test_dominated_by ] );
      ( "dom3",
        [ Alcotest.test_case "matches filter" `Quick test_dom3_matches_filter ] );
      ( "minz",
        [ Alcotest.test_case "matches filter" `Quick test_minz_matches_filter ] );
      ( "dom_pri",
        [
          Alcotest.test_case "matches oracle" `Quick
            test_dom_pri_matches_oracle;
          Alcotest.test_case "monitored" `Quick test_dom_pri_monitored;
        ] );
      ( "dom_max",
        [ Alcotest.test_case "matches oracle" `Quick test_dom_max_matches_oracle ] );
      ( "reductions",
        [
          Alcotest.test_case "match oracle" `Slow test_reductions_match_oracle;
          Alcotest.test_case "hotel query" `Quick test_hotel_query;
          QCheck_alcotest.to_alcotest prop_dominance_agree;
        ] );
    ]
