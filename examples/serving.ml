(* Serving: the concurrent query-serving subsystem, programmatically.

   Scenario: the session log from quickstart.ml, now served to many
   clients at once.  We register the built index under a name, spawn a
   worker pool sharing that one immutable snapshot, fire a burst of
   queries through the bounded queue, and read the pool's metrics.
   One query is submitted with a deliberately tiny I/O budget to show
   graceful degradation: it comes back flagged, carrying a certified
   prefix of the true top-k instead of stalling a worker.

   Run with:  dune exec examples/serving.exe *)

module I = Topk_interval.Interval
module Inst = Topk_interval.Instances
module Rng = Topk_util.Rng
module Svc = Topk_service

let () =
  let rng = Rng.create 2026 in

  (* 1. Build the index, exactly as in quickstart.ml. *)
  let n = 50_000 in
  let sessions =
    Array.init n (fun i ->
        let start = Rng.float rng 86_400. in
        let duration = 30. +. Rng.float rng 7_200. in
        let bytes = Rng.float rng 1e9 in
        I.make ~id:(i + 1) ~lo:start ~hi:(start +. duration) ~weight:bytes ())
  in
  let topk = Inst.Topk_t2.build ~params:(Inst.params ()) sessions in

  (* 2. Register it: the handle is the typed capability to query it
        through a pool; the registry keeps the erased inventory. *)
  let registry = Svc.Registry.create () in
  let sessions_h =
    Svc.Registry.register registry ~name:"sessions" (module Inst.Topk_t2) topk
  in
  List.iter
    (fun info -> Format.printf "serving %a@." Svc.Registry.pp_info info)
    (Svc.Registry.list registry);

  (* 3. Spawn the pool.  Workers share the snapshot; the queue is
        bounded, so submission applies backpressure when overloaded. *)
  let pool = Svc.Executor.create ~workers:4 ~queue_capacity:256 () in

  (* 4. A burst of queries: the 5 heaviest sessions at 1000 random
        times of day. *)
  let times = Array.init 1000 (fun _ -> Rng.float rng 86_400.) in
  let futures =
    Array.map (fun t -> Svc.Executor.submit pool sessions_h t ~k:5) times
  in
  let responses = Array.map Svc.Future.await futures in
  let r0 = responses.(0) in
  Printf.printf "first response: %d answers, %s, %d I/Os, worker %d\n"
    (List.length r0.Svc.Response.answers)
    (Svc.Response.status_string r0.Svc.Response.status)
    (Svc.Response.cost r0).Topk_em.Stats.ios r0.Svc.Response.worker;

  (* 5. Graceful degradation: an absurdly under-budgeted query returns
        a flagged, certified prefix instead of blocking the pool. *)
  let starved =
    Svc.Future.await
      (Svc.Executor.submit pool sessions_h
         ~limits:(Svc.Limits.make ~budget:2 ())
         times.(0) ~k:100)
  in
  Printf.printf "under-budgeted query: %s, %d of 100 answers%s\n"
    (Svc.Response.status_string starved.Svc.Response.status)
    (List.length starved.Svc.Response.answers)
    (if Svc.Response.is_partial starved then " (certified prefix)" else "");

  (* 6. Per-worker EM accounting and the pool's metrics. *)
  Svc.Executor.drain pool;
  List.iter
    (fun (w, s) ->
      Printf.printf "worker %d served %d queries for %d I/Os\n" w
        s.Topk_em.Stats.queries s.Topk_em.Stats.ios)
    (Svc.Executor.worker_stats pool);
  let m = Svc.Executor.metrics pool in
  Printf.printf "p50/p95/p99 latency: %d/%d/%d us; cutoff rate %.4f\n"
    (Svc.Metrics.Histogram.percentile m.Svc.Metrics.latency_us 0.50)
    (Svc.Metrics.Histogram.percentile m.Svc.Metrics.latency_us 0.95)
    (Svc.Metrics.Histogram.percentile m.Svc.Metrics.latency_us 0.99)
    (Svc.Metrics.cutoff_rate m);
  Svc.Executor.shutdown pool;
  print_endline "pool shut down cleanly."
