(* Serving: the concurrent query-serving subsystem, programmatically.

   Scenario: the session log from quickstart.ml, now served to many
   clients at once.  We register the built index under a name, spawn a
   worker pool sharing that one immutable snapshot, and put the
   Client facade in front of it: one typed [query] entry point that
   consults the shared answer cache before enqueueing.  A burst of
   queries goes through the bounded queue, a repeated hot query comes
   back from the cache with zero charged I/O, and one query is
   submitted with a deliberately tiny I/O budget to show graceful
   degradation: it comes back flagged, carrying a certified prefix of
   the true top-k instead of stalling a worker.

   Run with:  dune exec examples/serving.exe *)

module I = Topk_interval.Interval
module Inst = Topk_interval.Instances
module Rng = Topk_util.Rng
module Svc = Topk_service

let () =
  let rng = Rng.create 2026 in

  (* 1. Build the index, exactly as in quickstart.ml. *)
  let n = 50_000 in
  let sessions =
    Array.init n (fun i ->
        let start = Rng.float rng 86_400. in
        let duration = 30. +. Rng.float rng 7_200. in
        let bytes = Rng.float rng 1e9 in
        I.make ~id:(i + 1) ~lo:start ~hi:(start +. duration) ~weight:bytes ())
  in
  let topk = Inst.Topk_t2.build ~params:(Inst.params ()) sessions in

  (* 2. Register it: the handle is the typed capability to query it
        through a pool; the registry keeps the erased inventory. *)
  let registry = Svc.Registry.create () in
  let sessions_h =
    Svc.Registry.register registry ~name:"sessions" (module Inst.Topk_t2) topk
  in
  List.iter
    (fun info -> Format.printf "serving %a@." Svc.Registry.pp_info info)
    (Svc.Registry.list registry);

  (* 3. Spawn the pool and attach it to a Client.  Workers share the
        snapshot; the queue is bounded, so submission applies
        backpressure when overloaded.  The client fronts the pool with
        the answer cache — pass the pool's metrics so serving and
        caching land in one report. *)
  let pool = Svc.Executor.create ~workers:4 ~queue_capacity:256 () in
  let client = Svc.Client.create ~metrics:(Svc.Executor.metrics pool) () in
  let sessions_c =
    Svc.Client.attach client (Svc.Client.pooled pool sessions_h)
  in

  (* 4. A burst of queries: the 5 heaviest sessions at 1000 random
        times of day. *)
  let times = Array.init 1000 (fun _ -> Rng.float rng 86_400.) in
  let futures = Array.map (fun t -> Svc.Client.query sessions_c t ~k:5) times in
  let responses = Array.map Svc.Future.await futures in
  let r0 = responses.(0) in
  Printf.printf "first response: %d answers, %s, %d I/Os, worker %d\n"
    (List.length r0.Svc.Response.answers)
    (Svc.Response.status_string r0.Svc.Response.status)
    (Svc.Response.cost r0).Topk_em.Stats.ios r0.Svc.Response.worker;

  (* 5. Hot queries: a dashboard refreshing the same time-of-day asks
        an identical question, so the second round is served straight
        from the answer cache — same answers, zero charged I/O, no
        worker involved.  A smaller k rides the same entry (prefix
        serving). *)
  let again = Svc.Client.query_sync sessions_c times.(0) ~k:5 in
  Printf.printf "repeated hot query: %d answers, %d I/Os (cache hit)\n"
    (List.length again.Svc.Response.answers)
    (Svc.Response.cost again).Topk_em.Stats.ios;
  assert (again.Svc.Response.answers = r0.Svc.Response.answers);
  let top3 = Svc.Client.query_sync sessions_c times.(0) ~k:3 in
  Printf.printf "same query at k=3: %d answers, %d I/Os (prefix hit)\n"
    (List.length top3.Svc.Response.answers)
    (Svc.Response.cost top3).Topk_em.Stats.ios;

  (* 6. Graceful degradation: an absurdly under-budgeted query returns
        a flagged, certified prefix instead of blocking the pool.
        Budgeted queries bypass the cache in both directions — a
        cached complete answer must never shadow the cutoff the budget
        would have produced. *)
  let starved =
    Svc.Client.query_sync sessions_c
      ~limits:(Svc.Limits.make ~budget:2 ())
      times.(0) ~k:100
  in
  Printf.printf "under-budgeted query: %s, %d of 100 answers%s\n"
    (Svc.Response.status_string starved.Svc.Response.status)
    (List.length starved.Svc.Response.answers)
    (if Svc.Response.is_partial starved then " (certified prefix)" else "");

  (* 7. Per-worker EM accounting and the pool's metrics. *)
  Svc.Executor.drain pool;
  List.iter
    (fun (w, s) ->
      Printf.printf "worker %d served %d queries for %d I/Os\n" w
        s.Topk_em.Stats.queries s.Topk_em.Stats.ios)
    (Svc.Executor.worker_stats pool);
  let m = Svc.Executor.metrics pool in
  Printf.printf "p50/p95/p99 latency: %d/%d/%d us; cutoff rate %.4f\n"
    (Svc.Metrics.Histogram.percentile m.Svc.Metrics.latency_us 0.50)
    (Svc.Metrics.Histogram.percentile m.Svc.Metrics.latency_us 0.95)
    (Svc.Metrics.Histogram.percentile m.Svc.Metrics.latency_us 0.99)
    (Svc.Metrics.cutoff_rate m);
  Printf.printf "cache: %d hits, %d misses (hit rate %.4f)\n"
    (Svc.Metrics.Counter.get m.Svc.Metrics.cache_hits)
    (Svc.Metrics.Counter.get m.Svc.Metrics.cache_misses)
    (Svc.Metrics.cache_hit_rate m);
  Svc.Executor.shutdown pool;
  print_endline "pool shut down cleanly."
