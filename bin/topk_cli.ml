(* topk — command-line driver for the top-k reduction library.

   Subcommands build a structure over a synthetic workload, answer
   queries, and report the EM-model cost:

     topk interval  -n 100000 --method thm2 -q 0.5 -k 10
     topk enclosure -n 50000  --method thm1 -x 33 -y 172 -k 10
     topk dominance -n 20000  --method rj   -x 180 -y 8 -z 3.5 -k 10
     topk halfplane -n 20000  -a 1 -b 1 -c 1.2 -k 5
     topk circular  -n 20000  -x 4.2 -y 5.7 -r 1.5 -k 5
     topk sample-check -n 100000 -k 1000 --delta 0.1 --trials 500 *)

open Cmdliner

(* --- argument validation ---

   Invalid combinations exit with a one-line error and status 2 instead
   of an uncaught exception from deep inside a structure. *)

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("topk: " ^ msg);
      exit 2)
    fmt

let require_pos name v =
  if v <= 0 then die "%s must be positive (got %d)" name v

let require_pos_float name v =
  if not (v > 0.) then die "%s must be positive (got %g)" name v

let validate_common ~n ~k = require_pos "n" n; require_pos "k" k

type method_ = Thm1 | Thm2 | Rj | Naive

let method_conv =
  let parse = function
    | "thm1" -> Ok Thm1
    | "thm2" -> Ok Thm2
    | "rj" -> Ok Rj
    | "naive" -> Ok Naive
    | s -> Error (`Msg (Printf.sprintf "unknown method %S" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with Thm1 -> "thm1" | Thm2 -> "thm2" | Rj -> "rj" | Naive -> "naive")
  in
  Arg.conv (parse, print)

let n_arg =
  Arg.(value & opt int 50_000 & info [ "n" ] ~docv:"N" ~doc:"Number of elements.")

let k_arg =
  Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"Result size.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let method_arg =
  Arg.(
    value
    & opt method_conv Thm2
    & info [ "method" ] ~docv:"METHOD"
        ~doc:"Reduction: thm1, thm2, rj (eqs. 1-2 baseline) or naive.")

let block_arg =
  Arg.(
    value & opt int 64
    & info [ "block" ] ~docv:"B" ~doc:"EM block size in words (1 = RAM).")

let with_model block f =
  let model =
    if block <= 1 then Topk_em.Config.ram else Topk_em.Config.em ~b:block ()
  in
  Topk_em.Config.with_model model f

let report_cost () =
  let s = Topk_em.Stats.snapshot () in
  Printf.printf "cost: %d I/Os (%d elements scanned)\n" s.Topk_em.Stats.ios
    s.Topk_em.Stats.scanned

(* --- hermetic scratch space ---

   Bench subcommands that touch real files keep them under one
   dedicated per-process temp directory.  Cleanup is registered with
   [at_exit], not a [Fun.protect] finalizer, because [die] (and any
   path that reaches [exit], e.g. an [Overloaded] pool escaping a
   bench) terminates with [exit 2] — [at_exit] runs on every exit
   path, so a failing bench leaves nothing behind. *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let scratch_root = ref None

let scratch_dir () =
  match !scratch_root with
  | Some d -> d
  | None ->
      let d =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "topk-scratch-%d" (Unix.getpid ()))
      in
      rm_rf d;
      Unix.mkdir d 0o755;
      scratch_root := Some d;
      at_exit (fun () -> rm_rf d);
      d

(* A fresh empty subdirectory of the scratch root. *)
let fresh_scratch name =
  let d = Filename.concat (scratch_dir ()) name in
  rm_rf d;
  Unix.mkdir d 0o755;
  d

(* --- interval --- *)

let interval_cmd =
  let q_arg =
    Arg.(
      value & opt float 0.5
      & info [ "q" ] ~docv:"Q" ~doc:"Stabbing coordinate in [0,1].")
  in
  let run n k seed meth q block =
    validate_common ~n ~k;
    with_model block (fun () ->
        let elems =
          let rng = Topk_util.Rng.create seed in
          Topk_interval.Interval.of_spans rng
            (Topk_util.Gen.intervals rng ~shape:Topk_util.Gen.Mixed_intervals ~n)
        in
        let module Inst = Topk_interval.Instances in
        let params = Inst.params () in
        let query =
          match meth with
          | Thm1 ->
              let t = Inst.Topk_t1.build ~params elems in
              fun () -> Inst.Topk_t1.query t q ~k
          | Thm2 ->
              let t = Inst.Topk_t2.build ~params elems in
              fun () -> Inst.Topk_t2.query t q ~k
          | Rj ->
              let t = Inst.Topk_rj.build elems in
              fun () -> Inst.Topk_rj.query t q ~k
          | Naive ->
              let t = Inst.Topk_naive.build elems in
              fun () -> Inst.Topk_naive.query t q ~k
        in
        Topk_em.Stats.reset ();
        let result = query () in
        Printf.printf "top-%d intervals stabbed by %g (of %d):\n" k q n;
        List.iter
          (fun itv ->
            Format.printf "  %a@." Topk_interval.Interval.pp itv)
          result;
        report_cost ())
  in
  Cmd.v
    (Cmd.info "interval" ~doc:"Top-k interval stabbing (Theorem 4).")
    Term.(const run $ n_arg $ k_arg $ seed_arg $ method_arg $ q_arg $ block_arg)

(* --- enclosure --- *)

let enclosure_cmd =
  let x_arg =
    Arg.(value & opt float 0.5 & info [ "x" ] ~docv:"X" ~doc:"Query x.")
  in
  let y_arg =
    Arg.(value & opt float 0.5 & info [ "y" ] ~docv:"Y" ~doc:"Query y.")
  in
  let run n k seed meth x y block =
    validate_common ~n ~k;
    with_model block (fun () ->
        let rects =
          let rng = Topk_util.Rng.create seed in
          Topk_enclosure.Rect.of_boxes rng (Topk_util.Gen.rectangles rng ~n)
        in
        let module Inst = Topk_enclosure.Instances in
        let params = Inst.params () in
        let query =
          match meth with
          | Thm1 ->
              let t = Inst.Topk_t1.build ~params rects in
              fun () -> Inst.Topk_t1.query t (x, y) ~k
          | Thm2 ->
              let t = Inst.Topk_t2.build ~params rects in
              fun () -> Inst.Topk_t2.query t (x, y) ~k
          | Rj ->
              let t = Inst.Topk_rj.build rects in
              fun () -> Inst.Topk_rj.query t (x, y) ~k
          | Naive ->
              let t = Inst.Topk_naive.build rects in
              fun () -> Inst.Topk_naive.query t (x, y) ~k
        in
        Topk_em.Stats.reset ();
        let result = query () in
        Printf.printf "top-%d rectangles containing (%g, %g) of %d:\n" k x y n;
        List.iter
          (fun r -> Format.printf "  %a@." Topk_enclosure.Rect.pp r)
          result;
        report_cost ())
  in
  Cmd.v
    (Cmd.info "enclosure" ~doc:"Top-k 2D point enclosure (Theorem 5).")
    Term.(
      const run $ n_arg $ k_arg $ seed_arg $ method_arg $ x_arg $ y_arg
      $ block_arg)

(* --- dominance --- *)

let dominance_cmd =
  let x_arg =
    Arg.(value & opt float 200. & info [ "x" ] ~docv:"PRICE" ~doc:"Max price.")
  in
  let y_arg =
    Arg.(value & opt float 10. & info [ "y" ] ~docv:"KM" ~doc:"Max distance.")
  in
  let z_arg =
    Arg.(
      value & opt float 3.
      & info [ "z" ] ~docv:"SEC" ~doc:"Min security rating.")
  in
  let run n k seed meth x y z block =
    validate_common ~n ~k;
    with_model block (fun () ->
        let hotels =
          Topk_dominance.Instances.hotels (Topk_util.Rng.create seed) ~n
        in
        let module Inst = Topk_dominance.Instances in
        let params = Inst.params () in
        let q = (x, y, -.z) in
        let query =
          match meth with
          | Thm1 ->
              let t = Inst.Topk_t1.build ~params hotels in
              fun () -> Inst.Topk_t1.query t q ~k
          | Thm2 ->
              let t = Inst.Topk_t2.build ~params hotels in
              fun () -> Inst.Topk_t2.query t q ~k
          | Rj ->
              let t = Inst.Topk_rj.build hotels in
              fun () -> Inst.Topk_rj.query t q ~k
          | Naive ->
              let t = Inst.Topk_naive.build hotels in
              fun () -> Inst.Topk_naive.query t q ~k
        in
        Topk_em.Stats.reset ();
        let result = query () in
        Printf.printf
          "top-%d hotels (price <= %g, distance <= %g, security >= %g) of %d:\n"
          k x y z n;
        List.iter
          (fun h -> Format.printf "  %a@." Topk_dominance.Point3.pp h)
          result;
        report_cost ())
  in
  Cmd.v
    (Cmd.info "dominance" ~doc:"Top-k 3D dominance (Theorem 6).")
    Term.(
      const run $ n_arg $ k_arg $ seed_arg $ method_arg $ x_arg $ y_arg
      $ z_arg $ block_arg)

(* --- halfplane --- *)

let halfplane_cmd =
  let a_arg = Arg.(value & opt float 1. & info [ "a" ] ~docv:"A" ~doc:"Normal x.") in
  let b_arg = Arg.(value & opt float 1. & info [ "b" ] ~docv:"B" ~doc:"Normal y.") in
  let c_arg = Arg.(value & opt float 1. & info [ "c" ] ~docv:"C" ~doc:"Offset.") in
  let run n k seed a b c block =
    validate_common ~n ~k;
    with_model block (fun () ->
        let pts =
          let rng = Topk_util.Rng.create seed in
          Topk_geom.Point2.of_coords rng
            (Array.map
               (fun p -> (p.(0), p.(1)))
               (Topk_util.Gen.points rng ~n ~d:2))
        in
        let module Inst = Topk_halfspace.Instances in
        let t = Inst.Topk2_t2.build ~params:(Inst.params2 ()) pts in
        let q = Topk_geom.Halfplane.make ~a ~b ~c in
        Topk_em.Stats.reset ();
        let result = Inst.Topk2_t2.query t q ~k in
        Format.printf "top-%d points in %a of %d:@." k Topk_geom.Halfplane.pp
          q n;
        List.iter (fun p -> Format.printf "  %a@." Topk_geom.Point2.pp p) result;
        report_cost ())
  in
  Cmd.v
    (Cmd.info "halfplane"
       ~doc:"Top-k 2D halfspace reporting (Theorem 3, bullet 1).")
    Term.(
      const run $ n_arg $ k_arg $ seed_arg $ a_arg $ b_arg $ c_arg $ block_arg)

(* --- circular --- *)

let circular_cmd =
  let x_arg = Arg.(value & opt float 0.5 & info [ "x" ] ~docv:"X" ~doc:"Center x.") in
  let y_arg = Arg.(value & opt float 0.5 & info [ "y" ] ~docv:"Y" ~doc:"Center y.") in
  let r_arg = Arg.(value & opt float 0.2 & info [ "r" ] ~docv:"R" ~doc:"Radius.") in
  let run n k seed x y r block =
    validate_common ~n ~k;
    require_pos_float "r" r;
    with_model block (fun () ->
        let module H = Topk_halfspace in
        let module Inst = Topk_halfspace.Instances in
        let pts =
          let rng = Topk_util.Rng.create seed in
          H.Pointd.of_coords rng (Topk_util.Gen.points rng ~n ~d:2)
        in
        let t = Inst.Topk_ball_t2.build ~params:(Inst.paramsd ~d:2) pts in
        let q = H.Predicates.Ball.make ~center:[| x; y |] ~radius:r in
        Topk_em.Stats.reset ();
        let result = Inst.Topk_ball_t2.query t q ~k in
        Printf.printf "top-%d points within %g of (%g, %g) of %d:\n" k r x y n;
        List.iter (fun p -> Format.printf "  %a@." H.Pointd.pp p) result;
        report_cost ())
  in
  Cmd.v
    (Cmd.info "circular" ~doc:"Top-k circular reporting (Corollary 1).")
    Term.(
      const run $ n_arg $ k_arg $ seed_arg $ x_arg $ y_arg $ r_arg $ block_arg)

(* --- serve-bench --- *)

let serve_bench_cmd =
  let module Svc = Topk_service in
  let module Stats = Topk_em.Stats in
  let queries_arg =
    Arg.(
      value & opt int 10_000
      & info [ "queries" ] ~docv:"Q" ~doc:"Number of queries to serve.")
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"W" ~doc:"Worker domains in the pool.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 1024
      & info [ "capacity" ] ~docv:"C" ~doc:"Bounded queue capacity.")
  in
  let batch_arg =
    Arg.(
      value & opt int 32
      & info [ "batch" ] ~docv:"J" ~doc:"Max jobs a worker pops at once.")
  in
  let mixed_arg =
    Arg.(
      value & flag
      & info [ "mixed" ]
          ~doc:"Serve a mixed interval-stabbing + 1D-range workload \
                instead of intervals only.")
  in
  let run n k seed queries workers capacity batch mixed block =
    validate_common ~n ~k;
    require_pos "queries" queries;
    require_pos "workers" workers;
    require_pos "capacity" capacity;
    require_pos "batch" batch;
    with_model block (fun () ->
        let rng = Topk_util.Rng.create seed in
        Printf.printf
          "serve-bench: n=%d queries=%d workers=%d k=%d capacity=%d batch<=%d%s\n%!"
          n queries workers k capacity batch
          (if mixed then " (mixed interval+range)" else "");
        (* Build the instances (build cost is not part of serving). *)
        let elems =
          Topk_interval.Interval.of_spans rng
            (Topk_util.Gen.intervals rng ~shape:Topk_util.Gen.Mixed_intervals
               ~n)
        in
        let module IInst = Topk_interval.Instances in
        let itv = IInst.Topk_t2.build ~params:(IInst.params ()) elems in
        let registry = Svc.Registry.create () in
        let itv_h =
          Svc.Registry.register registry ~name:"intervals"
            (module IInst.Topk_t2)
            itv
        in
        let range_h =
          if not mixed then None
          else begin
            let module RInst = Topk_range.Instances in
            let pts =
              Topk_range.Wpoint.of_positions rng
                (Array.init n (fun _ -> Topk_util.Rng.uniform rng))
            in
            let rs = RInst.Topk_t2.build ~params:(RInst.params ()) pts in
            Some
              (Svc.Registry.register registry ~name:"range1d"
                 (module RInst.Topk_t2)
                 rs)
          end
        in
        List.iter
          (fun i -> Format.printf "registered %a@." Svc.Registry.pp_info i)
          (Svc.Registry.list registry);
        let stabs = Topk_util.Gen.stab_queries rng ~n:queries in
        let ranges =
          Array.init queries (fun _ ->
              let a = Topk_util.Rng.uniform rng
              and b = Topk_util.Rng.uniform rng in
              (Float.min a b, Float.max a b))
        in
        (* Sequential reference pass on this domain, same code path as
           the workers (per-query carry rounding included). *)
        let run_one i =
          if mixed && i land 1 = 1 then
            match range_h with
            | Some h ->
                ignore
                  (Svc.Registry.h_exec h ranges.(i) ~k ~budget:None
                     ~deadline:None)
            | None -> assert false
          else
            ignore
              (Svc.Registry.h_exec itv_h stabs.(i) ~k ~budget:None
                 ~deadline:None)
        in
        let t0 = Unix.gettimeofday () in
        let (), seq =
          Stats.measure (fun () ->
              for i = 0 to queries - 1 do
                run_one i
              done)
        in
        let seq_elapsed = Unix.gettimeofday () -. t0 in
        Printf.printf "\nsequential: %d queries in %.3fs (%.0f qps), %s\n%!"
          queries seq_elapsed
          (float_of_int queries /. Float.max 1e-9 seq_elapsed)
          (Format.asprintf "%a" Stats.pp seq);
        (* Concurrent pass through the pool, behind the Client facade:
           queries consult the shared answer cache before enqueueing.
           The stab/range points are distinct draws, so the cache stays
           cold and the worker I/O totals remain comparable to the
           sequential reference. *)
        let pool =
          Svc.Executor.create ~workers ~queue_capacity:capacity
            ~batch_max:batch ()
        in
        let client = Svc.Client.create ~metrics:(Svc.Executor.metrics pool) () in
        let itv_c = Svc.Client.attach client (Svc.Client.pooled pool itv_h) in
        let range_c =
          Option.map
            (fun h -> Svc.Client.attach client (Svc.Client.pooled pool h))
            range_h
        in
        let t1 = Unix.gettimeofday () in
        let futures =
          List.init queries (fun i ->
              if mixed && i land 1 = 1 then
                match range_c with
                | Some c ->
                    let fut = Svc.Client.query c ranges.(i) ~k in
                    fun () -> ignore (Svc.Future.await fut)
                | None -> assert false
              else
                let fut = Svc.Client.query itv_c stabs.(i) ~k in
                fun () -> ignore (Svc.Future.await fut))
        in
        List.iter (fun wait -> wait ()) futures;
        let elapsed = Unix.gettimeofday () -. t1 in
        let par = Svc.Executor.aggregate_stats pool in
        Printf.printf "concurrent: %d queries in %.3fs (%.0f qps)\n"
          queries elapsed
          (float_of_int queries /. Float.max 1e-9 elapsed);
        Printf.printf "aggregated worker cost: %s\n"
          (Format.asprintf "%a" Stats.pp par);
        Printf.printf "per-worker EM accounting:\n";
        List.iter
          (fun (w, s) ->
            Printf.printf "  worker %d: %s\n" w
              (Format.asprintf "%a" Stats.pp s))
          (Svc.Executor.worker_stats pool);
        Printf.printf "I/O totals: sequential=%d aggregated=%d (%s)\n"
          seq.Stats.ios par.Stats.ios
          (if seq.Stats.ios = par.Stats.ios then "exact match" else "MISMATCH");
        (* Graceful degradation demo: a deliberately under-budgeted
           query comes back flagged with a certified prefix instead of
           stalling a worker. *)
        let starved =
          Svc.Client.query_sync itv_c stabs.(0) ~k:(max 64 k)
            ~limits:(Svc.Limits.make ~budget:2 ())
        in
        Printf.printf "under-budgeted query (budget=2 I/Os): %s, %d answer(s)%s\n"
          (Svc.Response.status_string starved.Svc.Response.status)
          (List.length starved.Svc.Response.answers)
          (if Svc.Response.is_partial starved then " [certified prefix]"
           else "");
        Svc.Executor.shutdown pool;
        Printf.printf "\nmetrics:\n%s" (Svc.Metrics.report (Svc.Executor.metrics pool)))
  in
  Cmd.v
    (Cmd.info "serve-bench"
       ~doc:
         "Drive the concurrent serving subsystem (registry + domain pool) \
          with a synthetic workload and report latency/IO histograms.")
    Term.(
      const run $ n_arg $ k_arg $ seed_arg $ queries_arg $ workers_arg
      $ capacity_arg $ batch_arg $ mixed_arg $ block_arg)

(* --- chaos-bench --- *)

let chaos_bench_cmd =
  let module Svc = Topk_service in
  let module Stats = Topk_em.Stats in
  let module Fault = Topk_em.Fault in
  let queries_arg =
    Arg.(
      value & opt int 2_000
      & info [ "queries" ] ~docv:"Q" ~doc:"Number of queries to serve.")
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"W" ~doc:"Worker domains in the pool.")
  in
  let fault_rate_arg =
    Arg.(
      value & opt float 0.05
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:"Probability of a transient fault per block-fetch miss.")
  in
  let latency_rate_arg =
    Arg.(
      value & opt float 0.01
      & info [ "latency-rate" ] ~docv:"P"
          ~doc:"Probability of a latency spike per block-fetch miss.")
  in
  let latency_us_arg =
    Arg.(
      value & opt int 100
      & info [ "latency-us" ] ~docv:"US" ~doc:"Spike duration, microseconds.")
  in
  let retries_arg =
    Arg.(
      value & opt int 3
      & info [ "max-retries" ] ~docv:"R"
          ~doc:"Retry attempts per transient fault.")
  in
  let no_kill_arg =
    Arg.(
      value & flag
      & info [ "no-kill" ]
          ~doc:"Don't kill (and respawn) a worker domain mid-run.")
  in
  let require_rate name v =
    if not (v >= 0. && v <= 1.) then
      die "%s must be in [0,1] (got %g)" name v
  in
  let run n k seed queries workers fault_rate latency_rate latency_us
      max_retries no_kill block =
    validate_common ~n ~k;
    require_pos "queries" queries;
    require_pos "workers" workers;
    require_rate "fault-rate" fault_rate;
    require_rate "latency-rate" latency_rate;
    if latency_us < 0 then die "latency-us must be >= 0 (got %d)" latency_us;
    if max_retries < 0 then die "max-retries must be >= 0 (got %d)" max_retries;
    with_model block (fun () ->
        let rng = Topk_util.Rng.create seed in
        Printf.printf
          "chaos-bench: n=%d queries=%d workers=%d k=%d fault-rate=%g \
           latency-rate=%g/%dus retries=%d%s\n%!"
          n queries workers k fault_rate latency_rate latency_us max_retries
          (if no_kill then "" else " (+1 injected worker crash)");
        (* Mixed interval-stabbing + 1D-range workload behind one
           registry, with RAM-model naive oracles for ground truth. *)
        let elems =
          Topk_interval.Interval.of_spans rng
            (Topk_util.Gen.intervals rng ~shape:Topk_util.Gen.Mixed_intervals
               ~n)
        in
        let module IInst = Topk_interval.Instances in
        let module RInst = Topk_range.Instances in
        let pts =
          Topk_range.Wpoint.of_positions rng
            (Array.init n (fun _ -> Topk_util.Rng.uniform rng))
        in
        let registry = Svc.Registry.create () in
        let itv_h =
          Svc.Registry.register registry ~name:"intervals"
            (module IInst.Topk_t2)
            (IInst.Topk_t2.build ~params:(IInst.params ()) elems)
        in
        let rng_h =
          Svc.Registry.register registry ~name:"range1d"
            (module RInst.Topk_t2)
            (RInst.Topk_t2.build ~params:(RInst.params ()) pts)
        in
        let itv_naive = IInst.Topk_naive.build elems in
        let rng_naive = RInst.Topk_naive.build pts in
        let stabs = Topk_util.Gen.stab_queries rng ~n:queries in
        let ranges =
          Array.init queries (fun _ ->
              let a = Topk_util.Rng.uniform rng
              and b = Topk_util.Rng.uniform rng in
              (Float.min a b, Float.max a b))
        in
        (* Sequential oracle answers, computed before any fault is
           armed. *)
        let itv_ids l = List.map (fun (e : Topk_interval.Interval.t) -> e.id) l in
        let rng_ids l = List.map (fun (e : Topk_range.Wpoint.t) -> e.id) l in
        let oracle =
          Array.init queries (fun i ->
              if i land 1 = 1 then
                `R (rng_ids (RInst.Topk_naive.query rng_naive ranges.(i) ~k))
              else
                `I (itv_ids (IInst.Topk_naive.query itv_naive stabs.(i) ~k)))
        in
        (* Arm the seeded fault plan and serve the whole workload. *)
        let plan =
          Fault.plan ~io_fault_rate:fault_rate ~latency_rate
            ~latency_s:(float_of_int latency_us *. 1e-6)
            ~seed ()
        in
        Format.printf "armed %a@." Fault.pp_plan plan;
        Fault.install plan;
        let pool =
          Svc.Executor.create ~workers
            ~retry:
              {
                Svc.Executor.default_retry_policy with
                max_retries;
              }
              (* The bench asserts the resolution / retry / respawn
                 invariants, so the breaker must not shed the workload
                 it is trying to measure: at high fault rates the
                 *final* failure fraction legitimately exceeds the
                 default threshold and the default breaker would
                 (correctly) reject mid-submission.  Trip only on a
                 full window of failures — all-but-impossible while
                 any retries succeed.  Admission control itself is
                 exercised in test_service.ml. *)
            ~breaker:
              {
                Svc.Breaker.default_policy with
                Svc.Breaker.window = 256;
                min_samples = 256;
                failure_threshold = 1.0;
              }
            ()
        in
        let t0 = Unix.gettimeofday () in
        let classify i status answers =
          match status with
          | Svc.Response.Failed _ -> `Failed
          | _ -> if answers = oracle.(i) then `Ok else `Mismatch
        in
        (* At extreme fault rates (~1.0) nothing ever succeeds, the
           full-window breaker legitimately trips, and [submit] sheds
           load — turn that into a one-line diagnosis instead of an
           uncaught exception. *)
        let submit h q =
          try Svc.Executor.submit pool h q ~k
          with Svc.Error.Error Svc.Error.Overloaded ->
            die
              "circuit breaker opened mid-run: the armed fault plan leaves \
               (almost) no query succeeding; lower --fault-rate or raise \
               --max-retries"
        in
        let futures =
          List.init queries (fun i ->
              if i land 1 = 1 then
                let f = submit rng_h ranges.(i) in
                fun () ->
                  let r = Svc.Future.await f in
                  classify i r.Svc.Response.status
                    (`R (rng_ids r.Svc.Response.answers))
              else
                let f = submit itv_h stabs.(i) in
                fun () ->
                  let r = Svc.Future.await f in
                  classify i r.Svc.Response.status
                    (`I (itv_ids r.Svc.Response.answers)))
        in
        (* Kill a worker mid-run; the supervisor must respawn it. *)
        if not no_kill then Svc.Executor.inject_worker_crash pool 0;
        (* Every future must resolve — a hang here is the bug this
           bench exists to catch. *)
        let ok = ref 0 and failed = ref 0 and mismatched = ref 0 in
        List.iter
          (fun wait ->
            match wait () with
            | `Ok -> incr ok
            | `Failed -> incr failed
            | `Mismatch -> incr mismatched)
          futures;
        let elapsed = Unix.gettimeofday () -. t0 in
        Svc.Executor.drain pool;
        (* Wait (bounded) for the respawn to be recorded. *)
        let m = Svc.Executor.metrics pool in
        if not no_kill then begin
          let deadline = Unix.gettimeofday () +. 5. in
          while
            Svc.Metrics.Counter.get m.Svc.Metrics.respawns = 0
            && Unix.gettimeofday () < deadline
          do
            Unix.sleepf 0.005
          done
        end;
        Svc.Executor.shutdown pool;
        Fault.clear ();
        let retries = Svc.Metrics.Counter.get m.Svc.Metrics.retries in
        let faults_seen =
          Svc.Metrics.Counter.get m.Svc.Metrics.faults_injected
        in
        let respawns = Svc.Metrics.Counter.get m.Svc.Metrics.respawns in
        Printf.printf
          "served %d queries in %.3fs (%.0f qps): %d exact, %d failed, %d \
           mismatched\n"
          queries elapsed
          (float_of_int queries /. Float.max 1e-9 elapsed)
          !ok !failed !mismatched;
        Printf.printf
          "faults injected (EM layer): %d; escaped to serving layer: %d; \
           retries: %d; spikes: %d; respawns: %d; breaker: %s\n"
          (Fault.injected_total ()) faults_seen retries
          (Fault.spikes_total ()) respawns
          (Svc.Breaker.state_string (Svc.Executor.breaker_state pool));
        Printf.printf "\nmetrics:\n%s" (Svc.Metrics.report m);
        (* Assertions: degradation must be graceful, not silent. *)
        if !mismatched > 0 then
          die "%d non-faulted answers disagree with the sequential oracle"
            !mismatched;
        if fault_rate > 0. && retries = 0 && Fault.injected_total () = 0 then
          die "fault plan was armed but nothing was injected";
        if (not no_kill) && respawns = 0 then
          die "killed worker 0 but the supervisor never respawned it";
        if !ok + !failed + !mismatched <> queries then
          die "resolved %d of %d futures" (!ok + !failed + !mismatched)
            queries;
        Printf.printf
          "chaos-bench: OK (all %d futures resolved; exact answers under \
           injected faults; pool self-healed)\n"
          queries)
  in
  Cmd.v
    (Cmd.info "chaos-bench"
       ~doc:
         "Serve a mixed workload under a seeded EM fault plan (transient \
          block faults, latency spikes, one worker kill) and assert the \
          pool degrades gracefully: every future resolves, non-faulted \
          answers match the sequential oracle, transients are retried, \
          and the killed worker is respawned.")
    Term.(
      const run $ n_arg $ k_arg $ seed_arg $ queries_arg $ workers_arg
      $ fault_rate_arg $ latency_rate_arg $ latency_us_arg $ retries_arg
      $ no_kill_arg $ block_arg)

(* --- shard-bench --- *)

let shard_bench_cmd =
  let module Svc = Topk_service in
  let module Stats = Topk_em.Stats in
  let module Shard = Topk_shard in
  let module IInst = Topk_interval.Instances in
  let module IP = Topk_interval.Problem in
  let queries_arg =
    Arg.(
      value & opt int 200
      & info [ "queries" ] ~docv:"Q" ~doc:"Number of logical queries.")
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"W" ~doc:"Worker domains in the pool.")
  in
  let shards_arg =
    Arg.(
      value & opt int 8
      & info [ "shards" ] ~docv:"S" ~doc:"Number of index shards.")
  in
  (* Pruning saves a shard's Q_top + O(k/B) per skipped shard and pays
     one max query per shard; a larger default k than the point-lookup
     commands makes that trade visible at the default n. *)
  let shard_k_arg =
    Arg.(
      value & opt int 1000 & info [ "k" ] ~docv:"K" ~doc:"Result size.")
  in
  let strategy_arg =
    Arg.(
      value
      & opt (enum [ ("range-weight", `Range_weight); ("hash", `Hash); ("balanced", `Balanced) ]) `Range_weight
      & info [ "strategy" ] ~docv:"STRAT"
          ~doc:
            "Partitioning: range-weight (weight-skewed shard maxima; the \
             pruning showcase), hash, or balanced.")
  in
  let run n k seed queries workers shards strategy block =
    require_pos "n" n;
    require_pos "k" k;
    require_pos "queries" queries;
    require_pos "workers" workers;
    require_pos "shards" shards;
    if shards > n then die "shards must be <= n (got shards=%d, n=%d)" shards n;
    with_model block (fun () ->
        let module SSet =
          Shard.Shard_set.Make (IInst.Topk_t2) (Topk_interval.Slab_max)
        in
        let module Planner = Shard.Planner.Make (SSet) in
        let module Scatter = Shard.Scatter.Make (SSet) (IInst.Topk_t2) in
        let rng = Topk_util.Rng.create seed in
        let strategy_name, strategy =
          match strategy with
          | `Range_weight -> ("range-weight", Shard.Partitioner.Range IP.weight)
          | `Hash -> ("hash", Shard.Partitioner.Hash IP.id)
          | `Balanced -> ("balanced", Shard.Partitioner.Balanced)
        in
        Printf.printf
          "shard-bench: n=%d queries=%d workers=%d shards=%d k=%d \
           strategy=%s\n%!"
          n queries workers shards k strategy_name;
        let elems =
          Topk_interval.Interval.of_spans rng
            (Topk_util.Gen.intervals rng ~shape:Topk_util.Gen.Mixed_intervals
               ~n)
        in
        let params = IInst.params () in
        (* The unsharded reference index: sharded answers must match it
           query for query. *)
        let flat = IInst.Topk_t2.build ~params elems in
        let set = SSet.of_elems ~params ~strategy ~shards elems in
        Format.printf "%a@." SSet.pp set;
        let stabs = Topk_util.Gen.stab_queries rng ~n:queries in
        let reference = Array.map (fun q -> IInst.Topk_t2.query flat q ~k) stabs in
        let ids l = List.map IP.id l in
        (* Phase 1: sequential planner on this domain — pruning
           economics vs visiting every shard. *)
        let seq_mismatch = ref 0 and seq_pruned = ref 0 in
        let (), cost_planner =
          Stats.measure (fun () ->
              Array.iteri
                (fun i q ->
                  let answers, report = Planner.query_report set q ~k in
                  if ids answers <> ids reference.(i) then incr seq_mismatch;
                  seq_pruned := !seq_pruned + report.Planner.pruned)
                stabs)
        in
        let (), cost_all =
          Stats.measure (fun () ->
              Array.iter (fun q -> ignore (Planner.query_all set q ~k)) stabs)
        in
        Printf.printf
          "sequential planner: %d/%d exact, %d shards pruned, %d I/Os \
           (visit-all: %d I/Os)\n%!"
          (queries - !seq_mismatch) queries !seq_pruned cost_planner.Stats.ios
          cost_all.Stats.ios;
        (* Phase 2: the same logical queries fanned out through the
           worker pool. *)
        let pool = Svc.Executor.create ~workers () in
        let registry = Svc.Registry.create () in
        let sc = Scatter.create pool registry ~name:"intervals" set in
        Stats.reset_all ();
        let t0 = Unix.gettimeofday () in
        let par_mismatch = ref 0
        and par_pruned = ref 0
        and fanout = ref 0
        and total = ref Stats.zero_snapshot in
        Array.iteri
          (fun i q ->
            let r = Scatter.query sc q ~k in
            if
              ids r.Scatter.answers <> ids reference.(i)
              || r.Scatter.status <> Svc.Response.Complete
            then incr par_mismatch;
            par_pruned := !par_pruned + r.Scatter.pruned;
            fanout := !fanout + r.Scatter.fanout;
            total := Stats.add !total r.Scatter.cost)
          stabs;
        let elapsed = Unix.gettimeofday () -. t0 in
        Svc.Executor.drain pool;
        let agg = Stats.aggregate () in
        Printf.printf
          "scatter-gather: %d/%d exact in %.3fs (%.0f q/s), fanout=%d \
           pruned=%d\n"
          (queries - !par_mismatch) queries elapsed
          (float_of_int queries /. Float.max 1e-9 elapsed)
          !fanout !par_pruned;
        Printf.printf
          "EM accounting: sum of per-query costs=%d I/Os, \
           Stats.aggregate=%d I/Os (%s)\n"
          !total.Stats.ios agg.Stats.ios
          (if !total.Stats.ios = agg.Stats.ios then "exact match"
           else "MISMATCH");
        let m = Svc.Executor.metrics pool in
        Printf.printf
          "metrics: sharded_queries=%d shards_pruned=%d fanout_mean=%.1f \
           shard_ios_p95=%d\n"
          (Svc.Metrics.Counter.get m.Svc.Metrics.sharded_queries)
          (Svc.Metrics.Counter.get m.Svc.Metrics.shards_pruned)
          (Svc.Metrics.Histogram.mean m.Svc.Metrics.fanout)
          (Svc.Metrics.Histogram.percentile m.Svc.Metrics.shard_ios 0.95);
        Svc.Executor.shutdown pool;
        (* Hard acceptance checks; any failure exits non-zero. *)
        if !seq_mismatch > 0 || !par_mismatch > 0 then
          die "sharded answers diverged from the unsharded index (%d seq, %d \
               scatter)"
            !seq_mismatch !par_mismatch;
        if !total.Stats.ios <> agg.Stats.ios then
          die "EM accounting mismatch (summed=%d aggregate=%d)"
            !total.Stats.ios agg.Stats.ios;
        if String.equal strategy_name "range-weight" then begin
          if !seq_pruned = 0 || !par_pruned = 0 then
            die "no shards pruned on a weight-skewed partition";
          if cost_planner.Stats.ios >= cost_all.Stats.ios then
            die "pruning did not reduce I/O (planner=%d visit-all=%d)"
              cost_planner.Stats.ios cost_all.Stats.ios
        end;
        Printf.printf
          "shard-bench: OK (%d queries exact; ios accounted; pruned=%d; \
           planner %d < visit-all %d I/Os)\n"
          queries !par_pruned cost_planner.Stats.ios cost_all.Stats.ios)
  in
  Cmd.v
    (Cmd.info "shard-bench"
       ~doc:
         "Shard an interval index, serve scatter-gather top-k queries \
          through the worker pool, and verify exactness, per-shard EM \
          accounting and max-query pruning against the unsharded index.")
    Term.(
      const run $ n_arg $ shard_k_arg $ seed_arg $ queries_arg $ workers_arg
      $ shards_arg $ strategy_arg $ block_arg)

(* --- trace --- *)

let trace_cmd =
  let module Tr = Topk_trace.Trace in
  let module Certify = Topk_trace.Certify in
  let module Stats = Topk_em.Stats in
  let module Svc = Topk_service in
  let module Shard = Topk_shard in
  let module IInst = Topk_interval.Instances in
  let module IP = Topk_interval.Problem in
  let queries_arg =
    Arg.(
      value & opt int 200
      & info [ "queries" ] ~docv:"Q"
          ~doc:"Certified queries per reduction (3x this in total).")
  in
  let shards_arg =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"S" ~doc:"Shards for the scatter workload.")
  in
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"W" ~doc:"Worker domains in the pool.")
  in
  let dump_arg =
    Arg.(
      value & opt int 0
      & info [ "dump" ] ~docv:"D"
          ~doc:"Print the D most recent traces as JSON (one per line).")
  in
  let run n k seed queries shards workers dump block =
    validate_common ~n ~k;
    require_pos "queries" queries;
    require_pos "shards" shards;
    require_pos "workers" workers;
    if dump < 0 then die "dump must be >= 0 (got %d)" dump;
    if shards > n then die "shards must be <= n (got shards=%d, n=%d)" shards n;
    with_model block (fun () ->
        let rng = Topk_util.Rng.create seed in
        let elems =
          Topk_interval.Interval.of_spans rng
            (Topk_util.Gen.intervals rng ~shape:Topk_util.Gen.Mixed_intervals
               ~n)
        in
        let params = IInst.params () in
        let t1 = IInst.Topk_t1.build ~params elems in
        let t2 = IInst.Topk_t2.build ~params elems in
        let module SSet =
          Shard.Shard_set.Make (IInst.Topk_t2) (Topk_interval.Slab_max)
        in
        let module Scatter = Shard.Scatter.Make (SSet) (IInst.Topk_t2) in
        let set =
          SSet.of_elems ~params
            ~strategy:(Shard.Partitioner.Range IP.weight)
            ~shards elems
        in
        let pool = Svc.Executor.create ~workers () in
        let registry = Svc.Registry.create () in
        let sc = Scatter.create pool registry ~name:"intervals" set in
        let stabs = Topk_util.Gen.stab_queries rng ~n:queries in
        let cal = Topk_util.Gen.stab_queries rng ~n:32 in
        Printf.printf "trace: n=%d queries=%d k=%d shards=%d workers=%d\n%!" n
          queries k shards workers;
        (* Phase 1 — calibration, tracing off: fit one cost model per
           reduction from a small workload and register it. *)
        let b = float_of_int (Topk_em.Config.current ()).Topk_em.Config.b in
        let logb x =
          Float.max 1. (log (Float.max 2. x) /. log (Float.max 2. b))
        in
        let ks =
          List.sort_uniq Int.compare [ 1; max 1 (k / 10); max 1 (k / 2); k ]
        in
        let fit_direct instance theorem query =
          let samples =
            List.concat_map
              (fun kc ->
                Array.to_list cal
                |> List.map (fun q ->
                       let (_ : int), c =
                         Stats.measure (fun () -> List.length (query q kc))
                       in
                       (kc, None, c.Stats.ios)))
              ks
          in
          Certify.register
            (Certify.fit ~instance ~theorem ~n ~q_pri:(logb (float_of_int n))
               ~q_max:(logb (float_of_int n))
               samples)
        in
        fit_direct "interval-t1" Certify.T1 (fun q kc ->
            IInst.Topk_t1.query t1 q ~k:kc);
        fit_direct "interval-t2" Certify.T2 (fun q kc ->
            IInst.Topk_t2.query t2 q ~k:kc);
        let n_shard = (n + shards - 1) / shards in
        let shard_samples =
          List.concat_map
            (fun kc ->
              Array.to_list cal
              |> List.map (fun q ->
                     let r = Scatter.query sc q ~k:kc in
                     (kc, Some r.Scatter.fanout, r.Scatter.cost.Stats.ios)))
            ks
        in
        Certify.register
          (Certify.fit ~instance:"intervals" ~theorem:Certify.Sharded
             ~n:n_shard ~shards ~margin:3.0
             ~q_pri:(logb (float_of_int n_shard))
             ~q_max:(logb (float_of_int n_shard))
             shard_samples);
        let model_line =
          Certify.models ()
          |> List.map (fun (m : Certify.model) ->
                 Printf.sprintf "%s(%s)" m.Certify.instance
                   (Certify.theorem_name m.Certify.theorem))
          |> List.sort String.compare
          |> String.concat " "
        in
        Printf.printf "models: %s\n%!" model_line;
        (* Phase 2 — production run, tracing on: every query runs under
           a root span and is checked against its registered model. *)
        Certify.reset_counters ();
        Tr.Store.clear ();
        Tr.enable ();
        let bad = ref 0 in
        let spans = ref 0 in
        let check = function
          | Some (v : Certify.verdict) when not v.Certify.v_ok ->
              incr bad;
              Format.printf "  %a@." Certify.pp_verdict v
          | _ -> ()
        in
        let traced instance query q =
          let (_ : int), tr =
            Tr.with_root "cli.query"
              ~attrs:[ ("instance", Tr.Str instance); ("k", Tr.Int k) ]
              (fun () -> List.length (query q))
          in
          match tr with
          | None -> die "tracing enabled but no trace recorded"
          | Some tr ->
              spans := !spans + Tr.span_count tr;
              check (Certify.certify_trace tr)
        in
        Array.iter
          (fun q ->
            traced "interval-t1" (fun q -> IInst.Topk_t1.query t1 q ~k) q;
            traced "interval-t2" (fun q -> IInst.Topk_t2.query t2 q ~k) q;
            (* The scattered query records its own root; its total cost
               (caller + every leg) is certified from the result. *)
            let r = Scatter.query sc q ~k in
            check
              (Certify.evaluate ~instance:"intervals" ~k
                 ~visited:r.Scatter.fanout ~measured:r.Scatter.cost.Stats.ios
                 ()))
          stabs;
        Tr.disable ();
        Svc.Executor.shutdown pool;
        Printf.printf "certified: %d checked, %d violations\n"
          (Certify.checked ()) (Certify.violations ());
        Printf.printf "store: %d traces recorded, %d held, %d spans on %d \
                       direct traces\n"
          (Tr.Store.total ()) (Tr.Store.length ()) !spans (2 * queries);
        if dump > 0 then print_string (Tr.Store.export ~limit:dump ());
        if !bad > 0 || Certify.violations () > 0 then
          die "%d certified bound violations" (Certify.violations ());
        Printf.printf "trace: OK (0 violations)\n")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Fit per-reduction cost models on a calibration workload, then \
          run traced queries (Theorem 1, Theorem 2, scatter-gather) and \
          certify every measured cost against the paper's bounds; exits \
          non-zero on any violation.")
    Term.(
      const run $ n_arg $ k_arg $ seed_arg $ queries_arg $ shards_arg
      $ workers_arg $ dump_arg $ block_arg)

(* --- ingest-bench --- *)

let ingest_bench_cmd =
  let module Svc = Topk_service in
  let module Stats = Topk_em.Stats in
  let module Certify = Topk_trace.Certify in
  let module IInst = Topk_interval.Instances in
  let module I = Topk_interval.Interval in
  let module Ing = Topk_ingest.Ingest.Make (IInst.Topk_t2) in
  let updates_arg =
    Arg.(
      value & opt int 10_000
      & info [ "updates" ] ~docv:"U"
          ~doc:"Inserts + deletes in the update stream.")
  in
  let queries_arg =
    Arg.(
      value & opt int 1_000
      & info [ "queries" ] ~docv:"Q"
          ~doc:"Queries interleaved with the update stream.")
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"W"
          ~doc:"Worker domains running background merges.")
  in
  let write_ratio_arg =
    Arg.(
      value & opt float 0.7
      & info [ "write-ratio" ] ~docv:"P"
          ~doc:
            "Fraction of updates that insert a fresh element; the rest \
             delete a live one.  In (0,1].")
  in
  let buffer_cap_arg =
    Arg.(
      value & opt int 256
      & info [ "buffer-cap" ] ~docv:"C" ~doc:"Update-log capacity.")
  in
  let fanout_arg =
    Arg.(
      value & opt int 4
      & info [ "fanout" ] ~docv:"F" ~doc:"Merge arity per level (>= 2).")
  in
  let no_kill_arg =
    Arg.(
      value & flag
      & info [ "no-kill" ]
          ~doc:"Don't kill (and respawn) a merge worker mid-stream.")
  in
  let run n k seed updates queries workers write_ratio buffer_cap fanout
      no_kill block =
    validate_common ~n ~k;
    require_pos "updates" updates;
    require_pos "queries" queries;
    require_pos "workers" workers;
    require_pos "buffer-cap" buffer_cap;
    if not (write_ratio > 0. && write_ratio <= 1.) then
      die "write-ratio must be in (0,1] (got %g)" write_ratio;
    if fanout < 2 then die "fanout must be >= 2 (got %d)" fanout;
    with_model block (fun () ->
        let rng = Topk_util.Rng.create seed in
        Printf.printf
          "ingest-bench: n=%d updates=%d queries=%d workers=%d k=%d \
           write-ratio=%g buffer-cap=%d fanout=%d%s\n%!"
          n updates queries workers k write_ratio buffer_cap fanout
          (if no_kill then "" else " (+1 injected merge-worker crash)");
        let base =
          Topk_interval.Interval.of_spans rng
            (Topk_util.Gen.intervals rng ~shape:Topk_util.Gen.Mixed_intervals
               ~n)
        in
        let pool = Svc.Executor.create ~workers () in
        let t =
          Ing.create ~params:(IInst.params ()) ~buffer_cap ~fanout ~pool base
        in
        let metrics = Svc.Executor.metrics pool in
        (* The seeded update stream: fresh ids insert, live ids delete. *)
        let next_id = ref (n + 1) in
        let live = Hashtbl.create (2 * n) in
        Array.iter (fun (e : I.t) -> Hashtbl.replace live e.I.id e) base;
        let fresh_elem () =
          let id = !next_id in
          incr next_id;
          let lo = Topk_util.Rng.uniform rng in
          let hi =
            Float.min 1.0 (lo +. 0.02 +. (0.3 *. Topk_util.Rng.uniform rng))
          in
          I.make ~id ~lo ~hi
            ~weight:(1000. *. Topk_util.Rng.uniform rng)
            ()
        in
        let one_update () =
          let insert () =
            let e = fresh_elem () in
            Hashtbl.replace live e.I.id e;
            Ing.insert t e
          in
          if Topk_util.Rng.uniform rng <= write_ratio then insert ()
          else begin
            (* Probe for a live victim; fall back to an insert when the
               sampling misses (the live set only shrinks under heavy
               delete ratios, so a bounded probe is enough). *)
            let victim = ref None in
            let tries = ref 0 in
            while !victim = None && !tries < 64 do
              incr tries;
              let id = 1 + Topk_util.Rng.int rng (!next_id - 1) in
              match Hashtbl.find_opt live id with
              | Some e -> victim := Some e
              | None -> ()
            done;
            match !victim with
            | Some e ->
                Hashtbl.remove live e.I.id;
                Ing.delete t e
            | None -> insert ()
          end
        in
        (* Exactness: every answer must equal the from-scratch oracle
           over the surviving set of the same pinned epoch.

           Certification: the Dynamic(T2) constant depends on the
           tombstone/override density the stream settles into (more
           overrides mean more staged-doubling rounds per run), so the
           model is fitted from the first tenth of the {e real}
           interleaved stream — a synthetic pre-stream warmup
           underestimates it — and certifies the remainder. *)
        let instance = "ingest(interval-t2)" in
        let cal_target = max 32 (queries / 10) in
        let cal_samples = ref [] in
        let fitted = ref false in
        let headroom = ref 0.0 in
        let b = float_of_int (Topk_em.Config.current ()).Topk_em.Config.b in
        let logb x =
          Float.max 1. (log (Float.max 2. x) /. log (Float.max 2. b))
        in
        let fit_model () =
          Certify.register
            (Certify.fit ~instance ~theorem:(Certify.Dynamic Certify.T2)
               ~n:(n + updates) ~margin:3.0
               ~q_pri:(logb (float_of_int (n + updates)))
               ~q_max:(logb (float_of_int (n + updates)))
               (List.rev !cal_samples));
          Certify.reset_counters ();
          fitted := true
        in
        let mismatched = ref 0 and checked = ref 0 in
        let ids l = List.map (fun (e : I.t) -> e.I.id) l in
        let do_query () =
          let q = Topk_util.Rng.uniform rng in
          let view = Ing.pin t in
          let answer, cost =
            Stats.measure (fun () -> Ing.query_view view q ~k)
          in
          let truth =
            Topk_util.Select.top_k ~cmp:I.compare_weight k
              (List.filter (fun e -> I.contains e q) (Ing.view_live view))
          in
          incr checked;
          if ids answer <> ids truth then begin
            incr mismatched;
            if !mismatched <= 3 then
              Printf.printf
                "  MISMATCH at epoch %d (q=%g k=%d): got %d ids, oracle %d\n"
                (Ing.view_epoch view) q k (List.length answer)
                (List.length truth)
          end;
          let runs = Ing.view_runs view in
          if not !fitted then begin
            cal_samples := (k, Some runs, cost.Stats.ios) :: !cal_samples;
            if List.length !cal_samples >= cal_target then fit_model ()
          end
          else begin
            (match Certify.lookup instance with
             | Some m ->
                 let bound = Certify.bound m ~k ~visited:runs in
                 headroom :=
                   Float.max !headroom
                     (float_of_int cost.Stats.ios /. Float.max 1e-9 bound)
             | None -> ());
            ignore
              (Certify.evaluate ~instance ~k ~visited:runs
                 ~measured:cost.Stats.ios ()
                : Certify.verdict option)
          end;
          Ing.unpin view
        in
        (* The measured stream: interleave queries with updates, kill a
           merge worker a third of the way in. *)
        let t0 = Unix.gettimeofday () in
        let per_query = max 1 (updates / queries) in
        let issued = ref 0 in
        for u = 1 to updates do
          one_update ();
          if u mod per_query = 0 && !issued < queries then begin
            incr issued;
            do_query ()
          end;
          if (not no_kill) && u = updates / 3 then
            Svc.Executor.inject_worker_crash pool 0
        done;
        while !issued < queries do
          incr issued;
          do_query ()
        done;
        if not !fitted then fit_model ();
        let elapsed = Unix.gettimeofday () -. t0 in
        (* Settle: seal the tail of the log, drain compaction, and
           re-check a final batch of queries on the frozen structure. *)
        Ing.freeze t;
        for _ = 1 to 16 do do_query () done;
        Svc.Executor.drain pool;
        if not no_kill then begin
          let deadline = Unix.gettimeofday () +. 5. in
          while
            Svc.Metrics.Counter.get metrics.Svc.Metrics.respawns = 0
            && Unix.gettimeofday () < deadline
          do
            Unix.sleepf 0.005
          done
        end;
        Svc.Executor.shutdown pool;
        let agg = Stats.aggregate () in
        let get c = Svc.Metrics.Counter.get c in
        let seals = get metrics.Svc.Metrics.seals in
        let merges = get metrics.Svc.Metrics.merges in
        let respawns = get metrics.Svc.Metrics.respawns in
        let mlat = metrics.Svc.Metrics.merge_latency_us in
        Printf.printf
          "streamed %d updates + %d queries in %.3fs (%.0f ops/s): %d/%d \
           exact\n"
          updates queries elapsed
          (float_of_int (updates + queries) /. Float.max 1e-9 elapsed)
          (!checked - !mismatched) !checked;
        Printf.printf
          "ingest: size=%d epoch=%d runs=%d updates=%d seals=%d merges=%d \
           tombstones=%d epoch-lag=%d respawns=%d wedged=%b\n"
          (Ing.size t) (Ing.epoch t) (Ing.run_count t)
          (get metrics.Svc.Metrics.updates)
          seals merges
          (get metrics.Svc.Metrics.tombstones)
          (Svc.Metrics.Gauge.get metrics.Svc.Metrics.epoch_lag)
          respawns (Ing.wedged t);
        Printf.printf
          "merge latency: %d merges, mean %.0fus, p95 %dus, max %dus\n"
          (Svc.Metrics.Histogram.count mlat)
          (Svc.Metrics.Histogram.mean mlat)
          (Svc.Metrics.Histogram.percentile mlat 0.95)
          (Svc.Metrics.Histogram.max_value mlat)
          ;
        Printf.printf
          "cost: %d I/Os aggregate (merge I/O included); certified: %d \
           checked, %d violations (worst headroom %.2f of bound)\n"
          agg.Stats.ios (Certify.checked ()) (Certify.violations ())
          !headroom;
        (* Hard failures: this bench exists to catch them. *)
        if !mismatched > 0 then
          die "%d answers disagree with the from-scratch epoch oracle"
            !mismatched;
        if Certify.violations () > 0 then
          die "%d dynamic cost-bound violations" (Certify.violations ());
        if seals = 0 then die "the update stream never sealed the buffer";
        if merges = 0 then die "compaction never merged a level";
        if Ing.wedged t then die "compaction wedged (merge failed permanently)";
        if (not no_kill) && respawns = 0 then
          die "killed merge worker 0 but the supervisor never respawned it";
        if agg.Stats.ios <= 0 then
          die "no I/O reached the aggregate EM accounting";
        Printf.printf
          "ingest-bench: OK (%d exact answers across %d epochs under live \
           compaction)\n"
          !checked (Ing.epoch t + 1))
  in
  Cmd.v
    (Cmd.info "ingest-bench"
       ~doc:
         "Stream seeded inserts/deletes into a live ingest wrapper while \
          serving interleaved queries, with background merges on a worker \
          pool (one worker killed mid-stream) — every answer must match a \
          from-scratch oracle over the surviving set at its pinned epoch, \
          and every measured cost must stay within the fitted \
          Dynamic(Theorem 2) bound.")
    Term.(
      const run $ n_arg $ k_arg $ seed_arg $ updates_arg $ queries_arg
      $ workers_arg $ write_ratio_arg $ buffer_cap_arg $ fanout_arg
      $ no_kill_arg $ block_arg)

(* --- crash-bench --- *)

let crash_bench_cmd =
  let module IInst = Topk_interval.Instances in
  let module I = Topk_interval.Interval in
  let module Disk = Topk_durable.Disk in
  let module Store = Topk_durable.Store in
  let module DS = Topk_durable.Store.Make (IInst.Topk_t2) in
  let module Svc = Topk_service in
  let updates_arg =
    Arg.(
      value & opt int 400
      & info [ "updates" ] ~docv:"U"
          ~doc:"Inserts + deletes in the update stream.")
  in
  let crashes_arg =
    Arg.(
      value & opt int 60
      & info [ "crashes" ] ~docv:"C"
          ~doc:"Crash points swept per durability mode.")
  in
  let buffer_cap_arg =
    Arg.(
      value & opt int 64
      & info [ "buffer-cap" ] ~docv:"B" ~doc:"Update-log capacity.")
  in
  let fanout_arg =
    Arg.(
      value & opt int 2
      & info [ "fanout" ] ~docv:"F" ~doc:"Merge arity per level (>= 2).")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 2
      & info [ "checkpoint-every" ] ~docv:"S"
          ~doc:"Checkpoint every S-th seal (merges always checkpoint).")
  in
  let group_arg =
    Arg.(
      value & opt int 4
      & info [ "group" ] ~docv:"G"
          ~doc:"Group-commit size for the async mode leg.")
  in
  let run n k seed updates crashes buffer_cap fanout checkpoint_every group =
    validate_common ~n ~k;
    require_pos "updates" updates;
    require_pos "crashes" crashes;
    require_pos "buffer-cap" buffer_cap;
    require_pos "checkpoint-every" checkpoint_every;
    require_pos "group" group;
    if fanout < 2 then die "fanout must be >= 2 (got %d)" fanout;
    let rng = Topk_util.Rng.create seed in
    Printf.printf
      "crash-bench: n=%d updates=%d crashes=%d/mode buffer-cap=%d fanout=%d \
       checkpoint-every=%d\n%!"
      n updates crashes buffer_cap fanout checkpoint_every;
    let base =
      Topk_interval.Interval.of_spans rng
        (Topk_util.Gen.intervals rng ~shape:Topk_util.Gen.Mixed_intervals ~n)
    in
    (* The op stream is fixed up front — identical at every crash
       point, so the from-scratch oracle over any prefix is
       well-defined. *)
    let last = Hashtbl.create (2 * n) in
    Array.iter (fun (e : I.t) -> Hashtbl.replace last e.I.id e) base;
    let next_id = ref (n + 1) in
    let ops =
      Array.init updates (fun _ ->
          let insert () =
            let id = !next_id in
            incr next_id;
            let lo = Topk_util.Rng.uniform rng in
            let hi =
              Float.min 1.0 (lo +. 0.02 +. (0.3 *. Topk_util.Rng.uniform rng))
            in
            let e =
              I.make ~id ~lo ~hi ~weight:(1000. *. Topk_util.Rng.uniform rng) ()
            in
            Hashtbl.replace last id e;
            (true, e)
          in
          if Topk_util.Rng.uniform rng <= 0.7 then insert ()
          else begin
            let victim = ref None in
            let tries = ref 0 in
            while !victim = None && !tries < 64 do
              incr tries;
              let id = 1 + Topk_util.Rng.int rng (!next_id - 1) in
              match Hashtbl.find_opt last id with
              | Some e -> victim := Some e
              | None -> ()
            done;
            match !victim with
            | Some e ->
                Hashtbl.remove last e.I.id;
                (false, e)
            | None -> insert ()
          end)
    in
    let oracle_ids r =
      let live = Hashtbl.create (2 * n) in
      Array.iter (fun (e : I.t) -> Hashtbl.replace live e.I.id ()) base;
      Array.iteri
        (fun i ((ins, e) : bool * I.t) ->
          if i < r then
            if ins then Hashtbl.replace live e.I.id ()
            else Hashtbl.remove live e.I.id)
        ops;
      List.sort compare (Hashtbl.fold (fun id () a -> id :: a) live [])
    in
    let live_ids st =
      let v = DS.I.pin (DS.index st) in
      let ids =
        List.sort compare (List.map (fun (e : I.t) -> e.I.id) (DS.I.view_live v))
      in
      DS.I.unpin v;
      ids
    in
    let params = IInst.params () in
    let build mode dir =
      DS.create ~params ~buffer_cap ~fanout ~mode ~checkpoint_every ~dir base
    in
    let metrics = Svc.Metrics.create () in
    let recoveries = ref 0 and violations = ref 0 and swept = ref 0 in
    let phase_hits = Hashtbl.create 8 in
    let run_mode mode mode_name =
      (* Profile pass: count this workload's disk ops and label each
         with the phase it belongs to. *)
      let profile_dir = fresh_scratch (mode_name ^ "-profile") in
      Disk.clear ();
      Disk.reset_ops ();
      Disk.set_recording true;
      let st = build mode profile_dir in
      Array.iter (fun (ins, e) -> if ins then DS.insert st e else DS.delete st e) ops;
      DS.close st;
      Disk.set_recording false;
      let total_ops = Disk.op_count () in
      let phase_of = Hashtbl.create total_ops in
      List.iter (fun (i, p) -> Hashtbl.replace phase_of i p) (Disk.phase_log ());
      (match DS.recover ~params ~buffer_cap ~fanout ~mode ~dir:profile_dir () with
      | None -> die "%s: the crash-free profile run lost its recovery root" mode_name
      | Some st' ->
          if live_ids st' <> oracle_ids updates then
            die "%s: crash-free recovery disagrees with the oracle" mode_name;
          DS.close st');
      rm_rf profile_dir;
      if total_ops < crashes then
        Printf.printf
          "  %s: only %d disk ops; sweeping each once\n%!" mode_name total_ops;
      (* Evenly spaced crash points over the whole op stream, plus one
         directed point for any phase the spacing missed — rare phases
         (a seal that checkpoints between merges) must still be hit. *)
      let n_even = min crashes total_ops in
      let chosen = Hashtbl.create n_even in
      for i = 1 to n_even do
        Hashtbl.replace chosen (max 1 (i * total_ops / n_even)) ()
      done;
      let first_op_of ph =
        Hashtbl.fold
          (fun i p best ->
            if p <> ph then best
            else match best with Some b when b <= i -> best | _ -> Some i)
          phase_of None
      in
      let covered ph =
        Hashtbl.fold
          (fun c () hit -> hit || Hashtbl.find_opt phase_of c = Some ph)
          chosen false
      in
      List.iter
        (fun ph ->
          if not (covered ph) then
            match first_op_of ph with
            | Some i -> Hashtbl.replace chosen i ()
            | None -> ())
        [ "wal-append"; "seal"; "merge"; "manifest" ];
      let points = List.sort compare (Hashtbl.fold (fun c () a -> c :: a) chosen []) in
      List.iter (fun c ->
        incr swept;
        (match Hashtbl.find_opt phase_of c with
        | Some p ->
            Hashtbl.replace phase_hits p (1 + Option.value ~default:0 (Hashtbl.find_opt phase_hits p))
        | None -> ());
        let dir = fresh_scratch (Printf.sprintf "%s-%d" mode_name c) in
        Disk.reset_ops ();
        Disk.install (Disk.plan ~crash_at:c ~seed:(seed lxor (c * 7919)) ());
        let acked = ref 0 and issued = ref 0 in
        (try
           let st = build mode dir in
           Array.iter
             (fun ((ins, e) : bool * I.t) ->
               incr issued;
               if ins then DS.insert st e else DS.delete st e;
               incr acked)
             ops;
           DS.close st
         with Disk.Crash -> ());
        Disk.clear ();
        let fail fmt =
          Printf.ksprintf
            (fun msg ->
              incr violations;
              if !violations <= 5 then
                Printf.printf "  VIOLATION %s@op%d: %s\n%!" mode_name c msg)
            fmt
        in
        (match DS.recover ~params ~buffer_cap ~fanout ~mode ~metrics ~dir () with
        | None ->
            if !acked > 0 then
              fail "no recovery root but %d updates were acknowledged" !acked
        | Some st' ->
            incr recoveries;
            let r = DS.recovered_seq st' in
            if r > !issued then fail "recovered %d ops, only %d issued" r !issued;
            if mode = Store.Sync && r < !acked then
              fail "recovered prefix %d < %d sync-acknowledged" r !acked;
            let got = live_ids st' in
            let want = oracle_ids r in
            if got <> want then
              fail "surviving set (%d ids) differs from oracle prefix %d (%d ids)"
                (List.length got) r (List.length want);
            DS.close st');
        rm_rf dir)
        points
    in
    run_mode Store.Sync "sync";
    run_mode (Store.Async group) (Printf.sprintf "async%d" group);
    let torn = Svc.Metrics.Counter.get metrics.Svc.Metrics.torn_tails in
    let cksum = Svc.Metrics.Counter.get metrics.Svc.Metrics.checksum_failures in
    Printf.printf
      "swept %d crash points: %d recoveries, %d torn tails truncated, %d \
       checksum failures\n"
      !swept !recoveries torn cksum;
    let phases = [ "wal-append"; "seal"; "merge"; "manifest" ] in
    Printf.printf "phase coverage:%s\n"
      (String.concat ""
         (List.map
            (fun p ->
              Printf.sprintf " %s=%d" p
                (Option.value ~default:0 (Hashtbl.find_opt phase_hits p)))
            phases));
    (* Hard failures: this bench exists to catch them. *)
    if !violations > 0 then
      die "%d acked-prefix/oracle violations across %d crash points" !violations
        !swept;
    (* No corruption was injected, so any checksum failure is an
       integrity bug in the durable formats themselves. *)
    if cksum > 0 then die "%d checksum failures without injected corruption" cksum;
    List.iter
      (fun p ->
        if not (Hashtbl.mem phase_hits p) then
          die "no crash point landed in the %s phase (op stream too small?)" p)
      phases;
    Printf.printf "crash-bench: OK (%d crash points, %d recoveries, 0 violations)\n"
      !swept !recoveries
  in
  Cmd.v
    (Cmd.info "crash-bench"
       ~doc:
         "Sweep seeded crash points over a durable ingestion stream: at \
          each point the simulated machine dies (torn tails, uncertain \
          renames), recovery rebuilds the index from manifest + snapshot + \
          WAL replay, and the surviving set must equal a from-scratch \
          oracle over a prefix of the issued updates containing every \
          sync-acknowledged one.  Hard-fails on any violation, any \
          checksum failure, or a phase never hit.")
    Term.(
      const run $ n_arg $ k_arg $ seed_arg $ updates_arg $ crashes_arg
      $ buffer_cap_arg $ fanout_arg $ checkpoint_every_arg $ group_arg)

(* --- repl-bench --- *)

let repl_bench_cmd =
  let module IInst = Topk_interval.Instances in
  let module I = Topk_interval.Interval in
  let module Rng = Topk_util.Rng in
  let module Transport = Topk_repl.Transport in
  let module G = Topk_repl.Group.Make (IInst.Topk_t2) in
  let module Svc = Topk_service in
  let base_arg =
    Arg.(
      value & opt int 400
      & info [ "n" ] ~docv:"N" ~doc:"Base elements shared by every node.")
  in
  let updates_arg =
    Arg.(
      value & opt int 140
      & info [ "updates" ] ~docv:"U"
          ~doc:"Inserts + deletes in the update stream, per fault point.")
  in
  let points_arg =
    Arg.(
      value & opt int 120
      & info [ "points" ] ~docv:"P"
          ~doc:"Seeded fault points swept (the full law wants >= 100).")
  in
  let replicas_arg =
    Arg.(
      value & opt int 3
      & info [ "replicas" ] ~docv:"R" ~doc:"Read replicas per group (>= 2).")
  in
  let quorum_arg =
    Arg.(
      value & opt int 2
      & info [ "quorum" ] ~docv:"Q"
          ~doc:"Replica acks a synced write waits for (in [1, R]).")
  in
  let buffer_cap_arg =
    Arg.(
      value & opt int 16
      & info [ "buffer-cap" ] ~docv:"B" ~doc:"Update-log capacity.")
  in
  let fanout_arg =
    Arg.(
      value & opt int 2
      & info [ "fanout" ] ~docv:"F" ~doc:"Merge arity per level (>= 2).")
  in
  let retain_arg =
    Arg.(
      value & opt int 48
      & info [ "retain" ] ~docv:"W"
          ~doc:
            "Outlog retention in entries: a replica partitioned for longer \
             is caught up by snapshot install.")
  in
  let clean_arg =
    Arg.(
      value & flag
      & info [ "clean" ]
          ~doc:
            "Disable randomized frame faults (drop/duplicate/reorder/delay); \
             scheduled partitions and primary failures still run — \
             clean-path sanity.")
  in
  let run n k seed updates points replicas quorum buffer_cap fanout retain
      clean =
    validate_common ~n ~k;
    require_pos "updates" updates;
    require_pos "points" points;
    require_pos "buffer-cap" buffer_cap;
    require_pos "retain" retain;
    if replicas < 2 then die "replicas must be >= 2 (got %d)" replicas;
    if quorum < 1 || quorum > replicas then
      die "quorum must be in [1, replicas] (got %d)" quorum;
    if fanout < 2 then die "fanout must be >= 2 (got %d)" fanout;
    Printf.printf
      "repl-bench: n=%d updates=%d points=%d replicas=%d quorum=%d \
       buffer-cap=%d fanout=%d retain=%d\n%!"
      n updates points replicas quorum buffer_cap fanout retain;
    let params = IInst.params () in
    let mk_elem rng id =
      let lo = Rng.uniform rng in
      let hi = Float.min 1.0 (lo +. 0.02 +. (0.3 *. Rng.uniform rng)) in
      (* Weights are distinct by construction (strictly increasing in
         id), so the oracle's top-k is unique and answers compare by
         id set. *)
      I.make ~id ~lo ~hi ~weight:(float_of_int id +. (0.5 *. Rng.uniform rng)) ()
    in
    let base =
      let rng = Rng.create seed in
      Array.init n (fun i -> mk_elem rng (i + 1))
    in
    let metrics = Svc.Metrics.create () in
    let phases = [| "ship"; "ack"; "install"; "promote" |] in
    let phase_hits = Hashtbl.create 8 in
    let violations = ref 0
    and converged = ref 0
    and swept = ref 0
    and rw_checks = ref 0
    and installs_total = ref 0
    and failovers_total = ref 0 in
    let fail point phase fmt =
      Printf.ksprintf
        (fun msg ->
          incr violations;
          if !violations <= 5 then
            Printf.printf "  VIOLATION point=%d phase=%s: %s\n%!" point phase
              msg)
        fmt
    in
    for p = 0 to points - 1 do
      incr swept;
      let phase = phases.(p mod Array.length phases) in
      Hashtbl.replace phase_hits phase
        (1 + Option.value ~default:0 (Hashtbl.find_opt phase_hits phase));
      let pseed = seed lxor (p * 7919) lxor 0x5bd1 in
      let rng = Rng.create pseed in
      let plan =
        if clean then Transport.clean ~seed:pseed
        else
          match phase with
          | "ship" ->
              Transport.plan ~drop:0.25 ~reorder:0.2 ~delay_max:2 ~seed:pseed
                ()
          | "ack" -> Transport.plan ~dup:0.2 ~delay_max:1 ~seed:pseed ()
          | "install" -> Transport.plan ~drop:0.1 ~seed:pseed ()
          | _ -> Transport.plan ~drop:0.15 ~dup:0.1 ~delay_max:1 ~seed:pseed ()
      in
      let g =
        G.create ~params ~buffer_cap ~fanout ~retain ~plan ~metrics ~quorum
          ~max_pump:60 ~name:"repl" ~replicas base
      in
      (* The surviving timeline, newest first; op at seq [s] is element
         [hist_len - s] from the head.  A failover truncates it to the
         promoted head — which must not lose a synced write. *)
      let hist = ref [] and hist_len = ref 0 in
      let push op =
        hist := op :: !hist;
        incr hist_len
      in
      let truncate_to h =
        while !hist_len > h do
          hist := List.tl !hist;
          decr hist_len
        done
      in
      let live_at r =
        let tbl = Hashtbl.create (2 * n) in
        Array.iter (fun (e : I.t) -> Hashtbl.replace tbl e.I.id e) base;
        List.iteri
          (fun i ((ins, e) : bool * I.t) ->
            if i + 1 <= r then
              if ins then Hashtbl.replace tbl e.I.id e
              else Hashtbl.remove tbl e.I.id)
          (List.rev !hist);
        tbl
      in
      let oracle_ids r =
        List.sort compare (Hashtbl.fold (fun id _ a -> id :: a) (live_at r) [])
      in
      let synced_seqs = ref [] and last_synced = ref 0 in
      let next_id = ref (n + 1) in
      let del_pool = ref [] in
      let victim = 1 + (p / Array.length phases mod replicas) in
      let promote_at =
        match phase with
        | "promote" -> 1 + Rng.int rng (updates - 1)
        | _ -> max_int
      in
      let partition_at, heal_at =
        match phase with
        | "install" -> ((updates / 4) + 1, (updates / 4) + 1 + (updates / 2))
        | "ack" -> ((updates / 5) + 1, (updates / 5) + 1 + (updates / 3))
        | _ -> (max_int, max_int)
      in
      let cut_acks () =
        for r = 0 to G.nodes g - 1 do
          if r <> G.primary g && G.alive g r then
            Transport.cut (G.transport g) ~src:r ~dst:(G.primary g)
        done
      in
      let heal_acks () =
        for r = 0 to G.nodes g - 1 do
          if r <> G.primary g && G.alive g r then
            Transport.heal (G.transport g) ~src:r ~dst:(G.primary g)
        done
      in
      for u = 1 to updates do
        if u = promote_at then begin
          (match G.fail_primary g with
          | _new_primary ->
              incr failovers_total;
              let h = G.head g in
              List.iter
                (fun s ->
                  if s > h then
                    fail p phase
                      "synced write seq %d lost by failover (promoted head %d)"
                      s h)
                !synced_seqs;
              truncate_to h;
              synced_seqs := List.filter (fun s -> s <= h) !synced_seqs;
              last_synced := min !last_synced h;
              del_pool :=
                Hashtbl.fold
                  (fun id e acc -> if id > n then e :: acc else acc)
                  (live_at h) []
          | exception Invalid_argument msg ->
              fail p phase "failover refused: %s" msg)
        end;
        if u = partition_at then
          if phase = "install" then G.partition g victim else cut_acks ();
        if u = heal_at then
          if phase = "install" then G.rejoin g victim else heal_acks ();
        let ins = Rng.uniform rng <= 0.72 || !del_pool = [] in
        let outcome =
          if ins then begin
            let e = mk_elem rng !next_id in
            incr next_id;
            del_pool := e :: !del_pool;
            push (true, e);
            G.insert g e
          end
          else begin
            let i = Rng.int rng (List.length !del_pool) in
            let e = List.nth !del_pool i in
            del_pool := List.filteri (fun j _ -> j <> i) !del_pool;
            push (false, e);
            G.delete g e
          end
        in
        if G.write_seq outcome <> !hist_len then
          fail p phase "write got seq %d, issued %d" (G.write_seq outcome)
            !hist_len;
        if G.synced outcome then begin
          synced_seqs := !hist_len :: !synced_seqs;
          last_synced := !hist_len
        end;
        (* Read-your-writes probe: a read carrying the last synced seq
           as its token must answer at or above it, exactly per the
           from-scratch oracle at the answering snapshot's seq. *)
        if u mod 13 = 0 && !last_synced > 0 then begin
          incr rw_checks;
          let q = Rng.uniform rng in
          match
            G.read ~consistency:(Svc.Consistency.At_least !last_synced) g q ~k
          with
          | None -> fail p phase "read refused a satisfiable token %d"
              !last_synced
          | Some resp -> (
              match Svc.Response.seq_token resp with
              | None -> fail p phase "replicated read lost its seq token"
              | Some tok ->
                  if tok < !last_synced then
                    fail p phase "stale read: token %d under At_least floor %d" tok
                      !last_synced
                  else begin
                    let lives =
                      Hashtbl.fold (fun _ e a -> e :: a) (live_at tok) []
                    in
                    let want =
                      List.sort compare
                        (List.map
                           (fun (e : I.t) -> e.I.id)
                           (Topk_util.Select.top_k ~cmp:I.compare_weight k
                              (List.filter (fun e -> I.contains e q) lives)))
                    in
                    let got =
                      List.sort compare
                        (List.map
                           (fun (e : I.t) -> e.I.id)
                           resp.Svc.Response.answers)
                    in
                    if got <> want then
                      fail p phase
                        "replica answer at seq %d differs from the oracle" tok
                  end)
        end
      done;
      (* Heal every fault and require convergence: all live nodes catch
         up to the head and agree with the from-scratch oracle. *)
      (if phase = "install" then G.rejoin g victim
       else if phase = "ack" then heal_acks ());
      if G.settle ~max_ticks:5000 g then incr converged
      else fail p phase "group did not converge after healing";
      let want = oracle_ids (G.head g) in
      for i = 0 to G.nodes g - 1 do
        if G.alive g i then begin
          let got =
            List.sort compare
              (List.map (fun (e : I.t) -> e.I.id) (G.R.live (G.node g i)))
          in
          if got <> want then
            fail p phase "node %d's surviving set differs from the oracle" i
        end
      done;
      for i = 0 to G.nodes g - 1 do
        installs_total := !installs_total + G.R.installs (G.node g i)
      done
    done;
    Printf.printf
      "swept %d fault points: %d converged, %d read-your-writes probes, %d \
       snapshot installs, %d failovers\n"
      !swept !converged !rw_checks !installs_total !failovers_total;
    Printf.printf "phase coverage:%s\n"
      (String.concat ""
         (List.map
            (fun ph ->
              Printf.sprintf " %s=%d" ph
                (Option.value ~default:0 (Hashtbl.find_opt phase_hits ph)))
            (Array.to_list phases)));
    (* Hard failures: this bench exists to catch them. *)
    if !violations > 0 then
      die "%d consistency violations across %d fault points" !violations !swept;
    if !converged < !swept then
      die "%d fault points failed to recover" (!swept - !converged);
    Array.iter
      (fun ph ->
        if not (Hashtbl.mem phase_hits ph) then
          die "no fault point landed in the %s phase (too few points?)" ph)
      phases;
    if !installs_total = 0 then
      die "no snapshot install was exercised (retention too large?)";
    if !failovers_total = 0 then die "no failover was exercised";
    let shipped = Svc.Metrics.Counter.get metrics.Svc.Metrics.repl_frames_shipped in
    let acked = Svc.Metrics.Counter.get metrics.Svc.Metrics.repl_frames_acked in
    if shipped = 0 || acked = 0 then
      die "shipping never happened (%d shipped, %d acked)" shipped acked;
    Printf.printf
      "repl-bench: OK (%d fault points, %d recoveries, %d installs, %d \
       failovers, 0 violations)\n"
      !swept !converged !installs_total !failovers_total
  in
  Cmd.v
    (Cmd.info "repl-bench"
       ~doc:
         "Sweep seeded fault points over a replicated ingestion stream: WAL \
          frames ship to read replicas over a lossy, duplicating, \
          reordering transport; partitions force snapshot-install catch-up; \
          injected primary failures force promotion.  At every point the \
          group must reconverge, every replica answer must equal the \
          from-scratch oracle at its applied sequence, reads honouring a \
          seq token must never be stale, and no quorum-acked write may be \
          lost across failover.  Hard-fails on any violation or an \
          uncovered fault phase (ship/ack/install/promote).")
    Term.(
      const run $ base_arg $ k_arg $ seed_arg $ updates_arg $ points_arg
      $ replicas_arg $ quorum_arg $ buffer_cap_arg $ fanout_arg $ retain_arg
      $ clean_arg)

(* --- cache-bench --- *)

let cache_bench_cmd =
  let module IInst = Topk_interval.Instances in
  let module I = Topk_interval.Interval in
  let module Rng = Topk_util.Rng in
  let module Transport = Topk_repl.Transport in
  let module G = Topk_repl.Group.Make (IInst.Topk_t2) in
  let module Svc = Topk_service in
  let module Cache = Topk_cache.Cache in
  let base_arg =
    Arg.(
      value & opt int 400
      & info [ "n" ] ~docv:"N" ~doc:"Base elements shared by every node.")
  in
  let queries_arg =
    Arg.(
      value & opt int 2400
      & info [ "queries" ] ~docv:"Q" ~doc:"Reads replayed against the group.")
  in
  let distinct_arg =
    Arg.(
      value & opt int 24
      & info [ "distinct" ] ~docv:"D"
          ~doc:"Distinct query points in the Zipf-sampled pool.")
  in
  let theta_arg =
    Arg.(
      value & opt float 1.2
      & info [ "theta" ] ~docv:"THETA"
          ~doc:"Zipf skew exponent over the query pool (> 0).")
  in
  let write_every_arg =
    Arg.(
      value & opt int 40
      & info [ "write-every" ] ~docv:"W"
          ~doc:"Interleave one insert/delete every W reads.")
  in
  let replicas_arg =
    Arg.(
      value & opt int 2
      & info [ "replicas" ] ~docv:"R" ~doc:"Read replicas in the group (>= 2).")
  in
  let min_hit_rate_arg =
    Arg.(
      value & opt float 0.5
      & info [ "min-hit-rate" ] ~docv:"H"
          ~doc:"Hard-fail below this cache hit rate (cached pass only).")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Run only the uncached baseline pass (oracle checks still \
             apply; hit-rate and I/O-reduction gates are skipped).")
  in
  let clean_arg =
    Arg.(
      value & flag
      & info [ "clean" ]
          ~doc:
            "Disable randomized frame faults on the replication \
             transport; the mid-run failover still happens.")
  in
  let run n k seed queries distinct theta write_every replicas min_hit_rate
      no_cache clean =
    validate_common ~n ~k;
    require_pos "queries" queries;
    require_pos "distinct" distinct;
    require_pos "write-every" write_every;
    require_pos_float "theta" theta;
    if replicas < 2 then die "replicas must be >= 2 (got %d)" replicas;
    if queries < 4 then die "queries must be >= 4 (got %d)" queries;
    if min_hit_rate < 0.0 || min_hit_rate > 1.0 then
      die "min-hit-rate must be in [0, 1] (got %g)" min_hit_rate;
    Printf.printf
      "cache-bench: n=%d queries=%d distinct=%d theta=%g write-every=%d \
       replicas=%d%s\n%!"
      n queries distinct theta write_every replicas
      (if no_cache then " (no-cache)" else "");
    let params = IInst.params () in
    let mk_elem rng id =
      let lo = Rng.uniform rng in
      let hi = Float.min 1.0 (lo +. 0.02 +. (0.3 *. Rng.uniform rng)) in
      (* Strictly increasing distinct weights: the oracle's top-k is
         unique, so answers compare by id set. *)
      I.make ~id ~lo ~hi ~weight:(float_of_int id +. (0.5 *. Rng.uniform rng)) ()
    in
    let base =
      let rng = Rng.create seed in
      Array.init n (fun i -> mk_elem rng (i + 1))
    in
    (* Zipf sampler over ranks 1..distinct: P(r) proportional to
       1/r^theta, inverted by scanning the cumulative weights. *)
    let zipf_cum =
      let c = Array.make distinct 0.0 in
      let acc = ref 0.0 in
      for r = 0 to distinct - 1 do
        acc := !acc +. (1.0 /. Float.pow (float_of_int (r + 1)) theta);
        c.(r) <- !acc
      done;
      c
    in
    let zipf rng =
      let u = Rng.uniform rng *. zipf_cum.(distinct - 1) in
      let i = ref 0 in
      while !i < distinct - 1 && zipf_cum.(!i) < u do
        incr i
      done;
      !i
    in
    let qpool =
      let rng = Rng.create (seed lxor 0x51f3) in
      Array.init distinct (fun _ -> Rng.uniform rng)
    in
    let failover_at = queries / 2 in
    (* One full replay of the identical query/update schedule; the two
       passes differ only in whether the group carries an answer
       cache, so their charged read I/O is directly comparable. *)
    let sweep ~use_cache =
      let metrics = Svc.Metrics.create () in
      let cache =
        if use_cache then
          Some
            (Cache.create ~stripes:8
               ~capacity:(4 * distinct)
               ~min_cost:1
               ~on_evict:(fun () ->
                 Svc.Metrics.Counter.incr metrics.Svc.Metrics.cache_evictions)
               ())
        else None
      in
      let plan =
        if clean then Transport.clean ~seed
        else Transport.plan ~drop:0.05 ~delay_max:1 ~seed ()
      in
      let g =
        G.create ~params ~buffer_cap:16 ~fanout:2 ~retain:64 ~plan ~metrics
          ~quorum:2 ~max_pump:120 ?cache ~name:"cache" ~replicas base
      in
      let violations = ref 0 in
      let fail fmt =
        Printf.ksprintf
          (fun msg ->
            incr violations;
            if !violations <= 5 then
              Printf.printf "  VIOLATION (%scached): %s\n%!"
                (if use_cache then "" else "un")
                msg)
          fmt
      in
      let hist = ref [] and hist_len = ref 0 in
      let push op =
        hist := op :: !hist;
        incr hist_len
      in
      let truncate_to h =
        while !hist_len > h do
          hist := List.tl !hist;
          decr hist_len
        done
      in
      let live_at r =
        let tbl = Hashtbl.create (2 * n) in
        Array.iter (fun (e : I.t) -> Hashtbl.replace tbl e.I.id e) base;
        List.iteri
          (fun i ((ins, e) : bool * I.t) ->
            if i + 1 <= r then
              if ins then Hashtbl.replace tbl e.I.id e
              else Hashtbl.remove tbl e.I.id)
          (List.rev !hist);
        tbl
      in
      let wrng = Rng.create (seed lxor 0x9e37)
      and qrng = Rng.create (seed lxor 0x7f4a) in
      let last_synced = ref 0 and synced_seqs = ref [] in
      let next_id = ref (n + 1) in
      let del_pool = ref [] in
      let reads = ref 0
      and rw_probes = ref 0
      and served_hits = ref 0
      and read_ios = ref 0
      and failovers = ref 0 in
      for i = 1 to queries do
        if i = failover_at then begin
          (match G.fail_primary g with
          | _new_primary ->
              incr failovers;
              let h = G.head g in
              List.iter
                (fun s ->
                  if s > h then
                    fail "synced write seq %d lost by failover (head %d)" s h)
                !synced_seqs;
              truncate_to h;
              synced_seqs := List.filter (fun s -> s <= h) !synced_seqs;
              last_synced := min !last_synced h;
              del_pool :=
                Hashtbl.fold
                  (fun id e acc -> if id > n then e :: acc else acc)
                  (live_at h) []
          | exception Invalid_argument msg -> fail "failover refused: %s" msg);
          ignore (G.settle ~max_ticks:4000 g)
        end;
        if i mod write_every = 0 then begin
          let ins = Rng.uniform wrng <= 0.7 || !del_pool = [] in
          let outcome =
            if ins then begin
              let e = mk_elem wrng !next_id in
              incr next_id;
              del_pool := e :: !del_pool;
              push (true, e);
              G.insert g e
            end
            else begin
              let j = Rng.int wrng (List.length !del_pool) in
              let e = List.nth !del_pool j in
              del_pool := List.filteri (fun l _ -> l <> j) !del_pool;
              push (false, e);
              G.delete g e
            end
          in
          if G.write_seq outcome <> !hist_len then
            fail "write got seq %d, issued %d" (G.write_seq outcome) !hist_len;
          if G.synced outcome then begin
            synced_seqs := !hist_len :: !synced_seqs;
            last_synced := !hist_len
          end;
          (* Let the replicas catch up so the hot keys re-warm at the
             new head; the cache must drop to the recomputed answers
             on its own — staleness here is a hard violation below. *)
          ignore (G.settle ~max_ticks:4000 g)
        end;
        let q = qpool.(zipf qrng) in
        let consistency, floor_tok =
          if i mod 7 = 0 && !last_synced > 0 then begin
            incr rw_probes;
            (Svc.Consistency.At_least !last_synced, !last_synced)
          end
          else if i mod 11 = 0 then (Svc.Consistency.Max_lag 3, 0)
          else (Svc.Consistency.Any, 0)
        in
        incr reads;
        match G.read ~consistency g q ~k with
        | None ->
            fail "read %d refused (%s)" i
              (Svc.Consistency.to_string consistency)
        | Some resp -> (
            (match resp.Svc.Response.status with
            | Svc.Response.Complete -> ()
            | st ->
                fail "read %d not complete: %s" i
                  (Svc.Response.status_string st));
            match Svc.Response.seq_token resp with
            | None -> fail "read %d lost its seq token" i
            | Some tok ->
                if tok > !hist_len then
                  fail
                    "read %d answered at seq %d beyond the surviving \
                     timeline %d (a fenced pre-failover answer leaked)"
                    i tok !hist_len
                else if tok < floor_tok then
                  fail "stale read %d: token %d under floor %d" i tok
                    floor_tok
                else begin
                  let lives =
                    Hashtbl.fold (fun _ e a -> e :: a) (live_at tok) []
                  in
                  let want =
                    List.sort compare
                      (List.map
                         (fun (e : I.t) -> e.I.id)
                         (Topk_util.Select.top_k ~cmp:I.compare_weight k
                            (List.filter (fun e -> I.contains e q) lives)))
                  in
                  let got =
                    List.sort compare
                      (List.map
                         (fun (e : I.t) -> e.I.id)
                         resp.Svc.Response.answers)
                  in
                  if got <> want then
                    fail
                      "read %d differs from the from-scratch oracle at seq \
                       %d (%s)"
                      i tok
                      (Svc.Consistency.to_string consistency);
                  let ios =
                    (Svc.Response.cost resp).Topk_em.Stats.ios
                  in
                  read_ios := !read_ios + ios;
                  if resp.Svc.Response.worker = -1 then begin
                    incr served_hits;
                    if ios <> 0 then
                      fail "cache hit on read %d charged %d I/Os" i ios
                  end
                end)
      done;
      if not (G.settle ~max_ticks:8000 g) then
        fail "group did not converge after the replay";
      let want_final =
        List.sort compare
          (Hashtbl.fold (fun id _ a -> id :: a) (live_at !hist_len) [])
      in
      for j = 0 to G.nodes g - 1 do
        if G.alive g j then begin
          let got =
            List.sort compare
              (List.map (fun (e : I.t) -> e.I.id) (G.R.live (G.node g j)))
          in
          if got <> want_final then
            fail "node %d's surviving set differs from the oracle" j
        end
      done;
      let hits = Svc.Metrics.Counter.get metrics.Svc.Metrics.cache_hits in
      let misses = Svc.Metrics.Counter.get metrics.Svc.Metrics.cache_misses in
      ( !violations,
        !reads,
        !rw_probes,
        !served_hits,
        !read_ios,
        !failovers,
        hits,
        misses )
    in
    let v_u, reads_u, probes_u, _, ios_u, fo_u, _, _ =
      sweep ~use_cache:false
    in
    Printf.printf
      "uncached: %d reads (%d read-your-writes probes), %d charged read \
       I/Os, %d failover\n%!"
      reads_u probes_u ios_u fo_u;
    if no_cache then begin
      if v_u > 0 then die "%d violations in the uncached pass" v_u;
      if fo_u <> 1 then die "expected exactly 1 failover, got %d" fo_u;
      Printf.printf "cache-bench: OK (uncached pass only, 0 violations)\n"
    end
    else begin
      let v_c, reads_c, probes_c, hits_c, ios_c, fo_c, m_hits, m_misses =
        sweep ~use_cache:true
      in
      let lookups = m_hits + m_misses in
      let rate =
        if lookups = 0 then 0.0
        else float_of_int m_hits /. float_of_int lookups
      in
      Printf.printf
        "cached:   %d reads (%d read-your-writes probes), %d charged read \
         I/Os, %d failover\n"
        reads_c probes_c ios_c fo_c;
      Printf.printf "          %d hits / %d lookups (rate %.3f), %d served \
                     with zero I/O\n%!"
        m_hits lookups rate hits_c;
      if v_u > 0 then die "%d violations in the uncached pass" v_u;
      if v_c > 0 then die "%d violations in the cached pass" v_c;
      if fo_u <> 1 || fo_c <> 1 then
        die "expected exactly 1 failover per pass (got %d/%d)" fo_u fo_c;
      if hits_c = 0 then die "the cache never served a hit";
      if hits_c <> m_hits then
        die "metrics disagree with served hits (%d counted, %d served)"
          m_hits hits_c;
      if rate < min_hit_rate then
        die "hit rate %.3f below the required %.3f" rate min_hit_rate;
      if ios_c >= ios_u then
        die "caching did not reduce charged read I/O (%d cached >= %d \
             uncached)"
          ios_c ios_u;
      Printf.printf
        "cache-bench: OK (hit rate %.3f, read I/O %d -> %d, -%.1f%%, 0 \
         violations)\n"
        rate ios_u ios_c
        (100.0 *. (1.0 -. (float_of_int ios_c /. float_of_int ios_u)))
    end
  in
  Cmd.v
    (Cmd.info "cache-bench"
       ~doc:
         "Replay a Zipf-skewed query stream against a replicated group with \
          the epoch-consistent answer cache on, interleaved with ingestion \
          and one primary failover, then replay the identical schedule \
          uncached.  Every answer (hit or miss) must equal the from-scratch \
          oracle at its seq token, read-your-writes probes must never be \
          stale, cache hits must charge zero I/O, the skewed run must reach \
          the required hit rate, and total charged read I/O must drop \
          versus the uncached pass.  Hard-fails on any violation.")
    Term.(
      const run $ base_arg $ k_arg $ seed_arg $ queries_arg $ distinct_arg
      $ theta_arg $ write_every_arg $ replicas_arg $ min_hit_rate_arg
      $ no_cache_arg $ clean_arg)

(* --- sched-bench --- *)

let sched_bench_cmd =
  let module Svc = Topk_service in
  let module Lane = Topk_service.Lane in
  let module Sched = Topk_service.Sched in
  let module Stats = Topk_em.Stats in
  let module Rng = Topk_util.Rng in
  let module IInst = Topk_interval.Instances in
  let module I = Topk_interval.Interval in
  let module Ing = Topk_ingest.Ingest.Make (IInst.Topk_t2) in
  let n_arg =
    Arg.(
      value & opt int 1500
      & info [ "n" ] ~docv:"N" ~doc:"Base elements in the live index.")
  in
  let rounds_arg =
    Arg.(
      value & opt int 25
      & info [ "rounds" ] ~docv:"R"
          ~doc:"Update/storm/query rounds per pass.")
  in
  let qpr_arg =
    Arg.(
      value & opt int 16
      & info [ "queries-per-round" ] ~docv:"Q"
          ~doc:"Interactive queries issued per round.")
  in
  let upr_arg =
    Arg.(
      value & opt int 160
      & info [ "updates-per-round" ] ~docv:"U"
          ~doc:"Inserts/deletes applied per round (feeds the merge storm).")
  in
  let storm_arg =
    Arg.(
      value & opt int 8
      & info [ "storm" ] ~docv:"S"
          ~doc:"Synthetic batch-lane storm tasks submitted per round.")
  in
  let storm_ms_arg =
    Arg.(
      value & opt float 3.0
      & info [ "storm-ms" ] ~docv:"MS"
          ~doc:"Wall-clock milliseconds each storm task burns.")
  in
  let distinct_arg =
    Arg.(
      value & opt int 16
      & info [ "distinct" ] ~docv:"D"
          ~doc:"Distinct query points in the Zipf-sampled pool.")
  in
  let theta_arg =
    Arg.(
      value & opt float 1.2
      & info [ "theta" ] ~docv:"THETA"
          ~doc:"Zipf skew exponent over the query pool (> 0).")
  in
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"W" ~doc:"Worker domains in the pool.")
  in
  let buffer_cap_arg =
    Arg.(
      value & opt int 128
      & info [ "buffer-cap" ] ~docv:"C" ~doc:"Update-log capacity.")
  in
  let fanout_arg =
    Arg.(
      value & opt int 2
      & info [ "fanout" ] ~docv:"F" ~doc:"Merge arity per level (>= 2).")
  in
  let only_arg =
    Arg.(
      value
      & opt (enum [ ("both", `Both); ("lanes", `Lanes); ("unified", `Unified) ])
          `Both
      & info [ "only" ] ~docv:"PASS"
          ~doc:
            "Run only one pass: $(b,lanes) (isolated), $(b,unified) \
             (single-queue baseline), or $(b,both) (default; also gates \
             the p99 comparison).")
  in
  let run n k seed rounds qpr upr storm storm_ms distinct theta workers
      buffer_cap fanout only block =
    validate_common ~n ~k;
    require_pos "rounds" rounds;
    require_pos "queries-per-round" qpr;
    require_pos "updates-per-round" upr;
    require_pos "storm" storm;
    require_pos "distinct" distinct;
    require_pos "workers" workers;
    require_pos "buffer-cap" buffer_cap;
    require_pos_float "storm-ms" storm_ms;
    require_pos_float "theta" theta;
    if fanout < 2 then die "fanout must be >= 2 (got %d)" fanout;
    with_model block (fun () ->
        Printf.printf
          "sched-bench: n=%d rounds=%d queries/round=%d updates/round=%d \
           storm=%dx%.1fms workers=%d k=%d buffer-cap=%d fanout=%d\n%!"
          n rounds qpr upr storm storm_ms workers k buffer_cap fanout;
        (* The Zipf query pool is fixed up front, shared by both
           passes. *)
        let qpool =
          let qrng = Rng.create (seed lxor 0x51f3) in
          Array.init distinct (fun _ -> Rng.uniform qrng)
        in
        let zipf_cum =
          let c = Array.make distinct 0.0 in
          let acc = ref 0.0 in
          for r = 0 to distinct - 1 do
            acc := !acc +. (1.0 /. Float.pow (float_of_int (r + 1)) theta);
            c.(r) <- !acc
          done;
          c
        in
        let zipf rng =
          let u = Rng.uniform rng *. zipf_cum.(distinct - 1) in
          let i = ref 0 in
          while !i < distinct - 1 && zipf_cum.(!i) < u do
            incr i
          done;
          !i
        in
        (* Strictly increasing distinct weights: the oracle's top-k is
           unique, so answers compare by id list. *)
        let mk_elem rng id =
          let lo = Rng.uniform rng in
          let hi = Float.min 1.0 (lo +. 0.02 +. (0.3 *. Rng.uniform rng)) in
          I.make ~id ~lo ~hi
            ~weight:(float_of_int id +. (0.5 *. Rng.uniform rng))
            ()
        in
        let ids l = List.map (fun (e : I.t) -> e.I.id) l in
        let p99 latencies =
          let a = Array.of_list latencies in
          Array.sort Float.compare a;
          let len = Array.length a in
          a.(max 0 (int_of_float (ceil (0.99 *. float_of_int len)) - 1))
        in
        let aging_bound =
          let cfg = Sched.default_config () in
          cfg.Sched.aging_rounds + Lane.count
        in
        (* One full pass over the identical seeded schedule.  The
           surviving set is fixed caller-side before each round's query
           burst (merges only restructure runs, never change the
           answer), so every pooled query racing the storm must still
           equal the from-scratch oracle. *)
        let run_pass ~unified =
          let label = if unified then "unified" else "lanes" in
          let lanes_cfg =
            if unified then Sched.unified_config () else Sched.default_config ()
          in
          (* batch_max 1: every dequeue is a scheduling decision, so
             the weighted-fair policy (or the FIFO baseline) is what's
             actually measured — a bigger batch would let one worker
             swallow the whole storm in a single grant. *)
          let pool = Svc.Executor.create ~workers ~batch_max:1 ~lanes:lanes_cfg () in
          let m = Svc.Executor.metrics pool in
          let rng = Rng.create seed in
          let base = Array.init n (fun i -> mk_elem rng (i + 1)) in
          let t =
            Ing.create ~params:(IInst.params ()) ~buffer_cap ~fanout ~pool base
          in
          let live = Hashtbl.create (2 * n) in
          Array.iter (fun (e : I.t) -> Hashtbl.replace live e.I.id e) base;
          let next_id = ref (n + 1) in
          let one_update () =
            let insert () =
              let e = mk_elem rng !next_id in
              incr next_id;
              Hashtbl.replace live e.I.id e;
              Ing.insert t e
            in
            (* 70% inserts, the rest delete a live element (falling
               back to an insert when the bounded probe misses). *)
            if Rng.uniform rng <= 0.7 then insert ()
            else begin
              let victim = ref None in
              let tries = ref 0 in
              while !victim = None && !tries < 64 do
                incr tries;
                let id = 1 + Rng.int rng (!next_id - 1) in
                match Hashtbl.find_opt live id with
                | Some e -> victim := Some e
                | None -> ()
              done;
              match !victim with
              | Some e ->
                  Hashtbl.remove live e.I.id;
                  Ing.delete t e
              | None -> insert ()
            end
          in
          let oracle_memo = Array.make distinct None in
          let oracle qi =
            match oracle_memo.(qi) with
            | Some ans -> ans
            | None ->
                let q = qpool.(qi) in
                let ans =
                  ids
                    (Topk_util.Select.top_k ~cmp:I.compare_weight k
                       (Hashtbl.fold
                          (fun _ e acc ->
                            if I.contains e q then e :: acc else acc)
                          live []))
                in
                oracle_memo.(qi) <- Some ans;
                ans
          in
          let spin () =
            let stop = Unix.gettimeofday () +. (storm_ms /. 1e3) in
            while Unix.gettimeofday () < stop do
              ignore (Sys.opaque_identity ())
            done
          in
          (* Warm the pool (domain spawn is ms-scale) so startup
             doesn't land on the first measured queries. *)
          ignore
            (Svc.Future.await
               (Svc.Executor.submit_task pool ~lane:Lane.Interactive
                  ~name:"warmup" (fun () -> ()))
              : unit Svc.Response.t);
          let latencies = ref [] in
          let mismatched = ref 0 and checked = ref 0 in
          let maint_done = ref 0 in
          let maint_futs = ref [] in
          for _round = 1 to rounds do
            (* Fix this round's content, feeding the merge storm... *)
            for _ = 1 to upr do
              one_update ()
            done;
            Array.fill oracle_memo 0 distinct None;
            (* ...pile synthetic batch work in front of the queries... *)
            for _ = 1 to storm do
              ignore
                (Svc.Executor.submit_task pool ~name:"storm" spin
                  : unit Svc.Response.t Svc.Future.t)
            done;
            (* ...keep the maintenance heartbeat alive... *)
            maint_futs :=
              Svc.Executor.submit_task pool ~lane:Lane.Maintenance
                ~name:"scrub" (fun () -> ())
              :: !maint_futs;
            (* ...and race the interactive stream against all of it.
               Each query is awaited before the next is issued, so its
               latency measures queueing behind batch work plus its own
               execution — the thing lane isolation protects — rather
               than the round's makespan, which is work-conserving and
               identical under any scheduling policy. *)
            for _ = 1 to qpr do
              let qi = zipf rng in
              let slot = ref [] in
              let fut =
                Svc.Executor.submit_task pool ~lane:Lane.Interactive
                  ~name:"query" (fun () -> slot := Ing.query t qpool.(qi) ~k)
              in
              let r = Svc.Future.await fut in
              incr checked;
              (match r.Svc.Response.status with
              | Svc.Response.Complete ->
                  if ids !slot <> oracle qi then begin
                    incr mismatched;
                    if !mismatched <= 3 then
                      Printf.printf
                        "  MISMATCH (%s pass, q=%g): got %d ids, oracle %d\n"
                        label qpool.(qi)
                        (List.length !slot)
                        (List.length (oracle qi))
                  end
              | _ -> incr mismatched);
              latencies := r.Svc.Response.latency :: !latencies
            done
          done;
          Ing.freeze t;
          Svc.Executor.drain pool;
          List.iter
            (fun f ->
              match (Svc.Future.await f).Svc.Response.status with
              | Svc.Response.Complete -> incr maint_done
              | _ -> ())
            !maint_futs;
          let pool_ios = (Svc.Executor.aggregate_stats pool).Stats.ios in
          Svc.Executor.shutdown pool;
          let get c = Svc.Metrics.Counter.get c in
          let lane_ios =
            Array.map get m.Svc.Metrics.lane_ios |> Array.to_list
          in
          let maint_wait =
            Svc.Metrics.Histogram.max_value
              m.Svc.Metrics.lane_wait_rounds.(Lane.index Lane.Maintenance)
          in
          let merges = get m.Svc.Metrics.merges in
          let q99 = p99 !latencies in
          Printf.printf
            "pass %-7s: %d/%d exact, interactive p99 %.2fms, merges=%d, \
             maintenance %d/%d done (max wait %d rounds), lane I/O %s = \
             pool %d\n%!"
            label
            (!checked - !mismatched)
            !checked (q99 *. 1e3) merges !maint_done rounds maint_wait
            (String.concat "+" (List.map string_of_int lane_ios))
            pool_ios;
          (* Hard gates that apply to each pass on its own. *)
          if !mismatched > 0 then
            die "%s pass: %d answers disagree with the from-scratch oracle"
              label !mismatched;
          if !maint_done <> rounds then
            die "%s pass: %d of %d maintenance tasks starved (never ran)"
              label (rounds - !maint_done) rounds;
          if merges = 0 then
            die "%s pass: the update stream never merged a level" label;
          if List.fold_left ( + ) 0 lane_ios <> pool_ios then
            die
              "%s pass: per-lane charged I/O (%s) does not sum to the \
               pool's aggregate (%d)"
              label
              (String.concat "+" (List.map string_of_int lane_ios))
              pool_ios;
          if (not unified) && maint_wait > aging_bound then
            die
              "lanes pass: a maintenance task waited %d dispatch rounds \
               (aging bound %d)"
              maint_wait aging_bound;
          q99
        in
        match only with
        | `Lanes ->
            ignore (run_pass ~unified:false : float);
            Printf.printf
              "sched-bench: OK (%d/%d exact, %d/%d maintenance on time, \
               lane I/O exact)\n"
              (rounds * qpr) (rounds * qpr) rounds rounds
        | `Unified ->
            ignore (run_pass ~unified:true : float);
            Printf.printf
              "sched-bench: OK (%d/%d exact, %d/%d maintenance on time, \
               lane I/O exact)\n"
              (rounds * qpr) (rounds * qpr) rounds rounds
        | `Both ->
            let p99_unified = run_pass ~unified:true in
            let p99_lanes = run_pass ~unified:false in
            Printf.printf
              "isolation: interactive p99 %.2fms (unified) -> %.2fms \
               (lanes), %+.1f%%\n"
              (p99_unified *. 1e3) (p99_lanes *. 1e3)
              (100.0 *. ((p99_lanes /. Float.max 1e-9 p99_unified) -. 1.0));
            if not (p99_lanes < p99_unified) then
              die
                "lane isolation did not improve interactive p99 under the \
                 merge storm (%.2fms lanes vs %.2fms unified)"
                (p99_lanes *. 1e3) (p99_unified *. 1e3);
            Printf.printf
              "sched-bench: OK (%d/%d exact per pass, %d/%d maintenance on \
               time, lane I/O exact, interactive p99 improved)\n"
              (rounds * qpr) (rounds * qpr) rounds rounds)
  in
  Cmd.v
    (Cmd.info "sched-bench"
       ~doc:
         "Race a Zipf-skewed interactive query stream against a \
          live-ingesting index under a batch-lane merge storm and a \
          maintenance heartbeat, twice on the identical seeded schedule: \
          once on the single-queue (unified) baseline, once with QoS lane \
          isolation.  Hard-fails unless every answer matches the \
          from-scratch oracle on both passes, interactive p99 improves \
          with lanes, no maintenance task starves (bounded max wait in \
          dispatch rounds), and per-lane charged I/O sums exactly to the \
          pool's EM aggregate.")
    Term.(
      const run $ n_arg $ k_arg $ seed_arg $ rounds_arg $ qpr_arg $ upr_arg
      $ storm_arg $ storm_ms_arg $ distinct_arg $ theta_arg $ workers_arg
      $ buffer_cap_arg $ fanout_arg $ only_arg $ block_arg)

(* --- sample-check --- *)

let sample_check_cmd =
  let delta_arg =
    Arg.(
      value & opt float 0.1
      & info [ "delta" ] ~docv:"DELTA" ~doc:"Lemma 1 failure budget.")
  in
  let trials_arg =
    Arg.(value & opt int 500 & info [ "trials" ] ~docv:"T" ~doc:"Trials.")
  in
  let run n k seed delta trials =
    validate_common ~n ~k;
    require_pos "trials" trials;
    require_pos_float "delta" delta;
    if k > n then die "k must be <= n (got k=%d, n=%d)" k n;
    let module RS = Topk_core.Rank_sampling in
    let rng = Topk_util.Rng.create seed in
    let ground = Array.init n (fun i -> i) in
    Topk_util.Rng.shuffle rng ground;
    let p = RS.min_p ~k ~delta in
    let fail = ref 0 in
    for _ = 1 to trials do
      match RS.lemma1_trial rng ~cmp:Int.compare ~k ~p ground with
      | RS.Ok_rank -> ()
      | _ -> incr fail
    done;
    Printf.printf
      "Lemma 1: n=%d k=%d delta=%g p=%g -> %d/%d failures (rate %.4f)\n" n k
      delta p !fail trials
      (float_of_int !fail /. float_of_int trials)
  in
  Cmd.v
    (Cmd.info "sample-check" ~doc:"Empirically check Lemma 1's rank bound.")
    Term.(const run $ n_arg $ k_arg $ seed_arg $ delta_arg $ trials_arg)

let () =
  let info =
    Cmd.info "topk" ~version:"1.0.0"
      ~doc:
        "Top-k indexing via general reductions (Rahul & Tao, PODS'16): \
         build structures over synthetic workloads, answer queries, \
         report EM-model costs."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            interval_cmd;
            enclosure_cmd;
            dominance_cmd;
            halfplane_cmd;
            circular_cmd;
            sample_check_cmd;
            serve_bench_cmd;
            chaos_bench_cmd;
            shard_bench_cmd;
            trace_cmd;
            ingest_bench_cmd;
            crash_bench_cmd;
            repl_bench_cmd;
            cache_bench_cmd;
            sched_bench_cmd;
          ]))
