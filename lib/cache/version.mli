(** The version a cached answer was computed at.

    Every certified answer in the system is exact over some snapshot,
    and the serving layers already name those snapshots: an ingest
    wrapper's op-sequence numbers ({!Topk_ingest.Ingest.Make.view_seq},
    [last_seq]), a replica's applied sequence, a replication group's
    election term.  A version pairs the two so cached answers inherit
    invalidation from machinery that exists anyway:

    - [seq] is the newest op sequence folded into the snapshot the
      answer was computed over ([0] for a static, never-updated
      instance).
    - [term] is the failover epoch.  A promoted replica may have
      {e truncated} unreplicated writes, so sequence numbers are only
      comparable within one term; bumping the term fences every
      pre-failover entry at once.

    Versions order lexicographically by [(term, seq)]. *)

type t = private { term : int; seq : int }

val make : term:int -> seq:int -> t
(** @raise Invalid_argument if either component is negative. *)

val static : t
(** [{term = 0; seq = 0}] — the version of a static instance.  An
    answer computed over a structure that never updates is valid
    forever. *)

val term : t -> int
val seq : t -> int

val compare : t -> t -> int
(** Lexicographic on [(term, seq)]. *)

val equal : t -> t -> bool

val newer_than : t -> t -> bool
(** [newer_than a b] is [compare a b > 0]. *)

val bump_term : t -> t
(** Same sequence, next term — what a failover does to the live
    version. *)

val pp : Format.formatter -> t -> unit
