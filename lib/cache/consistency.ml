type t = Any | At_least of int | Pinned of int | Max_lag of int

let validate = function
  | Any -> ()
  | At_least s when s < 0 ->
      invalid_arg
        (Printf.sprintf "Consistency: At_least seq must be >= 0 (got %d)" s)
  | Pinned p when p < 0 ->
      invalid_arg
        (Printf.sprintf "Consistency: Pinned version must be >= 0 (got %d)" p)
  | Max_lag l when l < 0 ->
      invalid_arg
        (Printf.sprintf "Consistency: Max_lag must be >= 0 (got %d)" l)
  | At_least _ | Pinned _ | Max_lag _ -> ()

(* The one staleness rule shared by the answer cache and (through
   [min_seq]/[max_lag]) the replication router.  A cached entry
   computed at [entry] may serve a read whose live version is
   [current] only within the same term — a failover may have truncated
   history, so cross-term sequences are incomparable — and never from
   the future ([entry.seq <= current.seq]; such entries are themselves
   fenced leftovers).  Within that:

   - [Any] asks for the freshest consistent answer, so only an entry
     at exactly the live version may substitute for recomputing: with
     no staleness opt-in, cache-on must be answer-identical to
     cache-off at every instant.
   - [At_least s] is a read-your-writes token: any snapshot at or
     above [s] serves.
   - [Pinned p] demands the exact snapshot [p].
   - [Max_lag l] accepts up to [l] sequence numbers of staleness. *)
let admits ~current ~entry t =
  Version.term entry = Version.term current
  && Version.seq entry <= Version.seq current
  &&
  match t with
  | Any -> Version.seq entry = Version.seq current
  | At_least s -> Version.seq entry >= s
  | Pinned p -> Version.seq entry = p
  | Max_lag l -> Version.seq current - Version.seq entry <= l

(* Router projections: the weakest per-replica admission constraints
   implied by the level.  [Pinned] routes to a node that has at least
   reached the pin; serving the exact snapshot is the cache's job. *)
let min_seq = function
  | Any | Max_lag _ -> 0
  | At_least s -> s
  | Pinned p -> p

let max_lag = function
  | Any | At_least _ | Pinned _ -> None
  | Max_lag l -> Some l

let to_string = function
  | Any -> "any"
  | At_least s -> Printf.sprintf "at-least:%d" s
  | Pinned p -> Printf.sprintf "pinned:%d" p
  | Max_lag l -> Printf.sprintf "max-lag:%d" l

let pp ppf t = Format.pp_print_string ppf (to_string t)
