(** The one consistency vocabulary of the read path.

    Before this type existed the same idea was spelled three ways:
    the replication router took [?min_seq]/[?max_lag] optional
    arguments, epoch pins were ad-hoc [view] plumbing, and the answer
    cache needed its own staleness rule.  Every query entry point
    ({!Topk_service.Client}, [Scatter.query], [Group.read]) now takes
    one [Consistency.t], and the cache and the router interpret it
    through {!admits}, {!min_seq} and {!max_lag}. *)

type t =
  | Any
      (** No client-imposed recency token: serve the freshest
          consistent answer.  The cache may substitute an entry only
          at exactly the live version, so [Any] never weakens
          answers — cache-on is answer-identical to cache-off. *)
  | At_least of int
      (** Read-your-writes: the answering snapshot's sequence must be
          at or above the token (e.g. the [seq_token] of an
          acknowledged write). *)
  | Pinned of int
      (** Exactly the snapshot with this sequence (an ingest epoch's
          {!Topk_ingest.Ingest.Make.view_seq} or a replica seq). *)
  | Max_lag of int
      (** Bounded staleness: at most this many op sequences behind
          the live head. *)

val validate : t -> unit
(** @raise Invalid_argument on a negative token/lag. *)

val admits : current:Version.t -> entry:Version.t -> t -> bool
(** May an answer computed at [entry] serve a read issued when the
    live version is [current]?  Never across terms, never from the
    future; see the per-constructor documentation for the rest. *)

val min_seq : t -> int
(** The router's per-replica floor implied by this level. *)

val max_lag : t -> int option
(** The router's staleness bound implied by this level. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
