type t = { term : int; seq : int }

let make ~term ~seq =
  if term < 0 then
    invalid_arg (Printf.sprintf "Version.make: term must be >= 0 (got %d)" term);
  if seq < 0 then
    invalid_arg (Printf.sprintf "Version.make: seq must be >= 0 (got %d)" seq);
  { term; seq }

let static = { term = 0; seq = 0 }

let term t = t.term

let seq t = t.seq

let compare a b =
  match Int.compare a.term b.term with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let equal a b = compare a b = 0

let newer_than a b = compare a b > 0

let bump_term t = { t with term = t.term + 1 }

let pp ppf t = Format.fprintf ppf "t%d.s%d" t.term t.seq
