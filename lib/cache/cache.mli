(** Epoch-consistent certified answer cache.

    Memoizes the answer lists of completed top-k queries, keyed by
    [(instance name, canonical query key)] and tagged with the
    {!Version} they were computed at.  The paper keeps core-sets
    alive because recomputing a top-k answer is the expensive part;
    the same economics apply at serving time, and the ingest/
    replication layers already version every snapshot — so a cached
    answer is never "invalidated", it simply stops being {e servable}
    under the reader's {!Consistency} rule once the live version
    moves on (or the failover term bumps).

    Storage is striped: a key hashes to one of [stripes] independent
    mutex-protected hash tables, each with exact-LRU eviction and an
    optional TTL, so lookups of different hot keys never contend.

    The cache stores answers of one payload type ['v] (typically
    ['e list]); erasure across differently-typed instances is the
    caller's job (see {!Topk_service.Client}). *)

type 'v t

type 'v entry = {
  e_version : Version.t;  (** snapshot the answer was computed at *)
  e_k : int;  (** the k it was computed for *)
  e_len : int;  (** answers present; [< e_k] means the query exhausted
                    the matching set, so every rank is covered *)
  e_cost : int;  (** charged I/Os the original computation paid *)
  e_payload : 'v;
  e_inserted : float;
  mutable e_last_hit : float;
  mutable e_hits : int;
}

val create :
  ?stripes:int ->
  ?capacity:int ->
  ?ttl:float ->
  ?min_cost:int ->
  ?on_evict:(unit -> unit) ->
  unit ->
  'v t
(** [stripes] (default 8, rounded up to a power of two) independent
    lock domains; [capacity] (default 4096) total entries, split
    evenly across stripes; [ttl] an optional absolute entry lifetime
    in seconds; [min_cost] (default 1) the admission threshold — an
    answer whose charged I/O cost is below it is not worth caching
    and is {!admit}ted as [`Bypassed].  [on_evict] is called once per
    evicted or expired entry, outside any stripe lock; it must not
    call back into the cache's write path.
    @raise Invalid_argument on out-of-range parameters. *)

type 'v outcome =
  | Hit of 'v entry
      (** Servable: slice the payload to the requested [k].  The
          answer is exact at [e_version]; report that as the
          response's seq token. *)
  | Stale
      (** Present, but its version fails the reader's consistency
          rule — recompute rather than serve a wrong-era answer. *)
  | Miss

val find :
  'v t ->
  instance:string ->
  qkey:string ->
  current:Version.t ->
  ?consistency:Consistency.t ->
  k:int ->
  now:float ->
  unit ->
  'v outcome
(** Consult the cache.  [current] is the live version of the instance
    (its latest op seq and failover term); [consistency] (default
    {!Consistency.Any}) decides which entry versions may serve — see
    {!Consistency.admits}.  A [Hit] requires the stored entry to
    cover rank [k] (prefix serving).  Expired entries are reaped on
    the way.
    @raise Invalid_argument on an invalid consistency token. *)

val admit :
  'v t ->
  instance:string ->
  qkey:string ->
  version:Version.t ->
  k:int ->
  len:int ->
  cost:int ->
  now:float ->
  'v ->
  [ `Admitted | `Bypassed | `Superseded ]
(** Offer a completed answer.  [`Bypassed]: its [cost] is below the
    admission threshold.  [`Superseded]: an entry at a newer version
    (or the same version with [k] at least as large) is already
    present — a slow query racing a fast update never rolls the cache
    back.  Only {e complete} answers may be offered: a cutoff prefix
    is exact for the ranks it covers but [e_len < e_k] would wrongly
    claim exhaustion.
    @raise Invalid_argument on negative [k], [len] or [cost]. *)

val invalidate : 'v t -> instance:string -> qkey:string -> bool
(** Drop one key (true if present).  Rarely needed — version tagging
    invalidates implicitly — but useful for tests and manual flushes. *)

val clear : 'v t -> unit

val length : 'v t -> int

val stripe_count : 'v t -> int

val min_cost : 'v t -> int

type stats = {
  st_hits : int;
  st_misses : int;
  st_stale : int;  (** lookups refused by the consistency rule *)
  st_admits : int;
  st_bypasses : int;  (** admissions refused below the cost threshold *)
  st_evictions : int;  (** LRU evictions + TTL expirations *)
  st_entries : int;
}

val stats : 'v t -> stats

val hit_rate : 'v t -> float
(** Hits over all lookups (stale lookups count as misses). *)

val pp_stats : Format.formatter -> stats -> unit
