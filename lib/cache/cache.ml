(* Sharded-by-key, mutex-striped certified answer cache.

   Entries memoize the answer list of a completed top-k query, keyed
   by (instance name, canonical query key) and tagged with the
   {!Version} they were computed at.  The stripe a key lands on is a
   hash of the key, so concurrent lookups of different hot keys take
   different locks; one stripe's mutex is only ever held for a
   hashtable probe or an O(stripe) eviction scan, never across user
   code.

   Three design points, mirroring the paper's core-set economics:

   - {b Prefix serving.}  A top-k list is exact for every rank it
     covers, so an entry admitted at [k] answers any [k' <= k] as a
     certified prefix (and any [k'] at all when the list is shorter
     than its [k] — the query exhausted the matching set).  This is
     Lemma 2's nested-rank property lifted to the serving layer.

   - {b Cost-aware admission.}  Precomputed answers are worth keeping
     exactly when recomputing them is expensive; an answer whose
     traced charged I/O is below [min_cost] is refused ([`Bypassed])
     rather than allowed to evict a costlier one.

   - {b Version-tagged invalidation.}  An entry never "goes bad" — it
     stays exact at its version forever.  Whether it may {e serve} is
     the reader's {!Consistency} rule against the live version, so
     invalidation is free: publishing a new epoch or bumping the
     failover term makes old entries unservable without touching the
     cache. *)

type 'v entry = {
  e_version : Version.t;
  e_k : int;  (* the k the answer was computed for *)
  e_len : int;  (* answers actually present ([< e_k] = exhausted) *)
  e_cost : int;  (* charged I/Os the original computation paid *)
  e_payload : 'v;
  e_inserted : float;
  mutable e_last_hit : float;
  mutable e_hits : int;
}

type 'v slot = { mutable sl_entry : 'v entry; mutable sl_stamp : int }

type 'v stripe = {
  s_mutex : Mutex.t;
  s_tbl : (string, 'v slot) Hashtbl.t;
  mutable s_tick : int;  (* LRU clock: bumped on every hit/admit *)
}

type 'v t = {
  stripes : 'v stripe array;
  mask : int;
  per_stripe_cap : int;
  ttl : float option;
  min_cost : int;
  on_evict : (unit -> unit) option;
  (* stats *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  stale : int Atomic.t;
  admits : int Atomic.t;
  bypasses : int Atomic.t;
  evictions : int Atomic.t;
}

type stats = {
  st_hits : int;
  st_misses : int;
  st_stale : int;
  st_admits : int;
  st_bypasses : int;
  st_evictions : int;
  st_entries : int;
}

let rec pow2_at_least n p = if p >= n then p else pow2_at_least n (2 * p)

let create ?(stripes = 8) ?(capacity = 4096) ?ttl ?(min_cost = 1) ?on_evict ()
    =
  if stripes < 1 then
    invalid_arg
      (Printf.sprintf "Cache.create: stripes must be >= 1 (got %d)" stripes);
  if capacity < 1 then
    invalid_arg
      (Printf.sprintf "Cache.create: capacity must be >= 1 (got %d)" capacity);
  (match ttl with
  | Some s when not (s > 0.) ->
      invalid_arg (Printf.sprintf "Cache.create: ttl must be positive (got %g)" s)
  | _ -> ());
  if min_cost < 0 then
    invalid_arg
      (Printf.sprintf "Cache.create: min_cost must be >= 0 (got %d)" min_cost);
  let stripes = pow2_at_least stripes 1 in
  {
    stripes =
      Array.init stripes (fun _ ->
          {
            s_mutex = Mutex.create ();
            s_tbl = Hashtbl.create 64;
            s_tick = 0;
          });
    mask = stripes - 1;
    per_stripe_cap = max 1 (capacity / stripes);
    ttl;
    min_cost;
    on_evict;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    stale = Atomic.make 0;
    admits = Atomic.make 0;
    bypasses = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let key ~instance ~qkey = instance ^ "\x00" ^ qkey

let stripe_of t k = t.stripes.(Hashtbl.hash k land t.mask)

let expired t e ~now =
  match t.ttl with None -> false | Some ttl -> now -. e.e_inserted > ttl

(* Evictions are reported to [on_evict] outside the stripe mutex so
   the callback (typically a metrics counter) cannot deadlock against
   a re-entrant cache call. *)
let report_evictions t n =
  if n > 0 then begin
    ignore (Atomic.fetch_and_add t.evictions n);
    match t.on_evict with
    | None -> ()
    | Some f ->
        for _ = 1 to n do
          f ()
        done
  end

type 'v outcome = Hit of 'v entry | Stale | Miss

let find t ~instance ~qkey ~current ?(consistency = Consistency.Any) ~k ~now
    () =
  Consistency.validate consistency;
  let key = key ~instance ~qkey in
  let s = stripe_of t key in
  let outcome, evicted =
    Mutex.protect s.s_mutex (fun () ->
        match Hashtbl.find_opt s.s_tbl key with
        | None -> (Miss, 0)
        | Some slot ->
            let e = slot.sl_entry in
            if expired t e ~now then begin
              Hashtbl.remove s.s_tbl key;
              (Miss, 1)
            end
            else if
              not (Consistency.admits ~current ~entry:e.e_version consistency)
            then (Stale, 0)
            else if k <= e.e_k || e.e_len < e.e_k then begin
              (* Serveable prefix: either the request fits inside the
                 stored rank range, or the stored list already
                 exhausted the matching set. *)
              s.s_tick <- s.s_tick + 1;
              slot.sl_stamp <- s.s_tick;
              e.e_last_hit <- now;
              e.e_hits <- e.e_hits + 1;
              (Hit e, 0)
            end
            else (Miss, 0))
  in
  report_evictions t evicted;
  (match outcome with
  | Hit _ -> Atomic.incr t.hits
  | Stale -> Atomic.incr t.stale
  | Miss -> Atomic.incr t.misses);
  outcome

(* Evict least-recently-used slots until the stripe fits.  The scan is
   O(stripe size), which admission-gating keeps small and rare; in
   exchange the order is exact LRU with no per-hit allocation. *)
let evict_over_capacity t s =
  let n = ref 0 in
  while Hashtbl.length s.s_tbl > t.per_stripe_cap do
    let victim =
      Hashtbl.fold
        (fun k slot acc ->
          match acc with
          | Some (_, stamp) when stamp <= slot.sl_stamp -> acc
          | _ -> Some (k, slot.sl_stamp))
        s.s_tbl None
    in
    match victim with
    | None -> ()
    | Some (k, _) ->
        Hashtbl.remove s.s_tbl k;
        incr n
  done;
  !n

let admit t ~instance ~qkey ~version ~k ~len ~cost ~now payload =
  if k < 0 then
    invalid_arg (Printf.sprintf "Cache.admit: k must be >= 0 (got %d)" k);
  if len < 0 || cost < 0 then
    invalid_arg "Cache.admit: len and cost must be >= 0";
  if cost < t.min_cost then begin
    Atomic.incr t.bypasses;
    `Bypassed
  end
  else begin
    let key = key ~instance ~qkey in
    let s = stripe_of t key in
    let fresh stamp =
      {
        sl_entry =
          {
            e_version = version;
            e_k = k;
            e_len = len;
            e_cost = cost;
            e_payload = payload;
            e_inserted = now;
            e_last_hit = now;
            e_hits = 0;
          };
        sl_stamp = stamp;
      }
    in
    let decision, evicted =
      Mutex.protect s.s_mutex (fun () ->
          let install () =
            s.s_tick <- s.s_tick + 1;
            Hashtbl.replace s.s_tbl key (fresh s.s_tick);
            let ev = evict_over_capacity t s in
            (`Admitted, ev)
          in
          match Hashtbl.find_opt s.s_tbl key with
          | None -> install ()
          | Some slot ->
              let e = slot.sl_entry in
              if expired t e ~now then begin
                Hashtbl.remove s.s_tbl key;
                let d, ev = install () in
                (d, ev + 1)
              end
              else if Version.newer_than e.e_version version then
                (* Never replace a fresher answer with a staler one:
                   a slow query racing a fast update must not roll the
                   cache back. *)
                (`Superseded, 0)
              else if Version.equal e.e_version version && e.e_k >= k then
                (* Same snapshot, already covering at least this rank
                   range — nothing to gain. *)
                (`Superseded, 0)
              else install ())
    in
    report_evictions t evicted;
    (match decision with `Admitted -> Atomic.incr t.admits | `Superseded -> ());
    decision
  end

let invalidate t ~instance ~qkey =
  let key = key ~instance ~qkey in
  let s = stripe_of t key in
  let removed =
    Mutex.protect s.s_mutex (fun () ->
        if Hashtbl.mem s.s_tbl key then begin
          Hashtbl.remove s.s_tbl key;
          true
        end
        else false)
  in
  if removed then report_evictions t 1;
  removed

let clear t =
  let n = ref 0 in
  Array.iter
    (fun s ->
      Mutex.protect s.s_mutex (fun () ->
          n := !n + Hashtbl.length s.s_tbl;
          Hashtbl.reset s.s_tbl))
    t.stripes;
  report_evictions t !n

let length t =
  Array.fold_left
    (fun acc s ->
      acc + Mutex.protect s.s_mutex (fun () -> Hashtbl.length s.s_tbl))
    0 t.stripes

let stripe_count t = Array.length t.stripes

let min_cost t = t.min_cost

let stats t =
  {
    st_hits = Atomic.get t.hits;
    st_misses = Atomic.get t.misses;
    st_stale = Atomic.get t.stale;
    st_admits = Atomic.get t.admits;
    st_bypasses = Atomic.get t.bypasses;
    st_evictions = Atomic.get t.evictions;
    st_entries = length t;
  }

let hit_rate t =
  let st = stats t in
  let looked = st.st_hits + st.st_misses + st.st_stale in
  if looked = 0 then 0. else float_of_int st.st_hits /. float_of_int looked

let pp_stats ppf st =
  Format.fprintf ppf
    "@[<h>hits=%d misses=%d stale=%d admits=%d bypasses=%d evictions=%d \
     entries=%d@]"
    st.st_hits st.st_misses st.st_stale st.st_admits st.st_bypasses
    st.st_evictions st.st_entries
