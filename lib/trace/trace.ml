(* Structured per-query tracing.  See trace.mli for the model.

   Hot-path discipline: when disabled, every entry point is one
   [Atomic.get] and out.  When enabled, spans live in a per-domain
   context (Domain.DLS) so recording takes no locks; only completed
   traces cross domains, through the mutex-guarded ring buffer
   [Store].  Instrumented code must never charge [Stats] itself —
   costs are *observed* via snapshots, not added — so tracing is
   invisible to the EM cost model. *)

module Stats = Topk_em.Stats

type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  name : string;
  mutable attrs : (string * value) list;
  t_start : float;
  mutable t_end : float;
  mutable cost : Stats.snapshot;
  mutable children : span list;
}

type t = { id : int; parent : int option; root : span }

(* ---------- global switch ---------- *)

let enabled = Atomic.make false
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

(* ---------- per-domain recording context ---------- *)

type ctx = {
  mutable tid : int;               (* id of the open trace, -1 if none *)
  mutable tparent : int option;
  mutable stack : (span * Stats.snapshot) list;
      (* innermost first; each open span paired with the Stats
         snapshot taken when it was opened *)
}

let ctx_key =
  Domain.DLS.new_key (fun () -> { tid = -1; tparent = None; stack = [] })

let next_id = Atomic.make 1

let now () = Unix.gettimeofday ()

let open_span name attrs =
  {
    name;
    attrs;
    t_start = now ();
    t_end = nan;
    cost = Stats.zero_snapshot;
    children = [];
  }

let close_span sp at_open =
  sp.t_end <- now ();
  sp.cost <- Stats.diff (Stats.snapshot ()) at_open;
  sp.children <- List.rev sp.children

(* ---------- store (forward-declared before with_root uses it) ---------- *)

module Store = struct
  let mutex = Mutex.create ()
  let capacity = ref 512
  let ring : t option array ref = ref (Array.make 512 None)
  let added = ref 0

  let locked f =
    Mutex.lock mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

  let set_capacity c =
    if c <= 0 then invalid_arg "Trace.Store.set_capacity: capacity must be positive";
    locked (fun () ->
        capacity := c;
        ring := Array.make c None;
        added := 0)

  let add tr =
    locked (fun () ->
        !ring.(!added mod !capacity) <- Some tr;
        incr added)

  let length () =
    locked (fun () -> min !added !capacity)

  let total () = locked (fun () -> !added)

  let recent ?limit () =
    locked (fun () ->
        let held = min !added !capacity in
        let take = match limit with Some l -> min l held | None -> held in
        let out = ref [] in
        for i = 0 to take - 1 do
          (* most recent first: walk backwards from the write head *)
          let idx = (!added - 1 - i + !capacity) mod !capacity in
          match !ring.(idx) with
          | Some tr -> out := tr :: !out
          | None -> ()
        done;
        List.rev !out)

  let find id =
    locked (fun () ->
        let held = min !added !capacity in
        let rec go i =
          if i >= held then None
          else
            let idx = (!added - 1 - i + !capacity) mod !capacity in
            match !ring.(idx) with
            | Some tr when tr.id = id -> Some tr
            | _ -> go (i + 1)
        in
        go 0)

  let clear () =
    locked (fun () ->
        Array.fill !ring 0 (Array.length !ring) None;
        added := 0)

  (* export defined after to_json below *)
  let export_ref : (?limit:int -> unit -> string) ref =
    ref (fun ?limit:_ () -> "")

  let export ?limit () = !export_ref ?limit ()
end

(* ---------- recording ---------- *)

let with_span ?(attrs = []) name f =
  if not (Atomic.get enabled) then f ()
  else
    let ctx = Domain.DLS.get ctx_key in
    if ctx.tid < 0 then f ()
    else begin
      let sp = open_span name attrs in
      let at_open = Stats.snapshot () in
      ctx.stack <- (sp, at_open) :: ctx.stack;
      Fun.protect
        ~finally:(fun () ->
          (match ctx.stack with
          | (top, snap) :: rest when top == sp ->
              ctx.stack <- rest;
              close_span top snap;
              (match rest with
              | (parent, _) :: _ -> parent.children <- top :: parent.children
              | [] -> ())
          | _ ->
              (* unbalanced: an inner span leaked (should not happen —
                 every opener unwinds via Fun.protect).  Pop down to us
                 defensively so the trace stays well-formed. *)
              let rec pop () =
                match ctx.stack with
                | (top, snap) :: rest ->
                    ctx.stack <- rest;
                    close_span top snap;
                    (match rest with
                    | (parent, _) :: _ ->
                        parent.children <- top :: parent.children
                    | [] -> ());
                    if top != sp then pop ()
                | [] -> ()
              in
              pop ()))
        f
    end

let with_root ?parent ?(attrs = []) name f =
  if not (Atomic.get enabled) then (f (), None)
  else
    let ctx = Domain.DLS.get ctx_key in
    if ctx.tid >= 0 then (with_span ~attrs name f, None)
    else begin
      let id = Atomic.fetch_and_add next_id 1 in
      let sp = open_span name attrs in
      let at_open = Stats.snapshot () in
      ctx.tid <- id;
      ctx.tparent <- parent;
      ctx.stack <- [ (sp, at_open) ];
      let finish () =
        (* close any children left open by an exception, then the root *)
        let rec unwind () =
          match ctx.stack with
          | [ (root, snap) ] when root == sp ->
              ctx.stack <- [];
              close_span root snap
          | (top, snap) :: rest ->
              ctx.stack <- rest;
              close_span top snap;
              (match rest with
              | (parent, _) :: _ -> parent.children <- top :: parent.children
              | [] -> ());
              unwind ()
          | [] -> ()
        in
        unwind ();
        ctx.tid <- -1;
        ctx.tparent <- None;
        let tr = { id; parent; root = sp } in
        Store.add tr;
        tr
      in
      match f () with
      | v -> (v, Some (finish ()))
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (finish ());
          Printexc.raise_with_backtrace e bt
    end

let add_attr key v =
  if Atomic.get enabled then
    let ctx = Domain.DLS.get ctx_key in
    match ctx.stack with
    | (sp, _) :: _ ->
        sp.attrs <- (key, v) :: List.remove_assoc key sp.attrs
    | [] -> ()

let event ?(attrs = []) name =
  if Atomic.get enabled then
    let ctx = Domain.DLS.get ctx_key in
    match ctx.stack with
    | (sp, _) :: _ ->
        let t = now () in
        let ev =
          {
            name;
            attrs;
            t_start = t;
            t_end = t;
            cost = Stats.zero_snapshot;
            children = [];
          }
        in
        sp.children <- ev :: sp.children
    | [] -> ()

let current_trace_id () =
  if not (Atomic.get enabled) then None
  else
    let ctx = Domain.DLS.get ctx_key in
    if ctx.tid >= 0 then Some ctx.tid else None

(* ---------- reading ---------- *)

let attr sp key = List.assoc_opt key sp.attrs

let attr_int sp key =
  match attr sp key with Some (Int i) -> Some i | _ -> None

let attr_str sp key =
  match attr sp key with Some (Str s) -> Some s | _ -> None

let duration_us sp =
  if Float.is_nan sp.t_end then 0.
  else (sp.t_end -. sp.t_start) *. 1e6

let rec span_count_sp sp =
  List.fold_left (fun acc c -> acc + span_count_sp c) 1 sp.children

let span_count tr = span_count_sp tr.root

let find_spans tr name =
  let rec go acc sp =
    let acc = if sp.name = name then sp :: acc else acc in
    List.fold_left go acc sp.children
  in
  List.rev (go [] tr.root)

(* ---------- JSON export ---------- *)

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let buf_float b f =
  (* JSON has no inf/nan literals; encode them as strings so the
     output always parses (pruning thresholds can be -inf). *)
  if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%g" f)
  else if Float.is_nan f then Buffer.add_string b "\"nan\""
  else if f > 0. then Buffer.add_string b "\"inf\""
  else Buffer.add_string b "\"-inf\""

let buf_value b = function
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> buf_float b f
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Str s ->
      Buffer.add_char b '"';
      buf_escape b s;
      Buffer.add_char b '"'

let rec buf_span b sp =
  Buffer.add_string b "{\"name\":\"";
  buf_escape b sp.name;
  Buffer.add_string b "\",\"us\":";
  buf_float b (duration_us sp);
  Buffer.add_string b ",\"ios\":";
  Buffer.add_string b (string_of_int sp.cost.Stats.ios);
  Buffer.add_string b ",\"scanned\":";
  Buffer.add_string b (string_of_int sp.cost.Stats.scanned);
  (match List.rev sp.attrs with
  | [] -> ()
  | attrs ->
      Buffer.add_string b ",\"attrs\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          buf_escape b k;
          Buffer.add_string b "\":";
          buf_value b v)
        attrs;
      Buffer.add_char b '}');
  (match sp.children with
  | [] -> ()
  | children ->
      Buffer.add_string b ",\"children\":[";
      List.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char b ',';
          buf_span b c)
        children;
      Buffer.add_char b ']');
  Buffer.add_char b '}'

let to_json tr =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"id\":";
  Buffer.add_string b (string_of_int tr.id);
  (match tr.parent with
  | Some p ->
      Buffer.add_string b ",\"parent\":";
      Buffer.add_string b (string_of_int p)
  | None -> ());
  Buffer.add_string b ",\"root\":";
  buf_span b tr.root;
  Buffer.add_char b '}';
  Buffer.contents b

let () =
  Store.export_ref :=
    fun ?limit () ->
      Store.recent ?limit ()
      |> List.map to_json
      |> String.concat "\n"
