(** Cost certification: check measured per-query I/Os against the
    paper's bounds.

    The paper states top-k query cost as a {e contract}:

    - Theorem 1 (worst case):  [Q_top = O(Q_pri(n) + k/B)]
    - Theorem 2 (expected):    [Q_top = O(Q_pri(n) + Q_max(n) + k/B)]
    - Sharded planner (§9):    [Q_top = O(S·Q_max(n/S)
                                 + visited·(Q_pri + Q_max + k/B) + k/B)]

    A {!model} turns the appropriate right-hand side into a concrete
    number of I/Os: the structure-specific [Q_pri]/[Q_max] terms are
    evaluated at the instance's [n] and the current block size, and the
    hidden constant [c] is {e fitted once at build time} by running a
    small calibration workload and taking the max ratio
    [measured / normalizer] (times a safety [margin] for expected-case
    bounds).  After that, every production query can be checked:
    [measured <= c * normalizer(k, visited)] — a verifiable per-query
    artifact in the style of the I/O budgets reported by Brodal's and
    Tao's EM top-k experiments. *)

type theorem =
  | T1                  (** Theorem 1 worst-case reduction *)
  | T2                  (** Theorem 2 expected-case reduction *)
  | Sharded             (** scatter/planner over Theorem-2 shards *)
  | Other of string     (** opaque; bound is [c * (1 + k/B)] *)
  | Dynamic of theorem
      (** Bentley–Saxe ingestion wrapper over a static structure whose
          bound is the inner theorem: [visited] here counts the
          immutable runs in the reader's pinned epoch (at most
          [O(log n)] of them), each charged one inner-bound query; an
          additive [ln n] term covers the amortized per-update work
          replayed from the in-memory log, plus the final k-way merge
          scan. *)

type model = {
  instance : string;       (** registry / reporting name *)
  theorem : theorem;
  n : int;                 (** elements indexed (per shard for Sharded) *)
  b : int;                 (** block size the model was fitted at *)
  shards : int;            (** 1 unless Sharded *)
  q_pri : float;           (** Q_pri(n) in I/Os *)
  q_max : float;           (** Q_max(n) in I/Os *)
  c : float;               (** fitted constant *)
  margin : float;          (** safety factor applied on top of [c] *)
}

type verdict = {
  v_instance : string;
  v_measured : int;        (** I/Os the query actually charged *)
  v_bound : float;         (** certified ceiling [c * margin * normalizer] *)
  v_ok : bool;             (** [measured <= bound] *)
}

val normalizer : model -> k:int -> visited:int -> float
(** The bound's shape (right-hand side without the constant), in I/Os.
    [visited] is ignored unless the model is [Sharded] (shards probed)
    or [Dynamic] (runs in the pinned level set). *)

val fit :
  instance:string -> theorem:theorem -> n:int -> ?shards:int ->
  ?margin:float -> q_pri:float -> q_max:float ->
  (int * int option * int) list -> model
(** [fit ~instance ~theorem ~n ~q_pri ~q_max samples] fits [c] from
    calibration runs, where each sample is
    [(k, visited_shards, measured_ios)].  [c] is the max over samples
    of [measured / normalizer]; [margin] (default [2.0], use more for
    high-variance expected-case structures) absorbs randomness beyond
    the calibration set.  Raises [Invalid_argument] on an empty sample
    list. *)

val bound : model -> k:int -> visited:int -> float
(** [c * margin * normalizer]. *)

val check : model -> k:int -> ?visited:int -> measured:int -> unit -> verdict

(** {1 Model registry}

    Models are registered once per structure at build/fit time, then
    every query consults them by instance name — this is what lets the
    serving layer certify responses without threading models through
    the request path. *)

val register : model -> unit
(** Replaces any previous model for the same instance name. *)

val lookup : string -> model option
val models : unit -> model list
val clear_models : unit -> unit

val evaluate :
  instance:string -> k:int -> ?visited:int -> measured:int -> unit ->
  verdict option
(** Check against the registered model for [instance], if any, and
    update the global {!checked}/{!violations} counters. *)

val certify_trace : Trace.t -> verdict option
(** Certify a completed trace: reads the instance name ([ "instance" ]
    attr), [k] and optional ["visited"] from the root span's
    attributes and the measured I/Os from the root span's cost.
    Returns [None] if the trace lacks the attributes or no model is
    registered. *)

val checked : unit -> int
(** Queries evaluated (process-wide). *)

val violations : unit -> int
(** Evaluations where [measured > bound]. *)

val reset_counters : unit -> unit

val pp_verdict : Format.formatter -> verdict -> unit
val theorem_name : theorem -> string
