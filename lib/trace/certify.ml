(* Cost certification.  See certify.mli for the contract. *)

type theorem = T1 | T2 | Sharded | Other of string | Dynamic of theorem

type model = {
  instance : string;
  theorem : theorem;
  n : int;
  b : int;
  shards : int;
  q_pri : float;
  q_max : float;
  c : float;
  margin : float;
}

type verdict = {
  v_instance : string;
  v_measured : int;
  v_bound : float;
  v_ok : bool;
}

let rec theorem_name = function
  | T1 -> "theorem1"
  | T2 -> "theorem2"
  | Sharded -> "sharded"
  | Other s -> s
  | Dynamic inner -> "dynamic(" ^ theorem_name inner ^ ")"

let out_term m ~k = float_of_int k /. float_of_int m.b +. 1.

let rec normalizer m ~k ~visited =
  match m.theorem with
  | T1 -> m.q_pri +. out_term m ~k
  | T2 -> m.q_pri +. m.q_max +. out_term m ~k
  | Sharded ->
      (* one max query per shard to compute bounds, then each visited
         shard pays a full Theorem-2 leg, then the final merge scan *)
      (float_of_int m.shards *. m.q_max)
      +. (float_of_int (max visited 1)
          *. (m.q_pri +. m.q_max +. out_term m ~k))
      +. out_term m ~k
  | Other _ -> out_term m ~k
  | Dynamic inner ->
      (* Bentley–Saxe view: [visited] immutable runs (the level
         hierarchy keeps at most O(log n) of them), each paying one
         static query under the inner bound, plus the update-log
         replay (amortized O(log n) per update, surfaced here as a
         log-sized additive term) and the final k-way merge scan. *)
      let static = normalizer { m with theorem = inner } ~k ~visited in
      (float_of_int (max visited 1) *. static)
      +. log (float_of_int (m.n + 2))
      +. out_term m ~k

let fit ~instance ~theorem ~n ?(shards = 1) ?(margin = 2.0) ~q_pri ~q_max
    samples =
  if samples = [] then invalid_arg "Certify.fit: empty sample list";
  if margin < 1.0 then invalid_arg "Certify.fit: margin must be >= 1";
  let b = (Topk_em.Config.current ()).Topk_em.Config.b in
  let m =
    { instance; theorem; n; b; shards; q_pri; q_max; c = 1.0; margin }
  in
  let c =
    List.fold_left
      (fun acc (k, visited, measured) ->
        let visited = Option.value visited ~default:shards in
        let norm = normalizer m ~k ~visited in
        Float.max acc (float_of_int measured /. norm))
      0.0 samples
  in
  { m with c = Float.max c 1e-9 }

let bound m ~k ~visited = m.c *. m.margin *. normalizer m ~k ~visited

let check m ~k ?(visited = m.shards) ~measured () =
  let b = bound m ~k ~visited in
  {
    v_instance = m.instance;
    v_measured = measured;
    v_bound = b;
    v_ok = float_of_int measured <= b;
  }

(* ---------- model registry ---------- *)

let registry : (string, model) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let register m = locked (fun () -> Hashtbl.replace registry m.instance m)
let lookup name = locked (fun () -> Hashtbl.find_opt registry name)

let models () =
  locked (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry [])

let clear_models () = locked (fun () -> Hashtbl.reset registry)

(* ---------- global counters ---------- *)

let n_checked = Atomic.make 0
let n_violations = Atomic.make 0
let checked () = Atomic.get n_checked
let violations () = Atomic.get n_violations

let reset_counters () =
  Atomic.set n_checked 0;
  Atomic.set n_violations 0

let evaluate ~instance ~k ?visited ~measured () =
  match lookup instance with
  | None -> None
  | Some m ->
      let v = check m ~k ?visited ~measured () in
      Atomic.incr n_checked;
      if not v.v_ok then Atomic.incr n_violations;
      Some v

let certify_trace (tr : Trace.t) =
  let root = tr.Trace.root in
  match (Trace.attr_str root "instance", Trace.attr_int root "k") with
  | Some instance, Some k ->
      let visited = Trace.attr_int root "visited" in
      let measured = root.Trace.cost.Topk_em.Stats.ios in
      evaluate ~instance ~k ?visited ~measured ()
  | _ -> None

let pp_verdict fmt v =
  Format.fprintf fmt "%s: %d I/Os %s bound %.1f (%s)" v.v_instance
    v.v_measured
    (if v.v_ok then "<=" else ">")
    v.v_bound
    (if v.v_ok then "ok" else "VIOLATION")
