(** Structured per-query tracing.

    A {e trace} is a tree of {e spans} recorded while one query runs:
    the root span covers the whole request, child spans cover the
    algorithmic phases underneath it — Theorem-1 core-set descents,
    Theorem-2 sample-ladder rounds, cost-monitored prioritized probes,
    shard-planner bound checks, scatter legs, executor retry rounds.
    The replication layer roots its own spans for operations that do
    not run under a query: [repl.read] (a routed replica read, with
    the answering snapshot's cost delta), [repl.install] (capturing
    and shipping a snapshot image to a lagging peer) and
    [repl.promote] (failover).
    Every span carries wall-clock start/stop timestamps and the
    {!Topk_em.Stats} delta (I/Os, scanned elements, queries) charged on
    the recording domain while it was open, so a finished trace shows
    {e where the I/Os of one query went} — the per-operation cost
    breakdown that the paper's bounds are stated in.

    Tracing is {e off by default} and costs one [Atomic.get] per
    potential span when disabled.  When enabled, spans are recorded
    into a per-domain context (no locks on the hot path) and completed
    traces are published to the global ring-buffer {!Store}.

    Instrumented code never charges {!Topk_em.Stats} itself, so
    enabling tracing adds {e zero} I/Os to every query — asserted by
    [bench/e18_trace.ml]. *)

(** Attribute values attached to spans. *)
type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  name : string;
  mutable attrs : (string * value) list;
  t_start : float;                   (** [Unix.gettimeofday] at open *)
  mutable t_end : float;             (** at close; [nan] while open *)
  mutable cost : Topk_em.Stats.snapshot;
      (** Stats delta charged on this domain while the span was open
          (includes children). *)
  mutable children : span list;      (** in recording order *)
}

type t = {
  id : int;                          (** unique per process *)
  parent : int option;
      (** id of the enclosing trace when this trace was created by a
          worker serving a scattered leg of another trace *)
  root : span;
}

(** {1 Global switch} *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

(** {1 Recording} *)

val with_root :
  ?parent:int -> ?attrs:(string * value) list -> string ->
  (unit -> 'a) -> 'a * t option
(** [with_root name f] runs [f] under a fresh root span on the calling
    domain and returns its result together with the completed trace,
    which is also published to {!Store}.  Returns [None] when tracing
    is disabled.  If a root is already open on this domain the call
    degrades to {!with_span} (returning [None]).  The trace is
    completed and stored even when [f] raises. *)

val with_span :
  ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] under a child span of the innermost
    open span on this domain.  A no-op passthrough when tracing is
    disabled or no root is open.  The span is closed (and its Stats
    delta captured) even when [f] raises. *)

val add_attr : string -> value -> unit
(** Attach an attribute to the innermost open span on this domain; a
    no-op when tracing is disabled or no span is open.  Re-adding a key
    replaces the previous value. *)

val event : ?attrs:(string * value) list -> string -> unit
(** Record a zero-duration child span (a point event). *)

val current_trace_id : unit -> int option
(** The id of the trace currently recording on this domain, if any.
    Used to link scattered legs back to their parent trace. *)

(** {1 Reading} *)

val attr : span -> string -> value option
val attr_int : span -> string -> int option
val attr_str : span -> string -> string option
val duration_us : span -> float
val span_count : t -> int
val find_spans : t -> string -> span list
(** All spans named [name], depth-first. *)

val to_json : t -> string
(** The whole trace as a single-line JSON object ([{"id":..,"root":
    {..,"children":[..]}}]).  Non-finite floats are encoded as strings
    (["inf"], ["-inf"], ["nan"]) so the output is always valid JSON. *)

(** {1 Trace store}

    A bounded ring buffer of completed traces, shared by all domains
    (mutex-guarded; contention only at trace completion, never inside
    spans). *)

module Store : sig
  val set_capacity : int -> unit
  (** Resize the ring (default 512) and clear it. *)

  val add : t -> unit

  val length : unit -> int
  (** Traces currently held. *)

  val total : unit -> int
  (** Traces ever added. *)

  val recent : ?limit:int -> unit -> t list
  (** Most recent first. *)

  val find : int -> t option
  (** Look up a held trace by id. *)

  val clear : unit -> unit
  val export : ?limit:int -> unit -> string
  (** Newline-separated JSON, most recent first. *)
end
