module Stats = Topk_em.Stats
module P = Problem

type node =
  | Leaf of Point3.t
  | Node of {
      empt : Minz.t;  (* over the node's whole weight range *)
      left : node;
      right : node;
    }

type t = {
  root : node option;
  n : int;
  words : int;
}

let name = "dom3-tournament"

let rec build_node sorted lo hi =
  if hi - lo = 1 then (Leaf sorted.(lo), 1)
  else begin
    let mid = (lo + hi) / 2 in
    let left, wl = build_node sorted lo mid in
    let right, wr = build_node sorted mid hi in
    let empt = Minz.build (Array.sub sorted lo (hi - lo)) in
    (Node { empt; left; right }, wl + wr + Minz.space_words empt)
  end

let build ?params:_ pts =
  let sorted = Array.copy pts in
  Array.sort (fun a b -> Point3.compare_weight b a) sorted;
  let n = Array.length sorted in
  if n = 0 then { root = None; n; words = 0 }
  else begin
    let root, words = build_node sorted 0 n in
    { root = Some root; n; words }
  end

let size t = t.n

let space_words t = t.words

(* Does the range under this node contain a point dominated by q? *)
let hits (x, y, z) = function
  | Leaf p -> Point3.dominated_by p (x, y, z)
  | Node { empt; _ } -> Minz.query empt ~x ~y <= z

let query t q =
  match t.root with
  | None -> None
  | Some root ->
      if not (hits q root) then None
      else begin
        let rec descend = function
          | Leaf p -> Some p
          | Node { left; right; _ } ->
              Stats.charge_ios 1;
              if hits q left then descend left else descend right
        in
        descend root
      end
