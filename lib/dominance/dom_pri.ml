module Stats = Topk_em.Stats
module Prefix_blocks = Topk_core.Prefix_blocks
module P = Problem

type t = {
  weights_desc : float array;
  blocks : Dom3.t Prefix_blocks.t;
  n : int;
}

let name = "dom3-rangetree"

let build ?params:_ pts =
  let sorted = Array.copy pts in
  Array.sort (fun a b -> Point3.compare_weight b a) sorted;
  let n = Array.length sorted in
  let blocks =
    Prefix_blocks.build ~n ~build:(fun o len ->
        Dom3.build (Array.sub sorted o len))
  in
  {
    weights_desc = Array.map (fun (p : Point3.t) -> p.Point3.weight) sorted;
    blocks;
    n;
  }

let size t = t.n

let space_words t =
  Array.length t.weights_desc
  + Prefix_blocks.fold_all t.blocks ~init:0 ~f:(fun acc d ->
        acc + Dom3.space_words d)

let visit t q ~tau f =
  let m =
    if tau = Float.neg_infinity then t.n
    else begin
      Stats.charge_ios
        (max 1 (int_of_float (Float.log2 (float_of_int (t.n + 2)))));
      (* upper_bound: keep elements whose weight equals tau. *)
      Topk_util.Search.upper_bound
        ~cmp:(fun w w' -> Float.compare w' w)
        t.weights_desc tau
    end
  in
  let blocks = Prefix_blocks.query_prefix t.blocks m in
  List.iter (fun d -> Dom3.visit d q f) blocks

let query t q ~tau =
  let acc = ref [] in
  visit t q ~tau (fun p -> acc := p :: !acc);
  !acc

exception Enough

let query_monitored t q ~tau ~limit =
  let acc = ref [] and count = ref 0 in
  match
    visit t q ~tau (fun p ->
        acc := p :: !acc;
        incr count;
        if !count > limit then raise Enough)
  with
  | () -> Topk_core.Sigs.All !acc
  | exception Enough -> Topk_core.Sigs.Truncated !acc
