module Pri
    (Q : Predicates.QUERY_SPEC)
    (P : Topk_core.Sigs.PROBLEM
           with type elem = Pointd.t
            and type query = Q.query) =
struct
  module P = P

  type t = Kd_tree.t

  let name = "kd-" ^ Q.name

  let build ?params:_ pts = Kd_tree.build pts

  let size = Kd_tree.size

  let space_words = Kd_tree.space_words

  let visit t q ~tau f =
    Kd_tree.visit t ~tau
      ~cell_possible:(fun ~mins ~maxs -> Q.cell_possible q ~mins ~maxs)
      ~cell_certain:(fun ~mins ~maxs -> Q.cell_certain q ~mins ~maxs)
      ~matches:(fun p -> Q.matches q p)
      f

  let query t q ~tau =
    let acc = ref [] in
    visit t q ~tau (fun p -> acc := p :: !acc);
    !acc

  exception Enough

  let query_monitored t q ~tau ~limit =
    let acc = ref [] and count = ref 0 in
    match
      visit t q ~tau (fun p ->
          acc := p :: !acc;
          incr count;
          if !count > limit then raise Enough)
    with
    | () -> Topk_core.Sigs.All !acc
    | exception Enough -> Topk_core.Sigs.Truncated !acc
end

module Max
    (Q : Predicates.QUERY_SPEC)
    (P : Topk_core.Sigs.PROBLEM
           with type elem = Pointd.t
            and type query = Q.query) =
struct
  module P = P

  type t = Kd_tree.t

  let name = "kd-max-" ^ Q.name

  let build ?params:_ pts = Kd_tree.build pts

  let size = Kd_tree.size

  let space_words = Kd_tree.space_words

  let query t q =
    Kd_tree.max_query t
      ~cell_possible:(fun ~mins ~maxs -> Q.cell_possible q ~mins ~maxs)
      ~matches:(fun p -> Q.matches q p)
end
