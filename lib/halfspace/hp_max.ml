module Stats = Topk_em.Stats
module P2 = Topk_geom.Point2
module Hp = Topk_geom.Halfplane
module Chull = Topk_geom.Chull
module P = Hp_problem

type node =
  | Leaf of P2.t
  | Node of {
      hull : Chull.t;  (* of the whole weight range under this node *)
      left : node;
      right : node;
    }

type t = {
  root : node option;
  n : int;
  words : int;
}

let name = "hp-hull-tournament"

let rec build_node sorted lo hi =
  if hi - lo = 1 then (Leaf sorted.(lo), 1)
  else begin
    let mid = (lo + hi) / 2 in
    let left, wl = build_node sorted lo mid in
    let right, wr = build_node sorted mid hi in
    let hull = Chull.of_points (Array.sub sorted lo (hi - lo)) in
    (Node { hull; left; right }, wl + wr + Chull.space_words hull)
  end

let build ?params:_ elems =
  let sorted = Array.copy elems in
  Array.sort (fun a b -> P2.compare_weight b a) sorted;
  let n = Array.length sorted in
  if n = 0 then { root = None; n; words = 0 }
  else begin
    let root, words = build_node sorted 0 n in
    { root = Some root; n; words }
  end

let size t = t.n

let space_words t = t.words

(* Does the point set under this node intersect the halfplane?  The
   extreme vertex towards the halfplane's inward normal decides. *)
let hits h = function
  | Leaf p -> Hp.contains h p
  | Node { hull; _ } -> (
      match Chull.extreme hull ~dir:(Hp.direction h) with
      | None -> false
      | Some (_, p) -> Hp.contains h p)

let query t q =
  match t.root with
  | None -> None
  | Some root ->
      if not (hits q root) then None
      else begin
        (* Invariant: the subtree contains a point inside [q]; its
           leftmost (heaviest) such point is the answer. *)
        let rec descend = function
          | Leaf p -> Some p
          | Node { left; right; _ } ->
              Stats.charge_ios 1;
              if hits q left then descend left else descend right
        in
        descend root
      end
