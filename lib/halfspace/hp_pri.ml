module Stats = Topk_em.Stats
module P2 = Topk_geom.Point2
module Layers = Topk_geom.Layers
module Prefix_blocks = Topk_core.Prefix_blocks
module P = Hp_problem

type t = {
  sorted : P2.t array;         (* weight descending *)
  weights_desc : float array;  (* weights of [sorted] *)
  blocks : Layers.t Prefix_blocks.t;
  n : int;
}

let name = "hp-onion"

let build ?params:_ elems =
  let sorted = Array.copy elems in
  Array.sort (fun a b -> P2.compare_weight b a) sorted;
  let n = Array.length sorted in
  let blocks =
    Prefix_blocks.build ~n ~build:(fun o len ->
        Layers.build (Array.sub sorted o len))
  in
  let weights_desc = Array.map (fun (p : P2.t) -> p.P2.weight) sorted in
  { sorted; weights_desc; blocks; n }

let size t = t.n

let space_words t =
  Array.length t.sorted + Array.length t.weights_desc
  + Prefix_blocks.fold_all t.blocks ~init:0 ~f:(fun acc l ->
        acc + Layers.space_words l)

(* Number of elements with weight >= tau: they occupy a prefix of the
   weight-descending order. *)
let prefix_length t ~tau =
  Stats.charge_ios
    (max 1 (int_of_float (Float.log2 (float_of_int (t.n + 2)))));
  (* First index with weight strictly below tau, so that elements with
     weight exactly tau are included (the reductions query with
     tau = w(e) for an existing element e). *)
  Topk_util.Search.upper_bound
    ~cmp:(fun w w' -> Float.compare w' w)  (* descending *)
    t.weights_desc tau

let visit t q ~tau f =
  let m =
    if tau = Float.neg_infinity then t.n else prefix_length t ~tau
  in
  let blocks = Prefix_blocks.query_prefix t.blocks m in
  List.iter (fun l -> ignore (Layers.report_halfplane l q f)) blocks

let query t q ~tau =
  let acc = ref [] in
  visit t q ~tau (fun p -> acc := p :: !acc);
  !acc

exception Enough

let query_monitored t q ~tau ~limit =
  let acc = ref [] and count = ref 0 in
  match
    visit t q ~tau (fun p ->
        acc := p :: !acc;
        incr count;
        if !count > limit then raise Enough)
  with
  | () -> Topk_core.Sigs.All !acc
  | exception Enough -> Topk_core.Sigs.Truncated !acc
