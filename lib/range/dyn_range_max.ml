module Stats = Topk_em.Stats
module Search = Topk_util.Search
module P = Problem

type bnode = {
  items : Wpoint.t array;  (* weight descending *)
  mutable head : int;
}

type bucket = {
  positions : float array;  (* ascending *)
  nodes : bnode array;      (* 1-based heap order *)
  leaves : int;
  elems : Wpoint.t array;
}

type t = {
  mutable buckets : bucket option array;
  dead : (int, unit) Hashtbl.t;
  mutable live_count : int;
  mutable rebuild_count : int;
}

let name = "dyn-range-max"

let rec next_pow2 x k = if k >= x then k else next_pow2 x (2 * k)

let build_bucket elems =
  let sorted = Array.copy elems in
  Array.sort Wpoint.compare_pos sorted;
  let n = Array.length sorted in
  let leaves = next_pow2 (max 1 n) 1 in
  let lists = Array.make (2 * leaves) [] in
  (* Each point contributes to every node on its leaf-to-root path. *)
  for i = 0 to n - 1 do
    let node = ref (leaves + i) in
    while !node >= 1 do
      lists.(!node) <- sorted.(i) :: lists.(!node);
      node := !node / 2
    done
  done;
  let nodes =
    Array.map
      (fun l ->
        let items = Array.of_list l in
        Array.sort (fun a b -> Wpoint.compare_weight b a) items;
        { items; head = 0 })
      lists
  in
  {
    positions = Array.map (fun (p : Wpoint.t) -> p.Wpoint.pos) sorted;
    nodes;
    leaves;
    elems;
  }

let empty () =
  {
    buckets = Array.make 1 None;
    dead = Hashtbl.create 64;
    live_count = 0;
    rebuild_count = 0;
  }

let is_dead t (p : Wpoint.t) = Hashtbl.mem t.dead p.Wpoint.id

let fill t elems =
  let n = Array.length elems in
  let slots = ref 1 in
  while 1 lsl !slots <= n do incr slots done;
  t.buckets <- Array.make (max 1 !slots) None;
  let offset = ref 0 in
  for i = !slots - 1 downto 0 do
    let cap = 1 lsl i in
    if n - !offset >= cap then begin
      t.buckets.(i) <- Some (build_bucket (Array.sub elems !offset cap));
      offset := !offset + cap
    end
  done

let build ?params:_ elems =
  let t = empty () in
  t.live_count <- Array.length elems;
  fill t (Array.copy elems);
  t

let live_elements t =
  let acc = ref [] in
  Array.iter
    (function
      | None -> ()
      | Some b ->
          Array.iter
            (fun e -> if not (is_dead t e) then acc := e :: !acc)
            b.elems)
    t.buckets;
  Array.of_list !acc

let global_rebuild t =
  let elems = live_elements t in
  Hashtbl.reset t.dead;
  t.rebuild_count <- t.rebuild_count + 1;
  t.live_count <- Array.length elems;
  fill t elems

let insert t p =
  let slot = ref 0 in
  let n_slots = Array.length t.buckets in
  while !slot < n_slots && t.buckets.(!slot) <> None do incr slot done;
  if !slot >= n_slots then begin
    let grown = Array.make (n_slots + 1) None in
    Array.blit t.buckets 0 grown 0 n_slots;
    t.buckets <- grown
  end;
  let merged = ref [ p ] in
  for i = 0 to !slot - 1 do
    (match t.buckets.(i) with
     | Some b ->
         Array.iter
           (fun x ->
             if is_dead t x then Hashtbl.remove t.dead x.Wpoint.id
             else merged := x :: !merged)
           b.elems
     | None -> ());
    t.buckets.(i) <- None
  done;
  t.buckets.(!slot) <- Some (build_bucket (Array.of_list !merged));
  t.live_count <- t.live_count + 1

let delete t (p : Wpoint.t) =
  if not (Hashtbl.mem t.dead p.Wpoint.id) then begin
    Hashtbl.replace t.dead p.Wpoint.id ();
    t.live_count <- t.live_count - 1;
    if Hashtbl.length t.dead > max 8 t.live_count then global_rebuild t
  end

let size t = t.live_count

let live t = t.live_count

let rebuilds t = t.rebuild_count

let space_words t =
  Array.fold_left
    (fun acc -> function
      | None -> acc
      | Some b ->
          acc + Array.length b.positions + Array.length b.elems
          + Array.fold_left
              (fun a (n : bnode) -> a + Array.length n.items + 1)
              0 b.nodes)
    0 t.buckets
  + Hashtbl.length t.dead

let peek t (node : bnode) =
  let len = Array.length node.items in
  while node.head < len && is_dead t node.items.(node.head) do
    node.head <- node.head + 1
  done;
  if node.head < len then Some node.items.(node.head) else None

let bucket_max t b (lo, hi) =
  Stats.charge_ios
    (max 1
       (int_of_float (Float.log2 (float_of_int (Array.length b.positions + 2)))));
  let a = Search.lower_bound ~cmp:Float.compare b.positions lo in
  let z = Search.upper_bound ~cmp:Float.compare b.positions hi in
  if a >= z then None
  else begin
    let best = ref None in
    let consider = function
      | None -> ()
      | Some p -> (
          match !best with
          | None -> best := Some p
          | Some q -> if Wpoint.compare_weight p q > 0 then best := Some p)
    in
    let l = ref (b.leaves + a) and r = ref (b.leaves + z) in
    while !l < !r do
      Stats.charge_ios 1;
      if !l land 1 = 1 then begin
        consider (peek t b.nodes.(!l));
        incr l
      end;
      if !r land 1 = 1 then begin
        decr r;
        consider (peek t b.nodes.(!r))
      end;
      l := !l / 2;
      r := !r / 2
    done;
    !best
  end

let query t q =
  let best = ref None in
  Array.iter
    (function
      | None -> ()
      | Some b -> (
          match bucket_max t b q with
          | None -> ()
          | Some p -> (
              match !best with
              | None -> best := Some p
              | Some q' ->
                  if Wpoint.compare_weight p q' > 0 then best := Some p)))
    t.buckets;
  !best
