module Stats = Topk_em.Stats
module Search = Topk_util.Search
module P = Problem

type t = {
  positions : float array;  (* ascending *)
  (* 1-based heap order over [leaves] slots; node i covers the sorted
     ranks [lo_i, hi_i); its list is that range by decreasing weight. *)
  node_lists : Wpoint.t array array;
  leaves : int;
  n : int;
}

let name = "range-segtree"

let rec next_pow2 x k = if k >= x then k else next_pow2 x (2 * k)

let build ?params:_ elems =
  let sorted = Array.copy elems in
  Array.sort Wpoint.compare_pos sorted;
  let n = Array.length sorted in
  let leaves = next_pow2 (max 1 n) 1 in
  let node_lists = Array.make (2 * leaves) [||] in
  (* Build bottom-up: a node's list is the weight-descending merge of
     its children's lists. *)
  for i = 0 to n - 1 do
    node_lists.(leaves + i) <- [| sorted.(i) |]
  done;
  let merge a b =
    let la = Array.length a and lb = Array.length b in
    let out = Array.make (la + lb) (if la > 0 then a.(0) else b.(0)) in
    let ia = ref 0 and ib = ref 0 in
    for k = 0 to la + lb - 1 do
      if
        !ib >= lb
        || (!ia < la && Wpoint.compare_weight a.(!ia) b.(!ib) > 0)
      then begin
        out.(k) <- a.(!ia);
        incr ia
      end
      else begin
        out.(k) <- b.(!ib);
        incr ib
      end
    done;
    out
  in
  for i = leaves - 1 downto 1 do
    let l = node_lists.(2 * i) and r = node_lists.((2 * i) + 1) in
    if Array.length l + Array.length r > 0 then
      node_lists.(i) <- merge l r
  done;
  {
    positions = Array.map (fun (p : Wpoint.t) -> p.Wpoint.pos) sorted;
    node_lists;
    leaves;
    n;
  }

let size t = t.n

let space_words t =
  Array.length t.positions
  + Array.fold_left (fun acc l -> acc + Array.length l) 0 t.node_lists
  + Array.length t.node_lists

(* Rank range [a, b) of positions within [lo, hi]. *)
let rank_range t (lo, hi) =
  Stats.charge_ios
    (max 1 (int_of_float (Float.log2 (float_of_int (t.n + 2)))));
  let a = Search.lower_bound ~cmp:Float.compare t.positions lo in
  let b = Search.upper_bound ~cmp:Float.compare t.positions hi in
  (a, b)

let scan_node t node ~tau f =
  Stats.charge_ios 1;
  let lst = t.node_lists.(node) in
  let i = ref 0 in
  let continue = ref true in
  while !continue && !i < Array.length lst do
    let p = lst.(!i) in
    if p.Wpoint.weight >= tau then begin
      Stats.charge_scan 1;
      f p;
      incr i
    end
    else continue := false
  done

let visit t q ~tau f =
  let a, b = rank_range t q in
  if a < b then begin
    (* Standard iterative canonical decomposition of [a, b). *)
    let l = ref (t.leaves + a) and r = ref (t.leaves + b) in
    while !l < !r do
      if !l land 1 = 1 then begin
        scan_node t !l ~tau f;
        incr l
      end;
      if !r land 1 = 1 then begin
        decr r;
        scan_node t !r ~tau f
      end;
      l := !l / 2;
      r := !r / 2
    done
  end

let query t q ~tau =
  let acc = ref [] in
  visit t q ~tau (fun p -> acc := p :: !acc);
  !acc

exception Enough

let query_monitored t q ~tau ~limit =
  let acc = ref [] and count = ref 0 in
  match
    visit t q ~tau (fun p ->
        acc := p :: !acc;
        incr count;
        if !count > limit then raise Enough)
  with
  | () -> Topk_core.Sigs.All !acc
  | exception Enough -> Topk_core.Sigs.Truncated !acc
