module Stats = Topk_em.Stats
module Search = Topk_util.Search
module P = Problem

type t = {
  positions : float array;        (* ascending *)
  best : Wpoint.t option array;   (* per tree node *)
  leaves : int;
  n : int;
}

let name = "range-max-segtree"

let rec next_pow2 x k = if k >= x then k else next_pow2 x (2 * k)

let build ?params:_ elems =
  let sorted = Array.copy elems in
  Array.sort Wpoint.compare_pos sorted;
  let n = Array.length sorted in
  let leaves = next_pow2 (max 1 n) 1 in
  let best = Array.make (2 * leaves) None in
  for i = 0 to n - 1 do
    best.(leaves + i) <- Some sorted.(i)
  done;
  let heavier a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some p, Some q -> if Wpoint.compare_weight p q >= 0 then a else b
  in
  for i = leaves - 1 downto 1 do
    best.(i) <- heavier best.(2 * i) best.((2 * i) + 1)
  done;
  {
    positions = Array.map (fun (p : Wpoint.t) -> p.Wpoint.pos) sorted;
    best;
    leaves;
    n;
  }

let size t = t.n

let space_words t = Array.length t.positions + Array.length t.best

let query t (lo, hi) =
  Stats.charge_ios
    (max 1 (int_of_float (Float.log2 (float_of_int (t.n + 2)))));
  let a = Search.lower_bound ~cmp:Float.compare t.positions lo in
  let b = Search.upper_bound ~cmp:Float.compare t.positions hi in
  if a >= b then None
  else begin
    let best = ref None in
    let consider = function
      | None -> ()
      | Some p -> (
          match !best with
          | None -> best := Some p
          | Some q -> if Wpoint.compare_weight p q > 0 then best := Some p)
    in
    let l = ref (t.leaves + a) and r = ref (t.leaves + b) in
    while !l < !r do
      Stats.charge_ios 1;
      if !l land 1 = 1 then begin
        consider t.best.(!l);
        incr l
      end;
      if !r land 1 = 1 then begin
        decr r;
        consider t.best.(!r)
      end;
      l := !l / 2;
      r := !r / 2
    done;
    !best
  end
