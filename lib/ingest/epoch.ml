(* See epoch.mli. *)

type 'v epoch = { ep_id : int; ep_value : 'v; mutable ep_pins : int }

type 'v t = {
  mu : Mutex.t;
  mutable current : 'v epoch;
  mutable retired : 'v epoch list;  (* superseded but still pinned *)
}

type 'v pin = { p_epoch : 'v epoch; p_owner : 'v t; mutable p_released : bool }

let create value =
  {
    mu = Mutex.create ();
    current = { ep_id = 0; ep_value = value; ep_pins = 0 };
    retired = [];
  }

let current_id t = Mutex.protect t.mu (fun () -> t.current.ep_id)

let current t = Mutex.protect t.mu (fun () -> t.current.ep_value)

let pin t =
  Mutex.protect t.mu (fun () ->
      let ep = t.current in
      ep.ep_pins <- ep.ep_pins + 1;
      { p_epoch = ep; p_owner = t; p_released = false })

let value p = p.p_epoch.ep_value

let pin_id p = p.p_epoch.ep_id

let unpin p =
  let t = p.p_owner in
  Mutex.protect t.mu (fun () ->
      if not p.p_released then begin
        p.p_released <- true;
        let ep = p.p_epoch in
        ep.ep_pins <- ep.ep_pins - 1;
        (* Reclaim: a superseded epoch whose last reader just left is
           dropped from the retired list, releasing its level-set. *)
        if ep.ep_pins = 0 && ep != t.current then
          t.retired <- List.filter (fun e -> e != ep) t.retired
      end)

let publish t f =
  Mutex.protect t.mu (fun () ->
      let old = t.current in
      t.current <-
        { ep_id = old.ep_id + 1; ep_value = f old.ep_value; ep_pins = 0 };
      (* Superseded-but-pinned epochs stay reachable until their last
         reader unpins; an unpinned one is dropped immediately. *)
      if old.ep_pins > 0 then t.retired <- old :: t.retired;
      t.current.ep_id)

let oldest_pinned t =
  Mutex.protect t.mu (fun () ->
      let pinned =
        List.filter_map
          (fun e -> if e.ep_pins > 0 then Some e.ep_id else None)
          (t.current :: t.retired)
      in
      match pinned with
      | [] -> None
      | ids -> Some (List.fold_left min max_int ids))

let lag t =
  Mutex.protect t.mu (fun () ->
      match
        List.filter_map
          (fun e -> if e.ep_pins > 0 then Some e.ep_id else None)
          (t.current :: t.retired)
      with
      | [] -> 0
      | ids -> t.current.ep_id - List.fold_left min max_int ids)

let retired_count t = Mutex.protect t.mu (fun () -> List.length t.retired)

let with_pin t f =
  let p = pin t in
  Fun.protect ~finally:(fun () -> unpin p) (fun () -> f (value p))
