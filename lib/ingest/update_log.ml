(* See update_log.mli. *)

type 'e op = Insert of 'e | Delete of 'e

type 'e entry = { seq : int; op : 'e op }

type 'e t = {
  cap : int;
  mutable arr : 'e entry array;  (* length 0 until first append *)
  mutable len : int;
}

let create ~cap =
  if cap < 1 then
    invalid_arg
      (Printf.sprintf "Update_log.create: cap must be >= 1 (got %d)" cap);
  { cap; arr = [||]; len = 0 }

let cap t = t.cap

let length t = t.len

let is_empty t = t.len = 0

let is_full t = t.len >= t.cap

let append t entry =
  if is_full t then invalid_arg "Update_log.append: log is full (seal first)";
  (* The backing array is allocated on first use and never grown in
     place: a pinned reader's [(arr, len)] prefix stays immutable under
     every later append, and [reset] detaches the whole array. *)
  if Array.length t.arr = 0 then t.arr <- Array.make t.cap entry
  else t.arr.(t.len) <- entry;
  t.len <- t.len + 1

let view t = (t.arr, t.len)

let reset t =
  t.arr <- [||];
  t.len <- 0

(* Latest op per id over a captured prefix: the replay semantics every
   reader and the sealer share.  [Some e] — the id's latest op is an
   insert of [e]; [None] — its latest op is a delete. *)
let replay ~id arr len =
  let tbl = Hashtbl.create (max 16 len) in
  for i = 0 to len - 1 do
    match arr.(i).op with
    | Insert e -> Hashtbl.replace tbl (id e) (Some e)
    | Delete e -> Hashtbl.replace tbl (id e) None
  done;
  tbl

let pp_entry pp_elem ppf { seq; op } =
  match op with
  | Insert e -> Format.fprintf ppf "@[<h>+%a@@%d@]" pp_elem e seq
  | Delete e -> Format.fprintf ppf "@[<h>-%a@@%d@]" pp_elem e seq

let pp pp_elem ppf t =
  Format.fprintf ppf "@[<h>log[%d/%d]:" t.len t.cap;
  for i = 0 to t.len - 1 do
    Format.fprintf ppf " %a" (pp_entry pp_elem) t.arr.(i)
  done;
  Format.fprintf ppf "@]"
