(** Live ingestion: make any {!Topk_core.Sigs.TOPK} structure
    updatable under concurrent reads.

    The paper's structures (and the serving stack built on them) are
    static; this functor wraps one in the architecture shared by Tao's
    dynamic top-k range structure (arXiv:1208.4516) and Brodal's EM
    top-k with sublogarithmic updates (arXiv:1509.08240): a small
    mutable front buffer plus a geometric hierarchy of immutable
    static runs merged in the background.

    {b Write path.}  Inserts and tombstoned deletes append to a
    bounded {!Update_log} (amortized O(1/B) I/Os each).  When the log
    fills, it is sealed — replayed ("latest op per id wins") into a
    fresh level-0 run built with [T.build] — and a new epoch is
    published.  When a level accumulates [fanout] runs, the level
    manager merges its oldest [fanout] into one run a level up; with a
    [?pool], merges run as background jobs on the
    {!Topk_service.Executor} (retried on transient faults, supervised
    across worker crashes, their I/O charged to the worker domain that
    ran them), otherwise inline.  Tombstones ride the runs downward
    and purge when a merge reaches the oldest run.  The classic
    Bentley–Saxe argument gives O((log n)/B) amortized I/Os per
    update.

    {b Read path.}  A reader {!pin}s the current {!Epoch}: an
    immutable run list plus the log prefix at pin time.  Queries
    replay the log (naive scan, EM-charged), answer each run exactly
    (staged doubling past newer sources' overrides), and join
    everything with the certified k-way {!Topk_shard.Gather.merge}.
    Readers never block on compaction and never observe a torn level
    set; superseded level sets are reclaimed when their last reader
    unpins.

    Answers are {e exact} over the surviving set at the pinned view —
    the same set {!Make.view_live} replays from scratch, which is what
    the ingest bench compares against.

    {b Durability.}  The wrapper itself is volatile.  A {!sink}
    installed at {!Make.create} (or {!Make.restore}) time makes it
    durable: every accepted update is offered to the sink {e before}
    the in-memory state acknowledges it (WAL-first), and every epoch
    publish — seal, merge, freeze — is reported with a portable
    {!run_data} description of the level set plus the unsealed log
    suffix, which is exactly what a checkpoint needs.
    {!Topk_durable.Store} provides the production sink (write-ahead
    log, checkpointed snapshots, crash recovery). *)

(** A portable, structure-agnostic description of one immutable run:
    its level, the newest op sequence folded into it, the live
    elements, and the tombstoned ids it carries against older runs.
    What {!Make.restore} consumes and snapshots serialize. *)
type 'e run_data = {
  rd_level : int;
  rd_seq : int;
  rd_elems : 'e array;
  rd_dead : int array;
}

type event = Sealed | Merged | Frozen
(** Which epoch publish triggered an [s_event] callback. *)

(** The durability hook.  All calls happen under the wrapper's mutex
    (no sink-side locking needed); a sink that raises aborts the
    triggering operation before it is acknowledged. *)
type 'e sink = {
  s_append : 'e Update_log.entry -> unit;
      (** Called for every accepted update, before the in-memory
          append.  Sequence numbers are contiguous from 1. *)
  s_event : event -> runs:'e run_data list -> log:'e Update_log.entry list -> unit;
      (** Called after every epoch publish with the full run list
          (newest first) and the unsealed log suffix at that moment. *)
}

module Make (T : Topk_core.Sigs.TOPK) : sig
  module P :
    Topk_core.Sigs.PROBLEM
      with type elem = T.P.elem
       and type query = T.P.query

  type t

  type view
  (** A pinned snapshot: queries against it are stable under
      concurrent writes. *)

  val create :
    ?params:Topk_core.Params.t ->
    ?buffer_cap:int ->
    ?fanout:int ->
    ?pool:Topk_service.Executor.t ->
    ?metrics:Topk_service.Metrics.t ->
    ?sink:P.elem sink ->
    P.elem array ->
    t
  (** Wrap a freshly built [T] over [elems] (the {e base} run).
      [buffer_cap] (default 1024) bounds the update log; [fanout]
      (default 4) is the merge arity per level.  With [?pool], merges
      are scheduled on it ([metrics] defaults to the pool's);
      without, merges run inline on the writer.  [sink] is the
      durability hook (see {!sink}).
      @raise Invalid_argument if [buffer_cap < 1] or [fanout < 2]. *)

  val restore :
    ?params:Topk_core.Params.t ->
    ?buffer_cap:int ->
    ?fanout:int ->
    ?pool:Topk_service.Executor.t ->
    ?metrics:Topk_service.Metrics.t ->
    ?sink:P.elem sink ->
    runs:P.elem run_data list ->
    next_seq:int ->
    unit ->
    t
  (** Rebuild a wrapper from recovered run descriptions (newest first,
      base last), re-running [T.build] over each run's elements.  The
      recovered instance answers exactly over the surviving set the
      runs describe; subsequent updates continue the sequence stream
      at [next_seq].
      @raise Invalid_argument if [runs] is empty, a run's [rd_seq] is
      not below [next_seq], or a parameter is out of range. *)

  val insert : t -> P.elem -> unit
  (** Append an insert.  Inserting an id that is already live
      replaces it (newest wins).  May seal the buffer (and schedule a
      merge) when full.
      @raise Invalid_argument after {!freeze}. *)

  val delete : t -> P.elem -> unit
  (** Append a delete tombstone; deleting an absent id is a no-op in
      the surviving set.
      @raise Invalid_argument after {!freeze}. *)

  val query : t -> P.query -> k:int -> P.elem list
  (** Exact top-k over the surviving set at the current epoch
      ([k <= 0] answers [[]] uncharged, like every TOPK). *)

  val freeze : t -> unit
  (** Stop accepting writes, seal the remaining buffer, and wait for
      background compaction to settle.  Idempotent; queries keep
      working. *)

  (** {1 Pinned views} *)

  val pin : t -> view
  val unpin : view -> unit
  (** Unpin (idempotent); the last unpin of a superseded epoch
      reclaims its level set. *)

  val query_view : view -> P.query -> k:int -> P.elem list
  (** {!query} against the pinned snapshot. *)

  val view_live : view -> P.elem list
  (** The surviving element set of the snapshot, replayed from scratch
      and {e uncharged} — the oracle for correctness checks. *)

  val view_epoch : view -> int
  val view_runs : view -> int
  (** Number of runs in the pinned level set (the [visited] argument
      of the [Dynamic] cost model in {!Topk_trace.Certify}). *)

  val view_seq : view -> int
  (** The newest op sequence number folded into this snapshot ([0] for
      an empty one).  A replicated read reports it as the response's
      read-your-writes token. *)

  (** {1 Integration} *)

  val update_ops : t -> P.elem Topk_service.Registry.update_ops

  val register :
    Topk_service.Registry.t -> name:string -> t -> (P.query, P.elem) Topk_service.Registry.handle
  (** Register the wrapper as a queryable instance whose handle
      carries {!update_ops} — [Registry.insert]/[delete]/[freeze]
      work on it. *)

  (** The wrapper as a TOPK in its own right ([build] wraps
      [create] with defaults and no pool). *)
  module Topk :
    Topk_core.Sigs.TOPK
      with module P = P
       and type t = t

  val delta_of_view : view -> (P.query, P.elem) Topk_shard.Delta.t
  (** The pending-update view (everything newer than the base run) as
      a {!Topk_shard.Delta} for the scatter/planner delta path.  Valid
      while the view stays pinned; build it fresh per query. *)

  (** {1 Introspection} *)

  val size : t -> int
  (** Surviving elements (exact while ids are only re-inserted after
      a delete, which the newest-wins semantics makes the natural
      usage). *)

  val space_words : t -> int
  val epoch : t -> int
  val epoch_lag : t -> int
  val levels : t -> (int * int) list
  (** [(level, runs)] per contiguous level block, newest first. *)

  val run_count : t -> int
  val log_length : t -> int

  val last_seq : t -> int
  (** The newest op sequence number assigned so far ([0] before the
      first update). *)

  val run_datas : t -> P.elem run_data list
  (** Portable descriptions of the current level set, newest first —
      what an initial durable checkpoint serializes. *)

  val log_entries : t -> P.elem Update_log.entry list
  (** The unsealed log suffix at this moment, oldest first. *)

  val durable_state : t -> P.elem run_data list * P.elem Update_log.entry list
  (** {!run_datas} and {!log_entries} captured under one lock hold — a
      consistent cut even against a concurrent writer ({!run_datas}
      then {!log_entries} as two calls could lose a seal that lands
      between them).  The cut is only guaranteed fresh at the instant
      the lock is released; to {e act} on it atomically, use
      {!with_durable_state}. *)

  val with_durable_state :
    t ->
    (runs:P.elem run_data list -> log:P.elem Update_log.entry list -> 'a) ->
    'a
  (** Run [f] over the {!durable_state} cut while {e still holding}
      the wrapper's mutex: no update is accepted and no {!sink} event
      fires until [f] returns.  This is what a manual durable
      checkpoint needs — capturing the cut and committing it must be
      one critical section, or a concurrent writer could append to a
      WAL segment the checkpoint is about to retire (losing an acked
      update), and a sink-driven checkpoint could be overwritten by a
      staler manual capture.  [f] must not call back into this
      wrapper. *)

  val frozen : t -> bool
  val wedged : t -> bool
  (** A background merge failed permanently (retries exhausted or the
      pool shut down): compaction is parked, serving continues on the
      last published epoch. *)

  val name_of : t -> string
end
