(** Epoch-based snapshot management: refcounted immutable versions.

    Writers {!publish} a new version (seal, merge); readers {!pin} the
    current one and work off it lock-free — a pinned version is
    immutable, so queries never block on compaction and never observe
    a torn level set.  A superseded version is kept on a retired list
    while it has readers and reclaimed (dropped, releasing its levels
    to the GC) exactly when its last reader {!unpin}s.

    All bookkeeping is under one internal mutex; the critical sections
    are O(pinned epochs), never O(data). *)

type 'v t

type 'v pin

val create : 'v -> 'v t
(** Epoch 0 holds the initial version. *)

val current_id : 'v t -> int

val current : 'v t -> 'v
(** The current version, unpinned — for diagnostics only; readers who
    dereference it must {!pin}. *)

val pin : 'v t -> 'v pin
(** Take a reference on the current epoch. *)

val value : 'v pin -> 'v

val pin_id : 'v pin -> int
(** The epoch id this pin holds. *)

val unpin : 'v pin -> unit
(** Release the reference (idempotent).  Dropping the last reference
    of a superseded epoch reclaims it. *)

val publish : 'v t -> ('v -> 'v) -> int
(** [publish t f] atomically replaces the current version [v] with
    [f v] under the epoch lock and returns the new epoch id.  [f] must
    be cheap (list surgery, not data movement). *)

val oldest_pinned : 'v t -> int option
(** The smallest epoch id still pinned by some reader, if any. *)

val lag : 'v t -> int
(** [current_id - oldest_pinned], or [0] when nothing is pinned — the
    epoch-lag gauge of the metrics layer. *)

val retired_count : 'v t -> int
(** Superseded epochs still held by readers. *)

val with_pin : 'v t -> ('v -> 'a) -> 'a
(** Pin, run, unpin (exception-safe). *)
