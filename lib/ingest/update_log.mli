(** The bounded in-memory update buffer: sequence-stamped
    [Insert]/[Delete] operations in arrival order.

    The log is the mutable front of the ingestion pipeline
    ({!Ingest}): writers append under the owner's mutex until the log
    is full, at which point the owner seals the prefix into an
    immutable level-0 run and {!reset}s the log.  The replay format is
    deterministic — operations are totally ordered by their [seq]
    stamp, and {!replay} ("latest op per id wins") is the single
    semantics shared by readers, the sealer, and oracles.

    Concurrency contract: all mutation happens under the owner's lock.
    A reader who captured [(arr, len)] from {!view} under that lock may
    scan the prefix lock-free afterwards — later appends only write
    past [len], and the backing array is never grown in place (a
    {!reset} detaches it wholesale). *)

type 'e op = Insert of 'e | Delete of 'e  (** [Delete] is a tombstone. *)

type 'e entry = { seq : int; op : 'e op }

type 'e t

val create : cap:int -> 'e t
(** An empty log sealing at [cap] entries.
    @raise Invalid_argument if [cap < 1]. *)

val cap : 'e t -> int

val length : 'e t -> int

val is_empty : 'e t -> bool

val is_full : 'e t -> bool

val append : 'e t -> 'e entry -> unit
(** @raise Invalid_argument when full — the owner must seal first. *)

val view : 'e t -> 'e entry array * int
(** The backing array and current length.  Capture both under the
    owner's lock; the prefix is then immutable. *)

val reset : 'e t -> unit
(** Detach the backing array (pinned views keep theirs) and start an
    empty log. *)

val replay : id:('e -> int) -> 'e entry array -> int -> (int, 'e option) Hashtbl.t
(** [replay ~id arr len]: the latest op per id over the prefix —
    [Some e] for a live (re)insert, [None] for a delete.  The caller
    charges the EM scan. *)

val pp_entry :
  (Format.formatter -> 'e -> unit) -> Format.formatter -> 'e entry -> unit
(** Deterministic textual replay form: [+e@seq] / [-e@seq]. *)

val pp : (Format.formatter -> 'e -> unit) -> Format.formatter -> 'e t -> unit
