(* Live ingestion: bounded update log -> sealed level-0 runs ->
   geometric background merges -> epoch-published level sets.
   See ingest.mli for the contract. *)

module Sigs = Topk_core.Sigs
module Stats = Topk_em.Stats
module Fault = Topk_em.Fault
module Tr = Topk_trace.Trace
module Executor = Topk_service.Executor
module Registry = Topk_service.Registry
module Metrics = Topk_service.Metrics
module Future = Topk_service.Future
module Response = Topk_service.Response
module Gather = Topk_shard.Gather
module Delta = Topk_shard.Delta
module Log = Update_log

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r

(* Transient EM faults during inline (writer-side) sealing are retried
   in place, mirroring the executor's treatment of worker-side jobs. *)
let rec with_retries n f =
  try f () with Fault.Em_fault _ when n > 1 -> with_retries (n - 1) f

(* ---- durability hooks ----

   A [sink] is the write-ahead observer the durable layer
   ({!Topk_durable.Store}) installs: every accepted update is offered
   to [s_append] {e before} it lands in the in-memory log (WAL-first
   discipline), and every epoch publish — seal, merge, freeze — is
   reported through [s_event] together with a portable description of
   the full run list and the unsealed log suffix, which is everything
   a checkpoint needs.  All sink calls happen under the wrapper's
   mutex, so the sink needs no locking of its own; a sink that raises
   (a simulated disk crash) aborts the triggering operation before the
   in-memory state acknowledges it. *)

type 'e run_data = {
  rd_level : int;
  rd_seq : int;
  rd_elems : 'e array;
  rd_dead : int array;
}

type event = Sealed | Merged | Frozen

type 'e sink = {
  s_append : 'e Log.entry -> unit;
  s_event : event -> runs:'e run_data list -> log:'e Log.entry list -> unit;
}

module Make (T : Sigs.TOPK) = struct
  module P = T.P
  module W = Sigs.Weight_order (P)

  (* One immutable run.  [r_ids] are the ids of the live elements baked
     into the run; [r_dead] are the tombstones it carries against
     strictly older runs.  Both tables override older sources at query
     time (newest wins). *)
  type run = {
    r_level : int;
    r_seq : int;  (* newest op sequence folded into this run *)
    r_elems : P.elem array;
    r_topk : T.t;
    r_ids : (int, unit) Hashtbl.t;
    r_dead : (int, unit) Hashtbl.t;
  }

  (* A version is the immutable level set, newest run first; the base
     (the initially-built structure) is the last run. *)
  type version = run list

  type t = {
    mu : Mutex.t;
    params : Topk_core.Params.t option;
    buffer_cap : int;
    fanout : int;
    name : string;
    epochs : version Epoch.t;
    log : P.elem Log.t;
    log_state : (int, bool) Hashtbl.t;  (* latest op per id in the log *)
    mutable seq : int;
    mutable live : int;
    mutable frozen : bool;
    mutable merging : bool;  (* one background merge outstanding at most *)
    mutable wedged : bool;   (* a merge failed permanently; stop scheduling *)
    mutable merge_gen : int; (* bumped when a merge is scheduled or retired *)
    mutable pending : unit Response.t Future.t option;
    pool : Executor.t option;
    metrics : Metrics.t option;
    sink : P.elem sink option;
  }

  (* A merge job: its inputs (a physically contiguous, same-level block
     of the run list, newest first) and whether the block includes the
     globally oldest run — in which case tombstones can be purged,
     because there is nothing older left for them to kill. *)
  type job = { j_inputs : run list; j_purge : bool }

  type view = {
    w_pin : version Epoch.pin;
    w_runs : run list;
    w_log : P.elem Log.entry array;
    w_log_len : int;
  }

  let m_counter t f = match t.metrics with Some m -> Metrics.Counter.incr (f m) | None -> ()

  let update_lag t =
    match t.metrics with
    | Some m -> Metrics.Gauge.set m.Metrics.epoch_lag (Epoch.lag t.epochs)
    | None -> ()

  let ids_of elems =
    let h = Hashtbl.create (max 16 (Array.length elems)) in
    Array.iter (fun e -> Hashtbl.replace h (P.id e) ()) elems;
    h

  let mk_run ?params ~level ~seq ~dead elems =
    {
      r_level = level;
      r_seq = seq;
      r_elems = elems;
      r_topk = T.build ?params elems;
      r_ids = ids_of elems;
      r_dead = dead;
    }

  (* The base enters the hierarchy at the level a merged run of its
     size would occupy, so compaction eventually reaches (and purges
     through) it. *)
  let level_of_size ~cap ~fanout n =
    let rec go level capacity =
      if capacity >= n || level >= 60 then level else go (level + 1) (capacity * fanout)
    in
    go 0 cap

  let run_data_of r =
    {
      rd_level = r.r_level;
      rd_seq = r.r_seq;
      rd_elems = r.r_elems;
      rd_dead = Array.of_seq (Seq.map fst (Hashtbl.to_seq r.r_dead));
    }

  (* Call with [t.mu] held. *)
  let run_datas_locked t = List.map run_data_of (Epoch.current t.epochs)

  let log_entries_locked t =
    let arr, len = Log.view t.log in
    Array.to_list (Array.sub arr 0 len)

  let emit_locked t ev =
    match t.sink with
    | None -> ()
    | Some s ->
        s.s_event ev ~runs:(run_datas_locked t) ~log:(log_entries_locked t)

  let create ?params ?(buffer_cap = 1024) ?(fanout = 4) ?pool ?metrics ?sink
      elems =
    if buffer_cap < 1 then
      invalid_arg
        (Printf.sprintf "Ingest.create: buffer_cap must be >= 1 (got %d)"
           buffer_cap);
    if fanout < 2 then
      invalid_arg
        (Printf.sprintf "Ingest.create: fanout must be >= 2 (got %d)" fanout);
    let metrics =
      match (metrics, pool) with
      | (Some _ as m), _ -> m
      | None, Some p -> Some (Executor.metrics p)
      | None, None -> None
    in
    let elems = Array.copy elems in
    let base =
      mk_run ?params
        ~level:(level_of_size ~cap:buffer_cap ~fanout (Array.length elems))
        ~seq:0
        ~dead:(Hashtbl.create 1) elems
    in
    {
      mu = Mutex.create ();
      params;
      buffer_cap;
      fanout;
      name = "ingest(" ^ T.name ^ ")";
      epochs = Epoch.create [ base ];
      log = Log.create ~cap:buffer_cap;
      log_state = Hashtbl.create (max 16 buffer_cap);
      seq = 1;
      live = Array.length elems;
      frozen = false;
      merging = false;
      wedged = false;
      merge_gen = 0;
      pending = None;
      pool;
      metrics;
      sink;
    }

  (* Rebuild a wrapper from recovered run descriptions (newest first,
     the base run last) — the re-entry point of {!Topk_durable.Store}
     after a crash.  [next_seq] must exceed every sequence number baked
     into [runs]; subsequent updates continue the stream from there. *)
  let restore ?params ?(buffer_cap = 1024) ?(fanout = 4) ?pool ?metrics ?sink
      ~runs ~next_seq () =
    if buffer_cap < 1 then
      invalid_arg
        (Printf.sprintf "Ingest.restore: buffer_cap must be >= 1 (got %d)"
           buffer_cap);
    if fanout < 2 then
      invalid_arg
        (Printf.sprintf "Ingest.restore: fanout must be >= 2 (got %d)" fanout);
    if runs = [] then invalid_arg "Ingest.restore: runs must be non-empty";
    if next_seq < 1 then
      invalid_arg
        (Printf.sprintf "Ingest.restore: next_seq must be >= 1 (got %d)"
           next_seq);
    List.iter
      (fun rd ->
        if rd.rd_seq >= next_seq then
          invalid_arg
            (Printf.sprintf
               "Ingest.restore: run seq %d is not below next_seq %d" rd.rd_seq
               next_seq))
      runs;
    let metrics =
      match (metrics, pool) with
      | (Some _ as m), _ -> m
      | None, Some p -> Some (Executor.metrics p)
      | None, None -> None
    in
    let rebuild rd =
      let dead = Hashtbl.create (max 1 (Array.length rd.rd_dead)) in
      Array.iter (fun i -> Hashtbl.replace dead i ()) rd.rd_dead;
      mk_run ?params ~level:rd.rd_level ~seq:rd.rd_seq ~dead rd.rd_elems
    in
    let rs = List.map rebuild runs in
    (* Surviving-element count: replay newest-first, ids shadowed by a
       newer run's ids or tombstones are not live. *)
    let killed = Hashtbl.create 64 in
    let live = ref 0 in
    List.iter
      (fun r ->
        Hashtbl.iter
          (fun i () ->
            if not (Hashtbl.mem killed i) then begin
              incr live;
              Hashtbl.replace killed i ()
            end)
          r.r_ids;
        Hashtbl.iter (fun i () -> Hashtbl.replace killed i ()) r.r_dead)
      rs;
    {
      mu = Mutex.create ();
      params;
      buffer_cap;
      fanout;
      name = "ingest(" ^ T.name ^ ")";
      epochs = Epoch.create rs;
      log = Log.create ~cap:buffer_cap;
      log_state = Hashtbl.create (max 16 buffer_cap);
      seq = next_seq;
      live = !live;
      frozen = false;
      merging = false;
      wedged = false;
      merge_gen = 0;
      pending = None;
      pool;
      metrics;
      sink;
    }

  (* ---- level manager: merge selection ---- *)

  (* Contiguous same-level blocks of the run list, newest first. *)
  let blocks runs =
    let rec go acc cur = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | r :: rest -> (
          match cur with
          | c :: _ when c.r_level = r.r_level -> go acc (r :: cur) rest
          | [] -> go acc [ r ] rest
          | _ -> go (List.rev cur :: acc) [ r ] rest)
    in
    go [] [] runs

  (* Pick the lowest level holding >= fanout runs and merge its oldest
     [fanout] — classic tiering: small merges first, each output run
     climbing one level. *)
  let merge_candidates t runs =
    let eligible =
      List.filter (fun b -> List.length b >= t.fanout) (blocks runs)
    in
    match eligible with
    | [] -> None
    | b0 :: bs ->
        let best =
          List.fold_left
            (fun a b ->
              if (List.hd b).r_level < (List.hd a).r_level then b else a)
            b0 bs
        in
        let inputs = drop (List.length best - t.fanout) best in
        let oldest_run = List.nth runs (List.length runs - 1) in
        let j_purge =
          List.exists (fun r -> r == oldest_run) inputs
        in
        Some { j_inputs = inputs; j_purge }

  (* Call with [t.mu] held.  Marks the merge in flight and returns the
     job (tagged with the generation that scheduled it) for the caller
     to dispatch outside the lock.  The generation lets the dispatcher
     detect that the merge already ran to completion on a worker before
     the dispatcher got around to recording its future — in that case
     the future must not be recorded (it would be stale, or clobber the
     future of a cascaded follow-up merge). *)
  let maybe_schedule_locked t =
    if t.merging || t.wedged then None
    else
      match merge_candidates t (Epoch.current t.epochs) with
      | None -> None
      | Some job ->
          t.merging <- true;
          t.merge_gen <- t.merge_gen + 1;
          Some (job, t.merge_gen)

  (* If an async merge died permanently (retries exhausted, pool shut
     down), note it and stop scheduling: the pre-merge epoch stays
     current and correct. *)
  let reap_failed_merge_locked t =
    match t.pending with
    | Some fut -> (
        match Future.poll fut with
        | Some r -> (
            t.pending <- None;
            t.merge_gen <- t.merge_gen + 1;
            match r.Response.status with
            | Response.Failed _ ->
                t.merging <- false;
                t.wedged <- true
            | _ -> ())
        | None -> ())
    | None -> ()

  (* ---- merging ---- *)

  (* Fold the input block (newest first) into one run a level up.
     Within the block, newest wins: an element survives unless a
     strictly newer input re-asserted or tombstoned its id.  The output
     must override older (non-input) runs exactly as the inputs jointly
     did, so its tombstones are the union of every input's
     [ids ∪ dead] minus the ids it keeps live — unless the block
     includes the oldest run, where tombstones purge entirely. *)
  let merge_runs t { j_inputs = inputs; j_purge } =
    let killed = Hashtbl.create 64 in
    let over = Hashtbl.create 64 in
    let out = ref [] in
    let scanned = ref 0 in
    List.iter
      (fun r ->
        scanned := !scanned + Array.length r.r_elems + Hashtbl.length r.r_dead;
        Array.iter
          (fun e ->
            let i = P.id e in
            Hashtbl.replace over i ();
            if not (Hashtbl.mem killed i) then out := e :: !out;
            Hashtbl.replace killed i ())
          r.r_elems;
        Hashtbl.iter
          (fun i () ->
            Hashtbl.replace killed i ();
            Hashtbl.replace over i ())
          r.r_dead)
      inputs;
    let elems = Array.of_list !out in
    (* Merge I/O: read every input element and tombstone, write the
       output — charged to the domain running the merge. *)
    Stats.charge_scan !scanned;
    Stats.charge_scan (Array.length elems);
    let dead =
      if j_purge then Hashtbl.create 1
      else begin
        let d = Hashtbl.create (Hashtbl.length over) in
        let live_ids = ids_of elems in
        Hashtbl.iter
          (fun i () -> if not (Hashtbl.mem live_ids i) then Hashtbl.replace d i ())
          over;
        d
      end
    in
    let seq = List.fold_left (fun a r -> max a r.r_seq) 0 inputs in
    mk_run ?params:t.params
      ~level:((List.hd inputs).r_level + 1)
      ~seq ~dead elems

  (* Replace the (physically contiguous) input block with the merged
     run, preserving positions — seals only prepend, so the block's
     place in the list is stable while the merge ran. *)
  let replace_block inputs merged runs =
    let first = List.hd inputs in
    let rec go = function
      | [] -> [ merged ]  (* unreachable: inputs are in [runs] *)
      | r :: rest when r == first -> merged :: drop (List.length inputs - 1) rest
      | r :: rest -> r :: go rest
    in
    go runs

  let rec dispatch t = function
    | None -> ()
    | Some (job, gen) -> (
        match t.pool with
        | None -> run_merge t job
        | Some pool ->
            let fut =
              Executor.submit_task pool ~lane:Topk_service.Lane.Batch
                ~name:(t.name ^ ".merge") (fun () -> run_merge t job)
            in
            (* Record the future only if this merge is still the
               outstanding one: a fast worker may have completed it (and
               cascaded into the next merge) before we got here. *)
            Mutex.protect t.mu (fun () ->
                if t.merge_gen = gen then t.pending <- Some fut))

  and run_merge t job =
    let t0 = Unix.gettimeofday () in
    let merged =
      Tr.with_span "ingest.merge"
        ~attrs:
          [ ("level", Tr.Int (List.hd job.j_inputs).r_level);
            ("runs", Tr.Int (List.length job.j_inputs));
            ("purge", Tr.Str (if job.j_purge then "yes" else "no")) ]
        (fun () -> merge_runs t job)
    in
    let next =
      Mutex.protect t.mu (fun () ->
          ignore
            (Epoch.publish t.epochs (replace_block job.j_inputs merged) : int);
          t.merging <- false;
          t.merge_gen <- t.merge_gen + 1;  (* retire: block stale recording *)
          t.pending <- None;
          m_counter t (fun m -> m.Metrics.merges);
          (match t.metrics with
          | Some m ->
              Metrics.Histogram.observe m.Metrics.merge_latency_us
                (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6))
          | None -> ());
          update_lag t;
          emit_locked t Merged;
          maybe_schedule_locked t)
    in
    dispatch t next

  (* ---- sealing ---- *)

  (* Call with [t.mu] held.  Seals the whole log prefix into a level-0
     run and publishes the new epoch; returns a merge job to dispatch
     outside the lock, if one became due. *)
  let seal_locked t =
    let arr, len = Log.view t.log in
    if len = 0 then None
    else begin
      let seq = arr.(len - 1).Log.seq in
      let run =
        with_retries 4 (fun () ->
            Tr.with_span "ingest.seal"
              ~attrs:[ ("entries", Tr.Int len); ("seq", Tr.Int seq) ]
              (fun () ->
                Stats.charge_scan len;
                let latest = Log.replay ~id:P.id arr len in
                let dead = Hashtbl.create 16 in
                for i = 0 to len - 1 do
                  match arr.(i).Log.op with
                  | Log.Delete e -> Hashtbl.replace dead (P.id e) ()
                  | Log.Insert _ -> ()
                done;
                let live =
                  Hashtbl.fold
                    (fun _ v acc ->
                      match v with Some e -> e :: acc | None -> acc)
                    latest []
                in
                let elems = Array.of_list live in
                Stats.charge_scan (Array.length elems);
                mk_run ?params:t.params ~level:0 ~seq ~dead elems))
      in
      Log.reset t.log;
      Hashtbl.reset t.log_state;
      ignore (Epoch.publish t.epochs (fun runs -> run :: runs) : int);
      m_counter t (fun m -> m.Metrics.seals);
      update_lag t;
      emit_locked t Sealed;
      maybe_schedule_locked t
    end

  (* ---- write path ---- *)

  (* Call with [t.mu] held: is this id visible right now? *)
  let is_live_locked t id =
    match Hashtbl.find_opt t.log_state id with
    | Some b -> b
    | None ->
        let rec scan = function
          | [] -> false
          | r :: rest ->
              if Hashtbl.mem r.r_ids id then true
              else if Hashtbl.mem r.r_dead id then false
              else scan rest
        in
        scan (Epoch.current t.epochs)

  let push t e op =
    let job =
      Mutex.protect t.mu (fun () ->
          if t.frozen then
            invalid_arg (t.name ^ ": frozen (no further updates accepted)");
          reap_failed_merge_locked t;
          (* The amortized O(1/B) log append. *)
          Stats.charge_scan 1;
          let job = if Log.is_full t.log then seal_locked t else None in
          let id = P.id e in
          let seq = t.seq in
          t.seq <- seq + 1;
          let entry =
            match op with
            | `Insert -> { Log.seq; op = Log.Insert e }
            | `Delete -> { Log.seq; op = Log.Delete e }
          in
          (* WAL-first: the durable sink sees (and may refuse) the op
             before the in-memory state acknowledges it. *)
          (match t.sink with Some s -> s.s_append entry | None -> ());
          (match op with
          | `Insert ->
              if not (is_live_locked t id) then t.live <- t.live + 1;
              Log.append t.log entry;
              Hashtbl.replace t.log_state id true
          | `Delete ->
              if is_live_locked t id then t.live <- t.live - 1;
              Log.append t.log entry;
              Hashtbl.replace t.log_state id false;
              m_counter t (fun m -> m.Metrics.tombstones));
          m_counter t (fun m -> m.Metrics.updates);
          job)
    in
    dispatch t job

  let insert t e = push t e `Insert

  let delete t e = push t e `Delete

  (* ---- read path ---- *)

  let pin t =
    Mutex.protect t.mu (fun () ->
        let p = Epoch.pin t.epochs in
        let arr, len = Log.view t.log in
        update_lag t;
        { w_pin = p; w_runs = Epoch.value p; w_log = arr; w_log_len = len })

  let unpin w = Epoch.unpin w.w_pin

  let view_epoch w = Epoch.pin_id w.w_pin

  let view_runs w = List.length w.w_runs

  let view_seq w =
    if w.w_log_len > 0 then w.w_log.(w.w_log_len - 1).Log.seq
    else List.fold_left (fun a r -> max a r.r_seq) 0 w.w_runs

  let query_view w q ~k =
    if k <= 0 then []
    else begin
      Stats.mark_query ();
      (* Replay the unsealed log prefix: latest op per id wins, and any
         op in the log overrides every sealed source for that id. *)
      let latest =
        Tr.with_span "ingest.replay"
          ~attrs:[ ("entries", Tr.Int w.w_log_len) ]
          (fun () ->
            Stats.charge_scan w.w_log_len;
            Log.replay ~id:P.id w.w_log w.w_log_len)
      in
      let log_top =
        W.top_k k
          (Hashtbl.fold
             (fun _ v acc ->
               match v with
               | Some e when P.matches q e -> e :: acc
               | _ -> acc)
             latest [])
      in
      let killed = Hashtbl.create 64 in
      Hashtbl.iter (fun i _ -> Hashtbl.replace killed i ()) latest;
      (* Runs newest -> oldest: each answers an exact top-k' staged
         until k visible elements survive the newer sources' overrides
         (or the run is exhausted), then contributes its overrides. *)
      let legs = ref [ log_top ] in
      List.iter
        (fun r ->
          let leg =
            if Array.length r.r_elems = 0 then []
            else begin
              let rec staged k' =
                let ans = T.query r.r_topk q ~k:k' in
                let live =
                  List.filter
                    (fun e -> not (Hashtbl.mem killed (P.id e)))
                    ans
                in
                if List.length live >= k || List.length ans < k' then
                  W.top_k k live
                else staged (2 * k')
              in
              staged k
            end
          in
          legs := leg :: !legs;
          Hashtbl.iter (fun i () -> Hashtbl.replace killed i ()) r.r_ids;
          Hashtbl.iter (fun i () -> Hashtbl.replace killed i ()) r.r_dead)
        w.w_runs;
      (* The one charged k-way gather over every source's certified
         leg. *)
      Gather.merge ~cmp:W.compare ~k !legs
    end

  let query t q ~k =
    if k <= 0 then []
    else begin
      let w = pin t in
      Fun.protect
        ~finally:(fun () -> unpin w)
        (fun () -> query_view w q ~k)
    end

  (* Uncharged diagnostic: the surviving element set of a pinned view,
     computed by a straight replay — the oracle the ingest bench (and
     the conformance law) compares answers against. *)
  let view_live w =
    let latest = Log.replay ~id:P.id w.w_log w.w_log_len in
    let killed = Hashtbl.create 64 in
    Hashtbl.iter (fun i _ -> Hashtbl.replace killed i ()) latest;
    let out =
      ref
        (Hashtbl.fold
           (fun _ v acc -> match v with Some e -> e :: acc | None -> acc)
           latest [])
    in
    List.iter
      (fun r ->
        Array.iter
          (fun e ->
            if not (Hashtbl.mem killed (P.id e)) then out := e :: !out)
          r.r_elems;
        Hashtbl.iter (fun i () -> Hashtbl.replace killed i ()) r.r_ids;
        Hashtbl.iter (fun i () -> Hashtbl.replace killed i ()) r.r_dead)
      w.w_runs;
    !out

  (* ---- freeze ---- *)

  let freeze t =
    let did_freeze = ref false in
    let job =
      Mutex.protect t.mu (fun () ->
          if t.frozen then None
          else begin
            t.frozen <- true;
            did_freeze := true;
            reap_failed_merge_locked t;
            seal_locked t
          end)
    in
    dispatch t job;
    (* Drain the background compaction: await the outstanding merge (a
       permanent failure wedges further scheduling — the current epoch
       stays correct), then cascade until nothing is schedulable. *)
    let rec settle () =
      match Mutex.protect t.mu (fun () -> t.pending) with
      | Some fut ->
          let r = Future.await fut in
          (match r.Response.status with
          | Response.Complete -> ()
          | _ ->
              (* Resolved without running to completion: retries
                 exhausted or the pool shut down. *)
              Mutex.protect t.mu (fun () ->
                  match t.pending with
                  | Some f when f == fut ->
                      t.pending <- None;
                      t.merge_gen <- t.merge_gen + 1;
                      t.merging <- false;
                      t.wedged <- true
                  | _ -> ()));
          settle ()
      | None -> (
          match Mutex.protect t.mu (fun () -> maybe_schedule_locked t) with
          | None -> ()
          | Some _ as job ->
              dispatch t job;
              settle ())
    in
    settle ();
    (* The freeze that sealed the tail also checkpoints the settled
       state, exactly once (re-freezing is a no-op). *)
    if !did_freeze then Mutex.protect t.mu (fun () -> emit_locked t Frozen)

  (* ---- introspection / integration ---- *)

  let size t = Mutex.protect t.mu (fun () -> t.live)

  let space_words t =
    Mutex.protect t.mu (fun () ->
        List.fold_left
          (fun acc r -> acc + T.space_words r.r_topk)
          (Log.cap t.log)
          (Epoch.current t.epochs))

  let epoch t = Epoch.current_id t.epochs

  let epoch_lag t = Epoch.lag t.epochs

  let levels t =
    List.map (fun b -> ((List.hd b).r_level, List.length b))
      (blocks (Epoch.current t.epochs))

  let run_count t = List.length (Epoch.current t.epochs)

  let log_length t = Mutex.protect t.mu (fun () -> Log.length t.log)

  let frozen t = Mutex.protect t.mu (fun () -> t.frozen)

  let wedged t = Mutex.protect t.mu (fun () -> t.wedged)

  let last_seq t = Mutex.protect t.mu (fun () -> t.seq - 1)

  let run_datas t = Mutex.protect t.mu (fun () -> run_datas_locked t)

  let log_entries t = Mutex.protect t.mu (fun () -> log_entries_locked t)

  let durable_state t =
    Mutex.protect t.mu (fun () -> (run_datas_locked t, log_entries_locked t))

  let with_durable_state t f =
    Mutex.protect t.mu (fun () ->
        f ~runs:(run_datas_locked t) ~log:(log_entries_locked t))

  let name_of t = t.name

  let update_ops t =
    {
      Registry.u_insert = (fun e -> insert t e);
      u_delete = (fun e -> delete t e);
      u_freeze = (fun () -> freeze t);
    }

  (* The wrapper is itself a TOPK, so it can be registered, scattered
     over, swept by the conformance suite, and re-wrapped. *)
  module Topk = struct
    module P = P

    type nonrec t = t

    let name = "ingest(" ^ T.name ^ ")"

    let build ?params elems = create ?params elems

    let size = size

    let space_words = space_words

    let query = query
  end

  let register registry ~name t =
    Registry.register ~update:(update_ops t) registry ~name (module Topk) t

  (* A per-shard pending-update view over everything newer than the
     base run, for the scatter/planner delta path.  Built from a
     pinned view: valid while the view stays pinned. *)
  let delta_of_view w =
    match List.rev w.w_runs with
    | [] -> Delta.none ()
    | _base :: above_rev ->
        let above = List.rev above_rev in  (* newest first, base dropped *)
        let latest = Log.replay ~id:P.id w.w_log w.w_log_len in
        let killed = Hashtbl.create 64 in
        let override = Hashtbl.create 64 in
        Hashtbl.iter
          (fun i _ ->
            Hashtbl.replace killed i ();
            Hashtbl.replace override i ())
          latest;
        let buffered =
          ref
            (Hashtbl.fold
               (fun _ v acc -> match v with Some e -> e :: acc | None -> acc)
               latest [])
        in
        List.iter
          (fun r ->
            Array.iter
              (fun e ->
                let i = P.id e in
                if not (Hashtbl.mem killed i) then buffered := e :: !buffered;
                Hashtbl.replace killed i ();
                Hashtbl.replace override i ())
              r.r_elems;
            Hashtbl.iter
              (fun i () ->
                Hashtbl.replace killed i ();
                Hashtbl.replace override i ())
              r.r_dead)
          above;
        let buffered = !buffered in
        let n_buffered = List.length buffered in
        Stats.charge_scan (w.w_log_len + n_buffered);
        {
          Delta.d_bound =
            (fun q ->
              Stats.charge_scan n_buffered;
              List.fold_left
                (fun acc e ->
                  if P.matches q e then
                    Some
                      (match acc with
                      | None -> P.weight e
                      | Some w0 -> Float.max w0 (P.weight e))
                  else acc)
                None buffered);
          d_topk =
            (fun q ~k ->
              Stats.charge_scan n_buffered;
              W.top_k k (List.filter (P.matches q) buffered));
          d_dead = (fun e -> Hashtbl.mem override (P.id e));
          d_dead_count = Hashtbl.length override;
        }
end
