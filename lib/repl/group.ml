module M = Topk_service.Metrics
module Response = Topk_service.Response
module Consistency = Topk_service.Consistency
module Cache = Topk_cache.Cache
module Version = Topk_cache.Version
module Stats = Topk_em.Stats
module Tr = Topk_trace.Trace

module Make (T : Topk_core.Sigs.TOPK) = struct
  module R = Replica.Make (T)
  module I = R.I

  type node = { n : R.t; mutable alive : bool }

  type t = {
    name : string;
    tr : Transport.t;
    nodes : node array;  (* index = node id; id 0 starts as primary *)
    mutable primary : int;
    mutable term : int;
    mutable ship : I.P.elem Log_ship.t;
    window : int;
    rto : int;
    quorum : int;    (* replica acks a synced write waits for *)
    max_pump : int;  (* write-path tick budget before giving up *)
    metrics : M.t option;
    router : Router.t;
    mutable dropped_seen : int;  (* transport drops already exported *)
    cache : I.P.elem list Cache.t option;  (* answer cache, term-fenced *)
    qkey : I.P.query -> string;
  }

  let mc t f = match t.metrics with Some m -> M.Counter.incr (f m) | None -> ()

  let create ?params ?buffer_cap ?fanout ?retain ?(window = 8) ?(rto = 6)
      ?plan ?metrics ?quorum ?(max_pump = 200) ?cache ?qkey ~name ~replicas
      base =
    if replicas < 1 then invalid_arg "Group.create: replicas >= 1";
    if max_pump < 1 then invalid_arg "Group.create: max_pump >= 1";
    let quorum =
      (* Default: a group majority counting the primary itself —
         [(replicas+1)/2] replica acks. *)
      match quorum with Some q -> q | None -> (replicas + 1) / 2
    in
    if quorum < 0 || quorum > replicas then
      invalid_arg "Group.create: quorum in [0, replicas]";
    let tr = Transport.create ?plan ~nodes:(replicas + 1) () in
    let nodes =
      Array.init (replicas + 1) (fun i ->
          { n = R.create ?params ?buffer_cap ?fanout ?retain ~id:i base;
            alive = true })
    in
    let ship = Log_ship.attach ~window ~rto (R.outlog nodes.(0).n) in
    for i = 1 to replicas do
      Log_ship.add_peer ship ~now:0 i
    done;
    {
      name;
      tr;
      nodes;
      primary = 0;
      term = 0;
      ship;
      window;
      rto;
      quorum;
      max_pump;
      metrics;
      router = Router.create ();
      dropped_seen = 0;
      cache;
      qkey =
        (match qkey with
        | Some f -> f
        | None -> fun q -> Marshal.to_string q []);
    }

  let name t = t.name
  let transport t = t.tr
  let primary t = t.primary
  let term t = t.term
  let nodes t = Array.length t.nodes
  let node t i = t.nodes.(i).n
  let alive t i = t.nodes.(i).alive
  let head t = R.applied t.nodes.(t.primary).n
  let applied t i = R.applied t.nodes.(i).n
  let quorum t = t.quorum

  let lag t =
    Array.fold_left
      (fun (worst, i) nd ->
        let worst =
          if nd.alive && i <> t.primary then
            max worst (head t - R.applied nd.n)
          else worst
        in
        (worst, i + 1))
      (0, 0) t.nodes
    |> fst

  let export t =
    (match t.metrics with
    | Some m ->
        M.Gauge.set m.M.replica_lag (lag t);
        let d = Transport.total_dropped t.tr in
        M.Counter.add m.M.repl_frames_dropped (d - t.dropped_seen);
        t.dropped_seen <- d
    | None -> ())

  let send_install t ~peer =
    Tr.with_root "repl.install"
      ~attrs:[ ("peer", Tr.Int peer); ("term", Tr.Int t.term) ]
      (fun () ->
        let snap, tail, upto = R.install_image t.nodes.(t.primary).n in
        Transport.send t.tr ~src:t.primary ~dst:peer
          (Wire.encode (Wire.Install { term = t.term; snap; tail }));
        Log_ship.mark_installing t.ship ~peer ~upto ~now:(Transport.now t.tr))
    |> fst

  let ship_tick t =
    Log_ship.tick t.ship ~now:(Transport.now t.tr)
      ~ship:(fun ~peer e ->
        mc t (fun m -> m.M.repl_frames_shipped);
        Transport.send t.tr ~src:t.primary ~dst:peer
          (Wire.encode (Wire.Ship { term = t.term; entry = e })))
      ~install:(fun ~peer -> send_install t ~peer)

  let deliver t =
    Array.iteri
      (fun i nd ->
        let inbox = Transport.recv t.tr ~dst:i in
        if nd.alive then
          List.iter
            (fun (src, bytes) ->
              match Wire.decode bytes with
              | Error `Corrupt -> ()  (* dropped; rto recovers *)
              | Ok m ->
                  if i = t.primary then (
                    match m with
                    | Wire.Ack { term; upto } when term = t.term ->
                        if
                          Log_ship.handle_ack t.ship ~peer:src ~upto
                            ~now:(Transport.now t.tr)
                        then mc t (fun mm -> mm.M.repl_frames_acked)
                    | _ -> ()  (* stale-term acks, stray ships *))
                  else begin
                    let installs0 = R.installs nd.n in
                    (match R.handle nd.n m with
                    | Some upto ->
                        Transport.send t.tr ~src:i ~dst:src
                          (Wire.encode
                             (Wire.Ack { term = R.term nd.n; upto }))
                    | None -> ());
                    if R.installs nd.n > installs0 then
                      mc t (fun mm -> mm.M.snapshot_installs)
                  end)
            inbox)
      t.nodes

  (* One scheduling quantum: the shipper transmits, the fabric
     advances one tick, every node drains its inbox (replies go out on
     the next tick), and the gauges/counters are exported. *)
  let step t =
    ship_tick t;
    Transport.tick t.tr;
    deliver t;
    export t

  let pump t n =
    for _ = 1 to n do
      step t
    done

  (* Pump until every live replica has applied the primary's head (and
     nothing is left in flight), within a tick budget. *)
  let settle ?(max_ticks = 2000) t =
    let caught_up () =
      let h = head t in
      Array.for_all (fun nd -> not nd.alive || R.applied nd.n >= h) t.nodes
    in
    let i = ref 0 in
    while ((not (caught_up ())) || not (Transport.idle t.tr)) && !i < max_ticks
    do
      incr i;
      step t
    done;
    caught_up ()

  type write_outcome = Synced of int | Lagged of int

  let write_seq = function Synced s | Lagged s -> s

  let synced = function Synced _ -> true | Lagged _ -> false

  let write t f =
    let nd = t.nodes.(t.primary) in
    f (R.index nd.n);  (* the sink feeds the outlog the shipper reads *)
    let s = R.applied nd.n in
    let rec go i =
      if Log_ship.acks_covering t.ship s >= t.quorum then Synced s
      else if i >= t.max_pump then Lagged s
      else begin
        step t;
        go (i + 1)
      end
    in
    go 0

  let insert t e = write t (fun idx -> I.insert idx e)
  let delete t e = write t (fun idx -> I.delete idx e)

  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: take (n - 1) tl

  let mk_response t ~t0 ~k ~worker ~cost ~seq answers =
    {
      Response.answers;
      status = Response.Complete;
      summary = { Response.zero_summary with cost; rounds = 1; attempts = 1 };
      trace_id = None;
      latency = Unix.gettimeofday () -. t0;
      worker;
      instance = t.name;
      k;
      seq_token = Some seq;
    }

  (* Cached answers are tagged [{term; seq}]: [seq] is the applied
     prefix the answering node computed over, [term] fences failover —
     after {!fail_primary} bumps the term, every pre-failover entry
     stops being servable, so a promoted timeline that truncated
     unsynced writes can never be answered for out of the cache. *)
  let read ?(consistency = Consistency.Any) t q ~k =
    Consistency.validate consistency;
    let t0 = Unix.gettimeofday () in
    let current = Version.make ~term:t.term ~seq:(head t) in
    let qkey = lazy (t.qkey q) in
    let cached =
      match t.cache with
      | None -> None
      | Some c -> (
          match
            Cache.find c ~instance:t.name ~qkey:(Lazy.force qkey) ~current
              ~consistency ~k ~now:t0 ()
          with
          | Cache.Hit e ->
              (match t.metrics with
              | Some m ->
                  M.Counter.incr m.M.cache_hits;
                  M.Histogram.observe m.M.cache_hit_age_us
                    (int_of_float ((t0 -. e.Cache.e_inserted) *. 1e6))
              | None -> ());
              ignore
                (Tr.with_root "cache.hit"
                   ~attrs:
                     [ ("instance", Tr.Str t.name);
                       ("k", Tr.Int k);
                       ("entry_seq", Tr.Int (Version.seq e.Cache.e_version)) ]
                   (fun () -> ()));
              Some
                (mk_response t ~t0 ~k ~worker:(-1) ~cost:Stats.zero_snapshot
                   ~seq:(Version.seq e.Cache.e_version)
                   (take k e.Cache.e_payload))
          | Cache.Stale | Cache.Miss ->
              (match t.metrics with
              | Some m -> M.Counter.incr m.M.cache_misses
              | None -> ());
              None)
    in
    match cached with
    | Some r -> Some r
    | None -> (
        let cands =
          Array.to_list
            (Array.mapi
               (fun i nd ->
                 {
                   Router.c_id = i;
                   c_applied = R.applied nd.n;
                   c_alive = nd.alive;
                   c_primary = i = t.primary;
                 })
               t.nodes)
        in
        match Router.select t.router ~head:(head t) ~consistency cands with
        | None -> None
        | Some id ->
            let (answers, token, cost), _trace =
              Tr.with_root "repl.read"
                ~attrs:[ ("node", Tr.Int id); ("k", Tr.Int k) ]
                (fun () ->
                  let before = Stats.snapshot () in
                  let answers, token = R.read t.nodes.(id).n q ~k in
                  (answers, token, Stats.diff (Stats.snapshot ()) before))
            in
            (match t.cache with
            | Some c -> (
                match
                  Cache.admit c ~instance:t.name ~qkey:(Lazy.force qkey)
                    ~version:(Version.make ~term:t.term ~seq:token)
                    ~k ~len:(List.length answers) ~cost:cost.Stats.ios
                    ~now:(Unix.gettimeofday ()) answers
                with
                | `Bypassed -> (
                    match t.metrics with
                    | Some m -> M.Counter.incr m.M.cache_bypasses
                    | None -> ())
                | `Admitted | `Superseded -> ())
            | None -> ());
            Some (mk_response t ~t0 ~k ~worker:id ~cost ~seq:token answers))

  (* Deterministic failover: the (simulated) death of the primary is a
     latched full partition; promotion picks the live replica with the
     highest applied prefix (lowest id on ties), bumps the term — the
     fence that rejects the deposed primary's stragglers — and attaches
     a fresh shipper to the promoted node's outlog.  The survivors
     resync by the normal protocol: their first cumulative ack snaps
     the new shipper's cursors to what they hold, and anyone behind
     the promoted outlog's floor gets a snapshot install.  Any
     Sync-acked write reached [quorum >= 1] replicas, and promotion
     maximizes the applied prefix, so no such write is lost. *)
  let fail_primary t =
    let old = t.primary in
    Tr.with_root "repl.promote" ~attrs:[ ("old", Tr.Int old) ] (fun () ->
        Transport.isolate t.tr old;
        t.nodes.(old).alive <- false;
        let best = ref None in
        Array.iteri
          (fun i nd ->
            if nd.alive then
              match !best with
              | Some (_, a) when a >= R.applied nd.n -> ()
              | _ -> best := Some (i, R.applied nd.n))
          t.nodes;
        match !best with
        | None -> invalid_arg "Group.fail_primary: no live replica left"
        | Some (p, _) ->
            t.term <- t.term + 1;
            R.promote t.nodes.(p).n ~term:t.term;
            t.primary <- p;
            t.ship <-
              Log_ship.attach ~window:t.window ~rto:t.rto
                (R.outlog t.nodes.(p).n);
            Array.iteri
              (fun i nd ->
                if nd.alive && i <> p then
                  Log_ship.add_peer t.ship ~now:(Transport.now t.tr) i)
              t.nodes;
            mc t (fun m -> m.M.failovers);
            Tr.add_attr "new" (Tr.Int p);
            p)
    |> fst

  let partition t i = Transport.isolate t.tr i

  let rejoin t i = Transport.rejoin t.tr i
end
