(** Staleness-bounded read routing.

    The router picks which node answers a read: round-robin over the
    replicas that satisfy the read's freshness demands, with the
    primary as fallback — a primary read is never stale, so demanding
    freshness degrades throughput (everything lands on the primary)
    rather than correctness.

    Freshness has two knobs.  [min_seq] is the read-your-writes token:
    the node must have applied at least that sequence (callers pass
    back the {!Topk_service.Response.seq_token} of an earlier
    response).  [max_lag] bounds how far behind the primary's head the
    node may be, in operations. *)

type candidate = {
  c_id : int;
  c_applied : int;  (** the node's contiguously applied prefix *)
  c_alive : bool;
  c_primary : bool;
}

type t
(** Round-robin state. *)

val create : unit -> t

val select :
  t -> head:int -> ?min_seq:int -> ?max_lag:int -> candidate list -> int option
(** The chosen node id, or [None] when no live node — primary
    included — has applied [min_seq] yet.
    @raise Invalid_argument on a negative [min_seq]/[max_lag]. *)
