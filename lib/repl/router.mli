(** Staleness-bounded read routing.

    The router picks which node answers a read: round-robin over the
    replicas that satisfy the read's {!Topk_service.Consistency.t}
    level, with the primary as fallback — a primary read is never
    stale, so demanding freshness degrades throughput (everything
    lands on the primary) rather than correctness.

    [At_least s] is the read-your-writes token (callers pass back the
    {!Topk_service.Response.seq_token} of an earlier response),
    [Max_lag l] bounds how far behind the primary's head the node may
    be, [Pinned p] demands a node whose applied prefix is exactly
    [p]. *)

type candidate = {
  c_id : int;
  c_applied : int;  (** the node's contiguously applied prefix *)
  c_alive : bool;
  c_primary : bool;
}

type t
(** Round-robin state. *)

val create : unit -> t

val select :
  t ->
  head:int ->
  ?consistency:Topk_service.Consistency.t ->
  candidate list ->
  int option
(** The chosen node id, or [None] when no live node — primary
    included — satisfies the level (default
    {!Topk_service.Consistency.Any}).
    @raise Invalid_argument on a negative token/lag. *)
