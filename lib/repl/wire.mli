(** The replication wire protocol: three message kinds, framed and
    checksummed exactly like the durable files.

    A [Ship] carries one WAL record — {e the same bytes}
    {!Topk_durable.Wal} appends on disk ({!Topk_durable.Wal.entry_payload}),
    wrapped in one {!Topk_durable.Frame} — so the wire format and the
    on-disk format are the same codec and a checksum bug in either is
    caught by both test surfaces.  An [Ack] is cumulative: it promises
    every sequence up to [upto] is applied.  An [Install] is the
    catch-up path: a full {!Topk_durable.Snapshot.encode}d level-set
    image plus the unsealed tail entries above it.

    Every message carries the sender's {e term} — the failover
    generation.  Replicas reject lower-term traffic, which fences
    stragglers from a deposed primary out of the new timeline. *)

type 'e t =
  | Ship of { term : int; entry : 'e Topk_ingest.Update_log.entry }
  | Ack of { term : int; upto : int }
  | Install of {
      term : int;
      snap : Bytes.t;  (** a {!Topk_durable.Snapshot.encode} image *)
      tail : 'e Topk_ingest.Update_log.entry list;
          (** entries above the image's seq, oldest first *)
    }

val encode : 'e t -> Bytes.t
(** One CRC-framed message. *)

val decode : Bytes.t -> ('e t, [ `Corrupt ]) result
(** [`Corrupt] on a checksum mismatch, a truncated or overlong buffer,
    or a structurally bad payload — a corrupt message is dropped, and
    the shipper's retransmit timer recovers. *)

val term : 'e t -> int

val pp : Format.formatter -> 'e t -> unit
