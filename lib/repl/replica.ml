module Snapshot = Topk_durable.Snapshot
module Log = Topk_ingest.Update_log

module Make (T : Topk_core.Sigs.TOPK) = struct
  module I = Topk_ingest.Ingest.Make (T)

  type t = {
    r_id : int;
    olog : I.P.elem Log_ship.Outlog.t;
    mutable idx : I.t;
    mutable term : int;
    mutable installs : int;
    (* kept so a snapshot install can rebuild the index identically *)
    params : Topk_core.Params.t option;
    buffer_cap : int option;
    fanout : int option;
  }

  (* The node's single durability hook: every update the index accepts
     — local write on a primary, replayed frame on a replica — lands
     in the outlog, so [applied] is always [Outlog.last] and promotion
     inherits shipping history for free. *)
  let sink_of olog =
    {
      Topk_ingest.Ingest.s_append = Log_ship.Outlog.append olog;
      s_event = (fun _ ~runs:_ ~log:_ -> ());
    }

  let create ?params ?buffer_cap ?fanout ?retain ~id base =
    let olog = Log_ship.Outlog.create ?retain () in
    let idx = I.create ?params ?buffer_cap ?fanout ~sink:(sink_of olog) base in
    {
      r_id = id;
      olog;
      idx;
      term = 0;
      installs = 0;
      params;
      buffer_cap;
      fanout;
    }

  let id t = t.r_id

  let index t = t.idx

  let outlog t = t.olog

  let applied t = Log_ship.Outlog.last t.olog

  let term t = t.term

  let promote t ~term = t.term <- max t.term term

  let installs t = t.installs

  (* Frames must apply strictly in sequence: a duplicate (go-back-N
     retransmit) or a gap (a dropped predecessor) is ignored and the
     cumulative ack tells the shipper where we really are. *)
  let apply_entry t (e : I.P.elem Log.entry) =
    if e.Log.seq = applied t + 1 then begin
      (match e.Log.op with
      | Log.Insert x -> I.insert t.idx x
      | Log.Delete x -> I.delete t.idx x);
      true
    end
    else false

  let install t ~snap ~tail =
    (match Snapshot.decode snap with
    | Error `Corrupt -> ()  (* dropped; the shipper's rto re-installs *)
    | Ok { Snapshot.seq; runs } ->
        if seq > applied t then begin
          (* The image supersedes everything we have: rebuild the index
             from its runs and restart the outlog just above it (the
             shipped history below [seq] is not replayed, so it cannot
             be retained). *)
          Log_ship.Outlog.reset_to t.olog ~seq;
          t.idx <-
            I.restore ?params:t.params ?buffer_cap:t.buffer_cap
              ?fanout:t.fanout ~sink:(sink_of t.olog) ~runs
              ~next_seq:(seq + 1) ();
          t.installs <- t.installs + 1
        end);
    (* Stale or corrupt images fall through to the tail: its entries
       may still extend us, and duplicates are ignored as always. *)
    List.iter (fun e -> ignore (apply_entry t e : bool)) tail

  let handle t (m : I.P.elem Wire.t) =
    let mt = Wire.term m in
    if mt < t.term then None  (* fenced: a deposed primary's straggler *)
    else begin
      if mt > t.term then t.term <- mt;
      match m with
      | Wire.Ship { entry; _ } ->
          ignore (apply_entry t entry : bool);
          Some (applied t)
      | Wire.Install { snap; tail; _ } ->
          install t ~snap ~tail;
          Some (applied t)
      | Wire.Ack _ -> None  (* acks address the shipper, not us *)
    end

  let read t q ~k =
    let v = I.pin t.idx in
    Fun.protect
      ~finally:(fun () -> I.unpin v)
      (fun () ->
        let answers = I.query_view v q ~k in
        (answers, I.view_seq v))

  let live t =
    let v = I.pin t.idx in
    Fun.protect ~finally:(fun () -> I.unpin v) (fun () -> I.view_live v)

  (* The install image for a lagging peer, captured atomically against
     concurrent writers: the sealed level set as a snapshot image plus
     the unsealed tail above it. *)
  let install_image t =
    I.with_durable_state t.idx (fun ~runs ~log ->
        let seq =
          List.fold_left
            (fun a (r : I.P.elem Topk_ingest.Ingest.run_data) ->
              max a r.Topk_ingest.Ingest.rd_seq)
            0 runs
        in
        (Snapshot.encode ~seq ~runs, log, applied t))
end
