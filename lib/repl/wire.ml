module Frame = Topk_durable.Frame
module Wal = Topk_durable.Wal
module Log = Topk_ingest.Update_log

type 'e t =
  | Ship of { term : int; entry : 'e Log.entry }
  | Ack of { term : int; upto : int }
  | Install of { term : int; snap : Bytes.t; tail : 'e Log.entry list }

let tag_ship = 0
let tag_ack = 1
let tag_install = 2

let encode m =
  let b = Buffer.create 64 in
  (match m with
  | Ship { term; entry } ->
      Frame.add_u32 b tag_ship;
      Frame.add_u64 b term;
      Frame.add_string b (Bytes.to_string (Wal.entry_payload entry))
  | Ack { term; upto } ->
      Frame.add_u32 b tag_ack;
      Frame.add_u64 b term;
      Frame.add_u64 b upto
  | Install { term; snap; tail } ->
      Frame.add_u32 b tag_install;
      Frame.add_u64 b term;
      Frame.add_string b (Bytes.to_string snap);
      Frame.add_u32 b (List.length tail);
      List.iter
        (fun e -> Frame.add_string b (Bytes.to_string (Wal.entry_payload e)))
        tail);
  Frame.frame (Buffer.to_bytes b)

let decode bytes =
  match Frame.parse bytes 0 with
  | Frame.Torn | Frame.Corrupt -> Error `Corrupt
  | Frame.Record (_, stop) when stop <> Bytes.length bytes ->
      Error `Corrupt (* trailing garbage: not one whole message *)
  | Frame.Record (payload, _) -> (
      match
        let r = Frame.reader payload in
        let tag = Frame.read_u32 r in
        if tag = tag_ship then
          let term = Frame.read_u64 r in
          let entry =
            Wal.entry_of_payload (Bytes.of_string (Frame.read_string r))
          in
          Ship { term; entry }
        else if tag = tag_ack then
          let term = Frame.read_u64 r in
          Ack { term; upto = Frame.read_u64 r }
        else if tag = tag_install then begin
          let term = Frame.read_u64 r in
          let snap = Bytes.of_string (Frame.read_string r) in
          let n = Frame.read_u32 r in
          let tail =
            List.init n (fun _ ->
                Wal.entry_of_payload (Bytes.of_string (Frame.read_string r)))
          in
          Install { term; snap; tail }
        end
        else invalid_arg "Wire.decode: unknown tag"
      with
      | m -> Ok m
      | exception _ -> Error `Corrupt)

let term = function
  | Ship { term; _ } | Ack { term; _ } | Install { term; _ } -> term

let pp ppf = function
  | Ship { term; entry } ->
      Format.fprintf ppf "ship[t%d seq=%d]" term entry.Log.seq
  | Ack { term; upto } -> Format.fprintf ppf "ack[t%d upto=%d]" term upto
  | Install { term; snap; tail } ->
      Format.fprintf ppf "install[t%d %dB +%d tail]" term (Bytes.length snap)
        (List.length tail)
