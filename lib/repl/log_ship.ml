module Log = Topk_ingest.Update_log

(* The retained shipping history: a bounded suffix of the node's WAL
   stream, indexed by sequence number.  Every node keeps one (fed by
   its ingest sink), so any replica can be promoted and immediately
   resume shipping from what it has applied. *)
module Outlog = struct
  type 'e t = {
    retain : int;
    tbl : (int, 'e Log.entry) Hashtbl.t;
    mutable floor : int;  (* lowest retained seq *)
    mutable last : int;   (* newest appended seq; floor-1 when empty *)
  }

  let create ?(retain = 512) () =
    if retain < 1 then invalid_arg "Outlog.create: retain >= 1";
    { retain; tbl = Hashtbl.create 64; floor = 1; last = 0 }

  let last t = t.last

  let floor t = t.floor

  let append t (e : 'e Log.entry) =
    if e.Log.seq <> t.last + 1 then
      invalid_arg
        (Printf.sprintf "Outlog.append: seq %d after %d (must be contiguous)"
           e.Log.seq t.last);
    Hashtbl.replace t.tbl e.Log.seq e;
    t.last <- e.Log.seq;
    while t.last - t.floor + 1 > t.retain do
      Hashtbl.remove t.tbl t.floor;
      t.floor <- t.floor + 1
    done

  let get t seq = Hashtbl.find_opt t.tbl seq

  (* Snapshot install on the owning node: history below the installed
     image is gone for good, so the log restarts just above it. *)
  let reset_to t ~seq =
    Hashtbl.reset t.tbl;
    t.floor <- seq + 1;
    t.last <- seq
end

(* Per-peer go-back-N shipping state on the current primary. *)
type peer = {
  p_id : int;
  mutable p_next : int;   (* next seq to transmit *)
  mutable p_acked : int;  (* cumulative: peer applied 1..p_acked *)
  mutable p_base : int;   (* seq covered by an in-flight install image *)
  mutable p_progress_at : int;  (* virtual time of last forward progress *)
}

type 'e t = {
  olog : 'e Outlog.t;  (* shared with the owning node's sink *)
  window : int;
  rto : int;
  mutable peers : peer list;
}

let attach ?(window = 8) ?(rto = 6) olog =
  if window < 1 then invalid_arg "Log_ship.attach: window >= 1";
  if rto < 1 then invalid_arg "Log_ship.attach: rto >= 1";
  { olog; window; rto; peers = [] }

let outlog t = t.olog

let find t id = List.find_opt (fun p -> p.p_id = id) t.peers

let add_peer t ~now id =
  match find t id with
  | Some _ -> ()
  | None ->
      t.peers <-
        { p_id = id; p_next = 1; p_acked = 0; p_base = 0; p_progress_at = now }
        :: t.peers

let remove_peer t id = t.peers <- List.filter (fun p -> p.p_id <> id) t.peers

let peer_ids t = List.rev_map (fun p -> p.p_id) t.peers

let peer_acked t id = match find t id with Some p -> p.p_acked | None -> 0

let acked_seqs t = List.map (fun p -> p.p_acked) t.peers

(* How many peers have applied everything up to [seq] — the write
   path's quorum test. *)
let acks_covering t seq =
  List.fold_left (fun n p -> if p.p_acked >= seq then n + 1 else n) 0 t.peers

let handle_ack t ~peer ~upto ~now =
  match find t peer with
  | None -> false
  | Some p ->
      if upto > p.p_acked then begin
        p.p_acked <- upto;
        p.p_progress_at <- now;
        (* A cumulative ack can overtake the send cursor (a rejoining
           peer acking everything it already had): jump past it. *)
        if p.p_next <= upto then p.p_next <- upto + 1;
        true
      end
      else false

let mark_installing t ~peer ~upto ~now =
  match find t peer with
  | None -> ()
  | Some p ->
      p.p_next <- upto + 1;
      (* The image counts as one unit, not [upto] in-flight frames:
         the window meters frames sent beyond it. *)
      p.p_base <- upto;
      p.p_progress_at <- now

(* One pump of the shipping loop.  Go-back-N: if a peer has made no
   progress for [rto] ticks while lagging, rewind its cursor to just
   past its cumulative ack and retransmit the window.  A cursor that
   rewinds below the outlog floor means the history is gone — that
   peer needs a snapshot install, reported via [install] (the caller
   builds and sends the image, then calls {!mark_installing}). *)
let tick t ~now ~ship ~install =
  let last = Outlog.last t.olog in
  List.iter
    (fun p ->
      if p.p_acked < last && now - p.p_progress_at > t.rto then begin
        (* Go-back-N — and an unacked install image is forgotten with
           the frames behind it, so a lost install is re-sent too. *)
        p.p_next <- p.p_acked + 1;
        p.p_base <- p.p_acked;
        p.p_progress_at <- now
      end;
      if p.p_next < Outlog.floor t.olog then install ~peer:p.p_id
      else
        let budget = ref (t.window - (p.p_next - max p.p_acked p.p_base - 1)) in
        while p.p_next <= last && !budget > 0 do
          (match Outlog.get t.olog p.p_next with
          | Some e -> ship ~peer:p.p_id e
          | None ->
              (* Retention raced ahead of the cursor mid-window. *)
              install ~peer:p.p_id;
              budget := 0);
          if !budget > 0 then begin
            p.p_next <- p.p_next + 1;
            decr budget
          end
        done)
    t.peers
