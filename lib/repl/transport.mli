(** A deterministic in-process message fabric with seeded fault
    injection — the replication subsystem's network.

    Nodes are small integers; every directed pair is a {e link} with
    its own private splitmix64 stream (raw-seeded, like
    {!Topk_em.Fault} and {!Topk_durable.Disk}), so one [(plan, seed)]
    pair replays the exact same loss/duplication/reorder schedule on
    every run.  Time is a {e virtual clock}: {!send} stamps each
    message with a delivery tick, {!tick} advances the clock and moves
    due messages into per-node inboxes (equal due times preserve send
    order).  No wall time, no threads — a whole partition-and-failover
    scenario is a pure function of its seed.

    A {!cut} link latches dead — it drops its in-flight messages at
    cut time and every later send until {!heal} — which is how the
    bench models partitions and primary crashes. *)

type plan

val plan :
  ?drop:float ->
  ?dup:float ->
  ?reorder:float ->
  ?delay_max:int ->
  seed:int ->
  unit ->
  plan
(** Per-message fault probabilities ([drop], [dup], [reorder] in
    [[0,1]], all default [0]) and a uniform extra delivery delay in
    [[0, delay_max]] ticks.  A reordered message takes a further
    [1 + uniform[0,3]] ticks, letting later sends overtake it.
    @raise Invalid_argument out of range. *)

val clean : seed:int -> plan
(** No faults: in-order delivery on the next tick. *)

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;  (** plan losses plus dead-link discards *)
  mutable duplicated : int;
}

type t

val create : ?plan:plan -> nodes:int -> unit -> t
(** A fabric over nodes [0 .. nodes-1] (default plan {!clean} with
    seed 1). @raise Invalid_argument if [nodes < 1]. *)

val now : t -> int
(** The virtual clock, in ticks. *)

val send : t -> src:int -> dst:int -> Bytes.t -> unit
(** Submit one message; its fate (drop, duplicate, delay) is drawn
    from the link's stream at send time. *)

val tick : t -> unit
(** Advance the clock one tick and deliver everything due. *)

val recv : t -> dst:int -> (int * Bytes.t) list
(** Drain [dst]'s inbox: [(src, payload)] in delivery order. *)

val cut : t -> src:int -> dst:int -> unit
(** Latch the directed link dead: in-flight messages are discarded
    (counted as dropped) and later sends drop until {!heal}. *)

val heal : t -> src:int -> dst:int -> unit

val isolate : t -> int -> unit
(** {!cut} both directions between the node and every peer — a
    partition (or, left unhealed, a crash). *)

val rejoin : t -> int -> unit
(** {!heal} both directions between the node and every peer. *)

val stats : t -> src:int -> dst:int -> stats
(** The link's live counters (shared, not a copy). *)

val total_dropped : t -> int
(** Messages dropped across all links so far. *)

val idle : t -> bool
(** Nothing in flight and every inbox drained. *)
