(** A replication group: one primary plus read replicas over a
    {!Transport}, glued together by {!Log_ship}, {!Replica} and
    {!Router}.

    The group owns the whole simulated deployment — every node and the
    fabric between them — and advances it with explicit {!step}s of
    the virtual clock, so any schedule (message losses, partitions, a
    primary crash mid-stream) is a deterministic function of the
    transport plan's seed.

    {b Consistency law} (swept by [`topk repl-bench`]): at every
    instant, each node's surviving set equals the from-scratch oracle
    over the prefix [1 .. applied] of the primary timeline's updates;
    after {!fail_primary}, the new timeline's prefix contains every
    {!Synced} write (quorum-acked writes survive failover). *)

module Make (T : Topk_core.Sigs.TOPK) : sig
  module R : module type of Replica.Make (T)
  module I = R.I

  type t

  val create :
    ?params:Topk_core.Params.t ->
    ?buffer_cap:int ->
    ?fanout:int ->
    ?retain:int ->
    ?window:int ->
    ?rto:int ->
    ?plan:Transport.plan ->
    ?metrics:Topk_service.Metrics.t ->
    ?quorum:int ->
    ?max_pump:int ->
    ?cache:I.P.elem list Topk_cache.Cache.t ->
    ?qkey:(I.P.query -> string) ->
    name:string ->
    replicas:int ->
    I.P.elem array ->
    t
  (** A group of [replicas + 1] nodes over the shared base run; node 0
      starts as primary.  [quorum] is the number of {e replica} acks a
      write waits for (default a group majority, [(replicas+1)/2];
      [0] makes writes asynchronous); [max_pump] bounds the ticks a
      write pumps before reporting {!Lagged}; [retain]/[window]/[rto]
      parameterize {!Log_ship}; [plan] the {!Transport} faults.
      [metrics] receives the [repl_*] counters and the [replica_lag]
      gauge.

      [cache] enables answer caching on {!read}: entries are tagged
      [(term, seq)] where [seq] is the answering node's applied prefix
      and [term] the group's failover term, so {!fail_primary}'s term
      bump implicitly invalidates every pre-failover entry.  [qkey]
      canonicalizes queries into cache keys (default: marshalled
      runtime representation — supply it if [I.P.query] contains
      functions).  @raise Invalid_argument on a bad parameter. *)

  (** {1 Writes} *)

  type write_outcome =
    | Synced of int  (** seq; quorum replicas hold it — survives failover *)
    | Lagged of int
        (** seq; applied on the primary but the quorum did not confirm
            within [max_pump] ticks (partition, loss) — may be lost if
            the primary dies now *)

  val write_seq : write_outcome -> int
  val synced : write_outcome -> bool

  val insert : t -> I.P.elem -> write_outcome
  val delete : t -> I.P.elem -> write_outcome

  (** {1 Reads} *)

  val read :
    ?consistency:Topk_service.Consistency.t ->
    t ->
    I.P.query ->
    k:int ->
    I.P.elem Topk_service.Response.t option
  (** Route the query per {!Router.select} and answer it on the chosen
      node's pinned snapshot — or, when the group carries a cache,
      serve a cached answer whose version the [consistency] level
      (default [Any]) admits, with zero charged I/O.  The response's
      {!Topk_service.Response.seq_token} carries the answering
      snapshot's newest applied seq — pass it back as
      [At_least seq_token] for read-your-writes.  [None] when no live
      node satisfies the level.
      @raise Invalid_argument on a negative token/lag. *)

  (** {1 Time} *)

  val step : t -> unit
  (** One quantum: ship, advance the fabric one tick, deliver, export
      metrics. *)

  val pump : t -> int -> unit

  val settle : ?max_ticks:int -> t -> bool
  (** Pump (default at most 2000 ticks) until every live replica has
      applied the head and the fabric is idle; [false] on budget
      exhaustion (e.g. an unhealed partition). *)

  (** {1 Faults and failover} *)

  val partition : t -> int -> unit
  (** Latch the node off the fabric (both directions, in-flight
      dropped). *)

  val rejoin : t -> int -> unit

  val fail_primary : t -> int
  (** Kill the primary (a latched partition) and deterministically
      promote the live replica with the highest applied prefix (lowest
      id on ties): bump the term, attach a shipper to its outlog, and
      let survivors resync — cumulative acks snap the cursors forward,
      and anyone behind the new outlog's floor is caught up by
      snapshot install.  Returns the new primary's id.
      @raise Invalid_argument when no live replica remains. *)

  (** {1 Introspection} *)

  val name : t -> string
  val transport : t -> Transport.t
  val primary : t -> int
  val term : t -> int
  val nodes : t -> int
  val node : t -> int -> R.t
  val alive : t -> int -> bool
  val head : t -> int
  (** The primary's applied seq — the newest write in the timeline. *)

  val applied : t -> int -> int
  val quorum : t -> int
  val lag : t -> int
  (** The worst live replica's lag behind {!head}. *)
end
