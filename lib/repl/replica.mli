(** One replication node: an {!Topk_ingest.Ingest} index, an
    {!Log_ship.Outlog} of everything it has applied, and a term.

    Nodes are symmetric — a {e primary} is a node whose index is
    written directly (the group routes client writes to it) and whose
    outlog feeds a {!Log_ship} shipper; a {e replica} is a node whose
    index is written only by {!handle}, replaying shipped WAL frames
    strictly in sequence.  Because both roles maintain the same
    outlog-through-the-sink invariant, failover is just: pick the
    replica with the highest {!applied}, bump its term, attach a
    shipper to its outlog.

    {b Sequencing.}  [applied t] is the length of the contiguously
    applied prefix.  {!handle} applies a shipped frame only when its
    seq is exactly [applied + 1]; duplicates (retransmits) and gaps
    (losses) are ignored, and the returned cumulative ack tells the
    shipper where the node really is.

    {b Terms.}  A message below the node's term is dropped without a
    reply — once a failover bumps the term, stragglers from the
    deposed primary cannot mutate the new timeline.  A higher term is
    adopted on first contact. *)

module Make (T : Topk_core.Sigs.TOPK) : sig
  module I : module type of Topk_ingest.Ingest.Make (T)

  type t

  val create :
    ?params:Topk_core.Params.t ->
    ?buffer_cap:int ->
    ?fanout:int ->
    ?retain:int ->
    id:int ->
    I.P.elem array ->
    t
  (** A node over the shared base run, applied seq 0, term 0.
      [retain] bounds the outlog (see {!Log_ship.Outlog.create}). *)

  val id : t -> int
  val index : t -> I.t
  (** The live index.  Write it directly only on the primary. *)

  val outlog : t -> I.P.elem Log_ship.Outlog.t
  val applied : t -> int
  val term : t -> int
  val installs : t -> int
  (** Snapshot installs this node has performed. *)

  val promote : t -> term:int -> unit
  (** Adopt the (higher) failover term. *)

  val handle : t -> I.P.elem Wire.t -> int option
  (** Process one incoming message.  [Some upto]: reply with a
      cumulative {!Wire.Ack} for [upto].  [None]: fenced (stale term)
      or not addressed to a replica — send nothing. *)

  val read : t -> I.P.query -> k:int -> I.P.elem list * int
  (** A pinned query plus the read-your-writes token: the newest seq
      folded into the answered snapshot. *)

  val live : t -> I.P.elem list
  (** The surviving set, replayed from scratch — the oracle hook. *)

  val install_image : t -> Bytes.t * I.P.elem Topk_ingest.Update_log.entry list * int
  (** [(snap, tail, upto)] for a {!Wire.Install}: the snapshot image,
      the unsealed entries above it, and the seq the pair covers —
      captured in one critical section against concurrent writers. *)
end
