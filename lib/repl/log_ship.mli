(** Primary-side WAL shipping: a retained history plus per-peer
    go-back-N cursors with cumulative-ack flow control.

    {b Outlog.}  Every node — primary or replica — feeds its accepted
    updates into an {!Outlog}: the retained suffix of the single
    sequence stream, bounded by [retain] entries (older history is
    garbage-collected, raising the {e floor}).  Because replicas keep
    one too, failover can promote any of them and shipping resumes
    from its retained history with no handoff.

    {b Shipping.}  {!attach} builds a shipper over an outlog.  Each
    peer has a send cursor and a cumulative ack; {!tick} transmits up
    to a bounded in-flight {e window} per peer and, when a lagging
    peer makes no progress for [rto] ticks, rewinds its cursor to just
    past its ack (go-back-N — duplicates are harmless because the
    replica applies strictly in sequence).  A cursor that falls below
    the outlog floor cannot be served from history at all: {!tick}
    reports it through the [install] callback and the caller ships a
    {!Wire.Install} image instead. *)

module Outlog : sig
  type 'e t

  val create : ?retain:int -> unit -> 'e t
  (** Empty history starting at seq 1, retaining the newest [retain]
      (default 512) entries. @raise Invalid_argument if [retain < 1]. *)

  val append : 'e t -> 'e Topk_ingest.Update_log.entry -> unit
  (** @raise Invalid_argument unless [e.seq] is exactly [last + 1] —
      the outlog mirrors one contiguous stream. *)

  val last : 'e t -> int
  (** Newest retained seq ([floor - 1] when empty). *)

  val floor : 'e t -> int
  (** Lowest retained seq. *)

  val get : 'e t -> int -> 'e Topk_ingest.Update_log.entry option

  val reset_to : 'e t -> seq:int -> unit
  (** After a snapshot install at [seq]: drop everything and restart
      the stream just above it. *)
end

type 'e t

val attach : ?window:int -> ?rto:int -> 'e Outlog.t -> 'e t
(** A shipper over [olog] (shared, not copied): at most [window]
    (default 8) unacked frames in flight per peer, retransmit after
    [rto] (default 6) idle ticks.
    @raise Invalid_argument if either is [< 1]. *)

val outlog : 'e t -> 'e Outlog.t

val add_peer : 'e t -> now:int -> int -> unit
(** Start shipping to a peer (idempotent), cursor at seq 1 — the
    first cumulative ack snaps it forward to what the peer has. *)

val remove_peer : 'e t -> int -> unit

val peer_ids : 'e t -> int list

val peer_acked : 'e t -> int -> int
(** The peer's cumulative ack ([0] for an unknown peer). *)

val acked_seqs : 'e t -> int list

val acks_covering : 'e t -> int -> int
(** Peers whose cumulative ack reaches [seq] — the quorum test. *)

val handle_ack : 'e t -> peer:int -> upto:int -> now:int -> bool
(** Apply a cumulative ack; [true] when it advanced the peer. *)

val mark_installing : 'e t -> peer:int -> upto:int -> now:int -> unit
(** The caller just shipped an install image covering [1..upto]: move
    the cursor past it.  If the image is lost, the rto rewinds the
    cursor below the floor again and a fresh install goes out. *)

val tick :
  'e t ->
  now:int ->
  ship:(peer:int -> 'e Topk_ingest.Update_log.entry -> unit) ->
  install:(peer:int -> unit) ->
  unit
(** One pump: rto rewinds, then per-peer window transmission.  [ship]
    and [install] are invoked synchronously, in peer order. *)
