(* Read routing: deterministic replica selection under a staleness
   bound.  Pure bookkeeping over (id, applied) pairs so it is testable
   without a group around it. *)

type candidate = {
  c_id : int;
  c_applied : int;
  c_alive : bool;
  c_primary : bool;
}

type t = { mutable cursor : int }

let create () = { cursor = 0 }

(* A replica is eligible when it is alive, has applied at least
   [min_seq] (the caller's read-your-writes token), and lags the head
   by at most [max_lag].  Eligible replicas are rotated round-robin;
   the primary — never stale by definition — is the fallback, so a
   read with a token the replicas cannot honor yet still answers.
   [None] only when even the primary cannot satisfy [min_seq] (a token
   from a future the group has not seen — a caller bug or a deposed
   primary's unreplicated write). *)
let select t ~head ?(min_seq = 0) ?max_lag cands =
  if min_seq < 0 then invalid_arg "Router.select: min_seq >= 0";
  (match max_lag with
  | Some l when l < 0 -> invalid_arg "Router.select: max_lag >= 0"
  | _ -> ());
  let ok c =
    c.c_alive && c.c_applied >= min_seq
    && match max_lag with None -> true | Some l -> head - c.c_applied <= l
  in
  match List.filter (fun c -> ok c && not c.c_primary) cands with
  | [] ->
      List.find_opt (fun c -> c.c_primary && ok c) cands
      |> Option.map (fun c -> c.c_id)
  | eligible ->
      let i = t.cursor mod List.length eligible in
      t.cursor <- t.cursor + 1;
      Some (List.nth eligible i).c_id
