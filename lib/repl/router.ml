module Consistency = Topk_service.Consistency

(* Read routing: deterministic replica selection under one
   {!Consistency.t} level.  Pure bookkeeping over (id, applied) pairs
   so it is testable without a group around it. *)

type candidate = {
  c_id : int;
  c_applied : int;
  c_alive : bool;
  c_primary : bool;
}

type t = { mutable cursor : int }

let create () = { cursor = 0 }

(* A replica is eligible when it is alive and its applied prefix
   satisfies the consistency level: [At_least s] is the caller's
   read-your-writes token, [Max_lag l] bounds its distance behind the
   head, [Pinned p] demands exactly the snapshot [p] (a node that has
   already applied past [p] answers over a newer state and cannot
   serve the pin).  Eligible replicas are rotated round-robin; the
   primary — never stale by definition — is the fallback, so a read
   with a token the replicas cannot honor yet still answers.  [None]
   only when even the primary cannot satisfy the level (a token from a
   future the group has not seen — a caller bug or a deposed primary's
   unreplicated write — or an unpinnable [Pinned]). *)
let select t ~head ?(consistency = Consistency.Any) cands =
  Consistency.validate consistency;
  let ok c =
    c.c_alive
    &&
    match consistency with
    | Consistency.Any -> true
    | Consistency.At_least s -> c.c_applied >= s
    | Consistency.Pinned p -> c.c_applied = p
    | Consistency.Max_lag l -> head - c.c_applied <= l
  in
  match List.filter (fun c -> ok c && not c.c_primary) cands with
  | [] ->
      List.find_opt (fun c -> c.c_primary && ok c) cands
      |> Option.map (fun c -> c.c_id)
  | eligible ->
      let i = t.cursor mod List.length eligible in
      t.cursor <- t.cursor + 1;
      Some (List.nth eligible i).c_id
