module Rng = Topk_util.Rng

(* One directed link's fault knobs.  Like [Disk.plan] and [Fault.plan],
   a plan is immutable configuration; all randomness comes from a
   per-link raw-seeded splitmix64 stream, so a (seed, schedule) pair
   replays bit-identically. *)
type plan = {
  seed : int;
  drop : float;     (* per-message loss probability *)
  dup : float;      (* per-message duplication probability *)
  reorder : float;  (* probability of an extra out-of-order delay *)
  delay_max : int;  (* extra delivery delay, uniform in [0, delay_max] *)
}

let plan ?(drop = 0.) ?(dup = 0.) ?(reorder = 0.) ?(delay_max = 0) ~seed () =
  if drop < 0. || drop > 1. then invalid_arg "Transport.plan: drop in [0,1]";
  if dup < 0. || dup > 1. then invalid_arg "Transport.plan: dup in [0,1]";
  if reorder < 0. || reorder > 1. then
    invalid_arg "Transport.plan: reorder in [0,1]";
  if delay_max < 0 then invalid_arg "Transport.plan: delay_max >= 0";
  { seed; drop; dup; reorder; delay_max }

let clean ~seed = plan ~seed ()

(* Per-link delivery accounting, exposed for tests and the bench. *)
type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;    (* plan losses + dead-link discards *)
  mutable duplicated : int;
}

type link = {
  rng : Rng.Raw.t;  (* this link's private fault stream *)
  st : stats;
  mutable cut : bool;  (* dead-link latch: drops until [heal] *)
}

(* An in-flight message: delivery is ordered by (due, order) so equal
   due times preserve send order and the whole fabric is deterministic
   under the virtual clock. *)
type msg = { src : int; dst : int; due : int; order : int; payload : Bytes.t }

type t = {
  nodes : int;
  p : plan;
  links : link array;  (* row-major [src * nodes + dst] *)
  mutable now : int;
  mutable next_order : int;
  mutable flying : msg list;  (* unsorted; scanned at [tick] *)
  inboxes : (int * Bytes.t) Queue.t array;  (* per-dst (src, payload) *)
}

let link t ~src ~dst = t.links.((src * t.nodes) + dst)

let create ?(plan = clean ~seed:1) ~nodes () =
  if nodes < 1 then invalid_arg "Transport.create: nodes >= 1";
  let links =
    Array.init (nodes * nodes) (fun i ->
        (* Decorrelate links the way [Fault] decorrelates domain
           streams: a per-link lane xor'd into the plan seed. *)
        let seed = Int64.of_int (plan.seed lxor ((i + 1) * 0x9E3779B9)) in
        {
          rng = Rng.Raw.create seed;
          st = { sent = 0; delivered = 0; dropped = 0; duplicated = 0 };
          cut = false;
        })
  in
  {
    nodes;
    p = plan;
    links;
    now = 0;
    next_order = 0;
    flying = [];
    inboxes = Array.init nodes (fun _ -> Queue.create ());
  }

let now t = t.now

let stats t ~src ~dst = (link t ~src ~dst).st

let check_node t who name =
  if who < 0 || who >= t.nodes then
    invalid_arg (Printf.sprintf "Transport.%s: unknown node %d" name who)

let enqueue t ~src ~dst ~delay payload =
  let order = t.next_order in
  t.next_order <- order + 1;
  t.flying <- { src; dst; due = t.now + 1 + delay; order; payload } :: t.flying

let send t ~src ~dst payload =
  check_node t src "send";
  check_node t dst "send";
  let l = link t ~src ~dst in
  l.st.sent <- l.st.sent + 1;
  if l.cut then l.st.dropped <- l.st.dropped + 1
  else begin
    let draw p = p > 0. && Rng.Raw.uniform l.rng < p in
    if draw t.p.drop then l.st.dropped <- l.st.dropped + 1
    else begin
      let delay () =
        let base =
          if t.p.delay_max = 0 then 0
          else Rng.Raw.below_incl l.rng t.p.delay_max
        in
        if draw t.p.reorder then base + 1 + Rng.Raw.below_incl l.rng 3
        else base
      in
      enqueue t ~src ~dst ~delay:(delay ()) payload;
      if draw t.p.dup then begin
        l.st.duplicated <- l.st.duplicated + 1;
        enqueue t ~src ~dst ~delay:(delay ()) payload
      end
    end
  end

(* The dead-link latch: a cut discards everything already in flight on
   the link (a dead wire loses its photons) and keeps dropping sends
   until healed. *)
let cut t ~src ~dst =
  check_node t src "cut";
  check_node t dst "cut";
  let l = link t ~src ~dst in
  l.cut <- true;
  t.flying <-
    List.filter
      (fun m ->
        if m.src = src && m.dst = dst then begin
          l.st.dropped <- l.st.dropped + 1;
          false
        end
        else true)
      t.flying

let heal t ~src ~dst =
  check_node t src "heal";
  check_node t dst "heal";
  (link t ~src ~dst).cut <- false

let isolate t who =
  check_node t who "isolate";
  for peer = 0 to t.nodes - 1 do
    if peer <> who then begin
      cut t ~src:who ~dst:peer;
      cut t ~src:peer ~dst:who
    end
  done

let rejoin t who =
  check_node t who "rejoin";
  for peer = 0 to t.nodes - 1 do
    if peer <> who then begin
      heal t ~src:who ~dst:peer;
      heal t ~src:peer ~dst:who
    end
  done

let tick t =
  t.now <- t.now + 1;
  let due, flying = List.partition (fun m -> m.due <= t.now) t.flying in
  t.flying <- flying;
  List.iter
    (fun m ->
      let l = link t ~src:m.src ~dst:m.dst in
      l.st.delivered <- l.st.delivered + 1;
      Queue.add (m.src, m.payload) t.inboxes.(m.dst))
    (List.sort
       (fun a b ->
         match compare a.due b.due with 0 -> compare a.order b.order | c -> c)
       due)

let recv t ~dst =
  check_node t dst "recv";
  let q = t.inboxes.(dst) in
  let rec drain acc =
    match Queue.take_opt q with
    | None -> List.rev acc
    | Some m -> drain (m :: acc)
  in
  drain []

let idle t =
  t.flying = [] && Array.for_all Queue.is_empty t.inboxes

let total_dropped t =
  Array.fold_left (fun a l -> a + l.st.dropped) 0 t.links
