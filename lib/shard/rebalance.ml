module Make (SS : Shard_set.S) = struct
  type report = {
    rounds : int;
    rebuilt : int;
    reused : int;
    before_skew : float;
    after_skew : float;
  }

  let skew t = Partitioner.size_skew (SS.partition t)

  (* Planning representation: either an untouched original shard
     (structure reusable at assemble time) or a fresh element slice
     (needs one build at the end).  Planning itself only slices and
     concatenates arrays — no structure is built until the final
     [assemble], so a slice created in round [r] and merged away in
     round [r'] costs nothing. *)
  type piece = Orig of int | Fresh of SS.P.elem array

  let rebalance ?params ?(max_skew = 2.0) ?max_rounds t =
    if max_skew < 2.0 then
      invalid_arg
        (Printf.sprintf "Rebalance.rebalance: max_skew must be >= 2.0 (got %g)"
           max_skew);
    let s = SS.shard_count t in
    let max_rounds = match max_rounds with Some r -> r | None -> 2 * s in
    let before_skew = skew t in
    if s <= 1 || before_skew <= max_skew then
      ( t,
        {
          rounds = 0;
          rebuilt = 0;
          reused = s;
          before_skew;
          after_skew = before_skew;
        } )
    else begin
      let builts = SS.detach t in
      let elems_of = function
        | Orig i -> SS.built_elems builts.(i)
        | Fresh arr -> arr
      in
      let size_of p = Array.length (elems_of p) in
      let pieces_skew pieces =
        let mx = List.fold_left (fun a p -> max a (size_of p)) 0 pieces in
        let mn =
          List.fold_left (fun a p -> min a (size_of p)) max_int pieces
        in
        float_of_int mx /. float_of_int (max 1 mn)
      in
      let pieces = ref (List.init s (fun i -> Orig i)) in
      let rounds = ref 0 in
      while !rounds < max_rounds && pieces_skew !pieces > max_skew do
        incr rounds;
        (* Split the largest piece into two halves, then merge the two
           smallest pieces to restore the shard count. *)
        match
          List.sort (fun a b -> Int.compare (size_of b) (size_of a)) !pieces
        with
        | largest :: rest ->
            let arr = elems_of largest in
            let n = Array.length arr in
            let half = n / 2 in
            let halves =
              [ Fresh (Array.sub arr 0 half);
                Fresh (Array.sub arr half (n - half)) ]
            in
            (match
               List.sort (fun a b -> Int.compare (size_of a) (size_of b))
                 (halves @ rest)
             with
             | p1 :: p2 :: others ->
                 pieces :=
                   Fresh (Array.append (elems_of p1) (elems_of p2)) :: others
             | short -> pieces := short)
        | [] -> ()
      done;
      (* One assemble at the end: originals are reused structurally,
         fresh slices are built exactly once each. *)
      let t' =
        SS.assemble ?params
          (List.map
             (function
               | Orig i -> `Reuse builts.(i)
               | Fresh arr -> `Build arr)
             !pieces)
      in
      let rebuilt =
        List.length
          (List.filter (function Fresh _ -> true | Orig _ -> false) !pieces)
      in
      ( t',
        {
          rounds = !rounds;
          rebuilt;
          reused = s - rebuilt;
          before_skew;
          after_skew = skew t';
        } )
    end
end
