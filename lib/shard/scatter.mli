(** Parallel scatter-gather: one logical top-k query fanned out over a
    {!Shard_set} through a {!Topk_service.Executor} worker pool.

    {!Planner} is the sequential reference: it visits shards one at a
    time in decreasing upper-bound order, so it can prune after every
    shard.  Scatter trades a little pruning opportunity for
    parallelism using {e waves}: after the caller-side max-query phase
    ranks shards by their exact upper bounds, the top [wave] live
    shards are submitted to the pool as independent per-shard jobs
    (all racing one shared absolute deadline), their responses are
    gathered, and the {e remaining} shards are re-pruned against the
    k-th best candidate found so far before the next wave.  With
    [wave = 1] this degenerates to the planner's fully-adaptive order;
    with [wave = workers] every worker stays busy.

    Answers are exact (the same argument as the planner's: disjoint
    shards + exact per-shard maxima + pairwise-distinct weights), and
    under budget/deadline cutoff the gathered answer is a certified
    prefix combined by {!Gather.merge_certified} — truncated legs
    never silently pollute the merged result.

    Cost accounting matches the acceptance contract of the serving
    layer: each per-shard leg's EM cost is charged to (and bracketed
    on) the worker domain that ran it, the caller-side work (max
    queries, merges) is bracketed on the calling domain, and
    {!result.cost} is their sum — so summing [result.cost] over a
    quiescent run reproduces {!Topk_em.Stats.aggregate} exactly.

    Shard fan-out telemetry lands in the pool's {!Topk_service.Metrics}:
    [sharded_queries], [shards_pruned], and the [fanout] /
    [shard_latency_us] / [shard_ios] histograms. *)

module Make
    (SS : Shard_set.S)
    (T : Topk_core.Sigs.TOPK with module P = SS.P and type t = SS.topk) : sig
  type t

  (** The joined answer of one logical query. *)
  type result = {
    answers : SS.P.elem list;
        (** decreasing weight; exact top-k, or a certified prefix of
            it when [status] is a cutoff *)
    status : Topk_service.Response.status;
        (** worst per-shard leg status — upgraded back to [Complete]
            when the certified merge proves the full top-k anyway *)
    cost : Topk_em.Stats.snapshot;
        (** caller-side cost (max queries + merges) plus the sum of
            every leg's cost *)
    latency : float;  (** submit-to-answer wall time, seconds *)
    fanout : int;  (** per-shard jobs actually submitted *)
    pruned : int;  (** shards skipped by the max-query upper bound *)
    empty : int;   (** shards with no matching element at all *)
  }

  val create :
    ?wave:int ->
    ?cache:SS.P.elem list Topk_cache.Cache.t ->
    Topk_service.Executor.t ->
    Topk_service.Registry.t ->
    name:string ->
    SS.t ->
    t
  (** Register every shard of the snapshot in [registry] as
      ["name#i"] and return the fan-out front-end.  [wave] (default:
      the pool's worker count) is the number of shard jobs in flight
      per gathering round.

      [cache] enables per-leg answer caching: before a shard job is
      submitted, the cache is consulted under the leg's registry name;
      a hit joins the gather as a complete certified leg with zero
      charged I/O (and no pool submission), and completed legs are
      admitted back, tagged {!Topk_cache.Version.static} (the shard
      snapshot is immutable).  Legs run with [deltas] or under an I/O
      budget bypass the cache entirely, so caching never changes an
      answer.  Hits/misses/bypasses land in the pool's metrics.
      @raise Invalid_argument on [wave <= 0] or a duplicate name. *)

  val shard_set : t -> SS.t

  val wave : t -> int

  val query :
    t ->
    ?lane:Topk_service.Lane.t ->
    ?limits:Topk_service.Limits.t ->
    ?deltas:(SS.P.query, SS.P.elem) Delta.t array ->
    SS.P.query ->
    k:int ->
    result
  (** Scatter, gather, and join one logical query (blocks the caller
      until every submitted leg resolves).  [lane] (default
      [Interactive]) is inherited by every submitted per-shard leg, so
      fanning out never changes the priority of the work.
      [limits.budget] is a per-leg EM-I/O budget; the limits' horizon
      — relative or absolute — is anchored once at submission and
      becomes {e one} shared absolute deadline raced by every leg, so
      a late wave inherits the time its predecessors spent.

      When tracing is enabled, the whole logical query runs under a
      ["scatter"] root span (bounds phase, prune events, one
      ["scatter.leg"] span per gathered leg linking to the worker-side
      trace) whose [visited]/[pruned]/[empty] attributes feed the
      sharded cost certifier.

      [deltas] (one per shard, in shard order) routes the query over
      [static ∪ buffer \ tombstones]: per-shard bounds combine the
      buffered-insert bound, each static leg is widened by the shard's
      tombstone count and filtered caller-side, and the buffer's own
      matching top-k joins the certified merge (see {!Delta}).
      @raise Invalid_argument if [k <= 0], the limits carry a
      negative budget, or [deltas] has the wrong length.
      @raise Topk_service.Error.Error if the pool is shut down. *)

  val pp_result : Format.formatter -> result -> unit
  (** Summary line (does not print the answers). *)
end
