module Stats = Topk_em.Stats
module Heap = Topk_util.Heap

(* One cursor per (non-empty) input list; the heap orders cursors by
   their head, largest first ([cmp] ascending order reversed). *)
let merge ~cmp ~k lists =
  if k <= 0 then []
  else begin
    let heap =
      Heap.create
        ~cmp:(fun (a, _) (b, _) -> cmp b a)  (* max-heap on heads *)
        ()
    in
    List.iter
      (fun l -> match l with [] -> () | x :: rest -> Heap.push heap (x, rest))
      lists;
    let out = ref [] and taken = ref 0 in
    while !taken < k && not (Heap.is_empty heap) do
      let x, rest = Heap.pop_exn heap in
      (* Consuming one element of a sorted shard answer is one step of
         the O(k/B) output scan. *)
      Stats.charge_scan 1;
      out := x :: !out;
      incr taken;
      match rest with [] -> () | y :: rest' -> Heap.push heap (y, rest')
    done;
    List.rev !out
  end

(* Uncharged two-way top-k union on resident lists (see .mli). *)
let union ~cmp ~k a b =
  let rec go taken a b =
    if taken >= k then []
    else
      match (a, b) with
      | [], [] -> []
      | x :: a', [] -> x :: go (taken + 1) a' []
      | [], y :: b' -> y :: go (taken + 1) [] b'
      | x :: a', y :: b' ->
          if cmp x y >= 0 then x :: go (taken + 1) a' b
          else y :: go (taken + 1) a b'
  in
  if k <= 0 then [] else go 0 a b

let merge_certified ~cmp ~weight ~k answers =
  let all_complete = List.for_all snd answers in
  let merged = merge ~cmp ~k (List.map fst answers) in
  if all_complete then (merged, true)
  else begin
    (* A truncated shard [l] certifies only that its unreported
       elements are strictly lighter than [l]'s last reported weight.
       A merged element is therefore provably in the global prefix iff
       it is at least as heavy as {e every} incomplete shard's last
       weight — the threshold is the {e max} of those weights.  An
       empty truncated answer certifies nothing (threshold [+inf]:
       that shard could be hiding arbitrarily heavy elements). *)
    let threshold =
      List.fold_left
        (fun acc (l, complete) ->
          if complete then acc
          else
            match l with
            | [] -> Float.infinity
            | l -> Float.max acc (weight (List.nth l (List.length l - 1))))
        Float.neg_infinity answers
    in
    let prefix = List.filter (fun e -> weight e >= threshold) merged in
    (* If the certified prefix already holds k elements the cutoffs
       were harmless: the global top-k is exact. *)
    (prefix, List.length prefix >= k)
  end
