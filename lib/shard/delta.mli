(** A shard's pending-update view: what the ingestion layer has
    buffered against one static shard, exposed to the query planners.

    The static shard structures are immutable; between epochs, inserts
    and deletes accumulate in a per-shard in-memory buffer owned by the
    ingestion layer ([Topk_ingest]).  A delta lets {!Planner} and
    {!Scatter} answer exactly over [static ∪ buffer \ tombstones]
    without knowing anything about the buffer's representation: the
    closures scan the buffer (EM-charged by their owner) and the
    planners combine the results with the static answers.

    Soundness of pruning under deltas: the static per-shard max is
    still a valid {e upper} bound when elements have been deleted
    (deletes only shrink a shard), and [d_bound] bounds the buffered
    inserts, so [max static d_bound] over-approximates the shard's true
    maximum — pruning against it stays exact, merely visiting a stale
    shard occasionally.  Exactness of reporting under deltas: a static
    top-[(k + d_dead_count)] query filtered by [d_dead] retains at
    least the top-[k] surviving static elements, because at most
    [d_dead_count] of the returned prefix can be tombstoned. *)

type ('q, 'e) t = {
  d_bound : 'q -> float option;
      (** upper bound on the weight of any {e live} buffered insert
          matching the query; [None] if there are none *)
  d_topk : 'q -> k:int -> 'e list;
      (** exact top-k among live buffered inserts matching the query,
          decreasing weight; the scan is EM-charged by the buffer's
          owner *)
  d_dead : 'e -> bool;
      (** [true] iff a buffered tombstone kills this (static) element *)
  d_dead_count : int;
      (** number of buffered tombstones that may hit the static shard;
          the planner widens static queries by this much before
          filtering *)
}

val none : unit -> ('q, 'e) t
(** The empty delta: no buffered inserts, no tombstones.  Querying
    through it is identical to querying the static shard. *)

val combine_bound : float option -> float option -> float option
(** [combine_bound static buffered]: the max of the two available
    bounds, [None] when both sides are empty. *)
