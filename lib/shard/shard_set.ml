module type S = sig
  module P : Topk_core.Sigs.PROBLEM

  type topk

  type max

  type shard = private {
    index : int;
    elems : P.elem array;
    topk : topk;
    max : max;
  }

  type t

  type built

  val build : ?params:Topk_core.Params.t -> P.elem array array -> t

  val of_elems :
    ?params:Topk_core.Params.t ->
    strategy:P.elem Partitioner.strategy ->
    shards:int ->
    P.elem array ->
    t

  val assemble :
    ?params:Topk_core.Params.t ->
    [ `Reuse of built | `Build of P.elem array ] list ->
    t

  val detach : t -> built array

  val built_elems : built -> P.elem array

  val built_size : built -> int

  val shard_count : t -> int

  val shards : t -> shard array

  val size : t -> int

  val space_words : t -> int

  val partition : t -> P.elem array array

  val upper_bound : t -> int -> P.query -> float option

  val topk_query : t -> int -> P.query -> k:int -> P.elem list

  val pp : Format.formatter -> t -> unit
end

module Make
    (T : Topk_core.Sigs.TOPK)
    (M : Topk_core.Sigs.MAX with module P = T.P) :
  S with module P = T.P and type topk = T.t and type max = M.t = struct
  module P = T.P

  type topk = T.t

  type max = M.t

  type shard = {
    index : int;
    elems : P.elem array;
    topk : topk;
    max : max;
  }

  type t = { shard_arr : shard array }

  (* A [built] is a shard whose [index] is meaningless until it is
     re-assembled. *)
  type built = shard

  let build_one ?params ~index elems =
    let elems = Array.copy elems in
    { index; elems; topk = T.build ?params elems; max = M.build ?params elems }

  let build ?params partition =
    {
      shard_arr =
        Array.mapi (fun i elems -> build_one ?params ~index:i elems) partition;
    }

  let of_elems ?params ~strategy ~shards elems =
    build ?params (Partitioner.split ~strategy ~shards elems)

  let assemble ?params pieces =
    let shard_arr =
      Array.of_list
        (List.mapi
           (fun i piece ->
             match piece with
             | `Reuse (b : built) -> { b with index = i }
             | `Build elems -> build_one ?params ~index:i elems)
           pieces)
    in
    { shard_arr }

  let detach t = Array.copy t.shard_arr

  let built_elems (b : built) = b.elems

  let built_size (b : built) = Array.length b.elems

  let shard_count t = Array.length t.shard_arr

  let shards t = t.shard_arr

  let size t =
    Array.fold_left (fun acc s -> acc + Array.length s.elems) 0 t.shard_arr

  let space_words t =
    Array.fold_left
      (fun acc s -> acc + T.space_words s.topk + M.space_words s.max)
      0 t.shard_arr

  let partition t = Array.map (fun s -> Array.copy s.elems) t.shard_arr

  let upper_bound t i q =
    Option.map P.weight (M.query t.shard_arr.(i).max q)

  let topk_query t i q ~k = T.query t.shard_arr.(i).topk q ~k

  let pp ppf t =
    Format.fprintf ppf "@[<h>%d shard(s) over %s+%s: [%s], n=%d, %d words@]"
      (shard_count t) T.name M.name
      (String.concat ", "
         (Array.to_list
            (Array.map
               (fun s -> string_of_int (Array.length s.elems))
               t.shard_arr)))
      (size t) (space_words t)
end
