(** Skew-driven shard splitting and merging.

    A shard set stays healthy when shard sizes are within a constant
    factor of each other: the planner's per-shard costs then stay
    [Q_top(n/S)]-shaped and the pool's fan-out stays balanced.  When
    ingest or deletion skews the partition past a threshold, we repair
    it Bentley–Saxe-style: split the oversized shard in two, merge the
    two smallest, and rebuild {e only} those structures — every other
    shard is reused untouched through
    {!Shard_set.S.detach}/{!Shard_set.S.assemble}. *)

module Make (SS : Shard_set.S) : sig
  type report = {
    rounds : int;         (** split+merge repair rounds performed *)
    rebuilt : int;        (** shard structures built anew *)
    reused : int;         (** shard structures carried over *)
    before_skew : float;  (** {!Partitioner.size_skew} going in *)
    after_skew : float;   (** and coming out *)
  }

  val skew : SS.t -> float
  (** Current size skew: [max size / max 1 (min size)]. *)

  val rebalance :
    ?params:Topk_core.Params.t ->
    ?max_skew:float ->
    ?max_rounds:int ->
    SS.t ->
    SS.t * report
  (** [rebalance t] returns a new snapshot whose skew is at most
      [max_skew] (default [2.0]; must be [>= 2.0] — a split halves a
      shard, so no repair can promise better), or the best achievable
      within [max_rounds] (default [2 * shard_count]) repair rounds.
      Shard count is preserved: each round splits the largest shard and
      merges the two smallest.  If the skew is already within bounds,
      [t] itself is returned with a zero-work report.  All planning
      happens on element arrays; structures are built once, at the end,
      only for shards whose membership changed.

      @raise Invalid_argument if [max_skew < 2.0]. *)
end
