(** Scatter-gather top-k with max-query shard pruning — sequential
    form.

    For a query [(q, k)] the planner first runs one cheap max query per
    shard ([Q_max] I/Os each), obtaining the {e exact} upper bound on
    any matching weight per shard.  It then visits shards in decreasing
    upper-bound order, maintaining the best [k] candidates found so
    far, and {e skips} every shard whose upper bound is below the
    current k-th candidate weight.  Because the bound is exact and the
    partition disjoint, a skipped shard provably contributes nothing:
    answers are identical to a single structure over the whole input.

    On weight-skewed partitions (e.g. {!Partitioner.Range} keyed by
    weight) almost every shard is pruned and the query costs
    [S . Q_max + Q_top(n/S) + O(k/B)] instead of [S] full top-k
    queries; on uniform partitions the planner degrades gracefully to
    visiting all shards.  Either way the per-shard work is charged to
    {!Topk_em.Stats} by the underlying structures. *)

module Make (SS : Shard_set.S) : sig
  type report = {
    max_queries : int;  (** per-shard upper-bound probes issued *)
    visited : int;      (** shards whose TOPK structure was queried *)
    pruned : int;       (** shards skipped by the upper-bound test *)
    empty : int;        (** shards whose max query found no match *)
  }

  val query : SS.t -> SS.P.query -> k:int -> SS.P.elem list
  (** Exact global top-k, sorted by decreasing weight; [[]] when
      [k <= 0]. *)

  val query_report : SS.t -> SS.P.query -> k:int -> SS.P.elem list * report
  (** Like {!query}, also reporting what the plan did. *)

  val query_with_delta :
    SS.t ->
    (SS.P.query, SS.P.elem) Delta.t array ->
    SS.P.query ->
    k:int ->
    SS.P.elem list * report
  (** Exact top-k over [static ∪ buffer \ tombstones]: per-shard
      bounds combine the static max with the buffered-insert bound
      ({!Delta.combine_bound}); each visited shard answers a widened
      static query ([k + d_dead_count]), filters tombstoned elements,
      and unions the buffer's own matching top-k.  One delta per shard,
      in shard order ({!Delta.none} for shards without pending
      updates).
      @raise Invalid_argument if [Array.length deltas] differs from
      the shard count. *)

  val query_all : SS.t -> SS.P.query -> k:int -> SS.P.elem list
  (** Pruning-free baseline: visit every shard and merge.  Same
      answers, used to measure what pruning saves. *)

  val pp_report : Format.formatter -> report -> unit
end
