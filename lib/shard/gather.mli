(** Bounded k-way merge of per-shard answers.

    Each shard answers a top-k query with its [<= k] heaviest matching
    elements in decreasing weight order; the global answer is the [k]
    heaviest of their union.  Because the inputs are sorted, a heap of
    one cursor per shard produces the merged prefix in
    [O(k log S + k/B)] — the [O(k/B)] merge cost the paper's reductions
    promise, charged to {!Topk_em.Stats} like any other reporting
    work.

    Under budget/deadline cutoff a shard may return a {e certified
    prefix} (its exact heaviest [m < k] elements) instead of a full
    answer; {!merge_certified} propagates that certification to the
    merged result instead of silently mixing exact and truncated
    data. *)

val merge : cmp:('e -> 'e -> int) -> k:int -> 'e list list -> 'e list
(** [merge ~cmp ~k lists] is the [k] largest elements (under [cmp],
    largest first) of the union of [lists], each of which must already
    be sorted in decreasing [cmp] order.  Returns fewer than [k]
    elements iff the union has fewer.  [k <= 0] yields [[]].  Charges
    one scanned element per input consumed. *)

val union : cmp:('e -> 'e -> int) -> k:int -> 'e list -> 'e list -> 'e list
(** In-memory top-k union of two decreasing-sorted lists — {e uncharged}.
    The planner and scatter layers use it to maintain the running k
    best candidates between shard visits: by then the inputs are
    resident (their reporting cost was charged by the shard structures
    that produced them), so bookkeeping on them is CPU work in the EM
    model; the single final gather pass is what pays the [O(k/B)]
    output term, via {!merge}.  Charging every intermediate union as a
    scan would double-count and erase the I/O saved by pruning. *)

val merge_certified :
  cmp:('e -> 'e -> int) ->
  weight:('e -> float) ->
  k:int ->
  ('e list * bool) list ->
  'e list * bool
(** [merge_certified ~cmp ~weight ~k answers] merges per-shard answers
    tagged with a completeness flag: [(l, true)] is a shard's exact,
    complete top-k; [(l, false)] is a certified prefix — the shard's
    exact heaviest [length l] elements, with every unreported element
    of that shard strictly lighter than the last element of [l] (and a
    [([], false)] shard certifies nothing).

    Returns [(prefix, complete)]: the longest merged prefix that is
    provably the global top-|prefix| given the certifications, and
    whether it is the full (up to [k]) answer.  When every input is
    complete this is exactly [merge] with [complete = true]. *)
