module Stats = Topk_em.Stats
module Executor = Topk_service.Executor
module Registry = Topk_service.Registry
module Response = Topk_service.Response
module Future = Topk_service.Future
module Metrics = Topk_service.Metrics
module Limits = Topk_service.Limits
module Tr = Topk_trace.Trace
module Cache = Topk_cache.Cache
module Version = Topk_cache.Version

module Make
    (SS : Shard_set.S)
    (T : Topk_core.Sigs.TOPK with module P = SS.P and type t = SS.topk) =
struct
  module P = SS.P
  module W = Topk_core.Sigs.Weight_order (P)

  type t = {
    pool : Executor.t;
    set : SS.t;
    handles : (P.query, P.elem) Registry.handle array;
    wave : int;
    name : string;  (* registration prefix; also the trace instance *)
    cache : P.elem list Cache.t option;  (* per-leg answer cache *)
  }

  type result = {
    answers : P.elem list;
    status : Response.status;
    cost : Stats.snapshot;
    latency : float;
    fanout : int;
    pruned : int;
    empty : int;
  }

  let create ?wave ?cache pool registry ~name set =
    let wave =
      match wave with Some w -> w | None -> Executor.worker_count pool
    in
    if wave <= 0 then
      invalid_arg
        (Printf.sprintf "Scatter.create: wave must be positive (got %d)" wave);
    let handles =
      Array.map
        (fun (sh : SS.shard) ->
          Registry.register registry
            ~name:(Printf.sprintf "%s#%d" name sh.SS.index)
            (module T) sh.SS.topk)
        (SS.shards set)
    in
    { pool; set; handles; wave; name; cache }

  let shard_set t = t.set

  let wave t = t.wave

  (* First [n] elements of [l] (or all of them), plus the rest. *)
  let rec take n l =
    match l with
    | x :: rest when n > 0 ->
        let hd, tl = take (n - 1) rest in
        (x :: hd, tl)
    | _ -> ([], l)

  let query t ?(lane = Topk_service.Lane.Interactive) ?(limits = Limits.none)
      ?deltas q ~k =
    if k <= 0 then
      invalid_arg
        (Printf.sprintf "Scatter.query: k must be positive (got %d)" k);
    (match limits.Limits.budget with
    | Some b when b < 0 ->
        invalid_arg
          (Printf.sprintf "Scatter.query: budget must be >= 0 (got %d)" b)
    | _ -> ());
    (match deltas with
    | Some d when Array.length d <> SS.shard_count t.set ->
        invalid_arg
          (Printf.sprintf "Scatter.query: %d delta(s) for %d shard(s)"
             (Array.length d)
             (SS.shard_count t.set))
    | _ -> ());
    (* Per-leg caching is sound only on the static, unbudgeted path: a
       delta'd leg's answer depends on the caller's buffer/tombstones,
       and under a budget the pool may return a cutoff prefix where the
       cache would serve a complete answer.  Shards are immutable, so
       entries live at {!Version.static} and never go stale. *)
    let leg_cache =
      match (t.cache, deltas, limits.Limits.budget) with
      | Some c, None, None -> Some (c, Marshal.to_string q [])
      | _ -> None
    in
    (* Without pending updates every delta is empty and the plan below
       degenerates to the static scatter path. *)
    let deltas =
      match deltas with
      | Some d -> d
      | None -> Array.init (SS.shard_count t.set) (fun _ -> Delta.none ())
    in
    let started = Unix.gettimeofday () in
    (* Anchor a relative timeout once, here: every per-shard leg then
       shares the same absolute deadline instead of restarting the
       clock per leg. *)
    let budget, deadline = Limits.resolve limits ~now:started in
    let leg_limits =
      {
        Limits.budget;
        horizon =
          (match deadline with
          | None -> Limits.Unbounded
          | Some d -> Limits.At d);
      }
    in
    let m = Executor.metrics t.pool in
    Metrics.Counter.incr m.Metrics.sharded_queries;
    Stats.mark_query ();
    let s = SS.shard_count t.set in
    (* The whole logical query runs under one trace root; the worker
       trace of every submitted leg links back to it via the parent id
       captured at submission. *)
    let result, _trace =
      Tr.with_root "scatter"
        ~attrs:
          [ ("instance", Tr.Str t.name);
            ("k", Tr.Int k);
            ("shards", Tr.Int s) ]
        (fun () ->
          (* Bracket the caller-side work (max queries + gathers)
             exactly like Registry.exec brackets each leg on its
             worker, so the logical query's total cost is the sum of
             independently-exact parts. *)
          Stats.round_carry ();
          let before = Stats.snapshot () in
          (* Scatter phase 1, on the calling domain: exact per-shard
             upper bounds, one MAX query each. *)
          let bounded = ref [] and empty = ref 0 in
          Tr.with_span "scatter.bounds" (fun () ->
              for i = s - 1 downto 0 do
                match
                  Delta.combine_bound
                    (SS.upper_bound t.set i q)
                    (deltas.(i).Delta.d_bound q)
                with
                | None -> incr empty
                | Some ub -> bounded := (i, ub) :: !bounded
              done);
          let order =
            List.sort (fun (_, a) (_, b) -> Float.compare b a) !bounded
          in
          (* Phase 2: waves of per-shard jobs through the pool.
             [candidates] is the running global top-k over every element
             gathered so far — each is a real matching element, so its
             k-th weight is a sound pruning threshold whether or not
             legs were cut off.  [legs] keeps the per-shard certified
             answers for the final join. *)
          let legs = ref [] in
          let candidates = ref [] in
          let status = ref Response.Complete in
          let leg_cost = ref Stats.zero_snapshot in
          let fanout = ref 0 and pruned = ref 0 in
          let kth_weight () =
            if List.length !candidates < k then Float.neg_infinity
            else P.weight (List.nth !candidates (k - 1))
          in
          let rec waves remaining =
            (* Bounds are exact maxima of disjoint shards: [ub < kth]
               proves the shard cannot contribute to the global top-k. *)
            let th = kth_weight () in
            let live, dead =
              List.partition (fun (_, ub) -> ub >= th) remaining
            in
            (match dead with
            | [] -> ()
            | _ ->
                Tr.event "scatter.prune"
                  ~attrs:
                    [ ("cut", Tr.Int (List.length dead));
                      ("kth", Tr.Float th) ]);
            pruned := !pruned + List.length dead;
            match live with
            | [] -> ()
            | _ ->
                let now_wave, rest = take t.wave live in
                let leg_name i =
                  (Registry.info t.handles.(i)).Registry.name
                in
                let consult i k_leg =
                  match leg_cache with
                  | None -> None
                  | Some (c, qkey) -> (
                      let ts = Unix.gettimeofday () in
                      match
                        Cache.find c ~instance:(leg_name i) ~qkey
                          ~current:Version.static ~k:k_leg ~now:ts ()
                      with
                      | Cache.Hit e ->
                          Metrics.Counter.incr m.Metrics.cache_hits;
                          Metrics.Histogram.observe m.Metrics.cache_hit_age_us
                            (int_of_float
                               ((ts -. e.Cache.e_inserted) *. 1e6));
                          Tr.event "cache.hit"
                            ~attrs:[ ("shard", Tr.Int i) ];
                          Some (fst (take k_leg e.Cache.e_payload))
                      | Cache.Stale | Cache.Miss ->
                          Metrics.Counter.incr m.Metrics.cache_misses;
                          None)
                in
                (* Submit every missed leg of the wave before gathering
                   any of them, so cached legs cost no parallelism. *)
                let jobs =
                  List.map
                    (fun (i, _) ->
                      (* Widen the static leg by the shard's tombstone
                         count so that filtering the dead still leaves
                         the top-k survivors (see Delta). *)
                      let k_leg = k + deltas.(i).Delta.d_dead_count in
                      match consult i k_leg with
                      | Some answers -> (i, k_leg, `Hit answers)
                      | None ->
                          ( i,
                            k_leg,
                            `Fut
                              (* Legs inherit the logical query's lane
                                 (and, via [leg_limits], its absolute
                                 deadline): a fan-out never changes the
                                 priority of the work it is part of. *)
                              (Executor.submit t.pool t.handles.(i) ~lane
                                 ~limits:leg_limits q ~k:k_leg) ))
                    now_wave
                in
                List.iter
                  (fun (_, _, job) ->
                    match job with
                    | `Fut _ -> incr fanout
                    | `Hit _ -> ())
                  jobs;
                List.iter
                  (fun (i, k_leg, job) ->
                    match job with
                    | `Hit answers ->
                        (* A cached leg is a complete certified answer,
                           served with zero charged I/O. *)
                        legs := (answers, true) :: !legs;
                        candidates :=
                          Gather.union ~cmp:W.compare ~k !candidates answers
                    | `Fut fut ->
                    let r =
                      Tr.with_span "scatter.leg"
                        ~attrs:[ ("shard", Tr.Int i) ]
                        (fun () ->
                          let r = Future.await fut in
                          if Tr.is_enabled () then begin
                            (match r.Response.trace_id with
                            | Some id -> Tr.add_attr "leg_trace" (Tr.Int id)
                            | None -> ());
                            Tr.add_attr "leg_ios"
                              (Tr.Int (Response.cost r).Stats.ios);
                            Tr.add_attr "status"
                              (Tr.Str (Response.status_string r.Response.status))
                          end;
                          r)
                    in
                    Metrics.Histogram.observe m.Metrics.shard_latency_us
                      (int_of_float (r.Response.latency *. 1e6));
                    Metrics.Histogram.observe m.Metrics.shard_ios
                      (Response.cost r).Stats.ios;
                    leg_cost := Stats.add !leg_cost (Response.cost r);
                    status := Response.combine_status !status r.Response.status;
                    let d = deltas.(i) in
                    (* Tombstoned elements are filtered caller-side;
                       the buffer's own matching top-k joins as an
                       extra, always-complete leg.  Filtering a
                       truncated leg only raises its last reported
                       weight, so the certified-merge threshold stays
                       sound. *)
                    let live =
                      List.filter
                        (fun e -> not (d.Delta.d_dead e))
                        r.Response.answers
                    in
                    let buffered = d.Delta.d_topk q ~k in
                    if buffered <> [] then legs := (buffered, true) :: !legs;
                    (match r.Response.status with
                    | Response.Failed _ ->
                        (* A failed leg certifies nothing about its
                           shard. *)
                        legs := ([], false) :: !legs
                    | Response.Complete -> legs := (live, true) :: !legs
                    | Response.Cutoff_budget | Response.Cutoff_deadline ->
                        legs := (live, false) :: !legs);
                    (match (leg_cache, r.Response.status) with
                    | Some (c, qkey), Response.Complete -> (
                        match
                          Cache.admit c ~instance:(leg_name i) ~qkey
                            ~version:Version.static ~k:k_leg
                            ~len:(List.length live)
                            ~cost:(Response.cost r).Stats.ios
                            ~now:(Unix.gettimeofday ()) live
                        with
                        | `Bypassed ->
                            Metrics.Counter.incr m.Metrics.cache_bypasses
                        | `Admitted ->
                            Tr.event "cache.admit"
                              ~attrs:[ ("shard", Tr.Int i) ]
                        | `Superseded -> ())
                    | _ -> ());
                    (* Resident bookkeeping between waves: the leg's
                       reporting cost was charged worker-side;
                       [merge_certified] below is the single charged
                       gather pass. *)
                    candidates :=
                      Gather.union ~cmp:W.compare ~k !candidates
                        (Gather.union ~cmp:W.compare ~k live buffered))
                  jobs;
                waves rest
          in
          waves order;
          let answers, complete =
            Gather.merge_certified ~cmp:W.compare ~weight:P.weight ~k !legs
          in
          (* If the certified merge still proves the full top-k, per-leg
             cutoffs were harmless: report the answer as complete. *)
          let status =
            match !status with
            | (Response.Cutoff_budget | Response.Cutoff_deadline)
              when complete ->
                Response.Complete
            | st -> st
          in
          Stats.round_carry ();
          let local = Stats.diff (Stats.snapshot ()) before in
          Metrics.Counter.add m.Metrics.shards_pruned !pruned;
          Metrics.Histogram.observe m.Metrics.fanout !fanout;
          if Tr.is_enabled () then begin
            Tr.add_attr "visited" (Tr.Int !fanout);
            Tr.add_attr "pruned" (Tr.Int !pruned);
            Tr.add_attr "empty" (Tr.Int !empty)
          end;
          {
            answers;
            status;
            cost = Stats.add local !leg_cost;
            latency = Unix.gettimeofday () -. started;
            fanout = !fanout;
            pruned = !pruned;
            empty = !empty;
          })
    in
    result

  let pp_result ppf r =
    Format.fprintf ppf
      "@[<h>%s: |answers|=%d fanout=%d pruned=%d empty=%d ios=%d %.3fms@]"
      (Response.status_string r.status)
      (List.length r.answers) r.fanout r.pruned r.empty r.cost.Stats.ios
      (r.latency *. 1e3)
end
