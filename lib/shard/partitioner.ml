type 'a strategy =
  | Hash of ('a -> int)
  | Range of ('a -> float)
  | Balanced

let bucket_of_key ~shards key =
  (* splitmix64 finalizer ({!Topk_util.Rng.mix64}): decorrelates bucket
     choice from dense or structured ids, so [Hash P.id] behaves like a
     random assignment. *)
  let h = Topk_util.Rng.mix64 (Int64.of_int key) in
  (* Use the top bits, which mix best, and keep the result
     non-negative. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int shards))

let validate ~shards n =
  if shards < 1 then
    invalid_arg
      (Printf.sprintf "Partitioner.split: shards must be >= 1 (got %d)" shards);
  if shards > max 1 n then
    invalid_arg
      (Printf.sprintf
         "Partitioner.split: more shards than elements (shards=%d, n=%d)"
         shards n)

(* Cut [order] (a permutation of indices of [elems]) into [shards]
   contiguous chunks whose sizes differ by at most one. *)
let cut_contiguous elems order ~shards =
  let n = Array.length elems in
  let base = n / shards and extra = n mod shards in
  let out = Array.make shards [||] in
  let pos = ref 0 in
  for s = 0 to shards - 1 do
    let len = base + if s < extra then 1 else 0 in
    out.(s) <- Array.init len (fun i -> elems.(order.(!pos + i)));
    pos := !pos + len
  done;
  out

let split ~strategy ~shards elems =
  let n = Array.length elems in
  validate ~shards n;
  match strategy with
  | Hash key ->
      let buckets = Array.make shards [] in
      (* Walk backwards so each bucket list ends up in input order. *)
      for i = n - 1 downto 0 do
        let b = bucket_of_key ~shards (key elems.(i)) in
        buckets.(b) <- elems.(i) :: buckets.(b)
      done;
      Array.map Array.of_list buckets
  | Range key ->
      let order = Array.init n (fun i -> i) in
      (* Stable comparison with index tie-break: deterministic even if
         keys collide. *)
      Array.sort
        (fun i j ->
          match Float.compare (key elems.(i)) (key elems.(j)) with
          | 0 -> Int.compare i j
          | c -> c)
        order;
      cut_contiguous elems order ~shards
  | Balanced ->
      let out = Array.make shards [] in
      for i = n - 1 downto 0 do
        let s = i mod shards in
        out.(s) <- elems.(i) :: out.(s)
      done;
      Array.map Array.of_list out

let sizes partition = Array.map Array.length partition

let size_skew partition =
  if Array.length partition = 0 then 1.0
  else begin
    let mx = ref 0 and mn = ref max_int in
    Array.iter
      (fun shard ->
        let s = Array.length shard in
        if s > !mx then mx := s;
        if s < !mn then mn := s)
      partition;
    float_of_int !mx /. float_of_int (max 1 !mn)
  end
