(* See delta.mli. *)

type ('q, 'e) t = {
  d_bound : 'q -> float option;
  d_topk : 'q -> k:int -> 'e list;
  d_dead : 'e -> bool;
  d_dead_count : int;
}

let none () =
  {
    d_bound = (fun _ -> None);
    d_topk = (fun _ ~k:_ -> []);
    d_dead = (fun _ -> false);
    d_dead_count = 0;
  }

let combine_bound static buffered =
  match (static, buffered) with
  | None, None -> None
  | (Some _ as b), None | None, (Some _ as b) -> b
  | Some a, Some b -> Some (Float.max a b)
