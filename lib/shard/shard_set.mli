(** An immutable snapshot of per-shard index structures.

    Built from a disjoint partition (see {!Partitioner}), each shard
    carries two black boxes from the paper's toolbox: any
    {!Topk_core.Sigs.TOPK} (typically a Theorem 1/2 functor output) for
    the shard's top-k answers, and any {!Topk_core.Sigs.MAX} for the
    shard's {e exact} per-query maximum weight — the upper bound the
    {!Planner} uses to prune shards that cannot contribute to the
    global top-k.

    The snapshot is immutable by design (like every structure the
    serving layer registers): {!Rebalance} produces a {e new} snapshot,
    rebuilding only the shards it touches and reusing the rest
    structurally via {!detach}/{!assemble}. *)

module type S = sig
  module P : Topk_core.Sigs.PROBLEM

  type topk
  (** The underlying TOPK structure type of one shard. *)

  type max
  (** The underlying MAX structure type of one shard. *)

  type shard = private {
    index : int;
    elems : P.elem array;  (** the shard's slice of the input *)
    topk : topk;
    max : max;
  }

  type t

  type built
  (** One shard detached from a snapshot, structures included — the
      unit of reuse for partial rebuilds. *)

  val build : ?params:Topk_core.Params.t -> P.elem array array -> t
  (** Build every shard of a disjoint partition.  The partition arrays
      are copied; element [id]s must be unique across the whole
      partition (as across any single structure's input). *)

  val of_elems :
    ?params:Topk_core.Params.t ->
    strategy:P.elem Partitioner.strategy ->
    shards:int ->
    P.elem array ->
    t
  (** Partition then {!build}. *)

  val assemble :
    ?params:Topk_core.Params.t ->
    [ `Reuse of built | `Build of P.elem array ] list ->
    t
  (** Recompose a snapshot from detached shards and fresh partitions,
      building structures only for the [`Build] entries — the
      Bentley–Saxe-flavoured partial rebuild {!Rebalance} relies on.
      Shard indices are renumbered left to right. *)

  val detach : t -> built array

  val built_elems : built -> P.elem array
  (** The element slice a detached shard indexes (not copied: treat as
      read-only). *)

  val built_size : built -> int

  val shard_count : t -> int

  val shards : t -> shard array

  val size : t -> int
  (** Total elements across shards. *)

  val space_words : t -> int

  val partition : t -> P.elem array array
  (** The per-shard element slices (copies). *)

  val upper_bound : t -> int -> P.query -> float option
  (** [upper_bound t i q] is the exact maximum weight among shard [i]'s
      elements matching [q], or [None] if none matches — one max query
      on the shard's MAX structure, charged normally. *)

  val topk_query : t -> int -> P.query -> k:int -> P.elem list
  (** Shard-local top-k, sorted by decreasing weight. *)

  val pp : Format.formatter -> t -> unit
end

module Make
    (T : Topk_core.Sigs.TOPK)
    (M : Topk_core.Sigs.MAX with module P = T.P) :
  S with module P = T.P and type topk = T.t and type max = M.t
