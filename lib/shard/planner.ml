module Stats = Topk_em.Stats
module Tr = Topk_trace.Trace

module Make (SS : Shard_set.S) = struct
  module P = SS.P
  module W = Topk_core.Sigs.Weight_order (P)

  type report = {
    max_queries : int;
    visited : int;
    pruned : int;
    empty : int;
  }

  let zero_report = { max_queries = 0; visited = 0; pruned = 0; empty = 0 }

  (* Weight of the k-th (i.e. last) candidate once we hold k of them;
     -inf while the candidate list is still short, so nothing is pruned
     before the heap is full. *)
  let kth_weight ~k acc =
    if List.length acc < k then Float.neg_infinity
    else P.weight (List.nth acc (k - 1))

  let query_report t q ~k =
    Stats.mark_query ();
    if k <= 0 then ([], zero_report)
    else
      Tr.with_span "planner.query"
        ~attrs:[ ("k", Tr.Int k); ("shards", Tr.Int (SS.shard_count t)) ]
        (fun () ->
          let s = SS.shard_count t in
          (* Scatter phase 1: exact per-shard upper bounds (one max
             query each).  [None] means the shard has no matching
             element at all — pruned before any top-k work. *)
          let bounded = ref [] and empty = ref 0 in
          Tr.with_span "planner.bounds" (fun () ->
              for i = s - 1 downto 0 do
                match SS.upper_bound t i q with
                | None -> incr empty
                | Some ub -> bounded := (i, ub) :: !bounded
              done);
          let order =
            List.sort (fun (_, a) (_, b) -> Float.compare b a) !bounded
          in
          (* Phase 2: visit in decreasing upper-bound order, maintaining
             the global k best; stop as soon as the next bound cannot
             beat the current k-th candidate.  Bounds are exact maxima
             of disjoint shards, so [ub < kth] proves the whole shard
             (and, since bounds are sorted, every later shard) is out. *)
          (* The running candidate list is resident data whose reporting
             cost was already charged by [SS.topk_query]; maintaining it
             between visits uses the uncharged {!Gather.union}.  The
             single final {!Gather.merge} over the visited legs pays the
             one [O(k/B)] output term of the gather phase. *)
          let rec visit acc legs visited remaining =
            match remaining with
            | [] -> (legs, visited, 0)
            | (i, ub) :: rest ->
                let kth = kth_weight ~k acc in
                if ub < kth then begin
                  Tr.event "planner.prune"
                    ~attrs:
                      [ ("shard", Tr.Int i);
                        ("bound", Tr.Float ub);
                        ("kth", Tr.Float kth);
                        ("cut", Tr.Int (List.length remaining)) ];
                  (legs, visited, List.length remaining)
                end
                else begin
                  let answers =
                    Tr.with_span "planner.visit"
                      ~attrs:
                        [ ("shard", Tr.Int i); ("bound", Tr.Float ub) ]
                      (fun () -> SS.topk_query t i q ~k)
                  in
                  let acc = Gather.union ~cmp:W.compare ~k acc answers in
                  visit acc (answers :: legs) (visited + 1) rest
                end
          in
          let legs, visited, pruned = visit [] [] 0 order in
          let answers = Gather.merge ~cmp:W.compare ~k legs in
          if Tr.is_enabled () then begin
            Tr.add_attr "visited" (Tr.Int visited);
            Tr.add_attr "pruned" (Tr.Int pruned);
            Tr.add_attr "empty" (Tr.Int !empty)
          end;
          (answers, { max_queries = s; visited; pruned; empty = !empty }))

  let query t q ~k = fst (query_report t q ~k)

  (* Planner over [static ∪ buffer \ tombstones]: same plan shape as
     [query_report], with every per-shard probe routed through the
     shard's {!Delta.t}.  Bounds combine the (possibly stale but still
     sound) static max with the buffered-insert bound; a visited shard
     answers a static top-[(k + dead)] query, filters tombstoned
     elements, and unions in the buffer's own top-k. *)
  let query_with_delta t deltas q ~k =
    Stats.mark_query ();
    let s = SS.shard_count t in
    if Array.length deltas <> s then
      invalid_arg
        (Printf.sprintf
           "Planner.query_with_delta: %d delta(s) for %d shard(s)"
           (Array.length deltas) s);
    if k <= 0 then ([], zero_report)
    else
      Tr.with_span "planner.query"
        ~attrs:
          [ ("k", Tr.Int k); ("shards", Tr.Int s); ("deltas", Tr.Int s) ]
        (fun () ->
          let bounded = ref [] and empty = ref 0 in
          Tr.with_span "planner.bounds" (fun () ->
              for i = s - 1 downto 0 do
                let d = deltas.(i) in
                match
                  Delta.combine_bound (SS.upper_bound t i q)
                    (d.Delta.d_bound q)
                with
                | None -> incr empty
                | Some ub -> bounded := (i, ub) :: !bounded
              done);
          let order =
            List.sort (fun (_, a) (_, b) -> Float.compare b a) !bounded
          in
          let visit_shard i =
            let d = deltas.(i) in
            let raw = SS.topk_query t i q ~k:(k + d.Delta.d_dead_count) in
            let live = List.filter (fun e -> not (d.Delta.d_dead e)) raw in
            Gather.union ~cmp:W.compare ~k live (d.Delta.d_topk q ~k)
          in
          let rec visit acc legs visited remaining =
            match remaining with
            | [] -> (legs, visited, 0)
            | (i, ub) :: rest ->
                let kth = kth_weight ~k acc in
                if ub < kth then begin
                  Tr.event "planner.prune"
                    ~attrs:
                      [ ("shard", Tr.Int i);
                        ("bound", Tr.Float ub);
                        ("kth", Tr.Float kth);
                        ("cut", Tr.Int (List.length remaining)) ];
                  (legs, visited, List.length remaining)
                end
                else begin
                  let answers =
                    Tr.with_span "planner.visit"
                      ~attrs:[ ("shard", Tr.Int i); ("bound", Tr.Float ub) ]
                      (fun () -> visit_shard i)
                  in
                  let acc = Gather.union ~cmp:W.compare ~k acc answers in
                  visit acc (answers :: legs) (visited + 1) rest
                end
          in
          let legs, visited, pruned = visit [] [] 0 order in
          let answers = Gather.merge ~cmp:W.compare ~k legs in
          if Tr.is_enabled () then begin
            Tr.add_attr "visited" (Tr.Int visited);
            Tr.add_attr "pruned" (Tr.Int pruned);
            Tr.add_attr "empty" (Tr.Int !empty)
          end;
          (answers, { max_queries = s; visited; pruned; empty = !empty }))

  let query_all t q ~k =
    Stats.mark_query ();
    if k <= 0 then []
    else begin
      let s = SS.shard_count t in
      let per_shard = List.init s (fun i -> SS.topk_query t i q ~k) in
      Gather.merge ~cmp:W.compare ~k per_shard
    end

  let pp_report ppf r =
    Format.fprintf ppf
      "@[<h>max_queries=%d visited=%d pruned=%d empty=%d@]" r.max_queries
      r.visited r.pruned r.empty
end
