(** Splitting an element set into [S] disjoint shards.

    The paper's reductions are black boxes per structure, so a
    collection of independently built TOPK instances over disjoint
    partitions is itself a valid top-k index: the per-shard answers are
    exact, and {!Gather.merge} recombines them in [O(k/B)] amortized.
    This module only decides {e which} shard each element lands in; it
    never inspects weights or queries beyond the key functions given.

    All strategies are deterministic: the same inputs produce the same
    partition, so sharded experiments are reproducible from a seed the
    same way single-structure ones are. *)

type 'a strategy =
  | Hash of ('a -> int)
      (** Bucket by a mixed hash of the given integer key (typically
          [P.id]).  Shard sizes concentrate around [n/S]; shard weight
          profiles are statistically identical — the layout that makes
          max-query pruning hardest and load balance easiest. *)
  | Range of ('a -> float)
      (** Sort by the given key and cut into [S] contiguous chunks of
          near-equal size.  Keying by a spatial coordinate gives
          locality; keying by weight gives maximal skew across shard
          maxima — the layout where pruning shines. *)
  | Balanced
      (** Deal elements round-robin in input order: shard sizes differ
          by at most one, no key required. *)

val split : strategy:'a strategy -> shards:int -> 'a array -> 'a array array
(** [split ~strategy ~shards elems] partitions [elems] into exactly
    [shards] disjoint arrays whose concatenation is a permutation of
    [elems].

    @raise Invalid_argument if [shards < 1], or if [shards] exceeds
    [max 1 (Array.length elems)] (more shards than elements cannot all
    be non-empty; [Range] and [Balanced] guarantee non-emptiness, and
    we hold [Hash] to the same contract at the boundary). *)

val sizes : 'a array array -> int array
(** Per-shard element counts. *)

val size_skew : 'a array array -> float
(** [max size / max 1 (min size)] over the shards — the imbalance
    factor that {!Rebalance} bounds.  [1.0] for a perfectly balanced
    partition; [infinity] is impossible (empty shards count as size 0
    but the denominator is clamped to 1). *)
