(** Deterministic, splittable pseudo-random generator (splitmix64).

    Every randomized component of the library (rank sampling, core-set
    construction, quickselect pivots, workload generators) draws from an
    explicit [Rng.t], so experiments are reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] is a generator determined entirely by [seed]. *)

val split : t -> t
(** A statistically independent generator derived from [t]'s stream;
    both remain usable. *)

val copy : t -> t

val bits64 : t -> int64
(** Next 64 uniform bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); requires [bound > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val uniform : t -> float
(** Uniform in [0, 1). *)

val exponential : t -> float
(** Standard exponential variate. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> p:float -> 'a array -> 'a array
(** [sample t ~p arr] keeps each element independently with probability
    [p] — the p-sample of Section 3.1. *)

val mix64 : int64 -> int64
(** The splitmix64 finalizer applied to [x + golden]: a stateless
    64-bit mixer (what {!Topk_shard.Partitioner} hashes ids with). *)

(** The {e raw-seed} splitmix64 stream: the state starts at the given
    word itself rather than at [mix seed].  This is the stream the
    fault-injection layers ({!Topk_em.Fault}, {!Topk_durable.Disk},
    {!Topk_repl.Transport}) draw from; it is exposed separately so
    their historical seeded schedules stay bit-identical. *)
module Raw : sig
  type t

  val create : int64 -> t

  val reseed : t -> int64 -> unit
  (** Restart the stream at a new raw state. *)

  val next : t -> int64
  (** Next 64 bits: [state <- state + golden; mix state]. *)

  val uniform : t -> float
  (** Top 53 bits of {!next} into [0,1). *)

  val below_incl : t -> int -> int
  (** Uniform-ish draw in [0, n] ([0] when [n <= 0]); the historical
      modulo draw, kept for schedule compatibility. *)
end
