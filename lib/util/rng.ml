(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014.  Small state, passes BigCrush, splittable. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let mix64 x = mix (Int64.add x golden)

(* The raw-seed stream: state starts at the seed itself (not mixed),
   so components that seeded the generator with structured values
   ({!Topk_em.Fault}, {!Topk_durable.Disk}) keep their historical,
   bit-identical fault/crash schedules. *)
module Raw = struct
  type nonrec t = t

  let create s = { state = s }

  let reseed t s = t.state <- s

  let next = bits64

  (* Top 53 bits into [0,1) — the divisor form the historical copies
     used; 2^53 is exact in a float, so this equals [*. 0x1.0p-53]. *)
  let uniform t =
    Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.

  (* Uniform-ish int in [0, n] for n >= 0 (modulo bias accepted — the
     historical draw used by torn-tail lengths and bit picks). *)
  let below_incl t n =
    if n <= 0 then 0
    else
      Int64.to_int
        (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int (n + 1)))
end

let split t = { state = bits64 t }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be > 0";
  (* Rejection sampling on 62 bits to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let range = Int64.shift_left 1L 62 in
  let limit = Int64.(mul (div range b) b) in
  let rec go () =
    let r = Int64.shift_right_logical (bits64 t) 2 in
    if r >= limit then go () else Int64.to_int (Int64.rem r b)
  in
  go ()

let uniform t =
  (* 53 uniform bits into [0,1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. 0x1.0p-53

let float t x = uniform t *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0. then false
  else if p >= 1. then true
  else uniform t < p

let exponential t =
  let u = 1.0 -. uniform t in
  -.log u

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t ~p arr =
  if p >= 1. then Array.copy arr
  else if p <= 0. then [||]
  else begin
    let kept = ref [] in
    for i = Array.length arr - 1 downto 0 do
      if bernoulli t p then kept := arr.(i) :: !kept
    done;
    Array.of_list !kept
  end
