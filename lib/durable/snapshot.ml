(* Checkpointed snapshots — see snapshot.mli. *)

module Ingest = Topk_ingest.Ingest

let magic = "TKSNAP1"

let path ~dir ~gen = Filename.concat dir (Printf.sprintf "snap-%d.dat" gen)

let encode ~seq ~runs =
  let buf = Buffer.create 4096 in
  let header = Buffer.create 32 in
  Frame.add_string header magic;
  Frame.add_u64 header seq;
  Frame.add_u32 header (List.length runs);
  Frame.append buf (Buffer.to_bytes header);
  List.iter
    (fun (r : _ Ingest.run_data) ->
      let body = Buffer.create 1024 in
      Frame.add_u32 body r.Ingest.rd_level;
      Frame.add_u64 body r.Ingest.rd_seq;
      Frame.add_u32 body (Array.length r.Ingest.rd_elems);
      Array.iter (fun x -> Frame.add_string body (Marshal.to_string x [])) r.Ingest.rd_elems;
      Frame.add_u32 body (Array.length r.Ingest.rd_dead);
      Array.iter (fun id -> Frame.add_u64 body id) r.Ingest.rd_dead;
      Frame.append buf (Buffer.to_bytes body))
    runs;
  Buffer.to_bytes buf

(* [Array.init] evaluates in unspecified order; the reader cursor
   forces an explicit left-to-right loop. *)
let read_array r n read_one =
  let acc = ref [] in
  for _ = 1 to n do
    acc := read_one r :: !acc
  done;
  Array.of_list (List.rev !acc)

let decode_run payload : 'e Ingest.run_data =
  let r = Frame.reader payload in
  let rd_level = Frame.read_u32 r in
  let rd_seq = Frame.read_u64 r in
  let n = Frame.read_u32 r in
  let rd_elems = read_array r n (fun r -> Marshal.from_string (Frame.read_string r) 0) in
  let nd = Frame.read_u32 r in
  let rd_dead = read_array r nd Frame.read_u64 in
  { Ingest.rd_level; rd_seq; rd_elems; rd_dead }

type 'e contents = { seq : int; runs : 'e Ingest.run_data list }

let decode b =
  match
    let payloads, status = Frame.parse_all b in
    match (status, payloads) with
    | `Clean, header :: run_frames ->
        let r = Frame.reader header in
        if Frame.read_string r <> magic then Error `Corrupt
        else begin
          let seq = Frame.read_u64 r in
          let count = Frame.read_u32 r in
          if count <> List.length run_frames then Error `Corrupt
          else Ok { seq; runs = List.map decode_run run_frames }
        end
    | _ -> Error `Corrupt
  with
  | v -> v
  | exception _ -> Error `Corrupt

let read p =
  if not (Disk.exists p) then Error `Missing
  else
    match decode (Disk.read_file p) with
    | Ok c -> Ok c
    | Error `Corrupt -> Error `Corrupt

let write ~dir ~gen ~seq ~runs =
  let final = path ~dir ~gen in
  let tmp = final ^ ".tmp" in
  let f = Disk.create tmp in
  Disk.append f (encode ~seq ~runs);
  Disk.fsync f;
  Disk.close f;
  (* Read-back gate: the rename below makes this generation eligible
     as a recovery root, so a bit flipped on the way down must be
     caught here, while the previous root is still the only one. *)
  match (read tmp : (_, _) result) with
  | Ok _ ->
      Disk.rename ~src:tmp ~dst:final;
      true
  | Error _ ->
      Disk.remove tmp;
      false
