(** Self-verifying record framing, the unit of every durable file.

    A frame is [length (u32 LE) | crc32 (u32 LE) | payload]: 8 bytes
    of header followed by [length] payload bytes, where the checksum
    covers the payload only.  Parsing classifies each position as a
    whole valid record, a {e torn} suffix (the file ends before the
    frame does — the signature of a crash mid-write), or a {e corrupt}
    frame (the length fits but the checksum disagrees — the signature
    of bit rot or a misdirected write).  The WAL, snapshot and
    manifest formats are all sequences of frames, so one scanner
    serves torn-tail truncation and scrubbing alike. *)

val crc32 : ?off:int -> ?len:int -> Bytes.t -> int32
(** CRC-32 (IEEE 802.3, reflected) over [len] bytes of [b] starting
    at [off] (defaults: the whole buffer). *)

val max_payload : int
(** Refuse to frame payloads above this (1 GiB) — a corrupt length
    field must not provoke a gigantic allocation. *)

val append : Buffer.t -> Bytes.t -> unit
(** [append buf payload] appends one frame to [buf].
    @raise Invalid_argument beyond {!max_payload}. *)

val frame : Bytes.t -> Bytes.t
(** One framed record as a fresh buffer. *)

type parsed =
  | Record of Bytes.t * int  (** payload, offset just past the frame *)
  | Torn                     (** the buffer ends inside the frame *)
  | Corrupt                  (** checksum (or length bound) mismatch *)

val parse : Bytes.t -> int -> parsed
(** Classify the frame starting at offset [off]; [Torn] at or past the
    end of the buffer. *)

val parse_all : Bytes.t -> Bytes.t list * [ `Clean | `Torn of int | `Corrupt of int ]
(** Scan a whole buffer as consecutive frames: the valid prefix of
    payloads, and whether the scan ended cleanly at the buffer's end,
    on a torn frame, or on a corrupt one (with the byte offset of the
    first bad frame in both cases). *)

val resyncs : Bytes.t -> int -> bool
(** [resyncs b off]: does a clean frame stream with at least one
    {e non-empty} record resume at {e some} offset past [off] and run
    to the end of [b]?  [Torn] at [off] with a later resync is not a
    torn tail at all — it is a bit flip in a length header stranding
    valid frames behind it, and must be treated as corruption, not
    truncated away.  Empty records are not accepted as evidence: an
    all-zero 8-byte header is a self-consistent empty frame, so any
    torn residue ending in ≥ 8 zero bytes would spuriously resync. *)

(** {1 Scalar encoding helpers (little-endian)} *)

val add_u32 : Buffer.t -> int -> unit
val add_u64 : Buffer.t -> int -> unit
val add_string : Buffer.t -> string -> unit
(** Length-prefixed (u32) string. *)

type reader
(** A cursor over one payload. *)

val reader : Bytes.t -> reader
val read_u32 : reader -> int
val read_u64 : reader -> int
val read_string : reader -> string
(** @raise Invalid_argument ("Frame.reader: …") when the payload is
    shorter than the requested field — decoding never reads past the
    record. *)
