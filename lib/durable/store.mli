(** The durable ingestion store: WAL + snapshots + manifest behind one
    {!Topk_ingest.Ingest} instance.

    {!Make} wraps {!Topk_ingest.Ingest.Make} with the full durability
    pipeline.  Every accepted update is framed into the current
    {!Wal} segment {e before} the in-memory index acknowledges it;
    epoch publishes (seal/merge/freeze) trigger {!Snapshot} checkpoints
    by policy; every checkpoint rotates the WAL and republishes the
    {!Manifest}; {!recover} turns a directory back into a live index.

    {b Durability modes.}
    - [Volatile] — no WAL, no checkpoints: the plain in-memory wrapper
      (a control, and the mode for data you can rebuild).
    - [Async n] — group commit: updates are acknowledged once framed
      into the WAL's OS buffer; an fsync happens every [n] appends and
      at every seal.  A crash loses at most the un-synced tail.
    - [Sync] — an fsync per update, acknowledged only after it.

    {b The acked-prefix guarantee.}  Updates are applied in a single
    sequence (1, 2, …).  After a crash at {e any} point, {!recover}
    yields an index equal to the from-scratch oracle over some prefix
    [1..r] of the issued updates, where [r] is at least the number of
    [Sync]-acknowledged updates and at most the number issued — no
    reordering, no holes, no invented operations.  [`topk crash-bench`]
    sweeps seeded crash points and fails hard if any recovery violates
    this.

    {b Checkpoint atomicity.}  A checkpoint writes [snap-(g+1)]
    (tmp → fsync → read-back verify → rename), rotates to
    [wal-(g+1)] carrying the unsealed log suffix, publishes
    [manifest-(g+1)] the same verified way, and only then sweeps
    every stale generation below [g+1] (including artifacts a crash
    stranded mid-GC) — at every instant at least one valid recovery
    root exists on disk.  Every checkpoint — sink-driven or manual —
    runs inside the ingest wrapper's critical section
    ({!Topk_ingest.Ingest.Make.with_durable_state}), so capture and
    commit are atomic with respect to concurrent writers.

    {b Crash model.}  The guarantees are verified under the {!Disk}
    simulated crash model and hold for real process crashes.  Against
    power loss they hold when no fault plan is installed (the
    production path), where {!Disk.fsync} issues a real [fsync] and
    renames/removals sync the containing directory; under an
    installed plan durability is tracked in the model only, keeping
    seeded crash sweeps fast and deterministic. *)

type mode = Volatile | Async of int | Sync

val pp_mode : Format.formatter -> mode -> unit

val mode_of_string : string -> mode option
(** ["volatile"], ["sync"], ["async:<n>"] (n >= 1). *)

module Make (T : Topk_core.Sigs.TOPK) : sig
  module I : module type of Topk_ingest.Ingest.Make (T)

  type t

  val create :
    ?params:Topk_core.Params.t ->
    ?buffer_cap:int ->
    ?fanout:int ->
    ?pool:Topk_service.Executor.t ->
    ?metrics:Topk_service.Metrics.t ->
    ?mode:mode ->
    ?checkpoint_every:int ->
    dir:string ->
    I.P.elem array ->
    t
  (** Build a fresh store over [elems] in [dir] (created if needed).
      Non-volatile modes publish generation 1 (base snapshot + empty
      WAL + manifest) before returning, so a crash at any later point
      recovers.  [mode] defaults to [Sync]; [checkpoint_every]
      (default 4) checkpoints every that-many seals (merges and
      freeze always checkpoint).  [pool] (shared with the ingest
      index for merges) additionally offloads each checkpoint's GC
      sweep of superseded generations onto the pool's [Maintenance]
      lane — safe because the new root is durably published before
      the sweep is scheduled; without a pool the sweep runs inline.
      @raise Invalid_argument on a bad [mode]/[checkpoint_every] or
      ingest parameter. *)

  val recover :
    ?params:Topk_core.Params.t ->
    ?buffer_cap:int ->
    ?fanout:int ->
    ?pool:Topk_service.Executor.t ->
    ?metrics:Topk_service.Metrics.t ->
    ?mode:mode ->
    ?checkpoint_every:int ->
    dir:string ->
    unit ->
    t option
  (** Rebuild from the newest valid recovery root in [dir]: manifest →
      snapshot → WAL-suffix replay (torn tails truncated and counted,
      corrupt frames stop the replay and are counted) → a fresh
      checkpoint under the new generation.  [None] when no valid root
      exists (the store never finished {!create}, or every root is
      corrupt).  Counts [recoveries] and observes [recovery_time_us]
      on the given [metrics]. *)

  val index : t -> I.t
  (** The live index — query/pin/register it freely.  Update it
      through {!insert}/{!delete} (equivalently, directly: the sink is
      installed on the index itself). *)

  val insert : t -> I.P.elem -> unit
  val delete : t -> I.P.elem -> unit
  val query : t -> I.P.query -> k:int -> I.P.elem list

  val checkpoint : t -> unit
  (** Force a checkpoint of a consistent cut of the current state
      (no-op in [Volatile] mode).  Safe against concurrent writers:
      the cut is captured and committed in one critical section of
      the ingest wrapper, so no acked update can land in the WAL
      segment being retired. *)

  val close : t -> unit
  (** Freeze the index (sealing the remaining buffer, which
      checkpoints in non-volatile modes) and close the WAL.
      Idempotent. *)

  val mode : t -> mode
  val generation : t -> int
  (** Current published generation (0 only in [Volatile] mode). *)

  val recovered_seq : t -> int
  (** Highest operation sequence the recovery replayed ([0] for a
      fresh {!create}): the recovered prefix length [r] of the
      acked-prefix guarantee. *)
end
