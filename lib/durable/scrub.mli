(** Background checksum scrubbing: catch bit rot before recovery does.

    A scrub pass re-reads every snapshot ([snap-*.dat]) and manifest
    ([manifest-*]) in a store directory and re-verifies their frame
    checksums structurally — no element decoding, no index rebuild —
    so silent corruption is surfaced while the previous generation (or
    a backup) still exists, instead of at the worst possible moment.

    Each pass counts [scrubs] once and [checksum_failures] per bad
    file on the given metrics.  WAL segments are {e not} scrubbed: an
    un-synced WAL tail is legitimately torn until recovery truncates
    it, so a scanner cannot distinguish rot from an honest crash. *)

type report = { files : int; bad : string list }
(** Files examined and the paths that failed verification. *)

val run_once : ?metrics:Topk_service.Metrics.t -> dir:string -> unit -> report

val spawn :
  pool:Topk_service.Executor.t ->
  ?metrics:Topk_service.Metrics.t ->
  dir:string ->
  unit ->
  (unit -> report option)
(** Submit one scrub pass as a background task on [pool] (sharing its
    supervision and retry machinery) and return a join: [None] if the
    task failed or the pool shut down first.
    @raise Topk_service.Executor.Shut_down / [Overloaded] as
    {!Topk_service.Executor.submit_task}. *)
