(* CRC-framed records — see frame.mli. *)

(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
   Computed in OCaml so the durable layer adds no dependency the
   container lacks. *)
let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  let t = Lazy.force table in
  let c = ref 0xFFFFFFFFl in
  for i = off to off + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get b i)))) 0xFFl)
    in
    c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let max_payload = 1 lsl 30

(* The checksum as an unsigned int for the u32 header field —
   [Int32.to_int] alone would sign-extend a high-bit CRC. *)
let crc_u32 ?off ?len b = Int32.to_int (crc32 ?off ?len b) land 0xFFFFFFFF

let add_u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let add_u64 buf v =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let add_string buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let append buf payload =
  let len = Bytes.length payload in
  if len > max_payload then
    invalid_arg
      (Printf.sprintf "Frame.append: payload of %d bytes exceeds max %d" len
         max_payload);
  add_u32 buf len;
  add_u32 buf (crc_u32 payload);
  Buffer.add_bytes buf payload

let frame payload =
  let buf = Buffer.create (Bytes.length payload + 8) in
  append buf payload;
  Buffer.to_bytes buf

let get_u32 b off =
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b (off + i))
  done;
  !v

let get_u64 b off =
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b (off + i))
  done;
  !v

type parsed = Record of Bytes.t * int | Torn | Corrupt

let parse b off =
  let total = Bytes.length b in
  if off + 8 > total then Torn
  else begin
    let len = get_u32 b off in
    let crc = get_u32 b (off + 4) in
    if len > max_payload then Corrupt
    else if off + 8 + len > total then Torn
    else if crc_u32 ~off:(off + 8) ~len b <> crc then Corrupt
    else Record (Bytes.sub b (off + 8) len, off + 8 + len)
  end

let parse_all b =
  let rec go acc off =
    if off = Bytes.length b then (List.rev acc, `Clean)
    else
      match parse b off with
      | Record (p, next) -> go (p :: acc) next
      | Torn -> (List.rev acc, `Torn off)
      | Corrupt -> (List.rev acc, `Corrupt off)
  in
  go [] 0

(* Does a clean record stream resume at some offset past [off] and run
   to the end of the buffer?  A genuinely torn tail leaves nothing
   parseable past the tear; a bit flip in a length header merely
   *looks* torn while stranding valid frames behind the bogus length.
   The stream must contain a {e non-empty} record: an all-zero header
   is a self-consistent empty frame ([len = 0], [crc32("") = 0]), so a
   torn residue that happens to end in a run of zero bytes — common
   inside Marshal payloads — would otherwise count as a resync.  No
   durable format writes empty payloads, so demanding one non-empty
   record costs nothing.  Quadratic in the residue in the worst case,
   but a real torn tail is at most a group-commit's worth of frames. *)
let resyncs b off =
  let total = Bytes.length b in
  let rec clean_to_eof o seen =
    if o = total then seen
    else
      match parse b o with
      | Record (p, next) -> clean_to_eof next (seen || Bytes.length p > 0)
      | Torn | Corrupt -> false
  in
  let rec scan o = o + 8 <= total && (clean_to_eof o false || scan (o + 1)) in
  scan (off + 1)

type reader = { buf : Bytes.t; mutable pos : int }

let reader buf = { buf; pos = 0 }

let need r n =
  if r.pos + n > Bytes.length r.buf then
    invalid_arg
      (Printf.sprintf "Frame.reader: %d bytes wanted at %d of %d" n r.pos
         (Bytes.length r.buf))

let read_u32 r =
  need r 4;
  let v = get_u32 r.buf r.pos in
  r.pos <- r.pos + 4;
  v

let read_u64 r =
  need r 8;
  let v = get_u64 r.buf r.pos in
  r.pos <- r.pos + 8;
  v

let read_string r =
  let len = read_u32 r in
  need r len;
  let s = Bytes.sub_string r.buf r.pos len in
  r.pos <- r.pos + len;
  s
